# CTest script: run one figure benchmark in quick CSV mode and compare
# its output against the committed golden with check_goldens.py.
# ENGINE_ARGS (optional) passes extra engine-selection flags, e.g.
# --engine-sampled for the sampled-timing cross-check.
get_filename_component(name ${GOLDEN} NAME_WE)
if(NOT DEFINED ENGINE_ARGS)
    set(ENGINE_ARGS "")
endif()
if(ENGINE_ARGS STREQUAL "")
    set(out ${WORK_DIR}/${name}.csv)
else()
    set(out ${WORK_DIR}/${name}.engine.csv)
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

separate_arguments(engine_args_list UNIX_COMMAND "${ENGINE_ARGS}")
execute_process(
    COMMAND ${BENCH} --quick --csv ${engine_args_list}
    OUTPUT_FILE ${out}
    RESULT_VARIABLE run_rc
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} failed (${run_rc}):\n${run_err}")
endif()

execute_process(
    COMMAND ${PYTHON} ${CHECKER} --golden ${GOLDEN} --actual ${out}
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "golden mismatch (${check_rc}):\n${check_out}\n${check_err}")
endif()
message(STATUS "${check_out}")
