/**
 * @file
 * Reproduces Table 2 of the paper: per-instruction execution and
 * latency cycles, measured on the simulator with dependent-consumer
 * microbenchmarks, plus the hardware-parameter section.
 */

#include <functional>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "bench_util.h"
#include "isa/builder.h"

using namespace cyclops;
using namespace cyclops::arch;
using cyclops::bench::Options;
using isa::Opcode;
using isa::ProgramBuilder;

namespace
{

Cycle
runProgram(const isa::Program &prog, ThreadId tid)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    chip.loadProgram(prog);
    chip.setUnit(tid,
                 std::make_unique<ThreadUnit>(tid, chip, prog.entry));
    chip.activate(tid);
    chip.run(1'000'000);
    return chip.now();
}

Cycle
measure(const std::function<void(ProgramBuilder &)> &body, ThreadId tid = 0)
{
    ProgramBuilder b;
    body(b);
    b.halt();
    return runProgram(b.finish(), tid);
}

/** Dependent-consumer latency of a producing instruction. */
Cycle
latencyOf(const std::function<void(ProgramBuilder &, bool)> &emit)
{
    const Cycle indep = measure([&](ProgramBuilder &b) {
        emit(b, false);
    });
    const Cycle dep = measure([&](ProgramBuilder &b) {
        emit(b, true);
    });
    return dep - indep;
}

struct MemSetup
{
    u8 ig;
    bool warm;
    ThreadId tid;
};

Cycle
memLatency(const MemSetup &setup)
{
    auto build = [&](bool dependent) {
        ProgramBuilder b;
        const u32 buf = b.allocData(64, 64);
        b.li(10, igAddr(setup.ig, buf));
        if (setup.warm)
            b.lw(4, 0, 10);
        for (int i = 0; i < 64; ++i)
            b.addi(11, 11, 1); // drain
        b.lw(5, 0, 10);
        if (dependent)
            b.addi(6, 5, 1);
        else
            b.addi(6, 0, 1);
        b.halt();
        return b.finish();
    };
    const Cycle indep = runProgram(build(false), setup.tid);
    const Cycle dep = runProgram(build(true), setup.tid);
    return dep - indep + 1; // +1: the consumer's own issue cycle
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts, "Table 2: simulation parameters (measured)",
        "instruction execution/latency cycles and hardware parameters");

    Table instr({"Instruction type", "Paper exec", "Paper lat",
                 "Measured (dependent-use distance)"});
    ChipConfig cfg;

    instr.addRow({"Branches", "2", "0",
                  Table::num(s64(measure([](ProgramBuilder &b) {
                      auto l = b.newLabel();
                      b.beq(0, 0, l);
                      b.bind(l);
                  }) - measure([](ProgramBuilder &) {})))});
    instr.addRow(
        {"Integer multiplication", "1", "5",
         Table::num(s64(latencyOf([](ProgramBuilder &b, bool dep) {
             b.li(4, 7);
             b.mul(6, 4, 4);
             b.addi(7, dep ? 6 : 0, 1);
         })) + 1)});
    instr.addRow({"Integer divide", "33", "0",
                  Table::num(s64(measure([](ProgramBuilder &b) {
                      b.li(4, 100);
                      b.divu(6, 4, 4);
                  }) - measure([](ProgramBuilder &b) {
                      b.li(4, 100);
                  })))});
    instr.addRow(
        {"FP add/mult/conv", "1", "5",
         Table::num(s64(latencyOf([](ProgramBuilder &b, bool dep) {
             b.faddd(8, 10, 12);
             if (dep)
                 b.faddd(14, 8, 8);
             else
                 b.addi(7, 0, 1);
         })) + 1)});
    instr.addRow({"FP divide (double)", "30", "0",
                  Table::num(s64(latencyOf(
                      [](ProgramBuilder &b, bool dep) {
                          b.fdivd(8, 10, 12);
                          if (dep)
                              b.faddd(14, 8, 8);
                          else
                              b.addi(7, 0, 1);
                      })) + 1)});
    instr.addRow({"FP square root (double)", "56", "0",
                  Table::num(s64(latencyOf(
                      [](ProgramBuilder &b, bool dep) {
                          b.emitR(Opcode::Fsqrtd, 8, 10, 0);
                          if (dep)
                              b.faddd(14, 8, 8);
                          else
                              b.addi(7, 0, 1);
                      })) + 1)});
    instr.addRow(
        {"FP multiply-and-add", "1", "9",
         Table::num(s64(latencyOf([](ProgramBuilder &b, bool dep) {
             b.fmadd(8, 10, 12);
             if (dep)
                 b.faddd(14, 8, 8);
             else
                 b.addi(7, 0, 1);
         })) + 1)});
    instr.addRow({"Memory op (local cache hit)", "1", "6",
                  Table::num(s64(memLatency({igExactly(0), true, 0})))});
    instr.addRow({"Memory op (local cache miss)", "1", "24",
                  Table::num(s64(memLatency({igExactly(0), false, 0})))});
    instr.addRow({"Memory op (remote cache hit)", "1", "17",
                  Table::num(s64(memLatency({igExactly(0), true, 4})))});
    instr.addRow({"Memory op (remote cache miss)", "1", "36",
                  Table::num(s64(memLatency({igExactly(0), false, 4})))});
    cyclops::bench::emit(opts, instr);

    Table hw({"Component", "# of units", "Params/unit"});
    hw.addRow({"Threads", Table::num(s64(cfg.numThreads)),
               "single issue, in-order, 500 MHz"});
    hw.addRow({"FPUs", Table::num(s64(cfg.numFpus())),
               "1 add, 1 multiply, 1 divide/square root"});
    hw.addRow({"D-cache", Table::num(s64(cfg.numCaches())),
               strprintf("%u KB, up to %u-way assoc., %u-byte lines",
                         cfg.dcacheBytes / 1024, cfg.dcacheAssoc,
                         cfg.dcacheLineBytes)});
    hw.addRow({"I-cache", Table::num(s64(cfg.numICaches())),
               strprintf("%u KB, %u-way assoc., %u-byte lines",
                         cfg.icacheBytes / 1024, cfg.icacheAssoc,
                         cfg.icacheLineBytes)});
    hw.addRow({"Memory", Table::num(s64(cfg.numBanks)),
               strprintf("%u KB", cfg.bankBytes / 1024)});
    cyclops::bench::emit(opts, hw);

    cyclops::bench::note(
        opts,
        strprintf("Peak embedded-memory bandwidth: %.1f GB/s "
                  "(paper: 42 GB/s); peak cache bandwidth: %.1f GB/s "
                  "(paper: 128 GB/s)",
                  cfg.peakMemBandwidth() / 1e9,
                  cfg.peakCacheBandwidth() / 1e9)
            .c_str());
    cyclops::bench::writeManifest(opts, "bench_table2_latencies");
    return 0;
}
