/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out:
 *
 *  1. bank burst-transfer mode on/off (latency discount on open rows);
 *  2. allocate-without-fetch store misses vs fetch-on-write;
 *  3. data-cache associativity 1/2/4/8 ("variable associativity");
 *  4. prefetch instruction buffer on/off;
 *  5. scratchpad (way-partitioned fast memory) vs plain cached access;
 *  6. degraded chips (paper section 5): STREAM on a chip with a dead
 *     bank, a dead quad, or both, emitted to
 *     BENCH_fault_ablations.json.
 *
 * Each uses STREAM or a focused kernel and reports the metric the
 * mechanism targets.
 */

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "bench_util.h"
#include "isa/builder.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::arch;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

StreamResult
stream(const ChipConfig &chip, u32 threads, u32 ept, u32 unroll,
       StreamKernel kernel = StreamKernel::Copy)
{
    StreamConfig cfg;
    cfg.kernel = kernel;
    cfg.threads = threads;
    cfg.elementsPerThread = ept;
    cfg.localCaches = true;
    cfg.unroll = unroll;
    return runStream(cfg, chip);
}

/**
 * Burst ablation: pipelined misses that walk one bank's row
 * sequentially (1 KB global stride = bank-local-consecutive blocks),
 * so successive line fills arrive back-to-back on the open row.
 */
double
walkLatency(bool burst)
{
    ChipConfig cfg;
    cfg.burstEnabled = burst;
    cfg.pibEnabled = false;
    cfg.maxOutstandingMem = 8;
    Chip chip(cfg);
    isa::ProgramBuilder b;
    const u32 buf = b.allocData(256 * 1024, 1024);
    b.li(10, igAddr(igExactly(0), buf));
    b.li(12, 120);
    auto loop = b.newLabel();
    b.bind(loop);
    b.lw(20, 0, 10);        // pair of independent loads, same bank
    b.lw(21, 1024, 10);     // next bank-local block: rides the row
    b.add(22, 20, 21);      // consume both before the next pair
    b.addi(10, 10, 2048);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    b.halt();
    chip.loadProgram(b.finish());
    chip.setUnit(0, std::make_unique<ThreadUnit>(0, chip, 0));
    chip.activate(0);
    chip.run(10'000'000);
    return chip.stats().histogram("mem.loadLatency")->mean();
}

/**
 * Scratchpad ablation: a temporary work area is reused between passes
 * of a large streaming sweep that evicts everything from the cache.
 * In scratch ways the temp survives untouched ("addressable fast
 * memory, for streaming data or temporary work areas"); as plain
 * cached data it is thrashed and refetched every pass.
 */
Cycle
scratchStencil(bool useScratch)
{
    ChipConfig cfg;
    cfg.dcacheScratchWays = useScratch ? 4 : 0;
    cfg.pibEnabled = false;
    cfg.maxOutstandingMem = 8;
    Chip chip(cfg);
    isa::ProgramBuilder b;
    const u32 elems = 512; // 4 KB temp working set
    const u32 buf = b.allocData(elems * 8 + 16, 64);
    const u32 streamBytes = 48 * 1024; // 3x the cache: full eviction
    const u32 stream = b.allocData(streamBytes, 64);
    const Addr base = useScratch ? igAddr(igScratch(0), 0)
                                 : igAddr(igExactly(0), buf);
    const u32 iters = 8;
    b.li(20, s32(iters));
    auto outer = b.newLabel();
    auto loop = b.newLabel();
    auto sweep = b.newLabel();
    b.bind(outer);
    // Pass 1: stencil over the temp area.
    b.li(10, base);
    b.li(12, elems / 2);
    b.bind(loop);
    b.ld(2, 0, 10);
    b.ld(4, 8, 10);
    b.faddd(6, 2, 4);
    b.sd(6, 0, 10);
    b.addi(10, 10, 16);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    // Pass 2: stream a large array through the same cache.
    b.li(10, igAddr(igExactly(0), stream));
    b.li(12, s32(streamBytes / 64));
    b.bind(sweep);
    b.lw(5, 0, 10);
    b.addi(10, 10, 64);
    b.addi(12, 12, -1);
    b.bne(12, 0, sweep);
    b.addi(20, 20, -1);
    b.bne(20, 0, outer);
    b.halt();
    chip.loadProgram(b.finish());
    chip.setUnit(0, std::make_unique<ThreadUnit>(0, chip, 0));
    chip.activate(0);
    chip.run(50'000'000);
    return chip.now();
}

/**
 * PIB ablation: a 16-entry buffer versus a minimal 4-entry one (the
 * instruction supply then re-arbitrates the shared I-cache port every
 * few instructions). Eight threads share each I-cache port.
 */
Cycle
pibLoop(bool bigPib)
{
    ChipConfig cfg;
    cfg.pibEntries = bigPib ? 16 : 4;
    Chip chip(cfg);
    isa::ProgramBuilder b;
    b.li(12, 20000);
    auto loop = b.newLabel();
    b.bind(loop);
    for (int i = 0; i < 6; ++i)
        b.addi(5, 5, 1);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    b.halt();
    chip.loadProgram(b.finish());
    for (ThreadId tid = 0; tid < 8; ++tid) {
        chip.setUnit(tid, std::make_unique<ThreadUnit>(tid, chip, 0));
        chip.activate(tid);
    }
    chip.run(50'000'000);
    return chip.now();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    const u32 largeEpt = opts.quick ? 800 : 1984;

    // ---- 1. Burst transfer mode -------------------------------------------
    cyclops::bench::banner(
        opts, "Ablation 1: bank burst-transfer mode",
        "\"threads accessing two consecutive blocks in the same bank "
        "will see a lower latency in burst transfer mode\"");
    Table burst({"configuration", "avg load latency (cycles)"});
    burst.addRow({"burst enabled", Table::num(walkLatency(true), 2)});
    burst.addRow({"burst disabled", Table::num(walkLatency(false), 2)});
    cyclops::bench::emit(opts, burst);

    // ---- 2. Store-miss policy -----------------------------------------------
    cyclops::bench::banner(
        opts, "Ablation 2: allocate-without-fetch store misses",
        "required to sustain ~peak STREAM bandwidth: fetch-on-write "
        "wastes a line fill per streamed store line");
    Table alloc({"policy", "Copy GB/s (126 thr, large)",
                 "Triad GB/s"});
    for (bool noFetch : {true, false}) {
        ChipConfig chip;
        chip.storeAllocNoFetch = noFetch;
        alloc.addRow(
            {noFetch ? "allocate-no-fetch (default)" : "fetch-on-write",
             Table::num(stream(chip, 126, largeEpt, 4).totalGBs, 2),
             Table::num(stream(chip, 126, largeEpt, 4,
                               StreamKernel::Triad)
                            .totalGBs,
                        2)});
    }
    cyclops::bench::emit(opts, alloc);

    // ---- 3. Cache associativity ------------------------------------------------
    cyclops::bench::banner(
        opts, "Ablation 3: data-cache associativity (\"up to 8-way\")",
        "STREAM local-cache mode with three vectors stresses conflict "
        "misses at low associativity");
    Table assoc({"ways", "Add GB/s (126 thr, in-cache size)"});
    for (u32 ways : {1u, 2u, 4u, 8u}) {
        ChipConfig chip;
        chip.dcacheAssoc = ways;
        assoc.addRow({Table::num(s64(ways)),
                      Table::num(stream(chip, 126, 112, 4,
                                        StreamKernel::Add)
                                     .totalGBs,
                                 2)});
    }
    cyclops::bench::emit(opts, assoc);

    // ---- 4. Prefetch instruction buffer ------------------------------------------
    cyclops::bench::banner(
        opts, "Ablation 4: prefetch instruction buffer (PIB)",
        "each thread holds 16 instructions; a tight loop re-fetches "
        "through the shared I-cache port without it");
    Table pib({"configuration",
               "cycles (8 threads, tight 8-instr loop x 20000)"});
    pib.addRow({"16-entry PIB (default)", Table::num(s64(pibLoop(true)))});
    pib.addRow({"4-entry PIB", Table::num(s64(pibLoop(false)))});
    cyclops::bench::emit(opts, pib);

    // ---- 5. Scratchpad ways ---------------------------------------------------------
    cyclops::bench::banner(
        opts, "Ablation 5: way-partitioned scratchpad (2 KB units)",
        "\"a portion of [the cache] can be used as an addressable fast "
        "memory... potentially higher performance\"");
    Table scratch({"storage", "stencil cycles (lower is better)"});
    scratch.addRow({"4 scratch ways (8 KB fast memory)",
                    Table::num(s64(scratchStencil(true)))});
    scratch.addRow({"plain cached", Table::num(s64(scratchStencil(false)))});
    cyclops::bench::emit(opts, scratch);

    // ---- 6. Degraded chips -----------------------------------------------------------
    cyclops::bench::banner(
        opts, "Ablation 6: degraded chips (paper section 5)",
        "\"the approach to hardware faults is to disable the affected "
        "component and keep the chip in service\"");
    struct DegradedPoint
    {
        const char *name;
        std::vector<u32> banks;
        std::vector<u32> quads;
    };
    // 120 threads fit the healthy chip and a chip missing one quad
    // (126 - 4 = 122 schedulable TUs) alike, so the comparison
    // isolates the lost bandwidth/capacity, not a lost workload.
    const std::vector<DegradedPoint> points = {
        {"healthy", {}, {}},
        {"1 dead bank", {5}, {}},
        {"1 dead quad", {}, {3}},
        {"dead bank + dead quad", {5}, {3}},
    };
    const auto degraded = cyclops::bench::sweep(
        opts, points, [&](const DegradedPoint &p) {
            ChipConfig chip;
            chip.fault.disabledBanks = p.banks;
            chip.fault.disabledQuads = p.quads;
            return stream(chip, 120, largeEpt, 4);
        });
    Table deg({"configuration", "Copy GB/s (120 thr, large)",
               "cycles/iter", "verified"});
    for (size_t i = 0; i < points.size(); ++i)
        deg.addRow({points[i].name,
                    Table::num(degraded[i].totalGBs, 2),
                    Table::num(s64(degraded[i].iterationCycles)),
                    degraded[i].verified ? "yes" : "no"});
    cyclops::bench::emit(opts, deg);

    if (std::FILE *f = std::fopen("BENCH_fault_ablations.json", "w")) {
        std::fprintf(f,
                     "{\n  \"benchmark\": \"fault_ablations\",\n"
                     "  \"quick\": %s,\n  \"threads\": 120,\n"
                     "  \"points\": [\n",
                     opts.quick ? "true" : "false");
        for (size_t i = 0; i < points.size(); ++i) {
            std::fprintf(f, "    {\"name\": \"%s\", \"disabledBanks\": [",
                         points[i].name);
            for (size_t j = 0; j < points[i].banks.size(); ++j)
                std::fprintf(f, "%s%u", j ? ", " : "", points[i].banks[j]);
            std::fprintf(f, "], \"disabledQuads\": [");
            for (size_t j = 0; j < points[i].quads.size(); ++j)
                std::fprintf(f, "%s%u", j ? ", " : "", points[i].quads[j]);
            std::fprintf(
                f,
                "], \"copyGBs\": %.3f, \"iterationCycles\": %llu, "
                "\"verified\": %s}%s\n",
                degraded[i].totalGBs,
                static_cast<unsigned long long>(
                    degraded[i].iterationCycles),
                degraded[i].verified ? "true" : "false",
                i + 1 < points.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        cyclops::bench::note(opts, "Wrote BENCH_fault_ablations.json");
    } else {
        warn("ablations: cannot write BENCH_fault_ablations.json");
    }
    cyclops::bench::writeManifest(opts, "bench_ablations");
    return 0;
}
