/**
 * @file
 * Reproduces Figure 3: SPLASH-2 parallel speedups (Barnes, FFT, FMM,
 * LU, Ocean, Radix) on 1..128 threads.
 *
 * For the 128-thread points the kernel's two reserved system threads
 * are released (reservedThreads = 0), matching the figure's x-axis;
 * all other points use the standard configuration.
 *
 * Every (threads, app) point is an independent simulation, so the grid
 * is dispatched through the --jobs host thread pool.
 */

#include "bench_util.h"
#include "workloads/splash.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts, "Figure 3: SPLASH-2 parallel speedups",
        "most kernels reach scalability comparable to the SPLASH-2 "
        "report; speedup relative to 1 thread");

    std::vector<u32> threads = {1, 2, 4, 8, 16, 32, 64, 128};
    if (opts.quick)
        threads = {1, 4, 16, 64};

    const SplashApp apps[] = {SplashApp::Barnes, SplashApp::Fft,
                              SplashApp::Fmm, SplashApp::Lu,
                              SplashApp::Ocean, SplashApp::Radix};
    const size_t numApps = sizeof(apps) / sizeof(apps[0]);

    struct Point
    {
        u32 threads;
        SplashApp app;
    };
    std::vector<Point> points;
    for (u32 t : threads)
        for (SplashApp app : apps)
            points.push_back({t, app});

    const std::vector<SplashResult> results = cyclops::bench::sweep(
        opts, points, [&](const Point &p) {
            SplashConfig cfg;
            cfg.app = p.app;
            cfg.threads = p.threads;
            ChipConfig chipCfg = cyclops::bench::chipConfig(
                opts, strprintf("fig3.t%u.%s", p.threads,
                                splashAppName(p.app)));
            if (p.threads > chipCfg.usableThreads())
                chipCfg.reservedThreads = 0; // release system threads
            // Ocean's 130-edge grid caps the per-thread row split.
            if (p.app == SplashApp::Ocean && p.threads == 128)
                cfg.size = 130;
            return runSplash(cfg, chipCfg);
        });

    std::vector<std::string> headers{"threads"};
    for (SplashApp app : apps)
        headers.push_back(splashAppName(app));
    Table speedups(headers);
    Table cyclesTable(headers);

    for (size_t ti = 0; ti < threads.size(); ++ti) {
        std::vector<std::string> srow{Table::num(s64(threads[ti]))};
        std::vector<std::string> crow{Table::num(s64(threads[ti]))};
        for (size_t ai = 0; ai < numApps; ++ai) {
            const SplashResult &result = results[ti * numApps + ai];
            const Cycle base = results[ai].cycles; // threads.front() row
            srow.push_back(strprintf(
                "%.1f%s", double(base) / double(result.cycles),
                result.verified ? "" : "!"));
            crow.push_back(Table::num(s64(result.cycles)));
        }
        speedups.addRow(srow);
        cyclesTable.addRow(crow);
    }

    cyclops::bench::note(opts, "Parallel speedup (higher is better):");
    cyclops::bench::emit(opts, speedups);
    cyclops::bench::note(opts, "Raw cycles:");
    cyclops::bench::emit(opts, cyclesTable);
    cyclops::bench::note(
        opts,
        "Sizes: Barnes 2048 bodies, FFT 64K points, FMM 2048 "
        "particles, LU 384x384, Ocean 130x130, Radix 256K keys.");
    cyclops::bench::writeManifest(opts, "bench_fig3_splash2");
    return 0;
}
