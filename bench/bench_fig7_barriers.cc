/**
 * @file
 * Reproduces Figure 7: hardware vs software (tree) barriers on the
 * SPLASH-2 FFT kernel, for a 256-point and a 64K-point transform.
 *
 * Bars are the relative change (%) in total / run / stall cycles of
 * the hardware-barrier run versus the software-tree-barrier run;
 * negative means the hardware barrier is better. The paper reports
 * ~-10% total for the 256-point FFT on 16 threads and ~-5% for the
 * 64K-point FFT on 64 threads, with run cycles *increasing* (more,
 * cheaper spin instructions) while stall cycles drop sharply.
 *
 * Constraints enforced as in the paper: points/processor >= sqrt(N)
 * (so 256-point tops out at 16 threads) and power-of-two processors
 * (64K tops out at 64 of the 126 usable threads).
 */

#include "bench_util.h"
#include "workloads/splash.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

double
pct(u64 hw, u64 sw)
{
    return 100.0 * (double(hw) - double(sw)) / double(sw);
}

double
share(u64 part, u64 whole)
{
    return whole ? 100.0 * double(part) / double(whole) : 0.0;
}

void
panel(const Options &opts, u32 points, const std::vector<u32> &threads)
{
    // The hw and sw runs of every thread count are independent
    // simulations: flatten to one point list for the --jobs pool.
    struct Point
    {
        u32 threads;
        BarrierKind kind;
    };
    std::vector<Point> runs;
    for (u32 t : threads) {
        runs.push_back({t, BarrierKind::Hw});
        runs.push_back({t, BarrierKind::SwTree});
    }
    const std::vector<SplashResult> results = cyclops::bench::sweep(
        opts, runs, [&](const Point &p) {
            const ChipConfig cfg = cyclops::bench::chipConfig(
                opts, strprintf("fft%u.t%u.%s", points, p.threads,
                                p.kind == BarrierKind::Hw ? "hw" : "sw"));
            return runFft(p.threads, points, p.kind, cfg);
        });

    // Run/stall come from the cycle-attribution layer: run is the
    // attributed issue time, stall everything else charged while awake.
    const auto run = [](const SplashResult &r) {
        return r.attr[arch::CycleCat::Run];
    };
    const auto stall = [&](const SplashResult &r) {
        return r.attr.charged() - run(r);
    };

    Table table({"threads", "total cycles %", "run cycles %",
                 "stall cycles %", "hw total", "sw total"});
    for (size_t i = 0; i < threads.size(); ++i) {
        const SplashResult &hw = results[2 * i];
        const SplashResult &sw = results[2 * i + 1];
        std::string flag =
            hw.verified && sw.verified ? "" : "!";
        table.addRow({Table::num(s64(threads[i])) + flag,
                      Table::num(pct(hw.cycles, sw.cycles), 1),
                      Table::num(pct(run(hw), run(sw)), 1),
                      Table::num(pct(stall(hw), stall(sw)), 1),
                      Table::num(s64(hw.cycles)),
                      Table::num(s64(sw.cycles))});
    }
    cyclops::bench::emit(opts, table);

    // Where the stalled cycles go: the share of each run's stall time
    // attributed to barrier waits vs the d-cache/memory path. The
    // hardware barrier converts long memory-spin stalls into short
    // wired-OR waits (and some extra run cycles).
    Table comp({"threads", "hw barrier/stall %", "sw barrier/stall %",
                "hw dcache/stall %", "sw dcache/stall %",
                "hw remote/stall %", "sw remote/stall %"});
    for (size_t i = 0; i < threads.size(); ++i) {
        const SplashResult &hw = results[2 * i];
        const SplashResult &sw = results[2 * i + 1];
        const u64 hwBar = hw.attr[arch::CycleCat::BarrierWait];
        const u64 swBar = sw.attr[arch::CycleCat::BarrierWait];
        const u64 hwMem = hw.attr[arch::CycleCat::DcacheMiss] +
                          hw.attr[arch::CycleCat::BankContention];
        const u64 swMem = sw.attr[arch::CycleCat::DcacheMiss] +
                          sw.attr[arch::CycleCat::BankContention];
        // Remote is always 0.0 on a single chip; the column keeps the
        // table shape identical to the multi-chip composition report.
        const u64 hwRem = hw.attr[arch::CycleCat::RemoteWait];
        const u64 swRem = sw.attr[arch::CycleCat::RemoteWait];
        comp.addRow({Table::num(s64(threads[i])),
                     Table::num(share(hwBar, stall(hw)), 1),
                     Table::num(share(swBar, stall(sw)), 1),
                     Table::num(share(hwMem, stall(hw)), 1),
                     Table::num(share(swMem, stall(sw)), 1),
                     Table::num(share(hwRem, stall(hw)), 1),
                     Table::num(share(swRem, stall(sw)), 1)});
    }
    cyclops::bench::note(opts, "Stall composition (cycle attribution):");
    cyclops::bench::emit(opts, comp);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);

    cyclops::bench::banner(
        opts,
        "Figure 7(a): hardware vs software barriers, 256-point FFT",
        "about -10% total cycles at 16 threads; run cycles up, stall "
        "cycles down (negative = hardware barrier better)");
    std::vector<u32> threadsA = {2, 4, 8, 16};
    if (opts.quick)
        threadsA = {4, 16};
    panel(opts, 256, threadsA);

    cyclops::bench::banner(
        opts,
        "Figure 7(b): hardware vs software barriers, 64K-point FFT",
        "about -5% total cycles at 64 threads");
    std::vector<u32> threadsB = {2, 4, 8, 16, 32, 64};
    if (opts.quick)
        threadsB = {8, 64};
    panel(opts, 65536, threadsB);
    cyclops::bench::writeManifest(opts, "bench_fig7_barriers");
    return 0;
}
