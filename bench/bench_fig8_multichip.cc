/**
 * @file
 * "Figure 8": multi-chip scaling on the cycle-driven fabric — the
 * cellular-computing claim of paper sections 1 and 2.2 measured
 * instead of asserted. Tori from 2x2x1 up to 4x4x4 run the halo
 * exchange and distributed STREAM workloads through the remote-access
 * window; the table reports simulated cycles, fabric traffic and
 * queueing as the system grows.
 *
 * The paper gives no multi-chip measurements (its evaluation stops at
 * one chip), so this sweep has no paper numbers to match; the golden
 * CSV locks the model against regressions instead. Cycle counts are
 * deterministic — see tests/test_determinism.cc — so the golden is
 * exact up to the shared tolerance band.
 */

#include "bench_util.h"
#include "workloads/multichip.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

struct Shape
{
    u32 x, y, z;
};

struct Point
{
    Shape shape;
    bool halo; ///< halo exchange or distributed STREAM
};

MultiChipResult
runPoint(const Options &opts, const Point &p)
{
    MultiChipConfig cfg;
    cfg.dimX = p.shape.x;
    cfg.dimY = p.shape.y;
    cfg.dimZ = p.shape.z;
    cfg.torus = true;
    cfg.threads = 8;
    cfg.words = p.halo ? 32 : 64;
    cfg.iters = 2;
    cfg.engine = opts.engine;
    cfg.obs = opts.obs;
    cfg.obs.tag = strprintf("fig8.%ux%ux%u.%s", p.shape.x, p.shape.y,
                            p.shape.z, p.halo ? "halo" : "stream");
    return p.halo ? runHaloExchange(cfg) : runDistributedStream(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts, "Figure 8: multi-chip fabric scaling (2x2x1 .. 4x4x4 torus)",
        "sections 1, 2.2 - cellular systems scale by replicating chips "
        "on a 3-D torus with 12 GB/s I/O per chip");

    std::vector<Shape> shapes = {{2, 2, 1}, {2, 2, 2}};
    if (!opts.quick) {
        shapes.push_back({4, 2, 2});
        shapes.push_back({4, 4, 2});
        shapes.push_back({4, 4, 4});
    }
    std::vector<Point> points;
    for (const Shape &s : shapes) {
        points.push_back({s, true});
        points.push_back({s, false});
    }

    const std::vector<MultiChipResult> results = cyclops::bench::sweep(
        opts, points, [&](const Point &p) { return runPoint(opts, p); });

    Table table({"shape", "chips", "workload", "cycles", "instructions",
                 "messages", "bytes", "queue cycles/msg"});
    u64 totalCycles = 0, totalInstructions = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const MultiChipResult &r = results[i];
        const std::string flag = r.verified ? "" : "!";
        table.addRow(
            {strprintf("%ux%ux%u", p.shape.x, p.shape.y, p.shape.z),
             Table::num(s64(p.shape.x * p.shape.y * p.shape.z)),
             std::string(p.halo ? "halo" : "stream") + flag,
             Table::num(s64(r.cycles)), Table::num(s64(r.instructions)),
             Table::num(s64(r.messages)), Table::num(s64(r.bytesMoved)),
             Table::num(r.messages
                            ? double(r.queueCycles) / double(r.messages)
                            : 0.0,
                        1)});
        totalCycles += r.cycles;
        totalInstructions += r.instructions;
    }
    cyclops::bench::emit(opts, table);
    cyclops::bench::note(
        opts, "Traffic grows with the chip count while per-chip load "
              "stays fixed (weak scaling); queueing per message grows "
              "with hop count and contention. '!' marks a run whose "
              "host-side verification failed.");
    cyclops::bench::writeManifest(opts, "bench_fig8_multichip",
                                  totalCycles, totalInstructions);
    return 0;
}
