/**
 * @file
 * Reproduces the thread-allocation-policy experiment of Section 3.2.2:
 * sequential (threads fill quads in order) versus balanced (threads
 * scattered cyclically over the quads) allocation, in STREAM
 * local-cache mode.
 *
 * Claims: the balanced policy helps only when not all threads are in
 * use (less pressure per cache; up to +20% for Copy) and makes no
 * difference at the full thread count.
 */

#include "bench_util.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts,
        "Section 3.2.2: sequential vs balanced thread allocation "
        "(STREAM Copy, local caches, blocked)",
        "balanced wins when threads < all (up to +20% on Copy); no "
        "difference at the full count");

    std::vector<u32> threads = {4, 8, 16, 32, 64, 96, 126};
    if (opts.quick)
        threads = {8, 32, 126};
    const u32 ept = 1000;

    // Sequential and balanced runs at every thread count are
    // independent simulations: one flattened sweep for the --jobs pool.
    struct Point
    {
        u32 threads;
        kernel::AllocPolicy policy;
    };
    std::vector<Point> points;
    for (u32 t : threads) {
        points.push_back({t, kernel::AllocPolicy::Sequential});
        points.push_back({t, kernel::AllocPolicy::Balanced});
    }
    const std::vector<StreamResult> results = cyclops::bench::sweep(
        opts, points, [&](const Point &p) {
            StreamConfig cfg;
            cfg.kernel = StreamKernel::Copy;
            cfg.threads = p.threads;
            cfg.elementsPerThread = ept;
            cfg.localCaches = true;
            cfg.policy = p.policy;
            return runStream(cfg);
        });

    Table table({"threads", "sequential GB/s", "balanced GB/s",
                 "balanced gain %"});
    for (size_t i = 0; i < threads.size(); ++i) {
        const StreamResult &seq = results[2 * i];
        const StreamResult &bal = results[2 * i + 1];
        table.addRow(
            {Table::num(s64(threads[i])), Table::num(seq.totalGBs, 2),
             Table::num(bal.totalGBs, 2),
             Table::num(100.0 * (bal.totalGBs / seq.totalGBs - 1.0),
                        1)});
    }
    cyclops::bench::emit(opts, table);
    cyclops::bench::writeManifest(opts, "bench_alloc_policy");
    return 0;
}
