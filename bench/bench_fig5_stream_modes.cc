/**
 * @file
 * Reproduces Figure 5: one parallel STREAM on 126 threads, total
 * bandwidth vs elements/thread, under the paper's four modes:
 *
 *  (a) blocked partitioning        (b) cyclic partitioning (groups of 8)
 *  (c) blocked + local caches      (d) (c) + 4-way unrolled loops
 *
 * Shape targets: blocked > cyclic; local caches up to +60% for small
 * vectors and ~+30% (Scale) for large; unrolling helps in-cache (the
 * paper reports >80 GB/s peaks in panel d) but not memory-bound sizes.
 *
 * All four panels form one mode x size x kernel grid of independent
 * simulations, dispatched together through the --jobs thread pool.
 */

#include "bench_util.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

const StreamKernel kKernels[] = {StreamKernel::Copy, StreamKernel::Scale,
                                 StreamKernel::Add, StreamKernel::Triad};
constexpr size_t kNumKernels = 4;

struct Mode
{
    const char *title;
    const char *claim;
    void (*tweak)(StreamConfig &);
};

const Mode kModes[] = {
    {"Figure 5(a): blocked partitioning (126 threads)",
     "each thread loads whole cache lines; the upper baseline",
     [](StreamConfig &) {}},
    {"Figure 5(b): cyclic partitioning (126 threads, groups of 8)",
     "a group shares each line while it is still being fetched: "
     "lower bandwidth than blocked",
     [](StreamConfig &cfg) {
         cfg.partition = StreamPartition::Cyclic;
     }},
    {"Figure 5(c): blocked partitioning with local caches",
     "interest groups map each thread's block to its local cache: "
     "up to +60% for small vectors, ~+30% for large (Scale)",
     [](StreamConfig &cfg) { cfg.localCaches = true; }},
    {"Figure 5(d): unrolled loops, block partitioning, local caches",
     "4-way unrolling hides load/store latency in-cache (>80 GB/s "
     "peaks); no effect when memory-bandwidth bound",
     [](StreamConfig &cfg) {
         cfg.localCaches = true;
         cfg.unroll = 4;
     }},
};
constexpr size_t kNumModes = 4;

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);

    std::vector<u32> sizes = {112, 248, 400,  600,  800,
                              1000, 1200, 1400, 1600, 2000};
    if (opts.quick)
        sizes = {112, 400, 1200, 2000};

    struct Point
    {
        size_t mode;
        u32 size;
        StreamKernel kernel;
    };
    std::vector<Point> points;
    for (size_t m = 0; m < kNumModes; ++m)
        for (u32 size : sizes)
            for (StreamKernel kernel : kKernels)
                points.push_back({m, size, kernel});

    const std::vector<StreamResult> results = cyclops::bench::sweep(
        opts, points, [&](const Point &p) {
            StreamConfig cfg;
            cfg.kernel = p.kernel;
            cfg.threads = 126;
            cfg.elementsPerThread = p.size;
            kModes[p.mode].tweak(cfg);
            return runStream(
                cfg, cyclops::bench::chipConfig(
                         opts, strprintf("fig5.m%zu.e%u.%s", p.mode,
                                         p.size,
                                         streamKernelName(p.kernel))));
        });

    size_t idx = 0;
    for (const Mode &mode : kModes) {
        cyclops::bench::banner(opts, mode.title, mode.claim);
        Table table({"elements/thread", "Copy GB/s", "Scale GB/s",
                     "Add GB/s", "Triad GB/s"});
        for (u32 size : sizes) {
            std::vector<std::string> row{Table::num(s64(size))};
            for (size_t k = 0; k < kNumKernels; ++k) {
                const StreamResult &result = results[idx++];
                row.push_back(Table::num(result.totalGBs, 2));
                if (!result.verified)
                    row.back() += "!";
            }
            table.addRow(row);
        }
        cyclops::bench::emit(opts, table);
    }
    cyclops::bench::writeManifest(opts, "bench_fig5_stream_modes");
    return 0;
}
