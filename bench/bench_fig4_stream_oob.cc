/**
 * @file
 * Reproduces Figure 4: STREAM out-of-the-box.
 *
 * (a) single-threaded bandwidth vs vector size: the in-cache to
 *     out-of-cache transition, earlier for Add/Triad (three vectors)
 *     than Copy/Scale (two vectors);
 * (b) 126 independent copies, per-thread bandwidth vs elements per
 *     thread: the transition lands at 200-300 elements/thread, and the
 *     aggregate is 112-120x the single-threaded case for large vectors.
 *
 * Each (size, kernel) point is an independent simulation dispatched
 * through the --jobs host thread pool.
 */

#include "bench_util.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

const StreamKernel kKernels[] = {StreamKernel::Copy, StreamKernel::Scale,
                                 StreamKernel::Add, StreamKernel::Triad};
constexpr size_t kNumKernels = 4;

/** Sweep a size x kernel grid; one row per size, in input order. */
std::vector<StreamResult>
sweepGrid(const Options &opts, const std::vector<u32> &sizes,
          u32 threads, bool independent)
{
    struct Point
    {
        u32 size;
        StreamKernel kernel;
    };
    std::vector<Point> points;
    for (u32 size : sizes)
        for (StreamKernel kernel : kKernels)
            points.push_back({size, kernel});
    return cyclops::bench::sweep(opts, points, [&](const Point &p) {
        StreamConfig cfg;
        cfg.kernel = p.kernel;
        cfg.threads = threads;
        cfg.elementsPerThread = p.size;
        cfg.independent = independent;
        return runStream(
            cfg, cyclops::bench::chipConfig(
                     opts, strprintf("fig4.t%u.e%u.%s", threads, p.size,
                                     streamKernelName(p.kernel))));
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);

    // ---- Figure 4(a): single-threaded sweep -----------------------------
    cyclops::bench::banner(
        opts, "Figure 4(a): single-threaded STREAM out-of-the-box",
        "in-cache to out-of-cache transition as vector size grows; "
        "Add/Triad transition earlier (3 vectors vs 2)");

    std::vector<u32> sizesA = {256,    512,    1024,   2048,  4096,
                               8192,   16384,  32768,  65536, 131072,
                               200000, 252000};
    if (opts.quick)
        sizesA = {512, 4096, 32768, 131072};

    const std::vector<StreamResult> resultsA =
        sweepGrid(opts, sizesA, 1, false);

    Table tableA({"elements", "Copy MB/s", "Scale MB/s", "Add MB/s",
                  "Triad MB/s"});
    for (size_t si = 0; si < sizesA.size(); ++si) {
        std::vector<std::string> row{Table::num(s64(sizesA[si]))};
        for (size_t k = 0; k < kNumKernels; ++k) {
            const StreamResult &result = resultsA[si * kNumKernels + k];
            row.push_back(Table::num(result.perThreadMBs, 1));
            if (!result.verified)
                row.back() += "!";
        }
        tableA.addRow(row);
    }
    cyclops::bench::emit(opts, tableA);

    // ---- Figure 4(b): 126 independent copies -----------------------------
    cyclops::bench::banner(
        opts,
        "Figure 4(b): multi-threaded STREAM out-of-the-box "
        "(126 independent copies)",
        "per-thread bandwidth; in-/out-of-cache transition at 200-300 "
        "elements per thread");

    std::vector<u32> sizesB = {112, 248, 400,  600,  800,
                               1000, 1200, 1400, 1600, 2000};
    if (opts.quick)
        sizesB = {112, 400, 1200, 2000};

    const std::vector<StreamResult> resultsB =
        sweepGrid(opts, sizesB, 126, true);

    Table tableB({"elements/thread", "Copy MB/s", "Scale MB/s",
                  "Add MB/s", "Triad MB/s"});
    double largeAggregate[4] = {0, 0, 0, 0};
    for (size_t si = 0; si < sizesB.size(); ++si) {
        std::vector<std::string> row{Table::num(s64(sizesB[si]))};
        for (size_t k = 0; k < kNumKernels; ++k) {
            const StreamResult &result = resultsB[si * kNumKernels + k];
            row.push_back(Table::num(result.perThreadMBs, 1));
            if (!result.verified)
                row.back() += "!";
            if (si + 1 == sizesB.size())
                largeAggregate[k] = result.totalGBs;
        }
        tableB.addRow(row);
    }
    cyclops::bench::emit(opts, tableB);

    // The 112-120x aggregate claim for large vectors.
    std::vector<StreamKernel> singles(kKernels, kKernels + kNumKernels);
    const std::vector<StreamResult> singleResults =
        cyclops::bench::sweep(opts, singles, [&](StreamKernel kernel) {
            StreamConfig cfg;
            cfg.kernel = kernel;
            cfg.threads = 1;
            cfg.elementsPerThread = sizesB.back() * 126;
            return runStream(
                cfg, cyclops::bench::chipConfig(
                         opts, strprintf("fig4single.%s",
                                         streamKernelName(kernel))));
        });

    Table ratio({"Kernel", "126-thread aggregate GB/s",
                 "single-thread GB/s", "ratio (paper: 112-120x)"});
    for (size_t k = 0; k < kNumKernels; ++k) {
        const StreamResult &single = singleResults[k];
        ratio.addRow({streamKernelName(kKernels[k]),
                      Table::num(largeAggregate[k], 2),
                      Table::num(single.totalGBs, 3),
                      Table::num(largeAggregate[k] / single.totalGBs,
                                 1)});
    }
    cyclops::bench::emit(opts, ratio);
    cyclops::bench::writeManifest(opts, "bench_fig4_stream_oob");
    return 0;
}
