/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every bench accepts:
 *   --quick   shrink sweeps (CI-sized run)
 *   --csv     emit CSV instead of aligned tables
 *   --scale N multiply problem sizes by N/100 (default 100)
 */

#ifndef CYCLOPS_BENCH_BENCH_UTIL_H
#define CYCLOPS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "common/types.h"

namespace cyclops::bench
{

struct Options
{
    bool quick = false;
    bool csv = false;
    u32 scale = 100;
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--scale") == 0 &&
                   i + 1 < argc) {
            opts.scale = u32(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--csv] [--scale N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (const char *env = std::getenv("CYCLOPS_BENCH_QUICK"))
        if (env[0] == '1')
            opts.quick = true;
    return opts;
}

inline void
banner(const Options &opts, const char *experiment, const char *claim)
{
    if (opts.csv)
        return;
    std::printf("======================================================"
                "=========\n");
    std::printf("%s\n", experiment);
    std::printf("Paper reference: %s\n", claim);
    std::printf("======================================================"
                "=========\n");
}

inline void
emit(const Options &opts, const Table &table)
{
    std::fputs(opts.csv ? table.csv().c_str() : table.ascii().c_str(),
               stdout);
    std::printf("\n");
}

inline void
note(const Options &opts, const char *text)
{
    if (!opts.csv)
        std::printf("%s\n", text);
}

} // namespace cyclops::bench

#endif // CYCLOPS_BENCH_BENCH_UTIL_H
