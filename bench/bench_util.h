/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every bench accepts:
 *   --quick   shrink sweeps (CI-sized run)
 *   --csv     emit CSV instead of aligned tables
 *   --scale N multiply problem sizes by N/100 (default 100)
 *   --jobs N  run independent simulation points on N host threads
 *             (0 = all hardware threads; also CYCLOPS_BENCH_JOBS)
 *
 * Engine selection (see DESIGN.md section 14; results are identical
 * for every engine and worker count — only wall-clock changes):
 *   --engine serial|sharded   cycle engine (default serial)
 *   --engine-workers N        sharded-engine host workers (0 = auto)
 *   --engine-sampled          fast-functional + sampled-timing mode
 *   --sample-period N         sampling period in cycles
 *   --sample-detail N         detailed-window length in cycles
 *
 * Degraded-chip passthrough (see DESIGN.md section 13; repeatable):
 *   --disable-tu/quad/fpu/dcache/icache/bank N   fuse off a component
 *   --cache-ways N    live D-cache ways per set (0 = all)
 *   --watchdog N      deadlock-watchdog window in cycles (0 = off)
 *
 * Observability passthrough (see DESIGN.md section 10; all default-off
 * and none of them change the simulated timing):
 *   --trace-out PATH      Chrome-trace JSON per simulated chip
 *   --trace-cats LIST     mem,cache,barrier,kernel,sched or "all"
 *   --trace-capacity N    tracer ring size in events
 *   --stats-json PATH     end-of-run counters/histograms JSON
 *   --stats-csv PATH      epoch-sampled counter time-series CSV
 *   --stats-interval N    epoch sample period in cycles
 *   --prof-out PATH       PC-sampling profile (JSON + .folded +
 *                         .heatmap.csv per simulated chip)
 *   --prof-interval N     PC sample period in cycles (default 512
 *                         when --prof-out is given)
 *   --fabric-stats PATH   fabric stats JSON (multi-chip benches;
 *                         schema cyclops-fabric-v1, validated by
 *                         tools/check_fabric.py)
 *   --fabric-heatmap PATH link/pair congestion heatmap CSV
 *                         (multi-chip benches; DESIGN.md section 17)
 *   --host-obs            host-side simulator telemetry (hostObs
 *                         section in stats JSON, host Chrome-trace
 *                         process; DESIGN.md section 15)
 *   --manifest PATH       per-run JSON manifest (config hash, engine,
 *                         git describe, wall time) for
 *                         tools/check_regress.py
 * Paths may contain "%t", replaced by a per-sweep-point tag so
 * concurrent simulation points never share an output file.
 *
 * Simulation points are independent (one Chip each), so sweeps run
 * through cyclops::parallelSweep; results are collected in input
 * order, making the emitted tables byte-identical for any job count.
 */

#ifndef CYCLOPS_BENCH_BENCH_UTIL_H
#define CYCLOPS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/hostobs.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/table.h"
#include "common/trace.h"
#include "common/types.h"

namespace cyclops::bench
{

struct Options
{
    bool quick = false;
    bool csv = false;
    u32 scale = 100;
    u32 jobs = 1;
    ObsConfig obs;     ///< observability passthrough for simulated chips
    FaultConfig fault; ///< degraded-chip fault map for simulated chips
    EngineConfig engine; ///< cycle-engine selection (serial by default)
    std::string manifestOut; ///< per-run manifest path ("" = none)
    u64 startNs = 0;         ///< hostNowNs() at option parsing
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opts;
    opts.startNs = hostNowNs();
    if (const char *env = std::getenv("CYCLOPS_BENCH_JOBS"))
        opts.jobs = SimPool::resolveJobs(u32(std::atoi(env)));
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--scale") == 0 &&
                   i + 1 < argc) {
            opts.scale = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--jobs") == 0 &&
                   i + 1 < argc) {
            opts.jobs = SimPool::resolveJobs(u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceOut = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-cats") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceCats = parseTraceCats(argv[++i]);
        } else if (std::strcmp(argv[i], "--trace-capacity") == 0 &&
                   i + 1 < argc) {
            opts.obs.traceCapacity = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--stats-json") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsJson = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-csv") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsCsv = argv[++i];
        } else if (std::strcmp(argv[i], "--stats-interval") == 0 &&
                   i + 1 < argc) {
            opts.obs.statsInterval = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--prof-out") == 0 &&
                   i + 1 < argc) {
            opts.obs.profOut = argv[++i];
        } else if (std::strcmp(argv[i], "--prof-interval") == 0 &&
                   i + 1 < argc) {
            opts.obs.profInterval = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--fabric-stats") == 0 &&
                   i + 1 < argc) {
            opts.obs.fabricStats = argv[++i];
        } else if (std::strcmp(argv[i], "--fabric-heatmap") == 0 &&
                   i + 1 < argc) {
            opts.obs.fabricHeatmap = argv[++i];
        } else if (std::strcmp(argv[i], "--host-obs") == 0) {
            opts.obs.hostObs = true;
        } else if (std::strcmp(argv[i], "--manifest") == 0 &&
                   i + 1 < argc) {
            opts.manifestOut = argv[++i];
        } else if (std::strcmp(argv[i], "--disable-tu") == 0 &&
                   i + 1 < argc) {
            opts.fault.disabledTus.push_back(u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--disable-quad") == 0 &&
                   i + 1 < argc) {
            opts.fault.disabledQuads.push_back(u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--disable-fpu") == 0 &&
                   i + 1 < argc) {
            opts.fault.disabledFpus.push_back(u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--disable-dcache") == 0 &&
                   i + 1 < argc) {
            opts.fault.disabledDcaches.push_back(
                u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--disable-icache") == 0 &&
                   i + 1 < argc) {
            opts.fault.disabledIcaches.push_back(
                u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--disable-bank") == 0 &&
                   i + 1 < argc) {
            opts.fault.disabledBanks.push_back(u32(std::atoi(argv[++i])));
        } else if (std::strcmp(argv[i], "--cache-ways") == 0 &&
                   i + 1 < argc) {
            opts.fault.cacheWays = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--watchdog") == 0 &&
                   i + 1 < argc) {
            opts.fault.watchdogCycles = u64(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--engine") == 0 &&
                   i + 1 < argc) {
            if (!parseEngineKind(argv[++i], &opts.engine.kind)) {
                std::fprintf(stderr,
                             "--engine: unknown engine '%s' (serial, "
                             "sharded)\n", argv[i]);
                std::exit(2);
            }
        } else if (std::strcmp(argv[i], "--engine-workers") == 0 &&
                   i + 1 < argc) {
            opts.engine.workers = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--engine-sampled") == 0) {
            opts.engine.sampled = true;
        } else if (std::strcmp(argv[i], "--sample-period") == 0 &&
                   i + 1 < argc) {
            opts.engine.samplePeriod = u32(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--sample-detail") == 0 &&
                   i + 1 < argc) {
            opts.engine.sampleDetail = u32(std::atoi(argv[++i]));
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--quick] [--csv] [--scale N] [--jobs N]\n"
                "          [--disable-tu N] [--disable-quad N] "
                "[--disable-fpu N]\n"
                "          [--disable-dcache N] [--disable-icache N]\n"
                "          [--disable-bank N] [--cache-ways N] "
                "[--watchdog N]\n"
                "          [--engine serial|sharded] [--engine-workers N]\n"
                "          [--engine-sampled] [--sample-period N] "
                "[--sample-detail N]\n"
                "          [--trace-out P] [--trace-cats LIST]\n"
                "          [--trace-capacity N] [--stats-json P]\n"
                "          [--stats-csv P] [--stats-interval N]\n"
                "          [--prof-out P] [--prof-interval N]\n"
                "          [--fabric-stats P] [--fabric-heatmap P]\n"
                "          [--host-obs] [--manifest P]\n",
                argv[0]);
            std::exit(2);
        }
    }
    // Tracing to an output file needs at least one enabled category;
    // default to all of them so --trace-out alone does what you mean.
    if (!opts.obs.traceOut.empty() && opts.obs.traceCats == 0)
        opts.obs.traceCats = kTraceAll;
    // Same convenience for profiling: --prof-out alone enables sampling.
    if (!opts.obs.profOut.empty() && opts.obs.profInterval == 0)
        opts.obs.profInterval = 512;
    if (const char *env = std::getenv("CYCLOPS_BENCH_QUICK"))
        if (env[0] == '1')
            opts.quick = true;
    return opts;
}

/**
 * A ChipConfig carrying the bench's observability options, tagged so
 * "%t" in output paths expands uniquely per sweep point.
 */
inline ChipConfig
chipConfig(const Options &opts, const std::string &tag)
{
    ChipConfig cfg;
    cfg.obs = opts.obs;
    cfg.obs.tag = tag;
    cfg.fault = opts.fault;
    cfg.engine = opts.engine;
    if (const std::string err = cfg.check(); !err.empty()) {
        std::fprintf(stderr, "bad chip configuration: %s\n",
                     err.c_str());
        std::exit(2);
    }
    return cfg;
}

/**
 * Emit the per-run manifest if --manifest was given. The config hash
 * covers the bench's base ChipConfig (fault map, engine, sampling);
 * sweeps that vary structural parameters per point are identified by
 * the bench name instead. Totals of zero are fine for static benches.
 */
inline void
writeManifest(const Options &opts, const char *benchName,
              u64 simCycles = 0, u64 instructions = 0)
{
    if (opts.manifestOut.empty())
        return;
    const ChipConfig cfg = chipConfig(opts, "manifest");
    RunManifest m;
    m.tool = benchName;
    m.workload = benchName;
    m.config = &cfg;
    m.simCycles = simCycles;
    m.instructions = instructions;
    m.wallSeconds = double(hostNowNs() - opts.startNs) / 1e9;
    writeRunManifest(cfg.obs.expandPath(opts.manifestOut), m);
}

/**
 * Run @p fn over all sweep points on opts.jobs host threads and
 * return the results in input order (table output stays byte-stable).
 */
template <typename Point, typename Fn>
auto
sweep(const Options &opts, const std::vector<Point> &points, Fn fn)
    -> std::vector<decltype(fn(points[0]))>
{
    return parallelSweep(points, opts.jobs, fn);
}

inline void
banner(const Options &opts, const char *experiment, const char *claim)
{
    if (opts.csv)
        return;
    std::printf("======================================================"
                "=========\n");
    std::printf("%s\n", experiment);
    std::printf("Paper reference: %s\n", claim);
    std::printf("======================================================"
                "=========\n");
}

inline void
emit(const Options &opts, const Table &table)
{
    std::fputs(opts.csv ? table.csv().c_str() : table.ascii().c_str(),
               stdout);
    std::printf("\n");
}

inline void
note(const Options &opts, const char *text)
{
    if (!opts.csv)
        std::printf("%s\n", text);
}

} // namespace cyclops::bench

#endif // CYCLOPS_BENCH_BENCH_UTIL_H
