/**
 * @file
 * Reproduces Table 1 of the paper: the interest-group encoding. For
 * every size class the bench shows the encoding, the selected cache
 * set, and validates the two properties the paper requires of the
 * scrambling function: determinism (same address -> same cache) and
 * uniform utilization of the set members. It then demonstrates the
 * performance consequence: local-cache hit latency for the own-cache
 * group versus mostly-remote latency for the chip-wide group.
 */

#include <map>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "bench_util.h"
#include "common/rng.h"
#include "isa/builder.h"

using namespace cyclops;
using namespace cyclops::arch;
using cyclops::bench::Options;

namespace
{

std::string
setDescription(IgClass cls, u8 index)
{
    const u32 size = igGroupSize(cls);
    switch (cls) {
      case IgClass::Own: return "thread's own";
      case IgClass::Scratch:
        return strprintf("scratchpad of cache %u", index);
      case IgClass::One: return strprintf("{%u}", index);
      default: {
        const u32 base = (index & (32 / size - 1)) * size;
        return strprintf("{%u..%u}", base, base + size - 1);
      }
    }
}

/** Measured average load latency for a pointer with interest group. */
double
avgLatency(u8 ig, ThreadId tid, u32 lines)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    if (igDecode(ig).cls == IgClass::Scratch)
        cfg.dcacheScratchWays = 2;
    Chip chip(cfg);

    isa::ProgramBuilder b;
    const u32 buf = b.allocData(lines * 64, 64);
    // Touch each line twice; the second pass measures steady state.
    b.li(10, igAddr(ig, buf));
    b.li(12, s32(lines));
    b.li(13, 10); // ten passes: cold misses amortized
    auto pass = b.newLabel();
    auto loop = b.newLabel();
    b.bind(pass);
    b.mv(14, 10);
    b.mv(15, 12);
    b.bind(loop);
    b.lw(5, 0, 14);
    b.addi(6, 5, 1); // dependent use
    b.addi(14, 14, 64);
    b.addi(15, 15, -1);
    b.bne(15, 0, loop);
    b.addi(13, 13, -1);
    b.bne(13, 0, pass);
    b.halt();

    chip.loadProgram(b.finish());
    chip.setUnit(tid, std::make_unique<ThreadUnit>(tid, chip, 0));
    chip.activate(tid);
    chip.run(10'000'000);
    const Histogram *h = chip.stats().histogram("mem.loadLatency");
    return h ? h->mean() : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts, "Table 1: interest group encoding",
        "cache-placement classes; deterministic, uniform scrambling");

    ChipConfig cfg;
    Rng rng(0x7AB1E);

    Table table({"Encoding", "Selected caches", "Comment",
                 "Determinism", "Uniformity (min/max per cache)"});
    struct Row
    {
        IgClass cls;
        u8 index;
        const char *comment;
    };
    const Row rows[] = {
        {IgClass::Own, 0, "thread's own"},
        {IgClass::One, 8, "exactly one"},
        {IgClass::Pair, 4, "one of a pair"},
        {IgClass::Four, 2, "one of four"},
        {IgClass::Eight, 1, "one of eight"},
        {IgClass::Sixteen, 1, "one of sixteen"},
        {IgClass::All, 0, "one of all"},
    };

    for (const Row &row : rows) {
        const u8 field = igEncode(row.cls, row.index);
        std::string determinism = "n/a";
        std::string uniformity = "n/a";
        if (row.cls != IgClass::Own && row.cls != IgClass::Scratch) {
            const InterestGroup ig = igDecode(field);
            bool deterministic = true;
            std::map<CacheId, u32> histogram;
            const u32 samples = opts.quick ? 20'000 : 200'000;
            for (u32 i = 0; i < samples; ++i) {
                const PhysAddr line =
                    PhysAddr(rng.below(cfg.memBytes() / 64)) * 64;
                const CacheId first =
                    igSelectCache(ig, line, 32, ~0u);
                if (igSelectCache(ig, line, 32, ~0u) != first)
                    deterministic = false;
                ++histogram[first];
            }
            u32 lo = ~0u, hi = 0;
            for (const auto &[cache, count] : histogram) {
                lo = std::min(lo, count);
                hi = std::max(hi, count);
            }
            determinism = deterministic ? "yes" : "VIOLATED";
            uniformity = strprintf(
                "%u caches, %.2fx spread", u32(histogram.size()),
                double(hi) / double(lo));
        }
        std::string bits = "0b";
        for (int bit = 7; bit >= 0; --bit) {
            bits += char('0' + ((field >> bit) & 1));
            if (bit == 5)
                bits += '_';
        }
        table.addRow({bits,
                      setDescription(row.cls, row.index), row.comment,
                      determinism, uniformity});
    }
    cyclops::bench::emit(opts, table);

    Table lat({"Placement", "Avg load latency (cycles)", "Expected"});
    lat.addRow({"own cache (group 0), thread 0",
                Table::num(avgLatency(kIgOwn, 0, 32), 1),
                "~7-8 (hits + amortized cold misses)"});
    lat.addRow({"pinned to cache 0, thread 4 (remote quad)",
                Table::num(avgLatency(igExactly(0), 4, 32), 1),
                "~19 (remote hits + amortized cold misses)"});
    lat.addRow({"chip-wide shared (kernel default), thread 0",
                Table::num(avgLatency(kIgDefault, 0, 256), 1),
                "~18 (1/32 local, 31/32 remote)"});
    lat.addRow({"scratchpad window of cache 0, thread 0",
                Table::num(avgLatency(igScratch(0), 0, 32), 1),
                "~6 (never misses)"});
    cyclops::bench::emit(opts, lat);

    cyclops::bench::note(
        opts,
        "Note: the original bit layout in Table 1 is corrupted in our "
        "source; DESIGN.md documents the reconstructed encoding "
        "(bits[7:5]=size class, bits[4:0]=group index).");
    cyclops::bench::writeManifest(opts, "bench_table1_interest_groups");
    return 0;
}
