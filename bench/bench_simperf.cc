/**
 * @file
 * Simulator host-throughput benchmark: how fast does the simulator
 * itself run, in simulated cycles per wall-clock second and simulated
 * MIPS (million guest instructions per second)?
 *
 * Not a paper figure — this tracks the repo's own performance
 * trajectory so optimization PRs can show wins and regressions are
 * caught. Measures representative serial workloads (STREAM kernels,
 * the SPLASH-2 FFT and a multi-chip halo exchange on the fabric —
 * the lockstep path the single-chip rows never touch), the aggregate
 * throughput of a parallel
 * sweep at --jobs, and the cycle-engine comparison (serial vs the
 * sharded engine at 1/2/4/8 workers vs sampled fast-forward) on the
 * 126-thread STREAM Triad point, and emits machine-readable
 * BENCH_simperf.json. The sharded rows double as a determinism check:
 * their simulated cycle and instruction counts must equal the serial
 * engine's exactly, at every worker count.
 *
 * Wall-clock numbers vary run to run and host to host; the simulated
 * cycle counts printed alongside are deterministic and double as a
 * quick cross-check that an optimization did not change results.
 * Overhead experiments (profiler, host telemetry, fabric
 * observability) therefore report
 * the median of repeated runs plus the coefficient of variation, and
 * the sharded/sampled engine rows run with --host-obs-style telemetry
 * so the emitted "hostObs" JSON section decomposes where their wall
 * time went (see DESIGN.md section 15).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <thread>

#include "bench_util.h"
#include "common/trace.h"
#include "workloads/multichip.h"
#include "workloads/splash.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

/** Fabric aggregates of a multi-chip row (absent on single-chip). */
struct FabricCounters
{
    bool present = false;
    u64 messages = 0;
    u64 bytes = 0;
    u64 queueCycles = 0;
    u64 flitsInjected = 0;
    u64 flitsDelivered = 0;
    u64 flitsInFlight = 0;
    u64 flitsDropped = 0;
    u64 retransmits = 0;
};

struct Measurement
{
    std::string name;
    u64 simCycles = 0;
    u64 instructions = 0;
    double wallSeconds = 0;
    arch::CycleBreakdown attr; ///< where the simulated cycles went
    HostObsSnapshot host;      ///< host telemetry (when obs.hostObs)
    FabricCounters fabric;     ///< multi-chip rows only

    double
    cyclesPerSec() const
    {
        return wallSeconds > 0 ? double(simCycles) / wallSeconds : 0;
    }
    double
    mips() const
    {
        return wallSeconds > 0
                   ? double(instructions) / wallSeconds / 1e6
                   : 0;
    }
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Measurement
measureStream(const char *name, StreamKernel kernel, u32 threads,
              u32 ept, u32 profInterval = 0, bool hostObs = false)
{
    StreamConfig cfg;
    cfg.kernel = kernel;
    cfg.threads = threads;
    cfg.elementsPerThread = ept;
    ChipConfig chipCfg;
    chipCfg.obs.profInterval = profInterval;
    chipCfg.obs.hostObs = hostObs;
    const auto start = std::chrono::steady_clock::now();
    const StreamResult result = runStream(cfg, chipCfg);
    Measurement m;
    m.name = name;
    m.wallSeconds = secondsSince(start);
    m.simCycles = result.simCycles;
    m.instructions = result.instructions;
    m.attr = result.attr;
    m.host = result.host;
    if (!result.verified)
        warn("simperf: %s failed verification", name);
    return m;
}

/** A Measurement selected from repeated runs plus the run-to-run noise. */
struct Repeated
{
    Measurement m;     ///< the run with the median cycles/sec
    u32 repeats = 0;
    double covPct = 0; ///< stddev/mean of cycles/sec, percent
};

/**
 * Run @p fn @p repeats times and keep the median-rate run. Single-run
 * wall clocks on a loaded host are noisy enough to report negative
 * overheads for free features; the median washes that out and the
 * coefficient of variation says how trustworthy the number is
 * (tools/check_simperf.py rejects implausibly noisy runs).
 */
Repeated
selectMedian(std::vector<Measurement> runs)
{
    std::vector<size_t> order(runs.size());
    std::iota(order.begin(), order.end(), size_t(0));
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return runs[a].cyclesPerSec() < runs[b].cyclesPerSec();
    });
    double mean = 0;
    for (const Measurement &r : runs)
        mean += r.cyclesPerSec();
    mean /= double(runs.size());
    double var = 0;
    for (const Measurement &r : runs) {
        const double d = r.cyclesPerSec() - mean;
        var += d * d;
    }
    var /= double(runs.size());
    Repeated rep;
    rep.m = runs[order[runs.size() / 2]];
    rep.repeats = u32(runs.size());
    rep.covPct = mean > 0 ? std::sqrt(var) / mean * 100.0 : 0.0;
    return rep;
}

/**
 * Run an A/B overhead experiment with the sides interleaved
 * (off, on, off, on, ...): host throughput drifts monotonically over
 * the benchmark's lifetime (allocator and page-cache warm-up), so
 * running all of one side first hands whichever side runs second a
 * systematic advantage far larger than the feature being measured.
 * Each side is then reduced by selectMedian independently.
 */
template <typename FnOff, typename FnOn>
std::pair<Repeated, Repeated>
repeatMedianPair(u32 repeats, FnOff fnOff, FnOn fnOn)
{
    std::vector<Measurement> offs, ons;
    offs.reserve(repeats);
    ons.reserve(repeats);
    for (u32 i = 0; i < repeats; ++i) {
        offs.push_back(fnOff());
        ons.push_back(fnOn());
    }
    return {selectMedian(std::move(offs)), selectMedian(std::move(ons))};
}

Measurement
measureFft(const char *name, u32 threads, u32 points)
{
    const auto start = std::chrono::steady_clock::now();
    const SplashResult result =
        runFft(threads, points, BarrierKind::Hw, ChipConfig{});
    Measurement m;
    m.name = name;
    m.wallSeconds = secondsSince(start);
    m.simCycles = result.cycles;
    m.instructions = result.instructions;
    m.attr = result.attr;
    if (!result.verified)
        warn("simperf: %s failed verification", name);
    return m;
}

/**
 * Host throughput of a whole multi-chip system: N chips in fabric
 * lockstep running the halo exchange. Tracks the epoch-barrier and
 * delivery-queue overhead the single-chip rows never exercise.
 */
Measurement
measureMultiChip(const char *name, u32 dx, u32 dy, u32 dz, u32 words,
                 u32 iters, bool fabricObs = false,
                 bool benignFaultMap = false)
{
    MultiChipConfig cfg;
    cfg.dimX = dx;
    cfg.dimY = dy;
    cfg.dimZ = dz;
    cfg.words = words;
    cfg.iters = iters;
    if (benignFaultMap) {
        // Arm the fault model without perturbing timing: a flaky link
        // at ppm = 0 never draws a corruption, so every message rides
        // its healthy path — this measures the pure cost of the
        // per-packet fault bookkeeping (route lookups through the
        // fault-aware table, corruption draws, in-order clamps).
        net::LinkFault lf;
        lf.src = 0;
        lf.dst = 1;
        lf.kind = net::LinkFaultKind::Flaky;
        lf.flakyPpm = 0;
        cfg.faults.links = {lf};
    }
    if (fabricObs) {
        // Fabric observability without file output: the per-epoch
        // sampler walks every per-link stat and the net-category
        // tracer records per-link slices and packet flows into the
        // ring buffer, which is where the collection cost lives. A
        // small ring keeps the one-time buffer allocation (5 tracers:
        // 4 chips + fabric) from dwarfing the short benchmark run —
        // the ring wraps, so per-event recording cost is unchanged.
        // The epoch matches what a fig8-length sweep would use: a row
        // costs O(scalars) regardless of interval, so the gated
        // quantity is the per-event/per-row path, not row count.
        cfg.obs.statsInterval = 4096;
        cfg.obs.traceCats = traceBit(TraceCat::Net);
        cfg.obs.traceCapacity = 4096;
    }
    const auto start = std::chrono::steady_clock::now();
    const MultiChipResult result = runHaloExchange(cfg);
    Measurement m;
    m.name = name;
    m.wallSeconds = secondsSince(start);
    m.simCycles = result.cycles;
    m.instructions = result.instructions;
    m.attr = result.attr;
    m.fabric.present = true;
    m.fabric.messages = result.messages;
    m.fabric.bytes = result.bytesMoved;
    m.fabric.queueCycles = result.queueCycles;
    m.fabric.flitsInjected = result.flitsInjected;
    m.fabric.flitsDelivered = result.flitsDelivered;
    m.fabric.flitsInFlight = result.flitsInFlight;
    m.fabric.flitsDropped = result.flitsDropped;
    m.fabric.retransmits = result.retransmits;
    if (!result.verified)
        warn("simperf: %s failed verification", name);
    return m;
}

/** Aggregate throughput of a parallel STREAM sweep at opts.jobs. */
Measurement
measureSweep(const Options &opts, const std::vector<u32> &sizes)
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<StreamResult> results = cyclops::bench::sweep(
        opts, sizes, [&](u32 size) {
            StreamConfig cfg;
            cfg.kernel = StreamKernel::Triad;
            cfg.threads = 126;
            cfg.elementsPerThread = size;
            return runStream(cfg);
        });
    Measurement m;
    m.name = strprintf("stream_sweep_jobs%u", opts.jobs);
    m.wallSeconds = secondsSince(start);
    for (const StreamResult &r : results) {
        m.simCycles += r.simCycles;
        m.instructions += r.instructions;
        m.attr.add(r.attr);
    }
    return m;
}

/** One engine-comparison row: a named engine setup and its result. */
struct EngineRow
{
    std::string name;   ///< "serial", "sharded", "sampled"
    u32 workers = 0;    ///< sharded worker count (0 otherwise)
    Measurement m;
    double speedup = 0; ///< serial wall / this wall
};

/** Run the engine-comparison workload under @p engine. */
Measurement
measureEngine(const char *name, const EngineConfig &engine, u32 ept,
              bool hostObs = false)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 126;
    cfg.elementsPerThread = ept;
    ChipConfig chipCfg;
    chipCfg.engine = engine;
    chipCfg.obs.hostObs = hostObs;
    const auto start = std::chrono::steady_clock::now();
    const StreamResult result = runStream(cfg, chipCfg);
    Measurement m;
    m.name = name;
    m.wallSeconds = secondsSince(start);
    m.simCycles = result.simCycles;
    m.instructions = result.instructions;
    m.attr = result.attr;
    m.host = result.host;
    if (!result.verified)
        warn("simperf: %s failed verification", name);
    return m;
}

/**
 * The cycle-engine comparison on the 126-thread Triad point: serial
 * reference, sharded at 1/2/4/8 workers (results must be identical),
 * and sampled fast-forward (results approximate; the error is
 * reported). Returns the rows; @p samplingErrorPct receives the
 * sampled engine's simulated-cycle error against serial.
 */
std::vector<EngineRow>
measureEngines(u32 ept, double *samplingErrorPct)
{
    std::vector<EngineRow> rows;

    EngineConfig serial;
    rows.push_back({"serial", 0,
                    measureEngine("engine_serial", serial, ept), 1.0});
    // Copy, not reference: the push_backs below reallocate the vector.
    const Measurement ref = rows[0].m;

    // The sharded and sampled rows run with host telemetry on: the
    // hostObs JSON section decomposes their wall-clock gap against the
    // serial reference, which stays telemetry-free. The determinism
    // check below doubles as proof that telemetry never changes
    // simulated results.
    for (u32 w : {1u, 2u, 4u, 8u}) {
        EngineConfig sharded;
        sharded.kind = EngineKind::Sharded;
        sharded.workers = w;
        EngineRow row{strprintf("sharded_w%u", w), w,
                      measureEngine(
                          strprintf("engine_sharded_w%u", w).c_str(),
                          sharded, ept, true),
                      0};
        if (row.m.simCycles != ref.simCycles ||
            row.m.instructions != ref.instructions)
            warn("simperf: sharded engine (%u workers) diverged from "
                 "serial: %llu/%llu cycles, %llu/%llu instructions",
                 w, static_cast<unsigned long long>(row.m.simCycles),
                 static_cast<unsigned long long>(ref.simCycles),
                 static_cast<unsigned long long>(row.m.instructions),
                 static_cast<unsigned long long>(ref.instructions));
        rows.push_back(row);
    }

    EngineConfig sampled;
    sampled.sampled = true;
    rows.push_back({"sampled", 0,
                    measureEngine("engine_sampled", sampled, ept, true),
                    0});
    *samplingErrorPct =
        ref.simCycles > 0
            ? std::fabs(double(rows.back().m.simCycles) -
                        double(ref.simCycles)) /
                  double(ref.simCycles) * 100.0
            : 0.0;

    for (EngineRow &row : rows)
        row.speedup = row.m.wallSeconds > 0
                          ? ref.wallSeconds / row.m.wallSeconds
                          : 0;
    return rows;
}

/**
 * An on/off overhead experiment: the same workload with a feature
 * enabled vs disabled, each side measured as the median of repeated
 * runs. Used for the profiler and for host telemetry itself.
 */
struct Overhead
{
    u32 profInterval = 0; ///< profiler experiment only
    u32 repeats = 0;
    Measurement off;
    Measurement on;
    double offCovPct = 0;
    double onCovPct = 0;

    double
    overheadPct() const
    {
        return off.cyclesPerSec() > 0
                   ? (1.0 - on.cyclesPerSec() / off.cyclesPerSec()) * 100
                   : 0;
    }
};

/**
 * The "hostObs" JSON section: host-telemetry overhead, the sampled
 * engine's window split, and a per-row decomposition of the sharded
 * engine's wall-clock gap against the serial reference — crew wall,
 * coordinator wait, phase-B commit, per-worker busy/wait/ticks, and
 * what fraction of the gap the measured synchronization overhead
 * explains (gapExplainedPct).
 */
void
writeHostObsJson(std::FILE *f, const Overhead &hostOh,
                 const std::vector<EngineRow> &engines)
{
    std::fprintf(f,
                 "  \"hostObs\": {\n"
                 "    \"enabled\": true,\n"
                 "    \"overheadPct\": %.2f,\n"
                 "    \"overheadRepeats\": %u,\n"
                 "    \"overheadDisabledCovPct\": %.2f,\n"
                 "    \"overheadEnabledCovPct\": %.2f,\n"
                 "    \"peakRssKb\": %llu,\n",
                 hostOh.overheadPct(), hostOh.repeats, hostOh.offCovPct,
                 hostOh.onCovPct,
                 static_cast<unsigned long long>(hostPeakRssKb()));

    const EngineRow *sampledRow = nullptr;
    for (const EngineRow &e : engines)
        if (e.name == "sampled")
            sampledRow = &e;
    if (sampledRow) {
        const HostObsSnapshot &s = sampledRow->m.host;
        std::fprintf(f,
                     "    \"sampled\": {\"detailedCycles\": %llu, "
                     "\"functionalCycles\": %llu, "
                     "\"warmAccesses\": %llu},\n",
                     static_cast<unsigned long long>(s.detailedCycles),
                     static_cast<unsigned long long>(s.functionalCycles),
                     static_cast<unsigned long long>(s.warmAccesses));
    }

    const double serialWall =
        engines.empty() ? 0.0 : engines[0].m.wallSeconds;
    std::fprintf(f, "    \"sharded\": [\n");
    bool first = true;
    for (const EngineRow &e : engines) {
        if (e.workers == 0)
            continue;
        const HostObsSnapshot &s = e.m.host;
        const double gap = e.m.wallSeconds - serialWall;
        const double sync = double(s.syncOverheadNanos()) / 1e9;
        // How much of the serial-vs-sharded gap the instrumented
        // phases cover: the residual (wall minus crew minus phase B)
        // is uninstrumented run-loop work the serial engine also
        // pays, so explained = gap - residual. Slightly conservative
        // — the residual double-counts shared scheduling cost.
        const double residual = e.m.wallSeconds -
                                double(s.crewNanos) / 1e9 -
                                double(s.phaseBNanos) / 1e9;
        const double explainedPct =
            gap > 0 ? (gap - residual) / gap * 100.0 : 0.0;
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(
            f,
            "      {\"name\": \"%s\", \"workers\": %u, "
            "\"wallSeconds\": %.6f, \"gapVsSerialSeconds\": %.6f,\n"
            "       \"crewSeconds\": %.6f, \"coordWaitSeconds\": %.6f, "
            "\"phaseBSeconds\": %.6f,\n"
            "       \"shardedCycles\": %llu, "
            "\"serialFallbackCycles\": %llu, \"shardedTicks\": %llu, "
            "\"deferredCommits\": %llu, \"quadPoisons\": %llu,\n"
            "       \"tickImbalancePct\": %.2f, "
            "\"syncOverheadSeconds\": %.6f, "
            "\"gapExplainedPct\": %.1f,\n"
            "       \"perWorker\": [",
            e.name.c_str(), e.workers, e.m.wallSeconds, gap,
            double(s.crewNanos) / 1e9, double(s.coordWaitNanos) / 1e9,
            double(s.phaseBNanos) / 1e9,
            static_cast<unsigned long long>(s.shardedCycles),
            static_cast<unsigned long long>(s.serialFallbackCycles),
            static_cast<unsigned long long>(s.shardedTicks),
            static_cast<unsigned long long>(s.deferredCommits),
            static_cast<unsigned long long>(s.workerQuadPoisons()),
            s.tickImbalancePct(), sync, explainedPct);
        for (size_t w = 0; w < s.worker.size(); ++w) {
            const HostObsSnapshot::Worker &ws = s.worker[w];
            std::fprintf(
                f,
                "%s{\"busySeconds\": %.6f, \"waitSeconds\": %.6f, "
                "\"epochs\": %llu, \"ticks\": %llu, \"defers\": %llu}",
                w ? ", " : "", double(ws.busyNanos) / 1e9,
                double(ws.waitNanos) / 1e9,
                static_cast<unsigned long long>(ws.epochs),
                static_cast<unsigned long long>(ws.ticks),
                static_cast<unsigned long long>(ws.defers));
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "\n    ]\n  },\n");
}

void
writeJson(const char *path, const Options &opts,
          const std::vector<Measurement> &measurements,
          const Overhead &overhead, const Overhead &hostOh,
          const Overhead &fabricOh, const Overhead &faultOh,
          const std::vector<EngineRow> &engines,
          double samplingErrorPct)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        warn("simperf: cannot write %s", path);
        return;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"simperf\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", opts.quick ? "true" : "false");
    std::fprintf(f, "  \"jobs\": %u,\n", opts.jobs);
    std::fprintf(f, "  \"hostCores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"engines\": [\n");
    for (size_t i = 0; i < engines.size(); ++i) {
        const EngineRow &e = engines[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"workers\": %u, "
                     "\"simCycles\": %llu, \"instructions\": %llu, "
                     "\"wallSeconds\": %.6f, \"mips\": %.3f, "
                     "\"speedup\": %.3f}%s\n",
                     e.name.c_str(), e.workers,
                     static_cast<unsigned long long>(e.m.simCycles),
                     static_cast<unsigned long long>(e.m.instructions),
                     e.m.wallSeconds, e.m.mips(), e.speedup,
                     i + 1 < engines.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"samplingErrorPct\": %.4f,\n", samplingErrorPct);
    std::fprintf(f,
                 "  \"profilerOverhead\": {\"workload\": \"%s\", "
                 "\"profInterval\": %u, \"repeats\": %u, "
                 "\"disabledCyclesPerSec\": %.0f, "
                 "\"enabledCyclesPerSec\": %.0f, "
                 "\"disabledCovPct\": %.2f, \"enabledCovPct\": %.2f, "
                 "\"overheadPct\": %.2f},\n",
                 overhead.off.name.c_str(), overhead.profInterval,
                 overhead.repeats, overhead.off.cyclesPerSec(),
                 overhead.on.cyclesPerSec(), overhead.offCovPct,
                 overhead.onCovPct, overhead.overheadPct());
    std::fprintf(f,
                 "  \"fabricObsOverhead\": {\"workload\": \"%s\", "
                 "\"repeats\": %u, "
                 "\"disabledCyclesPerSec\": %.0f, "
                 "\"enabledCyclesPerSec\": %.0f, "
                 "\"disabledCovPct\": %.2f, \"enabledCovPct\": %.2f, "
                 "\"overheadPct\": %.2f, \"simCyclesDrift\": %lld},\n",
                 fabricOh.off.name.c_str(), fabricOh.repeats,
                 fabricOh.off.cyclesPerSec(),
                 fabricOh.on.cyclesPerSec(), fabricOh.offCovPct,
                 fabricOh.onCovPct, fabricOh.overheadPct(),
                 static_cast<long long>(s64(fabricOh.on.simCycles) -
                                        s64(fabricOh.off.simCycles)));
    std::fprintf(f,
                 "  \"fabricFaultOverhead\": {\"workload\": \"%s\", "
                 "\"repeats\": %u, "
                 "\"disabledCyclesPerSec\": %.0f, "
                 "\"enabledCyclesPerSec\": %.0f, "
                 "\"disabledCovPct\": %.2f, \"enabledCovPct\": %.2f, "
                 "\"overheadPct\": %.2f, \"simCyclesDrift\": %lld},\n",
                 faultOh.off.name.c_str(), faultOh.repeats,
                 faultOh.off.cyclesPerSec(),
                 faultOh.on.cyclesPerSec(), faultOh.offCovPct,
                 faultOh.onCovPct, faultOh.overheadPct(),
                 static_cast<long long>(s64(faultOh.on.simCycles) -
                                        s64(faultOh.off.simCycles)));
    writeHostObsJson(f, hostOh, engines);
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < measurements.size(); ++i) {
        const Measurement &m = measurements[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"simCycles\": %llu, "
                     "\"instructions\": %llu, \"wallSeconds\": %.6f, "
                     "\"cyclesPerSec\": %.0f, \"mips\": %.3f, "
                     "\"attribution\": {",
                     m.name.c_str(),
                     static_cast<unsigned long long>(m.simCycles),
                     static_cast<unsigned long long>(m.instructions),
                     m.wallSeconds, m.cyclesPerSec(), m.mips());
        for (u32 c = 0; c <= arch::kNumCycleCats; ++c)
            std::fprintf(f, "%s\"%s\": %llu", c ? ", " : "",
                         arch::kCycleCatNames[c],
                         static_cast<unsigned long long>(
                             m.attr.value(c)));
        std::fprintf(f, "}");
        if (m.fabric.present)
            std::fprintf(
                f,
                ", \"fabric\": {\"messages\": %llu, \"bytes\": %llu, "
                "\"queueCycles\": %llu, \"flitsInjected\": %llu, "
                "\"flitsDelivered\": %llu, \"flitsInFlight\": %llu, "
                "\"droppedFlits\": %llu, \"retransmits\": %llu}",
                static_cast<unsigned long long>(m.fabric.messages),
                static_cast<unsigned long long>(m.fabric.bytes),
                static_cast<unsigned long long>(m.fabric.queueCycles),
                static_cast<unsigned long long>(m.fabric.flitsInjected),
                static_cast<unsigned long long>(
                    m.fabric.flitsDelivered),
                static_cast<unsigned long long>(
                    m.fabric.flitsInFlight),
                static_cast<unsigned long long>(m.fabric.flitsDropped),
                static_cast<unsigned long long>(
                    m.fabric.retransmits));
        std::fprintf(f, "}%s\n",
                     i + 1 < measurements.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts, "Simulator host throughput (bench_simperf)",
        "repo performance trajectory: simulated cycles/sec and "
        "simulated MIPS per workload (not a paper figure)");

    std::vector<Measurement> ms;
    if (opts.quick) {
        ms.push_back(measureStream("stream_copy", StreamKernel::Copy,
                                   126, 500));
        ms.push_back(measureStream("stream_triad", StreamKernel::Triad,
                                   126, 500));
        ms.push_back(measureFft("fft_16k", 32, 16384));
        ms.push_back(measureMultiChip("multichip_2x2x1", 2, 2, 1, 32, 4));
        ms.push_back(measureSweep(opts, {112, 248, 400, 600}));
    } else {
        ms.push_back(measureStream("stream_copy", StreamKernel::Copy,
                                   126, 2000));
        ms.push_back(measureStream("stream_triad", StreamKernel::Triad,
                                   126, 2000));
        ms.push_back(measureFft("fft_64k", 64, 65536));
        ms.push_back(measureMultiChip("multichip_2x2x2", 2, 2, 2, 64, 8));
        ms.push_back(measureSweep(
            opts, {112, 248, 400, 600, 800, 1000, 1200, 1400, 1600,
                   2000}));
    }

    // Profiler overhead: the same workload with PC sampling enabled
    // (no file output) vs disabled. The simulated cycle counts must
    // match exactly — the profiler never changes simulated timing.
    // Each side is the median of kRepeats runs: a single wall-clock
    // pair regularly reported a *negative* overhead on a loaded host.
    constexpr u32 kRepeats = 5;
    Overhead overhead;
    overhead.profInterval = 256;
    overhead.repeats = kRepeats;
    const u32 ohEpt = opts.quick ? 500 : 2000;
    {
        const auto [off, on] = repeatMedianPair(
            kRepeats,
            [&] {
                return measureStream("stream_triad_profoff",
                                     StreamKernel::Triad, 126, ohEpt);
            },
            [&] {
                return measureStream("stream_triad_profon",
                                     StreamKernel::Triad, 126, ohEpt,
                                     overhead.profInterval);
            });
        overhead.off = off.m;
        overhead.on = on.m;
        overhead.offCovPct = off.covPct;
        overhead.onCovPct = on.covPct;
    }
    if (overhead.on.simCycles != overhead.off.simCycles)
        warn("simperf: profiler changed simulated timing (%llu != "
             "%llu cycles)",
             static_cast<unsigned long long>(overhead.on.simCycles),
             static_cast<unsigned long long>(overhead.off.simCycles));
    ms.push_back(overhead.off);
    ms.push_back(overhead.on);

    // Host-telemetry overhead, measured the same way on the default
    // (serial) engine: hostObs on vs off must track within ~1% and
    // must not change simulated cycles at all.
    Overhead hostOh;
    hostOh.repeats = kRepeats;
    {
        const auto [off, on] = repeatMedianPair(
            kRepeats,
            [&] {
                return measureStream("stream_triad_hostobs_off",
                                     StreamKernel::Triad, 126, ohEpt);
            },
            [&] {
                return measureStream("stream_triad_hostobs_on",
                                     StreamKernel::Triad, 126, ohEpt, 0,
                                     true);
            });
        hostOh.off = off.m;
        hostOh.on = on.m;
        hostOh.offCovPct = off.covPct;
        hostOh.onCovPct = on.covPct;
    }
    if (hostOh.on.simCycles != hostOh.off.simCycles)
        warn("simperf: host telemetry changed simulated timing "
             "(%llu != %llu cycles)",
             static_cast<unsigned long long>(hostOh.on.simCycles),
             static_cast<unsigned long long>(hostOh.off.simCycles));
    ms.push_back(hostOh.off);
    ms.push_back(hostOh.on);

    // Fabric-observability overhead: the multi-chip halo exchange with
    // the per-link epoch sampler and net-category tracer enabled (no
    // file output) vs fully off. The simCyclesDrift field in the JSON
    // must be exactly zero — fabric telemetry never moves a simulated
    // cycle (tools/check_simperf.py enforces it).
    Overhead fabricOh;
    fabricOh.repeats = kRepeats;
    {
        // Big enough that each run is ~100ms: at single-digit
        // millisecond run lengths the pair measurement is dominated
        // by host scheduling noise, not by collection cost.
        const u32 fw = opts.quick ? 256 : 512;
        const u32 fi = 32;
        const auto [off, on] = repeatMedianPair(
            kRepeats,
            [&] {
                return measureMultiChip("multichip_fabricobs_off", 2, 2,
                                        1, fw, fi);
            },
            [&] {
                return measureMultiChip("multichip_fabricobs_on", 2, 2,
                                        1, fw, fi, true);
            });
        fabricOh.off = off.m;
        fabricOh.on = on.m;
        fabricOh.offCovPct = off.covPct;
        fabricOh.onCovPct = on.covPct;
    }
    if (fabricOh.on.simCycles != fabricOh.off.simCycles)
        warn("simperf: fabric observability changed simulated timing "
             "(%llu != %llu cycles)",
             static_cast<unsigned long long>(fabricOh.on.simCycles),
             static_cast<unsigned long long>(fabricOh.off.simCycles));
    ms.push_back(fabricOh.off);
    ms.push_back(fabricOh.on);

    // Fault-model overhead: the same halo exchange with the fault
    // model armed by a benign map (one flaky link at ppm = 0) vs the
    // healthy fast path. The benign map routes every message over its
    // healthy path and never draws a corruption, so simCyclesDrift
    // must be exactly zero — arming the model is a host-cost-only
    // change (tools/check_simperf.py enforces it).
    Overhead fabricFaultOh;
    fabricFaultOh.repeats = kRepeats;
    {
        const u32 fw = opts.quick ? 256 : 512;
        const u32 fi = 32;
        const auto [off, on] = repeatMedianPair(
            kRepeats,
            [&] {
                return measureMultiChip("multichip_fault_off", 2, 2, 1,
                                        fw, fi);
            },
            [&] {
                return measureMultiChip("multichip_fault_armed", 2, 2,
                                        1, fw, fi, false, true);
            });
        fabricFaultOh.off = off.m;
        fabricFaultOh.on = on.m;
        fabricFaultOh.offCovPct = off.covPct;
        fabricFaultOh.onCovPct = on.covPct;
    }
    if (fabricFaultOh.on.simCycles != fabricFaultOh.off.simCycles)
        warn("simperf: benign fault map changed simulated timing "
             "(%llu != %llu cycles)",
             static_cast<unsigned long long>(
                 fabricFaultOh.on.simCycles),
             static_cast<unsigned long long>(
                 fabricFaultOh.off.simCycles));
    ms.push_back(fabricFaultOh.off);
    ms.push_back(fabricFaultOh.on);

    // Cycle-engine comparison (see measureEngines). On hosts with too
    // few cores for the crew the sharded rows measure synchronization
    // overhead, not speedup — consumers gate on hostCores.
    double samplingErrorPct = 0;
    const std::vector<EngineRow> engines =
        measureEngines(opts.quick ? 500 : 2000, &samplingErrorPct);
    for (const EngineRow &e : engines)
        ms.push_back(e.m);

    Table table({"workload", "sim cycles", "instructions", "wall s",
                 "Mcycles/s", "sim MIPS"});
    for (const Measurement &m : ms) {
        table.addRow({m.name, Table::num(s64(m.simCycles)),
                      Table::num(s64(m.instructions)),
                      Table::num(m.wallSeconds, 3),
                      Table::num(m.cyclesPerSec() / 1e6, 2),
                      Table::num(m.mips(), 2)});
    }
    cyclops::bench::emit(opts, table);
    cyclops::bench::note(
        opts, strprintf("sampled-engine cycle error vs serial: %.2f%%",
                        samplingErrorPct)
                  .c_str());

    writeJson("BENCH_simperf.json", opts, ms, overhead, hostOh,
              fabricOh, fabricFaultOh, engines, samplingErrorPct);
    cyclops::bench::note(opts, "Wrote BENCH_simperf.json");

    u64 totalCycles = 0, totalInstructions = 0;
    for (const Measurement &m : ms) {
        totalCycles += m.simCycles;
        totalInstructions += m.instructions;
    }
    cyclops::bench::writeManifest(opts, "bench_simperf", totalCycles,
                                  totalInstructions);
    return 0;
}
