/**
 * @file
 * Reproduces Figure 6: best-configuration Cyclops STREAM (unrolled
 * loops, local caches, balanced allocation, block partitioning,
 * 249,984 elements) versus the published SGI Origin 3800-400 results
 * (5,000,000 elements per processor).
 *
 * The Origin series is an approximate digitization of Figure 6(b);
 * the paper likewise plots published numbers, not its own runs. The
 * claim: a single Cyclops chip sustains memory bandwidth similar to a
 * 128-processor top-of-the-line commercial machine (~40 GB/s).
 */

#include "bench_util.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;
using cyclops::bench::Options;

namespace
{

const StreamKernel kKernels[] = {StreamKernel::Copy, StreamKernel::Scale,
                                 StreamKernel::Add, StreamKernel::Triad};

/** Approximate digitization of Fig 6(b): SGI Origin 3800-400 (GB/s). */
struct OriginPoint
{
    u32 procs;
    double copy, scale, add, triad;
};

const OriginPoint kOrigin[] = {
    {1, 0.6, 0.6, 0.7, 0.7},       {2, 1.2, 1.2, 1.3, 1.3},
    {4, 2.3, 2.3, 2.6, 2.6},       {8, 4.5, 4.6, 5.1, 5.1},
    {16, 8.9, 9.0, 10.0, 10.1},    {32, 17.1, 17.4, 19.3, 19.5},
    {64, 31.2, 31.8, 35.3, 35.6},  {128, 39.4, 40.5, 44.7, 45.3},
};

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = cyclops::bench::parseOptions(argc, argv);
    cyclops::bench::banner(
        opts,
        "Figure 6(a): Cyclops best-mode STREAM vs thread count "
        "(249,984 elements total)",
        "sustained ~40 GB/s at full thread count, similar to a "
        "128-processor SGI Origin 3800");

    std::vector<u32> threads = {1, 2, 4, 8, 16, 32, 48, 64, 96, 112,
                                126};
    if (opts.quick)
        threads = {1, 8, 32, 126};
    const u32 totalElements = opts.quick ? 126'000 : 249'984;

    // Each (threads, kernel) point is an independent simulation; run
    // the grid on the --jobs host thread pool.
    struct Point
    {
        u32 threads;
        StreamKernel kernel;
    };
    std::vector<Point> points;
    for (u32 t : threads)
        for (StreamKernel kernel : kKernels)
            points.push_back({t, kernel});

    const std::vector<StreamResult> results = cyclops::bench::sweep(
        opts, points, [&](const Point &p) {
            StreamConfig cfg;
            cfg.kernel = p.kernel;
            cfg.threads = p.threads;
            cfg.elementsPerThread = totalElements / p.threads;
            cfg.localCaches = true;
            cfg.unroll = 4;
            cfg.policy = kernel::AllocPolicy::Balanced;
            return runStream(
                cfg, cyclops::bench::chipConfig(
                         opts, strprintf("fig6.t%u.%s", p.threads,
                                         streamKernelName(p.kernel))));
        });

    Table cyclopsTable({"threads", "Copy GB/s", "Scale GB/s",
                        "Add GB/s", "Triad GB/s"});
    size_t idx = 0;
    for (u32 t : threads) {
        std::vector<std::string> row{Table::num(s64(t))};
        for (size_t k = 0; k < 4; ++k) {
            const StreamResult &result = results[idx++];
            row.push_back(Table::num(result.totalGBs, 2));
            if (!result.verified)
                row.back() += "!";
        }
        cyclopsTable.addRow(row);
    }
    cyclops::bench::emit(opts, cyclopsTable);

    cyclops::bench::banner(
        opts,
        "Figure 6(b): SGI Origin 3800-400, published STREAM results "
        "(5,000,000 elements/processor)",
        "approximate digitization; reference series only");
    Table originTable({"processors", "Copy GB/s", "Scale GB/s",
                       "Add GB/s", "Triad GB/s"});
    for (const OriginPoint &p : kOrigin) {
        originTable.addRow({Table::num(s64(p.procs)),
                            Table::num(p.copy, 1), Table::num(p.scale, 1),
                            Table::num(p.add, 1),
                            Table::num(p.triad, 1)});
    }
    cyclops::bench::emit(opts, originTable);
    cyclops::bench::writeManifest(opts, "bench_fig6_origin_compare");
    return 0;
}
