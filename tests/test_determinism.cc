/**
 * @file
 * Determinism regression tests: the safety net for the host-parallel
 * sweep runner and the timing-core hot-path optimizations.
 *
 * A simulation point must be a pure function of its configuration —
 * same cycle counts, instruction counts and statistics on every run,
 * whether executed serially or from a SimPool worker thread. Any
 * hidden shared mutable state (stats registries, logging, caches of
 * decoded state) breaks one of these tests.
 */

#include <atomic>
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "workloads/multichip.h"
#include "workloads/splash.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;

namespace
{

StreamConfig
streamPoint(u32 threads, u32 ept)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = threads;
    cfg.elementsPerThread = ept;
    return cfg;
}

void
expectSameStream(const StreamResult &a, const StreamResult &b)
{
    EXPECT_EQ(a.iterationCycles, b.iterationCycles);
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.bytesPerIteration, b.bytesPerIteration);
    EXPECT_EQ(a.verified, b.verified);
}

void
expectSameSplash(const SplashResult &a, const SplashResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.localHits, b.localHits);
    EXPECT_EQ(a.remoteHits, b.remoteHits);
    EXPECT_EQ(a.localMisses, b.localMisses);
    EXPECT_EQ(a.remoteMisses, b.remoteMisses);
    EXPECT_EQ(a.bankBusyCycles, b.bankBusyCycles);
    EXPECT_EQ(a.portWaitCycles, b.portWaitCycles);
    EXPECT_EQ(a.verified, b.verified);
}

void
expectSameMultiChip(const MultiChipResult &a, const MultiChipResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.bytesMoved, b.bytesMoved);
    EXPECT_EQ(a.queueCycles, b.queueCycles);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.verified, b.verified);
}

} // namespace

TEST(Determinism, StreamRepeatsExactly)
{
    const StreamConfig cfg = streamPoint(16, 400);
    const StreamResult first = runStream(cfg);
    const StreamResult second = runStream(cfg);
    EXPECT_TRUE(first.verified);
    expectSameStream(first, second);
}

TEST(Determinism, FftRepeatsExactly)
{
    const SplashResult first =
        runFft(8, 1024, BarrierKind::Hw, ChipConfig{});
    const SplashResult second =
        runFft(8, 1024, BarrierKind::Hw, ChipConfig{});
    EXPECT_TRUE(first.verified);
    expectSameSplash(first, second);
}

TEST(Determinism, ParallelSweepMatchesSerial)
{
    // The same points through a 4-thread pool and serially must agree
    // bit for bit, in input order.
    std::vector<u32> sizes = {112, 200, 400, 600, 256, 333};
    auto run = [&](u32 size) { return runStream(streamPoint(8, size)); };

    const std::vector<StreamResult> serial =
        parallelSweep(sizes, 1, run);
    const std::vector<StreamResult> parallel =
        parallelSweep(sizes, 4, run);

    ASSERT_EQ(serial.size(), sizes.size());
    ASSERT_EQ(parallel.size(), sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i)
        expectSameStream(serial[i], parallel[i]);
}

TEST(Determinism, MultiChipHaloRepeatsExactly)
{
    // A 2x2x1 torus halo exchange across the fabric: the fingerprint
    // hashes every chip's window memory plus the fabric counters, so
    // equality here is byte-identity of the whole multi-chip run.
    MultiChipConfig cfg;
    cfg.words = 16;
    cfg.iters = 2;
    const MultiChipResult first = runHaloExchange(cfg);
    const MultiChipResult second = runHaloExchange(cfg);
    EXPECT_TRUE(first.verified);
    expectSameMultiChip(first, second);
}

TEST(Determinism, MultiChipHaloSerialVsSharded)
{
    // The sharded engine defers every memory operation to its serial
    // phase B, so remote traffic is injected in the same canonical
    // order as under the serial engine: the runs must be bit-identical.
    MultiChipConfig cfg;
    cfg.words = 16;
    cfg.iters = 2;
    cfg.engine.kind = EngineKind::Serial;
    const MultiChipResult serial = runHaloExchange(cfg);
    cfg.engine.kind = EngineKind::Sharded;
    cfg.engine.workers = 4;
    const MultiChipResult sharded = runHaloExchange(cfg);
    EXPECT_TRUE(serial.verified);
    expectSameMultiChip(serial, sharded);

    cfg.engine.kind = EngineKind::Serial;
    const MultiChipResult streamSerial = runDistributedStream(cfg);
    cfg.engine.kind = EngineKind::Sharded;
    const MultiChipResult streamSharded = runDistributedStream(cfg);
    EXPECT_TRUE(streamSerial.verified);
    expectSameMultiChip(streamSerial, streamSharded);
}

TEST(Determinism, MultiChipSweepMatchesSerial)
{
    // Whole multi-chip systems through the host-parallel sweep runner:
    // job count must not leak into any fabric timing.
    std::vector<u32> words = {8, 12, 16, 24};
    auto run = [&](u32 w) {
        MultiChipConfig cfg;
        cfg.words = w;
        return runHaloExchange(cfg);
    };
    const std::vector<MultiChipResult> serial =
        parallelSweep(words, 1, run);
    const std::vector<MultiChipResult> parallel =
        parallelSweep(words, 4, run);
    for (size_t i = 0; i < words.size(); ++i) {
        EXPECT_TRUE(serial[i].verified) << "point " << i;
        expectSameMultiChip(serial[i], parallel[i]);
    }
}

TEST(Determinism, ParallelSplashSweepMatchesSerial)
{
    std::vector<u32> threads = {1, 2, 4, 8};
    auto run = [&](u32 t) {
        return runFft(t, 1024, BarrierKind::SwTree, ChipConfig{});
    };
    const std::vector<SplashResult> serial =
        parallelSweep(threads, 1, run);
    const std::vector<SplashResult> parallel =
        parallelSweep(threads, 3, run);
    for (size_t i = 0; i < threads.size(); ++i)
        expectSameSplash(serial[i], parallel[i]);
}

TEST(SimPool, CoversEveryIndexExactlyOnce)
{
    SimPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    constexpr size_t kCount = 10'000;
    std::vector<std::atomic<u32>> hits(kCount);
    pool.forEach(kCount, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(SimPool, ReusableAcrossSweeps)
{
    SimPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<u64> sum{0};
        pool.forEach(1000, [&](size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 1000ull * 999 / 2);
    }
}

TEST(SimPool, SerialPoolRunsInline)
{
    SimPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    const auto caller = std::this_thread::get_id();
    bool sameThread = true;
    pool.forEach(64, [&](size_t) {
        sameThread = sameThread && std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(sameThread);
}

TEST(SimPool, ResolveJobs)
{
    EXPECT_EQ(SimPool::resolveJobs(5), 5u);
    EXPECT_GE(SimPool::resolveJobs(0), 1u);
}
