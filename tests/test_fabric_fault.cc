/**
 * @file
 * Lock-down tests for the fault-tolerant fabric (DESIGN.md section
 * 18): link fault maps, fault-aware deterministic routing, end-to-end
 * retry with timeout/backoff, and the structured FabricFailure exit.
 *
 * The central claims: (1) a dead link is survived by deterministic
 * rerouting and a flaky link by checksum-catch + retransmit — the
 * host-verified halo exchange completes bit-identically across
 * repeats, engines, and job counts even while degraded; (2) flit
 * conservation extends to drops: injected == delivered + in flight +
 * dropped, always; (3) a benign fault map (the model armed, nothing
 * degraded) changes no timing at all — the overhead of compiling the
 * fault paths in is zero simulated cycles; (4) a partitioned system
 * ends in RunExit::FabricFailure, never a hang or a host abort.
 */

#include <gtest/gtest.h>

#include "arch/system.h"
#include "common/log.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "workloads/multichip.h"

using namespace cyclops;
using namespace cyclops::net;
using workloads::MultiChipConfig;
using workloads::MultiChipResult;

namespace
{

NetConfig
shape(u32 x, u32 y, u32 z, bool torus)
{
    NetConfig net;
    net.dimX = x;
    net.dimY = y;
    net.dimZ = z;
    net.torus = torus;
    return net;
}

LinkFault
deadLink(u32 src, u32 dst)
{
    LinkFault lf;
    lf.src = src;
    lf.dst = dst;
    lf.kind = LinkFaultKind::Dead;
    return lf;
}

LinkFault
flakyLink(u32 src, u32 dst, u32 ppm, u32 escapePpm = 0)
{
    LinkFault lf;
    lf.src = src;
    lf.dst = dst;
    lf.kind = LinkFaultKind::Flaky;
    lf.flakyPpm = ppm;
    lf.escapePpm = escapePpm;
    return lf;
}

void
expectSameRun(const MultiChipResult &a, const MultiChipResult &b)
{
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.flitsDropped, b.flitsDropped);
    EXPECT_EQ(a.rerouted, b.rerouted);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.crcErrors, b.crcErrors);
}

} // namespace

TEST(FabricFault, CheckFaultMapRejectsBadMaps)
{
    const NetConfig net = shape(2, 2, 1, true);
    FabricFaultMap fm;

    fm.links = {deadLink(0, 7)};
    EXPECT_NE(checkFaultMap(net, fm), ""); // endpoint out of range

    fm.links = {deadLink(1, 1)};
    EXPECT_NE(checkFaultMap(net, fm), ""); // self-addressed

    fm.links = {deadLink(0, 3)};
    EXPECT_NE(checkFaultMap(net, fm), ""); // 0 and 3 are not adjacent

    fm.links = {deadLink(0, 1), flakyLink(0, 1, 1000)};
    EXPECT_NE(checkFaultMap(net, fm), ""); // duplicate link

    fm.links = {flakyLink(0, 1, 2'000'000)};
    EXPECT_NE(checkFaultMap(net, fm), ""); // ppm above 1e6

    fm.links = {deadLink(0, 1)};
    fm.links[0].kind = LinkFaultKind::Derated;
    fm.links[0].derate = 0;
    EXPECT_NE(checkFaultMap(net, fm), ""); // derate must be >= 1

    fm.links = {deadLink(0, 1), flakyLink(1, 0, 250'000)};
    EXPECT_EQ(checkFaultMap(net, fm), ""); // well-formed map
}

TEST(FabricFault, DeadLinkReroutesAndDelivers)
{
    // Kill the 0->1 plus wire of a 2x2x1 torus: the message must take
    // the 0->2->3->1 detour (three hops instead of one) and still be
    // delivered — no drop, no failure, rerouting accounted.
    FabricConfig fc;
    fc.net = shape(2, 2, 1, true);
    fc.faults.links = {deadLink(0, 1)};
    Fabric fabric(fc);
    const Topology topo(fc.net);

    const Delivery d = fabric.inject(0, 0, 1, 64);
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.retries, 0u);
    EXPECT_GT(d.delivered, topo.uncontendedLatency(0, 1, 64));
    EXPECT_EQ(fabric.rerouted(), 1u);
    EXPECT_EQ(fabric.unroutable(), 0u);

    // An untouched pair still rides its healthy DOR path exactly.
    const Delivery h = fabric.inject(0, 3, 2, 64);
    EXPECT_EQ(h.delivered, topo.uncontendedLatency(3, 2, 64));
    EXPECT_EQ(fabric.rerouted(), 1u);

    fabric.advance(kCycleNever);
    EXPECT_EQ(fabric.flitsInFlight(), 0u);
    EXPECT_EQ(fabric.flitsDropped(), 0u);
    EXPECT_EQ(fabric.flitsInjected(), fabric.flitsDelivered());
}

TEST(FabricFault, FlakyLinkRetransmitsAndConserves)
{
    // A 50% flaky link: with 64 messages the checksum must catch
    // corruptions and retransmit. Every caught attempt's flits retire
    // into the dropped ledger; conservation closes with drops.
    FabricConfig fc;
    fc.net = shape(2, 2, 1, true);
    fc.faults.links = {flakyLink(0, 1, 500'000)};
    fc.faults.seed = 3;
    Fabric fabric(fc);

    Cycle now = 0;
    for (u32 i = 0; i < 64; ++i) {
        const Delivery d = fabric.inject(now, 0, 1, 32);
        EXPECT_TRUE(d.ok) << "message " << i;
        now += 16;
    }
    EXPECT_GT(fabric.retransmits(), 0u);
    EXPECT_EQ(fabric.crcErrors(), fabric.retransmits());
    EXPECT_EQ(fabric.retries(), fabric.retransmits());
    EXPECT_EQ(fabric.rerouted(), 0u); // flaky links stay on the route

    fabric.advance(kCycleNever);
    EXPECT_EQ(fabric.flitsInFlight(), 0u);
    EXPECT_GT(fabric.flitsDropped(), 0u);
    EXPECT_EQ(fabric.flitsInjected(),
              fabric.flitsDelivered() + fabric.flitsDropped());

    // Same seed, same draws: a rerun is numerically identical.
    Fabric again(fc);
    Cycle t = 0;
    for (u32 i = 0; i < 64; ++i) {
        again.inject(t, 0, 1, 32);
        t += 16;
    }
    EXPECT_EQ(again.retransmits(), fabric.retransmits());
    EXPECT_EQ(again.crcErrors(), fabric.crcErrors());
}

TEST(FabricFault, PerPairDeliveriesStayFifoUnderRetransmits)
{
    // Retransmitted messages finish their traversal late; the reorder
    // buffer (per-pair in-order clamp) must keep a pair's deliveries
    // monotonic so the payload-before-flag protocol survives flak.
    FabricConfig fc;
    fc.net = shape(2, 2, 1, true);
    fc.faults.links = {flakyLink(0, 1, 400'000)};
    fc.faults.seed = 11;
    Fabric fabric(fc);

    Cycle last = 0;
    Cycle now = 0;
    for (u32 i = 0; i < 96; ++i) {
        const Delivery d = fabric.inject(now, 0, 1, 16);
        ASSERT_TRUE(d.ok) << "message " << i;
        EXPECT_GE(d.delivered, last) << "message " << i;
        last = d.delivered;
        now += 4;
    }
    EXPECT_GT(fabric.retransmits(), 0u);
}

TEST(FabricFault, BenignMapMatchesHealthyTimingExactly)
{
    // A fault map that degrades nothing (flaky with ppm 0): the fault
    // model is armed and active, but every delivery cycle must equal
    // the healthy fabric's bit for bit — the zero-simulated-overhead
    // property bench_simperf's fabricFaultOverhead row pins down.
    FabricConfig healthy;
    healthy.net = shape(2, 2, 2, true);
    Fabric clean(healthy);

    FabricConfig benign = healthy;
    benign.faults.links = {flakyLink(0, 1, 0)};
    Fabric armed(benign);
    EXPECT_TRUE(armed.faultsActive());

    u64 seed = 0x9E3779B97F4A7C15ull;
    Cycle now = 0;
    for (u32 i = 0; i < 300; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const u32 s = u32(seed >> 33) % healthy.net.numChips();
        u32 d = u32(seed >> 13) % healthy.net.numChips();
        if (d == s)
            d = (d + 1) % healthy.net.numChips();
        const u32 bytes = 8 + u32(seed % 500);
        now += seed % 5;
        const Delivery a = clean.inject(now, s, d, bytes);
        const Delivery b = armed.inject(now, s, d, bytes);
        EXPECT_EQ(a.delivered, b.delivered) << "message " << i;
        EXPECT_EQ(a.accepted, b.accepted) << "message " << i;
    }
    EXPECT_EQ(armed.retransmits(), 0u);
    EXPECT_EQ(armed.rerouted(), 0u);
    EXPECT_EQ(armed.crcErrors(), 0u);
    EXPECT_EQ(clean.queueCycles(), armed.queueCycles());
}

TEST(FabricFault, RetryExhaustionAbandonsMessage)
{
    // An always-corrupt link with no alternate route (2x1x1 mesh):
    // after maxRetries the message is abandoned with d.ok == false —
    // bounded, never an infinite retry loop.
    FabricConfig fc;
    fc.net = shape(2, 1, 1, false);
    fc.faults.links = {flakyLink(0, 1, 1'000'000)};
    fc.maxRetries = 4;
    Fabric fabric(fc);

    const Delivery d = fabric.inject(0, 0, 1, 64);
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(d.retries, 4u);
    EXPECT_EQ(fabric.crcErrors(), 5u); // every attempt caught

    fabric.advance(kCycleNever);
    EXPECT_EQ(fabric.flitsInFlight(), 0u);
    EXPECT_EQ(fabric.flitsInjected(), fabric.flitsDropped());
    EXPECT_EQ(fabric.flitsDelivered(), 0u);
}

TEST(FabricFault, UnroutablePartitionFailsImmediately)
{
    // A dead link that partitions a 2x1x1 mesh: no path exists at all,
    // the message is abandoned without touching any flit ledger.
    FabricConfig fc;
    fc.net = shape(2, 1, 1, false);
    fc.faults.links = {deadLink(0, 1)};
    Fabric fabric(fc);

    const Delivery d = fabric.inject(0, 0, 1, 64);
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(fabric.unroutable(), 1u);
    EXPECT_EQ(fabric.flitsInjected(), 0u);
    fabric.advance(kCycleNever);
    EXPECT_EQ(fabric.flitsInFlight(), 0u);

    // The reverse direction is untouched.
    EXPECT_TRUE(fabric.inject(0, 1, 0, 64).ok);
}

TEST(FabricFault, HaloSurvivesDeadLinkFlakyLinkAndDeadTu)
{
    // The acceptance scenario: a 4x4x1 torus halo exchange with one
    // dead link, one 1% flaky link, and one fused-off TU per chip —
    // the run must complete host-verified with rerouting and
    // retransmissions both exercised, and repeat bit-identically.
    // words is large enough that the packets crossing the victim link
    // draw at least one corruption under this seed (draws are a pure
    // function of seed/link/sequence, so a passing seed is stable).
    MultiChipConfig mc;
    mc.dimX = 4;
    mc.dimY = 4;
    mc.dimZ = 1;
    mc.words = 96;
    mc.iters = 2;
    mc.threads = 4;
    mc.faults.links = {deadLink(0, 1), flakyLink(5, 6, 10'000)};
    mc.faults.seed = 2;
    mc.chipFault.disabledTus = {7};

    const MultiChipResult r = workloads::runHaloExchange(mc);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.exitReason, arch::RunExitReason::AllHalted);
    EXPECT_GT(r.rerouted, 0u);
    EXPECT_GT(r.retransmits, 0u);
    EXPECT_EQ(r.crcErrors, r.retransmits);
    EXPECT_EQ(r.unroutable, 0u);
    EXPECT_EQ(r.flitsInFlight, 0u);
    EXPECT_EQ(r.flitsInjected, r.flitsDelivered + r.flitsDropped);

    // Bit-identical on repeat...
    const MultiChipResult again = workloads::runHaloExchange(mc);
    expectSameRun(r, again);

    // ...and across engines (sharded defers memory ops to its serial
    // phase, so the injection order — and every corruption draw and
    // retry — is engine-invariant).
    MultiChipConfig sharded = mc;
    sharded.engine.kind = EngineKind::Sharded;
    sharded.engine.workers = 4;
    expectSameRun(r, workloads::runHaloExchange(sharded));
}

TEST(FabricFault, MidRunFaultInjectionIsDeterministic)
{
    // The same map armed at a mid-run cycle: the run degrades at the
    // first epoch boundary at/after atCycle and stays verified and
    // bit-reproducible. Against the degraded-from-birth run the
    // timing differs (messages before the strike ride healthy paths).
    MultiChipConfig mc;
    mc.words = 16;
    mc.iters = 2;
    mc.faults.links = {deadLink(0, 1)};

    const MultiChipResult fromBirth = workloads::runHaloExchange(mc);
    EXPECT_TRUE(fromBirth.verified);
    EXPECT_GT(fromBirth.rerouted, 0u);

    mc.faults.atCycle = fromBirth.cycles / 2;
    const MultiChipResult midRun = workloads::runHaloExchange(mc);
    EXPECT_TRUE(midRun.verified);
    expectSameRun(midRun, workloads::runHaloExchange(mc));
}

TEST(FabricFault, PartitionExitsFabricFailureStructured)
{
    // Halo exchange across a partitioned 2x1x1 mesh: the system must
    // return a structured FabricFailure exit with a diagnostic naming
    // the abandoned access — no hang, no host fatal, fast.
    setLogLevel(LogLevel::Quiet);
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 1;
    mc.dimZ = 1;
    mc.torus = false;
    mc.words = 8;
    mc.iters = 1;
    mc.threads = 2;
    mc.faults.links = {deadLink(0, 1)};
    mc.maxCycles = 500'000; // hard stop the test never reaches

    const MultiChipResult r = workloads::runHaloExchange(mc);
    setLogLevel(LogLevel::Normal);
    EXPECT_FALSE(r.verified);
    EXPECT_EQ(r.exitReason, arch::RunExitReason::FabricFailure);
    EXPECT_NE(r.exitDiagnostic.find("abandoned"), std::string::npos);
    EXPECT_GT(r.unroutable, 0u);
    EXPECT_LT(r.cycles, 500'000u); // structured exit, not the budget
}

TEST(FabricFault, WatchdogAttributesRetryStorm)
{
    // A nearly-always-corrupt link with a huge retry budget and a
    // punishing backoff: messages do eventually get through (the
    // seeded draw sequence always escapes ppm < 1e6 long before the
    // retry budget), but their delivery stretches by hundreds of
    // thousands of cycles. The receiver spins on an unchanged flag —
    // no progress events — and its watchdog fires. The diagnostic
    // must attribute the hang to the fabric (retransmissions climbing
    // in the trailing window), not read as a chip-level deadlock.
    // (An always-corrupt link is the other regime: inject() exhausts
    // the budget synchronously and the run ends in FabricFailure —
    // covered by RetryExhaustionAbandonsMessage.)
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 1;
    mc.dimZ = 1;
    mc.words = 4;
    mc.iters = 1;
    mc.threads = 2;
    mc.faults.links = {flakyLink(0, 1, 950'000)};
    mc.fabricMaxRetries = 100'000;   // effectively never give up
    mc.fabricRetryBackoff = 4'096;   // ~128k cycles by the 6th retry
    mc.chipFault.watchdogCycles = 50'000;
    mc.maxCycles = 50'000'000;

    const MultiChipResult r = workloads::runHaloExchange(mc);
    EXPECT_FALSE(r.verified);
    EXPECT_EQ(r.exitReason, arch::RunExitReason::Watchdog);
    EXPECT_NE(r.exitDiagnostic.find("fabric livelock suspected"),
              std::string::npos);
    EXPECT_NE(r.exitDiagnostic.find("retry storm"), std::string::npos);
    EXPECT_GT(r.retransmits, 0u);
}
