/**
 * @file
 * Host-observability tests (common/hostobs.h, DESIGN.md section 15).
 *
 * Three pillars:
 *  - accounting identities: per-worker tick/defer counts must sum
 *    exactly to the engine-level counters, and the sampled engine's
 *    detailed + functional window split must cover every cycle;
 *  - zero perturbation: enabling host telemetry must leave simulated
 *    cycles, instructions, attribution and guest trace output
 *    byte-identical;
 *  - export plumbing: host stats land in their own "host."-prefixed
 *    group, host trace events on their own Chrome-trace process, and
 *    run manifests round-trip the headline fields.
 *
 * These tests run under the TSan preset too, where the per-lane
 * telemetry slots double as a data-race check on the crew handoff.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "arch/chip.h"
#include "common/config.h"
#include "common/hostobs.h"
#include "common/trace.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Small STREAM point exercising defers (FPU arb) and bank traffic. */
StreamConfig
streamPoint()
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 24;
    cfg.elementsPerThread = 200;
    return cfg;
}

ChipConfig
chipWith(EngineKind kind, u32 workers, bool hostObs,
         bool sampled = false)
{
    ChipConfig cfg;
    cfg.engine.kind = kind;
    cfg.engine.workers = workers;
    cfg.engine.sampled = sampled;
    cfg.obs.hostObs = hostObs;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------------
// Accounting identities
// ---------------------------------------------------------------------------

TEST(HostObs, ShardedWorkerCountsSumExactly)
{
    const StreamResult r = runStream(
        streamPoint(), chipWith(EngineKind::Sharded, 2, true));
    const HostObsSnapshot &s = r.host;
    ASSERT_TRUE(s.enabled);
    ASSERT_EQ(s.workers, 2u);
    ASSERT_EQ(s.worker.size(), 2u);
    EXPECT_GT(s.shardedCycles, 0u);

    // Phase A walks every canonical entry of every fan-out cycle
    // exactly once, split across the workers.
    EXPECT_EQ(s.workerTicks(), s.shardedTicks);
    // Every deferred phase-A tick is committed exactly once in
    // phase B, and quad poisons can only come from defers.
    EXPECT_EQ(s.workerDefers(), s.deferredCommits);
    EXPECT_LE(s.workerQuadPoisons(), s.workerDefers());
}

TEST(HostObs, ShardedWallTimeAccountingIsCoherent)
{
    const StreamResult r = runStream(
        streamPoint(), chipWith(EngineKind::Sharded, 2, true));
    const HostObsSnapshot &s = r.host;

    // The crew (phase-A fan-out) and serial phase B both happen
    // inside Chip::run.
    EXPECT_GT(s.runWallNanos, 0u);
    EXPECT_GT(s.crewNanos, 0u);
    EXPECT_GT(s.phaseBNanos, 0u);
    EXPECT_LE(s.crewNanos + s.phaseBNanos, s.runWallNanos);

    // The coordinator's own phase-A walk happens inside the crew
    // window; its spin on the done counter cannot exceed the crew
    // wall either.
    EXPECT_LE(s.worker[0].busyNanos, s.crewNanos);
    EXPECT_LE(s.coordWaitNanos, s.crewNanos);

    // Both workers participated in every fan-out epoch (lane 0's
    // epochs are the coordinator's).
    for (const HostObsSnapshot::Worker &w : s.worker)
        EXPECT_GE(w.epochs, s.shardedCycles);
}

TEST(HostObs, SampledWindowSplitCoversEveryCycle)
{
    StreamConfig cfg = streamPoint();
    ChipConfig chip = chipWith(EngineKind::Serial, 0, true, true);
    const StreamResult r = runStream(cfg, chip);
    const HostObsSnapshot &s = r.host;

    // Every simulated cycle is either a detailed-window or a
    // functional (fast-forward) cycle — exact, not approximate.
    EXPECT_EQ(s.detailedCycles + s.functionalCycles, r.simCycles);
    EXPECT_GT(s.detailedCycles, 0u);
    EXPECT_GT(s.functionalCycles, 0u);
    // Functional windows service loads/stores through the warm path.
    EXPECT_GT(s.warmAccesses, 0u);
    // No sharded activity on the serial engine.
    EXPECT_EQ(s.shardedCycles, 0u);
    EXPECT_EQ(s.shardedTicks, 0u);
}

TEST(HostObs, SerialEngineCollectsRunWallOnly)
{
    const StreamResult r = runStream(
        streamPoint(), chipWith(EngineKind::Serial, 0, true));
    const HostObsSnapshot &s = r.host;
    ASSERT_TRUE(s.enabled);
    EXPECT_GT(s.runWallNanos, 0u);
    EXPECT_EQ(s.shardedCycles, 0u);
    EXPECT_EQ(s.deferredCommits, 0u);
    EXPECT_EQ(s.detailedCycles, 0u);
    EXPECT_GT(s.peakRssKb, 0u);
}

TEST(HostObs, SnapshotAddMergesRuns)
{
    HostObsSnapshot a, b;
    a.enabled = true;
    a.workers = 2;
    a.worker.resize(2);
    a.worker[0].ticks = 10;
    a.worker[1].ticks = 20;
    a.shardedTicks = 30;
    a.runWallNanos = 100;
    b = a;
    a.add(b);
    EXPECT_EQ(a.workerTicks(), 60u);
    EXPECT_EQ(a.shardedTicks, 60u);
    EXPECT_EQ(a.runWallNanos, 200u);
}

// ---------------------------------------------------------------------------
// Zero perturbation: simulated results are byte-identical with host
// telemetry on or off
// ---------------------------------------------------------------------------

TEST(HostObs, EnablingDoesNotChangeSimulatedResults)
{
    for (const bool sampled : {false, true}) {
        const StreamResult off = runStream(
            streamPoint(),
            chipWith(EngineKind::Sharded, 2, false, sampled));
        const StreamResult on = runStream(
            streamPoint(),
            chipWith(EngineKind::Sharded, 2, true, sampled));
        EXPECT_EQ(off.simCycles, on.simCycles) << "sampled=" << sampled;
        EXPECT_EQ(off.iterationCycles, on.iterationCycles);
        EXPECT_EQ(off.instructions, on.instructions);
        for (u32 c = 0; c <= arch::kNumCycleCats; ++c)
            EXPECT_EQ(off.attr.value(c), on.attr.value(c))
                << "attr cat " << c << " sampled=" << sampled;
    }
}

TEST(HostObs, GuestTraceBytesIdenticalWithHostObsOnOrOff)
{
    // Guest-category traces must not contain host events (they live
    // behind TraceCat::Host) and must be byte-identical either way.
    auto traceWith = [&](bool hostObs) {
        ChipConfig cfg = chipWith(EngineKind::Sharded, 2, hostObs);
        cfg.obs.traceOut =
            tempPath(hostObs ? "hosttrace_on.json" : "hosttrace_off.json");
        cfg.obs.traceCats = u8(traceBit(TraceCat::Mem) |
                               traceBit(TraceCat::Barrier) |
                               traceBit(TraceCat::Kernel));
        runStream(streamPoint(), cfg);
        return slurp(cfg.obs.traceOut);
    };
    const std::string off = traceWith(false);
    const std::string on = traceWith(true);
    EXPECT_EQ(off, on);
    EXPECT_EQ(on.find("cyclops-host"), std::string::npos);
}

TEST(HostObs, StatsJsonGainsHostSectionOnlyWhenEnabled)
{
    auto statsWith = [&](bool hostObs) {
        ChipConfig cfg = chipWith(EngineKind::Sharded, 2, hostObs);
        cfg.obs.statsJson =
            tempPath(hostObs ? "hostobs_on.json" : "hostobs_off.json");
        runStream(streamPoint(), cfg);
        return slurp(cfg.obs.statsJson);
    };
    const std::string off = statsWith(false);
    const std::string on = statsWith(true);
    EXPECT_EQ(off.find("hostObs"), std::string::npos);
    EXPECT_NE(on.find("\"hostObs\""), std::string::npos);
    EXPECT_NE(on.find("\"host.runWallNanos\""), std::string::npos);
    EXPECT_NE(on.find("\"host.w0.busyNanos\""), std::string::npos);
    EXPECT_NE(on.find("\"host.w1.waitNanos\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Host trace export
// ---------------------------------------------------------------------------

TEST(HostObs, HostTraceEventsLandOnOwnProcess)
{
    ChipConfig cfg = chipWith(EngineKind::Sharded, 2, true);
    cfg.obs.traceOut = tempPath("hosttrace_host.json");
    cfg.obs.traceCats = kTraceAll;
    runStream(streamPoint(), cfg);
    const std::string json = slurp(cfg.obs.traceOut);

    // Host process metadata, per-track names, and host-category spans.
    EXPECT_NE(json.find("cyclops-host"), std::string::npos);
    EXPECT_NE(json.find("\"engine\""), std::string::npos);
    EXPECT_NE(json.find("\"lane0\""), std::string::npos);
    EXPECT_NE(json.find("\"lane1\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"host\""), std::string::npos);
    EXPECT_NE(json.find("\"phaseA\""), std::string::npos);
    EXPECT_NE(json.find("\"phaseB\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedHostEvents\": 0"), std::string::npos);
}

TEST(HostObs, NoHostTraceWithoutHostCat)
{
    ChipConfig cfg = chipWith(EngineKind::Sharded, 2, true);
    cfg.obs.traceOut = tempPath("hosttrace_guestonly.json");
    cfg.obs.traceCats = u8(traceBit(TraceCat::Mem));
    runStream(streamPoint(), cfg);
    const std::string json = slurp(cfg.obs.traceOut);
    EXPECT_EQ(json.find("cyclops-host"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Run manifests
// ---------------------------------------------------------------------------

TEST(HostObs, ManifestWriterRoundTripsHeadlineFields)
{
    const std::string path = tempPath("manifest.json");
    ChipConfig cfg;
    cfg.engine.kind = EngineKind::Sharded;
    cfg.engine.workers = 2;
    RunManifest m;
    m.tool = "unit-test";
    m.workload = "stream \"quoted\"";
    m.seed = 42;
    m.config = &cfg;
    m.simCycles = 1000;
    m.instructions = 5000;
    m.wallSeconds = 0.5;
    m.exitReason = "allHalted";
    writeRunManifest(path, m);

    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"schema\": \"cyclops-manifest-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"unit-test\""), std::string::npos);
    EXPECT_NE(json.find("stream \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"engine\": \"sharded\""), std::string::npos);
    EXPECT_NE(json.find("\"engineWorkers\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"simCycles\": 1000"), std::string::npos);
    EXPECT_NE(json.find("\"exitReason\": \"allHalted\""),
              std::string::npos);
    EXPECT_NE(json.find("\"hash\": \""), std::string::npos);
    std::remove(path.c_str());
}

TEST(HostObs, ConfigHashTracksResultAffectingFieldsOnly)
{
    ChipConfig a, b;
    EXPECT_EQ(a.hash(), b.hash());

    // Engine choice never changes results, so it never changes the
    // hash (a sharded rerun of a serial manifest is comparable).
    b.engine.kind = EngineKind::Sharded;
    b.engine.workers = 8;
    b.obs.hostObs = true;
    EXPECT_EQ(a.hash(), b.hash());

    // Structural, latency and fault-map changes do.
    b = ChipConfig{};
    b.numThreads = 64;
    EXPECT_NE(a.hash(), b.hash());
    b = ChipConfig{};
    b.lat.memLocalHit += 1;
    EXPECT_NE(a.hash(), b.hash());
    b = ChipConfig{};
    b.fault.disabledTus.push_back(3);
    EXPECT_NE(a.hash(), b.hash());
    // Sampled-mode windows change simulated cycles, so they hash.
    b = ChipConfig{};
    b.engine.sampled = true;
    EXPECT_NE(a.hash(), b.hash());
}

TEST(HostObs, GitDescribeIsNonEmpty)
{
    EXPECT_NE(gitDescribe(), nullptr);
    EXPECT_GT(std::string(gitDescribe()).size(), 0u);
}
