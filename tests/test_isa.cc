/**
 * @file
 * ISA-level tests: encode/decode round-trips over every opcode,
 * assembler/disassembler behaviour, and functional execution of small
 * programs on the chip.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/disassembler.h"
#include "isa/encoding.h"

using namespace cyclops;
using namespace cyclops::isa;

// ---------------------------------------------------------------------------
// Encoding: property test over all opcodes with random legal operands.
// ---------------------------------------------------------------------------

class EncodingRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodingRoundTrip, EncodeDecodeIdentity)
{
    const auto op = static_cast<Opcode>(GetParam());
    const InstrMeta &m = meta(op);
    Rng rng(0xC0FFEE + GetParam());

    for (int trial = 0; trial < 200; ++trial) {
        Instr instr;
        instr.op = op;
        auto reg = [&](bool pair) {
            u8 r = u8(rng.below(kNumRegs));
            return pair ? u8(r & ~1u) : r;
        };
        // Canonical encoding: operand fields the instruction neither
        // reads nor writes stay zero (Instr{} default).
        if (m.readsRd || m.writesRd)
            instr.rd = reg(m.fpPairRd);
        if (m.readsRa)
            instr.ra = reg(m.fpPairRa);
        if (m.readsRb)
            instr.rb = reg(m.fpPairRb);
        switch (m.format) {
          case Format::R:
            break;
          case Format::I:
            if (op != Opcode::Halt)
                instr.imm = s32(rng.range(immMin(kImmBitsI),
                                          immMax(kImmBitsI)));
            break;
          case Format::B:
            instr.imm = s32(rng.range(immMin(kImmBitsI),
                                      immMax(kImmBitsI)));
            break;
          case Format::J:
            instr.imm = s32(rng.range(immMin(kImmBitsJ),
                                      immMax(kImmBitsJ)));
            break;
          case Format::U:
            instr.imm = s32(rng.range(0, immMax(kImmBitsU) * 2 + 1));
            break;
        }
        u32 word = 0;
        ASSERT_TRUE(encode(instr, &word))
            << mnemonic(op) << " imm=" << instr.imm;
        Instr back;
        ASSERT_TRUE(decode(word, &back));
        EXPECT_EQ(instr, back) << mnemonic(op);
        EXPECT_TRUE(validOperands(back)) << mnemonic(op);
    }
}

TEST(Encoding, RejectsJunkInUnusedOperandFields)
{
    u32 word = 0;
    // sync reads and writes nothing: any register field must be zero.
    EXPECT_FALSE(encode(Instr{Opcode::Sync, 5, 0, 0, 0}, &word));
    EXPECT_FALSE(encode(Instr{Opcode::Sync, 0, 0, 3, 0}, &word));
    // mfspr names no source register; mtspr no destination.
    EXPECT_FALSE(encode(Instr{Opcode::Mfspr, 5, 6, 0, 0}, &word));
    EXPECT_FALSE(encode(Instr{Opcode::Mtspr, 5, 6, 0, 0}, &word));
    // R-format carries no immediate.
    EXPECT_FALSE(validOperands(Instr{Opcode::Add, 1, 2, 3, 7}));
    // halt ignores (and must zero) its immediate field.
    EXPECT_FALSE(encode(Instr{Opcode::Halt, 0, 0, 0, 1}, &word));
    // The canonical forms all encode.
    EXPECT_TRUE(encode(Instr{Opcode::Sync, 0, 0, 0, 0}, &word));
    EXPECT_TRUE(encode(Instr{Opcode::Mfspr, 5, 0, 0, 2}, &word));
    EXPECT_TRUE(encode(Instr{Opcode::Mtspr, 0, 6, 0, 4}, &word));
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip,
                         ::testing::Range(0u, kNumOpcodes),
                         [](const auto &info) {
                             return std::string(mnemonic(
                                 static_cast<Opcode>(info.param)));
                         });

TEST(Encoding, RejectsOddFpPairRegisters)
{
    Instr instr{Opcode::Faddd, 9, 2, 4, 0};
    u32 word = 0;
    EXPECT_FALSE(encode(instr, &word));
    instr.rd = 8;
    instr.ra = 3;
    EXPECT_FALSE(encode(instr, &word));
}

TEST(Encoding, RejectsOutOfRangeImmediates)
{
    Instr instr{Opcode::Addi, 1, 2, 0, immMax(kImmBitsI) + 1};
    u32 word = 0;
    EXPECT_FALSE(encode(instr, &word));
    instr.imm = immMin(kImmBitsI) - 1;
    EXPECT_FALSE(encode(instr, &word));
}

TEST(Encoding, RejectsBadOpcodeField)
{
    Instr out;
    const u32 badWord = u32(kNumOpcodes + 5) << 25;
    EXPECT_FALSE(decode(badWord, &out));
}

// ---------------------------------------------------------------------------
// Disassembler round-trips through the assembler.
// ---------------------------------------------------------------------------

namespace
{

/** A random instruction in canonical operand form. */
Instr
randomCanonical(Opcode op, Rng &rng)
{
    const InstrMeta &m = meta(op);
    Instr instr;
    instr.op = op;
    auto reg = [&](bool pair) {
        u8 r = u8(rng.below(kNumRegs));
        return pair ? u8(r & ~1u) : r;
    };
    if (m.readsRd || m.writesRd)
        instr.rd = reg(m.fpPairRd);
    if (m.readsRa)
        instr.ra = reg(m.fpPairRa);
    if (m.readsRb)
        instr.rb = reg(m.fpPairRb);
    switch (m.format) {
      case Format::R:
        break;
      case Format::I:
        if (op != Opcode::Halt)
            instr.imm = s32(rng.range(immMin(kImmBitsI),
                                      immMax(kImmBitsI)));
        break;
      case Format::B:
        instr.imm =
            s32(rng.range(immMin(kImmBitsI), immMax(kImmBitsI)));
        break;
      case Format::J:
        instr.imm =
            s32(rng.range(immMin(kImmBitsJ), immMax(kImmBitsJ)));
        break;
      case Format::U:
        instr.imm = s32(rng.range(0, immMax(kImmBitsU) * 2 + 1));
        break;
    }
    return instr;
}

} // namespace

TEST(Disassembler, RoundTripsThroughAssembler)
{
    // Every opcode — including branches and jumps, whose pc-relative
    // targets print as `.+N` — with fuzzed operands: the disassembly
    // must reassemble to the identical machine word.
    Rng rng(42);
    for (unsigned opIdx = 0; opIdx < kNumOpcodes; ++opIdx) {
        const auto op = static_cast<Opcode>(opIdx);
        for (int trial = 0; trial < 50; ++trial) {
            const Instr instr = randomCanonical(op, rng);
            const std::string text =
                ".text\n" + disassemble(instr) + "\n";
            AsmResult result = assemble(text);
            ASSERT_TRUE(result.ok) << mnemonic(op) << ": "
                                   << result.error << " [" << text << "]";
            ASSERT_EQ(result.program.text.size(), 1u) << mnemonic(op);
            Instr back;
            ASSERT_TRUE(decode(result.program.text[0], &back));
            EXPECT_EQ(instr, back) << mnemonic(op) << " | " << text;
        }
    }
}

// ---------------------------------------------------------------------------
// Assembler behaviour.
// ---------------------------------------------------------------------------

TEST(Assembler, LabelsAndBranches)
{
    AsmResult r = assemble(R"(
        .text
start:
        li   r4, 10
        li   r5, 0
loop:
        add  r5, r5, r4
        subi r4, r4, 1
        bne  r4, r0, loop
        halt
    )");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.entry, r.program.symbol("start"));
}

TEST(Assembler, DataDirectivesAndSymbols)
{
    AsmResult r = assemble(R"(
        .text
        la r4, vec
        lw r5, 0(r4)
        halt
        .data
        .align 64
vec:    .word 1, 2, 3, 4
str:    .asciz "hi\n"
tab:    .space 32
        .align 8
dbl:    .double 2.5, -1.0
    )");
    ASSERT_TRUE(r.ok) << r.error;
    const auto &p = r.program;
    EXPECT_EQ(p.symbol("vec") % 64, 0u);
    EXPECT_EQ(p.symbol("str"), p.symbol("vec") + 16);
    EXPECT_EQ(p.symbol("tab"), p.symbol("str") + 4);
    // .double aligns to 8.
    EXPECT_EQ(p.symbol("dbl") % 8, 0u);
    // Initialized words land in the image.
    const u32 off = p.symbol("vec") - p.dataBase;
    u32 w;
    std::memcpy(&w, &p.data[off], 4);
    EXPECT_EQ(w, 1u);
    double d;
    std::memcpy(&d, &p.data[p.symbol("dbl") - p.dataBase], 8);
    EXPECT_EQ(d, 2.5);
}

TEST(Assembler, ReportsErrors)
{
    EXPECT_FALSE(assemble("bogus r1, r2\n").ok);
    EXPECT_FALSE(assemble("addi r1, r2\n").ok);          // arity
    EXPECT_FALSE(assemble("addi r1, r2, 99999\n").ok);   // range
    EXPECT_FALSE(assemble("lw r1, 0(r99)\n").ok);        // register
    EXPECT_FALSE(assemble("beq r1, r2, nowhere\n").ok);  // symbol
    EXPECT_FALSE(assemble("x: nop\nx: nop\n").ok);       // dup label
    EXPECT_FALSE(assemble(".data\n.space -1\n").ok);
    const AsmResult r = assemble("\n\n  addi r1, r2, bad\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
}

TEST(Assembler, PseudoInstructions)
{
    AsmResult r = assemble(R"(
        li r4, 0x123456
        li r5, 5
        mv r6, r5
        not r7, r5
        neg r8, r5
        beqz r5, out
        bnez r5, out
out:    call func
        b end
func:   ret
end:    halt
    )");
    ASSERT_TRUE(r.ok) << r.error;
    // li big = 2 words, li small = 1 word.
    Instr first;
    ASSERT_TRUE(decode(r.program.text[0], &first));
    EXPECT_EQ(first.op, Opcode::Lui);
}

// ---------------------------------------------------------------------------
// Functional execution.
// ---------------------------------------------------------------------------

namespace
{

/** Assemble, run on thread 0, return the finished chip. */
std::unique_ptr<arch::Chip>
runAsm(const std::string &src)
{
    auto chip = std::make_unique<arch::Chip>();
    Program p = assembleOrDie(src);
    chip->loadProgram(p);
    chip->setUnit(0, std::make_unique<arch::ThreadUnit>(0, *chip,
                                                        p.entry));
    chip->activate(0);
    EXPECT_EQ(chip->run(10'000'000), arch::RunExit::AllHalted);
    return chip;
}

} // namespace

TEST(Execution, ArithmeticLoop)
{
    // sum 1..100 = 5050, printed in decimal.
    auto chip = runAsm(R"(
        li r4, 0
        li r5, 100
        li r6, 0
loop:   add r6, r6, r5
        subi r5, r5, 1
        bne r5, r0, loop
        mv r4, r6
        trap 2
        halt
    )");
    EXPECT_EQ(chip->console(), "5050");
}

TEST(Execution, LoadStoreAndData)
{
    auto chip = runAsm(R"(
        la r4, vec
        lw r5, 0(r4)
        lw r6, 4(r4)
        add r7, r5, r6
        sw r7, 8(r4)
        lw r4, 8(r4)
        trap 2
        halt
        .data
vec:    .word 40, 2, 0
    )");
    EXPECT_EQ(chip->console(), "42");
}

TEST(Execution, DoublePrecisionMath)
{
    // (1.5 + 2.25) * 2.0 = 7.5 -> truncation to int = 7
    auto chip = runAsm(R"(
        la r4, a
        ld r8, 0(r4)
        ld r10, 8(r4)
        ld r12, 16(r4)
        faddd r14, r8, r10
        fmuld r16, r14, r12
        fcvtwd r4, r16
        trap 2
        halt
        .data
a:      .double 1.5, 2.25, 2.0
    )");
    EXPECT_EQ(chip->console(), "7");
}

TEST(Execution, FmaAndDivide)
{
    // 3.0 * 4.0 + 5.0 = 17.0; 17 / 2 = 8 (integer divide check too)
    auto chip = runAsm(R"(
        la r4, a
        ld r8, 0(r4)
        ld r10, 8(r4)
        ld r12, 16(r4)
        fmadd r12, r8, r10
        fcvtwd r5, r12
        li r6, 2
        divu r4, r5, r6
        trap 2
        halt
        .data
a:      .double 3.0, 4.0, 5.0
    )");
    EXPECT_EQ(chip->console(), "8");
}

TEST(Execution, AtomicsSingleThread)
{
    auto chip = runAsm(R"(
        la r4, w
        li r5, 5
        amoadd r6, r4, r5      ; old=10, w=15
        amoswap r7, r4, r6     ; old=15, w=10
        mv r8, r7
        amocas r7, r4, r5      ; expect r7=15 != w=10 -> no swap, old=10
        lw r9, 0(r4)           ; 10
        add r4, r6, r8
        add r4, r4, r9
        trap 2                 ; 10+15+10 = 35
        halt
        .data
w:      .word 10
    )");
    EXPECT_EQ(chip->console(), "35");
}

TEST(Execution, SprReads)
{
    auto chip = runAsm(R"(
        mfspr r4, 0        ; TID = 0
        mfspr r5, 1        ; NTHREADS = 128
        add r4, r4, r5
        trap 2
        halt
    )");
    EXPECT_EQ(chip->console(), "128");
}

TEST(Execution, ConsoleOutput)
{
    auto chip = runAsm(R"(
        li r4, 'H'
        trap 1
        li r4, 'i'
        trap 1
        li r4, '\n'
        trap 1
        halt
    )");
    EXPECT_EQ(chip->console(), "Hi\n");
}

TEST(Execution, MisalignedAccessThrows)
{
    // Misaligned accesses raise a precise, detectable guest exception.
    EXPECT_THROW(runAsm(R"(
                     li r4, 2
                     lw r5, 0(r4)
                     halt
                 )"),
                 GuestError);
}

TEST(Execution, R0IsHardwiredZero)
{
    auto chip = runAsm(R"(
        li r0, 77
        addi r4, r0, 0
        trap 2
        halt
    )");
    EXPECT_EQ(chip->console(), "0");
}
