/**
 * @file
 * Observability-layer tests: cycle attribution, the event tracer, the
 * epoch sampler and the stats registry's error paths.
 *
 * The central invariant: every TU cycle is charged to exactly one
 * category, so per-TU categories plus sleep sum to the chip's total
 * simulated cycles — on both frontends — and none of the observability
 * features may change simulated timing.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"
#include "exec/engine.h"
#include "isa/builder.h"
#include "workloads/splash.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::arch;
using namespace cyclops::workloads;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Every installed unit's charge window must be gap-free and the
 *  per-TU breakdown must cover every simulated cycle. */
void
expectAttributionCovers(const Chip &chip)
{
    const ChipConfig &cfg = chip.config();
    CycleBreakdown total;
    for (ThreadId tid = 0; tid < cfg.numThreads; ++tid) {
        const CycleBreakdown b = chip.attribution(tid);
        EXPECT_EQ(b.total(), chip.now()) << "tid " << tid;
        total.add(b);
        if (const Unit *unit = chip.unit(tid)) {
            EXPECT_EQ(b.charged(), unit->chargedCycles());
            if (unit->chargedCycles()) {
                EXPECT_EQ(unit->lastChargeEnd() - unit->firstChargeAt(),
                          unit->chargedCycles())
                    << "charge window of tid " << tid << " has gaps";
            }
        }
    }
    EXPECT_EQ(total.total(), u64(chip.now()) * cfg.numThreads);
    const CycleBreakdown chipWide = chip.chipAttribution();
    EXPECT_EQ(chipWide.total(), total.total());
    EXPECT_EQ(chipWide.charged(), total.charged());
}

} // namespace

// ---------------------------------------------------------------------------
// Cycle attribution
// ---------------------------------------------------------------------------

TEST(Observability, IsaAttributionSumsToTotalCycles)
{
    // Four interpreter threads with loads, stores, FP and integer
    // multiply, so several categories are exercised at once.
    Chip chip;
    isa::ProgramBuilder b;
    const u32 buf = b.allocData(1024, 64);
    b.slli(20, 4, 6);
    b.li(10, igAddr(kIgDefault, buf));
    b.add(10, 10, 20);
    b.li(12, 200);
    auto loop = b.newLabel();
    b.bind(loop);
    b.lw(5, 0, 10);
    b.mul(6, 5, 5);
    b.sw(6, 4, 10);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    b.halt();
    const isa::Program prog = b.finish();
    chip.loadProgram(prog);
    for (ThreadId t = 0; t < 4; ++t) {
        auto unit = std::make_unique<ThreadUnit>(t, chip, prog.entry);
        unit->setReg(4, t);
        chip.setUnit(t, std::move(unit));
        chip.activate(t);
    }
    ASSERT_EQ(chip.run(10'000'000), RunExit::AllHalted);

    expectAttributionCovers(chip);
    const CycleBreakdown b0 = chip.attribution(0);
    EXPECT_GT(b0[CycleCat::Run], 0u);
    EXPECT_GT(b0[CycleCat::DcacheMiss], 0u);
    // Figure 7's old reporting path must agree with the attribution.
    EXPECT_EQ(chip.unit(0)->runCycles(), b0[CycleCat::Run]);
    EXPECT_EQ(chip.unit(0)->stallCycles(),
              b0.charged() - b0[CycleCat::Run]);
}

TEST(Observability, ExecAttributionSumsToTotalCycles)
{
    // Exec frontend with hardware barriers: run, d-cache and
    // barrier-wait categories all get charged.
    Chip chip;
    exec::GuestEngine engine(chip);
    const Addr ea = igAddr(kIgDefault, engine.heap().alloc(4096, 64));
    struct Body
    {
        static exec::GuestTask
        run(exec::GuestCtx &ctx, Addr ea, u32 index)
        {
            for (u32 round = 0; round < 8; ++round) {
                for (u32 i = 0; i < 16 + 8 * index; ++i)
                    co_await ctx.load(ea + 64 * i, 8);
                co_await ctx.alu(10);
                co_await ctx.hwBarrier(round & 1);
            }
        }
    };
    engine.spawn(8, [&](exec::GuestCtx &ctx) {
        return Body::run(ctx, ea, ctx.index());
    });
    ASSERT_EQ(engine.run(10'000'000), RunExit::AllHalted);

    expectAttributionCovers(chip);
    const CycleBreakdown sum = chip.chipAttribution();
    EXPECT_GT(sum[CycleCat::Run], 0u);
    EXPECT_GT(sum[CycleCat::DcacheMiss], 0u);
    EXPECT_GT(sum[CycleCat::BarrierWait], 0u);
}

TEST(Observability, SplashResultCarriesAttribution)
{
    const SplashResult result =
        runFft(4, 256, BarrierKind::SwTree, ChipConfig{});
    EXPECT_TRUE(result.verified);
    // The breakdown is the Figure 7 split: run == attributed run,
    // stall == everything else charged.
    EXPECT_EQ(result.runCycles, result.attr[CycleCat::Run]);
    EXPECT_EQ(result.stallCycles,
              result.attr.charged() - result.attr[CycleCat::Run]);
    EXPECT_GT(result.attr[CycleCat::BarrierWait], 0u);
}

// ---------------------------------------------------------------------------
// Event tracing
// ---------------------------------------------------------------------------

TEST(Observability, TraceJsonWellFormedAndDeterministic)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 4;
    cfg.elementsPerThread = 64;

    ChipConfig chipCfg;
    chipCfg.obs.traceCats = kTraceAll;
    chipCfg.obs.traceOut = tempPath("obs_trace_a.json");
    const StreamResult first = runStream(cfg, chipCfg);
    EXPECT_TRUE(first.verified);
    const std::string a = slurp(chipCfg.obs.traceOut);

    chipCfg.obs.traceOut = tempPath("obs_trace_b.json");
    runStream(cfg, chipCfg);
    const std::string b = slurp(chipCfg.obs.traceOut);

    // Identical runs produce byte-identical traces.
    EXPECT_EQ(a, b);

    // Structural spot-checks of the Chrome trace-event format; the
    // ctest smoke test runs the full validator (tools/check_trace.py).
    EXPECT_NE(a.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(a.find("\"process_name\""), std::string::npos);
    EXPECT_NE(a.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(a.find("\"cat\": \"mem\""), std::string::npos);
    EXPECT_NE(a.find("\"droppedEvents\""), std::string::npos);
    EXPECT_EQ(a.back(), '\n');
}

TEST(Observability, TracingAndSamplingDoNotChangeTiming)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Add;
    cfg.threads = 8;
    cfg.elementsPerThread = 120;

    const StreamResult plain = runStream(cfg, ChipConfig{});

    ChipConfig instrumented;
    instrumented.obs.traceCats = kTraceAll;
    instrumented.obs.traceOut = tempPath("obs_timing_trace.json");
    instrumented.obs.statsInterval = 64;
    instrumented.obs.statsJson = tempPath("obs_timing_stats.json");
    instrumented.obs.statsCsv = tempPath("obs_timing_series.csv");
    const StreamResult traced = runStream(cfg, instrumented);

    EXPECT_EQ(plain.iterationCycles, traced.iterationCycles);
    EXPECT_EQ(plain.simCycles, traced.simCycles);
    EXPECT_EQ(plain.instructions, traced.instructions);
    for (u32 c = 0; c <= kNumCycleCats; ++c)
        EXPECT_EQ(plain.attr.value(c), traced.attr.value(c))
            << kCycleCatNames[c];
}

TEST(Observability, TracerRingOverflowCountsDrops)
{
    Tracer tracer;
    tracer.configure(kTraceAll, 4);
    ASSERT_TRUE(tracer.enabled());
    for (u32 i = 0; i < 10; ++i)
        tracer.complete(TraceCat::Mem, i, "ev", 100 + i, 1);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    const auto events = tracer.sorted();
    ASSERT_EQ(events.size(), 4u);
    // The ring keeps the newest events, returned in time order.
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].start, 106 + i);
}

TEST(Observability, TracerDisabledRecordsNothing)
{
    Tracer tracer;
    tracer.configure(0, 4096);
    EXPECT_FALSE(tracer.enabled());
    EXPECT_FALSE(tracer.on(TraceCat::Mem));
    tracer.complete(TraceCat::Mem, 0, "ev", 1, 1);
    tracer.instant(TraceCat::Sched, 0, "ev", 2);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Observability, ParseTraceCats)
{
    EXPECT_EQ(parseTraceCats(""), 0u);
    EXPECT_EQ(parseTraceCats("none"), 0u);
    EXPECT_EQ(parseTraceCats("all"), kTraceAll);
    EXPECT_EQ(parseTraceCats("mem"), traceBit(TraceCat::Mem));
    EXPECT_EQ(parseTraceCats("mem,barrier"),
              u8(traceBit(TraceCat::Mem) | traceBit(TraceCat::Barrier)));
    EXPECT_EQ(parseTraceCats("mem,cache,barrier,kernel,sched,host,net"),
              kTraceAll);
    EXPECT_EQ(parseTraceCats("host"), traceBit(TraceCat::Host));
    EXPECT_EQ(parseTraceCats("net"), traceBit(TraceCat::Net));
}

// The TSan preset runs every Observability test: this one drives the
// per-chip tracers from SimPool worker threads, where a shared/global
// tracer would race.
TEST(Observability, ParallelSweepTracesPerChip)
{
    std::vector<u32> sizes = {64, 96, 128, 160};
    auto run = [&](u32 size) {
        StreamConfig cfg;
        cfg.kernel = StreamKernel::Copy;
        cfg.threads = 4;
        cfg.elementsPerThread = size;
        ChipConfig chipCfg;
        chipCfg.obs.traceCats = kTraceAll;
        chipCfg.obs.tag = strprintf("e%u", size);
        chipCfg.obs.traceOut = tempPath("obs_sweep_%t.json");
        return runStream(cfg, chipCfg);
    };
    const std::vector<StreamResult> serial = parallelSweep(sizes, 1, run);
    const std::vector<StreamResult> parallel =
        parallelSweep(sizes, 4, run);
    for (size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(serial[i].iterationCycles,
                  parallel[i].iterationCycles);
        EXPECT_EQ(serial[i].instructions, parallel[i].instructions);
        // The %t tag kept the concurrent output files distinct.
        const std::string trace =
            slurp(tempPath(strprintf("obs_sweep_e%u.json", sizes[i])));
        EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Epoch sampling
// ---------------------------------------------------------------------------

TEST(Observability, EpochSamplerRecordsSeries)
{
    Counter work;
    StatGroup stats;
    stats.addCounter("work", &work);
    stats.addGauge("twice", [&] { return 2 * work.value(); });

    EpochSampler sampler;
    sampler.configure(&stats, 100);
    ASSERT_TRUE(sampler.enabled());
    ASSERT_EQ(sampler.names().size(), 2u);
    EXPECT_EQ(sampler.names()[0], "work");
    EXPECT_EQ(sampler.names()[1], "twice");

    work += 5;
    sampler.maybeSample(150); // covers epochs 100 (and nothing else)
    work += 5;
    sampler.maybeSample(340); // covers epochs 200 and 300
    ASSERT_EQ(sampler.rows(), 3u);
    EXPECT_EQ(sampler.sampleCycles()[0], 100u);
    EXPECT_EQ(sampler.sampleCycles()[1], 200u);
    EXPECT_EQ(sampler.sampleCycles()[2], 300u);
    EXPECT_EQ(sampler.value(0, 0), 5u);
    EXPECT_EQ(sampler.value(1, 0), 10u);
    EXPECT_EQ(sampler.value(0, 1), 10u);

    work += 1;
    sampler.finalize(360); // one final row at the end of the run
    ASSERT_EQ(sampler.rows(), 4u);
    EXPECT_EQ(sampler.sampleCycles()[3], 360u);
    EXPECT_EQ(sampler.value(3, 0), 11u);
}

TEST(Observability, EpochSamplerDisabledByDefault)
{
    StatGroup stats;
    EpochSampler sampler;
    sampler.configure(&stats, 0);
    EXPECT_FALSE(sampler.enabled());
    sampler.maybeSample(1000);
    sampler.finalize(2000);
    EXPECT_EQ(sampler.rows(), 0u);
}

TEST(Observability, StatsCsvRoundTrips)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Scale;
    cfg.threads = 2;
    cfg.elementsPerThread = 64;
    ChipConfig chipCfg;
    chipCfg.obs.statsInterval = 200;
    chipCfg.obs.statsCsv = tempPath("obs_series.csv");
    chipCfg.obs.statsJson = tempPath("obs_stats.json");
    runStream(cfg, chipCfg);

    const std::string csv = slurp(chipCfg.obs.statsCsv);
    EXPECT_EQ(csv.rfind("cycle,", 0), 0u) << "CSV must start at header";
    EXPECT_NE(csv.find("chip.cycles"), std::string::npos);
    EXPECT_NE(csv.find("attr.run"), std::string::npos);

    const std::string json = slurp(chipCfg.obs.statsJson);
    EXPECT_NE(json.find("\"cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"attr.barrierWait\""), std::string::npos);
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("\"mem.loadLatency\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stats registry semantics (satellite fixes)
// ---------------------------------------------------------------------------

TEST(Observability, HistogramBucketsAreFloorLog2)
{
    Histogram h;
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(4);
    h.sample(1ull << 30); // beyond the top bucket: clamps, not wraps
    EXPECT_EQ(h.bucket(0), 2u); // 0 and 1
    EXPECT_EQ(h.bucket(1), 2u); // 2 and 3
    EXPECT_EQ(h.bucket(2), 1u); // 4
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.max(), 1ull << 30);
}

TEST(Observability, StatGroupKeepsRegistrationOrder)
{
    Counter c1, c2;
    Histogram h1, h2;
    StatGroup stats;
    stats.addCounter("zeta", &c1);
    stats.addCounter("alpha", &c2);
    stats.addGauge("gauge", [] { return u64(7); });
    stats.addHistogram("omega", &h1);
    stats.addHistogram("beta", &h2);

    const auto counters = stats.counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0].first, "zeta");
    EXPECT_EQ(counters[1].first, "alpha");
    EXPECT_EQ(counters[2].first, "gauge");
    EXPECT_EQ(counters[2].second, 7u);

    const auto histograms = stats.histograms();
    ASSERT_EQ(histograms.size(), 2u);
    EXPECT_EQ(histograms[0].first, "omega");
    EXPECT_EQ(histograms[1].first, "beta");

    EXPECT_EQ(stats.counterValue("gauge"), 7u);
    EXPECT_EQ(stats.histogram("nonexistent"), nullptr);

    // dump() is deterministic and follows registration order.
    const std::string dump = stats.dump();
    EXPECT_EQ(dump, stats.dump());
    EXPECT_LT(dump.find("zeta"), dump.find("alpha"));
    EXPECT_LT(dump.find("alpha"), dump.find("gauge"));
    EXPECT_LT(dump.find("omega"), dump.find("beta"));
}

using StatGroupDeathTest = ::testing::Test;

TEST(StatGroupDeathTest, DuplicateCounterPanics)
{
    Counter c1, c2;
    StatGroup stats;
    stats.addCounter("dup", &c1);
    EXPECT_DEATH(stats.addCounter("dup", &c2), "dup");
}

TEST(StatGroupDeathTest, DuplicateGaugeAcrossNamespacesPanics)
{
    Counter c;
    StatGroup stats;
    stats.addCounter("shared", &c);
    EXPECT_DEATH(stats.addGauge("shared", [] { return u64(0); }),
                 "shared");
    StatGroup stats2;
    stats2.addGauge("g", [] { return u64(0); });
    EXPECT_DEATH(stats2.addCounter("g", &c), "g");
}

TEST(StatGroupDeathTest, DuplicateHistogramPanics)
{
    Histogram h1, h2;
    StatGroup stats;
    stats.addHistogram("dup", &h1);
    EXPECT_DEATH(stats.addHistogram("dup", &h2), "dup");
}

TEST(StatGroupDeathTest, UnknownCounterValueIsFatal)
{
    StatGroup stats;
    EXPECT_DEATH((void)stats.counterValue("missing"), "missing");
}
