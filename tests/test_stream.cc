/**
 * @file
 * STREAM workload tests: numerical correctness in every mode, and the
 * qualitative bandwidth relationships the paper reports (Figs 4-6):
 * blocked beats cyclic, local caches beat distributed, unrolling helps
 * in-cache, and the multithreaded aggregate approaches peak memory
 * bandwidth.
 */

#include <gtest/gtest.h>

#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;

namespace
{

StreamResult
quick(StreamKernel kernel, u32 threads, u32 ept,
      const std::function<void(StreamConfig &)> &tweak = {})
{
    StreamConfig cfg;
    cfg.kernel = kernel;
    cfg.threads = threads;
    cfg.elementsPerThread = ept;
    if (tweak)
        tweak(cfg);
    return runStream(cfg);
}

} // namespace

// Every kernel x mode combination computes the right answer.
class StreamCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(StreamCorrectness, Verifies)
{
    const auto kernel = static_cast<StreamKernel>(
        std::get<0>(GetParam()));
    const int mode = std::get<1>(GetParam());
    StreamConfig cfg;
    cfg.kernel = kernel;
    cfg.threads = 24;
    cfg.elementsPerThread = 64;
    switch (mode) {
      case 0: break; // blocked shared
      case 1: cfg.partition = StreamPartition::Cyclic; break;
      case 2: cfg.localCaches = true; break;
      case 3:
        cfg.localCaches = true;
        cfg.unroll = 4;
        break;
      case 4: cfg.independent = true; break;
      case 5:
        cfg.policy = kernel::AllocPolicy::Balanced;
        cfg.localCaches = true;
        break;
    }
    const StreamResult result = runStream(cfg);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.totalGBs, 0.0);
}

namespace
{

std::string
streamCaseName(const ::testing::TestParamInfo<std::tuple<int, int>> &info)
{
    static const char *kernels[] = {"Copy", "Scale", "Add", "Triad"};
    static const char *modes[] = {"Blocked",     "Cyclic",
                                  "Local",       "LocalUnrolled",
                                  "Independent", "Balanced"};
    return std::string(kernels[std::get<0>(info.param)]) +
           modes[std::get<1>(info.param)];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllModes, StreamCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5)),
    streamCaseName);

TEST(StreamShape, BlockedBeatsCyclic)
{
    // Fig 5(a) vs 5(b): same size, blocked > cyclic.
    const double blocked =
        quick(StreamKernel::Copy, 126, 800).totalGBs;
    const double cyclic =
        quick(StreamKernel::Copy, 126, 800, [](StreamConfig &cfg) {
            cfg.partition = StreamPartition::Cyclic;
        }).totalGBs;
    EXPECT_GT(blocked, cyclic);
}

TEST(StreamShape, LocalCachesBeatDistributed)
{
    // Fig 5(c): for small vectors local-cache mode is much faster.
    const double shared = quick(StreamKernel::Scale, 126, 200).totalGBs;
    const double local =
        quick(StreamKernel::Scale, 126, 200, [](StreamConfig &cfg) {
            cfg.localCaches = true;
        }).totalGBs;
    EXPECT_GT(local, shared * 1.2);
}

TEST(StreamShape, UnrollingHelpsInCache)
{
    // Fig 5(d): unrolling improves small-vector (in-cache) performance.
    const double rolled =
        quick(StreamKernel::Triad, 126, 112, [](StreamConfig &cfg) {
            cfg.localCaches = true;
        }).totalGBs;
    const double unrolled =
        quick(StreamKernel::Triad, 126, 112, [](StreamConfig &cfg) {
            cfg.localCaches = true;
            cfg.unroll = 4;
        }).totalGBs;
    EXPECT_GT(unrolled, rolled * 1.3);
}

TEST(StreamShape, LargeVectorsApproachPeakMemoryBandwidth)
{
    // The headline: sustainable bandwidth ~40 GB/s of the 42.7 peak.
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Copy;
    cfg.threads = 126;
    cfg.elementsPerThread = 1984; // ~250k elements, 4x cache capacity
    cfg.localCaches = true;
    cfg.unroll = 4;
    const StreamResult result = runStream(cfg);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.totalGBs, 30.0);
    EXPECT_LT(result.totalGBs, 43.0); // cannot beat the hardware peak
}

TEST(StreamShape, SingleThreadOutOfCacheTransition)
{
    // Fig 4(a): bandwidth drops when the vectors stop fitting in cache.
    const double small = quick(StreamKernel::Copy, 1, 512).totalGBs;
    const double large = quick(StreamKernel::Copy, 1, 100'000).totalGBs;
    EXPECT_GT(small, large);
}
