/**
 * @file
 * SPLASH-2 workload tests: every kernel verifies numerically at small
 * sizes across thread counts and barrier kinds, parallelism gives
 * speedup, and the hardware barrier reduces stall cycles on FFT (the
 * paper's Figure 7 effect).
 */

#include <gtest/gtest.h>

#include "workloads/splash.h"

using namespace cyclops;
using namespace cyclops::workloads;

namespace
{

SplashResult
run(SplashApp app, u32 threads, u32 size,
    BarrierKind barrier = BarrierKind::Hw)
{
    SplashConfig cfg;
    cfg.app = app;
    cfg.threads = threads;
    cfg.size = size;
    cfg.barrier = barrier;
    return runSplash(cfg);
}

/** Small test size per app (fast but nontrivial). */
u32
testSize(SplashApp app)
{
    switch (app) {
      case SplashApp::Barnes: return 256;
      case SplashApp::Fft: return 4096;
      case SplashApp::Fmm: return 512;
      case SplashApp::Lu: return 64;
      case SplashApp::Ocean: return 34;
      case SplashApp::Radix: return 8192;
    }
    return 0;
}

} // namespace

class SplashCorrectness
    : public ::testing::TestWithParam<std::tuple<int, u32>>
{
};

TEST_P(SplashCorrectness, Verifies)
{
    const auto app = static_cast<SplashApp>(std::get<0>(GetParam()));
    const u32 threads = std::get<1>(GetParam());
    const SplashResult result = run(app, threads, testSize(app));
    EXPECT_TRUE(result.verified) << splashAppName(app);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.instructions, 0u);
}

namespace
{

std::string
splashCaseName(const ::testing::TestParamInfo<std::tuple<int, u32>> &info)
{
    return std::string(splashAppName(
               static_cast<SplashApp>(std::get<0>(info.param)))) +
           "x" + std::to_string(std::get<1>(info.param));
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AppsAndThreads, SplashCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(1u, 4u, 16u, 32u)),
    splashCaseName);

// Both software barrier kinds also produce correct results.
class SplashBarrierKinds : public ::testing::TestWithParam<int>
{
};

TEST_P(SplashBarrierKinds, FftVerifies)
{
    const auto kind = static_cast<BarrierKind>(GetParam());
    const SplashResult result = run(SplashApp::Fft, 8, 4096, kind);
    EXPECT_TRUE(result.verified);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SplashBarrierKinds,
                         ::testing::Values(0, 1, 2));

TEST(SplashShape, FftScales)
{
    const Cycle t1 = run(SplashApp::Fft, 1, 4096).cycles;
    const Cycle t16 = run(SplashApp::Fft, 16, 4096).cycles;
    EXPECT_GT(double(t1) / double(t16), 6.0);
}

TEST(SplashShape, LuScales)
{
    const Cycle t1 = run(SplashApp::Lu, 1, 128).cycles;
    const Cycle t8 = run(SplashApp::Lu, 8, 128).cycles;
    EXPECT_GT(double(t1) / double(t8), 3.0);
}

TEST(SplashShape, HardwareBarrierCutsStalls)
{
    // Figure 7: the hardware barrier trades stall cycles for (cheap)
    // run cycles and lowers total time versus the software tree.
    const SplashResult hw =
        run(SplashApp::Fft, 16, 4096, BarrierKind::Hw);
    const SplashResult sw =
        run(SplashApp::Fft, 16, 4096, BarrierKind::SwTree);
    EXPECT_TRUE(hw.verified);
    EXPECT_TRUE(sw.verified);
    EXPECT_LT(hw.cycles, sw.cycles);
    EXPECT_LT(hw.stallCycles, sw.stallCycles);
}
