/**
 * @file
 * Cross-frontend and determinism properties.
 *
 * DESIGN.md claims both execution frontends (ISA interpreter and the
 * coroutine-based execution-driven adapter) drive one timing backend:
 * equivalent access patterns must therefore cost equivalent time. And
 * the whole simulator must be deterministic: identical inputs give
 * bit-identical cycle counts.
 */

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "exec/engine.h"
#include "isa/builder.h"
#include "workloads/splash.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::arch;

namespace
{

/** ISA mode: N dependent pointer-chase loads from the local cache. */
Cycle
isaDependentLoads(u32 count)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    isa::ProgramBuilder b;
    const u32 buf = b.allocData(64, 64);
    b.li(10, igAddr(igExactly(0), buf));
    b.lw(4, 0, 10); // warm the line
    b.li(12, s32(count));
    auto loop = b.newLabel();
    b.bind(loop);
    b.lw(5, 0, 10);
    b.add(6, 5, 5); // dependent consumer
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    b.halt();
    chip.loadProgram(b.finish());
    chip.setUnit(0, std::make_unique<ThreadUnit>(0, chip, 0));
    chip.activate(0);
    EXPECT_EQ(chip.run(10'000'000), RunExit::AllHalted);
    return chip.now();
}

/** Exec mode: the same dependent-load chain through coroutines. */
Cycle
execDependentLoads(u32 count)
{
    Chip chip;
    exec::GuestEngine engine(chip);
    const Addr ea =
        igAddr(igExactly(0), engine.heap().alloc(64, 64));
    struct Body
    {
        static exec::GuestTask
        run(exec::GuestCtx &ctx, Addr ea, u32 count)
        {
            co_await ctx.load(ea, 8); // warm
            for (u32 i = 0; i < count; ++i) {
                co_await ctx.load(ea, 8);
                co_await ctx.alu(1);    // dependent consumer
                co_await ctx.alu(3, true); // loop overhead
            }
        }
    };
    engine.spawn(1, [&](exec::GuestCtx &ctx) {
        return Body::run(ctx, ea, count);
    });
    EXPECT_EQ(engine.run(10'000'000), RunExit::AllHalted);
    return chip.now();
}

} // namespace

TEST(Frontends, EquivalentPatternsCostEquivalentTime)
{
    // Both frontends pay the same 6-cycle local-hit dependence per
    // iteration plus similar loop overhead; agreement within 20%.
    const Cycle isa = isaDependentLoads(2000);
    const Cycle exec = execDependentLoads(2000);
    const double ratio = double(isa) / double(exec);
    EXPECT_GT(ratio, 0.8) << isa << " vs " << exec;
    EXPECT_LT(ratio, 1.25) << isa << " vs " << exec;
}

TEST(Frontends, IsaRunsAreDeterministic)
{
    const Cycle a = isaDependentLoads(500);
    const Cycle b = isaDependentLoads(500);
    EXPECT_EQ(a, b);
}

TEST(Frontends, ExecRunsAreDeterministic)
{
    using namespace cyclops::workloads;
    SplashConfig cfg;
    cfg.app = SplashApp::Fft;
    cfg.threads = 8;
    cfg.size = 4096;
    const SplashResult a = runSplash(cfg);
    const SplashResult b = runSplash(cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Frontends, StreamRunsAreDeterministic)
{
    using namespace cyclops::workloads;
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 32;
    cfg.elementsPerThread = 240;
    cfg.localCaches = true;
    EXPECT_EQ(runStream(cfg).iterationCycles,
              runStream(cfg).iterationCycles);
}
