/**
 * @file
 * Sharded-engine equivalence tests: the determinism contract of
 * DESIGN.md section 14.
 *
 * The sharded engine must be a pure host-side optimization — the same
 * simulation, bit for bit, at every worker count, including on
 * degraded chips whose quad domains are irregular. The sampled
 * fast-forward mode is allowed to approximate timing, but must itself
 * be deterministic and engine-independent: sampled results are
 * identical whether the detailed windows run serially or sharded.
 *
 * These tests also run under the TSan preset, where they double as a
 * data-race check on the ShardCrew epoch protocol and the engine's
 * phase-A/phase-B handoff.
 */

#include <atomic>
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "workloads/splash.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::workloads;

namespace
{

/** Small STREAM point: big enough to touch every subsystem. */
StreamConfig
streamPoint(u32 threads, u32 ept)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = threads;
    cfg.elementsPerThread = ept;
    cfg.localCaches = true;
    cfg.unroll = 4;
    return cfg;
}

ChipConfig
engineChip(EngineKind kind, u32 workers, bool sampled = false)
{
    ChipConfig cfg;
    cfg.engine.kind = kind;
    cfg.engine.workers = workers;
    cfg.engine.sampled = sampled;
    return cfg;
}

void
expectSameStream(const StreamResult &a, const StreamResult &b)
{
    EXPECT_EQ(a.iterationCycles, b.iterationCycles);
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.bytesPerIteration, b.bytesPerIteration);
    for (u32 c = 0; c <= arch::kNumCycleCats; ++c)
        EXPECT_EQ(a.attr.value(c), b.attr.value(c)) << "attr cat " << c;
    EXPECT_EQ(a.verified, b.verified);
}

void
expectSameSplash(const SplashResult &a, const SplashResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.localHits, b.localHits);
    EXPECT_EQ(a.remoteHits, b.remoteHits);
    EXPECT_EQ(a.localMisses, b.localMisses);
    EXPECT_EQ(a.remoteMisses, b.remoteMisses);
    EXPECT_EQ(a.bankBusyCycles, b.bankBusyCycles);
    EXPECT_EQ(a.portWaitCycles, b.portWaitCycles);
    EXPECT_EQ(a.verified, b.verified);
}

} // namespace

TEST(EngineShard, StreamMatchesSerialAtEveryWorkerCount)
{
    const StreamConfig point = streamPoint(16, 200);
    const StreamResult serial =
        runStream(point, engineChip(EngineKind::Serial, 0));
    EXPECT_TRUE(serial.verified);
    for (u32 workers : {1u, 2u, 4u, 8u}) {
        const StreamResult sharded = runStream(
            point, engineChip(EngineKind::Sharded, workers));
        expectSameStream(serial, sharded);
    }
}

TEST(EngineShard, FftMatchesSerial)
{
    // FFT exercises barriers, remote traffic and the FPU — the
    // cross-domain paths where a stale read would first diverge.
    const SplashResult serial = runFft(
        8, 1024, BarrierKind::Hw, engineChip(EngineKind::Serial, 0));
    EXPECT_TRUE(serial.verified);
    for (u32 workers : {2u, 4u}) {
        const SplashResult sharded =
            runFft(8, 1024, BarrierKind::Hw,
                   engineChip(EngineKind::Sharded, workers));
        expectSameSplash(serial, sharded);
    }
}

TEST(EngineShard, DegradedChipMatchesSerial)
{
    // Dead quads, a dead FPU and a dead bank make the quad domains
    // irregular and shift the interest-group and MEMSZ remaps — the
    // sharded engine must still partition and commit identically.
    ChipConfig serialCfg = engineChip(EngineKind::Serial, 0);
    serialCfg.fault.disabledQuads = {3, 17};
    serialCfg.fault.disabledFpus = {5};
    serialCfg.fault.disabledBanks = {2};

    const StreamConfig point = streamPoint(8, 112);
    const StreamResult serial = runStream(point, serialCfg);
    EXPECT_TRUE(serial.verified);

    for (u32 workers : {2u, 4u}) {
        ChipConfig shardCfg = serialCfg;
        shardCfg.engine.kind = EngineKind::Sharded;
        shardCfg.engine.workers = workers;
        expectSameStream(serial, runStream(point, shardCfg));
    }
}

TEST(EngineShard, SampledIsEngineIndependent)
{
    // Sampled timing is approximate against detailed timing, but must
    // not depend on which engine runs the detailed windows: the fast
    // windows are serial by construction in both engines.
    const StreamConfig point = streamPoint(16, 200);
    const StreamResult sampledSerial =
        runStream(point, engineChip(EngineKind::Serial, 0, true));
    EXPECT_TRUE(sampledSerial.verified);
    for (u32 workers : {2u, 4u}) {
        const StreamResult sampledSharded = runStream(
            point, engineChip(EngineKind::Sharded, workers, true));
        expectSameStream(sampledSerial, sampledSharded);
    }
}

TEST(EngineShard, SampledRepeatsExactly)
{
    const StreamConfig point = streamPoint(8, 112);
    const ChipConfig cfg = engineChip(EngineKind::Serial, 0, true);
    expectSameStream(runStream(point, cfg), runStream(point, cfg));
}

TEST(ShardCrew, RunsEveryWorkerExactlyOnce)
{
    ShardCrew crew(4);
    EXPECT_EQ(crew.workers(), 4u);
    std::vector<std::atomic<u32>> hits(4);
    for (int epoch = 0; epoch < 100; ++epoch)
        crew.run([&](u32 w) {
            hits[w].fetch_add(1, std::memory_order_relaxed);
        });
    for (u32 w = 0; w < 4; ++w)
        EXPECT_EQ(hits[w].load(), 100u) << "worker " << w;
}

TEST(ShardCrew, PublishesWritesAcrossEpochs)
{
    // Writes by worker w in epoch e must be visible to every worker
    // in epoch e+1 (the engine's phase handoff relies on this).
    ShardCrew crew(4);
    std::vector<u64> slots(4, 0);
    for (u64 epoch = 1; epoch <= 200; ++epoch) {
        crew.run([&](u32 w) { slots[w] = epoch; });
        crew.run([&](u32 w) {
            for (u32 o = 0; o < 4; ++o)
                if (slots[o] != epoch)
                    ADD_FAILURE() << "worker " << w << " saw stale "
                                  << slots[o] << " at epoch " << epoch;
        });
    }
}

TEST(ShardCrew, SingleWorkerRunsInline)
{
    ShardCrew crew(1);
    const auto caller = std::this_thread::get_id();
    bool sameThread = false;
    crew.run([&](u32 w) {
        sameThread = w == 0 && std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(sameThread);
}

TEST(ShardCrew, RethrowsWorkerException)
{
    ShardCrew crew(2);
    EXPECT_THROW(crew.run([&](u32 w) {
        if (w == 1)
            throw std::runtime_error("shard failure");
    }),
                 std::runtime_error);
    // The crew must stay usable after an exceptional epoch.
    std::atomic<u32> ran{0};
    crew.run([&](u32) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2u);
}
