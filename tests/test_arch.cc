/**
 * @file
 * Unit tests for the timing-fabric components: interest-group mapping,
 * memory banks (occupancy, burst), the data cache (LRU, associativity,
 * byte-valid store-allocate, MSHR merge, scratch ways), the I-cache +
 * PIB, the fault model (bank remap, quad disable), and the off-chip
 * DMA memory.
 */

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/builder.h"
#include "kernel/heap.h"
#include "kernel/kernel.h"

using namespace cyclops;
using namespace cyclops::arch;
namespace kernel = cyclops::kernel;

// ---------------------------------------------------------------------------
// Interest groups.
// ---------------------------------------------------------------------------

TEST(InterestGroup, EncodingRoundTrip)
{
    for (u32 cls = 0; cls < 8; ++cls) {
        for (u32 index = 0; index < 32; ++index) {
            const u8 field =
                igEncode(static_cast<IgClass>(cls), u8(index));
            const InterestGroup ig = igDecode(field);
            EXPECT_EQ(u32(ig.cls), cls);
            EXPECT_EQ(ig.index, index);
        }
    }
    EXPECT_EQ(kIgDefault, 0b0010'0000); // the paper's kernel default
    EXPECT_EQ(kIgOwn, 0);
}

TEST(InterestGroup, AddressComposition)
{
    const Addr ea = igAddr(igExactly(17), 0x123456);
    EXPECT_EQ(igField(ea), igExactly(17));
    EXPECT_EQ(igPhys(ea), 0x123456u);
}

TEST(InterestGroup, SelectionStaysInSet)
{
    Rng rng(99);
    for (u32 clsIdx = 1; clsIdx <= 6; ++clsIdx) {
        const auto cls = static_cast<IgClass>(clsIdx);
        const u32 size = igGroupSize(cls);
        const u32 numGroups = 32 / size;
        for (u32 group = 0; group < numGroups; ++group) {
            const InterestGroup ig{cls, u8(group)};
            for (int trial = 0; trial < 64; ++trial) {
                const PhysAddr line = PhysAddr(rng.below(1 << 18)) * 64;
                const CacheId cache = igSelectCache(ig, line, 32, ~0u);
                EXPECT_GE(cache, group * size);
                EXPECT_LT(cache, (group + 1) * size);
            }
        }
    }
}

TEST(InterestGroup, DisabledCachesAreAvoided)
{
    Rng rng(7);
    const InterestGroup pair{IgClass::Pair, 0}; // caches {0,1}
    const u32 mask = ~0u & ~(1u << 0);          // cache 0 broken
    for (int trial = 0; trial < 200; ++trial) {
        const PhysAddr line = PhysAddr(rng.below(1 << 18)) * 64;
        EXPECT_EQ(igSelectCache(pair, line, 32, mask), 1u);
    }
    // Whole group broken: falls back to any enabled cache.
    const u32 maskBoth = ~0u & ~3u;
    for (int trial = 0; trial < 200; ++trial) {
        const PhysAddr line = PhysAddr(rng.below(1 << 18)) * 64;
        const CacheId cache = igSelectCache(pair, line, 32, maskBoth);
        EXPECT_GE(cache, 2u);
    }
}

// ---------------------------------------------------------------------------
// Memory bank.
// ---------------------------------------------------------------------------

TEST(MemBank, OccupancyAndQueueing)
{
    ChipConfig cfg;
    StatGroup stats;
    MemBank bank;
    bank.init(0, cfg, &stats);

    // 64-byte line = 2 blocks = 12 cycles of service.
    BankGrant first = bank.reserve(100, 2, 0);
    EXPECT_EQ(first.start, 100u);
    EXPECT_EQ(bank.busyUntil(), 112u);

    // A request during service queues.
    BankGrant second = bank.reserve(105, 2, 4096);
    EXPECT_EQ(second.start, 112u);
    EXPECT_EQ(bank.busyUntil(), 124u);
}

TEST(MemBank, BurstLowersLatencyNotOccupancy)
{
    ChipConfig cfg;
    MemBank bank;
    bank.init(0, cfg, nullptr);

    BankGrant first = bank.reserve(0, 2, 0);
    EXPECT_EQ(first.transferCycles, 12u);
    // Back-to-back sequential access on the open row: burst transfer.
    BankGrant burst = bank.reserve(1, 2, 64);
    EXPECT_EQ(burst.start, 12u);
    EXPECT_EQ(burst.transferCycles, 10u); // lower latency...
    EXPECT_EQ(bank.busyUntil(), 24u);     // ...same occupancy
}

TEST(MemBank, BurstDisabledByConfig)
{
    ChipConfig cfg;
    cfg.burstEnabled = false;
    MemBank bank;
    bank.init(0, cfg, nullptr);
    bank.reserve(0, 2, 0);
    EXPECT_EQ(bank.reserve(1, 2, 64).transferCycles, 12u);
}

// ---------------------------------------------------------------------------
// Data cache behaviour through the fabric.
// ---------------------------------------------------------------------------

namespace
{

struct Fab
{
    ChipConfig cfg;
    Chip chip;
    explicit Fab(ChipConfig c = ChipConfig{}) : cfg(c), chip(cfg) {}
    MemSystem &mem() { return chip.memsys(); }
};

} // namespace

TEST(DCache, HitAfterFill)
{
    Fab f;
    const Addr ea = igAddr(igExactly(0), 0x1000);
    MemTiming miss = f.mem().access(0, 0, ea, 8, MemKind::Load);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.ready, 24u);
    MemTiming hit = f.mem().access(miss.ready, 0, ea, 8, MemKind::Load);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.ready - miss.ready, 6u);
}

TEST(DCache, MshrMergesConcurrentMisses)
{
    Fab f;
    const Addr ea = igAddr(igExactly(0), 0x2000);
    MemTiming first = f.mem().access(0, 0, ea, 8, MemKind::Load);
    // Another thread of the same quad hits the in-flight line: no
    // second fill, completion merged with the first.
    MemTiming merged = f.mem().access(2, 1, ea + 8, 8, MemKind::Load);
    EXPECT_TRUE(merged.hit);
    EXPECT_LE(merged.ready, first.ready + 2);
    EXPECT_EQ(f.chip.stats().counterValue("dcache0.loadMerges"), 1u);
}

TEST(DCache, StoreAllocateNoFetchSkipsTheBanks)
{
    Fab f;
    const Addr ea = igAddr(igExactly(0), 0x3000);
    MemTiming store = f.mem().access(0, 0, ea, 8, MemKind::Store);
    EXPECT_FALSE(store.hit);
    EXPECT_EQ(store.ready, 6u); // no fill: local-hit timing
    EXPECT_EQ(f.chip.stats().counterValue("dcache0.storeAllocs"), 1u);
    EXPECT_EQ(f.chip.stats().counterValue("bank0.accesses") +
                  f.chip.stats().counterValue("bank1.accesses"),
              0u);

    // A load of bytes the store did not cover must fetch.
    MemTiming load = f.mem().access(10, 0, ea + 32, 8, MemKind::Load);
    EXPECT_FALSE(load.hit);
    EXPECT_GT(load.ready, 10u + 20u);
}

TEST(DCache, FetchOnWriteWhenDisabled)
{
    ChipConfig cfg;
    cfg.storeAllocNoFetch = false;
    Fab f(cfg);
    const Addr ea = igAddr(igExactly(0), 0x3000);
    MemTiming store = f.mem().access(0, 0, ea, 8, MemKind::Store);
    EXPECT_FALSE(store.hit);
    EXPECT_EQ(store.ready, 24u); // full line fill
}

TEST(DCache, LruEvictionAndWriteback)
{
    ChipConfig cfg;
    cfg.dcacheAssoc = 2;
    Fab f(cfg);
    // Three lines mapping to the same set of cache 0 (set count =
    // 16KB/64B/2 = 128 sets; stride = 128*64 = 8 KB).
    const u32 stride = cfg.dcacheBytes / cfg.dcacheAssoc;
    const Addr a = igAddr(igExactly(0), 0x0000);
    const Addr b = igAddr(igExactly(0), 0x0000 + stride);
    const Addr c = igAddr(igExactly(0), 0x0000 + 2 * stride);
    Cycle t = 0;
    t = f.mem().access(t, 0, a, 8, MemKind::Store).ready; // dirty
    t = f.mem().access(t, 0, b, 8, MemKind::Load).ready;
    t = f.mem().access(t, 0, c, 8, MemKind::Load).ready;  // evicts a
    EXPECT_EQ(f.chip.stats().counterValue("dcache0.writebacks"), 1u);
    MemTiming again = f.mem().access(t, 0, a, 8, MemKind::Load);
    EXPECT_FALSE(again.hit); // a was evicted (LRU)
}

TEST(DCache, FlushAndInvalidate)
{
    Fab f;
    const Addr ea = igAddr(igExactly(0), 0x4000);
    Cycle t = f.mem().access(0, 0, ea, 8, MemKind::Store).ready;
    EXPECT_TRUE(f.mem().dcache(0).probe(0x4000));
    t = f.mem().flush(t, 0, ea);
    EXPECT_FALSE(f.mem().dcache(0).probe(0x4000));
    EXPECT_EQ(f.chip.stats().counterValue("dcache0.writebacks"), 1u);

    t = f.mem().access(t, 0, ea, 8, MemKind::Load).ready;
    EXPECT_TRUE(f.mem().dcache(0).probe(0x4000));
    f.mem().invalidate(t, 0, ea);
    EXPECT_FALSE(f.mem().dcache(0).probe(0x4000));
}

TEST(DCache, ScratchNeverMisses)
{
    ChipConfig cfg;
    cfg.dcacheScratchWays = 2;
    Fab f(cfg);
    const Addr ea = igAddr(igScratch(0), 0x100);
    for (int i = 0; i < 4; ++i) {
        MemTiming t = f.mem().access(Cycle(i) * 10, 0, ea, 8,
                                     MemKind::Load);
        EXPECT_TRUE(t.hit);
        EXPECT_EQ(t.ready - Cycle(i) * 10, 6u);
    }
}

TEST(DCache, PortSerializesAccesses)
{
    Fab f;
    const Addr ea = igAddr(igExactly(0), 0x5000);
    f.mem().access(0, 0, ea, 8, MemKind::Load);
    // Warm the line, then hit it from all four quad threads in the
    // same cycle: the single port serializes them.
    Cycle t0 = 100;
    Cycle last = 0;
    for (ThreadId tid = 0; tid < 4; ++tid)
        last = std::max(
            last, f.mem().access(t0, tid, ea, 8, MemKind::Load).ready);
    EXPECT_EQ(last, t0 + 3 + 6); // 4th access granted at t0+3
}

// ---------------------------------------------------------------------------
// Fault model (paper section 5).
// ---------------------------------------------------------------------------

TEST(Faults, BankFailureShrinksAndRemaps)
{
    Chip chip;
    EXPECT_EQ(chip.readSpr(0, isa::kSprMemSize), 8192u); // KB
    chip.failBank(3);
    EXPECT_EQ(chip.readSpr(0, isa::kSprMemSize), 7680u);
    // The surviving space is contiguous and usable end to end.
    const u32 limit = chip.memsys().availableMemBytes();
    chip.memWrite(limit - 8, 8, 0xABCD, 0);
    EXPECT_EQ(chip.memRead(limit - 8, 8, 0), 0xABCDu);
    // Timing path still works for every line.
    MemTiming t = chip.memsys().access(0, 0, igAddr(kIgDefault, limit - 64),
                                       8, MemKind::Load);
    EXPECT_GT(t.ready, 0u);
}

TEST(Faults, AccessBeyondShrunkMemoryThrows)
{
    // Wild guest accesses throw (recoverable by fault campaigns)
    // instead of killing the host process.
    Chip chip;
    chip.failBank(0);
    EXPECT_THROW(
        chip.memRead(chip.memsys().availableMemBytes() + 4, 4, 0),
        GuestError);
}

TEST(Faults, DisabledQuadLeavesScrambling)
{
    Chip chip;
    chip.disableQuad(5);
    EXPECT_FALSE(chip.quadEnabled(5));
    Rng rng(3);
    for (int trial = 0; trial < 500; ++trial) {
        const PhysAddr line = PhysAddr(rng.below(1 << 17)) * 64;
        EXPECT_NE(chip.memsys().routeCache(igAddr(kIgDefault, line), 0),
                  5u);
    }
}

TEST(Faults, KernelSkipsDisabledQuads)
{
    Chip chip;
    chip.disableQuad(0);
    auto order =
        kernel::threadOrder(chip, kernel::AllocPolicy::Sequential);
    EXPECT_EQ(order.size(), chip.config().usableThreads() - 4);
    for (ThreadId tid : order)
        EXPECT_GE(tid, 4u);
}

// ---------------------------------------------------------------------------
// Off-chip memory.
// ---------------------------------------------------------------------------

TEST(OffChip, DmaRoundTrip)
{
    Chip chip;
    std::vector<u8> out(2048);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = u8(i * 7);
    chip.writePhys(0x1000, out.data(), u32(out.size()));

    Cycle done = chip.offchip().startDma(0, DmaDir::FromChip, 4096,
                                         0x1000, 2048, chip);
    EXPECT_EQ(done, 2 * chip.config().lat.offChipBlockCycles);

    // Clear and read it back.
    std::vector<u8> zero(2048, 0);
    chip.writePhys(0x1000, zero.data(), 2048);
    done = chip.offchip().startDma(done, DmaDir::ToChip, 4096, 0x1000,
                                   2048, chip);
    std::vector<u8> in(2048);
    chip.readPhys(0x1000, in.data(), 2048);
    EXPECT_EQ(in, out);
}

TEST(OffChip, ChannelSerializesTransfers)
{
    Chip chip;
    const Cycle per = chip.config().lat.offChipBlockCycles;
    const Cycle first =
        chip.offchip().startDma(0, DmaDir::FromChip, 0, 0, 1024, chip);
    const Cycle second =
        chip.offchip().startDma(1, DmaDir::FromChip, 1024, 0, 1024,
                                chip);
    EXPECT_EQ(first, per);
    EXPECT_EQ(second, 2 * per);
}

TEST(OffChip, RejectsPartialBlocks)
{
    EXPECT_DEATH(
        {
            setLogLevel(LogLevel::Quiet);
            Chip chip;
            chip.offchip().startDma(0, DmaDir::ToChip, 0, 0, 100, chip);
        },
        "");
}

// ---------------------------------------------------------------------------
// Heap.
// ---------------------------------------------------------------------------

TEST(Heap, AllocAlignFreeCoalesce)
{
    kernel::Heap heap(0x1000, 0x2000);
    const PhysAddr a = heap.alloc(100, 64);
    const PhysAddr b = heap.alloc(200, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    heap.free(a);
    const PhysAddr c = heap.alloc(90, 64);
    EXPECT_EQ(c, a); // reused from the free list
    heap.free(b);
    heap.free(c);
    heap.reset();
    EXPECT_EQ(heap.alloc(8), 0x1000u);
}

TEST(Heap, ExhaustionDies)
{
    EXPECT_DEATH(
        {
            setLogLevel(LogLevel::Quiet);
            kernel::Heap heap(0, 1024);
            heap.alloc(4096);
        },
        "");
}
