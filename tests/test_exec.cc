/**
 * @file
 * Execution-driven frontend tests: coroutine adaptation, dependence
 * chains, batches, atomics under contention, task composition, and all
 * three barrier implementations.
 */

#include <gtest/gtest.h>

#include <bit>

#include "arch/chip.h"
#include "exec/barriers.h"
#include "exec/engine.h"
#include "exec/guest_unit.h"

using namespace cyclops;
using namespace cyclops::exec;
using arch::Chip;
using arch::FpuOp;
using arch::igAddr;
using arch::kIgDefault;

namespace
{

struct World
{
    Chip chip;
    GuestEngine engine;
    explicit World(
        kernel::AllocPolicy policy = kernel::AllocPolicy::Sequential,
        ChipConfig cfg = ChipConfig{})
        : chip(cfg), engine(chip, policy)
    {}
};

} // namespace

TEST(Exec, SingleThreadAluTiming)
{
    World w;
    static GuestTask (*body)(GuestCtx &) = [](GuestCtx &ctx) -> GuestTask {
        co_await ctx.alu(100);
    };
    w.engine.spawn(1, body);
    EXPECT_EQ(w.engine.run(100'000), arch::RunExit::AllHalted);
    // ~100 cycles of ALU work plus constant start/halt overhead.
    EXPECT_GE(w.chip.now(), 100u);
    EXPECT_LE(w.chip.now(), 110u);
    EXPECT_EQ(w.chip.unit(0)->runCycles(), 101u); // 100 alu + halt
}

TEST(Exec, LoadStoreRoundTrip)
{
    World w;
    const Addr ea = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
    struct Body
    {
        static GuestTask
        run(GuestCtx &ctx, Addr ea)
        {
            co_await ctx.store(ea, 0xDEADBEEFCAFEF00Dull, 8);
            const u64 value = co_await ctx.load(ea, 8);
            co_await ctx.store(ea + 8, value + 1, 8);
        }
    };
    w.engine.spawn(1, [&](GuestCtx &ctx) { return Body::run(ctx, ea); });
    EXPECT_EQ(w.engine.run(100'000), arch::RunExit::AllHalted);
    EXPECT_EQ(w.chip.memRead(ea + 8, 8, 0), 0xDEADBEEFCAFEF00Dull + 1);
}

TEST(Exec, DependentLoadChainsStall)
{
    // A chain of dependent loads each pays the full load latency; a
    // batch of independent loads pipelines at one per cycle.
    auto measure = [&](bool independent) {
        World w;
        const PhysAddr buf = w.engine.heap().alloc(4096, 64);
        struct Body
        {
            static GuestTask
            run(GuestCtx &ctx, Addr base, bool indep)
            {
                if (indep) {
                    std::vector<MicroOp> ops;
                    for (int i = 0; i < 16; ++i)
                        ops.push_back(MicroOp::load(base + i * 8, 8,
                                                    true));
                    co_await ctx.batch(ops);
                } else {
                    for (int i = 0; i < 16; ++i)
                        co_await ctx.load(base + i * 8, 8);
                }
            }
        };
        const Addr ea = igAddr(arch::igExactly(0), buf);
        w.engine.spawn(1, [&](GuestCtx &ctx) {
            return Body::run(ctx, ea, independent);
        });
        EXPECT_EQ(w.engine.run(1'000'000), arch::RunExit::AllHalted);
        return w.chip.now();
    };
    const Cycle dependent = measure(false);
    const Cycle independent = measure(true);
    EXPECT_GT(dependent, independent * 2);
}

TEST(Exec, FpuOpsShareQuadUnit)
{
    // Four threads of one quad all issuing FMAs saturate the single
    // FPU: aggregate throughput is 1 FMA/cycle, not 4.
    World w;
    static constexpr int kOps = 200;
    struct Body
    {
        static GuestTask
        run(GuestCtx &ctx)
        {
            std::vector<MicroOp> ops(kOps, MicroOp::fpuOp(FpuOp::Fma,
                                                          true));
            co_await ctx.batch(ops);
        }
    };
    w.engine.spawn(4, [](GuestCtx &ctx) { return Body::run(ctx); });
    EXPECT_EQ(w.engine.run(1'000'000), arch::RunExit::AllHalted);
    EXPECT_GE(w.chip.now(), 4u * kOps);
    EXPECT_LE(w.chip.now(), 4u * kOps + 64);
}

TEST(Exec, AtomicContention)
{
    // 64 threads each add 1..16 to one counter: the sum is exact.
    World w;
    const Addr ea = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
    struct Body
    {
        static GuestTask
        run(GuestCtx &ctx, Addr ea)
        {
            for (u32 i = 1; i <= 16; ++i)
                co_await ctx.amoadd(ea, i);
        }
    };
    w.engine.spawn(64, [&](GuestCtx &ctx) { return Body::run(ctx, ea); });
    EXPECT_EQ(w.engine.run(10'000'000), arch::RunExit::AllHalted);
    EXPECT_EQ(w.chip.memRead(ea, 4, 0), 64u * (16 * 17 / 2));
}

TEST(Exec, TaskComposition)
{
    // A helper coroutine awaited from the top level shares the context.
    World w;
    const Addr ea = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
    struct Body
    {
        static GuestTask
        helper(GuestCtx &ctx, Addr ea, u32 n)
        {
            for (u32 i = 0; i < n; ++i)
                co_await ctx.amoadd(ea, 1);
        }
        static GuestTask
        run(GuestCtx &ctx, Addr ea)
        {
            co_await helper(ctx, ea, 3);
            co_await ctx.alu(5);
            co_await helper(ctx, ea, 4);
        }
    };
    w.engine.spawn(2, [&](GuestCtx &ctx) { return Body::run(ctx, ea); });
    EXPECT_EQ(w.engine.run(1'000'000), arch::RunExit::AllHalted);
    EXPECT_EQ(w.chip.memRead(ea, 4, 0), 14u);
}

// ---------------------------------------------------------------------------
// Barriers.
// ---------------------------------------------------------------------------

namespace
{

/**
 * Barrier ordering harness: each thread writes a per-round stamp after
 * the barrier; the invariant is that no thread starts round r+1 before
 * every thread finished round r. We verify with a shared "phase"
 * counter: before the barrier each thread increments arrivals; after
 * the barrier each checks that arrivals == threads * round.
 */
enum class BarKind { Hw, Central, Tree };

struct BarrierWorld
{
    World w;
    Addr arrivals;
    Addr errors;
    CentralBarrier central;
    TreeBarrier tree;
    BarKind kind;
    u32 rounds;

    BarrierWorld(BarKind k, u32 threads, u32 rounds_,
                 kernel::AllocPolicy policy =
                     kernel::AllocPolicy::Sequential)
        : w(policy), kind(k), rounds(rounds_)
    {
        arrivals = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
        errors = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
        central.init(w.engine.heap(), threads);
        tree.init(w.engine.heap(), threads);
        auto *self = this;
        w.engine.spawn(threads, [self](GuestCtx &ctx) {
            return body(ctx, *self);
        });
    }

    static GuestTask
    body(GuestCtx &ctx, BarrierWorld &bw)
    {
        for (u32 round = 1; round <= bw.rounds; ++round) {
            co_await ctx.amoadd(bw.arrivals, 1);
            switch (bw.kind) {
              case BarKind::Hw:
                co_await ctx.hwBarrier(0);
                break;
              case BarKind::Central:
                co_await ctx.swBarrier(bw.central);
                break;
              case BarKind::Tree:
                co_await ctx.swBarrier(bw.tree);
                break;
            }
            const u64 seen = co_await ctx.load(bw.arrivals, 4);
            if (seen < u64(ctx.threads()) * round)
                co_await ctx.amoadd(bw.errors, 1);
            // Second barrier so the next round's increments cannot
            // race with this round's check.
            switch (bw.kind) {
              case BarKind::Hw:
                co_await ctx.hwBarrier(1);
                break;
              case BarKind::Central:
                co_await ctx.swBarrier(bw.central);
                break;
              case BarKind::Tree:
                co_await ctx.swBarrier(bw.tree);
                break;
            }
        }
    }

    u32
    errorCount()
    {
        EXPECT_EQ(w.engine.run(100'000'000), arch::RunExit::AllHalted);
        return u32(w.chip.memRead(errors, 4, 0));
    }
};

} // namespace

class BarrierOrdering
    : public ::testing::TestWithParam<std::tuple<int, u32>>
{
};

TEST_P(BarrierOrdering, NoThreadRunsAhead)
{
    const auto [kindIdx, threads] = GetParam();
    BarrierWorld bw(static_cast<BarKind>(kindIdx), threads, 5);
    EXPECT_EQ(bw.errorCount(), 0u);
}

namespace
{

std::string
barrierCaseName(
    const ::testing::TestParamInfo<std::tuple<int, u32>> &info)
{
    static const char *names[] = {"Hw", "Central", "Tree"};
    return std::string(names[std::get<0>(info.param)]) + "x" +
           std::to_string(std::get<1>(info.param));
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, BarrierOrdering,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 3u, 16u, 64u, 126u)),
    barrierCaseName);

TEST(Barriers, HardwareFasterThanSoftware)
{
    // The whole point of the hardware barrier (paper 3.3): with many
    // threads it costs far fewer cycles than the memory-based tree.
    auto cost = [](BarKind kind) {
        BarrierWorld bw(kind, 64, 20);
        EXPECT_EQ(bw.errorCount(), 0u);
        return bw.w.chip.now();
    };
    const Cycle hw = cost(BarKind::Hw);
    const Cycle tree = cost(BarKind::Tree);
    const Cycle central = cost(BarKind::Central);
    EXPECT_LT(hw, tree);
    EXPECT_LT(hw, central);
}

TEST(Barriers, WiredOrSemantics)
{
    arch::BarrierSpr spr;
    spr.init(8, nullptr);
    EXPECT_EQ(spr.read(), 0);
    spr.write(0, 0b0000'0001);
    spr.write(3, 0b0000'0100);
    EXPECT_EQ(spr.read(), 0b0000'0101);
    spr.write(0, 0b0000'0010); // clear current, set next
    EXPECT_EQ(spr.read(), 0b0000'0110);
    spr.write(3, 0);
    EXPECT_EQ(spr.read(), 0b0000'0010);
}

TEST(Barriers, ProtocolRoleSwap)
{
    arch::HwBarrierProtocol proto(2); // bits 4 and 5
    EXPECT_EQ(proto.armValue(), 1u << 4);
    u8 reg = proto.armValue();
    reg = proto.enterValue(reg);
    EXPECT_EQ(reg, 1u << 5); // current cleared, next set
    EXPECT_TRUE(proto.released(0));
    EXPECT_FALSE(proto.released(1u << 4));
    proto.consumeRelease();
    reg = proto.enterValue(reg);
    EXPECT_EQ(reg, 1u << 4); // roles swapped
    EXPECT_FALSE(proto.released(1u << 5));
}
