/**
 * @file
 * Multi-chip interconnect tests: coordinates, dimension-order routing
 * (mesh and torus shortest way), latency arithmetic, link contention,
 * segmentation of large messages, and the host link.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "net/topology.h"

using namespace cyclops;
using namespace cyclops::net;

TEST(Net, CoordinateRoundTrip)
{
    NetConfig cfg;
    cfg.dimX = 4;
    cfg.dimY = 3;
    cfg.dimZ = 2;
    Topology fabric(cfg);
    for (u32 chip = 0; chip < cfg.numChips(); ++chip)
        EXPECT_EQ(fabric.chipAt(fabric.coordOf(chip)), chip);
}

TEST(Net, DimensionOrderRouting)
{
    NetConfig cfg;
    cfg.dimX = cfg.dimY = cfg.dimZ = 4;
    cfg.torus = false;
    Topology fabric(cfg);
    const u32 src = fabric.chipAt({0, 0, 0});
    const u32 dst = fabric.chipAt({2, 1, 3});
    const auto path = fabric.route(src, dst);
    ASSERT_EQ(path.size(), 6u); // 2 + 1 + 3 hops
    // X first, then Y, then Z.
    EXPECT_EQ(path[0].second, Dir::XPlus);
    EXPECT_EQ(path[1].second, Dir::XPlus);
    EXPECT_EQ(path[2].second, Dir::YPlus);
    EXPECT_EQ(path[3].second, Dir::ZPlus);
}

TEST(Net, TorusTakesTheShortWay)
{
    NetConfig cfg;
    cfg.dimX = 8;
    cfg.dimY = cfg.dimZ = 1;
    Topology fabric(cfg);
    // 0 -> 7 is one hop backwards around the ring.
    EXPECT_EQ(fabric.hops(0, 7), 1u);
    EXPECT_EQ(fabric.route(0, 7)[0].second, Dir::XMinus);
    EXPECT_EQ(fabric.hops(0, 4), 4u); // tie: either way is 4

    cfg.torus = false;
    Topology mesh(cfg);
    EXPECT_EQ(mesh.hops(0, 7), 7u);
}

TEST(Net, UncontendedLatency)
{
    NetConfig cfg;
    Topology fabric(cfg);
    // 1 hop, 64 bytes at 2 bytes/cycle: 5 + 32.
    const u32 a = fabric.chipAt({0, 0, 0});
    const u32 b = fabric.chipAt({1, 0, 0});
    EXPECT_EQ(fabric.uncontendedLatency(a, b, 64), 37u);
    EXPECT_EQ(fabric.send(0, a, b, 64), 37u);
}

TEST(Net, LinkContentionSerializes)
{
    NetConfig cfg;
    Topology fabric(cfg);
    const u32 a = fabric.chipAt({0, 0, 0});
    const u32 b = fabric.chipAt({1, 0, 0});
    const Cycle first = fabric.send(0, a, b, 256);
    const Cycle second = fabric.send(0, a, b, 256);
    EXPECT_GT(second, first);
    EXPECT_GE(second - first, 128u); // one serialization time apart
}

TEST(Net, DisjointPathsDoNotInterfere)
{
    NetConfig cfg;
    Topology fabric(cfg);
    const Cycle ab = fabric.send(0, fabric.chipAt({0, 0, 0}),
                                 fabric.chipAt({1, 0, 0}), 128);
    const Cycle cd = fabric.send(0, fabric.chipAt({0, 1, 0}),
                                 fabric.chipAt({1, 1, 0}), 128);
    EXPECT_EQ(ab, cd);
}

TEST(Net, LargeMessagesPipelinePackets)
{
    NetConfig cfg;
    cfg.dimX = 4;
    cfg.torus = false;
    Topology fabric(cfg);
    const u32 a = fabric.chipAt({0, 0, 0});
    const u32 d = fabric.chipAt({3, 0, 0});
    // 1 KB over 3 hops: cut-through + segmentation beats
    // store-and-forward (3 x 512) decisively.
    const Cycle t = fabric.send(0, a, d, 1024);
    EXPECT_LT(t, 3 * 512u);
    EXPECT_GE(t, 512u); // cannot beat pure serialization
}

TEST(Net, HostLink)
{
    Topology fabric;
    const Cycle first = fabric.hostTransfer(0, 0, 1024);
    const Cycle second = fabric.hostTransfer(0, 0, 1024);
    EXPECT_EQ(first, 512u + fabric.config().routerLatency);
    EXPECT_EQ(second, 1024u + fabric.config().routerLatency);
}

TEST(Net, PeakIoBandwidthMatchesPaper)
{
    // Six in + six out 16-bit 500 MHz links = 12 GB/s per chip.
    NetConfig cfg;
    const double perLink =
        double(cfg.linkBytesPerCycle) * double(cfg.clockHz);
    EXPECT_NEAR(perLink * 12 / 1e9, 12.0, 0.01);
}

TEST(Net, RejectsBadEndpoints)
{
    EXPECT_DEATH(
        {
            setLogLevel(LogLevel::Quiet);
            Topology fabric;
            fabric.send(0, 0, 99, 64);
        },
        "");
}

namespace
{

/** Hop count a dimension contributes under DOR. */
u32
dimHops(u32 from, u32 to, u32 dim, bool torus)
{
    if (!torus)
        return to >= from ? to - from : from - to;
    const u32 fwd = to >= from ? to - from : to + dim - from;
    const u32 bwd = dim - fwd;
    return fwd == 0 ? 0 : (fwd <= bwd ? fwd : bwd);
}

} // namespace

TEST(Net, HopCountsExhaustiveMeshVsTorus)
{
    // A mixed-extent grid with a degenerate 1-wide Z dimension.
    NetConfig cfg;
    cfg.dimX = 4;
    cfg.dimY = 3;
    cfg.dimZ = 1;
    for (bool torus : {false, true}) {
        cfg.torus = torus;
        Topology fabric(cfg);
        for (u32 s = 0; s < cfg.numChips(); ++s) {
            for (u32 d = 0; d < cfg.numChips(); ++d) {
                const Coord cs = fabric.coordOf(s);
                const Coord cd = fabric.coordOf(d);
                const u32 expected =
                    dimHops(cs.x, cd.x, cfg.dimX, torus) +
                    dimHops(cs.y, cd.y, cfg.dimY, torus) +
                    dimHops(cs.z, cd.z, cfg.dimZ, torus);
                EXPECT_EQ(fabric.hops(s, d), expected)
                    << (torus ? "torus " : "mesh ") << s << "->" << d;
                EXPECT_EQ(fabric.route(s, d).size(), expected);
            }
        }
    }
}

TEST(Net, TorusWraparoundBeatsMeshOnFarPairs)
{
    NetConfig cfg;
    cfg.dimX = 8;
    cfg.dimY = 4;
    cfg.dimZ = 2;
    Topology torus(cfg);
    cfg.torus = false;
    Topology mesh(cfg);
    const u32 s = torus.chipAt({0, 0, 0});
    const u32 d = torus.chipAt({7, 3, 1});
    EXPECT_EQ(mesh.hops(s, d), 7u + 3 + 1);
    EXPECT_EQ(torus.hops(s, d), 1u + 1 + 1); // all wraparound
    // In a 2-wide dimension both ways are one hop.
    EXPECT_EQ(torus.hops(torus.chipAt({0, 0, 0}),
                         torus.chipAt({0, 0, 1})),
              1u);
}

TEST(Net, DegenerateOneWideDimensionsNeverRoute)
{
    NetConfig cfg;
    cfg.dimX = 1;
    cfg.dimY = 1;
    cfg.dimZ = 5;
    cfg.torus = true;
    Topology fabric(cfg);
    EXPECT_EQ(fabric.hops(0, 0), 0u);
    EXPECT_TRUE(fabric.route(0, 0).empty());
    for (u32 d = 1; d < 5; ++d) {
        for (const auto &[chip, dir] : fabric.route(0, d)) {
            (void)chip;
            EXPECT_TRUE(dir == Dir::ZPlus || dir == Dir::ZMinus);
        }
    }
    // Around the 5-ring: 0 -> 3 is two hops backwards.
    EXPECT_EQ(fabric.hops(0, 3), 2u);
    EXPECT_EQ(fabric.route(0, 3)[0].second, Dir::ZMinus);
}
