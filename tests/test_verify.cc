/**
 * @file
 * Differential verification subsystem tests: golden-model semantics,
 * generator determinism and well-formedness, mutation-tested harness
 * sensitivity (an injected semantic bug must be caught and shrunk),
 * reproducer round-trips, and timing-invariance of architectural state.
 */

#include <gtest/gtest.h>

#include <memory>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "exec/engine.h"
#include "isa/assembler.h"
#include "verify/diff_runner.h"
#include "verify/digest.h"
#include "verify/fuzz.h"
#include "verify/prog_gen.h"
#include "verify/ref_interp.h"

using namespace cyclops;
using namespace cyclops::verify;

namespace
{

/** Run @p src on the reference interpreter, one thread. */
RefInterpreter
refRun(const std::string &src, u64 maxInstrs = 10'000)
{
    const isa::Program prog = isa::assembleOrDie(src, 0);
    RefInterpreter ref(prog, 1 << 20, 1);
    EXPECT_EQ(ref.run(0, maxInstrs), StepStatus::Halted);
    return ref;
}

} // namespace

// --- Reference interpreter semantics ---------------------------------------

TEST(RefInterp, ArithmeticAndConsole)
{
    RefInterpreter ref = refRun(R"(
        .text
        start:
            li   r8, 1000
            li   r9, -58
            add  r4, r8, r9
            trap 2          ; print r4 as %d
            halt
    )");
    EXPECT_EQ(ref.console(), "942");
    EXPECT_EQ(ref.thread(0).regs[4], 942u);
    EXPECT_EQ(ref.thread(0).instructions, 5u);
}

TEST(RefInterp, LoadStoreAndBranches)
{
    RefInterpreter ref = refRun(R"(
        .text
        start:
            la   r10, buf
            li   r8, 0       ; i
            li   r9, 0       ; sum
        loop:
            slli r11, r8, 2
            add  r11, r11, r10
            sw   r8, 0(r11)
            lw   r12, 0(r11)
            add  r9, r9, r12
            addi r8, r8, 1
            li   r13, 5
            bne  r8, r13, loop
            halt
        .data
        buf: .space 32
    )");
    EXPECT_EQ(ref.thread(0).regs[9], 0u + 1 + 2 + 3 + 4);
    // 8 loop instructions x 5 trips + 4 setup (la is lui+ori) + halt.
    EXPECT_EQ(ref.thread(0).instructions, 8u * 5 + 4 + 1);
}

TEST(RefInterp, UnsupportedOutsideSubset)
{
    const isa::Program prog = isa::assembleOrDie(R"(
        .text
        start:
            mtspr 4, r8     ; barrier SPR: timing-dependent
            halt
    )", 0);
    RefInterpreter ref(prog, 1 << 20, 1);
    EXPECT_EQ(ref.run(0, 10), StepStatus::Unsupported);
    EXPECT_NE(ref.error().find("mtspr"), std::string::npos);
}

TEST(RefInterp, ClassCountsAttributeInstructions)
{
    RefInterpreter ref = refRun(R"(
        .text
        start:
            li   r8, 7
            mul  r9, r8, r8
            la   r10, v
            ld   r32, 0(r10)
            faddd r34, r32, r32
            halt
        .data
        v: .double 1.5
    )");
    const auto &counts = ref.classCounts();
    EXPECT_EQ(counts[u8(isa::UnitClass::IntMul)], 1u);
    EXPECT_EQ(counts[u8(isa::UnitClass::Load)], 1u);
    EXPECT_EQ(counts[u8(isa::UnitClass::FpAdd)], 1u);
    EXPECT_EQ(counts[u8(isa::UnitClass::Misc)], 1u); // halt
}

// --- Generator ---------------------------------------------------------------

TEST(ProgGen, DeterministicForSeed)
{
    GenOptions opts;
    opts.seed = 12345;
    opts.threads = 4;
    const GenProgram a = generate(opts);
    const GenProgram b = generate(opts);
    EXPECT_EQ(a.program.text, b.program.text);
    EXPECT_EQ(a.program.data, b.program.data);
    EXPECT_NE(generate({.seed = 54321, .threads = 4}).program.text,
              a.program.text);
}

TEST(ProgGen, ToAsmReassemblesIdentically)
{
    for (u64 seed : {1ull, 99ull, 123456789ull}) {
        const GenProgram gp = generate({.seed = seed, .threads = 3});
        const isa::AsmResult res = isa::assemble(gp.toAsm(), 0);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.program.text, gp.program.text) << "seed " << seed;
        EXPECT_EQ(res.program.data, gp.program.data) << "seed " << seed;
        EXPECT_EQ(res.program.dataBase, gp.program.dataBase);
        EXPECT_EQ(res.program.entry, gp.program.entry);
    }
}

TEST(ProgGen, GeneratedProgramsTerminateAndDiffClean)
{
    for (u64 seed = 1; seed <= 8; ++seed) {
        const GenProgram gp =
            generate({.seed = seed, .threads = 1 + u32(seed % 4)});
        const DiffResult r = runDiff(gp, DiffConfig{});
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.message;
        EXPECT_GT(r.instructions, 0u);
    }
}

// --- Differential harness sensitivity (mutation testing) ---------------------

TEST(DiffRunner, CatchesInjectedSemanticBugs)
{
    for (Mutation m : {Mutation::AddOffByOne, Mutation::SltuFlipped,
                       Mutation::LbZeroExtends}) {
        FuzzOptions opts;
        opts.iters = 100; // stops at the first divergence
        opts.mutation = m;
        const FuzzResult res = fuzzLoop(opts);
        EXPECT_EQ(res.divergences, 1u) << "mutation " << int(m);
        EXPECT_FALSE(res.report.empty());
        EXPECT_NE(res.report.find("diverged"), std::string::npos);
    }
}

TEST(DiffRunner, ShrinksToMinimalReproducer)
{
    FuzzOptions opts;
    opts.iters = 100;
    opts.mutation = Mutation::AddOffByOne;
    const FuzzResult res = fuzzLoop(opts);
    ASSERT_EQ(res.divergences, 1u);
    // The fixed prologue (15 instructions) is protected; everything the
    // failure does not need must have been nopped out and compacted.
    EXPECT_LE(res.reproducerLen, 20u);
    EXPECT_NE(res.reproducer.find("start:"), std::string::npos);
    // The reproducer reassembles.
    const isa::AsmResult as = isa::assemble(res.reproducer, 0);
    EXPECT_TRUE(as.ok) << as.error;
}

TEST(Fuzz, CampaignIsDeterministic)
{
    FuzzOptions opts;
    opts.iters = 25;
    const FuzzResult a = fuzzLoop(opts);
    const FuzzResult b = fuzzLoop(opts);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.divergences, 0u);
    EXPECT_EQ(b.divergences, 0u);
}

// --- Timing-invariance of architectural state --------------------------------

TEST(Verify, ArchStateInvariantUnderTimingKnobs)
{
    const GenProgram gp = generate({.seed = 77, .threads = 2});

    auto finalDigest = [&](bool pib, bool burst, u32 outstanding) {
        DiffConfig cfg;
        cfg.chip.pibEnabled = pib;
        cfg.chip.burstEnabled = burst;
        cfg.chip.maxOutstandingMem = outstanding;
        arch::Chip chip(cfg.chip);
        chip.loadProgram(gp.program);
        for (u32 t = 0; t < gp.threads; ++t) {
            chip.setUnit(t, std::make_unique<arch::ThreadUnit>(
                                t, chip, gp.program.entry));
            chip.activate(t);
        }
        EXPECT_EQ(chip.run(1'000'000), arch::RunExit::AllHalted);
        return memDigest(chip, 0, chip.config().memBytes());
    };

    const u64 base = finalDigest(true, true, 4);
    EXPECT_EQ(base, finalDigest(false, true, 4));
    EXPECT_EQ(base, finalDigest(true, false, 1));
    EXPECT_EQ(base, finalDigest(false, false, 2));
}

TEST(Verify, EngineExposesConstState)
{
    arch::Chip chip;
    exec::GuestEngine engine(chip);
    const exec::GuestEngine &ce = engine;
    EXPECT_EQ(&ce.chip(), &chip);
    EXPECT_GT(ce.heap().limit(), ce.heap().base());
    EXPECT_EQ(memDigest(ce.chip(), 0, 4096),
              memDigest(ce.chip(), 0, 4096));
}
