/**
 * @file
 * Kernel-layer tests: the simulated-memory heap (bump + coalescing
 * free list) and the sense-reversing central software barrier run on
 * real ThreadUnits.
 */

#include <gtest/gtest.h>

#include <memory>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "arch/thread_unit.h"
#include "isa/builder.h"
#include "kernel/heap.h"
#include "kernel/sync.h"

using namespace cyclops;
using kernel::Heap;

// --- Heap --------------------------------------------------------------------

TEST(Heap, BumpAllocationIsContiguousAndAligned)
{
    Heap h(0x1000, 0x2000);
    const PhysAddr a = h.alloc(24, 8);
    const PhysAddr b = h.alloc(10, 8);
    const PhysAddr c = h.alloc(1, 64);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_EQ(b, a + 24);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(c, b + 10);
    EXPECT_EQ(h.remaining(), 0x2000u - (c + 1));
}

TEST(Heap, ZeroByteAllocationRoundsUpToAlignment)
{
    Heap h(0, 256);
    const PhysAddr a = h.alloc(0, 16);
    const PhysAddr b = h.alloc(0, 16);
    EXPECT_NE(a, b);
    EXPECT_EQ(b - a, 16u);
}

TEST(Heap, FreeListReusesReleasedBlock)
{
    Heap h(0, 0x1000);
    const PhysAddr a = h.alloc(96);
    const PhysAddr b = h.alloc(96);
    h.free(a);
    // First fit: the released block satisfies an equal-sized request.
    EXPECT_EQ(h.alloc(96), a);
    h.free(b);
    EXPECT_EQ(h.alloc(64), b);
}

TEST(Heap, FreeCoalescesNeighbours)
{
    Heap h(0, 0x1000);
    const PhysAddr a = h.alloc(64);
    const PhysAddr b = h.alloc(64);
    const PhysAddr c = h.alloc(64);
    h.alloc(64); // guard so the region below brk stays occupied
    h.free(a);
    h.free(c);
    h.free(b); // joins [a,b) and [c,c+64) into one 192-byte block
    EXPECT_EQ(h.alloc(192), a);
}

TEST(Heap, AlignmentSlackIsReturnedToFreeList)
{
    Heap h(8, 0x1000);
    const PhysAddr a = h.alloc(8);   // 8
    h.alloc(8);                      // 16, keeps brk away
    h.free(a);
    const PhysAddr big = h.alloc(8, 64); // can't fit at 8: bumps
    EXPECT_EQ(big % 64, 0u);
    // The freed 8-byte block at 0 still satisfies a small request.
    EXPECT_EQ(h.alloc(8), a);
}

TEST(Heap, ResetDropsAllAllocations)
{
    Heap h(0x100, 0x200);
    h.alloc(32);
    h.alloc(32);
    h.reset();
    EXPECT_EQ(h.alloc(32), 0x100u);
}

TEST(HeapDeathTest, ExhaustionIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Heap h(0, 128);
    h.alloc(64);
    EXPECT_EXIT(h.alloc(128), testing::ExitedWithCode(1), "exhausted");
}

TEST(HeapDeathTest, BadAlignmentIsFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Heap h(0, 128);
    EXPECT_EXIT(h.alloc(8, 24), testing::ExitedWithCode(1),
                "power of two");
}

// --- Sense-reversing software barrier ----------------------------------------

namespace
{

/**
 * N threads: result[tid] = tid + 1; barrier; sum = result[0..N);
 * barrier (reversed sense); check[tid] = sum. Without the barrier a
 * fast thread would sum unwritten slots.
 */
void
runBarrierProgram(u32 n)
{
    using arch::igAddr;
    using arch::kIgDefault;

    isa::ProgramBuilder b(0);
    kernel::SwBarrierAsm bar(b, 10, 11, 12);
    const u32 result = b.allocData(4 * n, 64);
    const u32 check = b.allocData(4 * n, 64);

    b.mfspr(4, isa::kSprTid);
    bar.emitInit(b);
    b.li(5, n);
    b.li(6, igAddr(kIgDefault, result));
    b.slli(7, 4, 2);
    b.add(7, 7, 6);
    b.addi(8, 4, 1);
    b.sw(8, 0, 7);
    bar.emitEnter(b, 5);
    b.li(9, 0);  // sum
    b.li(13, 0); // i
    auto loop = b.newLabel();
    b.bind(loop);
    b.slli(7, 13, 2);
    b.add(7, 7, 6);
    b.lw(8, 0, 7);
    b.add(9, 9, 8);
    b.addi(13, 13, 1);
    b.bne(13, 5, loop);
    bar.emitEnter(b, 5); // second use: the reversed sense
    b.li(6, igAddr(kIgDefault, check));
    b.slli(7, 4, 2);
    b.add(7, 7, 6);
    b.sw(9, 0, 7);
    b.halt();
    const isa::Program prog = b.finish();

    arch::Chip chip;
    chip.loadProgram(prog);
    for (u32 t = 0; t < n; ++t) {
        chip.setUnit(t,
                     std::make_unique<arch::ThreadUnit>(t, chip, 0));
        chip.activate(t);
    }
    ASSERT_EQ(chip.run(10'000'000), arch::RunExit::AllHalted);

    const u32 expected = n * (n + 1) / 2;
    for (u32 t = 0; t < n; ++t) {
        u32 got = 0;
        chip.readPhys(check + 4 * t, &got, 4);
        EXPECT_EQ(got, expected) << "thread " << t << " of " << n;
    }
    // The last arriver of each episode resets the counter.
    u32 counter = ~0u;
    chip.readPhys(bar.counterAddr(), &counter, 4);
    EXPECT_EQ(counter, 0u);
}

} // namespace

TEST(SwBarrier, SeparatesPhasesAcrossThreadCounts)
{
    for (u32 n : {1u, 2u, 7u, 16u})
        runBarrierProgram(n);
}
