/**
 * @file
 * Robustness tests: RunExit reasons on both frontends (halt, cycle
 * limit, deadlock watchdog, host stop signal), the Chip::run deadline
 * overflow clamp, degraded-chip fault maps (boot enumeration, barrier
 * masking, interest-group remap, reduced cache ways), structured
 * configuration errors, guest-error classification, and determinism of
 * seeded fault-injection campaigns.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "exec/engine.h"
#include "exec/guest_unit.h"
#include "fault/fault.h"
#include "isa/assembler.h"
#include "kernel/kernel.h"
#include "verify/diff_runner.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::arch;
namespace kernel = cyclops::kernel;
namespace exec = cyclops::exec;

namespace
{

isa::Program
assembleOrDie(const std::string &src)
{
    isa::AsmResult res = isa::assemble(src);
    EXPECT_TRUE(res.ok) << res.error;
    return res.program;
}

/** A chip running @p threads copies of @p src from cycle 0. */
std::unique_ptr<Chip>
makeChip(const std::string &src, u32 threads,
         const ChipConfig &cfg = ChipConfig{})
{
    auto chip = std::make_unique<Chip>(cfg);
    const isa::Program p = assembleOrDie(src);
    chip->loadProgram(p);
    for (ThreadId t = 0; t < threads; ++t) {
        chip->setUnit(t, std::make_unique<ThreadUnit>(t, *chip,
                                                      p.entry));
        chip->activate(t);
    }
    return chip;
}

// A spin loop with the address hoisted out: re-reads one never-written
// word forever, so it retires instructions but makes no progress.
constexpr const char *kDeadlockAsm = R"(
        la      r10, flag
    spin:
        lw      r11, 0(r10)
        beqz    r11, spin
        halt
        .data
        .align 64
    flag:
        .word 0
)";

// A long-but-finite loop whose counter changes every iteration, so it
// generates progress events throughout.
constexpr const char *kBusyAsm = R"(
        li      r5, 60000
    loop:
        addi    r5, r5, -1
        bnez    r5, loop
        halt
)";

} // namespace

// ---------------------------------------------------------------------------
// RunExit reasons, ISA frontend.
// ---------------------------------------------------------------------------

TEST(RunExitIsa, AllHalted)
{
    auto chip = makeChip("halt\n", 2);
    const RunExit exit = chip->run();
    EXPECT_EQ(exit, RunExit::AllHalted);
    EXPECT_STREQ(runExitName(exit.reason), "allHalted");
}

TEST(RunExitIsa, CycleLimit)
{
    auto chip = makeChip(kBusyAsm, 1);
    const RunExit exit = chip->run(5'000);
    EXPECT_EQ(exit, RunExit::CycleLimit);
    EXPECT_GE(exit.at, 5'000u);
    EXPECT_STREQ(runExitName(exit.reason), "cycleLimit");
    EXPECT_EQ(chip->liveUnits(), 1u);
}

TEST(RunExitIsa, WatchdogCatchesSpinDeadlock)
{
    ChipConfig cfg;
    cfg.fault.watchdogCycles = 20'000;
    auto chip = makeChip(kDeadlockAsm, 2, cfg);
    const RunExit exit = chip->run(10'000'000);
    ASSERT_EQ(exit, RunExit::Watchdog);
    EXPECT_STREQ(runExitName(exit.reason), "watchdog");
    // The diagnostic names the window and dumps per-TU state.
    EXPECT_NE(exit.diagnostic.find("deadlock watchdog"),
              std::string::npos);
    EXPECT_NE(exit.diagnostic.find("tu   0"), std::string::npos);
    EXPECT_NE(exit.diagnostic.find("tu   1"), std::string::npos);
    EXPECT_NE(exit.diagnostic.find("lastPoll"), std::string::npos);
    // It fired promptly after the window, not at the cycle budget.
    EXPECT_LT(exit.at, 100'000u);
}

TEST(RunExitIsa, WatchdogOffByDefaultForShortWindows)
{
    // No false positive: a program that keeps making progress runs to
    // completion under a tight watchdog.
    ChipConfig cfg;
    cfg.fault.watchdogCycles = 20'000;
    auto chip = makeChip(kBusyAsm, 2, cfg);
    EXPECT_EQ(chip->run(10'000'000), RunExit::AllHalted);
}

TEST(RunExitIsa, WatchdogDisabledByZero)
{
    ChipConfig cfg;
    cfg.fault.watchdogCycles = 0;
    auto chip = makeChip(kDeadlockAsm, 1, cfg);
    EXPECT_EQ(chip->run(200'000), RunExit::CycleLimit);
}

TEST(RunExitIsa, SignalStopsRun)
{
    clearRunStop();
    auto chip = makeChip(kDeadlockAsm, 1);
    requestRunStop(SIGINT);
    EXPECT_TRUE(runStopRequested());
    const RunExit exit = chip->run(10'000'000);
    ASSERT_EQ(exit, RunExit::Signal);
    EXPECT_EQ(exit.signal, SIGINT);
    EXPECT_STREQ(runExitName(exit.reason), "signal");
    clearRunStop();
    EXPECT_FALSE(runStopRequested());
}

TEST(RunExitIsa, DeadlineOverflowClampRegression)
{
    // now_ + maxCycles used to wrap for budgets near kCycleNever,
    // making run() return CycleLimit immediately. A finite huge budget
    // must clamp and run to completion.
    auto chip = makeChip(kBusyAsm, 1);
    chip->run(10); // advance now_ so the addition would overflow
    const RunExit exit = chip->run(kCycleNever - 5);
    EXPECT_EQ(exit, RunExit::AllHalted);
    EXPECT_EQ(chip->liveUnits(), 0u);
}

// ---------------------------------------------------------------------------
// RunExit reasons, execution-driven frontend.
// ---------------------------------------------------------------------------

namespace
{

struct World
{
    Chip chip;
    exec::GuestEngine engine;
    explicit World(ChipConfig cfg = ChipConfig{})
        : chip(cfg), engine(chip, kernel::AllocPolicy::Sequential)
    {}
};

} // namespace

TEST(RunExitExec, AllHalted)
{
    World w;
    w.engine.spawn(2, [](exec::GuestCtx &ctx) -> exec::GuestTask {
        co_await ctx.alu(32);
    });
    EXPECT_EQ(w.engine.run(100'000), RunExit::AllHalted);
}

TEST(RunExitExec, CycleLimit)
{
    World w;
    w.engine.spawn(1, [](exec::GuestCtx &ctx) -> exec::GuestTask {
        for (;;)
            co_await ctx.alu(1); // forward progress forever
    });
    EXPECT_EQ(w.engine.run(30'000), RunExit::CycleLimit);
}

TEST(RunExitExec, WatchdogCatchesLoadSpin)
{
    ChipConfig cfg;
    cfg.fault.watchdogCycles = 20'000;
    World w(cfg);
    const Addr flag = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
    w.engine.spawn(2, [&](exec::GuestCtx &ctx) -> exec::GuestTask {
        for (;;)
            co_await ctx.load(flag, 8); // same address, same value
    });
    const RunExit exit = w.engine.run(10'000'000);
    ASSERT_EQ(exit, RunExit::Watchdog);
    EXPECT_NE(exit.diagnostic.find("deadlock watchdog"),
              std::string::npos);
    EXPECT_LT(exit.at, 100'000u);
}

TEST(RunExitExec, WatchdogCatchesCrossedBarriers)
{
    // Classic crossed-id deadlock: every spawned guest arms all four
    // hardware barriers, so each thread spins waiting for the other to
    // enter the barrier it chose — which never happens.
    ChipConfig cfg;
    cfg.fault.watchdogCycles = 20'000;
    World w(cfg);
    w.engine.spawn(2, [](exec::GuestCtx &ctx) -> exec::GuestTask {
        co_await ctx.hwBarrier(ctx.index() == 0 ? 0 : 1);
    });
    const RunExit exit = w.engine.run(10'000'000);
    ASSERT_EQ(exit, RunExit::Watchdog);
    // The dump shows both spinners holding their barrier bits.
    EXPECT_NE(exit.diagnostic.find("barrier"), std::string::npos);
}

TEST(RunExitExec, SignalStopsRun)
{
    clearRunStop();
    World w;
    const Addr flag = igAddr(kIgDefault, w.engine.heap().alloc(64, 64));
    w.engine.spawn(1, [&](exec::GuestCtx &ctx) -> exec::GuestTask {
        for (;;)
            co_await ctx.load(flag, 8);
    });
    requestRunStop(SIGTERM);
    const RunExit exit = w.engine.run(10'000'000);
    ASSERT_EQ(exit, RunExit::Signal);
    EXPECT_EQ(exit.signal, SIGTERM);
    clearRunStop();
}

// ---------------------------------------------------------------------------
// Degraded chips.
// ---------------------------------------------------------------------------

TEST(Degraded, StreamSurvivesDeadBankAndQuad)
{
    ChipConfig cfg;
    cfg.fault.disabledBanks = {5};
    cfg.fault.disabledQuads = {3};
    workloads::StreamConfig sc;
    sc.kernel = workloads::StreamKernel::Copy;
    sc.threads = 64;
    sc.elementsPerThread = 128;
    sc.localCaches = true;
    const workloads::StreamResult res = workloads::runStream(sc, cfg);
    EXPECT_TRUE(res.verified);
    EXPECT_GT(res.totalGBs, 0.0);
}

TEST(Degraded, ThreadOrderSkipsDeadComponents)
{
    ChipConfig cfg;
    cfg.fault.disabledTus = {0};     // 1 TU
    cfg.fault.disabledQuads = {3};   // TUs 12..15 (within I-cache 1)
    cfg.fault.disabledIcaches = {1}; // TUs 8..15
    cfg.fault.disabledFpus = {5};    // TUs 20..23 unschedulable
    Chip chip(cfg);
    const auto order =
        kernel::threadOrder(chip, kernel::AllocPolicy::Sequential);
    // 126 usable minus tu0, minus the I-cache's 8 TUs (covering the
    // dead quad), minus the FPU-less quad's 4.
    EXPECT_EQ(order.size(), 126u - 1 - 8 - 4);
    for (ThreadId tid : order) {
        EXPECT_TRUE(chip.tuSchedulable(tid));
        EXPECT_NE(tid, 0u);
        EXPECT_FALSE(tid >= 8 && tid < 16);
        EXPECT_FALSE(tid >= 20 && tid < 24);
    }
    // Alive but unschedulable: a working TU whose quad lost its FPU.
    EXPECT_TRUE(chip.tuAlive(20));
    EXPECT_FALSE(chip.tuSchedulable(20));
    EXPECT_FALSE(chip.fpuEnabled(5));
}

TEST(Degraded, BarrierMasksDeadTus)
{
    ChipConfig cfg;
    cfg.fault.disabledTus = {2};
    Chip chip(cfg);
    // A fused-off TU can never hold a wired-OR bit high.
    chip.barrier().write(2, 0xFF);
    EXPECT_EQ(chip.barrier().read(), 0u);
    EXPECT_EQ(chip.barrier().threadValue(2), 0u);
    // Alive TUs participate normally.
    chip.barrier().write(1, 0x11);
    EXPECT_EQ(chip.barrier().read(), 0x11u);
}

TEST(Degraded, OwnInterestGroupRemapsToAliveCache)
{
    ChipConfig cfg;
    cfg.fault.disabledDcaches = {0};
    Chip chip(cfg);
    // TU 0's local cache is dead; an own-class access must route to
    // the next alive cache instead of the fused-off one.
    const PhysAddr pa = 64 * 1024;
    chip.memsys().access(0, 0, igAddr(kIgOwn, pa), 8, MemKind::Load);
    EXPECT_FALSE(chip.memsys().cacheEnabled(0));
    EXPECT_FALSE(chip.memsys().dcache(0).probe(pa));
    EXPECT_TRUE(chip.memsys().dcache(1).probe(pa));
}

TEST(Degraded, ScratchToDeadCacheFaults)
{
    ChipConfig cfg;
    cfg.dcacheScratchWays = 2;
    cfg.fault.disabledDcaches = {1};
    Chip chip(cfg);
    // Scratchpad storage physically lives in the dead cache's ways:
    // unlike the remappable own-class, access must fault the guest.
    EXPECT_THROW(chip.memRead(igAddr(igScratch(1), 0), 4, 0),
                 GuestError);
    // Scratch in an alive cache still works.
    chip.memWrite(igAddr(igScratch(2), 8), 4, 77, 8);
    EXPECT_EQ(chip.memRead(igAddr(igScratch(2), 8), 4, 8), 77u);
}

TEST(Degraded, ReducedCacheWaysStillRun)
{
    ChipConfig cfg;
    cfg.fault.cacheWays = 1; // direct-mapped survivor ways
    auto chip = makeChip(R"(
        la      r10, out
        li      r11, 123
        sw      r11, 0(r10)
        lw      r12, 0(r10)
        halt
        .data
        .align 64
    out:
        .word 0
    )",
                         1, cfg);
    EXPECT_EQ(chip->run(100'000), RunExit::AllHalted);
    EXPECT_EQ(static_cast<ThreadUnit *>(chip->unit(0))->reg(12), 123u);
}

TEST(Degraded, ActivatingDeadTuDies)
{
    setLogLevel(LogLevel::Quiet);
    ChipConfig cfg;
    cfg.fault.disabledTus = {3};
    EXPECT_DEATH(
        {
            Chip chip(cfg);
            const isa::Program p = assembleOrDie("halt\n");
            chip.loadProgram(p);
            chip.setUnit(3, std::make_unique<ThreadUnit>(3, chip, 0));
            chip.activate(3);
        },
        "");
    setLogLevel(LogLevel::Normal);
}

TEST(Degraded, FaultLineInvalidatesTimingDirectory)
{
    Chip chip;
    const PhysAddr pa = 8 * 1024;
    chip.memsys().access(0, 0, igAddr(igExactly(0), pa), 8,
                         MemKind::Load);
    ASSERT_TRUE(chip.memsys().dcache(0).probe(pa));
    // Find and kill the line: some index must have been valid.
    bool killed = false;
    for (u32 idx = 0; idx < chip.memsys().dcache(0).numLines(); ++idx)
        killed |= chip.memsys().dcache(0).faultLine(idx);
    EXPECT_TRUE(killed);
    EXPECT_FALSE(chip.memsys().dcache(0).probe(pa));
}

// ---------------------------------------------------------------------------
// Structured configuration errors.
// ---------------------------------------------------------------------------

TEST(Config, CheckReportsFirstViolation)
{
    ChipConfig good;
    EXPECT_EQ(good.check(), "");

    ChipConfig badThreads;
    badThreads.numThreads = 96;
    EXPECT_NE(badThreads.check().find("power of two"),
              std::string::npos);

    ChipConfig badBank;
    badBank.fault.disabledBanks = {99};
    EXPECT_NE(badBank.check().find("no such component"),
              std::string::npos);

    ChipConfig allBanks;
    for (u32 b = 0; b < allBanks.numBanks; ++b)
        allBanks.fault.disabledBanks.push_back(b);
    EXPECT_NE(allBanks.check().find("every memory bank"),
              std::string::npos);

    ChipConfig allCaches;
    for (u32 c = 0; c < allCaches.numCaches(); ++c)
        allCaches.fault.disabledDcaches.push_back(c);
    EXPECT_NE(allCaches.check().find("every data cache"),
              std::string::npos);

    ChipConfig badWays;
    badWays.fault.cacheWays = 100;
    EXPECT_NE(badWays.check().find("cacheWays"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Guest-error classification.
// ---------------------------------------------------------------------------

TEST(GuestErrors, MisalignedIsDetectableCheck)
{
    Chip chip;
    try {
        chip.memRead(2, 4, 0);
        FAIL() << "expected GuestError";
    } catch (const GuestError &err) {
        EXPECT_EQ(err.kind(), GuestError::Kind::Check);
    }
}

TEST(GuestErrors, OutOfRangeIsCrash)
{
    Chip chip;
    try {
        chip.memRead(chip.config().memBytes() + 64, 4, 0);
        FAIL() << "expected GuestError";
    } catch (const GuestError &err) {
        EXPECT_EQ(err.kind(), GuestError::Kind::Crash);
    }
}

// ---------------------------------------------------------------------------
// Fuzz timeouts stay distinct from watchdog hangs.
// ---------------------------------------------------------------------------

TEST(FuzzInterop, DefaultWatchdogOutlastsDiffBudget)
{
    // A runaway fuzz candidate must classify as a diff timeout (benign,
    // skipped), never as a watchdog hang: the default watchdog window
    // exceeds the differential runner's whole cycle budget.
    const verify::DiffConfig diff;
    EXPECT_GT(diff.chip.fault.watchdogCycles, diff.maxCycles);
    ChipConfig def;
    EXPECT_GT(def.fault.watchdogCycles, diff.maxCycles);
}

// ---------------------------------------------------------------------------
// Fault-injection campaigns.
// ---------------------------------------------------------------------------

TEST(Faultcamp, DeterministicAcrossJobCounts)
{
    fault::CampaignOptions opts;
    opts.seed = 11;
    opts.iterations = 10;
    opts.threads = 2;
    opts.bodyOps = 24;
    const fault::CampaignResult serial = fault::runCampaign(opts, 1);
    const fault::CampaignResult parallel = fault::runCampaign(opts, 4);
    ASSERT_EQ(serial.injections.size(), 10u);
    ASSERT_EQ(parallel.injections.size(), 10u);
    u64 total = 0;
    for (unsigned c = 0; c < fault::kNumOutcomes; ++c) {
        EXPECT_EQ(serial.counts[c], parallel.counts[c]);
        total += serial.counts[c];
    }
    EXPECT_EQ(total, 10u); // every injection in exactly one class
    for (size_t i = 0; i < serial.injections.size(); ++i) {
        EXPECT_EQ(serial.injections[i].outcome,
                  parallel.injections[i].outcome);
        EXPECT_EQ(serial.injections[i].seed, parallel.injections[i].seed);
        EXPECT_EQ(serial.injections[i].spec.kind,
                  parallel.injections[i].spec.kind);
        EXPECT_EQ(serial.injections[i].spec.cycle,
                  parallel.injections[i].spec.cycle);
    }
}

TEST(Faultcamp, InjectionIsSelfContained)
{
    fault::CampaignOptions opts;
    opts.seed = 5;
    opts.threads = 2;
    opts.bodyOps = 24;
    const fault::InjectionResult a = fault::runInjection(opts, 3);
    const fault::InjectionResult b = fault::runInjection(opts, 3);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GE(a.spec.cycle, 1u);
    EXPECT_GT(a.cycles, 0u);
}
