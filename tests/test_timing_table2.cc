/**
 * @file
 * Validates that the simulator reproduces Table 2 of the paper exactly
 * in the uncontended case: per-instruction execution/latency cycles and
 * the four memory-operation latency classes.
 *
 * Method: run a tiny ISA program on one thread and measure the cycle
 * distance between dependent instructions.
 */

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "isa/builder.h"

using namespace cyclops;
using namespace cyclops::arch;
using isa::Opcode;
using isa::ProgramBuilder;

namespace
{

/** Run @p prog on thread 0 until halt; returns cycles consumed. */
Cycle
runOn(Chip &chip, const isa::Program &prog, ThreadId tid = 0)
{
    chip.loadProgram(prog);
    auto unit = std::make_unique<ThreadUnit>(tid, chip, prog.entry);
    ThreadUnit *raw = unit.get();
    chip.setUnit(tid, std::move(unit));
    chip.activate(tid);
    EXPECT_EQ(chip.run(2'000'000), RunExit::AllHalted);
    (void)raw;
    return chip.now();
}

/**
 * Measure the latency of one producing instruction by timing a
 * dependent consumer: emits the producer at a known cycle and a chain
 * that cannot issue until the result is ready.
 *
 * The program is: warm-up nops (fill PIB effects), read cycle SPR,
 * producer, consumer (dependent), read cycle SPR. We instead measure
 * end-to-end cycles of a fixed loop in the tests below — simpler and
 * exact because the engine is deterministic.
 */
ChipConfig
quietConfig()
{
    ChipConfig cfg;
    cfg.pibEnabled = false; // no instruction-supply noise in latency tests
    return cfg;
}

/** Cycles from program start to halt for a straight-line program. */
Cycle
measure(const std::function<void(ProgramBuilder &)> &body)
{
    ProgramBuilder b;
    body(b);
    b.halt();
    Chip chip(quietConfig());
    return runOn(chip, b.finish());
}

} // namespace

// One single-cycle ALU op costs 1 cycle; N dependent ops cost N.
TEST(Table2, IntAluChain)
{
    const Cycle base = measure([](ProgramBuilder &b) {
        b.addi(4, 0, 1);
    });
    const Cycle chain = measure([](ProgramBuilder &b) {
        b.addi(4, 0, 1);
        for (int i = 0; i < 10; ++i)
            b.addi(4, 4, 1); // dependent: 1 cycle each
    });
    EXPECT_EQ(chain - base, 10u);
}

// Integer multiply: execution 1, latency 5 => dependent distance 6.
TEST(Table2, IntMulLatency)
{
    const Cycle independent = measure([](ProgramBuilder &b) {
        b.li(4, 7);
        b.li(5, 9);
        b.mul(6, 4, 5);
        b.addi(7, 0, 1); // independent: issues next cycle
    });
    const Cycle dependent = measure([](ProgramBuilder &b) {
        b.li(4, 7);
        b.li(5, 9);
        b.mul(6, 4, 5);
        b.addi(7, 6, 1); // dependent on the product
    });
    EXPECT_EQ(dependent - independent, 5u); // the latency column
}

// Integer divide: execution 33 (the thread's ALU is busy).
TEST(Table2, IntDivExecution)
{
    const Cycle base = measure([](ProgramBuilder &b) {
        b.li(4, 100);
        b.li(5, 7);
    });
    const Cycle div = measure([](ProgramBuilder &b) {
        b.li(4, 100);
        b.li(5, 7);
        b.divu(6, 4, 5);
    });
    EXPECT_EQ(div - base, 33u);
}

// Branches: execution 2 cycles, no latency.
TEST(Table2, BranchExecution)
{
    const Cycle base = measure([](ProgramBuilder &b) {
        b.addi(4, 0, 1);
        b.addi(5, 0, 1);
    });
    const Cycle branch = measure([](ProgramBuilder &b) {
        b.addi(4, 0, 1);
        auto skip = b.newLabel();
        b.beq(0, 0, skip); // taken branch: 2 cycles
        b.nop();
        b.bind(skip);
        b.addi(5, 0, 1);
    });
    EXPECT_EQ(branch - base, 2u);
}

// FP add: execution 1, latency 5 => dependent distance 6.
TEST(Table2, FpAddLatency)
{
    const Cycle independent = measure([](ProgramBuilder &b) {
        b.faddd(8, 10, 12);
        b.addi(4, 0, 1);
    });
    const Cycle dependent = measure([](ProgramBuilder &b) {
        b.faddd(8, 10, 12);
        b.faddd(14, 8, 8); // waits for the sum
    });
    // Independent: fadd(1) + addi(1) = 2. Dependent: fadd issues, the
    // consumer waits until cycle 6, then 1 cycle issue.
    EXPECT_EQ(dependent - independent, 5u);
}

// FMA: execution 1, latency 9 => dependent distance 10.
TEST(Table2, FmaLatency)
{
    const Cycle independent = measure([](ProgramBuilder &b) {
        b.fmadd(8, 10, 12);
        b.addi(4, 0, 1);
    });
    const Cycle dependent = measure([](ProgramBuilder &b) {
        b.fmadd(8, 10, 12);
        b.faddd(14, 8, 8);
    });
    EXPECT_EQ(dependent - independent, 9u);
}

// FP divide: the divide unit is busy 30 cycles and the result arrives
// then; a dependent consumer waits the full 30.
TEST(Table2, FpDivLatency)
{
    const Cycle independent = measure([](ProgramBuilder &b) {
        b.fdivd(8, 10, 12);
        b.addi(4, 0, 1);
    });
    const Cycle dependent = measure([](ProgramBuilder &b) {
        b.fdivd(8, 10, 12);
        b.faddd(14, 8, 8);
    });
    EXPECT_EQ(dependent - independent, 29u);
}

// FP square root: 56 cycles on the divide unit.
TEST(Table2, FpSqrtLatency)
{
    const Cycle independent = measure([](ProgramBuilder &b) {
        b.emitR(Opcode::Fsqrtd, 8, 10, 0);
        b.addi(4, 0, 1);
    });
    const Cycle dependent = measure([](ProgramBuilder &b) {
        b.emitR(Opcode::Fsqrtd, 8, 10, 0);
        b.faddd(14, 8, 8);
    });
    EXPECT_EQ(dependent - independent, 55u);
}

namespace
{

/**
 * Measure a load-to-use latency: a load whose consumer immediately
 * follows. Returns consumer-issue minus load-issue cycles.
 */
Cycle
loadUseLatency(u8 interestGroup, bool warmCache, ThreadId tid)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);

    ProgramBuilder b;
    const u32 buf = b.allocData(64, 64);
    const Addr ea = igAddr(interestGroup, buf);
    b.li(10, ea);
    if (warmCache)
        b.lw(4, 0, 10); // first touch fills the line
    // Drain all outstanding and pipeline effects with dependent ALU ops.
    b.addi(11, 0, 0);
    for (int i = 0; i < 64; ++i)
        b.addi(11, 11, 1);
    b.lw(5, 0, 10);    // the measured load
    b.addi(6, 5, 1);   // dependent consumer
    b.halt();

    chip.loadProgram(b.finish());
    auto unit = std::make_unique<ThreadUnit>(tid, chip, 0);
    chip.setUnit(tid, std::move(unit));
    chip.activate(tid);
    EXPECT_EQ(chip.run(100'000), RunExit::AllHalted);

    // Total = 2 (li) + [1 warm load] + 1 + 64 + 1 (load issue)
    //       + (loadLatency - 1 stall) + 1 (consumer) + 1 (halt).
    // Extract by comparing against an ALU-only baseline.
    return chip.now();
}

Cycle
loadUseBaseline(u8 interestGroup, bool warmCache, ThreadId tid)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);

    ProgramBuilder b;
    const u32 buf = b.allocData(64, 64);
    const Addr ea = igAddr(interestGroup, buf);
    b.li(10, ea);
    if (warmCache)
        b.lw(4, 0, 10);
    b.addi(11, 0, 0);
    for (int i = 0; i < 64; ++i)
        b.addi(11, 11, 1);
    b.lw(5, 0, 10);
    b.addi(6, 0, 1); // independent consumer: issues next cycle
    b.halt();

    chip.loadProgram(b.finish());
    auto unit = std::make_unique<ThreadUnit>(tid, chip, 0);
    chip.setUnit(tid, std::move(unit));
    chip.activate(tid);
    EXPECT_EQ(chip.run(100'000), RunExit::AllHalted);
    return chip.now();
}

/** Dependent-consumer extra wait = load latency - 1 issue cycle. */
Cycle
loadLatencyOf(u8 interestGroup, bool warm, ThreadId tid)
{
    return loadUseLatency(interestGroup, warm, tid) -
           loadUseBaseline(interestGroup, warm, tid) + 1;
}

} // namespace

// Local cache hit: 6 cycles. Thread 0's local cache is cache 0; pin the
// data there with interest group "exactly cache 0" and warm it.
TEST(Table2, MemoryLocalHit)
{
    EXPECT_EQ(loadLatencyOf(igExactly(0), true, 0), 6u);
}

// Local cache miss: 24 cycles (line fill from an embedded bank).
TEST(Table2, MemoryLocalMiss)
{
    EXPECT_EQ(loadLatencyOf(igExactly(0), false, 0), 24u);
}

// Remote cache hit: 17 cycles. Thread 4 (quad 1) accessing cache 0.
TEST(Table2, MemoryRemoteHit)
{
    EXPECT_EQ(loadLatencyOf(igExactly(0), true, 4), 17u);
}

// Remote cache miss: 36 cycles.
TEST(Table2, MemoryRemoteMiss)
{
    EXPECT_EQ(loadLatencyOf(igExactly(0), false, 4), 36u);
}

// The hardware-parameter section of Table 2: counts and sizes.
TEST(Table2, HardwareParameters)
{
    ChipConfig cfg;
    EXPECT_EQ(cfg.numThreads, 128u);
    EXPECT_EQ(cfg.numFpus(), 32u);
    EXPECT_EQ(cfg.numCaches(), 32u);
    EXPECT_EQ(cfg.dcacheBytes, 16u * 1024);
    EXPECT_EQ(cfg.numICaches(), 16u);
    EXPECT_EQ(cfg.icacheBytes, 32u * 1024);
    EXPECT_EQ(cfg.numBanks, 16u);
    EXPECT_EQ(cfg.bankBytes, 512u * 1024);
    EXPECT_EQ(cfg.memBytes(), 8u * 1024 * 1024);
    EXPECT_EQ(cfg.clockHz, 500'000'000u);
    // Peak bandwidths quoted in the paper: 42-43 GB/s memory, 128 GB/s cache.
    EXPECT_NEAR(cfg.peakMemBandwidth() / 1e9, 42.7, 0.1);
    EXPECT_NEAR(cfg.peakCacheBandwidth() / 1e9, 128.0, 0.1);
}
