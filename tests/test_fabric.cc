/**
 * @file
 * Lock-down tests for the cycle-driven net::Fabric and the multi-chip
 * arch::System built on it.
 *
 * The central identities: (1) at zero load the fabric's delivery
 * cycle equals Topology::uncontendedLatency exactly — the analytic
 * model and the timing component may never drift apart; (2) under any
 * injection sequence the fabric and Topology::send produce the same
 * cycles (they share the reservation math byte for byte); (3) flits
 * are conserved: injected == delivered + in flight, always; (4) the
 * multi-chip workloads verify and leave the fabric empty.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "arch/interest_group.h"
#include "arch/system.h"
#include "common/log.h"
#include "exec/engine.h"
#include "net/fabric.h"
#include "workloads/multichip.h"

using namespace cyclops;
using namespace cyclops::net;
using workloads::MultiChipConfig;
using workloads::MultiChipResult;

namespace
{

NetConfig
shape(u32 x, u32 y, u32 z, bool torus)
{
    NetConfig net;
    net.dimX = x;
    net.dimY = y;
    net.dimZ = z;
    net.torus = torus;
    return net;
}

} // namespace

TEST(Fabric, ZeroLoadEqualsAnalyticExactly)
{
    // Exhaustive over all pairs of several shapes — including 1-wide
    // dimensions — and several message sizes: a fresh (idle) fabric
    // must reproduce the analytic uncontendedLatency to the cycle.
    const NetConfig shapes[] = {
        shape(2, 2, 2, true),  shape(4, 4, 4, true),
        shape(3, 2, 1, false), shape(4, 1, 1, true),
        shape(1, 1, 4, false), shape(2, 2, 1, true),
    };
    const u32 sizes[] = {8, 16, 64, 256, 300, 1024};
    for (const NetConfig &net : shapes) {
        const Topology topo(net);
        for (u32 s = 0; s < net.numChips(); ++s) {
            for (u32 d = 0; d < net.numChips(); ++d) {
                if (s == d)
                    continue;
                for (u32 bytes : sizes) {
                    FabricConfig fc;
                    fc.net = net;
                    Fabric fabric(fc); // fresh: zero load
                    const Delivery del = fabric.inject(0, s, d, bytes);
                    EXPECT_EQ(del.delivered,
                              topo.uncontendedLatency(s, d, bytes))
                        << net.dimX << "x" << net.dimY << "x" << net.dimZ
                        << (net.torus ? " torus " : " mesh ") << s
                        << "->" << d << " " << bytes << "B";
                }
            }
        }
    }
}

TEST(Fabric, MatchesTopologySendUnderContention)
{
    // The fabric shares the reservation math with Topology::send, so
    // an identical injection sequence must produce identical delivery
    // cycles — including queueing, segmentation and far-apart pairs.
    const NetConfig net = shape(4, 4, 2, true);
    FabricConfig fc;
    fc.net = net;
    Fabric fabric(fc);
    Topology topo(net);

    u64 seed = 0x243F6A8885A308D3ull;
    Cycle now = 0;
    for (u32 i = 0; i < 500; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const u32 s = u32(seed >> 33) % net.numChips();
        u32 d = u32(seed >> 13) % net.numChips();
        if (d == s)
            d = (d + 1) % net.numChips();
        const u32 bytes = 8 + u32(seed % 600);
        now += seed % 7;
        EXPECT_EQ(fabric.inject(now, s, d, bytes).delivered,
                  topo.send(now, s, d, bytes))
            << "message " << i;
    }
    EXPECT_EQ(fabric.messages(), topo.stats().counterValue("net.messages"));
    EXPECT_EQ(fabric.bytesMoved(), topo.bytesMoved());
    EXPECT_EQ(fabric.queueCycles(),
              topo.stats().counterValue("net.queueCycles"));
}

TEST(Fabric, PerPathFifoOrdering)
{
    // Messages sharing a (src, dst) route deliver in injection order
    // with strictly increasing cycles — the property arch::System's
    // payload-before-flag protocol rests on.
    Fabric fabric(FabricConfig{shape(4, 4, 4, true)});
    Cycle last = 0;
    for (u32 i = 0; i < 64; ++i) {
        const Delivery d = fabric.inject(i / 4, 0, 3, 8 + 8 * (i % 5));
        EXPECT_GT(d.delivered, last) << "message " << i;
        EXPECT_GE(d.accepted, (i / 4) + 1);
        last = d.delivered;
    }
}

TEST(Fabric, BackpressurePacesToLinkBandwidth)
{
    // Saturating one path: after warmup, consecutive accepted cycles
    // are exactly serialization time apart — the source cannot push
    // more than linkBytesPerCycle (16 bits/cycle: the per-link share
    // of the paper's 12 GB/s I/O budget) into its first link.
    FabricConfig fc;
    fc.net = shape(2, 2, 2, true);
    Fabric fabric(fc);
    const u32 bytes = 64;
    const Cycle serialization = bytes / fc.net.linkBytesPerCycle;
    Cycle prev = 0;
    for (u32 i = 0; i < 32; ++i) {
        const Delivery d = fabric.inject(0, 0, 1, bytes);
        if (i > 0) {
            EXPECT_EQ(d.accepted - prev, serialization) << "message " << i;
        }
        prev = d.accepted;
    }
    // 1 GB/s per link direction x 12 links = the 12 GB/s chip budget.
    const double perLink =
        double(fc.net.linkBytesPerCycle) * double(fc.net.clockHz);
    EXPECT_NEAR(perLink * 12 / 1e9, 12.0, 0.01);
}

TEST(Fabric, FlitConservation)
{
    Fabric fabric(FabricConfig{shape(4, 2, 2, true)});
    u64 seed = 0xB7E151628AED2A6Bull;
    std::vector<Cycle> deliveries;
    for (u32 i = 0; i < 200; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const u32 s = u32(seed >> 33) % 16;
        u32 d = u32(seed >> 13) % 16;
        if (d == s)
            d = (d + 1) % 16;
        deliveries.push_back(
            fabric.inject(i, s, d, 8 + u32(seed % 500)).delivered);
        EXPECT_EQ(fabric.flitsInjected(),
                  fabric.flitsDelivered() + fabric.flitsInFlight());
    }
    // Advance in steps: the invariant holds at every point, and flits
    // retire monotonically.
    std::sort(deliveries.begin(), deliveries.end());
    u64 retired = 0;
    for (size_t i = 0; i < deliveries.size(); i += 20) {
        fabric.advance(deliveries[i]);
        EXPECT_EQ(fabric.flitsInjected(),
                  fabric.flitsDelivered() + fabric.flitsInFlight());
        EXPECT_GE(fabric.flitsDelivered(), retired);
        retired = fabric.flitsDelivered();
    }
    fabric.drain();
    EXPECT_EQ(fabric.flitsInFlight(), 0u);
    EXPECT_EQ(fabric.flitsInjected(), fabric.flitsDelivered());
    EXPECT_GT(fabric.flitsInjected(), 0u);
}

TEST(Fabric, RejectsBadEndpointsAndSelfSend)
{
    Fabric fabric(FabricConfig{shape(2, 2, 1, true)});
    EXPECT_DEATH(
        {
            setLogLevel(LogLevel::Quiet);
            fabric.inject(0, 0, 9, 64);
        },
        "");
    EXPECT_DEATH(
        {
            setLogLevel(LogLevel::Quiet);
            fabric.inject(0, 2, 2, 64);
        },
        "");
    EXPECT_DEATH(
        {
            setLogLevel(LogLevel::Quiet);
            fabric.inject(0, 0, 1, 0);
        },
        "");
}

// --- arch::System on the fabric ---------------------------------------------

TEST(Fabric, SystemConfigChecksWindow)
{
    MultiChipConfig mc;
    arch::SystemConfig sc = mc.systemConfig();
    EXPECT_EQ(sc.check(), "");
    EXPECT_EQ(sc.windowBaseOf(), sc.chip.memBytes() / 2);

    arch::SystemConfig bad = sc;
    bad.windowBase = 12345; // not 128 KB aligned
    EXPECT_NE(bad.check(), "");

    bad = sc;
    bad.windowBase = sc.chip.memBytes() - arch::kRemoteWindowBytes / 2;
    EXPECT_NE(bad.check(), ""); // window exceeds memory

    // A full-size 16 MB chip defaults the window to 8 MB — exactly
    // the remote address bit: the configuration must demand an
    // explicit base below it.
    arch::SystemConfig big;
    big.fabric.net = shape(2, 1, 1, true);
    big.chip.bankBytes = 1024 * 1024; // 16 banks x 1 MB = 16 MB
    EXPECT_NE(big.check(), "");
    big.windowBase = 0x400000;
    EXPECT_EQ(big.check(), "");
}

TEST(Fabric, RemoteWindowEncodingRoundTrips)
{
    for (u32 chip : {0u, 1u, 17u, 63u}) {
        for (PhysAddr off : {0u, 8u, 0x1FFF8u}) {
            const Addr ea = arch::remoteEa(arch::kIgDefault, chip, off);
            EXPECT_TRUE(arch::isRemoteEa(ea));
            EXPECT_EQ(arch::remoteChipOf(ea), chip);
            EXPECT_EQ(arch::remoteOffsetOf(ea), off);
        }
    }
    // Local EAs below the window bit are never remote.
    EXPECT_FALSE(arch::isRemoteEa(arch::igAddr(arch::kIgDefault, 0x7FFF8)));
}

TEST(Fabric, GuestRemoteAccessOutOfRangeThrows)
{
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = mc.dimZ = 1;
    auto runOne = [&](Addr ea) {
        arch::System sys(mc.systemConfig());
        exec::GuestEngine engine(sys.chip(0));
        struct Body
        {
            static exec::GuestTask
            run(exec::GuestCtx &ctx, Addr ea)
            {
                co_await ctx.load(ea);
            }
        };
        engine.spawn(1,
                     [&](exec::GuestCtx &ctx) { return Body::run(ctx, ea); });
        sys.run();
    };
    // Out-of-range destination chip, and a chip addressing itself
    // through the remote window: both are diagnosable guest errors.
    EXPECT_THROW(runOne(arch::remoteEa(arch::kIgDefault, 5, 0)),
                 GuestError);
    EXPECT_THROW(runOne(arch::remoteEa(arch::kIgDefault, 0, 0)),
                 GuestError);
}

TEST(Fabric, ChipIdentitySprs)
{
    MultiChipConfig mc; // 2x2x1 default
    arch::System sys(mc.systemConfig());
    EXPECT_EQ(sys.numChips(), 4u);
    for (u32 c = 0; c < sys.numChips(); ++c) {
        EXPECT_EQ(sys.chip(c).readSpr(0, isa::kSprChipId), c);
        EXPECT_EQ(sys.chip(c).readSpr(0, isa::kSprNumChips), 4u);
    }
}

TEST(Fabric, HaloExchangeVerifiesAndDrains)
{
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 2;
    mc.dimZ = 1;
    mc.words = 16;
    mc.iters = 2;
    const MultiChipResult r = workloads::runHaloExchange(mc);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.messages, 0u);
    EXPECT_EQ(r.flitsInFlight, 0u);
    EXPECT_EQ(r.flitsInjected, r.flitsDelivered);
}

TEST(Fabric, HaloExchangeOnMeshAndDegenerateShapes)
{
    // Mesh edges and 1-wide dimensions drop faces without deadlock;
    // extent-2 torus dimensions send both faces to the same neighbor.
    for (bool torus : {false, true}) {
        for (u32 z : {1u, 2u}) {
            MultiChipConfig mc;
            mc.dimX = 3;
            mc.dimY = 2;
            mc.dimZ = z;
            mc.torus = torus;
            mc.words = 8;
            mc.iters = 1;
            mc.threads = 4;
            const MultiChipResult r = workloads::runHaloExchange(mc);
            EXPECT_TRUE(r.verified)
                << "3x2x" << z << (torus ? " torus" : " mesh");
            EXPECT_EQ(r.flitsInFlight, 0u);
        }
    }
}

TEST(Fabric, DistributedStreamVerifies)
{
    MultiChipConfig mc;
    mc.dimX = 4;
    mc.dimY = 1;
    mc.dimZ = 1;
    mc.words = 32;
    const MultiChipResult r = workloads::runDistributedStream(mc);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.flitsInFlight, 0u);
    // Every chip pulls its slice from the +x neighbor: one request and
    // one response per load batch element.
    EXPECT_EQ(r.messages, u64(2) * 4 * 32);

    // A single chip degenerates to the local path: no fabric traffic.
    MultiChipConfig solo = mc;
    solo.dimX = 1;
    const MultiChipResult rs = workloads::runDistributedStream(solo);
    EXPECT_TRUE(rs.verified);
    EXPECT_EQ(rs.messages, 0u);
}

TEST(Fabric, RemoteLoadZeroLoadLatencyMatchesAnalytic)
{
    // One guest issues one remote load on an otherwise idle system:
    // the end-to-end charge must contain the exact analytic
    // request + response round trip (queueWait == 0 at zero load, so
    // any deviation would shift the run length cycle for cycle).
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = mc.dimZ = 1;
    mc.threads = 1;
    mc.words = 1;

    const arch::SystemConfig sc = mc.systemConfig();
    const Topology topo(sc.fabric.net);
    const Cycle roundTrip =
        topo.uncontendedLatency(0, 1, sc.fabric.reqHeaderBytes) +
        topo.uncontendedLatency(1, 0, sc.fabric.respHeaderBytes + 8);

    auto cyclesWithLoads = [&](u32 loads) {
        arch::System sys(sc);
        exec::GuestEngine engine(sys.chip(0));
        struct Body
        {
            static exec::GuestTask
            run(exec::GuestCtx &ctx, u32 loads)
            {
                for (u32 i = 0; i < loads; ++i)
                    co_await ctx.load(arch::remoteEa(arch::kIgDefault, 1,
                                                     u32(i) * 8));
                co_await ctx.sync();
            }
        };
        engine.spawn(1, [&](exec::GuestCtx &ctx) {
            return Body::run(ctx, loads);
        });
        EXPECT_EQ(sys.run(), arch::RunExit::AllHalted);
        return sys.now();
    };

    // Dependent back-to-back loads: each adds exactly one round trip
    // plus the fixed per-op issue cost, so the difference between a
    // 3-load and a 2-load run isolates the fabric latency.
    const Cycle two = cyclesWithLoads(2);
    const Cycle three = cyclesWithLoads(3);
    EXPECT_GE(three - two, roundTrip);
    EXPECT_LE(three - two, roundTrip + 8); // issue + dependence overhead
}

TEST(Fabric, EpochDefaultsToOneHop)
{
    FabricConfig fc;
    EXPECT_EQ(fc.epoch(), fc.net.routerLatency + fc.net.linkLatency);
    fc.epochCycles = 64;
    EXPECT_EQ(fc.epoch(), 64u);
}
