/**
 * @file
 * Property tests of instruction semantics: every integer ALU, shift,
 * compare, multiply/divide and floating point operation is executed on
 * the simulator with random operands and checked against a host
 * oracle; memory ops round-trip every access size with sign/zero
 * extension; microarchitectural invariants (WAW ordering, outstanding
 * memory cap, FPU round-robin fairness) are exercised directly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/rng.h"
#include "isa/builder.h"
#include "kernel/kernel.h"

using namespace cyclops;
using namespace cyclops::arch;
namespace kernel = cyclops::kernel;
using isa::Opcode;
using isa::ProgramBuilder;

namespace
{

/** Run a two-operand register op on the chip; returns r6. */
u32
runIntOp(Opcode op, u32 a, u32 b)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    builder.li(4, a);
    builder.li(5, b);
    builder.emitR(op, 6, 4, 5);
    builder.halt();
    chip.loadProgram(builder.finish());
    auto unit = std::make_unique<ThreadUnit>(0, chip, 0);
    ThreadUnit *tu = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    EXPECT_EQ(chip.run(10'000), RunExit::AllHalted);
    return tu->reg(6);
}

u32
runImmOp(Opcode op, u32 a, s32 imm)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    builder.li(4, a);
    builder.emitI(op, 6, 4, imm);
    builder.halt();
    chip.loadProgram(builder.finish());
    auto unit = std::make_unique<ThreadUnit>(0, chip, 0);
    ThreadUnit *tu = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    EXPECT_EQ(chip.run(10'000), RunExit::AllHalted);
    return tu->reg(6);
}

struct IntCase
{
    Opcode op;
    std::function<u32(u32, u32)> oracle;
};

const IntCase kIntCases[] = {
    {Opcode::Add, [](u32 a, u32 b) { return a + b; }},
    {Opcode::Sub, [](u32 a, u32 b) { return a - b; }},
    {Opcode::Mul, [](u32 a, u32 b) { return u32(u64(a) * b); }},
    {Opcode::Mulhu, [](u32 a, u32 b) { return u32((u64(a) * b) >> 32); }},
    {Opcode::Divu, [](u32 a, u32 b) { return b ? a / b : ~0u; }},
    {Opcode::Div,
     [](u32 a, u32 b) {
         if (b == 0)
             return ~0u;
         if (a == 0x8000'0000u && b == ~0u)
             return a;
         return u32(s32(a) / s32(b));
     }},
    {Opcode::And, [](u32 a, u32 b) { return a & b; }},
    {Opcode::Or, [](u32 a, u32 b) { return a | b; }},
    {Opcode::Xor, [](u32 a, u32 b) { return a ^ b; }},
    {Opcode::Nor, [](u32 a, u32 b) { return ~(a | b); }},
    {Opcode::Sll, [](u32 a, u32 b) { return a << (b & 31); }},
    {Opcode::Srl, [](u32 a, u32 b) { return a >> (b & 31); }},
    {Opcode::Sra, [](u32 a, u32 b) { return u32(s32(a) >> (b & 31)); }},
    {Opcode::Slt, [](u32 a, u32 b) { return u32(s32(a) < s32(b)); }},
    {Opcode::Sltu, [](u32 a, u32 b) { return u32(a < b); }},
};

} // namespace

class IntSemantics : public ::testing::TestWithParam<size_t>
{
};

TEST_P(IntSemantics, MatchesOracle)
{
    const IntCase &test = kIntCases[GetParam()];
    Rng rng(0x5E11 + GetParam());
    // Random operands plus the classic corner cases.
    const u32 corners[] = {0, 1, ~0u, 0x8000'0000u, 0x7FFF'FFFFu, 31,
                           32, 33};
    for (u32 a : corners)
        for (u32 b : corners)
            EXPECT_EQ(runIntOp(test.op, a, b), test.oracle(a, b))
                << isa::mnemonic(test.op) << " " << a << "," << b;
    for (int trial = 0; trial < 24; ++trial) {
        const u32 a = u32(rng.next());
        const u32 b = u32(rng.next());
        EXPECT_EQ(runIntOp(test.op, a, b), test.oracle(a, b))
            << isa::mnemonic(test.op) << " " << a << "," << b;
    }
}

INSTANTIATE_TEST_SUITE_P(AllIntOps, IntSemantics,
                         ::testing::Range(size_t(0),
                                          std::size(kIntCases)),
                         [](const auto &info) {
                             return std::string(isa::mnemonic(
                                 kIntCases[info.param].op));
                         });

TEST(IntSemantics, Immediates)
{
    EXPECT_EQ(runImmOp(Opcode::Addi, 10, -3), 7u);
    EXPECT_EQ(runImmOp(Opcode::Andi, 0xFF, 0x0F), 0x0Fu);
    EXPECT_EQ(runImmOp(Opcode::Ori, 0xF0, 0x0F), 0xFFu);
    EXPECT_EQ(runImmOp(Opcode::Xori, 0xFF, 0x0F), 0xF0u);
    EXPECT_EQ(runImmOp(Opcode::Slli, 3, 4), 48u);
    EXPECT_EQ(runImmOp(Opcode::Srli, 0x8000'0000u, 31), 1u);
    EXPECT_EQ(runImmOp(Opcode::Srai, 0x8000'0000u, 31), ~0u);
    EXPECT_EQ(runImmOp(Opcode::Slti, u32(-5), -4), 1u);
    EXPECT_EQ(runImmOp(Opcode::Sltiu, 3, 4), 1u);
    // Logical immediates are zero-extended 13-bit fields.
    EXPECT_EQ(runImmOp(Opcode::Andi, ~0u, -1), 0x1FFFu);
}

// ---------------------------------------------------------------------------
// Floating point against the host FPU.
// ---------------------------------------------------------------------------

namespace
{

double
runFpOp(Opcode op, double a, double b)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    const u32 data = builder.allocData(16, 8);
    builder.pokeDouble(data, a);
    builder.pokeDouble(data + 8, b);
    builder.li(4, data);
    builder.ld(8, 0, 4);
    builder.ld(10, 8, 4);
    builder.fmovd(12, 8); // rd also serves as the FMA accumulator
    // Unary ops must encode rb = 0 (canonical operand check).
    builder.emitR(op, 12, 8, meta(op).readsRb ? 10 : 0);
    builder.sd(12, 0, 4);
    builder.sync();
    builder.halt();
    chip.loadProgram(builder.finish());
    chip.setUnit(0, std::make_unique<ThreadUnit>(0, chip, 0));
    chip.activate(0);
    EXPECT_EQ(chip.run(10'000), RunExit::AllHalted);
    double result;
    chip.readPhys(data, &result, 8);
    return result;
}

} // namespace

TEST(FpSemantics, Arithmetic)
{
    Rng rng(0xF10A7);
    for (int trial = 0; trial < 40; ++trial) {
        const double a = rng.uniform(-1e3, 1e3);
        const double b = rng.uniform(-1e3, 1e3);
        EXPECT_EQ(runFpOp(Opcode::Faddd, a, b), a + b);
        EXPECT_EQ(runFpOp(Opcode::Fsubd, a, b), a - b);
        EXPECT_EQ(runFpOp(Opcode::Fmuld, a, b), a * b);
        EXPECT_EQ(runFpOp(Opcode::Fdivd, a, b), a / b);
        // fmadd: rd = ra*rb + rd where rd was preloaded with a.
        EXPECT_EQ(runFpOp(Opcode::Fmadd, a, b), a * b + a);
        EXPECT_EQ(runFpOp(Opcode::Fmsub, a, b), a * b - a);
    }
}

TEST(FpSemantics, Unary)
{
    EXPECT_EQ(runFpOp(Opcode::Fnegd, 2.5, 0), -2.5);
    EXPECT_EQ(runFpOp(Opcode::Fabsd, -2.5, 0), 2.5);
    EXPECT_EQ(runFpOp(Opcode::Fsqrtd, 81.0, 0), 9.0);
}

TEST(FpSemantics, CompareAndConvert)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    const u32 data = builder.allocData(16, 8);
    builder.pokeDouble(data, 1.5);
    builder.pokeDouble(data + 8, -2.5);
    builder.li(4, data);
    builder.ld(8, 0, 4);  // 1.5
    builder.ld(10, 8, 4); // -2.5
    builder.emitR(Opcode::Fclt, 20, 10, 8); // -2.5 < 1.5 -> 1
    builder.emitR(Opcode::Fcle, 21, 8, 10); // 1.5 <= -2.5 -> 0
    builder.emitR(Opcode::Fceq, 22, 8, 8);  // 1.5 == 1.5 -> 1
    builder.emitR(Opcode::Fcvtwd, 23, 10, 0); // trunc(-2.5) = -2
    builder.li(5, u32(-7));
    builder.emitR(Opcode::Fcvtdw, 12, 5, 0);  // (double)-7
    builder.sd(12, 0, 4);
    builder.sync();
    builder.halt();
    chip.loadProgram(builder.finish());
    auto unit = std::make_unique<ThreadUnit>(0, chip, 0);
    ThreadUnit *tu = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    ASSERT_EQ(chip.run(10'000), RunExit::AllHalted);
    EXPECT_EQ(tu->reg(20), 1u);
    EXPECT_EQ(tu->reg(21), 0u);
    EXPECT_EQ(tu->reg(22), 1u);
    EXPECT_EQ(tu->reg(23), u32(-2));
    double converted;
    chip.readPhys(data, &converted, 8);
    EXPECT_EQ(converted, -7.0);
}

// ---------------------------------------------------------------------------
// Memory access sizes and extension.
// ---------------------------------------------------------------------------

TEST(MemSemantics, SizesAndExtension)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    const u32 data = builder.allocData(32, 8);
    builder.pokeWord(data, 0x80FF807Fu);
    builder.li(4, data);
    builder.emitI(Opcode::Lb, 10, 4, 0);  // 0x7F -> 127
    builder.emitI(Opcode::Lb, 11, 4, 1);  // 0x80 -> -128
    builder.emitI(Opcode::Lbu, 12, 4, 1); // 0x80 -> 128
    builder.emitI(Opcode::Lh, 13, 4, 2);  // 0x80FF -> sign extended
    builder.emitI(Opcode::Lhu, 14, 4, 2); // 0x80FF zero extended
    builder.emitI(Opcode::Sh, 14, 4, 8);
    builder.emitI(Opcode::Sb, 12, 4, 12);
    builder.sync();
    builder.halt();
    chip.loadProgram(builder.finish());
    auto unit = std::make_unique<ThreadUnit>(0, chip, 0);
    ThreadUnit *tu = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    ASSERT_EQ(chip.run(10'000), RunExit::AllHalted);
    EXPECT_EQ(tu->reg(10), 0x7Fu);
    EXPECT_EQ(tu->reg(11), u32(-128));
    EXPECT_EQ(tu->reg(12), 128u);
    EXPECT_EQ(tu->reg(13), u32(s32(s16(0x80FF))));
    EXPECT_EQ(tu->reg(14), 0x80FFu);
    EXPECT_EQ(chip.memRead(data + 8, 2, 0), 0x80FFu);
    EXPECT_EQ(chip.memRead(data + 12, 1, 0), 128u);
}

TEST(MemSemantics, IndexedAddressing)
{
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    const u32 data = builder.allocData(64, 8);
    builder.pokeDouble(data + 24, 6.25);
    builder.li(4, data);
    builder.li(5, 24);
    builder.ldx(8, 4, 5);
    builder.li(6, 32);
    builder.sdx(8, 4, 6);
    builder.sync();
    builder.halt();
    chip.loadProgram(builder.finish());
    chip.setUnit(0, std::make_unique<ThreadUnit>(0, chip, 0));
    chip.activate(0);
    ASSERT_EQ(chip.run(10'000), RunExit::AllHalted);
    double copied;
    chip.readPhys(data + 32, &copied, 8);
    EXPECT_EQ(copied, 6.25);
}

// ---------------------------------------------------------------------------
// Microarchitectural invariants.
// ---------------------------------------------------------------------------

TEST(Microarch, OutstandingMemoryCapThrottles)
{
    // With the cap at 1, back-to-back independent loads serialize on
    // the full load latency; with 8, they pipeline at the cache port.
    auto measure = [](u32 cap) {
        ChipConfig cfg;
        cfg.pibEnabled = false;
        cfg.maxOutstandingMem = cap;
        Chip chip(cfg);
        ProgramBuilder builder;
        const u32 data = builder.allocData(64, 64);
        builder.li(4, igAddr(igExactly(0), data));
        builder.lw(5, 0, 4); // warm
        for (int i = 0; i < 16; ++i)
            builder.emitI(Opcode::Lw, u8(20 + i), 4, s32((i % 8) * 4));
        builder.halt();
        chip.loadProgram(builder.finish());
        chip.setUnit(0, std::make_unique<ThreadUnit>(0, chip, 0));
        chip.activate(0);
        chip.run(100'000);
        return chip.now();
    };
    const Cycle throttled = measure(1);
    const Cycle pipelined = measure(8);
    EXPECT_GT(throttled, pipelined + 40);
}

TEST(Microarch, WawOrderingRespected)
{
    // A second write to r6 must not land before the first (slow) one.
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    builder.li(4, 144);
    builder.li(5, 12);
    builder.divu(6, 4, 5); // r6 = 12, ready late
    builder.addi(6, 0, 7); // WAW: must wait, then r6 = 7
    builder.halt();
    chip.loadProgram(builder.finish());
    auto unit = std::make_unique<ThreadUnit>(0, chip, 0);
    ThreadUnit *tu = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    ASSERT_EQ(chip.run(10'000), RunExit::AllHalted);
    EXPECT_EQ(tu->reg(6), 7u);
}

TEST(Microarch, FpuRoundRobinIsFair)
{
    // Four threads of one quad each run the same FMA loop; round-robin
    // arbitration should give them near-identical finish times.
    ChipConfig cfg;
    cfg.pibEnabled = false;
    Chip chip(cfg);
    ProgramBuilder builder;
    builder.li(9, 400);
    auto loop = builder.newLabel();
    builder.bind(loop);
    builder.fmadd(12, 14, 16);
    builder.fmadd(20, 22, 24);
    builder.addi(9, 9, -1);
    builder.bne(9, 0, loop);
    builder.halt();
    chip.loadProgram(builder.finish());
    std::vector<ThreadUnit *> units;
    for (ThreadId tid = 0; tid < 4; ++tid) {
        auto unit = std::make_unique<ThreadUnit>(tid, chip, 0);
        units.push_back(unit.get());
        chip.setUnit(tid, std::move(unit));
        chip.activate(tid);
    }
    ASSERT_EQ(chip.run(1'000'000), RunExit::AllHalted);
    u64 lo = ~0ull, hi = 0;
    for (ThreadUnit *unit : units) {
        lo = std::min(lo, unit->stallCycles());
        hi = std::max(hi, unit->stallCycles());
    }
    // No starvation: the spread of stall time is small relative to it.
    EXPECT_LT(double(hi - lo), 0.1 * double(hi));
}

TEST(Microarch, ReservedThreadsAreUnavailable)
{
    Chip chip;
    auto order =
        kernel::threadOrder(chip, kernel::AllocPolicy::Sequential);
    EXPECT_EQ(order.size(), 126u);
    for (ThreadId tid : order)
        EXPECT_LT(tid, 126u);
    auto balanced =
        kernel::threadOrder(chip, kernel::AllocPolicy::Balanced);
    EXPECT_EQ(balanced.size(), 126u);
    // Balanced: first 32 threads land on 32 distinct quads.
    for (u32 i = 0; i < 32; ++i)
        EXPECT_EQ(balanced[i] / 4, i);
}
