/**
 * @file
 * Profiling-subsystem tests: the guest-visible counter SPR file, the
 * rdcounter pseudo-op, the PC-sampling profiler and its exports, the
 * memory-system heatmap, and the epoch-sampler / empty-trace edge
 * cases fixed alongside them.
 *
 * The central invariants: profiling never changes simulated timing,
 * every profiler output is byte-deterministic (any --jobs, any run),
 * and the heatmap's access matrix sums to the banks' own counters.
 */

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "arch/chip.h"
#include "arch/thread_unit.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"
#include "exec/engine.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/disassembler.h"
#include "workloads/stream.h"

using namespace cyclops;
using namespace cyclops::arch;
using namespace cyclops::workloads;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Run a builder program on @p threads interpreter threads. */
void
runIsa(Chip &chip, const isa::Program &prog, u32 threads)
{
    chip.loadProgram(prog);
    for (ThreadId t = 0; t < threads; ++t) {
        auto unit = std::make_unique<ThreadUnit>(t, chip, prog.entry);
        unit->setReg(4, t);
        chip.setUnit(t, std::move(unit));
        chip.activate(t);
    }
    ASSERT_EQ(chip.run(10'000'000), RunExit::AllHalted);
}

/** A small kernel with loads, stores and FP work in a loop. */
isa::Program
busyProgram(u32 iters)
{
    isa::ProgramBuilder b;
    const u32 buf = b.allocData(4096, 64);
    b.defineSymbol("busy_setup", b.here());
    b.slli(20, 4, 7);
    b.li(10, igAddr(kIgDefault, buf));
    b.add(10, 10, 20);
    b.li(12, s32(iters));
    auto loop = b.newLabel();
    b.bind(loop);
    b.defineSymbol("busy_loop", b.here());
    b.ld(32, 0, 10);
    b.fmuld(34, 32, 32);
    b.sd(34, 8, 10);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    b.halt();
    return b.finish();
}

} // namespace

// ---------------------------------------------------------------------------
// Counter SPR file and the rdcounter pseudo-op
// ---------------------------------------------------------------------------

TEST(Profiler, CounterSprsReadableFromIsaFrontend)
{
    // Each counter is read into a register by the guest itself at the
    // end of the run; the values must match the unit's own statistics.
    isa::ProgramBuilder b;
    const u32 buf = b.allocData(1024, 64);
    b.li(10, igAddr(kIgDefault, buf));
    b.li(12, 50);
    auto loop = b.newLabel();
    b.bind(loop);
    b.lw(5, 0, 10);
    b.sw(5, 4, 10);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    for (u32 k = 0; k < isa::kNumCounterSprs; ++k)
        b.rdcounter(u8(20 + k), u8(k));
    b.halt();

    Chip chip;
    runIsa(chip, b.finish(), 1);
    const auto *u = static_cast<const ThreadUnit *>(chip.unit(0));
    // The guest read each counter before the later ones (and before
    // halt), so the register snapshots are lower bounds that must not
    // exceed the final statistics.
    const u32 cycles = u->reg(20), instret = u->reg(21);
    const u32 dhit = u->reg(22), dmiss = u->reg(23);
    EXPECT_GT(cycles, 0u);
    EXPECT_LE(cycles, u32(u->chargedCycles()));
    EXPECT_GT(instret, 0u);
    EXPECT_LE(instret, u32(u->instructions()));
    EXPECT_GT(dhit + dmiss, 0u);
    EXPECT_LE(dhit, u32(u->dcacheHits()));
    EXPECT_LE(dmiss, u32(u->dcacheMisses()));
    // This single-threaded integer kernel never arbitrates for the
    // FPU or waits at a barrier.
    EXPECT_EQ(u->reg(26), 0u);
    EXPECT_EQ(u->reg(27), 0u);
}

TEST(Profiler, UnknownSprReadsZeroIsaFrontend)
{
    // SPRs 6 and 7 identify the chip in a multi-chip system (a
    // standalone chip is chip 0 of 1); reserved numbers past the
    // counter file read as zero — the documented defined path.
    isa::ProgramBuilder b;
    b.li(20, 0xdead);
    b.li(21, 0xdead);
    b.li(22, 0xdead);
    b.mfspr(20, isa::kSprChipId);
    b.mfspr(21, isa::kSprNumChips);
    b.mfspr(22, 100);
    b.rdcounter(23, 1); // a valid read right next to the reserved ones
    b.halt();

    Chip chip;
    runIsa(chip, b.finish(), 1);
    const auto *u = static_cast<const ThreadUnit *>(chip.unit(0));
    EXPECT_EQ(u->reg(20), 0u);
    EXPECT_EQ(u->reg(21), 1u);
    EXPECT_EQ(u->reg(22), 0u);
    EXPECT_GT(u->reg(23), 0u); // instret
}

TEST(Profiler, CounterSprsReadableFromExecFrontend)
{
    // The exec frontend has no fetch stream, but the SPR decode is
    // shared: readSpr must serve the counter file from GuestUnits too.
    Chip chip;
    exec::GuestEngine engine(chip);
    const Addr ea = igAddr(kIgDefault, engine.heap().alloc(1024, 64));
    struct Body
    {
        static exec::GuestTask
        run(exec::GuestCtx &ctx, Addr ea)
        {
            for (u32 i = 0; i < 32; ++i)
                co_await ctx.load(ea + 8 * (i % 16), 8);
            co_await ctx.alu(5);
        }
    };
    engine.spawn(2, [&](exec::GuestCtx &ctx) {
        return Body::run(ctx, ea);
    });
    ASSERT_EQ(engine.run(1'000'000), RunExit::AllHalted);

    EXPECT_GT(chip.readSpr(0, isa::kSprCntCycles), 0u);
    EXPECT_GT(chip.readSpr(0, isa::kSprCntInstret), 0u);
    EXPECT_EQ(chip.readSpr(0, isa::kSprCntDcacheHit) +
                  chip.readSpr(0, isa::kSprCntDcacheMiss),
              32u);
    // Chip-identity SPRs (standalone chip: id 0 of 1) and reserved
    // numbers decode here as well.
    EXPECT_EQ(chip.readSpr(0, isa::kSprChipId), 0u);
    EXPECT_EQ(chip.readSpr(0, isa::kSprNumChips), 1u);
    EXPECT_EQ(chip.readSpr(0, 1000), 0u);
    // A thread with no unit installed reads zero from every counter.
    EXPECT_EQ(chip.readSpr(100, isa::kSprCntInstret), 0u);
}

TEST(Profiler, RdcounterAssemblesAndRoundTrips)
{
    const isa::AsmResult byName = isa::assemble(
        "start:\n"
        "  rdcounter r3, cycles\n"
        "  rdcounter r4, dmiss\n"
        "  halt\n");
    ASSERT_TRUE(byName.ok) << byName.error;
    const isa::AsmResult byIndex = isa::assemble(
        "start:\n"
        "  rdcounter r3, 0\n"
        "  rdcounter r4, 3\n"
        "  halt\n");
    ASSERT_TRUE(byIndex.ok) << byIndex.error;
    EXPECT_EQ(byName.program.text, byIndex.program.text);

    // The disassembler prints the named pseudo-op form, which must
    // reassemble to the identical encoding.
    EXPECT_EQ(isa::disassembleWord(byName.program.text[0]),
              "rdcounter r3, cycles");
    EXPECT_EQ(isa::disassembleWord(byName.program.text[1]),
              "rdcounter r4, dmiss");

    // Unknown counter names and out-of-range indices are errors.
    EXPECT_FALSE(isa::assemble("rdcounter r3, bogus\n").ok);
    EXPECT_FALSE(isa::assemble("rdcounter r3, 8\n").ok);
}

TEST(Profiler, CounterNameTable)
{
    EXPECT_STREQ(isa::counterName(isa::kSprCntCycles), "cycles");
    EXPECT_STREQ(isa::counterName(isa::kSprCntBarrier), "barrier");
    unsigned spr = 0;
    EXPECT_TRUE(isa::counterFromName("imiss", &spr));
    EXPECT_EQ(spr, unsigned(isa::kSprCntIcacheMiss));
    EXPECT_FALSE(isa::counterFromName("nope", &spr));
}

// ---------------------------------------------------------------------------
// PC-sampling profiler
// ---------------------------------------------------------------------------

TEST(Profiler, SamplesLandInTheHotLoop)
{
    ChipConfig cfg;
    cfg.obs.profInterval = 16;
    Chip chip(cfg);
    runIsa(chip, busyProgram(400), 2);

    const Profiler &prof = chip.profiler();
    ASSERT_TRUE(prof.enabled());
    EXPECT_GT(prof.totalSamples(), 0u);
    // Nearly all time is the loop; the sample count tracks the run
    // length (every interval boundary while units are live samples
    // every live unit exactly once, weighted across fast-forwards).
    EXPECT_GE(prof.totalSamples(), u64(chip.now()) / 16 / 2);
}

TEST(Profiler, ProfilingDoesNotChangeTiming)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Add;
    cfg.threads = 8;
    cfg.elementsPerThread = 120;

    const StreamResult plain = runStream(cfg, ChipConfig{});
    ChipConfig profiled;
    profiled.obs.profInterval = 32;
    const StreamResult prof = runStream(cfg, profiled);

    EXPECT_EQ(plain.iterationCycles, prof.iterationCycles);
    EXPECT_EQ(plain.simCycles, prof.simCycles);
    EXPECT_EQ(plain.instructions, prof.instructions);
    for (u32 c = 0; c <= kNumCycleCats; ++c)
        EXPECT_EQ(plain.attr.value(c), prof.attr.value(c))
            << kCycleCatNames[c];
}

TEST(Profiler, StreamProfileTopSymbolIsKernelLoop)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 4;
    cfg.elementsPerThread = 256;
    ChipConfig chipCfg;
    chipCfg.obs.profInterval = 64;
    chipCfg.obs.profOut = tempPath("prof_stream_a.json");
    const StreamResult result = runStream(cfg, chipCfg);
    EXPECT_TRUE(result.verified);

    const std::string json = slurp(chipCfg.obs.profOut);
    // The report is sorted hottest-first: the triad inner loop must
    // lead it (the acceptance criterion for the whole profiler).
    const size_t symbols = json.find("\"symbols\": [");
    ASSERT_NE(symbols, std::string::npos);
    const size_t first = json.find("\"symbol\": \"", symbols);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(json.substr(first, 36).find("triad_kernel"), 11u)
        << json.substr(first, 64);

    const std::string folded =
        slurp(chipCfg.obs.profOut + ".folded");
    EXPECT_NE(folded.find(";triad_kernel "), std::string::npos);
    EXPECT_EQ(folded.rfind("tu", 0), 0u);

    // Byte-determinism: an identical run writes identical files.
    ChipConfig again = chipCfg;
    again.obs.profOut = tempPath("prof_stream_b.json");
    runStream(cfg, again);
    EXPECT_EQ(json, slurp(again.obs.profOut));
    EXPECT_EQ(folded, slurp(again.obs.profOut + ".folded"));
    EXPECT_EQ(slurp(chipCfg.obs.profOut + ".heatmap.csv"),
              slurp(again.obs.profOut + ".heatmap.csv"));
}

// The TSan preset runs every Profiler test: this one drives per-chip
// profilers from SimPool worker threads, where shared profiler state
// would race, and asserts outputs are identical at any --jobs.
TEST(Profiler, OutputsIdenticalAcrossJobs)
{
    const std::vector<u32> sizes = {64, 96, 128, 160};
    auto run = [&](u32 size) {
        StreamConfig cfg;
        cfg.kernel = StreamKernel::Copy;
        cfg.threads = 4;
        cfg.elementsPerThread = size;
        ChipConfig chipCfg;
        chipCfg.obs.profInterval = 32;
        chipCfg.obs.tag = strprintf("e%u", size);
        chipCfg.obs.profOut = tempPath("prof_sweep_%t.json");
        return runStream(cfg, chipCfg);
    };
    (void)parallelSweep(sizes, 1, run);
    std::vector<std::string> serial;
    for (u32 size : sizes)
        serial.push_back(
            slurp(tempPath(strprintf("prof_sweep_e%u.json", size))) +
            slurp(tempPath(
                strprintf("prof_sweep_e%u.json.folded", size))) +
            slurp(tempPath(
                strprintf("prof_sweep_e%u.json.heatmap.csv", size))));
    (void)parallelSweep(sizes, 4, run);
    for (size_t i = 0; i < sizes.size(); ++i) {
        const std::string parallel =
            slurp(tempPath(
                strprintf("prof_sweep_e%u.json", sizes[i]))) +
            slurp(tempPath(
                strprintf("prof_sweep_e%u.json.folded", sizes[i]))) +
            slurp(tempPath(
                strprintf("prof_sweep_e%u.json.heatmap.csv", sizes[i])));
        EXPECT_EQ(serial[i], parallel) << "size " << sizes[i];
    }
}

// ---------------------------------------------------------------------------
// Memory-system heatmap
// ---------------------------------------------------------------------------

TEST(Profiler, HeatmapColumnsSumToBankAccesses)
{
    ChipConfig cfg;
    cfg.obs.profInterval = 64; // enables the heatmap with the profiler
    Chip chip(cfg);
    runIsa(chip, busyProgram(300), 4);

    const MemSystem &ms = chip.memsys();
    ASSERT_TRUE(ms.heatmapEnabled());
    const auto &access = ms.heatAccess();
    const auto &conflict = ms.heatConflict();
    const u32 caches = cfg.numCaches();
    ASSERT_EQ(access.size(), size_t(caches) * cfg.numBanks);

    u64 matrixTotal = 0;
    for (BankId bank = 0; bank < cfg.numBanks; ++bank) {
        u64 col = 0;
        for (u32 q = 0; q < caches; ++q) {
            col += access[size_t(q) * cfg.numBanks + bank];
            EXPECT_LE(conflict[size_t(q) * cfg.numBanks + bank],
                      access[size_t(q) * cfg.numBanks + bank]);
        }
        // Every bank reservation flows through the heatmap: the
        // matrix column equals the bank's own access counter.
        EXPECT_EQ(col, ms.bank(bank).accesses()) << "bank " << bank;
        matrixTotal += col;
    }
    EXPECT_GT(matrixTotal, 0u);

    // Interest-group breakdown: this program uses only the default
    // (All) class, and scratch-free lookups split into hits+misses.
    const u64 *acc = ms.igAccesses();
    const u64 *hit = ms.igHits();
    const u64 *miss = ms.igMisses();
    for (u32 c = 0; c < MemSystem::kNumIgClasses; ++c) {
        EXPECT_EQ(acc[c], hit[c] + miss[c]) << "class " << c;
        if (c != u32(IgClass::All)) {
            EXPECT_EQ(acc[c], 0u) << "class " << c;
        }
    }
    EXPECT_GT(acc[u32(IgClass::All)], 0u);
}

TEST(Profiler, HeatmapOffByDefault)
{
    Chip chip;
    runIsa(chip, busyProgram(50), 1);
    EXPECT_FALSE(chip.memsys().heatmapEnabled());
    EXPECT_FALSE(chip.profiler().enabled());
    EXPECT_TRUE(chip.memsys().heatAccess().empty());
}

// ---------------------------------------------------------------------------
// STREAM guest-side counter table
// ---------------------------------------------------------------------------

TEST(Profiler, StreamCounterTableSplitsSetupFromKernel)
{
    StreamConfig cfg;
    cfg.kernel = StreamKernel::Triad;
    cfg.threads = 4;
    cfg.elementsPerThread = 128;
    cfg.counterTable = true;
    const StreamResult result = runStream(cfg, ChipConfig{});
    EXPECT_TRUE(result.verified);

    constexpr u32 kCycles = 0, kInstret = 1, kDhit = 2, kDmiss = 3;
    // The kernel region dominates: it runs 4 iterations over every
    // element while setup is a dozen instructions.
    EXPECT_GT(result.kernelCounters[kInstret],
              10 * result.setupCounters[kInstret]);
    EXPECT_GT(result.kernelCounters[kCycles], 0u);
    EXPECT_GT(result.kernelCounters[kDhit] +
                  result.kernelCounters[kDmiss],
              0u);

    ASSERT_FALSE(result.counterTable.empty());
    EXPECT_NE(result.counterTable.find("counter"), std::string::npos);
    EXPECT_NE(result.counterTable.find("cycles"), std::string::npos);
    EXPECT_NE(result.counterTable.find("kernel"), std::string::npos);

    // The instrumentation runs outside the timed loop, so the
    // measured steady-state iteration stays essentially unchanged
    // (the snapshot code does shift every thread's phase against the
    // round-robin arbiters, which may move timing by a few cycles).
    StreamConfig bare = cfg;
    bare.counterTable = false;
    const StreamResult plain = runStream(bare, ChipConfig{});
    EXPECT_NEAR(double(plain.iterationCycles),
                double(result.iterationCycles),
                0.01 * double(plain.iterationCycles));
    EXPECT_TRUE(plain.counterTable.empty());
}

// ---------------------------------------------------------------------------
// Epoch sampler edge cases (satellite)
// ---------------------------------------------------------------------------

TEST(Profiler, EpochSamplerIntervalLongerThanRun)
{
    Counter work;
    StatGroup stats;
    stats.addCounter("work", &work);
    EpochSampler sampler;
    sampler.configure(&stats, 1000);
    work += 3;
    sampler.maybeSample(211); // no boundary crossed
    EXPECT_EQ(sampler.rows(), 0u);
    sampler.finalize(211);
    ASSERT_EQ(sampler.rows(), 1u); // final epoch flushed...
    EXPECT_EQ(sampler.sampleCycles()[0], 211u);
    EXPECT_EQ(sampler.value(0, 0), 3u);
    sampler.finalize(211);
    EXPECT_EQ(sampler.rows(), 1u); // ...exactly once
}

TEST(Profiler, EpochSamplerEndExactlyOnBoundary)
{
    Counter work;
    StatGroup stats;
    stats.addCounter("work", &work);
    EpochSampler sampler;
    sampler.configure(&stats, 100);
    sampler.maybeSample(200);
    ASSERT_EQ(sampler.rows(), 2u);
    sampler.finalize(200); // boundary row already covers the end
    EXPECT_EQ(sampler.rows(), 2u);
    EXPECT_EQ(sampler.sampleCycles().back(), 200u);
}

TEST(Profiler, EpochSamplerZeroLengthRun)
{
    Counter work;
    StatGroup stats;
    stats.addCounter("work", &work);
    EpochSampler sampler;
    sampler.configure(&stats, 100);
    sampler.finalize(0);
    ASSERT_EQ(sampler.rows(), 1u);
    EXPECT_EQ(sampler.sampleCycles()[0], 0u);
    sampler.finalize(0);
    EXPECT_EQ(sampler.rows(), 1u);
}

TEST(Profiler, EpochSamplerFinalRowSurvivesRowCap)
{
    Counter work;
    StatGroup stats;
    stats.addCounter("work", &work);
    EpochSampler sampler;
    sampler.configure(&stats, 1);
    sampler.maybeSample(EpochSampler::kMaxRows + 10);
    EXPECT_EQ(sampler.rows(), EpochSampler::kMaxRows);
    EXPECT_EQ(sampler.droppedRows(), 10u);
    work += 7;
    sampler.finalize(EpochSampler::kMaxRows + 20);
    // The end-of-run row is forced past the cap so a capped series
    // still ends with the final totals — and only one such row.
    ASSERT_EQ(sampler.rows(), EpochSampler::kMaxRows + 1);
    EXPECT_EQ(sampler.sampleCycles().back(),
              Cycle(EpochSampler::kMaxRows + 20));
    EXPECT_EQ(sampler.value(sampler.rows() - 1, 0), 7u);
    sampler.finalize(EpochSampler::kMaxRows + 20);
    EXPECT_EQ(sampler.rows(), EpochSampler::kMaxRows + 1);
}

// ---------------------------------------------------------------------------
// Empty-trace export (satellite)
// ---------------------------------------------------------------------------

TEST(Profiler, EmptyTracerExportsValidChromeJson)
{
    // A tracer that recorded nothing must still write valid Chrome
    // trace JSON (metadata only) — Perfetto accepts it and so does
    // tools/check_trace.py.
    Tracer tracer;
    tracer.configure(kTraceAll, 256);
    ASSERT_TRUE(tracer.enabled());
    EXPECT_EQ(tracer.size(), 0u);
    const std::string path = tempPath("prof_empty_trace.json");
    tracer.writeChromeJson(path, 4);

    const std::string json = slurp(path);
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_EQ(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
    // Structurally closed: the object ends with its closing brace.
    EXPECT_NE(json.find("}\n"), std::string::npos);
}
