/**
 * @file
 * Unit tests for the cycle engine's wheel-bitmap fast-forward (idle
 * gaps inside and beyond the wheel window, wrap-around, far-queue
 * interaction) and for the memory switch's bank routing before and
 * after bank failures (power-of-two shift/mask fast path vs. the
 * remapped modulo slow path).
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/chip.h"

using namespace cyclops;
using namespace cyclops::arch;

namespace
{

/**
 * A unit that wakes at a fixed list of absolute cycles, recording the
 * cycle of every tick it receives, then halts.
 */
class WakeListUnit : public Unit
{
  public:
    WakeListUnit(ThreadId tid, std::vector<Cycle> wakes)
        : Unit(tid), wakes_(std::move(wakes))
    {
    }

    Cycle
    tick(Cycle now) override
    {
        ticks.push_back(now);
        if (next_ >= wakes_.size()) {
            markHalted();
            return kCycleNever;
        }
        return wakes_[next_++];
    }

    std::vector<Cycle> ticks;

  private:
    std::vector<Cycle> wakes_;
    size_t next_ = 0;
};

ChipConfig
smallConfig()
{
    ChipConfig cfg;
    return cfg;
}

} // namespace

TEST(CycleEngine, FastForwardSkipsIdleGapInsideWheel)
{
    Chip chip(smallConfig());
    // Wake at 1 (activation), then 100, then 900, then halt.
    auto unit = std::make_unique<WakeListUnit>(
        0, std::vector<Cycle>{100, 900});
    WakeListUnit *raw = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    EXPECT_EQ(chip.run(), RunExit::AllHalted);

    ASSERT_EQ(raw->ticks.size(), 3u);
    EXPECT_EQ(raw->ticks[0], 1u);
    EXPECT_EQ(raw->ticks[1], 100u);
    EXPECT_EQ(raw->ticks[2], 900u);
    EXPECT_EQ(chip.now(), 901u); // one cycle past the final tick
    // Idle gaps are skipped, not stepped: the cycle counter counts
    // the fast-forward jumps plus the three busy cycles.
    EXPECT_EQ(chip.stats().counterValue("chip.cycles"), 901u);
}

TEST(CycleEngine, FastForwardBeyondWheelUsesFarQueue)
{
    // Next event far beyond the 1024-slot wheel: the far queue feeds
    // the fast-forward and the engine lands exactly on the wake cycle.
    Chip chip(smallConfig());
    auto unit = std::make_unique<WakeListUnit>(
        0, std::vector<Cycle>{5000, 5001, 123456});
    WakeListUnit *raw = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    EXPECT_EQ(chip.run(), RunExit::AllHalted);

    ASSERT_EQ(raw->ticks.size(), 4u);
    EXPECT_EQ(raw->ticks[0], 1u);
    EXPECT_EQ(raw->ticks[1], 5000u);
    EXPECT_EQ(raw->ticks[2], 5001u);
    EXPECT_EQ(raw->ticks[3], 123456u);
    EXPECT_EQ(chip.now(), 123457u);
}

TEST(CycleEngine, WheelWrapAround)
{
    // Schedule wakes that straddle multiples of the 1024-cycle wheel
    // so occupied slots wrap below the current slot index. Deltas are
    // all < 1024, so every event lives in the wheel, never the far
    // queue.
    Chip chip(smallConfig());
    std::vector<Cycle> wakes;
    Cycle c = 1;
    for (int i = 0; i < 40; ++i) {
        c += 1000; // just under the wheel size: wraps every round
        wakes.push_back(c);
    }
    auto unit = std::make_unique<WakeListUnit>(0, wakes);
    WakeListUnit *raw = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    EXPECT_EQ(chip.run(), RunExit::AllHalted);

    ASSERT_EQ(raw->ticks.size(), wakes.size() + 1);
    EXPECT_EQ(raw->ticks[0], 1u);
    for (size_t i = 0; i < wakes.size(); ++i)
        EXPECT_EQ(raw->ticks[i + 1], wakes[i]);
}

TEST(CycleEngine, WheelAndFarQueueInterleave)
{
    // One near unit (wheel) and one far unit (heap): both must be
    // served at their exact cycles regardless of which queue holds
    // them.
    Chip chip(smallConfig());
    auto near = std::make_unique<WakeListUnit>(
        0, std::vector<Cycle>{50, 60, 70});
    auto far = std::make_unique<WakeListUnit>(
        4, std::vector<Cycle>{2000, 2048});
    WakeListUnit *rawNear = near.get();
    WakeListUnit *rawFar = far.get();
    chip.setUnit(0, std::move(near));
    chip.setUnit(4, std::move(far));
    chip.activate(0);
    chip.activate(4);
    EXPECT_EQ(chip.run(), RunExit::AllHalted);

    EXPECT_EQ(rawNear->ticks,
              (std::vector<Cycle>{1, 50, 60, 70}));
    EXPECT_EQ(rawFar->ticks, (std::vector<Cycle>{1, 2000, 2048}));
    EXPECT_EQ(chip.now(), 2049u);
}

TEST(CycleEngine, CycleLimitStopsAndResumes)
{
    Chip chip(smallConfig());
    auto unit = std::make_unique<WakeListUnit>(
        0, std::vector<Cycle>{10000});
    WakeListUnit *raw = unit.get();
    chip.setUnit(0, std::move(unit));
    chip.activate(0);
    EXPECT_EQ(chip.run(100), RunExit::CycleLimit);
    EXPECT_GE(chip.now(), 100u);
    EXPECT_LE(chip.now(), 10000u); // fast-forward may land on the wake
    EXPECT_EQ(chip.run(), RunExit::AllHalted);
    ASSERT_EQ(raw->ticks.size(), 2u);
    EXPECT_EQ(raw->ticks[1], 10000u);
}

// ---------------------------------------------------------------------------
// Bank routing: pow2 fast path vs. remapped slow path.
// ---------------------------------------------------------------------------

namespace
{

/** Reference interleave: explicit div/mod over the operational list. */
std::pair<BankId, PhysAddr>
referenceRoute(PhysAddr addr, u32 lineBytes,
               const std::vector<BankId> &avail)
{
    const u32 lineIdx = addr / lineBytes;
    const u32 numAvail = u32(avail.size());
    const BankId bank = avail[lineIdx % numAvail];
    const PhysAddr bankAddr =
        (lineIdx / numAvail) * lineBytes + (addr % lineBytes);
    return {bank, bankAddr};
}

} // namespace

TEST(BankRouting, Pow2FastPathMatchesReference)
{
    Chip chip(smallConfig());
    const u32 lineBytes = chip.config().dcacheLineBytes;
    std::vector<BankId> avail;
    for (BankId b = 0; b < chip.config().numBanks; ++b)
        avail.push_back(b);

    for (PhysAddr addr = 0; addr < 512 * 1024; addr += 4093) {
        const auto got = chip.memsys().routeInfo(addr);
        const auto want = referenceRoute(addr, lineBytes, avail);
        EXPECT_EQ(got.first, want.first) << "addr " << addr;
        EXPECT_EQ(got.second, want.second) << "addr " << addr;
    }
}

TEST(BankRouting, FailedBankTakesRemappedSlowPath)
{
    Chip chip(smallConfig());
    const u32 lineBytes = chip.config().dcacheLineBytes;
    chip.failBank(3); // 15 banks: not a power of two
    std::vector<BankId> avail;
    for (BankId b = 0; b < chip.config().numBanks; ++b)
        if (b != 3)
            avail.push_back(b);
    ASSERT_EQ(avail.size(), 15u);

    for (PhysAddr addr = 0; addr < 512 * 1024; addr += 4093) {
        const auto got = chip.memsys().routeInfo(addr);
        const auto want = referenceRoute(addr, lineBytes, avail);
        EXPECT_EQ(got.first, want.first) << "addr " << addr;
        EXPECT_EQ(got.second, want.second) << "addr " << addr;
        EXPECT_NE(got.first, 3u); // never the failed bank
    }
}

TEST(BankRouting, Pow2SubsetAfterFailuresAgrees)
{
    // Fail down to 8 banks: the fast path re-engages on the remapped
    // list and must still agree with the reference interleave.
    Chip chip(smallConfig());
    const u32 lineBytes = chip.config().dcacheLineBytes;
    std::vector<BankId> avail;
    for (BankId b = 0; b < chip.config().numBanks; ++b)
        avail.push_back(b);
    for (BankId b : {1u, 3u, 6u, 7u, 10u, 12u, 13u, 15u}) {
        chip.failBank(b);
        std::erase(avail, b);
    }
    ASSERT_EQ(avail.size(), 8u);
    EXPECT_EQ(chip.memsys().availableMemBytes(),
              8 * chip.config().bankBytes);

    for (PhysAddr addr = 0; addr < chip.memsys().availableMemBytes();
         addr += 2039) {
        const auto got = chip.memsys().routeInfo(addr);
        const auto want = referenceRoute(addr, lineBytes, avail);
        EXPECT_EQ(got.first, want.first) << "addr " << addr;
        EXPECT_EQ(got.second, want.second) << "addr " << addr;
        EXPECT_LT(got.second, chip.config().bankBytes);
    }
}
