/**
 * @file
 * Fabric observability tests (DESIGN.md section 17): per-link
 * telemetry conservation, the packet-latency split, histogram JSON
 * export corner cases, epoch sampling at full per-link cardinality,
 * and the determinism bar — enabling any of it must not move a
 * simulated cycle.
 */

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "common/log.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "net/fabric.h"
#include "workloads/multichip.h"

using namespace cyclops;
using namespace cyclops::net;
using workloads::MultiChipConfig;
using workloads::MultiChipResult;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

NetConfig
shape(u32 x, u32 y, u32 z, bool torus)
{
    NetConfig net;
    net.dimX = x;
    net.dimY = y;
    net.dimZ = z;
    net.torus = torus;
    return net;
}

/**
 * Drive @p n random messages through @p fabric and drain it. The
 * fabric is passed in (not returned): its gauges capture `this`, so a
 * Fabric must never be moved.
 */
void
drive(Fabric &fabric, u32 n)
{
    const NetConfig &net = fabric.config().net;
    u64 seed = 0x452821E638D01377ull;
    for (u32 i = 0; i < n; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const u32 s = u32(seed >> 33) % net.numChips();
        u32 d = u32(seed >> 13) % net.numChips();
        if (d == s)
            d = (d + 1) % net.numChips();
        fabric.inject(i / 2, s, d, 8 + u32(seed % 500));
    }
    fabric.drain();
}

/** Render a StatGroup through writeStatsJson and return the text. */
std::string
statsJsonOf(const StatGroup &stats, Cycle cycles,
            const EpochSampler *sampler = nullptr)
{
    const std::string path = tempPath("fabric_obs_stats.json");
    std::FILE *f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    writeStatsJson(f, stats, cycles, sampler);
    std::fclose(f);
    return slurp(path);
}

} // namespace

// ---------------------------------------------------------------------------
// Per-link telemetry conservation
// ---------------------------------------------------------------------------

TEST(FabricObs, PerLinkCountersTieToGlobals)
{
    const NetConfig net = shape(2, 2, 2, true);
    Fabric fabric(FabricConfig{net});
    drive(fabric, 300);

    // Every flit of a (src, dst) message crosses every link of its DOR
    // route, so summing link flits reproduces pair flits x hops; link
    // stalls sum to the global queueCycles; busy == flits (one flit
    // per cycle per link).
    u64 linkFlits = 0, linkStalls = 0;
    u32 existing = 0;
    for (const Fabric::Link &l : fabric.links()) {
        if (!l.exists) {
            EXPECT_EQ(l.flits.value(), 0u);
            continue;
        }
        ++existing;
        EXPECT_EQ(l.busyCycles.value(), l.flits.value())
            << l.src << "->" << l.dst;
        linkFlits += l.flits.value();
        linkStalls += l.stallCycles.value();
    }
    EXPECT_EQ(existing, fabric.numLinks());
    // 8 chips x 3 plus-direction links: on an extent-2 torus the
    // minus wire duplicates the plus wire and is not registered.
    EXPECT_EQ(fabric.numLinks(), 24u);

    u64 pairFlitHops = 0, pairFlits = 0, pairMsgs = 0, pairBytes = 0;
    for (u32 s = 0; s < net.numChips(); ++s) {
        for (u32 d = 0; d < net.numChips(); ++d) {
            if (s == d)
                continue;
            pairFlitHops += fabric.pairFlits(s, d) *
                            fabric.topology().hops(s, d);
            pairFlits += fabric.pairFlits(s, d);
            pairMsgs += fabric.pairMessages(s, d);
            pairBytes += fabric.pairBytes(s, d);
        }
    }
    EXPECT_EQ(linkFlits, pairFlitHops);
    EXPECT_EQ(pairFlits, fabric.flitsInjected());
    EXPECT_EQ(pairMsgs, fabric.messages());
    EXPECT_EQ(pairBytes, fabric.bytesMoved());
    EXPECT_EQ(linkStalls, fabric.queueCycles());
    EXPECT_GT(linkStalls, 0u) << "traffic never contended";
}

TEST(FabricObs, LatencySplitIsExact)
{
    Fabric fabric(FabricConfig{shape(4, 2, 1, false)});
    drive(fabric, 200);
    const Histogram &total = fabric.latencyTotal();
    const Histogram &queue = fabric.latencyQueue();
    const Histogram &wire = fabric.latencyWire();
    // One sample per message in each histogram, and the queue/wire
    // decomposition of every message's latency sums exactly.
    EXPECT_EQ(total.samples(), fabric.messages());
    EXPECT_EQ(queue.samples(), fabric.messages());
    EXPECT_EQ(wire.samples(), fabric.messages());
    EXPECT_EQ(total.sum(), queue.sum() + wire.sum());
    EXPECT_GT(wire.sum(), 0u);
}

TEST(FabricObs, StatsRegistryNamesMatchLinkRecords)
{
    Fabric fabric(FabricConfig{shape(2, 2, 1, true)});
    drive(fabric, 100);
    StatGroup &stats = fabric.stats();
    EXPECT_EQ(stats.counterValue("fabric.flitsInFlight"), 0u);
    EXPECT_EQ(stats.counterValue("fabric.flitsInjected"),
              fabric.flitsInjected());
    EXPECT_EQ(stats.counterValue("fabric.flitsDelivered"),
              fabric.flitsInjected());
    for (const Fabric::Link &l : fabric.links()) {
        if (!l.exists)
            continue;
        const std::string base =
            strprintf("fabric.link.%u->%u", l.src, l.dst);
        EXPECT_EQ(stats.counterValue(base + ".flits"), l.flits.value());
        EXPECT_EQ(stats.counterValue(base + ".stallCycles"),
                  l.stallCycles.value());
        EXPECT_EQ(stats.counterValue(base + ".occPeak"), l.occPeak);
        // Drained fabric: no backlog left anywhere.
        EXPECT_EQ(stats.counterValue(base + ".occupancy"), 0u);
    }
    // 2x2x1 torus: 4 chips x 2 plus-direction links (extent-2 minus
    // wires are unregistered), each with 4 counters + 2 gauges, plus
    // the 12 fabric-wide scalars (6 traffic + 6 fault/retry).
    EXPECT_EQ(fabric.numLinks(), 8u);
    EXPECT_EQ(stats.scalarNames().size(), 12u + 8u * 6u);
}

TEST(FabricObs, OccupancyGaugeTracksBacklog)
{
    // Saturate one path: while messages are queued behind each other
    // the source link's occupancy gauge reads the backlog, and drain()
    // returns every gauge to zero.
    Fabric fabric(FabricConfig{shape(2, 1, 1, true)});
    for (u32 i = 0; i < 16; ++i)
        fabric.inject(0, 0, 1, 256);
    u64 backlog = 0;
    for (const auto &[name, value] : fabric.stats().counters())
        if (name.find(".occupancy") != std::string::npos)
            backlog += value;
    EXPECT_GT(backlog, 0u);
    fabric.drain();
    for (const auto &[name, value] : fabric.stats().counters()) {
        if (name.find(".occupancy") != std::string::npos) {
            EXPECT_EQ(value, 0u) << name;
        }
    }
    // The peak gauge keeps the high-water mark after the drain.
    u64 peak = 0;
    for (const Fabric::Link &l : fabric.links())
        peak = std::max(peak, l.occPeak);
    EXPECT_GT(peak, 0u);
}

// ---------------------------------------------------------------------------
// Histogram JSON/CSV export corner cases
// ---------------------------------------------------------------------------

TEST(FabricObs, HistogramJsonEmpty)
{
    Histogram h;
    StatGroup stats;
    stats.addHistogram("lat", &h);
    const std::string json = statsJsonOf(stats, 0);
    EXPECT_NE(json.find("\"lat\": {\"n\": 0, \"sum\": 0, \"max\": 0, "
                        "\"buckets\": [0, 0"),
              std::string::npos)
        << json;
}

TEST(FabricObs, HistogramJsonSingleBucket)
{
    Histogram h;
    h.sample(4);
    h.sample(5);
    h.sample(7); // all land in bucket 2: [4, 8)
    StatGroup stats;
    stats.addHistogram("lat", &h);
    const std::string json = statsJsonOf(stats, 10);
    EXPECT_NE(json.find("\"n\": 3, \"sum\": 16, \"max\": 7"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"buckets\": [0, 0, 3, 0"), std::string::npos)
        << json;
}

TEST(FabricObs, HistogramJsonOverflowBucket)
{
    Histogram h;
    h.sample(u64(1) << 40); // far beyond bucket 23: clamps, not wraps
    h.sample(~u64(0));
    StatGroup stats;
    stats.addHistogram("lat", &h);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 2u);
    const std::string json = statsJsonOf(stats, 10);
    // The last bucket carries both samples and the max is preserved.
    EXPECT_NE(json.find(", 2]}"), std::string::npos) << json;
    EXPECT_NE(json.find("\"max\": 18446744073709551615"),
              std::string::npos)
        << json;
}

TEST(FabricObs, SamplerCsvAndSeriesJsonAgree)
{
    Fabric fabric(FabricConfig{shape(2, 1, 1, true)});
    EpochSampler sampler;
    sampler.configure(&fabric.stats(), 10);
    fabric.inject(0, 0, 1, 64);
    sampler.maybeSample(25);
    fabric.drain();
    sampler.finalize(40);
    // Epochs 10 and 20 from maybeSample(25); finalize(40) fills 30
    // and 40 — the final row lands on a boundary, so no forced extra.
    ASSERT_EQ(sampler.rows(), 4u);

    const std::string csvPath = tempPath("fabric_obs_series.csv");
    std::FILE *f = std::fopen(csvPath.c_str(), "w");
    ASSERT_NE(f, nullptr);
    sampler.writeCsv(f);
    std::fclose(f);
    const std::string csv = slurp(csvPath);
    EXPECT_EQ(csv.rfind("cycle,fabric.messages,", 0), 0u) << csv;
    EXPECT_NE(csv.find("fabric.link.0->1.flits"), std::string::npos);

    const std::string jsonPath = tempPath("fabric_obs_series.json");
    f = std::fopen(jsonPath.c_str(), "w");
    ASSERT_NE(f, nullptr);
    writeSeriesJson(f, sampler);
    std::fclose(f);
    const std::string json = slurp(jsonPath);
    EXPECT_NE(json.find("\"interval\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"cycle\": [10, 20, 30, 40"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"droppedRows\": 0"), std::string::npos);
}

TEST(FabricObs, SamplerHandlesFullLinkCardinality)
{
    // 4x4x4 torus: 64 chips x 6 directions = 384 directed links, the
    // scale the sampler must sustain — each row is one linear pass
    // over the scalars (no per-row quadratic rescan).
    const NetConfig net = shape(4, 4, 4, true);
    Fabric fabric(FabricConfig{net});
    EXPECT_EQ(fabric.numLinks(), 384u);

    EpochSampler sampler;
    sampler.configure(&fabric.stats(), 100);
    const size_t columns = 12u + 384u * 6u;
    ASSERT_EQ(sampler.names().size(), columns);

    u64 seed = 0x13198A2E03707344ull;
    for (u32 i = 0; i < 1000; ++i) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const u32 s = u32(seed >> 33) % 64;
        u32 d = u32(seed >> 13) % 64;
        if (d == s)
            d = (d + 1) % 64;
        fabric.inject(i * 10, s, d, 8 + u32(seed % 256));
        sampler.maybeSample(i * 10);
    }
    fabric.drain();
    sampler.finalize(10'000);
    ASSERT_EQ(sampler.rows(), 100u);
    // The final row carries the end-of-run totals, column for column.
    const auto &names = sampler.names();
    for (u32 c = 0; c < names.size(); ++c)
        EXPECT_EQ(sampler.value(sampler.rows() - 1, c),
                  fabric.stats().counterValue(names[c]))
            << names[c];
}

// ---------------------------------------------------------------------------
// Determinism: observability never moves a simulated cycle
// ---------------------------------------------------------------------------

TEST(FabricObs, ObservabilityDoesNotChangeTiming)
{
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 2;
    mc.dimZ = 1;
    mc.words = 16;
    mc.iters = 2;
    const MultiChipResult plain = workloads::runHaloExchange(mc);
    ASSERT_TRUE(plain.verified);

    MultiChipConfig instrumented = mc;
    instrumented.obs.statsInterval = 64;
    instrumented.obs.traceCats = kTraceAll;
    instrumented.obs.traceOut = tempPath("fabric_obs_trace.json");
    instrumented.obs.fabricStats = tempPath("fabric_obs.json");
    instrumented.obs.fabricHeatmap = tempPath("fabric_obs_heat.csv");
    const MultiChipResult traced =
        workloads::runHaloExchange(instrumented);
    ASSERT_TRUE(traced.verified);

    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.instructions, traced.instructions);
    EXPECT_EQ(plain.fingerprint, traced.fingerprint);

    // The sharded engine with observability on still reproduces the
    // plain serial run, fingerprint and all.
    MultiChipConfig sharded = instrumented;
    sharded.obs.traceOut = tempPath("fabric_obs_trace_sh.json");
    sharded.obs.fabricStats = tempPath("fabric_obs_sh.json");
    sharded.obs.fabricHeatmap = tempPath("fabric_obs_heat_sh.csv");
    sharded.engine.kind = EngineKind::Sharded;
    sharded.engine.workers = 2;
    const MultiChipResult shardedRun =
        workloads::runHaloExchange(sharded);
    ASSERT_TRUE(shardedRun.verified);
    EXPECT_EQ(plain.cycles, shardedRun.cycles);
    EXPECT_EQ(plain.fingerprint, shardedRun.fingerprint);
}

TEST(FabricObs, FabricStatsAndHeatmapFilesWellFormed)
{
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 2;
    mc.dimZ = 1;
    mc.words = 8;
    mc.iters = 1;
    mc.obs.statsInterval = 64;
    mc.obs.traceCats = kTraceAll;
    mc.obs.traceOut = tempPath("fabric_file_trace.json");
    mc.obs.fabricStats = tempPath("fabric_file_stats.json");
    mc.obs.fabricHeatmap = tempPath("fabric_file_heat.csv");
    const MultiChipResult r = workloads::runHaloExchange(mc);
    ASSERT_TRUE(r.verified);

    // Structural spot-checks; the ctest smoke runs the full validator
    // (tools/check_fabric.py) on these same files.
    const std::string stats = slurp(mc.obs.fabricStats);
    EXPECT_NE(stats.find("\"schema\": \"cyclops-fabric-v1\""),
              std::string::npos);
    EXPECT_NE(stats.find("\"topology\""), std::string::npos);
    EXPECT_NE(stats.find("\"fabric.link.0->1.flits\""),
              std::string::npos);
    EXPECT_NE(stats.find("\"fabric.latency.total\""),
              std::string::npos);
    EXPECT_NE(stats.find("\"pairs\""), std::string::npos);
    EXPECT_NE(stats.find("\"links\""), std::string::npos);
    EXPECT_NE(stats.find("\"series\""), std::string::npos);

    const std::string heat = slurp(mc.obs.fabricHeatmap);
    EXPECT_EQ(heat.rfind("# cyclops-fabric-heatmap-v1\n", 0), 0u);
    EXPECT_NE(heat.find("kind,src,dst,dir,messages,bytes,flits,"
                        "busyCycles,stallCycles,occFlitCycles,occPeak"),
              std::string::npos);
    EXPECT_NE(heat.find("\npair,"), std::string::npos);
    EXPECT_NE(heat.find("\nlink,"), std::string::npos);

    // The merged trace carries the fabric process with per-link tracks
    // and flow endpoints.
    const std::string trace = slurp(mc.obs.traceOut);
    EXPECT_NE(trace.find("\"cyclops-fabric\""), std::string::npos);
    EXPECT_NE(trace.find("\"link.0->1\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\": \"net\""), std::string::npos);
}

TEST(FabricObs, RemoteWaitAttributionOnMultiChip)
{
    // Remote accesses wait on the fabric, not the local memory system:
    // the halo exchange must charge RemoteWait cycles, and the
    // attribution categories still cover every simulated cycle.
    MultiChipConfig mc;
    mc.dimX = 2;
    mc.dimY = 2;
    mc.dimZ = 1;
    mc.words = 16;
    mc.iters = 2;
    const MultiChipResult r = workloads::runHaloExchange(mc);
    ASSERT_TRUE(r.verified);
    EXPECT_GT(r.attr[arch::CycleCat::RemoteWait], 0u);
    // Each chip is gap-free over its own lifetime (chipCycles x 8 TUs)
    // and r.cycles is the slowest chip's finish, so the grand total is
    // a multiple of 8 bounded by [cycles x 8, cycles x 8 x 4].
    EXPECT_EQ(r.attr.total() % 8u, 0u);
    EXPECT_GE(r.attr.total(), u64(r.cycles) * 8);
    EXPECT_LE(r.attr.total(), u64(r.cycles) * 8 * 4);
}
