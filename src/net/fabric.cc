#include "net/fabric.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::net
{

namespace
{

/** Canonical registered link index for a (src, dst) neighbour pair, or
 *  ~0u when no physical directed link connects them. */
u32
findLink(const Topology &topo, u32 src, u32 dst)
{
    for (u32 d = 0; d < kNumDirs; ++d) {
        if (topo.linkExists(src, Dir(d)) &&
            topo.neighborOf(src, Dir(d)) == dst)
            return src * kNumDirs + d;
    }
    return ~0u;
}

/** splitmix64 finalizer: the corruption-draw hash. */
u64
mix64(u64 x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

constexpr u32 kPpmScale = 1'000'000;

} // namespace

std::string
checkFaultMap(const NetConfig &net, const FabricFaultMap &map)
{
    const Topology topo(net);
    std::vector<u8> seen(size_t(net.numChips()) * kNumDirs, 0);
    for (const LinkFault &f : map.links) {
        if (f.src >= net.numChips() || f.dst >= net.numChips())
            return strprintf("link fault %u->%u outside the %u-chip "
                             "system", f.src, f.dst, net.numChips());
        if (f.src == f.dst)
            return strprintf("link fault %u->%u is self-addressed",
                             f.src, f.dst);
        const u32 idx = findLink(topo, f.src, f.dst);
        if (idx == ~0u)
            return strprintf("no fabric link %u->%u in a %ux%ux%u %s",
                             f.src, f.dst, net.dimX, net.dimY, net.dimZ,
                             net.torus ? "torus" : "mesh");
        if (seen[idx])
            return strprintf("link %u->%u degraded twice", f.src,
                             f.dst);
        seen[idx] = 1;
        if (f.kind == LinkFaultKind::Flaky &&
            (f.flakyPpm > kPpmScale || f.escapePpm > kPpmScale))
            return strprintf("link %u->%u: flaky/escape probability "
                             "above 1000000 ppm", f.src, f.dst);
        if (f.kind == LinkFaultKind::Derated && f.derate == 0)
            return strprintf("link %u->%u: derate divisor must be "
                             ">= 1", f.src, f.dst);
    }
    return "";
}

Fabric::Fabric(const FabricConfig &cfg) : cfg_(cfg), topo_(cfg.net)
{
    if (cfg.reqHeaderBytes == 0 || cfg.respHeaderBytes == 0)
        fatal("fabric protocol headers must be nonzero");
    const u32 chips = cfg.net.numChips();
    linkFree_.assign(size_t(chips) * kNumDirs, 0);
    pairMessages_.assign(size_t(chips) * chips, 0);
    pairBytes_.assign(size_t(chips) * chips, 0);
    pairFlits_.assign(size_t(chips) * chips, 0);
    pairLinkFlits_.assign(size_t(chips) * chips, 0);
    pairInOrder_.assign(size_t(chips) * chips, 0);
    stats_.addCounter("fabric.messages", &messages_);
    stats_.addCounter("fabric.bytes", &bytesMoved_);
    stats_.addCounter("fabric.queueCycles", &queueCycles_);
    stats_.addCounter("fabric.flitsInjected", &flitsInjectedStat_);
    stats_.addCounter("fabric.flitsDelivered", &flitsDeliveredStat_);
    stats_.addCounter("fabric.droppedFlits", &flitsDroppedStat_);
    stats_.addCounter("fabric.rerouted", &rerouted_);
    stats_.addCounter("fabric.retransmits", &retransmits_);
    stats_.addCounter("fabric.retries", &retries_);
    stats_.addCounter("fabric.crcErrors", &crcErrors_);
    stats_.addCounter("fabric.unroutable", &unroutable_);
    stats_.addGauge("fabric.flitsInFlight",
                    [this] { return flitsInFlight_; });
    stats_.addHistogram("fabric.latency.total", &latencyTotal_);
    stats_.addHistogram("fabric.latency.queue", &latencyQueue_);
    stats_.addHistogram("fabric.latency.wire", &latencyWire_);
    registerLinkStats();
    if (!cfg_.faults.empty()) {
        const std::string err = checkFaultMap(cfg_.net, cfg_.faults);
        if (!err.empty())
            fatal("%s", err.c_str());
        if (cfg_.faults.atCycle == 0)
            applyFaultMap();
        else
            faultsArmed_ = true; // applied at the armed epoch boundary
    }
}

/**
 * Build the per-link telemetry records and register the stats of every
 * link that physically exists: a direction is present iff its axis
 * extent is > 1 and (torus, or the chip is not at the mesh edge).
 * links_ never resizes after this (StatGroup holds raw pointers).
 */
void
Fabric::registerLinkStats()
{
    const u32 chips = cfg_.net.numChips();
    links_.resize(size_t(chips) * kNumDirs);
    for (u32 chip = 0; chip < chips; ++chip) {
        for (u32 d = 0; d < kNumDirs; ++d) {
            Link &link = links_[linkIndex(chip, Dir(d))];
            link.src = chip;
            link.dir = Dir(d);
            if (!topo_.linkExists(chip, Dir(d)))
                continue;
            link.dst = topo_.neighborOf(chip, Dir(d));
            link.exists = true;
            link.track = numLinks_++;
            const std::string name =
                strprintf("fabric.link.%u->%u", chip, link.dst);
            trackNames_.push_back(strprintf("link.%u->%u", chip,
                                            link.dst));
            occTrackNames_.push_back(strprintf("occ.%u->%u", chip,
                                               link.dst));
            stats_.addCounter(name + ".flits", &link.flits);
            stats_.addCounter(name + ".busyCycles", &link.busyCycles);
            stats_.addCounter(name + ".stallCycles", &link.stallCycles);
            stats_.addCounter(name + ".occFlitCycles",
                              &link.occFlitCycles);
            const u32 idx = linkIndex(chip, Dir(d));
            stats_.addGauge(name + ".occupancy", [this, idx] {
                const Cycle freeAt = linkFree_[idx];
                return freeAt > lastAdvance_ ? freeAt - lastAdvance_
                                             : 0;
            });
            stats_.addGauge(name + ".occPeak",
                            [this, idx] { return links_[idx].occPeak; });
        }
    }
}

u32
Fabric::linkIndex(u32 chip, Dir dir) const
{
    return chip * kNumDirs + u32(dir);
}

/**
 * Translate the fault map into per-link lookup tables and invalidate
 * the route cache. Called from the constructor (atCycle == 0) or from
 * advance() at the first epoch boundary past atCycle; either way the
 * application point is a pure function of the configuration.
 */
void
Fabric::applyFaultMap()
{
    const u32 chips = cfg_.net.numChips();
    const size_t nlinks = size_t(chips) * kNumDirs;
    deadLink_.assign(nlinks, false);
    flakyPpm_.assign(nlinks, 0);
    escapePpm_.assign(nlinks, 0);
    derate_.assign(nlinks, 1);
    linkPktSeq_.assign(nlinks, 0);
    for (const LinkFault &f : cfg_.faults.links) {
        const u32 idx = findLink(topo_, f.src, f.dst);
        if (idx == ~0u)
            fatal("fabric fault names a missing link %u->%u", f.src,
                  f.dst);
        switch (f.kind) {
        case LinkFaultKind::Dead:
            deadLink_[idx] = true;
            break;
        case LinkFaultKind::Flaky:
            flakyPpm_[idx] = f.flakyPpm;
            escapePpm_[idx] = f.escapePpm;
            break;
        case LinkFaultKind::Derated:
            derate_[idx] = std::max(1u, f.derate);
            break;
        }
    }
    const size_t pairs = size_t(chips) * chips;
    routeCache_.assign(pairs, {});
    routeKnown_.assign(pairs, 0);
    pairRerouted_.assign(pairs, 0);
    faultsActive_ = true;
    faultsArmed_ = false;
}

/**
 * Route for a pair under the active fault map, cached: the DOR path
 * when it crosses no dead link, else the relaxed-dimension-order
 * minimal path, else the breadth-first detour. An empty cached path
 * means the destination is unreachable (partition).
 */
const std::vector<std::pair<u32, Dir>> &
Fabric::routeFor(u32 src, u32 dst)
{
    const size_t pi = pairIndex(src, dst);
    if (!routeKnown_[pi]) {
        routeKnown_[pi] = 1;
        auto dor = topo_.route(src, dst);
        bool blocked = false;
        for (const auto &[chip, dir] : dor) {
            if (deadLink_[linkIndex(chip, dir)]) {
                blocked = true;
                break;
            }
        }
        if (!blocked) {
            routeCache_[pi] = std::move(dor);
        } else {
            pairRerouted_[pi] = 1;
            auto alt = topo_.routeAdaptive(src, dst, deadLink_);
            if (alt.empty())
                alt = topo_.routeDetour(src, dst, deadLink_);
            routeCache_[pi] = std::move(alt);
        }
    }
    return routeCache_[pi];
}

bool
Fabric::drawCorrupt(u32 linkIdx, bool *escaped)
{
    const u64 n = linkPktSeq_[linkIdx]++;
    const u64 x = mix64(cfg_.faults.seed ^
                        (u64(linkIdx) * 0x9E3779B97F4A7C15ULL) ^
                        (n * 0xBF58476D1CE4E5B9ULL));
    if (x % kPpmScale >= flakyPpm_[linkIdx])
        return false;
    // Conditional escape draw from the untouched high bits: the
    // corruption evades the end-to-end checksum (silent data
    // corruption) instead of triggering a NACK.
    *escaped = (x >> 32) % kPpmScale < escapePpm_[linkIdx];
    return true;
}

Cycle
Fabric::backoff(u32 attempt) const
{
    return cfg_.retryBackoff << std::min(attempt, cfg_.retryBackoffCap);
}

/**
 * The sender's retry timer fires maxRetries times against a
 * destination with no live path, doubling each wait; the message is
 * then abandoned. No flit ever crosses a link, so the flit ledger is
 * untouched — only the attempt is recorded.
 */
Delivery
Fabric::injectUnroutable(Cycle now, u32 src, u32 dst)
{
    ++unroutable_;
    retries_ += cfg_.maxRetries;
    Delivery d{now, now};
    d.ok = false;
    d.retries = cfg_.maxRetries;
    Cycle t = now;
    for (u32 a = 0; a <= cfg_.maxRetries; ++a)
        t += cfg_.retryTimeout << std::min(a, cfg_.retryBackoffCap);
    d.accepted = t;
    d.delivered = t;
    return d;
}

u64
Fabric::transmit(Cycle start,
                 const std::vector<std::pair<u32, Dir>> &path, u32 bytes,
                 u64 flow, Cycle *accepted, Cycle *delivered,
                 bool *corrupt, bool *escaped)
{
    // Identical to Topology::send so the zero-load latency matches
    // uncontendedLatency() exactly; additionally tracks the first-link
    // drain time (backpressure) and the flit ledger. Every fault-map
    // lookup is guarded by faultsActive_, and all degradation factors
    // are identities when the map is empty, so the healthy fabric's
    // arithmetic is bit-for-bit unchanged.
    const Cycle perHop = cfg_.net.routerLatency + cfg_.net.linkLatency;
    const u32 lbpc = cfg_.net.linkBytesPerCycle;
    const bool tracing = tracer_ && tracer_->on(TraceCat::Net);

    u64 flits = 0;
    u32 remaining = bytes;
    Cycle packetStart = start;
    bool firstPacket = true;
    while (remaining > 0) {
        const u32 packet = std::min(remaining, cfg_.net.maxPacketBytes);
        const Cycle serialization = (packet + lbpc - 1) / lbpc;
        flits += serialization;
        // Cut-through: the header advances one hop per (router+link);
        // each traversed link is occupied for the serialization time
        // starting when the header reaches it. A derated link holds
        // the wire derate times longer per flit.
        Cycle headArrives = packetStart;
        Cycle firstOcc = serialization;
        Cycle tailOcc = serialization;
        bool firstLink = true;
        for (size_t hop = 0; hop < path.size(); ++hop) {
            const auto &[chip, dir] = path[hop];
            const u32 idx = linkIndex(chip, dir);
            const Cycle occupancy = faultsActive_
                ? serialization * derate_[idx]
                : serialization;
            Cycle &freeAt = linkFree_[idx];
            const Cycle xmit = std::max(headArrives, freeAt);
            const Cycle stall = xmit - headArrives;
            queueCycles_ += stall;
            freeAt = xmit + occupancy;

            Link &link = links_[idx];
            link.flits += serialization;
            link.busyCycles += occupancy;
            link.stallCycles += stall;
            link.occFlitCycles += stall * serialization;
            // Ingress backlog this packet observed: everything queued
            // ahead of it plus itself.
            link.occPeak = std::max(link.occPeak,
                                    u64(stall + occupancy));
            if (faultsActive_ && flakyPpm_[idx] != 0) {
                bool esc = false;
                if (drawCorrupt(idx, &esc)) {
                    *corrupt = true;
                    if (esc)
                        *escaped = true;
                }
            }
            if (tracing) {
                tracer_->complete(TraceCat::Net, link.track, "pkt",
                                  xmit, occupancy, flow);
                tracer_->counter(TraceCat::Net, link.track,
                                 occTrackNames_[link.track].c_str(),
                                 xmit, stall + occupancy);
                if (firstPacket && firstLink)
                    tracer_->flowBegin(TraceCat::Net, link.track,
                                       "msg", xmit, flow);
                if (remaining == packet && hop + 1 == path.size())
                    tracer_->flowEnd(TraceCat::Net, link.track, "msg",
                                     freeAt, flow);
            }

            if (firstLink) {
                *accepted = freeAt;
                firstOcc = occupancy;
                firstLink = false;
            }
            tailOcc = occupancy;
            headArrives = xmit + perHop;
        }
        *delivered = headArrives + tailOcc;
        // Next packet can follow as soon as the first link drains.
        packetStart = packetStart + firstOcc;
        remaining -= packet;
        firstPacket = false;
    }
    return flits;
}

Delivery
Fabric::inject(Cycle now, u32 src, u32 dst, u32 bytes)
{
    if (src >= cfg_.net.numChips() || dst >= cfg_.net.numChips())
        fatal("fabric endpoints outside the system");
    if (src == dst)
        fatal("fabric cannot route a self-addressed message");
    if (bytes == 0)
        fatal("cannot inject an empty message");
    const size_t pi = pairIndex(src, dst);
    ++messages_;
    bytesMoved_ += bytes;
    pairMessages_[pi] += 1;
    pairBytes_[pi] += bytes;

    const u64 flow = msgSeq_++;
    const std::vector<std::pair<u32, Dir>> *path = nullptr;
    std::vector<std::pair<u32, Dir>> dorPath;
    if (faultsActive_) {
        const auto &cached = routeFor(src, dst);
        if (cached.empty())
            return injectUnroutable(now, src, dst);
        if (pairRerouted_[pi])
            ++rerouted_;
        path = &cached;
    } else {
        dorPath = topo_.route(src, dst);
        path = &dorPath;
    }

    const Cycle perHop = cfg_.net.routerLatency + cfg_.net.linkLatency;
    Delivery d{now, now};
    u32 attempt = 0;
    Cycle attemptStart = now;
    while (true) {
        bool corrupt = false;
        bool escaped = false;
        Cycle accepted = attemptStart;
        Cycle delivered = attemptStart;
        const u64 flits = transmit(attemptStart, *path, bytes, flow,
                                   &accepted, &delivered, &corrupt,
                                   &escaped);
        flitsInjected_ += flits;
        flitsInjectedStat_ += flits;
        flitsInFlight_ += flits;
        pairFlits_[pi] += flits;
        pairLinkFlits_[pi] += flits * path->size();
        if (attempt == 0)
            d.accepted = accepted;
        d.retries = attempt;
        if (!corrupt || escaped) {
            // Delivered — possibly with a checksum escape the caller
            // turns into silent data corruption. The reorder buffer
            // releases messages in sequence order, so a pair's
            // deliveries stay FIFO even when a retransmitted earlier
            // message finishes its traversal late.
            if (faultsActive_)
                delivered = std::max(delivered, pairInOrder_[pi]);
            pairInOrder_[pi] = std::max(pairInOrder_[pi], delivered);
            inflight_.push({delivered, flits, false});
            d.delivered = delivered;
            d.corrupted = corrupt && escaped;
            break;
        }
        // The checksum caught the corruption: the receiver NACKs and
        // the whole attempt's flits retire into the dropped ledger.
        ++crcErrors_;
        inflight_.push({delivered, flits, true});
        if (attempt >= cfg_.maxRetries) {
            d.ok = false;
            d.delivered = delivered;
            break;
        }
        ++retransmits_;
        ++retries_;
        // NACK flight time back to the sender (uncontended control
        // channel), then exponential backoff before the retransmit.
        const Cycle nack = delivered + Cycle(path->size()) * perHop + 1;
        attemptStart = nack + backoff(attempt);
        ++attempt;
    }

    if (d.ok) {
        latencyTotal_.sample(d.delivered - now);
        const Cycle wire = topo_.uncontendedLatency(src, dst, bytes);
        latencyWire_.sample(wire);
        latencyQueue_.sample((d.delivered - now) - wire);
    }
    return d;
}

void
Fabric::advance(Cycle at)
{
    if (faultsArmed_ && at != kCycleNever && at >= cfg_.faults.atCycle)
        applyFaultMap();
    while (!inflight_.empty() && inflight_.top().at <= at) {
        const Flight f = inflight_.top();
        inflight_.pop();
        flitsInFlight_ -= f.flits;
        if (f.dropped) {
            flitsDropped_ += f.flits;
            flitsDroppedStat_ += f.flits;
        } else {
            flitsDelivered_ += f.flits;
            flitsDeliveredStat_ += f.flits;
        }
    }
    // Anchor for the occupancy gauges: backlog is whatever work each
    // link still holds beyond the cycle the system has advanced to.
    if (at != kCycleNever)
        lastAdvance_ = std::max(lastAdvance_, at);
    checkConservation(at);
}

void
Fabric::checkConservation(Cycle at) const
{
    if (flitsInjected_ ==
        flitsDelivered_ + flitsInFlight_ + flitsDropped_)
        return;
    fatal("fabric flit conservation violated at cycle %llu: "
          "injected %llu != delivered %llu + in-flight %llu "
          "+ dropped %llu",
          static_cast<unsigned long long>(at),
          static_cast<unsigned long long>(flitsInjected_),
          static_cast<unsigned long long>(flitsDelivered_),
          static_cast<unsigned long long>(flitsInFlight_),
          static_cast<unsigned long long>(flitsDropped_));
}

void
Fabric::drain()
{
    advance(kCycleNever);
    // Every link is idle once drained: advance the occupancy anchor
    // past the last reservation so the backlog gauges read zero.
    for (const Cycle freeAt : linkFree_)
        lastAdvance_ = std::max(lastAdvance_, freeAt);
}

} // namespace cyclops::net
