#include "net/fabric.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::net
{

Fabric::Fabric(const FabricConfig &cfg) : cfg_(cfg), topo_(cfg.net)
{
    if (cfg.reqHeaderBytes == 0 || cfg.respHeaderBytes == 0)
        fatal("fabric protocol headers must be nonzero");
    const u32 chips = cfg.net.numChips();
    linkFree_.assign(size_t(chips) * kNumDirs, 0);
    pairMessages_.assign(size_t(chips) * chips, 0);
    pairBytes_.assign(size_t(chips) * chips, 0);
    pairFlits_.assign(size_t(chips) * chips, 0);
    stats_.addCounter("fabric.messages", &messages_);
    stats_.addCounter("fabric.bytes", &bytesMoved_);
    stats_.addCounter("fabric.queueCycles", &queueCycles_);
    stats_.addCounter("fabric.flitsInjected", &flitsInjectedStat_);
    stats_.addCounter("fabric.flitsDelivered", &flitsDeliveredStat_);
    stats_.addGauge("fabric.flitsInFlight",
                    [this] { return flitsInFlight_; });
    stats_.addHistogram("fabric.latency.total", &latencyTotal_);
    stats_.addHistogram("fabric.latency.queue", &latencyQueue_);
    stats_.addHistogram("fabric.latency.wire", &latencyWire_);
    registerLinkStats();
}

/**
 * Build the per-link telemetry records and register the stats of every
 * link that physically exists: a direction is present iff its axis
 * extent is > 1 and (torus, or the chip is not at the mesh edge).
 * links_ never resizes after this (StatGroup holds raw pointers).
 */
void
Fabric::registerLinkStats()
{
    const u32 chips = cfg_.net.numChips();
    const u32 extent[3] = {cfg_.net.dimX, cfg_.net.dimY, cfg_.net.dimZ};
    links_.resize(size_t(chips) * kNumDirs);
    for (u32 chip = 0; chip < chips; ++chip) {
        const Coord c = topo_.coordOf(chip);
        const u32 coord[3] = {c.x, c.y, c.z};
        for (u32 d = 0; d < kNumDirs; ++d) {
            Link &link = links_[linkIndex(chip, Dir(d))];
            link.src = chip;
            link.dir = Dir(d);
            const u32 axis = d / 2;
            const bool minus = (d % 2) != 0;
            if (extent[axis] <= 1)
                continue;
            if (!cfg_.net.torus &&
                (minus ? coord[axis] == 0
                       : coord[axis] == extent[axis] - 1))
                continue;
            // On an extent-2 torus both directions reach the same
            // neighbour, and Topology::step breaks the distance tie
            // toward plus — the minus wire can never carry traffic,
            // so it is not registered (names stay collision-free).
            if (cfg_.net.torus && extent[axis] == 2 && minus)
                continue;
            Coord n = c;
            u32 *ncoord[3] = {&n.x, &n.y, &n.z};
            *ncoord[axis] = minus
                ? (coord[axis] + extent[axis] - 1) % extent[axis]
                : (coord[axis] + 1) % extent[axis];
            link.dst = topo_.chipAt(n);
            link.exists = true;
            link.track = numLinks_++;
            const std::string name =
                strprintf("fabric.link.%u->%u", chip, link.dst);
            trackNames_.push_back(strprintf("link.%u->%u", chip,
                                            link.dst));
            occTrackNames_.push_back(strprintf("occ.%u->%u", chip,
                                               link.dst));
            stats_.addCounter(name + ".flits", &link.flits);
            stats_.addCounter(name + ".busyCycles", &link.busyCycles);
            stats_.addCounter(name + ".stallCycles", &link.stallCycles);
            stats_.addCounter(name + ".occFlitCycles",
                              &link.occFlitCycles);
            const u32 idx = linkIndex(chip, Dir(d));
            stats_.addGauge(name + ".occupancy", [this, idx] {
                const Cycle freeAt = linkFree_[idx];
                return freeAt > lastAdvance_ ? freeAt - lastAdvance_
                                             : 0;
            });
            stats_.addGauge(name + ".occPeak",
                            [this, idx] { return links_[idx].occPeak; });
        }
    }
}

u32
Fabric::linkIndex(u32 chip, Dir dir) const
{
    return chip * kNumDirs + u32(dir);
}

Delivery
Fabric::inject(Cycle now, u32 src, u32 dst, u32 bytes)
{
    if (src >= cfg_.net.numChips() || dst >= cfg_.net.numChips())
        fatal("fabric endpoints outside the system");
    if (src == dst)
        fatal("fabric cannot route a self-addressed message");
    if (bytes == 0)
        fatal("cannot inject an empty message");
    ++messages_;
    bytesMoved_ += bytes;

    // Identical to Topology::send so the zero-load latency matches
    // uncontendedLatency() exactly; additionally tracks the first-link
    // drain time (backpressure) and the flit ledger.
    const auto path = topo_.route(src, dst);
    const Cycle perHop = cfg_.net.routerLatency + cfg_.net.linkLatency;
    const u32 lbpc = cfg_.net.linkBytesPerCycle;
    const bool tracing = tracer_ && tracer_->on(TraceCat::Net);
    const u64 flow = msgSeq_++;

    Delivery d{now, now};
    u64 flits = 0;
    u32 remaining = bytes;
    Cycle packetStart = now;
    bool firstPacket = true;
    while (remaining > 0) {
        const u32 packet = std::min(remaining, cfg_.net.maxPacketBytes);
        const Cycle serialization = (packet + lbpc - 1) / lbpc;
        flits += serialization;
        // Cut-through: the header advances one hop per (router+link);
        // each traversed link is occupied for the serialization time
        // starting when the header reaches it.
        Cycle headArrives = packetStart;
        bool firstLink = true;
        for (size_t hop = 0; hop < path.size(); ++hop) {
            const auto &[chip, dir] = path[hop];
            const u32 idx = linkIndex(chip, dir);
            Cycle &freeAt = linkFree_[idx];
            const Cycle start = std::max(headArrives, freeAt);
            const Cycle stall = start - headArrives;
            queueCycles_ += stall;
            freeAt = start + serialization;

            Link &link = links_[idx];
            link.flits += serialization;
            link.busyCycles += serialization;
            link.stallCycles += stall;
            link.occFlitCycles += stall * serialization;
            // Ingress backlog this packet observed: everything queued
            // ahead of it plus itself.
            link.occPeak = std::max(link.occPeak,
                                    u64(stall + serialization));
            if (tracing) {
                tracer_->complete(TraceCat::Net, link.track, "pkt",
                                  start, serialization, flow);
                tracer_->counter(TraceCat::Net, link.track,
                                 occTrackNames_[link.track].c_str(),
                                 start, stall + serialization);
                if (firstPacket && firstLink)
                    tracer_->flowBegin(TraceCat::Net, link.track,
                                       "msg", start, flow);
                if (remaining == packet && hop + 1 == path.size())
                    tracer_->flowEnd(TraceCat::Net, link.track, "msg",
                                     freeAt, flow);
            }

            if (firstLink) {
                d.accepted = freeAt;
                firstLink = false;
            }
            headArrives = start + perHop;
        }
        d.delivered = headArrives + serialization;
        // Next packet can follow as soon as the first link drains.
        packetStart = packetStart + serialization;
        remaining -= packet;
        firstPacket = false;
    }

    flitsInjected_ += flits;
    flitsInjectedStat_ += flits;
    flitsInFlight_ += flits;
    inflight_.emplace(d.delivered, flits);

    pairMessages_[pairIndex(src, dst)] += 1;
    pairBytes_[pairIndex(src, dst)] += bytes;
    pairFlits_[pairIndex(src, dst)] += flits;
    latencyTotal_.sample(d.delivered - now);
    const Cycle wire = topo_.uncontendedLatency(src, dst, bytes);
    latencyWire_.sample(wire);
    latencyQueue_.sample((d.delivered - now) - wire);
    return d;
}

void
Fabric::advance(Cycle at)
{
    while (!inflight_.empty() && inflight_.top().first <= at) {
        const u64 flits = inflight_.top().second;
        flitsDelivered_ += flits;
        flitsDeliveredStat_ += flits;
        flitsInFlight_ -= flits;
        inflight_.pop();
    }
    // Anchor for the occupancy gauges: backlog is whatever work each
    // link still holds beyond the cycle the system has advanced to.
    if (at != kCycleNever)
        lastAdvance_ = std::max(lastAdvance_, at);
    checkConservation(at);
}

void
Fabric::checkConservation(Cycle at) const
{
    if (flitsInjected_ == flitsDelivered_ + flitsInFlight_)
        return;
    fatal("fabric flit conservation violated at cycle %llu: "
          "injected %llu != delivered %llu + in-flight %llu",
          static_cast<unsigned long long>(at),
          static_cast<unsigned long long>(flitsInjected_),
          static_cast<unsigned long long>(flitsDelivered_),
          static_cast<unsigned long long>(flitsInFlight_));
}

void
Fabric::drain()
{
    advance(kCycleNever);
    // Every link is idle once drained: advance the occupancy anchor
    // past the last reservation so the backlog gauges read zero.
    for (const Cycle freeAt : linkFree_)
        lastAdvance_ = std::max(lastAdvance_, freeAt);
}

} // namespace cyclops::net
