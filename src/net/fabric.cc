#include "net/fabric.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::net
{

Fabric::Fabric(const FabricConfig &cfg) : cfg_(cfg), topo_(cfg.net)
{
    if (cfg.reqHeaderBytes == 0 || cfg.respHeaderBytes == 0)
        fatal("fabric protocol headers must be nonzero");
    linkFree_.assign(size_t(cfg.net.numChips()) * kNumDirs, 0);
    stats_.addCounter("fabric.messages", &messages_);
    stats_.addCounter("fabric.bytes", &bytesMoved_);
    stats_.addCounter("fabric.queueCycles", &queueCycles_);
    stats_.addCounter("fabric.flitsInjected", &flitsInjectedStat_);
    stats_.addCounter("fabric.flitsDelivered", &flitsDeliveredStat_);
}

u32
Fabric::linkIndex(u32 chip, Dir dir) const
{
    return chip * kNumDirs + u32(dir);
}

Delivery
Fabric::inject(Cycle now, u32 src, u32 dst, u32 bytes)
{
    if (src >= cfg_.net.numChips() || dst >= cfg_.net.numChips())
        fatal("fabric endpoints outside the system");
    if (src == dst)
        fatal("fabric cannot route a self-addressed message");
    if (bytes == 0)
        fatal("cannot inject an empty message");
    ++messages_;
    bytesMoved_ += bytes;

    // Identical to Topology::send so the zero-load latency matches
    // uncontendedLatency() exactly; additionally tracks the first-link
    // drain time (backpressure) and the flit ledger.
    const auto path = topo_.route(src, dst);
    const Cycle perHop = cfg_.net.routerLatency + cfg_.net.linkLatency;
    const u32 lbpc = cfg_.net.linkBytesPerCycle;

    Delivery d{now, now};
    u64 flits = 0;
    u32 remaining = bytes;
    Cycle packetStart = now;
    while (remaining > 0) {
        const u32 packet = std::min(remaining, cfg_.net.maxPacketBytes);
        const Cycle serialization = (packet + lbpc - 1) / lbpc;
        flits += serialization;
        // Cut-through: the header advances one hop per (router+link);
        // each traversed link is occupied for the serialization time
        // starting when the header reaches it.
        Cycle headArrives = packetStart;
        bool firstLink = true;
        for (const auto &[chip, dir] : path) {
            Cycle &freeAt = linkFree_[linkIndex(chip, dir)];
            const Cycle start = std::max(headArrives, freeAt);
            queueCycles_ += start - headArrives;
            freeAt = start + serialization;
            if (firstLink) {
                d.accepted = freeAt;
                firstLink = false;
            }
            headArrives = start + perHop;
        }
        d.delivered = headArrives + serialization;
        // Next packet can follow as soon as the first link drains.
        packetStart = packetStart + serialization;
        remaining -= packet;
    }

    flitsInjected_ += flits;
    flitsInjectedStat_ += flits;
    inflight_.emplace(d.delivered, flits);
    return d;
}

void
Fabric::advance(Cycle at)
{
    while (!inflight_.empty() && inflight_.top().first <= at) {
        flitsDelivered_ += inflight_.top().second;
        flitsDeliveredStat_ += inflight_.top().second;
        inflight_.pop();
    }
}

void
Fabric::drain()
{
    advance(kCycleNever);
}

} // namespace cyclops::net
