/**
 * @file
 * Cycle-driven multi-chip interconnect (paper section 2.2).
 *
 * net::Topology is the analytic model: routes, hop counts and an
 * idealized latency formula. This module is the timing component the
 * simulator actually drives: messages are injected at a cycle, claim
 * the links of their dimension-order route in injection order (per-
 * link FIFO reservation, cut-through forwarding, 256-byte packet
 * segmentation), and are delivered at a cycle that the caller applies
 * functionally. The math is byte-for-byte the same as Topology::send,
 * so the fabric's zero-load latency equals uncontendedLatency()
 * exactly — tests/test_fabric.cc pins the identity.
 *
 * Conservation contract: every injected flit (one linkBytesPerCycle
 * chunk crossing the first link) is accounted for at all times:
 *     flitsInjected() == flitsDelivered() + flitsInFlight()
 * advance(at) retires flits whose delivery cycle has passed; drain()
 * retires everything (end of run).
 */

#ifndef CYCLOPS_NET_FABRIC_H
#define CYCLOPS_NET_FABRIC_H

#include <queue>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "net/topology.h"

namespace cyclops::net
{

/** Cycle-driven fabric configuration (wraps the analytic NetConfig). */
struct FabricConfig
{
    NetConfig net;

    /**
     * Protocol overhead added to every remote access: a remote store
     * sends one message of reqHeaderBytes + payload; a remote load
     * sends a reqHeaderBytes request and a respHeaderBytes + payload
     * response.
     */
    u32 reqHeaderBytes = 8;
    u32 respHeaderBytes = 8;

    /**
     * Lockstep epoch length for multi-chip simulation. Chips run
     * independently for one epoch, then exchange fabric traffic at the
     * boundary. 0 selects the shortest causally-safe epoch, one hop:
     * routerLatency + linkLatency (no message can cross a chip
     * boundary in less).
     */
    Cycle epochCycles = 0;

    /** Resolved epoch length (epochCycles or the one-hop default). */
    Cycle
    epoch() const
    {
        return epochCycles ? epochCycles
                           : net.routerLatency + net.linkLatency;
    }
};

/** When the fabric accepted and will deliver an injected message. */
struct Delivery
{
    Cycle accepted = 0;  ///< source injection port drained (backpressure)
    Cycle delivered = 0; ///< last byte arrives at the destination
};

/**
 * The cycle-driven interconnect of a multi-chip Cyclops system.
 * Deterministic: timing depends only on the injection sequence, and
 * messages sharing a (src, dst) DOR path are delivered in injection
 * order (per-link FIFO), which arch::System relies on for its
 * payload-before-flag memory ordering guarantee.
 */
class Fabric
{
  public:
    explicit Fabric(const FabricConfig &cfg = FabricConfig{});

    const FabricConfig &config() const { return cfg_; }
    const Topology &topology() const { return topo_; }

    /**
     * Inject a @p bytes message from chip @p src to chip @p dst at
     * cycle @p now. Reserves every link of the DOR route (queueing
     * behind earlier traffic), segments messages above maxPacketBytes
     * into pipelined packets, and returns both the backpressure point
     * (accepted: when the source's first link drains) and the delivery
     * cycle. Self-addressed messages and bad endpoints are fatal; the
     * System layer converts them to guest errors first.
     */
    Delivery inject(Cycle now, u32 src, u32 dst, u32 bytes);

    /** Retire in-flight flits delivered at or before cycle @p at. */
    void advance(Cycle at);

    /** Retire all in-flight flits (end of simulation). */
    void drain();

    // Flit conservation: injected == delivered + inFlight, always.
    u64 flitsInjected() const { return flitsInjected_; }
    u64 flitsDelivered() const { return flitsDelivered_; }
    u64 flitsInFlight() const { return flitsInjected_ - flitsDelivered_; }

    u64 messages() const { return messages_.value(); }
    u64 bytesMoved() const { return bytesMoved_.value(); }
    u64 queueCycles() const { return queueCycles_.value(); }

    StatGroup &stats() { return stats_; }

  private:
    u32 linkIndex(u32 chip, Dir dir) const;

    FabricConfig cfg_;
    Topology topo_;
    std::vector<Cycle> linkFree_; ///< chip x direction reservation

    // Min-heap of (delivery cycle, flit count) for advance()/drain().
    using Flight = std::pair<Cycle, u64>;
    std::priority_queue<Flight, std::vector<Flight>,
                        std::greater<Flight>>
        inflight_;
    u64 flitsInjected_ = 0;
    u64 flitsDelivered_ = 0;

    StatGroup stats_;
    Counter messages_;
    Counter bytesMoved_;
    Counter queueCycles_;
    Counter flitsInjectedStat_;
    Counter flitsDeliveredStat_;
};

} // namespace cyclops::net

#endif // CYCLOPS_NET_FABRIC_H
