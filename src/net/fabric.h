/**
 * @file
 * Cycle-driven multi-chip interconnect (paper section 2.2).
 *
 * net::Topology is the analytic model: routes, hop counts and an
 * idealized latency formula. This module is the timing component the
 * simulator actually drives: messages are injected at a cycle, claim
 * the links of their dimension-order route in injection order (per-
 * link FIFO reservation, cut-through forwarding, 256-byte packet
 * segmentation), and are delivered at a cycle that the caller applies
 * functionally. The math is byte-for-byte the same as Topology::send,
 * so the fabric's zero-load latency equals uncontendedLatency()
 * exactly — tests/test_fabric.cc pins the identity.
 *
 * Conservation contract: every injected flit (one linkBytesPerCycle
 * chunk crossing the first link) is accounted for at all times:
 *     flitsInjected() == flitsDelivered() + flitsInFlight()
 *                                         + flitsDropped()
 * advance(at) retires flits whose delivery cycle has passed — into the
 * delivered ledger for clean packets, into the dropped ledger for
 * corrupted attempts that the receiver NACKed — and fatal()s with a
 * structured message if the ledger ever disagrees; drain() retires
 * everything (end of run).
 *
 * Fault tolerance (DESIGN.md section 18): a FabricFaultMap in the
 * config (or injected mid-run via advance()) marks directed links
 * dead, flaky (seeded per-packet corruption probability) or derated
 * (reduced bandwidth). Routing detours around dead links with a
 * relaxed-dimension-order walk, falling back to a breadth-first
 * detour; an end-to-end retry layer (checksum + NACK + retransmit
 * with exponential backoff) re-sends corrupted packets. Both are pure
 * functions of (topology, fault map, injection sequence), so degraded
 * runs remain bit-reproducible. When the map is empty every code path
 * and cycle of the fault-free fabric is unchanged (bench_simperf pins
 * simCyclesDrift == 0).
 *
 * Observability (DESIGN.md section 17): every directed link that
 * physically exists carries its own telemetry — flits forwarded, busy
 * cycles, ingress stall cycles, queued flit-cycles (cycle-weighted
 * occupancy integral), a current-backlog gauge and a peak-backlog
 * gauge — registered as "fabric.link.<a>-><b>.*" in stats(). Three
 * "fabric.latency.*" histograms split every message's injection-to-
 * delivery latency into wire (uncontended) and queue components, and
 * per-(src,dst) chip-pair matrices count messages/bytes/flits. With a
 * Tracer attached (setTracer) and the "net" category enabled, each
 * packet emits per-link slices joined by flow events plus per-link
 * occupancy counter tracks. None of this changes a simulated cycle.
 */

#ifndef CYCLOPS_NET_FABRIC_H
#define CYCLOPS_NET_FABRIC_H

#include <queue>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "net/topology.h"

namespace cyclops::net
{

/** Cycle-driven fabric configuration (wraps the analytic NetConfig). */
struct FabricConfig
{
    NetConfig net;

    /**
     * Protocol overhead added to every remote access: a remote store
     * sends one message of reqHeaderBytes + payload; a remote load
     * sends a reqHeaderBytes request and a respHeaderBytes + payload
     * response.
     */
    u32 reqHeaderBytes = 8;
    u32 respHeaderBytes = 8;

    /**
     * Lockstep epoch length for multi-chip simulation. Chips run
     * independently for one epoch, then exchange fabric traffic at the
     * boundary. 0 selects the shortest causally-safe epoch, one hop:
     * routerLatency + linkLatency (no message can cross a chip
     * boundary in less).
     */
    Cycle epochCycles = 0;

    /** Resolved epoch length (epochCycles or the one-hop default). */
    Cycle
    epoch() const
    {
        return epochCycles ? epochCycles
                           : net.routerLatency + net.linkLatency;
    }

    /**
     * Link degradation applied to this fabric (empty = healthy).
     * atCycle == 0 degrades from construction; otherwise the map is
     * armed and applied at the first advance() at or past atCycle.
     */
    FabricFaultMap faults = {};

    /**
     * End-to-end reliability parameters. A packet corrupted on a
     * flaky link is NACKed by the receiver and retransmitted after
     * retryBackoff << attempt cycles (exponent capped at
     * retryBackoffCap); an unreachable destination is retried every
     * retryTimeout << attempt cycles. After maxRetries failed
     * attempts the message is abandoned and Delivery::ok is false.
     */
    u32 maxRetries = 8;
    Cycle retryBackoff = 32;
    u32 retryBackoffCap = 6;
    Cycle retryTimeout = 2048;
};

/**
 * Validate a fault map against a topology: endpoints must name a
 * physically existing directed link, probabilities must be sane, and
 * no link may be degraded twice. Returns an error message, or an
 * empty string if the map is well-formed.
 */
std::string checkFaultMap(const NetConfig &net,
                          const FabricFaultMap &map);

/** When the fabric accepted and will deliver an injected message. */
struct Delivery
{
    Cycle accepted = 0;  ///< source injection port drained (backpressure)
    Cycle delivered = 0; ///< last byte arrives at the destination

    /** False when retries exhausted: the destination is unreachable
     *  (partition) or every attempt was corrupted (retry storm).
     *  delivered is then the cycle the sender gave up. */
    bool ok = true;

    /** The payload arrived but a corruption escaped the end-to-end
     *  checksum: the caller owns turning this into silent data
     *  corruption (the fabric does not see payload bits). */
    bool corrupted = false;

    /** Retransmissions + timeout retries this message needed. */
    u32 retries = 0;
};

/**
 * The cycle-driven interconnect of a multi-chip Cyclops system.
 * Deterministic: timing depends only on the injection sequence, and
 * messages sharing a (src, dst) DOR path are delivered in injection
 * order (per-link FIFO), which arch::System relies on for its
 * payload-before-flag memory ordering guarantee.
 */
class Fabric
{
  public:
    /**
     * Telemetry of one directed link (chip, direction). Links whose
     * direction does not physically exist (1-wide dimension, mesh
     * edge) have exists == false and no registered stats.
     */
    struct Link
    {
        u32 src = 0;          ///< owning chip
        u32 dst = 0;          ///< neighbor the link points at
        Dir dir = Dir::XPlus; ///< outgoing direction
        bool exists = false;  ///< physically present in this shape
        u32 track = 0;        ///< dense trace-track index (exists only)
        Counter flits;        ///< flits forwarded over this link
        Counter busyCycles;   ///< cycles spent transmitting
        Counter stallCycles;  ///< ingress queueing behind earlier traffic
        Counter occFlitCycles; ///< integral of queued flits over time
        u64 occPeak = 0;      ///< peak ingress backlog in flits
    };

    explicit Fabric(const FabricConfig &cfg = FabricConfig{});

    const FabricConfig &config() const { return cfg_; }
    const Topology &topology() const { return topo_; }

    /**
     * Inject a @p bytes message from chip @p src to chip @p dst at
     * cycle @p now. Reserves every link of the DOR route (queueing
     * behind earlier traffic), segments messages above maxPacketBytes
     * into pipelined packets, and returns both the backpressure point
     * (accepted: when the source's first link drains) and the delivery
     * cycle. Self-addressed messages and bad endpoints are fatal; the
     * System layer converts them to guest errors first.
     */
    Delivery inject(Cycle now, u32 src, u32 dst, u32 bytes);

    /**
     * Retire in-flight flits delivered at or before cycle @p at, then
     * check the conservation ledger (structured fatal on violation).
     * arch::System calls this at every epoch boundary. An armed
     * mid-run fault map (atCycle > 0) is applied here the first time
     * at >= atCycle — epoch boundaries are identical across engines,
     * so the application point is deterministic.
     */
    void advance(Cycle at);

    /** Retire all in-flight flits (end of simulation). */
    void drain();

    // Flit conservation:
    //     injected == delivered + inFlight + dropped, always.
    u64 flitsInjected() const { return flitsInjected_; }
    u64 flitsDelivered() const { return flitsDelivered_; }
    u64 flitsInFlight() const { return flitsInFlight_; }
    u64 flitsDropped() const { return flitsDropped_; }

    u64 messages() const { return messages_.value(); }
    u64 bytesMoved() const { return bytesMoved_.value(); }
    u64 queueCycles() const { return queueCycles_.value(); }

    // Fault-tolerance telemetry.
    u64 rerouted() const { return rerouted_.value(); }
    u64 retransmits() const { return retransmits_.value(); }
    u64 retries() const { return retries_.value(); }
    u64 crcErrors() const { return crcErrors_.value(); }
    u64 unroutable() const { return unroutable_.value(); }

    /** Whether a fault map currently degrades this fabric (an armed
     *  mid-run map counts only once applied). */
    bool faultsActive() const { return faultsActive_; }

    /** The configured fault map (possibly not yet applied). */
    const FabricFaultMap &faultMap() const { return cfg_.faults; }

    // Per-link telemetry: all chip x direction slots, in
    // linkIndex(chip, dir) order; skip records with !exists.
    const std::vector<Link> &links() const { return links_; }

    /** Directed links that physically exist in this shape. */
    u32 numLinks() const { return numLinks_; }

    /** Trace track names ("link.<a>-><b>"), indexed by Link::track. */
    const std::vector<std::string> &linkTrackNames() const
    {
        return trackNames_;
    }

    // Per-(src, dst) chip-pair traffic matrices.
    u64 pairMessages(u32 src, u32 dst) const
    {
        return pairMessages_[pairIndex(src, dst)];
    }
    u64 pairBytes(u32 src, u32 dst) const
    {
        return pairBytes_[pairIndex(src, dst)];
    }
    u64 pairFlits(u32 src, u32 dst) const
    {
        return pairFlits_[pairIndex(src, dst)];
    }

    /**
     * Actual link crossings for the pair: sum over every transmission
     * attempt of flits x hops of the path taken. Equals
     * pairFlits x topology hops only while the fault map is empty —
     * detours and retransmissions both add crossings.
     */
    u64 pairLinkFlits(u32 src, u32 dst) const
    {
        return pairLinkFlits_[pairIndex(src, dst)];
    }

    // Packet-latency split: total == queue + wire, sample for sample.
    const Histogram &latencyTotal() const { return latencyTotal_; }
    const Histogram &latencyQueue() const { return latencyQueue_; }
    const Histogram &latencyWire() const { return latencyWire_; }

    /**
     * Attach a tracer for the "net" category: per-link packet slices
     * (flow-id argument), injection/delivery flow events, and per-link
     * occupancy counter tracks. The tracer must outlive the fabric.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    StatGroup &stats() { return stats_; }

  private:
    u32 linkIndex(u32 chip, Dir dir) const;
    size_t pairIndex(u32 src, u32 dst) const
    {
        return size_t(src) * cfg_.net.numChips() + dst;
    }
    void registerLinkStats();
    void checkConservation(Cycle at) const;
    void applyFaultMap();
    const std::vector<std::pair<u32, Dir>> &routeFor(u32 src, u32 dst);
    Delivery injectUnroutable(Cycle now, u32 src, u32 dst);
    bool drawCorrupt(u32 linkIdx, bool *escaped);
    Cycle backoff(u32 attempt) const;

    /**
     * Reserve the links of @p path for one transmission attempt of
     * @p bytes starting at @p start. Returns the flit count; fills
     * accepted/delivered and, when the fault map is active, the
     * corruption outcome of this attempt. With an empty fault map the
     * arithmetic is byte-for-byte the fault-free fabric's.
     */
    u64 transmit(Cycle start, const std::vector<std::pair<u32, Dir>> &path,
                 u32 bytes, u64 flow, Cycle *accepted, Cycle *delivered,
                 bool *corrupt, bool *escaped);

    FabricConfig cfg_;
    Topology topo_;
    std::vector<Cycle> linkFree_; ///< chip x direction reservation

    // Min-heap of in-flight transmissions for advance()/drain().
    // Dropped attempts (corrupted, NACKed) stay in flight until their
    // traversal completes, then retire into the dropped ledger.
    struct Flight
    {
        Cycle at = 0;
        u64 flits = 0;
        bool dropped = false;
        bool operator>(const Flight &o) const { return at > o.at; }
    };
    std::priority_queue<Flight, std::vector<Flight>,
                        std::greater<Flight>>
        inflight_;
    u64 flitsInjected_ = 0;
    u64 flitsDelivered_ = 0;
    u64 flitsInFlight_ = 0;
    u64 flitsDropped_ = 0;
    Cycle lastAdvance_ = 0; ///< anchor for the occupancy gauges

    std::vector<Link> links_;
    u32 numLinks_ = 0;
    std::vector<std::string> trackNames_;   ///< by Link::track
    std::vector<std::string> occTrackNames_; ///< counter-track names
    std::vector<u64> pairMessages_;
    std::vector<u64> pairBytes_;
    std::vector<u64> pairFlits_;
    std::vector<u64> pairLinkFlits_; ///< attempts x hops, per pair

    // Fault state, all indexed by linkIndex(chip, dir). Inactive
    // (faultsActive_ == false) leaves the hot inject path untouched.
    bool faultsActive_ = false;
    bool faultsArmed_ = false; ///< mid-run map waiting for atCycle
    std::vector<bool> deadLink_;
    std::vector<u32> flakyPpm_;
    std::vector<u32> escapePpm_;
    std::vector<u32> derate_;
    std::vector<u64> linkPktSeq_; ///< per-link corruption-draw stream

    // Route cache: pure function of (topology, fault map), rebuilt on
    // fault application. An empty cached path means unreachable.
    std::vector<std::vector<std::pair<u32, Dir>>> routeCache_;
    std::vector<u8> routeKnown_;
    std::vector<u8> pairRerouted_;

    // Sequence-number reorder buffer, modeled as a per-pair in-order
    // release clamp: retransmitted messages may finish traversal out
    // of order, but the receiver releases them in sequence order, so
    // per-(src,dst) FIFO delivery — which arch::System's payload-
    // before-flag protocol relies on — survives faults.
    std::vector<Cycle> pairInOrder_;

    Tracer *tracer_ = nullptr;
    u64 msgSeq_ = 0; ///< flow ids connecting injection to delivery

    StatGroup stats_;
    Counter messages_;
    Counter bytesMoved_;
    Counter queueCycles_;
    Counter flitsInjectedStat_;
    Counter flitsDeliveredStat_;
    Counter flitsDroppedStat_;
    Counter rerouted_;
    Counter retransmits_;
    Counter retries_;
    Counter crcErrors_;
    Counter unroutable_;
    Histogram latencyTotal_;
    Histogram latencyQueue_;
    Histogram latencyWire_;
};

} // namespace cyclops::net

#endif // CYCLOPS_NET_FABRIC_H
