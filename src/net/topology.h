/**
 * @file
 * Multi-chip interconnect (paper section 2.2).
 *
 * Each Cyclops chip provides six input and six output links that
 * directly connect chips in a three-dimensional mesh or torus; the
 * links are 16 bits wide at 500 MHz (1 GB/s each, 12 GB/s of I/O per
 * chip), and a seventh link attaches a host computer. Large systems
 * are built by replicating the chip in this regular pattern — the
 * cellular approach (the Blue Gene vision the paper cites).
 *
 * This module models message timing over the fabric: dimension-order
 * routing, cut-through packet forwarding, and per-link occupancy
 * (contention). It is deliberately standalone — the paper states the
 * multi-chip system is not its focus — but complete enough for the
 * multichip example and capacity studies.
 */

#ifndef CYCLOPS_NET_TOPOLOGY_H
#define CYCLOPS_NET_TOPOLOGY_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace cyclops::net
{

/** Output-port directions of one chip. */
enum class Dir : u8 { XPlus, XMinus, YPlus, YMinus, ZPlus, ZMinus, Host };

inline constexpr u32 kNumDirs = 6; ///< mesh/torus links (host separate)

/** Position of a chip in the 3-D grid. */
struct Coord
{
    u32 x = 0, y = 0, z = 0;
    bool operator==(const Coord &other) const = default;
};

/** How one directed fabric link is degraded. */
enum class LinkFaultKind : u8
{
    Dead,    ///< carries nothing; routing must detour around it
    Flaky,   ///< corrupts packets with probability flakyPpm / 1e6
    Derated, ///< bandwidth divided by derate (serialization stretched)
};

const char *linkFaultKindName(LinkFaultKind kind);

/** One degraded directed link (src chip -> neighbouring dst chip). */
struct LinkFault
{
    u32 src = 0;
    u32 dst = 0;
    LinkFaultKind kind = LinkFaultKind::Dead;

    /**
     * Flaky only: per-packet corruption probability in parts per
     * million (integer, so the draw is exact and deterministic), and
     * the conditional probability that a corruption escapes the
     * end-to-end checksum (silent data corruption instead of a NACK).
     */
    u32 flakyPpm = 0;
    u32 escapePpm = 0;

    /** Derated only: bandwidth divisor (>= 1). */
    u32 derate = 2;
};

/**
 * A set of link faults applied to a Fabric, either at construction
 * (atCycle == 0) or injected mid-run at the first epoch boundary at or
 * after atCycle. The map plus the topology fully determine routing and
 * every corruption draw, so faulty runs stay bit-reproducible.
 */
struct FabricFaultMap
{
    std::vector<LinkFault> links;
    u64 seed = 1;      ///< corruption-draw stream selector
    Cycle atCycle = 0; ///< 0 = degraded from the first cycle

    bool empty() const { return links.empty(); }
};

/** Topology configuration. */
struct NetConfig
{
    u32 dimX = 2, dimY = 2, dimZ = 2;
    bool torus = true;           ///< wraparound links (else mesh)
    u32 linkBytesPerCycle = 2;   ///< 16-bit links at the core clock
    u32 routerLatency = 4;       ///< cycles per hop through a switch
    u32 linkLatency = 1;         ///< wire cycles per hop
    u32 maxPacketBytes = 256;    ///< larger messages are segmented
    u64 clockHz = 500'000'000;

    u32 numChips() const { return dimX * dimY * dimZ; }
};

/**
 * Analytic interconnect model: DOR routing, hop counts, and
 * reservation-based link timing. The cycle-driven net::Fabric
 * (src/net/fabric.h) wraps this model and must agree with it exactly
 * at zero load — tests/test_fabric.cc enforces the identity.
 */
class Topology
{
  public:
    explicit Topology(const NetConfig &cfg = NetConfig{});

    const NetConfig &config() const { return cfg_; }

    u32 chipAt(Coord c) const;
    Coord coordOf(u32 chip) const;

    /**
     * Dimension-order (x, then y, then z) route from @p src to @p dst.
     * On a torus each dimension takes the shorter way around.
     * Returns the sequence of (chip, outgoing direction) hops.
     */
    std::vector<std::pair<u32, Dir>> route(u32 src, u32 dst) const;

    /** Number of hops between two chips under the routing above. */
    u32 hops(u32 src, u32 dst) const;

    /** Whether the directed link (chip, dir) physically exists: its
     *  axis extent is > 1, the chip is not at a mesh edge, and it is
     *  not the redundant minus wire of an extent-2 torus axis. */
    bool linkExists(u32 chip, Dir dir) const;

    /** Neighbour reached over (chip, dir); only valid if it exists. */
    u32 neighborOf(u32 chip, Dir dir) const;

    /**
     * Fault-aware minimal route: dimension order relaxed per hop.
     * At each chip the lowest dimension with remaining distance whose
     * productive link is alive is taken, so the path stays minimal
     * (every hop reduces the remaining hop count) and terminates.
     * @p dead is indexed chip * kNumDirs + dir. Returns an empty path
     * when some chip on the way has no productive live link — the
     * caller falls back to routeDetour().
     */
    std::vector<std::pair<u32, Dir>> routeAdaptive(
        u32 src, u32 dst, const std::vector<bool> &dead) const;

    /**
     * Non-minimal detour: breadth-first shortest path over the live
     * links only, visiting directions in enum order so the result is a
     * pure function of (topology, fault map). Returns an empty path
     * when @p dst is unreachable (the fault map partitions the torus).
     */
    std::vector<std::pair<u32, Dir>> routeDetour(
        u32 src, u32 dst, const std::vector<bool> &dead) const;

    /**
     * Send @p bytes from @p src to @p dst starting at cycle @p now.
     * Cut-through forwarding: latency = hops * (router + link) +
     * serialization of the payload, plus queueing on busy links.
     * Messages above maxPacketBytes are segmented and pipelined.
     *
     * @return the cycle the last byte arrives at @p dst.
     */
    Cycle send(Cycle now, u32 src, u32 dst, u32 bytes);

    /**
     * DMA over the host link of @p chip (the seventh link).
     * @return completion cycle.
     */
    Cycle hostTransfer(Cycle now, u32 chip, u32 bytes);

    /** Idealized uncontended latency for a payload (tests, planning). */
    Cycle uncontendedLatency(u32 src, u32 dst, u32 bytes) const;

    /** Aggregate bytes moved so far. */
    u64 bytesMoved() const { return bytesMoved_.value(); }

    StatGroup &stats() { return stats_; }

  private:
    u32 linkIndex(u32 chip, Dir dir) const;
    s32 step(u32 from, u32 to, u32 dim) const;

    NetConfig cfg_;
    std::vector<Cycle> linkFree_; ///< chip x direction occupancy
    std::vector<Cycle> hostFree_; ///< per-chip host link
    StatGroup stats_;
    Counter messages_;
    Counter bytesMoved_;
    Counter queueCycles_;
};

} // namespace cyclops::net

#endif // CYCLOPS_NET_TOPOLOGY_H
