/**
 * @file
 * Multi-chip interconnect (paper section 2.2).
 *
 * Each Cyclops chip provides six input and six output links that
 * directly connect chips in a three-dimensional mesh or torus; the
 * links are 16 bits wide at 500 MHz (1 GB/s each, 12 GB/s of I/O per
 * chip), and a seventh link attaches a host computer. Large systems
 * are built by replicating the chip in this regular pattern — the
 * cellular approach (the Blue Gene vision the paper cites).
 *
 * This module models message timing over the fabric: dimension-order
 * routing, cut-through packet forwarding, and per-link occupancy
 * (contention). It is deliberately standalone — the paper states the
 * multi-chip system is not its focus — but complete enough for the
 * multichip example and capacity studies.
 */

#ifndef CYCLOPS_NET_TOPOLOGY_H
#define CYCLOPS_NET_TOPOLOGY_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace cyclops::net
{

/** Output-port directions of one chip. */
enum class Dir : u8 { XPlus, XMinus, YPlus, YMinus, ZPlus, ZMinus, Host };

inline constexpr u32 kNumDirs = 6; ///< mesh/torus links (host separate)

/** Position of a chip in the 3-D grid. */
struct Coord
{
    u32 x = 0, y = 0, z = 0;
    bool operator==(const Coord &other) const = default;
};

/** Topology configuration. */
struct NetConfig
{
    u32 dimX = 2, dimY = 2, dimZ = 2;
    bool torus = true;           ///< wraparound links (else mesh)
    u32 linkBytesPerCycle = 2;   ///< 16-bit links at the core clock
    u32 routerLatency = 4;       ///< cycles per hop through a switch
    u32 linkLatency = 1;         ///< wire cycles per hop
    u32 maxPacketBytes = 256;    ///< larger messages are segmented
    u64 clockHz = 500'000'000;

    u32 numChips() const { return dimX * dimY * dimZ; }
};

/**
 * Analytic interconnect model: DOR routing, hop counts, and
 * reservation-based link timing. The cycle-driven net::Fabric
 * (src/net/fabric.h) wraps this model and must agree with it exactly
 * at zero load — tests/test_fabric.cc enforces the identity.
 */
class Topology
{
  public:
    explicit Topology(const NetConfig &cfg = NetConfig{});

    const NetConfig &config() const { return cfg_; }

    u32 chipAt(Coord c) const;
    Coord coordOf(u32 chip) const;

    /**
     * Dimension-order (x, then y, then z) route from @p src to @p dst.
     * On a torus each dimension takes the shorter way around.
     * Returns the sequence of (chip, outgoing direction) hops.
     */
    std::vector<std::pair<u32, Dir>> route(u32 src, u32 dst) const;

    /** Number of hops between two chips under the routing above. */
    u32 hops(u32 src, u32 dst) const;

    /**
     * Send @p bytes from @p src to @p dst starting at cycle @p now.
     * Cut-through forwarding: latency = hops * (router + link) +
     * serialization of the payload, plus queueing on busy links.
     * Messages above maxPacketBytes are segmented and pipelined.
     *
     * @return the cycle the last byte arrives at @p dst.
     */
    Cycle send(Cycle now, u32 src, u32 dst, u32 bytes);

    /**
     * DMA over the host link of @p chip (the seventh link).
     * @return completion cycle.
     */
    Cycle hostTransfer(Cycle now, u32 chip, u32 bytes);

    /** Idealized uncontended latency for a payload (tests, planning). */
    Cycle uncontendedLatency(u32 src, u32 dst, u32 bytes) const;

    /** Aggregate bytes moved so far. */
    u64 bytesMoved() const { return bytesMoved_.value(); }

    StatGroup &stats() { return stats_; }

  private:
    u32 linkIndex(u32 chip, Dir dir) const;
    s32 step(u32 from, u32 to, u32 dim) const;

    NetConfig cfg_;
    std::vector<Cycle> linkFree_; ///< chip x direction occupancy
    std::vector<Cycle> hostFree_; ///< per-chip host link
    StatGroup stats_;
    Counter messages_;
    Counter bytesMoved_;
    Counter queueCycles_;
};

} // namespace cyclops::net

#endif // CYCLOPS_NET_TOPOLOGY_H
