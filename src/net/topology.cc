#include "net/topology.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::net
{

const char *
linkFaultKindName(LinkFaultKind kind)
{
    switch (kind) {
    case LinkFaultKind::Dead: return "dead";
    case LinkFaultKind::Flaky: return "flaky";
    case LinkFaultKind::Derated: return "derated";
    }
    return "?";
}

Topology::Topology(const NetConfig &cfg) : cfg_(cfg)
{
    if (cfg.dimX == 0 || cfg.dimY == 0 || cfg.dimZ == 0)
        fatal("fabric dimensions must be nonzero");
    if (cfg.linkBytesPerCycle == 0 || cfg.maxPacketBytes == 0)
        fatal("fabric link parameters must be nonzero");
    linkFree_.assign(size_t(cfg.numChips()) * kNumDirs, 0);
    hostFree_.assign(cfg.numChips(), 0);
    stats_.addCounter("net.messages", &messages_);
    stats_.addCounter("net.bytes", &bytesMoved_);
    stats_.addCounter("net.queueCycles", &queueCycles_);
}

u32
Topology::chipAt(Coord c) const
{
    if (c.x >= cfg_.dimX || c.y >= cfg_.dimY || c.z >= cfg_.dimZ)
        fatal("coordinate (%u,%u,%u) outside the %ux%ux%u system", c.x,
              c.y, c.z, cfg_.dimX, cfg_.dimY, cfg_.dimZ);
    return (c.z * cfg_.dimY + c.y) * cfg_.dimX + c.x;
}

Coord
Topology::coordOf(u32 chip) const
{
    if (chip >= cfg_.numChips())
        fatal("no chip %u in a %u-chip system", chip, cfg_.numChips());
    Coord c;
    c.x = chip % cfg_.dimX;
    c.y = (chip / cfg_.dimX) % cfg_.dimY;
    c.z = chip / (cfg_.dimX * cfg_.dimY);
    return c;
}

s32
Topology::step(u32 from, u32 to, u32 dim) const
{
    if (from == to)
        return 0;
    if (!cfg_.torus)
        return to > from ? 1 : -1;
    // Torus: shorter way around; ties go plus.
    const s32 forward = s32((to + dim - from) % dim);
    const s32 backward = s32(dim) - forward;
    return forward <= backward ? 1 : -1;
}

std::vector<std::pair<u32, Dir>>
Topology::route(u32 src, u32 dst) const
{
    if (src >= cfg_.numChips() || dst >= cfg_.numChips())
        fatal("route endpoints outside the system");
    std::vector<std::pair<u32, Dir>> path;
    Coord at = coordOf(src);
    const Coord goal = coordOf(dst);

    auto walk = [&](u32 Coord::*axis, u32 dim, Dir plus, Dir minus) {
        while (at.*axis != goal.*axis) {
            const s32 dir = step(at.*axis, goal.*axis, dim);
            path.emplace_back(chipAt(at), dir > 0 ? plus : minus);
            at.*axis = u32((s32(at.*axis) + dir + s32(dim)) % s32(dim));
        }
    };
    walk(&Coord::x, cfg_.dimX, Dir::XPlus, Dir::XMinus);
    walk(&Coord::y, cfg_.dimY, Dir::YPlus, Dir::YMinus);
    walk(&Coord::z, cfg_.dimZ, Dir::ZPlus, Dir::ZMinus);
    return path;
}

u32
Topology::hops(u32 src, u32 dst) const
{
    return u32(route(src, dst).size());
}

u32
Topology::linkIndex(u32 chip, Dir dir) const
{
    return chip * kNumDirs + u32(dir);
}

bool
Topology::linkExists(u32 chip, Dir dir) const
{
    const u32 d = u32(dir);
    if (d >= kNumDirs)
        return false;
    const u32 extent[3] = {cfg_.dimX, cfg_.dimY, cfg_.dimZ};
    const Coord c = coordOf(chip);
    const u32 coord[3] = {c.x, c.y, c.z};
    const u32 axis = d / 2;
    const bool minus = (d % 2) != 0;
    if (extent[axis] <= 1)
        return false;
    if (!cfg_.torus && (minus ? coord[axis] == 0
                              : coord[axis] == extent[axis] - 1))
        return false;
    // On an extent-2 torus both directions reach the same neighbour
    // and step() breaks the tie toward plus: the minus wire never
    // carries traffic and does not exist as a distinct link.
    if (cfg_.torus && extent[axis] == 2 && minus)
        return false;
    return true;
}

u32
Topology::neighborOf(u32 chip, Dir dir) const
{
    const u32 d = u32(dir);
    const u32 extent[3] = {cfg_.dimX, cfg_.dimY, cfg_.dimZ};
    const u32 axis = d / 2;
    const bool minus = (d % 2) != 0;
    Coord c = coordOf(chip);
    u32 *coord[3] = {&c.x, &c.y, &c.z};
    *coord[axis] = minus
        ? (*coord[axis] + extent[axis] - 1) % extent[axis]
        : (*coord[axis] + 1) % extent[axis];
    return chipAt(c);
}

std::vector<std::pair<u32, Dir>>
Topology::routeAdaptive(u32 src, u32 dst,
                        const std::vector<bool> &dead) const
{
    if (src >= cfg_.numChips() || dst >= cfg_.numChips())
        fatal("route endpoints outside the system");
    std::vector<std::pair<u32, Dir>> path;
    Coord at = coordOf(src);
    const Coord goal = coordOf(dst);
    const u32 extent[3] = {cfg_.dimX, cfg_.dimY, cfg_.dimZ};
    static constexpr Dir kPlus[3] = {Dir::XPlus, Dir::YPlus, Dir::ZPlus};
    static constexpr Dir kMinus[3] = {Dir::XMinus, Dir::YMinus,
                                      Dir::ZMinus};

    while (!(at == goal)) {
        u32 cur[3] = {at.x, at.y, at.z};
        const u32 tgt[3] = {goal.x, goal.y, goal.z};
        bool moved = false;
        // Relaxed dimension order: lowest dimension with remaining
        // distance whose productive link is alive. Every hop still
        // reduces the remaining distance, so the walk terminates.
        for (u32 axis = 0; axis < 3 && !moved; ++axis) {
            if (cur[axis] == tgt[axis])
                continue;
            const s32 dir = step(cur[axis], tgt[axis], extent[axis]);
            const Dir out = dir > 0 ? kPlus[axis] : kMinus[axis];
            const u32 here = chipAt(at);
            if (!linkExists(here, out) || dead[linkIndex(here, out)])
                continue;
            path.emplace_back(here, out);
            cur[axis] = u32((s32(cur[axis]) + dir + s32(extent[axis])) %
                            s32(extent[axis]));
            at = Coord{cur[0], cur[1], cur[2]};
            moved = true;
        }
        if (!moved)
            return {}; // stuck: no minimal alternative from here
    }
    return path;
}

std::vector<std::pair<u32, Dir>>
Topology::routeDetour(u32 src, u32 dst,
                      const std::vector<bool> &dead) const
{
    if (src >= cfg_.numChips() || dst >= cfg_.numChips())
        fatal("route endpoints outside the system");
    const u32 chips = cfg_.numChips();
    constexpr u32 kUnvisited = ~0u;
    std::vector<u32> parent(chips, kUnvisited);
    std::vector<Dir> parentDir(chips, Dir::XPlus);
    std::vector<u32> frontier{src};
    parent[src] = src;
    for (size_t head = 0; head < frontier.size(); ++head) {
        const u32 here = frontier[head];
        if (here == dst)
            break;
        for (u32 d = 0; d < kNumDirs; ++d) {
            const Dir out = Dir(d);
            if (!linkExists(here, out) || dead[linkIndex(here, out)])
                continue;
            const u32 next = neighborOf(here, out);
            if (parent[next] != kUnvisited)
                continue;
            parent[next] = here;
            parentDir[next] = out;
            frontier.push_back(next);
        }
    }
    if (parent[dst] == kUnvisited)
        return {}; // partitioned: no live path at all
    std::vector<std::pair<u32, Dir>> path;
    for (u32 here = dst; here != src; here = parent[here])
        path.emplace_back(parent[here], parentDir[here]);
    std::reverse(path.begin(), path.end());
    return path;
}

Cycle
Topology::uncontendedLatency(u32 src, u32 dst, u32 bytes) const
{
    if (src == dst)
        return 0;
    const u32 h = hops(src, dst);
    const Cycle perHop = cfg_.routerLatency + cfg_.linkLatency;
    const Cycle serialization =
        (bytes + cfg_.linkBytesPerCycle - 1) / cfg_.linkBytesPerCycle;
    return Cycle(h) * perHop + serialization;
}

Cycle
Topology::send(Cycle now, u32 src, u32 dst, u32 bytes)
{
    if (bytes == 0)
        fatal("cannot send an empty message");
    ++messages_;
    bytesMoved_ += bytes;
    if (src == dst)
        return now;

    const auto path = route(src, dst);
    const Cycle perHop = cfg_.routerLatency + cfg_.linkLatency;

    Cycle delivered = now;
    u32 remaining = bytes;
    Cycle packetStart = now;
    while (remaining > 0) {
        const u32 packet = std::min(remaining, cfg_.maxPacketBytes);
        const Cycle serialization =
            (packet + cfg_.linkBytesPerCycle - 1) /
            cfg_.linkBytesPerCycle;
        // Cut-through: the header advances one hop per (router+link);
        // each traversed link is occupied for the serialization time
        // starting when the header reaches it.
        Cycle headArrives = packetStart;
        for (const auto &[chip, dir] : path) {
            Cycle &freeAt = linkFree_[linkIndex(chip, dir)];
            const Cycle start = std::max(headArrives, freeAt);
            queueCycles_ += start - headArrives;
            freeAt = start + serialization;
            headArrives = start + perHop;
        }
        delivered = headArrives + serialization;
        // Next packet can follow as soon as the first link drains.
        packetStart = packetStart + serialization;
        remaining -= packet;
    }
    return delivered;
}

Cycle
Topology::hostTransfer(Cycle now, u32 chip, u32 bytes)
{
    if (chip >= cfg_.numChips())
        fatal("no chip %u in the system", chip);
    if (bytes == 0)
        fatal("cannot transfer zero bytes on the host link");
    const Cycle serialization =
        (bytes + cfg_.linkBytesPerCycle - 1) / cfg_.linkBytesPerCycle;
    const Cycle start = std::max(now, hostFree_[chip]);
    queueCycles_ += start - now;
    hostFree_[chip] = start + serialization;
    bytesMoved_ += bytes;
    ++messages_;
    return start + serialization + cfg_.routerLatency;
}

} // namespace cyclops::net
