#include "net/topology.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::net
{

Topology::Topology(const NetConfig &cfg) : cfg_(cfg)
{
    if (cfg.dimX == 0 || cfg.dimY == 0 || cfg.dimZ == 0)
        fatal("fabric dimensions must be nonzero");
    if (cfg.linkBytesPerCycle == 0 || cfg.maxPacketBytes == 0)
        fatal("fabric link parameters must be nonzero");
    linkFree_.assign(size_t(cfg.numChips()) * kNumDirs, 0);
    hostFree_.assign(cfg.numChips(), 0);
    stats_.addCounter("net.messages", &messages_);
    stats_.addCounter("net.bytes", &bytesMoved_);
    stats_.addCounter("net.queueCycles", &queueCycles_);
}

u32
Topology::chipAt(Coord c) const
{
    if (c.x >= cfg_.dimX || c.y >= cfg_.dimY || c.z >= cfg_.dimZ)
        fatal("coordinate (%u,%u,%u) outside the %ux%ux%u system", c.x,
              c.y, c.z, cfg_.dimX, cfg_.dimY, cfg_.dimZ);
    return (c.z * cfg_.dimY + c.y) * cfg_.dimX + c.x;
}

Coord
Topology::coordOf(u32 chip) const
{
    if (chip >= cfg_.numChips())
        fatal("no chip %u in a %u-chip system", chip, cfg_.numChips());
    Coord c;
    c.x = chip % cfg_.dimX;
    c.y = (chip / cfg_.dimX) % cfg_.dimY;
    c.z = chip / (cfg_.dimX * cfg_.dimY);
    return c;
}

s32
Topology::step(u32 from, u32 to, u32 dim) const
{
    if (from == to)
        return 0;
    if (!cfg_.torus)
        return to > from ? 1 : -1;
    // Torus: shorter way around; ties go plus.
    const s32 forward = s32((to + dim - from) % dim);
    const s32 backward = s32(dim) - forward;
    return forward <= backward ? 1 : -1;
}

std::vector<std::pair<u32, Dir>>
Topology::route(u32 src, u32 dst) const
{
    if (src >= cfg_.numChips() || dst >= cfg_.numChips())
        fatal("route endpoints outside the system");
    std::vector<std::pair<u32, Dir>> path;
    Coord at = coordOf(src);
    const Coord goal = coordOf(dst);

    auto walk = [&](u32 Coord::*axis, u32 dim, Dir plus, Dir minus) {
        while (at.*axis != goal.*axis) {
            const s32 dir = step(at.*axis, goal.*axis, dim);
            path.emplace_back(chipAt(at), dir > 0 ? plus : minus);
            at.*axis = u32((s32(at.*axis) + dir + s32(dim)) % s32(dim));
        }
    };
    walk(&Coord::x, cfg_.dimX, Dir::XPlus, Dir::XMinus);
    walk(&Coord::y, cfg_.dimY, Dir::YPlus, Dir::YMinus);
    walk(&Coord::z, cfg_.dimZ, Dir::ZPlus, Dir::ZMinus);
    return path;
}

u32
Topology::hops(u32 src, u32 dst) const
{
    return u32(route(src, dst).size());
}

u32
Topology::linkIndex(u32 chip, Dir dir) const
{
    return chip * kNumDirs + u32(dir);
}

Cycle
Topology::uncontendedLatency(u32 src, u32 dst, u32 bytes) const
{
    if (src == dst)
        return 0;
    const u32 h = hops(src, dst);
    const Cycle perHop = cfg_.routerLatency + cfg_.linkLatency;
    const Cycle serialization =
        (bytes + cfg_.linkBytesPerCycle - 1) / cfg_.linkBytesPerCycle;
    return Cycle(h) * perHop + serialization;
}

Cycle
Topology::send(Cycle now, u32 src, u32 dst, u32 bytes)
{
    if (bytes == 0)
        fatal("cannot send an empty message");
    ++messages_;
    bytesMoved_ += bytes;
    if (src == dst)
        return now;

    const auto path = route(src, dst);
    const Cycle perHop = cfg_.routerLatency + cfg_.linkLatency;

    Cycle delivered = now;
    u32 remaining = bytes;
    Cycle packetStart = now;
    while (remaining > 0) {
        const u32 packet = std::min(remaining, cfg_.maxPacketBytes);
        const Cycle serialization =
            (packet + cfg_.linkBytesPerCycle - 1) /
            cfg_.linkBytesPerCycle;
        // Cut-through: the header advances one hop per (router+link);
        // each traversed link is occupied for the serialization time
        // starting when the header reaches it.
        Cycle headArrives = packetStart;
        for (const auto &[chip, dir] : path) {
            Cycle &freeAt = linkFree_[linkIndex(chip, dir)];
            const Cycle start = std::max(headArrives, freeAt);
            queueCycles_ += start - headArrives;
            freeAt = start + serialization;
            headArrives = start + perHop;
        }
        delivered = headArrives + serialization;
        // Next packet can follow as soon as the first link drains.
        packetStart = packetStart + serialization;
        remaining -= packet;
    }
    return delivered;
}

Cycle
Topology::hostTransfer(Cycle now, u32 chip, u32 bytes)
{
    if (chip >= cfg_.numChips())
        fatal("no chip %u in the system", chip);
    if (bytes == 0)
        fatal("cannot transfer zero bytes on the host link");
    const Cycle serialization =
        (bytes + cfg_.linkBytesPerCycle - 1) / cfg_.linkBytesPerCycle;
    const Cycle start = std::max(now, hostFree_[chip]);
    queueCycles_ += start - now;
    hostFree_[chip] = start + serialization;
    bytesMoved_ += bytes;
    ++messages_;
    return start + serialization + cfg_.routerLatency;
}

} // namespace cyclops::net
