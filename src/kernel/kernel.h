/**
 * @file
 * The resident system kernel model (paper section 3.1).
 *
 * The kernel supports single-user, single-program, multithreaded
 * applications. It exposes a single address space shared by all
 * threads; virtual addresses map directly to physical addresses (no
 * paging) and software threads map directly to hardware threads. No
 * preemption, scheduling or prioritization; every software thread gets
 * a fixed-size stack selected at boot, giving fast thread creation and
 * reuse. Two hardware threads are reserved for the system, leaving 126
 * for applications.
 *
 * Thread allocation policies (paper section 3.2.2):
 *  - Sequential (default): threads 0-3 on quad 0, 4-7 on quad 1, ...
 *  - Balanced: threads allocated cyclically over the quads (0, 32, 64,
 *    96 on quad 0; 1, 33, 65, 97 on quad 1; ...).
 */

#ifndef CYCLOPS_KERNEL_KERNEL_H
#define CYCLOPS_KERNEL_KERNEL_H

#include <vector>

#include "arch/chip.h"
#include "isa/program.h"

namespace cyclops::kernel
{

/** How software threads map onto hardware thread units. */
enum class AllocPolicy { Sequential, Balanced };

/**
 * Compute the hardware-thread order for a policy on a chip, excluding
 * reserved system threads and any TU that is not schedulable on a
 * degraded chip (dead TU, quad, I-cache or FPU).
 */
std::vector<ThreadId> threadOrder(const arch::Chip &chip,
                                  AllocPolicy policy);

/** The resident kernel controlling one chip in ISA mode. */
class Kernel
{
  public:
    explicit Kernel(arch::Chip &chip,
                    AllocPolicy policy = AllocPolicy::Sequential);

    /** Boot: load the program image and lay out stacks and heap. */
    void load(const isa::Program &program);

    /**
     * Create @p count software threads executing at @p entry.
     *
     * Register conventions at thread start:
     *   r1 = stack pointer (own-cache interest group, grows down)
     *   r4 = software thread index        r5 = thread count
     *   r6 = arg0                         r7 = arg1
     * The hardware thread id is readable via mfspr TID.
     */
    void spawn(u32 count, PhysAddr entry, u32 arg0 = 0, u32 arg1 = 0);

    /** Spawn at a program symbol. */
    void spawnAt(u32 count, const std::string &symbol, u32 arg0 = 0,
                 u32 arg1 = 0);

    /** Run to completion (all threads halt) or a cycle limit. */
    arch::RunExit run(Cycle maxCycles = kCycleNever);

    /** Hardware thread of software thread @p softIdx under the policy. */
    ThreadId hwThread(u32 softIdx) const;

    /** Number of threads an application may use. */
    u32 usableThreads() const { return u32(order_.size()); }

    /** First free physical address after program text+data. */
    PhysAddr heapBase() const { return heapBase_; }

    /** End of the heap region (stacks live above). */
    PhysAddr heapLimit() const { return heapLimit_; }

    /** Per-thread stack size; set before spawn (boot-time parameter). */
    void setStackBytes(u32 bytes);

    arch::Chip &chip() { return chip_; }

  private:
    arch::Chip &chip_;
    AllocPolicy policy_;
    std::vector<ThreadId> order_;
    u32 stackBytes_ = 4096;
    PhysAddr heapBase_ = 0;
    PhysAddr heapLimit_ = 0;
    bool loaded_ = false;
    u32 spawned_ = 0;
};

} // namespace cyclops::kernel

#endif // CYCLOPS_KERNEL_KERNEL_H
