/**
 * @file
 * Synchronization code generators for ISA-mode programs.
 *
 * Two barrier flavours, mirroring the paper's section 3.3 comparison:
 *  - HwBarrierAsm: the fast inter-thread hardware barrier through the
 *    wired-OR SPR (2 bits per barrier, roles swapped after each use);
 *  - SwBarrierAsm: a memory-based sense-reversing barrier built on the
 *    atomic fetch-and-add instruction.
 *
 * Both emit instruction sequences into a ProgramBuilder and keep their
 * state in caller-designated registers, so kernels can place barriers
 * inside loops.
 */

#ifndef CYCLOPS_KERNEL_SYNC_H
#define CYCLOPS_KERNEL_SYNC_H

#include "isa/builder.h"

namespace cyclops::kernel
{

/** Emits the hardware-barrier protocol (paper section 2.3). */
class HwBarrierAsm
{
  public:
    /**
     * @param barrierId which of the 4 hardware barriers to use
     * @param rCur,rNext,rMy,rTmp scratch registers dedicated to the
     *        protocol for the lifetime of the emitted code
     */
    HwBarrierAsm(u32 barrierId, u8 rCur, u8 rNext, u8 rMy, u8 rTmp);

    /** Arm participation: set the current-cycle bit (run once). */
    void emitArm(isa::ProgramBuilder &b) const;

    /** Enter the barrier and spin until all participants arrive. */
    void emitEnter(isa::ProgramBuilder &b) const;

    /** Withdraw from the barrier (clear both bits; run once at end). */
    void emitDisarm(isa::ProgramBuilder &b) const;

  private:
    u32 id_;
    u8 rCur_, rNext_, rMy_, rTmp_;
};

/** Emits a central sense-reversing software barrier on shared memory. */
class SwBarrierAsm
{
  public:
    /**
     * Allocates the counter and sense words in @p b's data section
     * (chip-wide interest group, so every thread contends for them).
     *
     * @param rSense,rTmp1,rTmp2 dedicated scratch registers
     */
    SwBarrierAsm(isa::ProgramBuilder &b, u8 rSense, u8 rTmp1, u8 rTmp2);

    /** Initialize the thread-local sense register (run once). */
    void emitInit(isa::ProgramBuilder &b) const;

    /**
     * Enter the barrier among @p rCount participants (a register
     * holding the thread count).
     */
    void emitEnter(isa::ProgramBuilder &b, u8 rCount) const;

    /** Physical address of the counter word (tests). */
    u32 counterAddr() const { return counterAddr_; }

  private:
    u32 counterAddr_;
    u32 senseAddr_;
    u8 rSense_, rTmp1_, rTmp2_;
};

} // namespace cyclops::kernel

#endif // CYCLOPS_KERNEL_SYNC_H
