/**
 * @file
 * A simple allocator over a region of simulated memory.
 *
 * The kernel exposes one flat address space; workloads and the
 * execution-driven frontend allocate their shared arrays here. Bump
 * allocation with explicit reset matches the paper's no-virtualization
 * system software; a small free list supports the few cases that
 * release buffers mid-run.
 */

#ifndef CYCLOPS_KERNEL_HEAP_H
#define CYCLOPS_KERNEL_HEAP_H

#include <map>

#include "common/types.h"

namespace cyclops::kernel
{

/** Allocator for a [base, limit) range of simulated physical memory. */
class Heap
{
  public:
    Heap() = default;
    Heap(PhysAddr base, PhysAddr limit) { init(base, limit); }

    /** (Re)initialize over a region; drops all previous allocations. */
    void init(PhysAddr base, PhysAddr limit);

    /**
     * Allocate @p bytes aligned to @p align (power of two). fatal()s
     * when the region is exhausted — the paper's chip has 8 MB and
     * workloads are sized to fit.
     */
    PhysAddr alloc(u32 bytes, u32 align = 8);

    /** Return a block to the allocator (coalescing free list). */
    void free(PhysAddr addr);

    /** Release everything allocated since init(). */
    void reset();

    /** Bytes remaining in the bump region. */
    u32 remaining() const { return limit_ - brk_; }

    PhysAddr base() const { return base_; }
    PhysAddr limit() const { return limit_; }

  private:
    PhysAddr base_ = 0;
    PhysAddr brk_ = 0;
    PhysAddr limit_ = 0;
    std::map<PhysAddr, u32> live_;    ///< addr -> size
    std::map<PhysAddr, u32> freeList_; ///< addr -> size (coalesced)
};

} // namespace cyclops::kernel

#endif // CYCLOPS_KERNEL_HEAP_H
