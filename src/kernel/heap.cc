#include "kernel/heap.h"

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::kernel
{

void
Heap::init(PhysAddr base, PhysAddr limit)
{
    if (limit < base)
        fatal("heap limit 0x%x below base 0x%x", limit, base);
    base_ = brk_ = base;
    limit_ = limit;
    live_.clear();
    freeList_.clear();
}

PhysAddr
Heap::alloc(u32 bytes, u32 align)
{
    if (!isPow2(align))
        fatal("heap alignment must be a power of two (got %u)", align);
    if (bytes == 0)
        bytes = align;

    // First fit from the free list.
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        const PhysAddr start = PhysAddr(roundUp(it->first, align));
        const u32 slack = start - it->first;
        if (it->second >= slack && it->second - slack >= bytes) {
            const PhysAddr blockAddr = it->first;
            const u32 blockSize = it->second;
            freeList_.erase(it);
            if (slack > 0)
                freeList_[blockAddr] = slack;
            const u32 tail = blockSize - slack - bytes;
            if (tail > 0)
                freeList_[start + bytes] = tail;
            live_[start] = bytes;
            return start;
        }
    }

    const PhysAddr start = PhysAddr(roundUp(brk_, align));
    if (u64(start) + bytes > limit_)
        fatal("simulated heap exhausted: want %u bytes, %u remain "
              "(the chip has only 8 MB of embedded memory)",
              bytes, remaining());
    brk_ = start + bytes;
    live_[start] = bytes;
    return start;
}

void
Heap::free(PhysAddr addr)
{
    auto it = live_.find(addr);
    if (it == live_.end())
        panic("free of unallocated address 0x%x", addr);
    u32 size = it->second;
    live_.erase(it);

    // Coalesce with neighbours.
    auto next = freeList_.lower_bound(addr);
    if (next != freeList_.end() && addr + size == next->first) {
        size += next->second;
        next = freeList_.erase(next);
    }
    if (next != freeList_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == addr) {
            prev->second += size;
            return;
        }
    }
    freeList_[addr] = size;
}

void
Heap::reset()
{
    brk_ = base_;
    live_.clear();
    freeList_.clear();
}

} // namespace cyclops::kernel
