#include "kernel/sync.h"

#include "arch/barrier_spr.h"
#include "arch/interest_group.h"
#include "common/log.h"
#include "isa/isa.h"

namespace cyclops::kernel
{

using isa::ProgramBuilder;

HwBarrierAsm::HwBarrierAsm(u32 barrierId, u8 rCur, u8 rNext, u8 rMy,
                           u8 rTmp)
    : id_(barrierId), rCur_(rCur), rNext_(rNext), rMy_(rMy), rTmp_(rTmp)
{
    if (barrierId >= arch::kNumHwBarriers)
        fatal("hardware barrier id %u out of range (4 barriers)",
              barrierId);
}

void
HwBarrierAsm::emitArm(ProgramBuilder &b) const
{
    // current-cycle bit and next-cycle bit masks for this barrier.
    b.li(rCur_, 1u << (2 * id_));
    b.li(rNext_, 1u << (2 * id_ + 1));
    // Participants initially set their current barrier cycle bit to 1.
    b.mv(rMy_, rCur_);
    b.mtspr(isa::kSprBarrier, rMy_);
}

void
HwBarrierAsm::emitEnter(ProgramBuilder &b) const
{
    // Atomically (a single SPR write) remove our contribution to the
    // current cycle and initialize the next cycle.
    b.emitR(isa::Opcode::Nor, rTmp_, rCur_, 0); // ~cur
    b.and_(rMy_, rMy_, rTmp_);
    b.or_(rMy_, rMy_, rNext_);
    b.mtspr(isa::kSprBarrier, rMy_);
    // Spin until the wired OR of the current bit drops to zero: all
    // threads have entered. Each thread spins on its own register, so
    // there is no contention for other chip resources.
    auto spin = b.newLabel();
    b.bind(spin);
    b.mfspr(rTmp_, isa::kSprBarrier);
    b.and_(rTmp_, rTmp_, rCur_);
    b.bne(rTmp_, 0, spin);
    // Roles are interchanged after each use of the barrier.
    b.xor_(rCur_, rCur_, rNext_);
    b.xor_(rNext_, rCur_, rNext_);
    b.xor_(rCur_, rCur_, rNext_);
}

void
HwBarrierAsm::emitDisarm(ProgramBuilder &b) const
{
    b.li(rMy_, 0);
    b.mtspr(isa::kSprBarrier, rMy_);
}

SwBarrierAsm::SwBarrierAsm(ProgramBuilder &b, u8 rSense, u8 rTmp1,
                           u8 rTmp2)
    : rSense_(rSense), rTmp1_(rTmp1), rTmp2_(rTmp2)
{
    // Counter and release flag live in distinct cache lines of the
    // chip-wide shared cache (the kernel default interest group).
    counterAddr_ = b.allocData(64, 64);
    senseAddr_ = b.allocData(64, 64);
}

void
SwBarrierAsm::emitInit(ProgramBuilder &b) const
{
    b.li(rSense_, 0);
}

void
SwBarrierAsm::emitEnter(ProgramBuilder &b, u8 rCount) const
{
    using arch::igAddr;
    using arch::kIgDefault;

    // local_sense = !local_sense
    b.emitI(isa::Opcode::Xori, rSense_, rSense_, 1);
    // old = fetch_add(counter, 1)
    b.li(rTmp1_, igAddr(kIgDefault, counterAddr_));
    b.li(rTmp2_, 1);
    b.amoadd(rTmp2_, rTmp1_, rTmp2_);
    b.addi(rTmp2_, rTmp2_, 1);

    auto last = b.newLabel();
    auto spin = b.newLabel();
    auto done = b.newLabel();
    b.beq(rTmp2_, rCount, last);
    // Waiters spin on the release flag written by the last arriver.
    b.bind(spin);
    b.li(rTmp1_, igAddr(kIgDefault, senseAddr_));
    b.lw(rTmp2_, 0, rTmp1_);
    b.bne(rTmp2_, rSense_, spin);
    b.jump(done);
    // The last thread resets the counter and releases everyone.
    b.bind(last);
    b.li(rTmp1_, igAddr(kIgDefault, counterAddr_));
    b.sw(0, 0, rTmp1_);
    b.sync();
    b.li(rTmp1_, igAddr(kIgDefault, senseAddr_));
    b.sw(rSense_, 0, rTmp1_);
    b.bind(done);
}

} // namespace cyclops::kernel
