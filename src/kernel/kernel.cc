#include "kernel/kernel.h"

#include "arch/thread_unit.h"
#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::kernel
{

std::vector<ThreadId>
threadOrder(const arch::Chip &chip, AllocPolicy policy)
{
    const ChipConfig &cfg = chip.config();
    const u32 tpq = cfg.threadsPerQuad;
    const u32 quads = cfg.numQuads();

    // The kernel reserves the last hardware threads for itself.
    const ThreadId firstReserved = cfg.numThreads - cfg.reservedThreads;

    std::vector<ThreadId> order;
    order.reserve(cfg.usableThreads());
    auto push = [&](ThreadId tid) {
        if (tid >= firstReserved)
            return;
        // Boot-time enumeration on a degraded chip: skip TUs that are
        // dead (TU/quad/I-cache) or whose quad lost its FPU, so every
        // workload runs unmodified with a dense logical thread space.
        if (!chip.tuSchedulable(tid))
            return;
        order.push_back(tid);
    };

    if (policy == AllocPolicy::Sequential) {
        for (ThreadId tid = 0; tid < cfg.numThreads; ++tid)
            push(tid);
    } else {
        for (u32 slot = 0; slot < tpq; ++slot)
            for (u32 quad = 0; quad < quads; ++quad)
                push(quad * tpq + slot);
    }
    return order;
}

Kernel::Kernel(arch::Chip &chip, AllocPolicy policy)
    : chip_(chip), policy_(policy)
{
    order_ = threadOrder(chip, policy);
}

void
Kernel::setStackBytes(u32 bytes)
{
    if (loaded_)
        fatal("stack size is a boot-time parameter; set it before load()");
    if (bytes < 256 || !isPow2(bytes))
        fatal("stack size must be a power of two >= 256 (got %u)", bytes);
    stackBytes_ = bytes;
}

void
Kernel::load(const isa::Program &program)
{
    if (loaded_)
        fatal("kernel already booted a program");
    loaded_ = true;
    chip_.loadProgram(program);

    const u32 memBytes = chip_.memsys().availableMemBytes();
    const u64 stackRegion = u64(stackBytes_) * chip_.config().numThreads;
    heapBase_ = u32(roundUp(
        std::max(program.textBase + program.textBytes(),
                 program.dataBase + u32(program.data.size())),
        64));
    if (stackRegion + heapBase_ > memBytes)
        fatal("stacks (%llu bytes) do not fit above the program image",
              static_cast<unsigned long long>(stackRegion));
    heapLimit_ = memBytes - u32(stackRegion);
}

ThreadId
Kernel::hwThread(u32 softIdx) const
{
    if (softIdx >= order_.size())
        fatal("software thread %u exceeds the %zu usable hardware "
              "threads", softIdx, order_.size());
    return order_[softIdx];
}

void
Kernel::spawn(u32 count, PhysAddr entry, u32 arg0, u32 arg1)
{
    if (!loaded_)
        fatal("spawn before load()");
    if (count > order_.size())
        fatal("cannot spawn %u threads: only %zu usable", count,
              order_.size());

    for (u32 i = 0; i < count; ++i) {
        const ThreadId tid = order_[i];
        // Stacks are per *hardware* thread, at the top of memory, and
        // carry the own-cache interest group so stack traffic stays in
        // the thread's local cache.
        const PhysAddr stackTop = chip_.memsys().availableMemBytes() -
                                  tid * stackBytes_;
        auto unit =
            std::make_unique<arch::ThreadUnit>(tid, chip_, entry);
        unit->setReg(isa::kStackReg,
                     arch::igAddr(arch::kIgOwn, stackTop));
        unit->setReg(4, i);
        unit->setReg(5, count);
        unit->setReg(6, arg0);
        unit->setReg(7, arg1);
        chip_.setUnit(tid, std::move(unit));
        chip_.activate(tid);
    }
    spawned_ += count;
}

void
Kernel::spawnAt(u32 count, const std::string &symbol, u32 arg0, u32 arg1)
{
    spawn(count, chip_.program().symbol(symbol), arg0, arg1);
}

arch::RunExit
Kernel::run(Cycle maxCycles)
{
    if (spawned_ == 0)
        fatal("run with no spawned threads");
    return chip_.run(maxCycles);
}

} // namespace cyclops::kernel
