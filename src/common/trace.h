/**
 * @file
 * Ring-buffer event tracer with Chrome trace-event JSON export.
 *
 * One Tracer instance belongs to one Chip, so concurrent simulations
 * (parallelSweep) never share tracer state. Events are recorded into a
 * preallocated ring of fixed-size PODs: recording performs no
 * allocation, and when a category is disabled the record call is a
 * single mask test. Event names must be string literals (the tracer
 * stores the pointer, not a copy).
 *
 * Export follows the Chrome trace-event format ("traceEvents" array of
 * phase "X"/"i"/"M" objects) so the output loads directly in Perfetto
 * or chrome://tracing. One simulated cycle is mapped to one
 * microsecond; thread-unit ids become per-process thread tracks.
 */

#ifndef CYCLOPS_COMMON_TRACE_H
#define CYCLOPS_COMMON_TRACE_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.h"

namespace cyclops
{

/** Runtime-toggled event categories, one bit each. */
enum class TraceCat : u8 {
    Mem = 0,     ///< memory-system accesses (loads/stores/atomics)
    Cache = 1,   ///< cache misses and refills
    Barrier = 2, ///< barrier entry/release
    Kernel = 3,  ///< traps and kernel services
    Sched = 4,   ///< thread activation/halt
    Host = 5,    ///< host-simulator telemetry spans (common/hostobs.h)
    Net = 6,     ///< fabric links: packet slices, flows, occupancy
};

inline constexpr u32 kNumTraceCats = 7;
extern const char *const kTraceCatNames[kNumTraceCats];

/** Bit for @p cat in a category mask. */
constexpr u8
traceBit(TraceCat cat)
{
    return static_cast<u8>(1u << static_cast<u8>(cat));
}

/** All categories enabled. */
inline constexpr u8 kTraceAll = (1u << kNumTraceCats) - 1;

/**
 * Parse a comma-separated category list ("mem,barrier", "all", "none",
 * "") into a mask. fatal() on an unknown category name.
 */
u8 parseTraceCats(const std::string &spec);

/**
 * One host-side trace event. Unlike guest events, timestamps are host
 * wall-clock nanoseconds (relative to a run-local base), because host
 * telemetry measures the simulator, not the simulated chip. Exported
 * on a second Chrome-trace process ("cyclops-host", pid 2) so Perfetto
 * shows guest and host timelines side by side without mixing their
 * time units.
 */
struct HostTraceEvent
{
    u64 tsNs;         ///< start, host ns since the run base
    u64 durNs;        ///< span length ('X'); ignored for 'C'
    const char *name; ///< static string; never freed
    u64 arg;          ///< span argument or counter value
    u32 track;        ///< host thread track (0 = engine, 1.. = lanes)
    u8 phase;         ///< 'X' complete or 'C' counter
};

/** Host events plus their track names, handed to the JSON exporter. */
struct HostTraceExport
{
    std::vector<HostTraceEvent> events;
    std::vector<std::string> tracks; ///< thread_name per track index
    u64 dropped = 0;                 ///< events past the buffer cap
};

class Tracer
{
  public:
    /** One recorded event; fixed-size, name must outlive the tracer. */
    struct Event {
        Cycle start;      ///< cycle the event begins
        Cycle dur;        ///< duration in cycles (0 for instants)
        const char *name; ///< static string; never freed
        u64 arg;          ///< one free-form argument ("arg" in JSON)
        u32 tid;          ///< thread-unit track
        u8 cat;           ///< TraceCat
        u8 phase;         ///< 'X' complete, 'i' instant, 'C' counter,
                          ///< 's'/'f' flow start/finish (arg = flow id)
    };

    /**
     * Set the enabled-category mask and ring capacity. Buffer space is
     * allocated here (once); a zero mask keeps the tracer disabled and
     * allocates nothing.
     */
    void configure(u8 mask, u32 capacity);

    /** True if @p cat is enabled (single load+test on the hot path). */
    bool on(TraceCat cat) const { return mask_ & traceBit(cat); }

    /** True if any category is enabled. */
    bool enabled() const { return mask_ != 0; }

    /** Record a complete event spanning [start, start+dur). */
    void
    complete(TraceCat cat, u32 tid, const char *name, Cycle start,
             Cycle dur, u64 arg = 0)
    {
        if (!on(cat))
            return;
        record({start, dur, name, arg, tid, static_cast<u8>(cat), 'X'});
    }

    /** Record an instantaneous event at @p at. */
    void
    instant(TraceCat cat, u32 tid, const char *name, Cycle at, u64 arg = 0)
    {
        if (!on(cat))
            return;
        record({at, 0, name, arg, tid, static_cast<u8>(cat), 'i'});
    }

    /**
     * Record a counter sample: @p name becomes a Perfetto counter
     * track (one track per distinct name within a process), stepping
     * to @p value at cycle @p at.
     */
    void
    counter(TraceCat cat, u32 tid, const char *name, Cycle at, u64 value)
    {
        if (!on(cat))
            return;
        record({at, 0, name, value, tid, static_cast<u8>(cat), 'C'});
    }

    /**
     * Record a flow start at @p at: Perfetto draws an arrow from the
     * slice enclosing this event to the matching flowEnd (same name,
     * category and @p id).
     */
    void
    flowBegin(TraceCat cat, u32 tid, const char *name, Cycle at, u64 id)
    {
        if (!on(cat))
            return;
        record({at, 0, name, id, tid, static_cast<u8>(cat), 's'});
    }

    /** Record the matching end of a flow started with flowBegin. */
    void
    flowEnd(TraceCat cat, u32 tid, const char *name, Cycle at, u64 id)
    {
        if (!on(cat))
            return;
        record({at, 0, name, id, tid, static_cast<u8>(cat), 'f'});
    }

    /** Number of events currently retained (<= capacity). */
    size_t size() const { return filled_ ? ring_.size() : next_; }

    /** Events that overwrote older ones once the ring filled. */
    u64 dropped() const { return dropped_; }

    /**
     * Retained events in chronological order (by start cycle, then tid,
     * then recording order). Not a hot-path call.
     */
    std::vector<Event> sorted() const;

    /**
     * Write the retained events as Chrome trace-event JSON. When
     * @p host is non-null its events are appended as a second process
     * ("cyclops-host") so one file carries both timelines.
     */
    void writeChromeJson(std::FILE *out, u32 numTracks,
                         const HostTraceExport *host = nullptr) const;

    /** Convenience: writeChromeJson to @p path; fatal() on I/O error. */
    void writeChromeJson(const std::string &path, u32 numTracks,
                         const HostTraceExport *host = nullptr) const;

    /**
     * Append the retained events as one Chrome-trace process @p pid
     * named @p processName: process_name/thread_name metadata plus the
     * sorted events, each record prefixed with ",\n" (the first omits
     * the comma when @p leadingComma is false). Emits no outer JSON
     * wrapper. Shared by writeChromeJson and the multi-chip merged
     * export (arch::System), which writes every chip's tracer into a
     * single file on its own pid. Thread tracks are named "tu<N>"
     * unless @p trackNames supplies explicit names (the fabric process
     * uses per-link names).
     */
    void writeChromeEvents(std::FILE *out, u32 pid,
                           const char *processName, u32 numTracks,
                           bool leadingComma,
                           const std::vector<std::string> *trackNames =
                               nullptr) const;

  private:
    void
    record(const Event &ev)
    {
        if (ring_.empty())
            return;
        if (filled_)
            ++dropped_;
        ring_[next_] = ev;
        if (++next_ == ring_.size()) {
            next_ = 0;
            filled_ = true;
        }
    }

    std::vector<Event> ring_;
    size_t next_ = 0;
    bool filled_ = false;
    u64 dropped_ = 0;
    u8 mask_ = 0;
};

} // namespace cyclops

#endif // CYCLOPS_COMMON_TRACE_H
