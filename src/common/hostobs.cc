#include "common/hostobs.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <thread>

#include <sys/resource.h>
#include <unistd.h>

#include "common/config.h"
#include "common/log.h"
#include "common/parallel.h"

namespace cyclops
{

u64
hostNowNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return u64(ts.tv_sec) * 1'000'000'000ull + u64(ts.tv_nsec);
}

u64
hostPeakRssKb()
{
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is KiB on Linux, bytes on some BSDs; Linux is the
    // supported host.
    return u64(ru.ru_maxrss);
}

u64
hostCurrentRssKb()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long vmPages = 0, rssPages = 0;
    const int got = std::fscanf(f, "%llu %llu", &vmPages, &rssPages);
    std::fclose(f);
    if (got != 2)
        return 0;
    const long pageBytes = sysconf(_SC_PAGESIZE);
    return u64(rssPages) * u64(pageBytes > 0 ? pageBytes : 4096) / 1024;
}

// --- HostObsSnapshot --------------------------------------------------------

void
HostObsSnapshot::add(const HostObsSnapshot &o)
{
    enabled = enabled || o.enabled;
    if (worker.empty()) {
        workers = o.workers;
        worker = o.worker;
    } else if (o.worker.size() == worker.size()) {
        for (size_t w = 0; w < worker.size(); ++w) {
            worker[w].busyNanos += o.worker[w].busyNanos;
            worker[w].waitNanos += o.worker[w].waitNanos;
            worker[w].epochs += o.worker[w].epochs;
            worker[w].ticks += o.worker[w].ticks;
            worker[w].defers += o.worker[w].defers;
            worker[w].quadPoisons += o.worker[w].quadPoisons;
        }
    }
    runWallNanos += o.runWallNanos;
    crewNanos += o.crewNanos;
    coordWaitNanos += o.coordWaitNanos;
    phaseBNanos += o.phaseBNanos;
    shardedCycles += o.shardedCycles;
    serialFallbackCycles += o.serialFallbackCycles;
    shardedTicks += o.shardedTicks;
    deferredCommits += o.deferredCommits;
    detailedCycles += o.detailedCycles;
    functionalCycles += o.functionalCycles;
    warmAccesses += o.warmAccesses;
    peakRssKb = std::max(peakRssKb, o.peakRssKb);
}

u64
HostObsSnapshot::workerBusyNanos() const
{
    u64 sum = 0;
    for (const Worker &w : worker)
        sum += w.busyNanos;
    return sum;
}

u64
HostObsSnapshot::workerTicks() const
{
    u64 sum = 0;
    for (const Worker &w : worker)
        sum += w.ticks;
    return sum;
}

u64
HostObsSnapshot::workerDefers() const
{
    u64 sum = 0;
    for (const Worker &w : worker)
        sum += w.defers;
    return sum;
}

u64
HostObsSnapshot::workerQuadPoisons() const
{
    u64 sum = 0;
    for (const Worker &w : worker)
        sum += w.quadPoisons;
    return sum;
}

u64
HostObsSnapshot::syncOverheadNanos() const
{
    const u64 busy = workerBusyNanos();
    return crewNanos > busy ? crewNanos - busy : 0;
}

double
HostObsSnapshot::tickImbalancePct() const
{
    if (worker.empty())
        return 0.0;
    u64 lo = worker[0].ticks, hi = worker[0].ticks, sum = 0;
    for (const Worker &w : worker) {
        lo = std::min(lo, w.ticks);
        hi = std::max(hi, w.ticks);
        sum += w.ticks;
    }
    if (sum == 0)
        return 0.0;
    const double mean = double(sum) / double(worker.size());
    return (double(hi) - double(lo)) / mean * 100.0;
}

// --- HostObs ----------------------------------------------------------------

void
HostObs::configure(bool enabled, u32 shardWorkers, bool traceHost)
{
    enabled_ = enabled;
    traceHost_ = enabled && traceHost;
    workers_ = shardWorkers;
    if (!enabled_)
        return;
    baseNs_ = hostNowNs();
    windowStartNs_ = 0;
    slots_.assign(std::max(workers_, 1u), WorkerSlot{});
    domainGuests_.assign(std::max(workers_, 1u), 0);
    export_.tracks.clear();
    export_.tracks.push_back("engine");
    for (u32 w = 0; w < workers_; ++w)
        export_.tracks.push_back(strprintf("lane%u", w));
    last_ = HostObsSnapshot{};
    last_.worker.assign(workers_, HostObsSnapshot::Worker{});

    stats_.addGauge("host.runWallNanos", [this] { return runWallNanos_; });
    stats_.addGauge("host.crewNanos", [this] { return crewNanos_; });
    stats_.addGauge("host.coordWaitNanos", [this] {
        return crew_ ? crew_->coordWaitNanos : 0;
    });
    stats_.addGauge("host.phaseBNanos", [this] { return phaseBNanos_; });
    stats_.addGauge("host.shardedCycles",
                    [this] { return shardedCycles_; });
    stats_.addGauge("host.serialFallbackCycles",
                    [this] { return serialFallbackCycles_; });
    stats_.addGauge("host.shardedTicks", [this] { return shardedTicks_; });
    stats_.addGauge("host.deferredCommits",
                    [this] { return deferredCommits_; });
    stats_.addGauge("host.detailedCycles",
                    [this] { return detailedCycles_; });
    stats_.addGauge("host.functionalCycles",
                    [this] { return functionalCycles_; });
    stats_.addGauge("host.warmAccesses", [this] { return warmAccesses_; });
    stats_.addGauge("host.peakRssKb", [] { return hostPeakRssKb(); });
    stats_.addGauge("host.rssKb", [] { return hostCurrentRssKb(); });
    for (u32 w = 0; w < workers_; ++w) {
        stats_.addGauge(strprintf("host.w%u.busyNanos", w),
                        [this, w] { return slots_[w].busyNanos; });
        stats_.addGauge(strprintf("host.w%u.waitNanos", w), [this, w] {
            if (!crew_)
                return u64(0);
            return w == 0 ? crew_->coordWaitNanos
                          : crew_->lanes[w].waitNanos;
        });
        stats_.addGauge(strprintf("host.w%u.epochs", w), [this, w] {
            if (!crew_)
                return u64(0);
            return w == 0 ? crew_->epochs : crew_->lanes[w].epochs;
        });
        stats_.addGauge(strprintf("host.w%u.ticks", w),
                        [this, w] { return slots_[w].ticks; });
        stats_.addGauge(strprintf("host.w%u.defers", w),
                        [this, w] { return slots_[w].defers; });
        stats_.addGauge(strprintf("host.w%u.quadPoisons", w),
                        [this, w] { return slots_[w].quadPoisons; });
        stats_.addGauge(strprintf("host.w%u.guests", w),
                        [this, w] { return domainGuests_[w]; });
    }
}

void
HostObs::setDomainGuests(const std::vector<u64> &counts)
{
    if (!enabled_)
        return;
    for (size_t w = 0; w < domainGuests_.size() && w < counts.size(); ++w)
        domainGuests_[w] = counts[w];
}

void
HostObs::addSampledSkip(u64 lo, u64 hi, u64 period, u64 detail)
{
    // Detailed cycles below x: full periods contribute `detail` each,
    // the partial period its clipped prefix.
    auto detailedBelow = [&](u64 x) {
        return (x / period) * detail + std::min(x % period, detail);
    };
    const u64 det = detailedBelow(hi) - detailedBelow(lo);
    detailedCycles_ += det;
    functionalCycles_ += (hi - lo) - det;
}

HostObsSnapshot
HostObs::snapshot() const
{
    HostObsSnapshot s;
    s.enabled = enabled_;
    if (!enabled_)
        return s;
    s.workers = workers_;
    s.worker.resize(workers_);
    for (u32 w = 0; w < workers_; ++w) {
        s.worker[w].busyNanos = slots_[w].busyNanos;
        s.worker[w].ticks = slots_[w].ticks;
        s.worker[w].defers = slots_[w].defers;
        s.worker[w].quadPoisons = slots_[w].quadPoisons;
        if (crew_) {
            if (w == 0) {
                s.worker[w].waitNanos = crew_->coordWaitNanos;
                s.worker[w].epochs = crew_->epochs;
            } else if (w < crew_->lanes.size()) {
                s.worker[w].waitNanos = crew_->lanes[w].waitNanos;
                s.worker[w].epochs = crew_->lanes[w].epochs;
            }
        }
    }
    s.runWallNanos = runWallNanos_;
    s.crewNanos = crewNanos_;
    s.coordWaitNanos = crew_ ? crew_->coordWaitNanos : 0;
    s.phaseBNanos = phaseBNanos_;
    s.shardedCycles = shardedCycles_;
    s.serialFallbackCycles = serialFallbackCycles_;
    s.shardedTicks = shardedTicks_;
    s.deferredCommits = deferredCommits_;
    s.detailedCycles = detailedCycles_;
    s.functionalCycles = functionalCycles_;
    s.warmAccesses = warmAccesses_;
    s.peakRssKb = hostPeakRssKb();
    return s;
}

void
HostObs::emitWindow(u64 nowNs)
{
    const HostObsSnapshot cur = snapshot();
    auto emit = [&](u32 track, const char *name, u64 ts, u64 dur, u64 arg,
                    u8 phase) {
        if (export_.events.size() >= kMaxEvents) {
            ++export_.dropped;
            return;
        }
        export_.events.push_back({ts, dur, name, arg, track, phase});
    };

    const u64 start = windowStartNs_;
    const u64 wall = nowNs > start ? nowNs - start : 0;
    if (wall > 0) {
        const u64 cyclesDelta = (cur.shardedCycles + cur.serialFallbackCycles +
                                 cur.detailedCycles + cur.functionalCycles) -
                                (last_.shardedCycles +
                                 last_.serialFallbackCycles +
                                 last_.detailedCycles +
                                 last_.functionalCycles);
        emit(0, "window", start, wall, cyclesDelta, 'X');
        const u64 crewDelta = cur.crewNanos - last_.crewNanos;
        const u64 phaseBDelta = cur.phaseBNanos - last_.phaseBNanos;
        if (crewDelta > 0)
            emit(0, "phaseA", start, crewDelta,
                 cur.shardedCycles - last_.shardedCycles, 'X');
        if (phaseBDelta > 0)
            emit(0, "phaseB", start + crewDelta, phaseBDelta,
                 cur.deferredCommits - last_.deferredCommits, 'X');
        emit(0, "defers", nowNs, 0, cur.workerDefers(), 'C');
        for (u32 w = 0; w < cur.workers && w < cur.worker.size(); ++w) {
            const HostObsSnapshot::Worker &c = cur.worker[w];
            const HostObsSnapshot::Worker &p =
                w < last_.worker.size() ? last_.worker[w]
                                        : HostObsSnapshot::Worker{};
            const u64 busy = c.busyNanos - p.busyNanos;
            const u64 wait = c.waitNanos - p.waitNanos;
            if (busy > 0)
                emit(w + 1, "busy", start, busy, c.ticks - p.ticks, 'X');
            if (wait > 0)
                emit(w + 1, "wait", start + busy, wait,
                     c.epochs - p.epochs, 'X');
        }
    }
    last_ = cur;
    windowStartNs_ = nowNs;
}

void
HostObs::serviceFlush()
{
    if (!traceHost_)
        return;
    emitWindow(sinceConfigureNs());
}

const HostTraceExport *
HostObs::traceExport()
{
    if (!traceHost_)
        return nullptr;
    emitWindow(sinceConfigureNs());
    return &export_;
}

// --- Run manifest -----------------------------------------------------------

const char *
gitDescribe()
{
#ifdef CYCLOPS_GIT_DESCRIBE
    return CYCLOPS_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strprintf("\\u%04x", c);
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeRunManifest(const std::string &path, const RunManifest &m)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open manifest output '%s'", path.c_str());

    char hostname[256] = "unknown";
    if (gethostname(hostname, sizeof(hostname)) != 0)
        std::strcpy(hostname, "unknown");
    hostname[sizeof(hostname) - 1] = '\0';

    const double cps =
        m.wallSeconds > 0 ? double(m.simCycles) / m.wallSeconds : 0.0;
    const double mips = m.wallSeconds > 0
                            ? double(m.instructions) / m.wallSeconds / 1e6
                            : 0.0;

    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"cyclops-manifest-v1\",\n"
                 "  \"tool\": \"%s\",\n"
                 "  \"workload\": \"%s\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"git\": \"%s\",\n"
                 "  \"host\": {\"name\": \"%s\", \"cores\": %u},\n",
                 jsonEscape(m.tool).c_str(), jsonEscape(m.workload).c_str(),
                 static_cast<unsigned long long>(m.seed),
                 jsonEscape(gitDescribe()).c_str(), jsonEscape(hostname).c_str(),
                 unsigned(std::thread::hardware_concurrency()));
    if (m.config) {
        const ChipConfig &c = *m.config;
        std::fprintf(
            f,
            "  \"config\": {\"hash\": \"%016llx\", \"engine\": \"%s\", "
            "\"engineWorkers\": %u, \"sampled\": %s, \"threads\": %u, "
            "\"threadsPerQuad\": %u, \"banks\": %u, \"clockHz\": %llu, "
            "\"hostObs\": %s},\n",
            static_cast<unsigned long long>(c.hash()),
            engineKindName(c.engine.kind), c.engine.workers,
            c.engine.sampled ? "true" : "false", c.numThreads,
            c.threadsPerQuad, c.numBanks,
            static_cast<unsigned long long>(c.clockHz),
            c.obs.hostObs ? "true" : "false");
    } else {
        std::fputs("  \"config\": null,\n", f);
    }
    std::fprintf(f,
                 "  \"run\": {\"simCycles\": %llu, \"instructions\": %llu, "
                 "\"wallSeconds\": %.6f, \"cyclesPerSec\": %.1f, "
                 "\"mips\": %.4f, \"exitReason\": \"%s\"},\n"
                 "  \"peakRssKb\": %llu\n"
                 "}\n",
                 static_cast<unsigned long long>(m.simCycles),
                 static_cast<unsigned long long>(m.instructions),
                 m.wallSeconds, cps, mips,
                 jsonEscape(m.exitReason).c_str(),
                 static_cast<unsigned long long>(hostPeakRssKb()));
    std::fclose(f);
}

} // namespace cyclops
