#include "common/trace.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops
{

const char *const kTraceCatNames[kNumTraceCats] = {
    "mem", "cache", "barrier", "kernel", "sched", "host", "net"};

u8
parseTraceCats(const std::string &spec)
{
    if (spec.empty() || spec == "none")
        return 0;
    if (spec == "all")
        return kTraceAll;
    u8 mask = 0;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string name = spec.substr(pos, comma - pos);
        bool found = false;
        for (u32 i = 0; i < kNumTraceCats; ++i) {
            if (name == kTraceCatNames[i]) {
                mask |= u8(1u << i);
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown trace category '%s' (valid: "
                  "mem,cache,barrier,kernel,sched,host,net,all,none)",
                  name.c_str());
        pos = comma + 1;
    }
    return mask;
}

void
Tracer::configure(u8 mask, u32 capacity)
{
    mask_ = mask;
    next_ = 0;
    filled_ = false;
    dropped_ = 0;
    ring_.clear();
    if (mask_ && capacity)
        ring_.resize(capacity);
}

std::vector<Tracer::Event>
Tracer::sorted() const
{
    std::vector<Event> out;
    out.reserve(size());
    if (filled_)
        out.insert(out.end(), ring_.begin() + next_, ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + next_);
    std::stable_sort(out.begin(), out.end(),
                     [](const Event &a, const Event &b) {
                         if (a.start != b.start)
                             return a.start < b.start;
                         return a.tid < b.tid;
                     });
    return out;
}

namespace
{

/**
 * Append @p host as a second Chrome-trace process (pid 2). Host
 * timestamps are wall-clock nanoseconds; the trace-event format wants
 * microseconds, so they are printed with sub-microsecond fractions.
 * Events are emitted sorted by timestamp within this pid (validated by
 * tools/check_trace.py per process).
 */
void
writeHostEvents(std::FILE *out, const HostTraceExport &host)
{
    std::fprintf(out,
                 ",\n    {\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": "
                 "\"process_name\", \"args\": {\"name\": \"cyclops-host\"}}");
    for (u32 t = 0; t < host.tracks.size(); ++t) {
        std::fprintf(out,
                     ",\n    {\"ph\": \"M\", \"pid\": 2, \"tid\": %u, "
                     "\"name\": \"thread_name\", \"args\": {\"name\": "
                     "\"%s\"}}",
                     t, host.tracks[t].c_str());
    }
    std::vector<HostTraceEvent> events = host.events;
    std::stable_sort(events.begin(), events.end(),
                     [](const HostTraceEvent &a, const HostTraceEvent &b) {
                         if (a.tsNs != b.tsNs)
                             return a.tsNs < b.tsNs;
                         // Larger spans first so same-start spans nest.
                         return a.durNs > b.durNs;
                     });
    for (const HostTraceEvent &ev : events) {
        if (ev.phase == 'X') {
            std::fprintf(out,
                         ",\n    {\"ph\": \"X\", \"pid\": 2, \"tid\": %u, "
                         "\"name\": \"%s\", \"cat\": \"host\", "
                         "\"ts\": %.3f, \"dur\": %.3f, "
                         "\"args\": {\"arg\": %llu}}",
                         ev.track, ev.name, double(ev.tsNs) / 1000.0,
                         double(ev.durNs) / 1000.0,
                         static_cast<unsigned long long>(ev.arg));
        } else {
            std::fprintf(out,
                         ",\n    {\"ph\": \"C\", \"pid\": 2, \"tid\": %u, "
                         "\"name\": \"%s\", \"cat\": \"host\", "
                         "\"ts\": %.3f, \"args\": {\"value\": %llu}}",
                         ev.track, ev.name, double(ev.tsNs) / 1000.0,
                         static_cast<unsigned long long>(ev.arg));
        }
    }
}

} // namespace

void
Tracer::writeChromeEvents(std::FILE *out, u32 pid,
                          const char *processName, u32 numTracks,
                          bool leadingComma,
                          const std::vector<std::string> *trackNames) const
{
    std::fprintf(out,
                 "%s    {\"ph\": \"M\", \"pid\": %u, \"tid\": 0, \"name\": "
                 "\"process_name\", \"args\": {\"name\": \"%s\"}}",
                 leadingComma ? ",\n" : "", pid, processName);
    for (u32 t = 0; t < numTracks; ++t) {
        const std::string name =
            trackNames && t < trackNames->size() ? (*trackNames)[t]
                                                 : strprintf("tu%u", t);
        std::fprintf(out,
                     ",\n    {\"ph\": \"M\", \"pid\": %u, \"tid\": %u, "
                     "\"name\": \"thread_name\", \"args\": {\"name\": "
                     "\"%s\"}}",
                     pid, t, name.c_str());
    }
    for (const Event &ev : sorted()) {
        const char *cat = kTraceCatNames[ev.cat];
        if (ev.phase == 'X') {
            std::fprintf(out,
                         ",\n    {\"ph\": \"X\", \"pid\": %u, \"tid\": %u, "
                         "\"name\": \"%s\", \"cat\": \"%s\", \"ts\": %llu, "
                         "\"dur\": %llu, \"args\": {\"arg\": %llu}}",
                         pid, ev.tid, ev.name, cat,
                         static_cast<unsigned long long>(ev.start),
                         static_cast<unsigned long long>(ev.dur),
                         static_cast<unsigned long long>(ev.arg));
        } else if (ev.phase == 'C') {
            std::fprintf(out,
                         ",\n    {\"ph\": \"C\", \"pid\": %u, \"tid\": %u, "
                         "\"name\": \"%s\", \"cat\": \"%s\", \"ts\": %llu, "
                         "\"args\": {\"value\": %llu}}",
                         pid, ev.tid, ev.name, cat,
                         static_cast<unsigned long long>(ev.start),
                         static_cast<unsigned long long>(ev.arg));
        } else if (ev.phase == 's' || ev.phase == 'f') {
            // Flow events bind to the slice enclosing (pid, tid, ts);
            // 'f' uses the enclosing-slice binding point so the arrow
            // lands on the delivery slice's end.
            std::fprintf(out,
                         ",\n    {\"ph\": \"%c\", \"pid\": %u, "
                         "\"tid\": %u, \"name\": \"%s\", \"cat\": \"%s\", "
                         "\"ts\": %llu, \"id\": %llu%s}",
                         ev.phase, pid, ev.tid, ev.name, cat,
                         static_cast<unsigned long long>(ev.start),
                         static_cast<unsigned long long>(ev.arg),
                         ev.phase == 'f' ? ", \"bp\": \"e\"" : "");
        } else {
            std::fprintf(out,
                         ",\n    {\"ph\": \"i\", \"pid\": %u, \"tid\": %u, "
                         "\"name\": \"%s\", \"cat\": \"%s\", \"ts\": %llu, "
                         "\"s\": \"t\", \"args\": {\"arg\": %llu}}",
                         pid, ev.tid, ev.name, cat,
                         static_cast<unsigned long long>(ev.start),
                         static_cast<unsigned long long>(ev.arg));
        }
    }
}

void
Tracer::writeChromeJson(std::FILE *out, u32 numTracks,
                        const HostTraceExport *host) const
{
    // ts/dur are microseconds in the trace-event format; we map one
    // simulated cycle to one microsecond so Perfetto's time axis reads
    // directly in cycles.
    std::fputs("{\n  \"displayTimeUnit\": \"ns\",\n"
               "  \"traceEvents\": [\n",
               out);
    writeChromeEvents(out, 1, "cyclops", numTracks, false);
    if (host)
        writeHostEvents(out, *host);
    std::fprintf(out,
                 "\n  ],\n  \"otherData\": {\"droppedEvents\": %llu, "
                 "\"droppedHostEvents\": %llu}\n}\n",
                 static_cast<unsigned long long>(dropped_),
                 static_cast<unsigned long long>(host ? host->dropped : 0));
}

void
Tracer::writeChromeJson(const std::string &path, u32 numTracks,
                        const HostTraceExport *host) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace output '%s'", path.c_str());
    writeChromeJson(f, numTracks, host);
    std::fclose(f);
}

} // namespace cyclops
