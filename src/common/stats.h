/**
 * @file
 * Lightweight statistics package.
 *
 * Components own Counter/Histogram members and register them with a
 * StatGroup so that a whole chip's statistics can be dumped or reset
 * uniformly. Deliberately minimal: no formulas, no callbacks in the hot
 * path — counters are plain 64-bit adds.
 */

#ifndef CYCLOPS_COMMON_STATS_H
#define CYCLOPS_COMMON_STATS_H

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/types.h"

namespace cyclops
{

/** A named monotonically increasing 64-bit counter. */
class Counter
{
  public:
    Counter() = default;

    void operator+=(u64 delta) { value_ += delta; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/** A simple power-of-two-bucketed latency histogram. */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 24;

    /** Record one sample. */
    void
    sample(u64 value)
    {
        // Bucket i holds values in [2^i, 2^(i+1)), i.e. floor(log2),
        // with 0 landing in bucket 0 and the top bucket open-ended.
        const unsigned bucket =
            value ? std::min(log2i(value), kBuckets - 1) : 0;
        ++counts_[bucket];
        sum_ += value;
        ++n_;
        if (value > max_)
            max_ = value;
    }

    u64 samples() const { return n_; }
    u64 sum() const { return sum_; }
    u64 max() const { return max_; }
    double mean() const { return n_ ? double(sum_) / double(n_) : 0.0; }
    u64 bucket(unsigned i) const { return i < kBuckets ? counts_[i] : 0; }

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        sum_ = n_ = max_ = 0;
    }

  private:
    u64 counts_[kBuckets] = {};
    u64 sum_ = 0;
    u64 n_ = 0;
    u64 max_ = 0;
};

/**
 * A registry of named statistics belonging to one component tree.
 *
 * Names are hierarchical ("dcache7.hits"). Registration stores pointers;
 * the owning objects must outlive the group.
 */
class StatGroup
{
  public:
    /** A derived statistic, evaluated on demand at dump/sample time. */
    using GaugeFn = std::function<u64()>;

    /** Register a counter under @p name. */
    void addCounter(const std::string &name, Counter *counter);

    /** Register a histogram under @p name. */
    void addHistogram(const std::string &name, Histogram *histogram);

    /** Register a gauge under @p name. Shares the counter namespace. */
    void addGauge(const std::string &name, GaugeFn fn);

    /** Reset every registered statistic to zero (gauges are derived). */
    void resetAll();

    /** Value of a registered counter or gauge; fatal() if unknown. */
    u64 counterValue(const std::string &name) const;

    /** Registered histogram by name; nullptr if unknown. */
    const Histogram *histogram(const std::string &name) const;

    /** All counters then gauges, in registration order (name, value). */
    std::vector<std::pair<std::string, u64>> counters() const;

    /** All registered histograms in registration order. */
    std::vector<std::pair<std::string, const Histogram *>> histograms() const;

    /**
     * Scalar column names (counters then gauges, registration order).
     * Stable across a chip's lifetime: registration happens only at
     * construction, so epoch samples share one header.
     */
    std::vector<std::string> scalarNames() const;

    /** Current scalar values in scalarNames() order, appended to @p out. */
    void sampleScalars(std::vector<u64> &out) const;

    /** Multi-line human-readable dump of all statistics. */
    std::string dump() const;

  private:
    std::vector<std::pair<std::string, Counter *>> counters_;
    std::vector<std::pair<std::string, Histogram *>> histograms_;
    std::vector<std::pair<std::string, GaugeFn>> gauges_;
    std::map<std::string, size_t> counterIndex_;
    std::map<std::string, size_t> gaugeIndex_;
    std::map<std::string, size_t> histogramIndex_;
};

} // namespace cyclops

#endif // CYCLOPS_COMMON_STATS_H
