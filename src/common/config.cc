#include "common/config.h"

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops
{

std::string
ObsConfig::expandPath(const std::string &path) const
{
    std::string out = path;
    size_t pos = 0;
    while ((pos = out.find("%t", pos)) != std::string::npos) {
        out.replace(pos, 2, tag);
        pos += tag.size();
    }
    return out;
}

void
ChipConfig::validate() const
{
    if (!isPow2(numThreads) || numThreads == 0)
        fatal("numThreads (%u) must be a nonzero power of two", numThreads);
    if (!isPow2(threadsPerQuad) || threadsPerQuad == 0 ||
        numThreads % threadsPerQuad != 0) {
        fatal("threadsPerQuad (%u) must be a power of two dividing "
              "numThreads (%u)", threadsPerQuad, numThreads);
    }
    if (quadsPerICache == 0 || numQuads() % quadsPerICache != 0)
        fatal("quadsPerICache (%u) must divide numQuads (%u)",
              quadsPerICache, numQuads());
    if (reservedThreads >= numThreads)
        fatal("reservedThreads (%u) must be < numThreads (%u)",
              reservedThreads, numThreads);

    if (!isPow2(dcacheLineBytes) || dcacheLineBytes < 8 ||
        dcacheLineBytes > 256)
        fatal("dcacheLineBytes (%u) must be a power of two in [8,256]",
              dcacheLineBytes);
    if (!isPow2(dcacheAssoc) || dcacheAssoc == 0 || dcacheAssoc > 8)
        fatal("dcacheAssoc (%u) must be 1, 2, 4 or 8 (\"up to 8-way\")",
              dcacheAssoc);
    if (dcacheBytes % (dcacheLineBytes * dcacheAssoc) != 0)
        fatal("dcacheBytes (%u) must be divisible by line*assoc",
              dcacheBytes);
    if (dcacheScratchWays >= dcacheAssoc)
        fatal("dcacheScratchWays (%u) must leave at least one cache way "
              "(assoc %u)", dcacheScratchWays, dcacheAssoc);
    if (dcacheMshrs == 0)
        fatal("dcacheMshrs must be nonzero");

    if (!isPow2(icacheLineBytes) || icacheLineBytes < 8)
        fatal("icacheLineBytes (%u) must be a power of two >= 8",
              icacheLineBytes);
    if (!isPow2(icacheAssoc) || icacheAssoc == 0)
        fatal("icacheAssoc (%u) must be a power of two", icacheAssoc);
    if (pibEntries == 0 || !isPow2(pibEntries))
        fatal("pibEntries (%u) must be a power of two", pibEntries);

    if (!isPow2(numBanks) || numBanks == 0)
        fatal("numBanks (%u) must be a nonzero power of two", numBanks);
    if (!isPow2(memBlockBytes) || memBlockBytes == 0)
        fatal("memBlockBytes (%u) must be a nonzero power of two",
              memBlockBytes);
    if (dcacheLineBytes % memBlockBytes != 0)
        fatal("dcacheLineBytes (%u) must be a multiple of memBlockBytes "
              "(%u)", dcacheLineBytes, memBlockBytes);
    if (physAddrBits == 0 || physAddrBits > 24)
        fatal("physAddrBits (%u) must be in [1,24]: the upper 8 bits of "
              "the 32-bit effective address carry the interest group",
              physAddrBits);
    if (memBytes() > (1u << physAddrBits))
        fatal("total memory (%u bytes) exceeds the physical address "
              "space (%u bits)", memBytes(), physAddrBits);

    if (maxOutstandingMem == 0)
        fatal("maxOutstandingMem must be nonzero");
    if (numRegs != 64)
        fatal("the Cyclops ISA defines 64 registers; numRegs=%u", numRegs);

    if (lat.memLocalMiss <= lat.memLocalHit ||
        lat.memRemoteHit <= lat.memLocalHit ||
        lat.memRemoteMiss <= lat.memRemoteHit) {
        fatal("memory latencies must be ordered: localHit < remoteHit "
              "< remoteMiss and localHit < localMiss");
    }
    if (lat.bankBurstBlockCycles > lat.bankBlockCycles)
        fatal("burst block service (%u) must not exceed the normal "
              "block service (%u)", lat.bankBurstBlockCycles,
              lat.bankBlockCycles);
}

} // namespace cyclops
