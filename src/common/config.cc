#include "common/config.h"

#include <algorithm>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops
{

std::string
ObsConfig::expandPath(const std::string &path) const
{
    std::string out = path;
    size_t pos = 0;
    while ((pos = out.find("%t", pos)) != std::string::npos) {
        out.replace(pos, 2, tag);
        pos += tag.size();
    }
    return out;
}

namespace
{

/** "" if every id in @p ids is below @p count, else an error message. */
std::string
checkIds(const std::vector<u32> &ids, u32 count, const char *what)
{
    for (u32 id : ids) {
        if (id >= count)
            return strprintf("fault.%s: no such component %u "
                             "(chip has %u)", what, id, count);
    }
    return "";
}

bool
contains(const std::vector<u32> &ids, u32 id)
{
    return std::find(ids.begin(), ids.end(), id) != ids.end();
}

} // namespace

std::string
ChipConfig::check() const
{
    if (!isPow2(numThreads) || numThreads == 0)
        return strprintf("numThreads (%u) must be a nonzero power of two",
                         numThreads);
    if (!isPow2(threadsPerQuad) || threadsPerQuad == 0 ||
        numThreads % threadsPerQuad != 0) {
        return strprintf("threadsPerQuad (%u) must be a power of two "
                         "dividing numThreads (%u)", threadsPerQuad,
                         numThreads);
    }
    if (quadsPerICache == 0 || numQuads() % quadsPerICache != 0)
        return strprintf("quadsPerICache (%u) must divide numQuads (%u)",
                         quadsPerICache, numQuads());
    if (reservedThreads >= numThreads)
        return strprintf("reservedThreads (%u) must be < numThreads (%u)",
                         reservedThreads, numThreads);

    if (!isPow2(dcacheLineBytes) || dcacheLineBytes < 8 ||
        dcacheLineBytes > 256)
        return strprintf("dcacheLineBytes (%u) must be a power of two "
                         "in [8,256]", dcacheLineBytes);
    if (!isPow2(dcacheAssoc) || dcacheAssoc == 0 || dcacheAssoc > 8)
        return strprintf("dcacheAssoc (%u) must be 1, 2, 4 or 8 "
                         "(\"up to 8-way\")", dcacheAssoc);
    if (dcacheBytes % (dcacheLineBytes * dcacheAssoc) != 0)
        return strprintf("dcacheBytes (%u) must be divisible by "
                         "line*assoc", dcacheBytes);
    if (dcacheScratchWays >= dcacheAssoc)
        return strprintf("dcacheScratchWays (%u) must leave at least one "
                         "cache way (assoc %u)", dcacheScratchWays,
                         dcacheAssoc);
    if (dcacheMshrs == 0)
        return "dcacheMshrs must be nonzero";

    if (!isPow2(icacheLineBytes) || icacheLineBytes < 8)
        return strprintf("icacheLineBytes (%u) must be a power of two "
                         ">= 8", icacheLineBytes);
    if (!isPow2(icacheAssoc) || icacheAssoc == 0)
        return strprintf("icacheAssoc (%u) must be a power of two",
                         icacheAssoc);
    if (pibEntries == 0 || !isPow2(pibEntries))
        return strprintf("pibEntries (%u) must be a power of two",
                         pibEntries);

    if (!isPow2(numBanks) || numBanks == 0)
        return strprintf("numBanks (%u) must be a nonzero power of two",
                         numBanks);
    if (!isPow2(memBlockBytes) || memBlockBytes == 0)
        return strprintf("memBlockBytes (%u) must be a nonzero power "
                         "of two", memBlockBytes);
    if (dcacheLineBytes % memBlockBytes != 0)
        return strprintf("dcacheLineBytes (%u) must be a multiple of "
                         "memBlockBytes (%u)", dcacheLineBytes,
                         memBlockBytes);
    if (physAddrBits == 0 || physAddrBits > 24)
        return strprintf("physAddrBits (%u) must be in [1,24]: the upper "
                         "8 bits of the 32-bit effective address carry "
                         "the interest group", physAddrBits);
    if (memBytes() > (1u << physAddrBits))
        return strprintf("total memory (%u bytes) exceeds the physical "
                         "address space (%u bits)", memBytes(),
                         physAddrBits);

    if (maxOutstandingMem == 0)
        return "maxOutstandingMem must be nonzero";
    if (numRegs != 64)
        return strprintf("the Cyclops ISA defines 64 registers; "
                         "numRegs=%u", numRegs);

    if (lat.memLocalMiss <= lat.memLocalHit ||
        lat.memRemoteHit <= lat.memLocalHit ||
        lat.memRemoteMiss <= lat.memRemoteHit) {
        return "memory latencies must be ordered: localHit < remoteHit "
               "< remoteMiss and localHit < localMiss";
    }
    if (lat.bankBurstBlockCycles > lat.bankBlockCycles)
        return strprintf("burst block service (%u) must not exceed the "
                         "normal block service (%u)",
                         lat.bankBurstBlockCycles, lat.bankBlockCycles);

    // --- Fault map ----------------------------------------------------
    std::string err;
    if (!(err = checkIds(fault.disabledTus, numThreads, "disabledTus"))
             .empty())
        return err;
    if (!(err = checkIds(fault.disabledQuads, numQuads(),
                         "disabledQuads")).empty())
        return err;
    if (!(err = checkIds(fault.disabledFpus, numFpus(), "disabledFpus"))
             .empty())
        return err;
    if (!(err = checkIds(fault.disabledDcaches, numCaches(),
                         "disabledDcaches")).empty())
        return err;
    if (!(err = checkIds(fault.disabledIcaches, numICaches(),
                         "disabledIcaches")).empty())
        return err;
    if (!(err = checkIds(fault.disabledBanks, numBanks,
                         "disabledBanks")).empty())
        return err;

    // At least one bank and one cache must survive: the memory fabric
    // cannot route with zero members.
    u32 deadBanks = 0;
    for (u32 b = 0; b < numBanks; ++b)
        deadBanks += contains(fault.disabledBanks, b);
    if (deadBanks >= numBanks)
        return "fault map disables every memory bank";
    u32 deadCaches = 0;
    for (u32 c = 0; c < numCaches(); ++c) {
        if (contains(fault.disabledDcaches, c) ||
            contains(fault.disabledQuads, c))
            ++deadCaches;
    }
    if (deadCaches >= numCaches())
        return "fault map disables every data cache";

    if (fault.cacheWays != 0) {
        if (fault.cacheWays > dcacheAssoc - dcacheScratchWays)
            return strprintf("fault.cacheWays (%u) exceeds the %u ways "
                             "available after scratch partitioning",
                             fault.cacheWays,
                             dcacheAssoc - dcacheScratchWays);
    }

    // --- Engine -------------------------------------------------------
    if (engine.workers > 256)
        return strprintf("engine.workers (%u) is absurd; max 256",
                         engine.workers);
    if (engine.shardGrain == 0)
        return "engine.shardGrain must be nonzero";
    if (engine.sampled) {
        if (engine.samplePeriod == 0)
            return "engine.samplePeriod must be nonzero when sampling";
        if (engine.sampleDetail == 0 ||
            engine.sampleDetail > engine.samplePeriod)
            return strprintf("engine.sampleDetail (%u) must be in "
                             "[1, samplePeriod=%u]", engine.sampleDetail,
                             engine.samplePeriod);
    }
    return "";
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
    case EngineKind::Serial: return "serial";
    case EngineKind::Sharded: return "sharded";
    }
    return "?";
}

bool
parseEngineKind(const char *name, EngineKind *out)
{
    if (std::strcmp(name, "serial") == 0) {
        *out = EngineKind::Serial;
        return true;
    }
    if (std::strcmp(name, "sharded") == 0) {
        *out = EngineKind::Sharded;
        return true;
    }
    return false;
}

void
ChipConfig::validate() const
{
    const std::string err = check();
    if (!err.empty())
        fatal("%s", err.c_str());
}

namespace
{

void
appendIds(std::string *out, const char *key, const std::vector<u32> &ids)
{
    if (ids.empty())
        return;
    std::vector<u32> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    *out += key;
    *out += '=';
    for (size_t i = 0; i < sorted.size(); ++i)
        *out += strprintf(i ? ",%u" : "%u", sorted[i]);
    *out += ';';
}

} // namespace

std::string
ChipConfig::describe() const
{
    std::string d;
    d.reserve(1024);
    d += strprintf(
        "threads=%u;tpq=%u;qpi=%u;rsvd=%u;"
        "dc=%u,%u,%u,%u,%u;ic=%u,%u,%u;pib=%u;"
        "banks=%u,%u,%u;pab=%u;offchip=%llu;"
        "outmem=%u;regs=%u;pibEn=%u;sanf=%u;burst=%u;clk=%llu;",
        numThreads, threadsPerQuad, quadsPerICache, reservedThreads,
        dcacheBytes, dcacheLineBytes, dcacheAssoc, dcacheScratchWays,
        dcacheMshrs, icacheBytes, icacheLineBytes, icacheAssoc,
        pibEntries, numBanks, bankBytes, memBlockBytes, physAddrBits,
        static_cast<unsigned long long>(offChipBytes), maxOutstandingMem,
        numRegs, pibEnabled, storeAllocNoFetch, burstEnabled,
        static_cast<unsigned long long>(clockHz));
    d += strprintf(
        "lat=%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,%u,"
        "%u,%u,%u,%u,%u,%u;",
        lat.branchExec, lat.intMulExec, lat.intMulLat, lat.intDivExec,
        lat.fpAddExec, lat.fpAddLat, lat.fpDivExec, lat.fpSqrtExec,
        lat.fmaExec, lat.fmaLat, lat.memLocalHit, lat.memLocalMiss,
        lat.memRemoteHit, lat.memRemoteMiss, lat.remoteReqHop,
        lat.remoteRespHop, lat.remoteMissExtra, lat.missToBank,
        lat.bankToCache, lat.bankBlockCycles, lat.bankBurstBlockCycles,
        lat.offChipBlockCycles, lat.icacheHitRefill, lat.sprLat);
    d += strprintf("latAtomic=%u;", lat.atomicExtra);
    appendIds(&d, "fTus", fault.disabledTus);
    appendIds(&d, "fQuads", fault.disabledQuads);
    appendIds(&d, "fFpus", fault.disabledFpus);
    appendIds(&d, "fDc", fault.disabledDcaches);
    appendIds(&d, "fIc", fault.disabledIcaches);
    appendIds(&d, "fBanks", fault.disabledBanks);
    if (fault.cacheWays != 0)
        d += strprintf("fWays=%u;", fault.cacheWays);
    if (engine.sampled)
        d += strprintf("sampled=%u,%u;", engine.samplePeriod,
                       engine.sampleDetail);
    return d;
}

u64
ChipConfig::hash() const
{
    const std::string d = describe();
    u64 h = 0xcbf29ce484222325ull;
    for (const char c : d) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace cyclops
