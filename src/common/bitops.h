/**
 * @file
 * Small bit-manipulation helpers used by the ISA encoder/decoder and the
 * address-mapping logic.
 */

#ifndef CYCLOPS_COMMON_BITOPS_H
#define CYCLOPS_COMMON_BITOPS_H

#include <bit>
#include <cmath>
#include <type_traits>

#include "common/types.h"

namespace cyclops
{

/** Extract bits [hi:lo] (inclusive) of @p value, right-justified. */
template <typename T>
constexpr T
bits(T value, unsigned hi, unsigned lo)
{
    static_assert(std::is_unsigned_v<T>);
    const unsigned width = hi - lo + 1;
    if (width >= sizeof(T) * 8)
        return value >> lo;
    return (value >> lo) & ((T(1) << width) - 1);
}

/** Insert @p field into bits [hi:lo] of a zero background. */
template <typename T>
constexpr T
insertBits(T field, unsigned hi, unsigned lo)
{
    static_assert(std::is_unsigned_v<T>);
    const unsigned width = hi - lo + 1;
    T mask = width >= sizeof(T) * 8 ? ~T(0) : ((T(1) << width) - 1);
    return (field & mask) << lo;
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr s64
sext(u64 value, unsigned width)
{
    const unsigned shift = 64 - width;
    return static_cast<s64>(value << shift) >> shift;
}

/** True if @p value is a power of two (zero excluded). */
constexpr bool
isPow2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)) for value >= 1; exact log2 for powers of two. */
constexpr unsigned
log2i(u64 value)
{
    return static_cast<unsigned>(std::bit_width(value) - 1);
}

/** Round @p value up to the next multiple of pow2 @p align. */
constexpr u64
roundUp(u64 value, u64 align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of pow2 @p align. */
constexpr u64
roundDown(u64 value, u64 align)
{
    return value & ~(align - 1);
}

/**
 * Double-to-int32 conversion with defined behaviour on every input
 * (the plain C++ cast is undefined outside [INT32_MIN, INT32_MAX]):
 * out-of-range values saturate, NaN converts to zero. Both the timing
 * frontend and the architectural reference interpreter use this, so
 * fcvtwd results are comparable bit-for-bit.
 */
inline s32
f64ToS32(double value)
{
    if (std::isnan(value))
        return 0;
    if (value >= 2147483647.0)
        return 2147483647;
    if (value <= -2147483648.0)
        return -2147483647 - 1;
    return static_cast<s32>(value);
}

/**
 * Deterministic 32-bit scrambling hash (finalizer of MurmurHash3).
 *
 * Used to pick a member cache inside an interest-group set; the paper
 * requires a completely deterministic function of the address that
 * utilizes all caches of the set uniformly.
 */
constexpr u32
scramble32(u32 x)
{
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    x *= 0xc2b2ae35u;
    x ^= x >> 16;
    return x;
}

} // namespace cyclops

#endif // CYCLOPS_COMMON_BITOPS_H
