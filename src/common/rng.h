/**
 * @file
 * Small, fast, deterministic random number generator (xoshiro256**).
 *
 * Workload generators and property tests must be reproducible across
 * platforms, so we avoid std::mt19937's header-dependent distributions
 * and provide our own uniform helpers.
 */

#ifndef CYCLOPS_COMMON_RNG_H
#define CYCLOPS_COMMON_RNG_H

#include "common/types.h"

namespace cyclops
{

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Lemire's multiply-shift rejection method.
        u64 x = next();
        unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
        u64 l = static_cast<u64>(m);
        if (l < bound) {
            u64 t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<unsigned __int128>(x) * bound;
                l = static_cast<u64>(m);
            }
        }
        return static_cast<u64>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    s64
    range(s64 lo, s64 hi)
    {
        return lo + static_cast<s64>(below(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static u64
    splitmix64(u64 &x)
    {
        u64 z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    u64 state_[4];
};

} // namespace cyclops

#endif // CYCLOPS_COMMON_RNG_H
