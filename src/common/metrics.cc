#include "common/metrics.h"

#include "common/log.h"

namespace cyclops
{

void
EpochSampler::configure(const StatGroup *stats, u32 intervalCycles)
{
    stats_ = stats;
    interval_ = intervalCycles;
    next_ = intervalCycles;
    droppedRows_ = 0;
    names_.clear();
    sampleCycles_.clear();
    data_.clear();
    if (enabled())
        names_ = stats_->scalarNames();
}

void
EpochSampler::record(Cycle at, bool force)
{
    if (rows() >= kMaxRows && !force) {
        ++droppedRows_;
        return;
    }
    sampleCycles_.push_back(at);
    // No reserve here: an exact-size reserve pins the capacity to the
    // current row and forces a full copy of the whole series on every
    // subsequent row — quadratic in the row count. push_back's
    // geometric growth keeps a 384-link series linear.
    stats_->sampleScalars(data_);
}

void
EpochSampler::finalize(Cycle now)
{
    if (!enabled())
        return;
    maybeSample(now);
    // The end-of-run row carries the run's final totals, so it must
    // survive the row cap (force): dropping it would make a capped
    // series end mid-run. finalize stays idempotent — once a row
    // exists at `now`, repeated calls add nothing.
    if (sampleCycles_.empty() || sampleCycles_.back() < now)
        record(now, /*force=*/true);
}

void
EpochSampler::writeCsv(std::FILE *out) const
{
    std::fputs("cycle", out);
    for (const std::string &name : names_)
        std::fprintf(out, ",%s", name.c_str());
    std::fputc('\n', out);
    for (u32 r = 0; r < rows(); ++r) {
        std::fprintf(out, "%llu",
                     static_cast<unsigned long long>(sampleCycles_[r]));
        for (u32 c = 0; c < names_.size(); ++c)
            std::fprintf(out, ",%llu",
                         static_cast<unsigned long long>(value(r, c)));
        std::fputc('\n', out);
    }
}

void
writeStatsJson(std::FILE *out, const StatGroup &stats, Cycle cycles,
               const EpochSampler *sampler, const StatGroup *host)
{
    std::fprintf(out, "{\n  \"cycles\": %llu,\n  \"counters\": {",
                 static_cast<unsigned long long>(cycles));
    bool first = true;
    for (const auto &[name, value] : stats.counters()) {
        std::fprintf(out, "%s\n    \"%s\": %llu", first ? "" : ",",
                     name.c_str(),
                     static_cast<unsigned long long>(value));
        first = false;
    }
    std::fputs("\n  },\n  \"histograms\": {", out);
    first = true;
    for (const auto &[name, h] : stats.histograms()) {
        std::fprintf(out,
                     "%s\n    \"%s\": {\"n\": %llu, \"sum\": %llu, "
                     "\"max\": %llu, \"buckets\": [",
                     first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(h->samples()),
                     static_cast<unsigned long long>(h->sum()),
                     static_cast<unsigned long long>(h->max()));
        for (unsigned b = 0; b < Histogram::kBuckets; ++b)
            std::fprintf(out, "%s%llu", b ? ", " : "",
                         static_cast<unsigned long long>(h->bucket(b)));
        std::fputs("]}", out);
        first = false;
    }
    std::fputs("\n  }", out);
    if (sampler && sampler->enabled()) {
        std::fputs(",\n  \"series\": ", out);
        writeSeriesJson(out, *sampler);
    }
    if (host) {
        std::fputs(",\n  \"hostObs\": {", out);
        first = true;
        for (const auto &[name, value] : host->counters()) {
            std::fprintf(out, "%s\n    \"%s\": %llu", first ? "" : ",",
                         name.c_str(),
                         static_cast<unsigned long long>(value));
            first = false;
        }
        std::fputs("\n  }", out);
    }
    std::fputs("\n}\n", out);
}

void
writeSeriesJson(std::FILE *out, const EpochSampler &sampler)
{
    std::fprintf(out, "{\n    \"interval\": %u,\n    \"cycle\": [",
                 sampler.interval());
    for (u32 r = 0; r < sampler.rows(); ++r)
        std::fprintf(
            out, "%s%llu", r ? ", " : "",
            static_cast<unsigned long long>(sampler.sampleCycles()[r]));
    std::fputs("],\n    \"counters\": {", out);
    bool first = true;
    for (u32 c = 0; c < sampler.names().size(); ++c) {
        std::fprintf(out, "%s\n      \"%s\": [", first ? "" : ",",
                     sampler.names()[c].c_str());
        for (u32 r = 0; r < sampler.rows(); ++r)
            std::fprintf(
                out, "%s%llu", r ? ", " : "",
                static_cast<unsigned long long>(sampler.value(r, c)));
        std::fputs("]", out);
        first = false;
    }
    std::fprintf(out, "\n    },\n    \"droppedRows\": %llu\n  }",
                 static_cast<unsigned long long>(sampler.droppedRows()));
}

} // namespace cyclops
