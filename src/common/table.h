/**
 * @file
 * ASCII table and CSV reporters used by the benchmark harness to print
 * paper-style result rows.
 */

#ifndef CYCLOPS_COMMON_TABLE_H
#define CYCLOPS_COMMON_TABLE_H

#include <string>
#include <vector>

namespace cyclops
{

/**
 * Accumulates rows of string cells and renders them as an aligned ASCII
 * table or as CSV.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header rule. */
    std::string ascii() const;

    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    std::string csv() const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Helper: format a double with @p digits decimals. */
    static std::string num(double value, int digits = 2);

    /** Helper: format an integer. */
    static std::string num(long long value);
    static std::string num(long value) { return num((long long)value); }
    static std::string num(unsigned long value)
    {
        return num((long long)value);
    }
    static std::string num(int value) { return num((long long)value); }
    static std::string num(unsigned value)
    {
        return num((long long)value);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cyclops

#endif // CYCLOPS_COMMON_TABLE_H
