#include "common/stats.h"

#include <sstream>

#include "common/log.h"

namespace cyclops
{

void
StatGroup::addCounter(const std::string &name, Counter *counter)
{
    if (counterIndex_.count(name) || gaugeIndex_.count(name))
        panic("duplicate counter registration: %s", name.c_str());
    counterIndex_[name] = counters_.size();
    counters_.emplace_back(name, counter);
}

void
StatGroup::addHistogram(const std::string &name, Histogram *histogram)
{
    if (histogramIndex_.count(name))
        panic("duplicate histogram registration: %s", name.c_str());
    histogramIndex_[name] = histograms_.size();
    histograms_.emplace_back(name, histogram);
}

void
StatGroup::addGauge(const std::string &name, GaugeFn fn)
{
    if (counterIndex_.count(name) || gaugeIndex_.count(name))
        panic("duplicate gauge registration: %s", name.c_str());
    gaugeIndex_[name] = gauges_.size();
    gauges_.emplace_back(name, std::move(fn));
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

u64
StatGroup::counterValue(const std::string &name) const
{
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return counters_[it->second].second->value();
    auto git = gaugeIndex_.find(name);
    if (git != gaugeIndex_.end())
        return gauges_[git->second].second();
    fatal("unknown counter: %s", name.c_str());
    return 0;
}

const Histogram *
StatGroup::histogram(const std::string &name) const
{
    auto it = histogramIndex_.find(name);
    return it == histogramIndex_.end() ? nullptr
                                       : histograms_[it->second].second;
}

std::vector<std::pair<std::string, u64>>
StatGroup::counters() const
{
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    for (const auto &[name, fn] : gauges_)
        out.emplace_back(name, fn());
    return out;
}

std::vector<std::pair<std::string, const Histogram *>>
StatGroup::histograms() const
{
    std::vector<std::pair<std::string, const Histogram *>> out;
    out.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        out.emplace_back(name, h);
    return out;
}

std::vector<std::string>
StatGroup::scalarNames() const
{
    std::vector<std::string> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto &[name, c] : counters_)
        out.push_back(name);
    for (const auto &[name, fn] : gauges_)
        out.push_back(name);
    return out;
}

void
StatGroup::sampleScalars(std::vector<u64> &out) const
{
    for (const auto &[name, c] : counters_)
        out.push_back(c->value());
    for (const auto &[name, fn] : gauges_)
        out.push_back(fn());
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters())
        os << strprintf("%-48s %20llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    for (const auto &[name, h] : histograms_) {
        os << strprintf("%-48s n=%llu mean=%.2f max=%llu\n", name.c_str(),
                        static_cast<unsigned long long>(h->samples()),
                        h->mean(),
                        static_cast<unsigned long long>(h->max()));
    }
    return os.str();
}

} // namespace cyclops
