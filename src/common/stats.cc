#include "common/stats.h"

#include <sstream>

#include "common/log.h"

namespace cyclops
{

void
StatGroup::addCounter(const std::string &name, Counter *counter)
{
    if (counterIndex_.count(name))
        panic("duplicate counter registration: %s", name.c_str());
    counterIndex_[name] = counters_.size();
    counters_.emplace_back(name, counter);
}

void
StatGroup::addHistogram(const std::string &name, Histogram *histogram)
{
    histograms_.emplace_back(name, histogram);
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

u64
StatGroup::counterValue(const std::string &name) const
{
    auto it = counterIndex_.find(name);
    if (it == counterIndex_.end())
        fatal("unknown counter: %s", name.c_str());
    return counters_[it->second].second->value();
}

const Histogram *
StatGroup::histogram(const std::string &name) const
{
    for (const auto &[histName, h] : histograms_)
        if (histName == name)
            return h;
    return nullptr;
}

std::vector<std::pair<std::string, u64>>
StatGroup::counters() const
{
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    return out;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << strprintf("%-48s %20llu\n", name.c_str(),
                        static_cast<unsigned long long>(c->value()));
    for (const auto &[name, h] : histograms_) {
        os << strprintf("%-48s n=%llu mean=%.2f max=%llu\n", name.c_str(),
                        static_cast<unsigned long long>(h->samples()),
                        h->mean(),
                        static_cast<unsigned long long>(h->max()));
    }
    return os.str();
}

} // namespace cyclops
