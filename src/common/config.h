/**
 * @file
 * Chip configuration: the parametrized architecture of the evaluated
 * Cyclops design point.
 *
 * Defaults reproduce Table 2 of the paper exactly:
 *
 *   Instruction type                        Execution   Latency
 *   Branches                                    2           0
 *   Integer multiplication                      1           5
 *   Integer divide                             33           0
 *   FP add, mult. and conversions               1           5
 *   FP divide (double)                         30           0
 *   FP square root (double)                    56           0
 *   FP multiply-and-add                         1           9
 *   Memory op (local cache hit)                 1           6
 *   Memory op (local cache miss)                1          24
 *   Memory op (remote cache hit)                1          17
 *   Memory op (remote cache miss)               1          36
 *   All other operations                        1           0
 *
 *   Threads   128   single issue, in-order, 500 MHz
 *   FPUs       32   1 add, 1 multiply, 1 divide/square root
 *   D-cache    32   16 KB, up to 8-way assoc., 64-byte lines
 *   I-cache    16   32 KB, 8-way assoc., 32-byte lines
 *   Memory     16   512 KB
 */

#ifndef CYCLOPS_COMMON_CONFIG_H
#define CYCLOPS_COMMON_CONFIG_H

#include <string>
#include <vector>

#include "common/types.h"

namespace cyclops
{

/**
 * Instruction and memory-path latencies, in cycles.
 *
 * "exec" is how long the issuing unit is busy; "lat" is the additional
 * delay until the result becomes available to dependent instructions.
 * Memory-path component latencies are chosen so that the *uncontended*
 * end-to-end latencies equal Table 2 (asserted by unit tests); queueing
 * at cache ports and memory banks adds on top under contention.
 */
struct LatencyConfig
{
    // Table 2, upper section.
    u32 branchExec = 2;
    u32 intMulExec = 1, intMulLat = 5;
    u32 intDivExec = 33;
    u32 fpAddExec = 1, fpAddLat = 5; ///< add, multiply, conversions
    u32 fpDivExec = 30;
    u32 fpSqrtExec = 56;
    u32 fmaExec = 1, fmaLat = 9;
    u32 memLocalHit = 6;
    u32 memLocalMiss = 24;
    u32 memRemoteHit = 17;
    u32 memRemoteMiss = 36;

    // Memory-path decomposition (see DESIGN.md section 5).
    u32 remoteReqHop = 5;   ///< TU -> remote cache through the cache switch
    u32 remoteRespHop = 6;  ///< remote cache -> TU response hop
    u32 remoteMissExtra = 1; ///< extra tag re-check on the remote miss path
    u32 missToBank = 6;     ///< cache -> memory switch -> bank request
    u32 bankToCache = 6;    ///< bank -> memory switch -> cache response

    // Memory bank service (peak 64 bytes every 12 cycles per bank).
    u32 bankBlockCycles = 6;      ///< 32-byte block service time
    u32 bankBurstBlockCycles = 5; ///< consecutive block, back-to-back
    u32 offChipBlockCycles = 512; ///< 1 KB block on the off-chip channel

    // Instruction path.
    u32 icacheHitRefill = 4; ///< PIB refill from an I-cache hit
    u32 sprLat = 2;          ///< mfspr result latency (wired-OR traversal)
    u32 atomicExtra = 2;     ///< read-modify-write adds to the load path
};

/**
 * Observability configuration: cycle-attribution export, event tracing
 * and epoch-sampled metrics. All default-off; none of the options may
 * change simulated timing (asserted by determinism tests).
 *
 * Output paths may contain "%t", replaced by @ref tag at write time so
 * sweep points running concurrently never share a file.
 */
struct ObsConfig
{
    u32 statsInterval = 0;     ///< epoch sample period in cycles (0 = off)
    u8 traceCats = 0;          ///< TraceCat bitmask (see common/trace.h)
    u32 traceCapacity = 65536; ///< ring-buffer capacity in events
    u32 profInterval = 0;      ///< PC-sample period in cycles (0 = off)
    bool hostObs = false;      ///< host-simulator telemetry
                               ///< (common/hostobs.h): engine wall-time
                               ///< split, crew wait times, RSS gauges
    std::string traceOut;      ///< Chrome-trace JSON path ("" = off)
    std::string statsJson;     ///< end-of-run stats JSON path ("" = off)
    std::string statsCsv;      ///< epoch-series CSV path ("" = off)
    std::string profOut;       ///< profile JSON path ("" = off); also
                               ///< writes <path>.folded and
                               ///< <path>.heatmap.csv
    std::string fabricStats;   ///< fabric stats JSON path ("" = off);
                               ///< multi-chip runs only (see DESIGN.md
                               ///< section 17)
    std::string fabricHeatmap; ///< link/pair congestion CSV ("" = off)
    std::string tag;           ///< substituted for "%t" in output paths

    bool
    anyOutput() const
    {
        return !traceOut.empty() || !statsJson.empty() ||
               !statsCsv.empty() || !profOut.empty() ||
               !fabricStats.empty() || !fabricHeatmap.empty();
    }

    /** @p path with every "%t" replaced by the tag. */
    std::string expandPath(const std::string &path) const;
};

/**
 * Fault model of one chip (paper section 5: the cellular argument is
 * that the system keeps running when individual cells are defective).
 *
 * The disabled-component lists describe a *degraded* chip, applied at
 * construction: dead cells are fused off before boot, and the kernel
 * enumerates what remains. Disabling a quad takes its four TUs, its
 * D-cache and its FPU; disabling an FPU only removes its quad's TUs
 * from kernel scheduling (the cache keeps serving interest groups);
 * disabling a D-cache leaves its TUs running with remapped locality;
 * disabling an I-cache starves its two quads of instruction supply, so
 * their TUs become unusable.
 *
 * watchdogCycles arms the chip-wide deadlock watchdog: if no TU makes
 * forward progress (see DESIGN.md section 13) for that many cycles,
 * Chip::run returns RunExit::Watchdog with a per-TU state dump.
 */
struct FaultConfig
{
    std::vector<u32> disabledTus;     ///< dead thread units
    std::vector<u32> disabledQuads;   ///< dead quads (TUs + cache + FPU)
    std::vector<u32> disabledFpus;    ///< dead FPUs (quad index)
    std::vector<u32> disabledDcaches; ///< dead data caches (quad index)
    std::vector<u32> disabledIcaches; ///< dead instruction caches
    std::vector<u32> disabledBanks;   ///< dead memory banks (MEMSZ remap)
    u32 cacheWays = 0;     ///< live data-cache ways per set (0 = all)
    u64 watchdogCycles = 4'000'000; ///< progress-free cycles before
                                    ///< the watchdog fires (0 = off)

    /** True if any component is disabled or ways are reduced. */
    bool
    anyDegraded() const
    {
        return !disabledTus.empty() || !disabledQuads.empty() ||
               !disabledFpus.empty() || !disabledDcaches.empty() ||
               !disabledIcaches.empty() || !disabledBanks.empty() ||
               cacheWays != 0;
    }
};

/** Which cycle engine advances the chip (see DESIGN.md section 14). */
enum class EngineKind : u8
{
    Serial,  ///< single host thread, the reference engine
    Sharded, ///< per-quad domains on host worker threads, bit-identical
};

const char *engineKindName(EngineKind kind);

/** Parse "serial"/"sharded" into @p out; false on unknown names. */
bool parseEngineKind(const char *name, EngineKind *out);

/**
 * Cycle-engine configuration: how the simulator advances the chip, not
 * what the chip is. None of these options may change simulated results
 * except @ref sampled, which trades timing fidelity for host speed
 * (bounded by the golden-figure tolerance; see DESIGN.md section 14).
 */
struct EngineConfig
{
    EngineKind kind = EngineKind::Serial;
    u32 workers = 0;    ///< sharded host workers (0 = all host cores)
    u32 shardGrain = 8; ///< min due units per cycle to fan out a cycle
    bool sampled = false; ///< fast-functional windows between detailed ones
    // Sampling defaults: a 25% duty cycle with windows long enough to
    // amortize the post-fast-window ramp-in transient. Shorter windows
    // at the same duty cycle measurably bias the figure sweeps.
    u32 samplePeriod = 16384; ///< sampling period in cycles
    u32 sampleDetail = 4096;  ///< detailed-window length within the period
};

/**
 * Structural configuration of one Cyclops chip.
 *
 * The architecture does not fix the number of components at each level
 * of the hierarchy; these defaults are the design point evaluated in the
 * paper. All counts must be powers of two.
 */
struct ChipConfig
{
    // --- Processing units --------------------------------------------
    u32 numThreads = 128;     ///< thread units on the chip
    u32 threadsPerQuad = 4;   ///< TUs sharing one FPU + one D-cache
    u32 quadsPerICache = 2;   ///< quads sharing one I-cache
    u32 reservedThreads = 2;  ///< TUs reserved for the resident kernel

    // --- Data caches --------------------------------------------------
    u32 dcacheBytes = 16 * 1024;
    u32 dcacheLineBytes = 64;
    u32 dcacheAssoc = 8;      ///< "variable associativity, up to 8-way"
    u32 dcacheScratchWays = 0; ///< 2 KB ways used as addressable memory
    u32 dcacheMshrs = 16;     ///< outstanding distinct line fills

    // --- Instruction caches -------------------------------------------
    u32 icacheBytes = 32 * 1024;
    u32 icacheLineBytes = 32; ///< Table 2 (the prose says 64; Table 2 rules)
    u32 icacheAssoc = 8;
    u32 pibEntries = 16;      ///< per-thread Prefetch Instruction Buffer

    // --- Memory ---------------------------------------------------------
    u32 numBanks = 16;
    u32 bankBytes = 512 * 1024;
    u32 memBlockBytes = 32;   ///< bank access unit
    u32 physAddrBits = 24;    ///< max addressable embedded memory: 16 MB
    u64 offChipBytes = 128ULL * 1024 * 1024; ///< optional, 128 MB - 2 GB

    // --- Per-thread microarchitecture ---------------------------------
    u32 maxOutstandingMem = 4; ///< in-flight memory ops per thread
    u32 numRegs = 64;          ///< 32-bit registers, pairable for doubles
    bool pibEnabled = true;
    bool storeAllocNoFetch = true; ///< allocate-without-fetch store misses
    bool burstEnabled = true;      ///< bank burst-transfer discount

    // --- Clock ----------------------------------------------------------
    u64 clockHz = 500'000'000; ///< 500 MHz

    LatencyConfig lat;
    ObsConfig obs;
    FaultConfig fault;
    EngineConfig engine;

    // Derived quantities ------------------------------------------------
    u32 numQuads() const { return numThreads / threadsPerQuad; }
    u32 numCaches() const { return numQuads(); }
    u32 numICaches() const { return numQuads() / quadsPerICache; }
    u32 numFpus() const { return numQuads(); }
    u32 memBytes() const { return numBanks * bankBytes; }
    u32 usableThreads() const { return numThreads - reservedThreads; }
    u32 dcacheLines() const { return dcacheBytes / dcacheLineBytes; }
    u32 dcacheSets() const { return dcacheLines() / dcacheAssoc; }

    /** Peak embedded-memory bandwidth in bytes/second. */
    double
    peakMemBandwidth() const
    {
        return static_cast<double>(numBanks) * 2 * memBlockBytes /
               (2.0 * lat.bankBlockCycles) * static_cast<double>(clockHz);
    }

    /** Peak aggregate cache-port bandwidth in bytes/second (8 B/cycle). */
    double
    peakCacheBandwidth() const
    {
        return static_cast<double>(numCaches()) * 8.0 *
               static_cast<double>(clockHz);
    }

    /**
     * Check invariants; returns the first violation as a message, or ""
     * for a well-formed configuration. Library code never terminates
     * the host on user input: CLI frontends print the message with
     * usage text and exit nonzero.
     */
    std::string check() const;

    /** check(), escalated: calls fatal() on a malformed configuration. */
    void validate() const;

    /**
     * Canonical "key=value;" description of every field that affects
     * simulated results: structure, latencies, microarchitecture
     * knobs, fault map, and the sampled-engine parameters when
     * sampling is on. Engine kind/workers and observability options
     * are excluded — they change host behavior only. Basis of hash().
     */
    std::string describe() const;

    /** FNV-1a 64-bit hash of describe(); the manifest config hash. */
    u64 hash() const;
};

} // namespace cyclops

#endif // CYCLOPS_COMMON_CONFIG_H
