/**
 * @file
 * Fundamental integer and simulation types shared by every module.
 */

#ifndef CYCLOPS_COMMON_TYPES_H
#define CYCLOPS_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace cyclops
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Simulated machine cycle (500 MHz clock in the evaluated design). */
using Cycle = u64;

/**
 * A 32-bit effective address. The upper 8 bits carry the interest-group
 * (cache placement) encoding; the lower 24 bits are the physical address.
 */
using Addr = u32;

/** The 24-bit physical address inside the embedded memory. */
using PhysAddr = u32;

/** Hardware thread-unit index (0..numThreads-1). */
using ThreadId = u32;

/** Data-cache index on the chip (0..numCaches-1). */
using CacheId = u32;

/** Memory-bank index (0..numBanks-1). */
using BankId = u32;

/** Sentinel for "no cycle scheduled". */
inline constexpr Cycle kCycleNever = ~Cycle(0);

} // namespace cyclops

#endif // CYCLOPS_COMMON_TYPES_H
