#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cyclops
{

namespace
{
// Atomic so concurrent Chip instances (parallel sweeps) may log while
// another host thread adjusts the verbosity.
std::atomic<LogLevel> gLevel{LogLevel::Normal};
} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

std::string
vstrprintf(va_list args, const char *fmt)
{
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
vstrprintf(const char *fmt, va_list args)
{
    return vstrprintf(args, fmt);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (gLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Normal)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
debugLog(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    std::fprintf(stderr, "debug: %s\n", s.c_str());
}

void
guestCheck(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    throw GuestError(GuestError::Kind::Check, s);
}

void
guestCrash(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(args, fmt);
    va_end(args);
    throw GuestError(GuestError::Kind::Crash, s);
}

} // namespace cyclops
