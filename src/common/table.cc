#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"

namespace cyclops
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table row arity %zu != header arity %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::ascii() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << (i ? "  " : "");
            os << row[i];
            os << std::string(width[i] - row[i].size(), ' ');
        }
        os << '\n';
    };
    emit(headers_);
    size_t total = 0;
    for (size_t i = 0; i < width.size(); ++i)
        total += width[i] + (i ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char c : cell) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (size_t i = 0; i < headers_.size(); ++i)
        os << (i ? "," : "") << quote(headers_[i]);
    os << '\n';
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << quote(row[i]);
        os << '\n';
    }
    return os.str();
}

std::string
Table::num(double value, int digits)
{
    return strprintf("%.*f", digits, value);
}

std::string
Table::num(long long value)
{
    return strprintf("%lld", value);
}

} // namespace cyclops
