/**
 * @file
 * Host-side observability: instrumentation of the simulator itself.
 *
 * The guest-facing observability stack (attribution, tracer, sampler,
 * profiler) answers "what did the simulated chip do"; this subsystem
 * answers "what did the simulator do" — where host wall-clock time
 * goes in the sharded cycle engine (phase-A work vs spin-barrier wait
 * vs serial phase-B commit), how the sampled engine splits cycles
 * between detailed and functional windows, and how much memory the
 * process peaked at. It exists because BENCH_simperf.json showed the
 * sharded engine losing to serial with no way to see why.
 *
 * Design rules, mirrored from ObsConfig:
 *  - default off; enabling it must never change simulated results
 *    (host counters live in their own StatGroup, host trace events on
 *    their own Chrome-trace process, so guest output stays
 *    byte-identical either way);
 *  - cheap when on: worker-side wall-clock reads bracket work that is
 *    microseconds long, never individual ticks.
 *
 * Also home to the versioned per-run manifest (RunManifest): one small
 * JSON per run with config hash, seed, engine, git describe, host info
 * and headline counters, so tools/check_regress.py can compare runs
 * across commits without scraping logs.
 */

#ifndef CYCLOPS_COMMON_HOSTOBS_H
#define CYCLOPS_COMMON_HOSTOBS_H

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"

namespace cyclops
{

struct ChipConfig;
struct CrewTelemetry;

/** Monotonic host clock, nanoseconds (vDSO-backed; ~20 ns per read). */
u64 hostNowNs();

/** Peak resident set size of this process in KiB (0 if unknown). */
u64 hostPeakRssKb();

/** Current resident set size of this process in KiB (0 if unknown). */
u64 hostCurrentRssKb();

/**
 * Copyable value snapshot of one chip's host telemetry. add() merges
 * snapshots from multiple runs (same worker count) so a workload made
 * of several Chip::run calls reports one aggregate.
 */
struct HostObsSnapshot
{
    struct Worker
    {
        u64 busyNanos = 0;   ///< wall time inside phase-A domain walks
        u64 waitNanos = 0;   ///< spin/yield time parked on the epoch
        u64 epochs = 0;      ///< crew epochs participated in
        u64 ticks = 0;       ///< phase-A tickLocal invocations
        u64 defers = 0;      ///< ticks that returned kTickDeferred
        u64 quadPoisons = 0; ///< first defer per (quad, cycle)
    };

    bool enabled = false;
    u32 workers = 0; ///< shard workers (0 = serial engine)
    std::vector<Worker> worker;

    u64 runWallNanos = 0;    ///< wall time inside Chip::run
    u64 crewNanos = 0;       ///< coordinator wall across phase-A fan-outs
    u64 coordWaitNanos = 0;  ///< coordinator spin on the done counter
    u64 phaseBNanos = 0;     ///< serial phase-B commit wall time
    u64 shardedCycles = 0;   ///< cycles that took the fan-out path
    u64 serialFallbackCycles = 0; ///< under-grain cycles ticked inline
    u64 shardedTicks = 0;    ///< canonical-order entries in fan-out cycles
    u64 deferredCommits = 0; ///< phase-B full ticks of deferred units

    u64 detailedCycles = 0;   ///< sampled engine: detailed-window cycles
    u64 functionalCycles = 0; ///< sampled engine: fast-window cycles
    u64 warmAccesses = 0;     ///< DCache::warmAccess calls in fast windows

    u64 peakRssKb = 0;

    /** Merge another snapshot (must agree on worker count or be empty). */
    void add(const HostObsSnapshot &o);

    u64 workerBusyNanos() const;  ///< sum of per-worker phase-A busy time
    u64 workerTicks() const;
    u64 workerDefers() const;
    u64 workerQuadPoisons() const;

    /** crewNanos minus phase-A busy time: dispatch + barrier overhead. */
    u64 syncOverheadNanos() const;

    /** (max - min) / mean of per-worker ticks, percent; 0 if uniform. */
    double tickImbalancePct() const;
};

/**
 * Per-chip host telemetry collector. Owned by Chip; all mutation
 * happens on the coordinator thread except the per-worker slots, which
 * are written only by their owning crew lane during a fan-out (the
 * crew's epoch/done counters give the coordinator acquire visibility
 * before it ever reads them).
 */
class HostObs
{
  public:
    /** Host trace-event buffer cap (events beyond this are dropped). */
    static constexpr size_t kMaxEvents = size_t(1) << 16;

    /**
     * Enable collection for a chip with @p shardWorkers crew lanes
     * (0 for the serial engine). @p traceHost additionally buffers
     * per-service-window host spans for Chrome-trace export.
     */
    void configure(bool enabled, u32 shardWorkers, bool traceHost);

    bool enabled() const { return enabled_; }
    bool tracing() const { return traceHost_; }

    /** Host ns since configure(); the host trace time base. */
    u64 sinceConfigureNs() const { return hostNowNs() - baseNs_; }

    /** Crew telemetry (wait times) to fold into snapshots and stats. */
    void setCrewTelemetry(const CrewTelemetry *telem) { crew_ = telem; }

    /** Per-domain guest-thread placement (exec-engine occupancy). */
    void setDomainGuests(const std::vector<u64> &counts);

    // --- Coordinator-side accumulation (cycle engine) -----------------

    struct alignas(64) WorkerSlot
    {
        u64 busyNanos = 0;
        u64 ticks = 0;
        u64 defers = 0;
        u64 quadPoisons = 0;
    };

    /** Lane @p w's slot; written only by that lane during phase A. */
    WorkerSlot &slot(u32 w) { return slots_[w]; }

    void addRunWallNanos(u64 ns) { runWallNanos_ += ns; }

    void
    addShardedCycle(u64 crewNs, u64 phaseBNs, u64 ticks, u64 deferred)
    {
        crewNanos_ += crewNs;
        phaseBNanos_ += phaseBNs;
        ++shardedCycles_;
        shardedTicks_ += ticks;
        deferredCommits_ += deferred;
    }

    void addSerialFallbackCycles(u64 n) { serialFallbackCycles_ += n; }

    void
    addSampledCycles(bool detailed, u64 n)
    {
        (detailed ? detailedCycles_ : functionalCycles_) += n;
    }

    /**
     * Account a fast-forward over [lo, hi) against the sampled-window
     * split: cycles c with (c % period) < detail are detailed.
     */
    void addSampledSkip(u64 lo, u64 hi, u64 period, u64 detail);

    void countWarmAccess() { ++warmAccesses_; }

    // --- Export -------------------------------------------------------

    /** Host statistics registry ("host."-prefixed gauges). */
    const StatGroup &stats() const { return stats_; }

    HostObsSnapshot snapshot() const;

    /**
     * Emit the current service window as host trace spans (engine
     * track plus one track per crew lane). Called from the cycle
     * engine's low-frequency service point; cheap and wall-clock only,
     * so it cannot perturb simulated timing.
     */
    void serviceFlush();

    /**
     * Flush the final partial window and hand the buffered host events
     * to the tracer exporter. Returns nullptr unless tracing.
     */
    const HostTraceExport *traceExport();

  private:
    void emitWindow(u64 nowNs);

    bool enabled_ = false;
    bool traceHost_ = false;
    u32 workers_ = 0;
    u64 baseNs_ = 0;
    const CrewTelemetry *crew_ = nullptr;

    std::vector<WorkerSlot> slots_;
    u64 runWallNanos_ = 0;
    u64 crewNanos_ = 0;
    u64 phaseBNanos_ = 0;
    u64 shardedCycles_ = 0;
    u64 serialFallbackCycles_ = 0;
    u64 shardedTicks_ = 0;
    u64 deferredCommits_ = 0;
    u64 detailedCycles_ = 0;
    u64 functionalCycles_ = 0;
    u64 warmAccesses_ = 0;
    std::vector<u64> domainGuests_;

    StatGroup stats_;

    // Host trace state: previous-window cumulative counters, so each
    // flush emits deltas as spans.
    HostTraceExport export_;
    u64 windowStartNs_ = 0;
    HostObsSnapshot last_;
};

/** RAII wall-clock scope charging its lifetime to HostObs::runWall. */
class HostRunTimer
{
  public:
    explicit HostRunTimer(HostObs *obs)
        : obs_(obs), t0_(obs ? hostNowNs() : 0)
    {
    }
    ~HostRunTimer()
    {
        if (obs_)
            obs_->addRunWallNanos(hostNowNs() - t0_);
    }
    HostRunTimer(const HostRunTimer &) = delete;
    HostRunTimer &operator=(const HostRunTimer &) = delete;

  private:
    HostObs *obs_;
    u64 t0_;
};

/**
 * One run's identity and headline numbers, serialized by
 * writeRunManifest as "cyclops-manifest-v1" JSON. Every field that
 * affects simulated results is captured by config->hash(); engine
 * choice and host facts ride along as explicit fields because they
 * affect wall-clock, not results.
 */
struct RunManifest
{
    std::string tool;     ///< producing binary ("cyclops-run", bench name)
    std::string workload; ///< program path or bench description
    u64 seed = 0;
    const ChipConfig *config = nullptr; ///< may be null (config-less tools)
    u64 simCycles = 0;
    u64 instructions = 0;
    double wallSeconds = 0.0;
    std::string exitReason; ///< "" when not applicable
};

/** Write @p m as JSON to @p path; fatal() on I/O error. */
void writeRunManifest(const std::string &path, const RunManifest &m);

/** Compile-time git describe string baked in by the build. */
const char *gitDescribe();

} // namespace cyclops

#endif // CYCLOPS_COMMON_HOSTOBS_H
