/**
 * @file
 * Host-side parallelism for independent simulation points.
 *
 * Every paper figure is a sweep of self-contained simulations (one
 * Chip per point), so the host can run them on N threads as long as
 * nothing mutable is shared between points. SimPool is a deliberately
 * simple pool: no work stealing, no futures — one shared atomic index
 * hands out points in order, and parallelSweep() collects results in
 * input order, so tables and CSV output are byte-identical to a
 * serial run regardless of the job count or scheduling.
 *
 * Determinism contract: the sweep function must depend only on its
 * input point (fresh Chip, no globals). The simulator honors this —
 * all chip state is owned by the Chip object; the only process-wide
 * mutable state is the log level (atomic, see common/log.cc).
 */

#ifndef CYCLOPS_COMMON_PARALLEL_H
#define CYCLOPS_COMMON_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace cyclops
{

/** A fixed-width pool of host worker threads for simulation sweeps. */
class SimPool
{
  public:
    /**
     * Create a pool running work on @p jobs host threads total (the
     * calling thread participates; jobs-1 workers are spawned).
     * jobs <= 1 means fully serial: forEach() runs inline and no
     * threads are created.
     */
    explicit SimPool(u32 jobs = 1);
    ~SimPool();

    SimPool(const SimPool &) = delete;
    SimPool &operator=(const SimPool &) = delete;

    /** Host threads this pool runs work on (>= 1). */
    u32 jobs() const { return jobs_; }

    /**
     * Run fn(i) once for every i in [0, count), distributed over the
     * pool; blocks until all indices completed. Not reentrant.
     */
    void forEach(size_t count, const std::function<void(size_t)> &fn);

    /**
     * Turn a user-requested job count into an effective one:
     * 0 means "all hardware threads", anything else is taken as-is.
     */
    static u32 resolveJobs(u32 requested);

    /**
     * Cumulative pool telemetry (host observability): how many batches
     * and items ran, total wall time inside items, and total wall time
     * batches were outstanding. itemNanos / items is the mean task
     * latency; itemNanos / batchNanos the pool's effective occupancy.
     */
    struct Telemetry
    {
        u64 batches = 0;    ///< forEach() calls that ran work
        u64 items = 0;      ///< task invocations completed
        u64 itemNanos = 0;  ///< summed wall time inside tasks
        u64 batchNanos = 0; ///< summed forEach() wall time
    };

    Telemetry telemetry() const;

  private:
    void workerMain();
    void runItems(const std::function<void(size_t)> &fn, size_t count);

    u32 jobs_ = 1;
    std::vector<std::thread> workers_;
    u64 batches_ = 0;    ///< caller-side, guarded by forEach serialization
    u64 batchNanos_ = 0;
    std::atomic<u64> items_{0};
    std::atomic<u64> itemNanos_{0};

    std::mutex mu_;
    std::condition_variable wake_; ///< workers: a new task is posted
    std::condition_variable done_; ///< caller: all workers checked in
    const std::function<void(size_t)> *task_ = nullptr; // guarded by mu_
    size_t taskCount_ = 0;                              // guarded by mu_
    u64 generation_ = 0;                                // guarded by mu_
    u32 checkedIn_ = 0;                                 // guarded by mu_
    bool stop_ = false;                                 // guarded by mu_
    std::atomic<size_t> next_{0}; ///< index dispenser for the live task
};

/**
 * A spin-synchronized crew of host threads for the sharded cycle
 * engine's per-cycle fan-out (see DESIGN.md section 14).
 *
 * SimPool's mutex/condvar handshake costs microseconds per dispatch —
 * fine for whole-simulation sweep points, hopeless for a fan-out every
 * simulated cycle. ShardCrew instead parks workers on a spinning
 * epoch counter: run() publishes work with one release-increment and
 * waits for a done-counter, so a round trip is a few hundred
 * nanoseconds when the crew is hot.
 *
 * The calling thread participates as worker 0; workers-1 host threads
 * are spawned. run() invokes fn(w) for every worker index w in
 * [0, workers) and returns after all complete. Memory ordering: writes
 * made by the caller before run() are visible to every worker, and
 * writes made by workers inside fn are visible to the caller after
 * run() returns (release/acquire on the epoch and done counters).
 *
 * Exceptions thrown inside fn are captured and rethrown from run() on
 * the calling thread (lowest worker index wins), after all workers
 * have finished the epoch.
 */
/**
 * Optional crew wait-time telemetry (host observability). One Lane per
 * worker index; lane w is written only by worker w (cache-line
 * separated), coordWaitNanos and epochs only by the coordinator, so
 * collection is race-free without atomics: the crew's existing
 * epoch/done release-acquire pairs order every write against the
 * coordinator's reads between epochs.
 */
struct CrewTelemetry
{
    struct alignas(64) Lane
    {
        u64 waitNanos = 0; ///< spin/yield time parked on the epoch
        u64 epochs = 0;    ///< epochs this lane ran
    };

    std::vector<Lane> lanes;
    u64 coordWaitNanos = 0; ///< coordinator spin on the done counter
    u64 epochs = 0;         ///< epochs dispatched
};

class ShardCrew
{
  public:
    /** Spawn a crew of @p workers total lanes (>= 1). */
    explicit ShardCrew(u32 workers);
    ~ShardCrew();

    ShardCrew(const ShardCrew &) = delete;
    ShardCrew &operator=(const ShardCrew &) = delete;

    u32 workers() const { return workers_; }

    /**
     * Attach wait-time telemetry (resized to the crew width). Must be
     * called before the first run(); workers pick the pointer up with
     * an acquire load so the handoff is race-free. Null detaches.
     */
    void setTelemetry(CrewTelemetry *telem);

    /** Run fn(w) for every w in [0, workers); blocks until all done. */
    void run(const std::function<void(u32)> &fn);

  private:
    void workerMain(u32 w);
    void runEpoch(u32 w, const std::function<void(u32)> *fn);

    u32 workers_ = 1;
    u32 spinLimit_ = 4096; ///< 0 on oversubscribed hosts: yield at once
    std::vector<std::thread> threads_;
    const std::function<void(u32)> *fn_ = nullptr; ///< published by epoch_
    bool stop_ = false;                            ///< published by epoch_
    std::vector<std::exception_ptr> errors_;       ///< one slot per worker
    std::atomic<CrewTelemetry *> telem_{nullptr};
    alignas(64) std::atomic<u64> epoch_{0};
    alignas(64) std::atomic<u32> done_{0};
};

/**
 * Run @p fn over every element of @p points on @p pool and return the
 * results in input order. The function may return any copyable value.
 */
template <typename Point, typename Fn>
auto
parallelSweep(SimPool &pool, const std::vector<Point> &points, Fn fn)
    -> std::vector<decltype(fn(points[0]))>
{
    using Result = decltype(fn(points[0]));
    std::vector<Result> results(points.size());
    pool.forEach(points.size(),
                 [&](size_t i) { results[i] = fn(points[i]); });
    return results;
}

/** One-shot sweep: build a pool of @p jobs threads just for this run. */
template <typename Point, typename Fn>
auto
parallelSweep(const std::vector<Point> &points, u32 jobs, Fn fn)
    -> std::vector<decltype(fn(points[0]))>
{
    SimPool pool(jobs);
    return parallelSweep(pool, points, fn);
}

} // namespace cyclops

#endif // CYCLOPS_COMMON_PARALLEL_H
