/**
 * @file
 * Epoch-sampled metrics: periodic snapshots of a StatGroup's scalar
 * statistics (counters + gauges) into an in-memory time series, and
 * machine-readable exporters (JSON / CSV) for end-of-run statistics.
 *
 * The sampler belongs to one Chip and is driven from the cycle engine:
 * Chip::run calls maybeSample(now) once per simulated cycle, which is a
 * single compare when no epoch boundary has been crossed. Sampling only
 * reads statistics, so enabling it cannot perturb simulated timing.
 */

#ifndef CYCLOPS_COMMON_METRICS_H
#define CYCLOPS_COMMON_METRICS_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace cyclops
{

class EpochSampler
{
  public:
    /** Rows are capped so a pathological interval cannot exhaust RAM. */
    static constexpr u32 kMaxRows = 1u << 16;

    /**
     * Attach to @p stats and sample every @p intervalCycles. An
     * interval of zero disables the sampler. Column names are captured
     * here; statistics registered later are not sampled.
     */
    void configure(const StatGroup *stats, u32 intervalCycles);

    bool enabled() const { return interval_ != 0; }
    u32 interval() const { return interval_; }

    /** Sample boundary cycle the next row will be taken at. */
    Cycle nextSampleAt() const { return next_; }

    /**
     * Record one row per epoch boundary in (lastSampled, now]. A
     * fast-forwarding cycle engine may cross several boundaries at
     * once; each gets its own row so the time axis stays uniform.
     */
    void
    maybeSample(Cycle now)
    {
        while (interval_ && now >= next_) {
            record(next_);
            next_ += interval_;
        }
    }

    /**
     * Record one final row at @p now (end of run), if past the last.
     * The final row is flushed exactly once even when the run is
     * shorter than one epoch, ends exactly on an epoch boundary, the
     * row cap was hit mid-run, or finalize is called repeatedly (the
     * exporters call it once per output file).
     */
    void finalize(Cycle now);

    u32 rows() const { return static_cast<u32>(sampleCycles_.size()); }
    u64 droppedRows() const { return droppedRows_; }
    const std::vector<std::string> &names() const { return names_; }
    const std::vector<Cycle> &sampleCycles() const { return sampleCycles_; }

    /** Value of column @p col at row @p row. */
    u64
    value(u32 row, u32 col) const
    {
        return data_[size_t(row) * names_.size() + col];
    }

    /** Write the series as CSV: cycle,<name>,... header then rows. */
    void writeCsv(std::FILE *out) const;

  private:
    void record(Cycle at, bool force = false);

    const StatGroup *stats_ = nullptr;
    u32 interval_ = 0;
    Cycle next_ = 0;
    u64 droppedRows_ = 0;
    std::vector<std::string> names_;
    std::vector<Cycle> sampleCycles_;
    std::vector<u64> data_; ///< rows * names_.size(), row-major
};

/**
 * Write a full statistics snapshot as JSON: total cycles, every scalar
 * (counters + gauges), every histogram, and — when @p sampler is
 * non-null and enabled — the epoch time series. When @p host is
 * non-null its scalars are emitted as a separate "hostObs" object so
 * host-simulator telemetry (common/hostobs.h) never mixes with guest
 * statistics — the guest sections stay byte-identical either way.
 */
void writeStatsJson(std::FILE *out, const StatGroup &stats, Cycle cycles,
                    const EpochSampler *sampler,
                    const StatGroup *host = nullptr);

/**
 * Write @p sampler's epoch series as one JSON object value (interval,
 * cycle axis, per-column arrays, droppedRows) — the "series" member of
 * writeStatsJson, reusable by other exporters (the fabric stats file).
 */
void writeSeriesJson(std::FILE *out, const EpochSampler &sampler);

} // namespace cyclops

#endif // CYCLOPS_COMMON_METRICS_H
