/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 discipline:
 *  - panic()  -> a simulator bug: something that must never happen
 *               regardless of user input. Aborts (core-dumpable).
 *  - fatal()  -> a user error (bad configuration, malformed assembly,
 *               invalid argument). Exits with status 1.
 *  - warn()   -> functionality that may be imperfect but continues.
 *  - inform() -> normal status messages.
 *
 * Guest misbehaviour is different from both: a simulated program doing
 * something architecturally invalid (misaligned access, wild PC) must
 * not kill the host process — fault-injection campaigns and fuzzers
 * need to observe and classify it. Those paths throw GuestError via
 * guestCheck()/guestCrash() instead.
 */

#ifndef CYCLOPS_COMMON_LOG_H
#define CYCLOPS_COMMON_LOG_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace cyclops
{

/** Verbosity levels for inform()/debug logging. */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2, Debug = 3 };

/** Set the global log verbosity (default Normal). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** Report a simulator bug and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a recoverable concern to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status to stderr (Normal level and up). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose diagnostic output (Debug level only). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * An architecturally invalid action by the simulated program.
 *
 * Check: the hardware *detects* the condition and could raise a precise
 * exception (misaligned access, write to an unknown SPR, access to a
 * disabled scratchpad window). Crash: wild execution with no defined
 * recovery (PC outside the program text, access beyond physical
 * memory). Fault-injection campaigns map Check to "detected" and Crash
 * to "crash"; interactive frontends report the message and exit
 * nonzero.
 */
class GuestError : public std::runtime_error
{
  public:
    enum class Kind { Check, Crash };

    GuestError(Kind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/** Throw GuestError{Check} with a printf-formatted message. */
[[noreturn]] void guestCheck(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Throw GuestError{Crash} with a printf-formatted message. */
[[noreturn]] void guestCrash(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cyclops

#endif // CYCLOPS_COMMON_LOG_H
