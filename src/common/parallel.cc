#include "common/parallel.h"

#include <algorithm>

namespace cyclops
{

SimPool::SimPool(u32 jobs) : jobs_(std::max(1u, jobs))
{
    workers_.reserve(jobs_ - 1);
    for (u32 i = 0; i + 1 < jobs_; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

SimPool::~SimPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

u32
SimPool::resolveJobs(u32 requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? u32(hw) : 1u;
}

void
SimPool::workerMain()
{
    u64 seenGeneration = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ || (task_ && generation_ != seenGeneration);
        });
        if (stop_)
            return;
        seenGeneration = generation_;
        const std::function<void(size_t)> *fn = task_;
        const size_t count = taskCount_;
        lock.unlock();

        size_t i;
        while ((i = next_.fetch_add(1, std::memory_order_relaxed)) <
               count)
            (*fn)(i);

        lock.lock();
        // Check in: forEach() returns only once every worker has passed
        // the point of taking more work, so `fn` may safely go out of
        // scope in the caller.
        if (++checkedIn_ == workers_.size())
            done_.notify_one();
    }
}

void
SimPool::forEach(size_t count, const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    task_ = &fn;
    taskCount_ = count;
    checkedIn_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
    lock.unlock();
    wake_.notify_all();

    // The calling thread is one of the pool's `jobs` lanes.
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count)
        fn(i);

    lock.lock();
    done_.wait(lock, [&] { return checkedIn_ == workers_.size(); });
    task_ = nullptr;
}

} // namespace cyclops
