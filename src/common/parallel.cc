#include "common/parallel.h"

#include <algorithm>

#include "common/hostobs.h"

namespace cyclops
{

SimPool::SimPool(u32 jobs) : jobs_(std::max(1u, jobs))
{
    workers_.reserve(jobs_ - 1);
    for (u32 i = 0; i + 1 < jobs_; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

SimPool::~SimPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

u32
SimPool::resolveJobs(u32 requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? u32(hw) : 1u;
}

/**
 * Drain the shared index dispenser, timing each item. Tasks are whole
 * simulation points (milliseconds and up), so two clock reads per item
 * are noise; the totals feed SimPool::telemetry().
 */
void
SimPool::runItems(const std::function<void(size_t)> &fn, size_t count)
{
    size_t i;
    u64 done = 0;
    u64 nanos = 0;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count) {
        const u64 t0 = hostNowNs();
        fn(i);
        nanos += hostNowNs() - t0;
        ++done;
    }
    items_.fetch_add(done, std::memory_order_relaxed);
    itemNanos_.fetch_add(nanos, std::memory_order_relaxed);
}

SimPool::Telemetry
SimPool::telemetry() const
{
    Telemetry t;
    t.batches = batches_;
    t.batchNanos = batchNanos_;
    t.items = items_.load(std::memory_order_relaxed);
    t.itemNanos = itemNanos_.load(std::memory_order_relaxed);
    return t;
}

void
SimPool::workerMain()
{
    u64 seenGeneration = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ || (task_ && generation_ != seenGeneration);
        });
        if (stop_)
            return;
        seenGeneration = generation_;
        const std::function<void(size_t)> *fn = task_;
        const size_t count = taskCount_;
        lock.unlock();

        runItems(*fn, count);

        lock.lock();
        // Check in: forEach() returns only once every worker has passed
        // the point of taking more work, so `fn` may safely go out of
        // scope in the caller.
        if (++checkedIn_ == workers_.size())
            done_.notify_one();
    }
}

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#endif
}

} // namespace

ShardCrew::ShardCrew(u32 workers) : workers_(std::max(1u, workers))
{
    // Spinning only pays when every crew member can hold a core; on an
    // oversubscribed host (more workers than hardware threads) a
    // spinning partner steals the core its peer needs, so yield at
    // once and let the scheduler rotate the crew.
    const unsigned hw = std::thread::hardware_concurrency();
    spinLimit_ = (hw != 0 && workers_ > hw) ? 0 : 4096;
    errors_.resize(workers_);
    threads_.reserve(workers_ - 1);
    for (u32 w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

ShardCrew::~ShardCrew()
{
    stop_ = true;
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread &t : threads_)
        t.join();
}

void
ShardCrew::runEpoch(u32 w, const std::function<void(u32)> *fn)
{
    try {
        (*fn)(w);
    } catch (...) {
        errors_[w] = std::current_exception();
    }
}

void
ShardCrew::setTelemetry(CrewTelemetry *telem)
{
    if (telem)
        telem->lanes.resize(workers_);
    // Release so a worker's acquire load sees the resized lanes.
    telem_.store(telem, std::memory_order_release);
}

void
ShardCrew::workerMain(u32 w)
{
    u64 seen = 0;
    for (;;) {
        // Telemetry clocks bracket only the spin — wall-clock reads
        // taken while the lane is idle anyway, so an instrumented crew
        // costs nothing on the critical path.
        CrewTelemetry *telem = telem_.load(std::memory_order_acquire);
        const u64 t0 = telem ? hostNowNs() : 0;
        // Spin on the epoch; fall back to yield after a while so an
        // idle crew (serial fallback stretches, sampled fast windows)
        // does not monopolize host cores.
        u32 spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (++spins < spinLimit_)
                cpuRelax();
            else
                std::this_thread::yield();
        }
        ++seen;
        if (telem) {
            CrewTelemetry::Lane &lane = telem->lanes[w];
            lane.waitNanos += hostNowNs() - t0;
            ++lane.epochs;
        }
        if (stop_)
            return;
        runEpoch(w, fn_);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ShardCrew::run(const std::function<void(u32)> &fn)
{
    if (threads_.empty()) {
        fn(0);
        return;
    }
    fn_ = &fn;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);

    runEpoch(0, &fn);

    CrewTelemetry *telem = telem_.load(std::memory_order_relaxed);
    const u64 t0 = telem ? hostNowNs() : 0;
    const u32 others = u32(threads_.size());
    u32 spins = 0;
    while (done_.load(std::memory_order_acquire) != others) {
        if (++spins < spinLimit_)
            cpuRelax();
        else
            std::this_thread::yield();
    }
    if (telem) {
        telem->coordWaitNanos += hostNowNs() - t0;
        ++telem->epochs;
    }
    fn_ = nullptr;
    for (std::exception_ptr &e : errors_) {
        if (e) {
            std::exception_ptr rethrow = e;
            for (std::exception_ptr &clear : errors_)
                clear = nullptr;
            std::rethrow_exception(rethrow);
        }
    }
}

void
SimPool::forEach(size_t count, const std::function<void(size_t)> &fn)
{
    if (count == 0)
        return;
    const u64 batchStart = hostNowNs();
    ++batches_;
    if (workers_.empty()) {
        next_.store(0, std::memory_order_relaxed);
        runItems(fn, count);
        batchNanos_ += hostNowNs() - batchStart;
        return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    task_ = &fn;
    taskCount_ = count;
    checkedIn_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
    lock.unlock();
    wake_.notify_all();

    // The calling thread is one of the pool's `jobs` lanes.
    runItems(fn, count);

    lock.lock();
    done_.wait(lock, [&] { return checkedIn_ == workers_.size(); });
    task_ = nullptr;
    batchNanos_ += hostNowNs() - batchStart;
}

} // namespace cyclops
