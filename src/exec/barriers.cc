#include "exec/barriers.h"

#include "arch/interest_group.h"
#include "common/log.h"

namespace cyclops::exec
{

using arch::igAddr;
using arch::kIgDefault;

void
CentralBarrier::init(kernel::Heap &heap, u32 participants)
{
    if (participants == 0)
        fatal("central barrier needs at least one participant");
    count = participants;
    counterEa = igAddr(kIgDefault, heap.alloc(64, 64));
    senseEa = igAddr(kIgDefault, heap.alloc(64, 64));
    localSense.assign(participants, 0);
}

void
TreeBarrier::init(kernel::Heap &heap, u32 participants, u32 r)
{
    if (participants == 0)
        fatal("tree barrier needs at least one participant");
    if (r < 2)
        fatal("tree barrier radix must be >= 2");
    count = participants;
    radix = r;
    base = heap.alloc(participants * 128, 64);
    round.assign(participants, 0);
}

Addr
TreeBarrier::arriveEa(u32 node) const
{
    return igAddr(kIgDefault, base + node * 128);
}

Addr
TreeBarrier::releaseEa(u32 node) const
{
    return igAddr(kIgDefault, base + node * 128 + 64);
}

} // namespace cyclops::exec
