#include "exec/guest.h"

#include <bit>

#include "exec/guest_unit.h"

namespace cyclops::exec
{

ThreadId
GuestCtx::hwThread() const
{
    return unit_.tid();
}

double
GuestCtx::peekDouble(Addr ea) const
{
    return std::bit_cast<double>(unit_.chip().memRead(ea, 8, hwThread()));
}

void
GuestCtx::pokeDouble(Addr ea, double value) const
{
    unit_.chip().memWrite(ea, 8, std::bit_cast<u64>(value), hwThread());
}

} // namespace cyclops::exec
