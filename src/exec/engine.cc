#include "exec/engine.h"

#include "common/log.h"

namespace cyclops::exec
{

GuestEngine::GuestEngine(arch::Chip &chip, kernel::AllocPolicy policy)
    : chip_(chip)
{
    order_ = kernel::threadOrder(chip, policy);
    // The whole embedded memory minus a small boot region is heap; the
    // exec frontend has no program image.
    heap_.init(4096, chip.memsys().availableMemBytes());
}

void
GuestEngine::spawn(u32 count, const GuestFactory &factory)
{
    if (count == 0 || count > order_.size())
        fatal("cannot spawn %u guest threads (%zu usable)", count,
              order_.size());

    std::vector<GuestUnit *> units;
    units.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        const ThreadId tid = order_[i];
        auto unit = std::make_unique<GuestUnit>(tid, chip_, i);
        GuestUnit *raw = unit.get();
        chip_.setUnit(tid, std::move(unit));
        units.push_back(raw);
    }
    // Arm every hardware barrier before any guest instruction runs:
    // the wired-OR protocol requires all participants' current-cycle
    // bits to be set before the first entry.
    for (GuestUnit *unit : units)
        unit->armHwBarriers();
    for (u32 i = 0; i < count; ++i) {
        auto ctx = std::make_unique<GuestCtx>(*units[i], i, count);
        units[i]->start(factory(*ctx));
        ctxs_.push_back(std::move(ctx));
        chip_.activate(units[i]->tid());
    }
    spawned_ += count;
}

arch::RunExit
GuestEngine::run(Cycle maxCycles)
{
    if (spawned_ == 0)
        fatal("GuestEngine::run with no spawned guests");
    if (!placementChecked_) {
        placementChecked_ = true;
        checkShardPlacement();
    }
    return chip_.run(maxCycles);
}

void
GuestEngine::checkShardPlacement()
{
    // The sharded engine's parallelism is bounded by how many worker
    // domains actually hold runnable units. The allocation policy
    // (e.g. Sequential) can concentrate a small spawn into one domain,
    // leaving the other workers spinning at each epoch barrier for
    // nothing. Results are identical either way — this only advises.
    const u32 w = chip_.shardWorkers();
    if (w <= 1)
        return;
    std::vector<u64> perDomain(w, 0);
    for (u32 i = 0; i < spawned_; ++i)
        ++perDomain[chip_.shardDomainOf(order_[i])];
    // Host telemetry correlates per-worker tick imbalance with guest
    // placement (host.wN.guests gauges).
    chip_.noteShardOccupancy(perDomain);
    u32 occupied = 0;
    for (u64 count : perDomain)
        occupied += count != 0;
    if (occupied < w)
        inform("sharded engine: %u guest threads occupy %u of %u "
               "worker domains; consider Scatter allocation or fewer "
               "--engine-workers",
               spawned_, occupied, w);
}

} // namespace cyclops::exec
