#include "exec/guest_unit.h"

#include "common/log.h"
#include "exec/barriers.h"

namespace cyclops::exec
{

using arch::CycleCat;
using arch::MemKind;
using arch::MemTiming;

[[noreturn]] void
GuestTask::promise_type::unhandled_exception()
{
    panic("unhandled exception escaped a guest coroutine");
}

void
OpAwait::await_suspend(std::coroutine_handle<> self) noexcept
{
    unit_.post(ops_, self);
}

GuestUnit::GuestUnit(ThreadId tid, arch::Chip &chip, u32 softIdx)
    : Unit(tid),
      chip_(chip),
      softIdx_(softIdx),
      hwProto_{arch::HwBarrierProtocol(0), arch::HwBarrierProtocol(1),
               arch::HwBarrierProtocol(2), arch::HwBarrierProtocol(3)}
{
    mem_.init(chip.config().maxOutstandingMem);
}

void
GuestUnit::start(GuestTask task)
{
    if (top_.handle())
        panic("GuestUnit::start called twice");
    top_ = std::move(task);
}

void
GuestUnit::armHwBarriers()
{
    // Participants initially set the current-cycle bit of every
    // barrier; the engine arms all spawned threads before any of them
    // runs, which the protocol requires.
    mySpr_ = 0;
    for (const auto &proto : hwProto_)
        mySpr_ |= proto.armValue();
    chip_.barrier().write(tid_, mySpr_);
}

void
GuestUnit::post(std::span<MicroOp> ops, std::coroutine_handle<> self)
{
    if (pending_)
        panic("guest posted a micro-op while one is in flight");
    ops_ = ops;
    opIdx_ = 0;
    pending_ = !ops.empty();
    current_ = self;
}

MemTiming
GuestUnit::issueMem(Cycle now, MemKind kind, Addr ea, u8 bytes,
                    u64 *inout)
{
    switch (kind) {
      case MemKind::Load:
      case MemKind::Prefetch:
        *inout = chip_.memRead(ea, bytes, tid_);
        break;
      case MemKind::Store:
        chip_.memWrite(ea, bytes, *inout, tid_);
        break;
      case MemKind::Atomic:
        break; // caller performs the read-modify-write
    }
    MemTiming t = chip_.dmem(now, tid_, ea, bytes, kind);
    noteDmem(t.hit);
    return t;
}

Cycle
GuestUnit::tickImpl(Cycle now, bool localOnly, bool fpuOk)
{
    if (halted_)
        return kCycleNever;

    if (!pending_) {
        // Resuming the coroutine runs arbitrary guest code that may
        // touch shared host-side data structures; only canonical order
        // is safe.
        if (localOnly)
            return kTickDeferred;
        // Resume the guest; it runs natively until it awaits the next
        // micro-op or the top-level coroutine finishes.
        auto h = current_ ? current_
                          : std::coroutine_handle<>(top_.handle());
        if (!started_) {
            started_ = true;
            if (!top_.handle())
                panic("GuestUnit activated without a coroutine");
        }
        h.resume();
        if (!pending_) {
            if (top_.done()) {
                markHalted();
                accountIssue(now, 1); // the final halt
                return kCycleNever;
            }
            panic("guest coroutine suspended without posting an op");
        }
    }

    MicroOp &op = ops_[opIdx_];
    StepResult r = step(now, op, localOnly, fpuOk);
    if (r.deferred)
        return kTickDeferred;
    if (!r.done)
        return std::max(r.at, now + 1);

    barStage_ = 0;
    barChild_ = 0;
    ++opIdx_;
    if (opIdx_ >= ops_.size()) {
        pending_ = false;
        ops_ = {};
        opIdx_ = 0;
    }
    return std::max(r.at, now + 1);
}

GuestUnit::StepResult
GuestUnit::step(Cycle now, MicroOp &op, bool localOnly, bool fpuOk)
{
    const LatencyConfig &lat = chip_.config().lat;

    // Dependence on the current chain (in-order issue of dependent code).
    const bool needsChain = !op.indep && op.kind != OpKind::Sync;
    if (needsChain && chainReady_ > now) {
        accountMemWait(now, chainReady_, chainCat_, chainQueue_);
        chainQueue_ = 0; // the queueing share is charged once
        return {false, chainReady_};
    }

    switch (op.kind) {
      case OpKind::Alu: {
        noteProgress();
        // A zero-count op still occupies the one cycle its tick takes.
        accountIssue(now, std::max<u32>(op.count, 1));
        // Independent ALU work (loop overhead) does not produce a
        // value the chain waits on; dependent ALU work replaces it.
        if (!op.indep)
            chainReady_ = now + op.count;
        return {true, now + op.count};
      }

      case OpKind::Branch: {
        accountIssue(now, lat.branchExec);
        return {true, now + lat.branchExec};
      }

      case OpKind::Fpu: {
        if (localOnly && !fpuOk)
            return {false, 0, true}; // quad FPU order pinned to phase B
        Cycle resultAt = 0;
        if (!chip_.fpuOf(tid_).dispatch(now, op.fpu, &resultAt)) {
            accountWait(now, now + 1, CycleCat::FpuArb);
            return {false, now + 1};
        }
        noteProgress();
        accountIssue(now, 1);
        setChain(resultAt, CycleCat::FpuArb, 0);
        return {true, now + 1};
      }

      case OpKind::Load: {
        mem_.prune(now);
        if (mem_.full()) {
            const Cycle wake = mem_.earliest();
            accountWait(now, wake,
                        mem_.earliestFabric() ? CycleCat::RemoteWait
                                              : CycleCat::DcacheMiss);
            return {false, wake};
        }
        if (localOnly)
            return {false, 0, true}; // fabric access: phase B
        MemTiming t = issueMem(now, MemKind::Load, op.ea, op.bytes,
                               &op.result);
        // Polling semantics: re-reading an unchanged location is not
        // forward progress; streaming reads (changing ea) are.
        notePoll(0, op.ea, op.result);
        mem_.add(t.ready, t.fabric);
        setChain(t.ready,
                 t.fabric ? CycleCat::RemoteWait : CycleCat::DcacheMiss,
                 t.queueWait);
        accountIssue(now, 1);
        return {true, now + 1};
      }

      case OpKind::Store: {
        mem_.prune(now);
        if (mem_.full()) {
            const Cycle wake = mem_.earliest();
            accountWait(now, wake,
                        mem_.earliestFabric() ? CycleCat::RemoteWait
                                              : CycleCat::DcacheMiss);
            return {false, wake};
        }
        if (localOnly)
            return {false, 0, true}; // fabric access: phase B
        noteProgress();
        MemTiming t = issueMem(now, MemKind::Store, op.ea, op.bytes,
                               &op.value);
        mem_.add(t.ready, t.fabric);
        accountIssue(now, 1);
        return {true, now + 1};
      }

      case OpKind::AmoAdd:
      case OpKind::AmoSwap:
      case OpKind::AmoCas: {
        mem_.prune(now);
        if (mem_.full()) {
            const Cycle wake = mem_.earliest();
            accountWait(now, wake,
                        mem_.earliestFabric() ? CycleCat::RemoteWait
                                              : CycleCat::DcacheMiss);
            return {false, wake};
        }
        if (localOnly)
            return {false, 0, true}; // fabric access: phase B
        const u32 old = u32(chip_.memRead(op.ea, 4, tid_));
        notePoll(0, op.ea, old);
        u32 fresh = old;
        bool doWrite = true;
        if (op.kind == OpKind::AmoAdd)
            fresh = old + u32(op.value);
        else if (op.kind == OpKind::AmoSwap)
            fresh = u32(op.value);
        else
            doWrite = old == u32(op.expect), fresh = u32(op.value);
        if (doWrite)
            chip_.memWrite(op.ea, 4, fresh, tid_);
        MemTiming t = chip_.dmem(now, tid_, op.ea, 4, MemKind::Atomic);
        noteDmem(t.hit);
        op.result = old;
        mem_.add(t.ready, t.fabric);
        setChain(t.ready,
                 t.fabric ? CycleCat::RemoteWait : CycleCat::DcacheMiss,
                 t.queueWait);
        accountIssue(now, 1);
        return {true, now + 1};
      }

      case OpKind::Sync: {
        mem_.prune(now);
        if (!mem_.empty()) {
            const Cycle wake = mem_.latest();
            accountWait(now, wake,
                        mem_.latestFabric() ? CycleCat::RemoteWait
                                            : CycleCat::DcacheMiss);
            return {false, wake};
        }
        if (chainReady_ > now) {
            accountMemWait(now, chainReady_, chainCat_, chainQueue_);
            chainQueue_ = 0;
            return {false, chainReady_};
        }
        noteProgress();
        accountIssue(now, 1);
        return {true, now + 1};
      }

      case OpKind::HwBarrier:
        if (localOnly)
            return {false, 0, true}; // barrier SPR wired-OR: phase B
        return stepHwBarrier(now, op);
      case OpKind::SwCentralBarrier:
        if (localOnly)
            return {false, 0, true}; // shared counter/flag: phase B
        return stepCentral(now, op);
      case OpKind::SwTreeBarrier:
        if (localOnly)
            return {false, 0, true}; // shared arrive/release: phase B
        return stepTree(now, op);
    }
    panic("unhandled micro-op kind");
}

GuestUnit::StepResult
GuestUnit::stepHwBarrier(Cycle now, MicroOp &op)
{
    const LatencyConfig &lat = chip_.config().lat;
    if (op.count >= arch::kNumHwBarriers)
        guestCheck("hardware barrier id %u out of range", op.count);
    arch::HwBarrierProtocol &proto = hwProto_[op.count];

    if (barStage_ == 0) {
        // Enter: one SPR write flips current off / next on, preceded by
        // the three ALU instructions computing the new register value.
        mySpr_ = proto.enterValue(mySpr_);
        chip_.barrier().write(tid_, mySpr_);
        noteProgress();
        accountIssue(now, 4);
        barStage_ = 1;
        barEnterAt_ = now;
        return {false, now + 4};
    }

    // Spin: mfspr + mask + branch. The SPR read result is available
    // after sprLat; the dependent branch waits for it.
    // The spin itself generates no progress events; only observing the
    // release does. A barrier nobody else ever enters therefore starves
    // the watchdog, which is exactly what "deadlock" means here.
    const u8 orValue = chip_.barrier().read();
    accountIssue(now, 3);
    if (proto.released(orValue)) {
        proto.consumeRelease();
        noteProgress();
        Tracer &tr = chip_.tracer();
        if (tr.on(TraceCat::Barrier))
            tr.complete(TraceCat::Barrier, tid_, "hwBarrier", barEnterAt_,
                        now + 3 - barEnterAt_, op.count);
        return {true, now + 3};
    }
    accountWait(now + 3, now + 3 + lat.sprLat, CycleCat::BarrierWait);
    return {false, now + 3 + lat.sprLat};
}

GuestUnit::StepResult
GuestUnit::stepCentral(Cycle now, MicroOp &op)
{
    CentralBarrier &bar = *op.central;
    if (bar.count == 1) {
        noteProgress();
        accountIssue(now, 1);
        return {true, now + 1};
    }

    switch (barStage_) {
      case 0: {
        // Flip the local sense and fetch-and-add the counter.
        noteProgress();
        bar.localSense[softIdx_] ^= 1;
        const u32 old = u32(chip_.memRead(bar.counterEa, 4, tid_));
        chip_.memWrite(bar.counterEa, 4, old + 1, tid_);
        MemTiming t =
            chip_.dmem(now, tid_, bar.counterEa, 4, MemKind::Atomic);
        noteDmem(t.hit);
        accountIssue(now, 2); // xori + amoadd
        barScratch_ = old + 1;
        barStage_ = barScratch_ == bar.count ? 2 : 1;
        barEnterAt_ = now;
        // The arrival count gates the branch: wait for the result.
        accountWait(now + 2, t.ready, CycleCat::BarrierWait);
        return {false, std::max(t.ready, now + 2)};
      }
      case 1: {
        // Spin on the release flag written by the last arriver.
        u64 flag = 0;
        MemTiming t = issueMem(now, MemKind::Load, bar.senseEa, 4, &flag);
        accountIssue(now, 3); // load + compare + branch
        const Cycle at = std::max(t.ready + 2, now + 3);
        // The dependent compare/branch wait on the load is barrier time
        // whether or not this iteration observes the release.
        accountWait(now + 3, at, CycleCat::BarrierWait);
        if (u32(flag) == bar.localSense[softIdx_]) {
            noteProgress();
            Tracer &tr = chip_.tracer();
            if (tr.on(TraceCat::Barrier))
                tr.complete(TraceCat::Barrier, tid_, "centralBarrier",
                            barEnterAt_, at - barEnterAt_);
            return {true, at};
        }
        return {false, at};
      }
      case 2: {
        // Last thread: reset the counter, then release everyone.
        noteProgress();
        u64 zero = 0;
        issueMem(now, MemKind::Store, bar.counterEa, 4, &zero);
        u64 sense = bar.localSense[softIdx_];
        issueMem(now + 1, MemKind::Store, bar.senseEa, 4, &sense);
        accountIssue(now, 2);
        Tracer &tr = chip_.tracer();
        if (tr.on(TraceCat::Barrier))
            tr.complete(TraceCat::Barrier, tid_, "centralBarrier",
                        barEnterAt_, now + 2 - barEnterAt_);
        return {true, now + 2};
      }
    }
    panic("central barrier: bad stage %u", barStage_);
}

GuestUnit::StepResult
GuestUnit::stepTree(Cycle now, MicroOp &op)
{
    TreeBarrier &bar = *op.tree;
    const u32 self = softIdx_;
    if (bar.count == 1) {
        noteProgress();
        accountIssue(now, 1);
        return {true, now + 1};
    }

    const u32 children = bar.numChildren(self);
    const bool isRoot = self == 0;

    switch (barStage_) {
      case 0: {
        // New round; leaves skip the child wait.
        noteProgress();
        ++bar.round[self];
        accountIssue(now, 1);
        barStage_ = children > 0 ? 1 : 2;
        barEnterAt_ = now;
        return {false, now + 1};
      }
      case 1: {
        // Spin until all children of this node have arrived this round.
        u64 arrived = 0;
        MemTiming t =
            issueMem(now, MemKind::Load, bar.arriveEa(self), 4, &arrived);
        accountIssue(now, 3); // load + compare + branch
        const Cycle at = std::max(t.ready + 2, now + 3);
        accountWait(now + 3, at, CycleCat::BarrierWait);
        const u64 expected = u64(children) * bar.round[self];
        if (arrived >= expected) {
            noteProgress();
            barStage_ = isRoot ? 4 : 2;
        }
        return {false, at};
      }
      case 2: {
        // Notify the parent.
        noteProgress();
        const Addr parentEa = bar.arriveEa(bar.parent(self));
        const u32 old = u32(chip_.memRead(parentEa, 4, tid_));
        chip_.memWrite(parentEa, 4, old + 1, tid_);
        noteDmem(
            chip_.dmem(now, tid_, parentEa, 4, MemKind::Atomic).hit);
        accountIssue(now, 1);
        barStage_ = 3;
        return {false, now + 1};
      }
      case 3: {
        // Spin on our release flag, written by the parent.
        u64 flag = 0;
        MemTiming t =
            issueMem(now, MemKind::Load, bar.releaseEa(self), 4, &flag);
        accountIssue(now, 3);
        const Cycle at = std::max(t.ready + 2, now + 3);
        accountWait(now + 3, at, CycleCat::BarrierWait);
        if (flag >= bar.round[self]) {
            noteProgress();
            barStage_ = 4;
            barChild_ = 0;
        }
        return {false, at};
      }
      case 4: {
        // Release our children, one store per child.
        if (barChild_ >= children) {
            // The final check cycle is part of the barrier, not run.
            accountWait(now, now + 1, CycleCat::BarrierWait);
            Tracer &tr = chip_.tracer();
            if (tr.on(TraceCat::Barrier))
                tr.complete(TraceCat::Barrier, tid_, "treeBarrier",
                            barEnterAt_, now + 1 - barEnterAt_);
            return {true, now + 1};
        }
        const u32 child = bar.radix * self + 1 + barChild_;
        u64 round = bar.round[self];
        noteProgress();
        issueMem(now, MemKind::Store, bar.releaseEa(child), 4, &round);
        accountIssue(now, 1);
        ++barChild_;
        return {false, now + 1};
      }
    }
    panic("tree barrier: bad stage %u", barStage_);
}

} // namespace cyclops::exec
