/**
 * @file
 * Shared-state descriptors for the software barriers used by the
 * execution-driven frontend.
 *
 * Both barriers live in simulated shared memory (kernel-default
 * interest group), so entering them generates real cache and bank
 * traffic — exactly the contention the paper's Figure 7 measures
 * against the hardware barrier.
 */

#ifndef CYCLOPS_EXEC_BARRIERS_H
#define CYCLOPS_EXEC_BARRIERS_H

#include <vector>

#include "common/types.h"
#include "kernel/heap.h"

namespace cyclops::exec
{

/** A central sense-reversing barrier (one counter, one release flag). */
struct CentralBarrier
{
    Addr counterEa = 0;
    Addr senseEa = 0;
    u32 count = 0;
    std::vector<u32> localSense; ///< per software thread

    /** Allocate the two cache lines and size for @p participants. */
    void init(kernel::Heap &heap, u32 participants);
};

/**
 * The paper's tree-based software barrier: on entering, a thread first
 * notifies its parent and then spins on a memory location written by
 * the thread's parent when all threads have completed the barrier.
 *
 * Each node owns an arrival counter and a release flag in separate
 * cache lines. Counters and flags carry monotonically increasing round
 * numbers, so no reset phase is needed.
 */
struct TreeBarrier
{
    Addr base = 0;      ///< node records, 128 bytes apart
    u32 count = 0;      ///< participants
    u32 radix = 2;
    std::vector<u32> round; ///< per software thread

    void init(kernel::Heap &heap, u32 participants, u32 radix = 2);

    Addr arriveEa(u32 node) const;
    Addr releaseEa(u32 node) const;

    u32 parent(u32 node) const { return (node - 1) / radix; }

    u32
    numChildren(u32 node) const
    {
        u32 n = 0;
        for (u32 c = radix * node + 1; c <= radix * node + radix; ++c)
            if (c < count)
                ++n;
        return n;
    }
};

} // namespace cyclops::exec

#endif // CYCLOPS_EXEC_BARRIERS_H
