/**
 * @file
 * GuestEngine: spawns guest coroutines onto hardware threads under a
 * kernel allocation policy and runs the chip.
 */

#ifndef CYCLOPS_EXEC_ENGINE_H
#define CYCLOPS_EXEC_ENGINE_H

#include <functional>
#include <memory>
#include <vector>

#include "arch/chip.h"
#include "exec/guest.h"
#include "exec/guest_unit.h"
#include "kernel/heap.h"
#include "kernel/kernel.h"

namespace cyclops::exec
{

/** Factory invoked once per spawned software thread. */
using GuestFactory = std::function<GuestTask(GuestCtx &)>;

/** Runs execution-driven workloads on one chip. */
class GuestEngine
{
  public:
    explicit GuestEngine(
        arch::Chip &chip,
        kernel::AllocPolicy policy = kernel::AllocPolicy::Sequential);

    /**
     * Spawn @p count software threads; @p factory builds each thread's
     * coroutine. Hardware threads are assigned by the policy; all
     * hardware barriers are armed before anything runs.
     */
    void spawn(u32 count, const GuestFactory &factory);

    /** Run until all guests finish or a cycle limit. */
    arch::RunExit run(Cycle maxCycles = kCycleNever);

    /** Heap over the chip's free memory for workload buffers. */
    kernel::Heap &heap() { return heap_; }
    const kernel::Heap &heap() const { return heap_; }

    arch::Chip &chip() { return chip_; }
    const arch::Chip &chip() const { return chip_; }

    u32 usableThreads() const { return u32(order_.size()); }

  private:
    void checkShardPlacement();

    arch::Chip &chip_;
    std::vector<ThreadId> order_;
    kernel::Heap heap_;
    std::vector<std::unique_ptr<GuestCtx>> ctxs_;
    u32 spawned_ = 0;
    bool placementChecked_ = false;
};

} // namespace cyclops::exec

#endif // CYCLOPS_EXEC_ENGINE_H
