/**
 * @file
 * The execution-driven unit: adapts a guest coroutine to the cycle
 * engine's Unit interface, charging every awaited micro-op through the
 * shared timing fabric.
 */

#ifndef CYCLOPS_EXEC_GUEST_UNIT_H
#define CYCLOPS_EXEC_GUEST_UNIT_H

#include <array>

#include "arch/barrier_spr.h"
#include "arch/chip.h"
#include "arch/unit.h"
#include "exec/guest.h"

namespace cyclops::exec
{

/** One hardware thread running guest coroutine code. */
class GuestUnit : public arch::Unit
{
  public:
    GuestUnit(ThreadId tid, arch::Chip &chip, u32 softIdx);

    /** Install the top-level coroutine (before activation). */
    void start(GuestTask task);

    Cycle tick(Cycle now) override { return tickImpl(now, false, true); }

    Cycle
    tickLocal(Cycle now, bool fpuOk) override
    {
        return tickImpl(now, true, fpuOk);
    }

    arch::Chip &chip() { return chip_; }
    u32 softIdx() const { return softIdx_; }

    /** Arm all hardware barriers for this participant (engine calls). */
    void armHwBarriers();

    // Called by OpAwait::await_suspend.
    void post(std::span<MicroOp> ops, std::coroutine_handle<> self);

  private:
    /** Outcome of stepping one micro-op at a given cycle. */
    struct StepResult
    {
        bool done;   ///< op finished (false: re-step at @ref at)
        Cycle at;    ///< next-issue cycle (done) or wake cycle (wait)
        bool deferred = false; ///< localOnly: needs shared state, no
                               ///< observable change was made
    };

    /** tick() body shared with tickLocal() (see Unit::tickLocal). */
    Cycle tickImpl(Cycle now, bool localOnly, bool fpuOk);

    StepResult step(Cycle now, MicroOp &op, bool localOnly, bool fpuOk);
    StepResult stepHwBarrier(Cycle now, MicroOp &op);
    StepResult stepCentral(Cycle now, MicroOp &op);
    StepResult stepTree(Cycle now, MicroOp &op);

    /** Issue one data-memory access: functional + timing. */
    arch::MemTiming issueMem(Cycle now, arch::MemKind kind, Addr ea,
                             u8 bytes, u64 *inout);

    arch::Chip &chip_;
    u32 softIdx_;

    GuestTask top_;
    std::coroutine_handle<> current_;
    bool started_ = false;

    std::span<MicroOp> ops_;
    size_t opIdx_ = 0;
    bool pending_ = false;

    /**
     * Update the dependence chain: remember what the newest producer
     * was waiting on so a later chain stall charges the right category
     * (and its queueing share, once).
     */
    void
    setChain(Cycle ready, arch::CycleCat cat, u64 queueing)
    {
        if (ready > chainReady_) {
            chainReady_ = ready;
            chainCat_ = cat;
            chainQueue_ = queueing;
        }
    }

    Cycle chainReady_ = 0;
    arch::CycleCat chainCat_ = arch::CycleCat::Run;
    u64 chainQueue_ = 0;
    arch::OutstandingMem mem_;

    // Hardware barrier protocol state.
    std::array<arch::HwBarrierProtocol, arch::kNumHwBarriers> hwProto_;
    u8 mySpr_ = 0;

    // Multi-step barrier micro-op state.
    u32 barStage_ = 0;
    u32 barChild_ = 0;
    u64 barScratch_ = 0;
    Cycle barEnterAt_ = 0; ///< entry cycle, for the barrier trace span
};

} // namespace cyclops::exec

#endif // CYCLOPS_EXEC_GUEST_UNIT_H
