/**
 * @file
 * The execution-driven guest programming model.
 *
 * Guest threads are C++20 coroutines. Every simulated action — load,
 * store, atomic, FPU operation, ALU work, barrier — is awaited through
 * a GuestCtx, and the awaiting coroutine is resumed when the cycle
 * engine has charged the corresponding time through the same caches,
 * banks, FPUs and barrier network that the ISA frontend uses.
 *
 * Dependence model: by default each awaited operation depends on the
 * result of the previous one (an in-order dependence chain, like
 * straight-line compiled code). Batches issue independent operations
 * back-to-back, one per cycle, modeling what compiler scheduling or
 * hand-unrolling would overlap (paper section 3.2.2, "unrolling").
 *
 * Helper coroutines compose: a GuestTask is itself awaitable
 * (symmetric transfer), so workloads can factor phases into
 * sub-coroutines that share the same GuestCtx.
 */

#ifndef CYCLOPS_EXEC_GUEST_H
#define CYCLOPS_EXEC_GUEST_H

#include <coroutine>
#include <span>
#include <vector>

#include "arch/fpu.h"
#include "common/types.h"

namespace cyclops::exec
{

class GuestUnit;
struct CentralBarrier;
struct TreeBarrier;

/** A void coroutine task, awaitable from another guest coroutine. */
class GuestTask
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        GuestTask
        get_return_object()
        {
            return GuestTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> self) noexcept
            {
                auto cont = self.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }
            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        [[noreturn]] void unhandled_exception();
    };

    GuestTask() = default;
    explicit GuestTask(std::coroutine_handle<promise_type> h) : h_(h) {}
    GuestTask(GuestTask &&other) noexcept : h_(other.h_)
    {
        other.h_ = nullptr;
    }
    GuestTask &
    operator=(GuestTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            h_ = other.h_;
            other.h_ = nullptr;
        }
        return *this;
    }
    GuestTask(const GuestTask &) = delete;
    GuestTask &operator=(const GuestTask &) = delete;
    ~GuestTask() { destroy(); }

    // Awaitable: transfer into the child coroutine.
    bool await_ready() const noexcept { return !h_ || h_.done(); }
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        h_.promise().continuation = cont;
        return h_;
    }
    void await_resume() const noexcept {}

    std::coroutine_handle<promise_type> handle() const { return h_; }
    bool done() const { return !h_ || h_.done(); }

  private:
    void
    destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = nullptr;
        }
    }
    std::coroutine_handle<promise_type> h_;
};

/** Kinds of micro-operations a guest can await. */
enum class OpKind : u8
{
    Load,
    Store,
    AmoAdd,
    AmoSwap,
    AmoCas,
    Fpu,
    Alu,
    Branch,
    Sync,
    HwBarrier,
    SwCentralBarrier,
    SwTreeBarrier,
};

/** One awaited micro-operation. */
struct MicroOp
{
    OpKind kind = OpKind::Alu;
    Addr ea = 0;
    u8 bytes = 8;
    u64 value = 0;      ///< store data / atomic operand / CAS desired
    u64 expect = 0;     ///< CAS expected value
    arch::FpuOp fpu = arch::FpuOp::Add;
    u32 count = 1;      ///< ALU op count / hardware barrier id
    bool indep = false; ///< no dependence on the current chain
    u64 result = 0;     ///< load / atomic result (filled on completion)
    CentralBarrier *central = nullptr;
    TreeBarrier *tree = nullptr;

    static MicroOp
    load(Addr ea, u8 bytes = 8, bool indep = false)
    {
        MicroOp op;
        op.kind = OpKind::Load;
        op.ea = ea;
        op.bytes = bytes;
        op.indep = indep;
        return op;
    }

    static MicroOp
    store(Addr ea, u64 value, u8 bytes = 8, bool indep = false)
    {
        MicroOp op;
        op.kind = OpKind::Store;
        op.ea = ea;
        op.bytes = bytes;
        op.value = value;
        op.indep = indep;
        return op;
    }

    static MicroOp
    fpuOp(arch::FpuOp which, bool indep = false)
    {
        MicroOp op;
        op.kind = OpKind::Fpu;
        op.fpu = which;
        op.indep = indep;
        return op;
    }

    static MicroOp
    alu(u32 n, bool indep = false)
    {
        MicroOp op;
        op.kind = OpKind::Alu;
        op.count = n;
        op.indep = indep;
        return op;
    }
};

/** Awaitable for one micro-op or a batch. Returned by GuestCtx. */
class OpAwait
{
  public:
    OpAwait(GuestUnit &unit, MicroOp op) : unit_(unit), single_(op)
    {
        ops_ = {&single_, 1};
    }
    OpAwait(GuestUnit &unit, std::span<MicroOp> ops)
        : unit_(unit), ops_(ops)
    {}

    bool await_ready() const noexcept { return ops_.empty(); }
    void await_suspend(std::coroutine_handle<> self) noexcept;
    u64 await_resume() const noexcept { return ops_[0].result; }

  private:
    GuestUnit &unit_;
    MicroOp single_;
    std::span<MicroOp> ops_;
};

/** The per-thread guest API handed to workload coroutines. */
class GuestCtx
{
  public:
    GuestCtx(GuestUnit &unit, u32 softIdx, u32 nThreads)
        : unit_(unit), softIdx_(softIdx), nThreads_(nThreads)
    {}

    u32 index() const { return softIdx_; }
    u32 threads() const { return nThreads_; }
    ThreadId hwThread() const;

    // --- Single dependent operations --------------------------------------

    /** Load @p bytes at @p ea; resumes with the (zero-extended) value. */
    OpAwait load(Addr ea, u8 bytes = 8) const
    {
        return {unit_, MicroOp::load(ea, bytes)};
    }

    /** Store @p value. */
    OpAwait store(Addr ea, u64 value, u8 bytes = 8) const
    {
        return {unit_, MicroOp::store(ea, value, bytes)};
    }

    /** Atomic fetch-and-add on a 32-bit word; resumes with the old value. */
    OpAwait
    amoadd(Addr ea, u32 value) const
    {
        MicroOp op;
        op.kind = OpKind::AmoAdd;
        op.ea = ea;
        op.bytes = 4;
        op.value = value;
        return {unit_, op};
    }

    /** Atomic swap; resumes with the old value. */
    OpAwait
    amoswap(Addr ea, u32 value) const
    {
        MicroOp op;
        op.kind = OpKind::AmoSwap;
        op.ea = ea;
        op.bytes = 4;
        op.value = value;
        return {unit_, op};
    }

    /** Atomic compare-and-swap; resumes with the old value. */
    OpAwait
    amocas(Addr ea, u32 expect, u32 desired) const
    {
        MicroOp op;
        op.kind = OpKind::AmoCas;
        op.ea = ea;
        op.bytes = 4;
        op.expect = expect;
        op.value = desired;
        return {unit_, op};
    }

    /** One FPU operation on the quad's shared FPU. */
    OpAwait fpu(arch::FpuOp which) const
    {
        return {unit_, MicroOp::fpuOp(which)};
    }

    /**
     * @p n single-cycle integer/logic instructions. Dependent by
     * default (they extend the chain); pass @p indep for loop/index
     * overhead that does not consume prior results.
     */
    OpAwait
    alu(u32 n = 1, bool indep = false) const
    {
        return {unit_, MicroOp::alu(n, indep)};
    }

    /** Loop/branch overhead: one 2-cycle branch. */
    OpAwait
    branch() const
    {
        MicroOp op;
        op.kind = OpKind::Branch;
        return {unit_, op};
    }

    /** Drain all outstanding memory operations. */
    OpAwait
    sync() const
    {
        MicroOp op;
        op.kind = OpKind::Sync;
        return {unit_, op};
    }

    /** A batch of operations issued back-to-back (one per cycle). */
    OpAwait batch(std::span<MicroOp> ops) const { return {unit_, ops}; }

    // --- Barriers ----------------------------------------------------------

    /** Enter hardware barrier @p id (wired-OR SPR protocol). */
    OpAwait
    hwBarrier(u32 id = 0) const
    {
        MicroOp op;
        op.kind = OpKind::HwBarrier;
        op.count = id;
        return {unit_, op};
    }

    /** Enter a central sense-reversing software barrier. */
    OpAwait
    swBarrier(CentralBarrier &barrier) const
    {
        MicroOp op;
        op.kind = OpKind::SwCentralBarrier;
        op.central = &barrier;
        return {unit_, op};
    }

    /** Enter the paper's tree-based software barrier. */
    OpAwait
    swBarrier(TreeBarrier &barrier) const
    {
        MicroOp op;
        op.kind = OpKind::SwTreeBarrier;
        op.tree = &barrier;
        return {unit_, op};
    }

    // --- Convenience: typed memory helpers (functional reads are free;
    // use load()/store() to charge time) -----------------------------------

    /** Read a double directly (no simulated time; setup/verification). */
    double peekDouble(Addr ea) const;

    /** Write a double directly (no simulated time). */
    void pokeDouble(Addr ea, double value) const;

    GuestUnit &unit() const { return unit_; }

  private:
    GuestUnit &unit_;
    u32 softIdx_;
    u32 nThreads_;
};

/** The signature workloads implement for each thread. */
using GuestFn = GuestTask (*)(GuestCtx &);

} // namespace cyclops::exec

#endif // CYCLOPS_EXEC_GUEST_H
