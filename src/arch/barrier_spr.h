/**
 * @file
 * The fast inter-thread hardware barrier (paper section 2.3).
 *
 * Every thread owns an 8-bit special purpose register; reading the SPR
 * returns the wired OR of all threads' registers. Two bits serve each
 * of 4 distinct barriers: one bit holds the state of the current
 * barrier cycle, the other the state of the next cycle. To enter a
 * barrier a thread atomically clears its current bit and sets its next
 * bit, then spins reading the OR until the current bit drops to zero —
 * which happens exactly when every participant has entered. Roles swap
 * after each use. Because each thread spin-waits on its own register,
 * there is no contention for other chip resources.
 *
 * This class is the functional wired-OR; the SPR read/write timing is
 * charged by the frontends (sprLat).
 *
 * Usage note: two *consecutive* global barriers must use different
 * barrier ids. Re-using one id back-to-back races a slow spinner
 * against fast threads whose re-entry sets the very bit the spinner
 * waits to see drop — one reason the register provides four distinct
 * barriers. Software layers here alternate between two ids.
 */

#ifndef CYCLOPS_ARCH_BARRIER_SPR_H
#define CYCLOPS_ARCH_BARRIER_SPR_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace cyclops::arch
{

/** Number of distinct hardware barriers (8 bits / 2 per barrier). */
inline constexpr u32 kNumHwBarriers = 4;

/** The chip-wide wired-OR barrier network. */
class BarrierSpr
{
  public:
    void init(u32 numThreads, StatGroup *stats);

    /** Write thread @p tid's 8-bit register. */
    void write(ThreadId tid, u8 value);

    /**
     * Mask the wired OR to alive TUs (degraded chip): dead threads'
     * registers are forced to zero and later writes from them are
     * ignored, so a fused-off TU can never hold a barrier bit high.
     * @p alive has one nonzero byte per alive thread; an empty vector
     * restores the everyone-alive default.
     */
    void setAlive(const std::vector<u8> &alive);

    /** Read the OR of all registers (what any mfspr returns). */
    u8 read() const { return orValue_; }

    /**
     * Register a mutation guard for the sharded engine. While
     * *@p inPhaseA is true (the engine is inside a phase-A worker
     * window), any write() panics: barrier SPR writes are global
     * wired-OR mutations and must always be deferred to the serial
     * phase-B commit. A violation here means a unit's tickLocal()
     * path mutated shared state instead of deferring — which would
     * silently break the bit-identical-to-serial guarantee. Pass
     * nullptr to unregister.
     */
    void setMutationGuard(const bool *inPhaseA) { guard_ = inPhaseA; }

    /** Raw register of one thread (testing/debug). */
    u8 threadValue(ThreadId tid) const { return regs_[tid]; }

  private:
    void recomputeOr();

    std::vector<u8> regs_;
    std::vector<u8> alive_; ///< empty = all threads alive
    const bool *guard_ = nullptr; ///< sharded-engine phase-A flag
    u8 orValue_ = 0;
    std::vector<u32> bitCounts_; ///< population count per bit position

    Counter writes_;
    Counter releases_; ///< wired-OR bits dropping 1 -> 0 (barrier opens)
};

/**
 * Software-side protocol helper: the per-thread state for using one of
 * the 4 hardware barriers. Mirrors the bit manipulation that generated
 * code performs, so both frontends share one implementation.
 */
class HwBarrierProtocol
{
  public:
    explicit HwBarrierProtocol(u32 barrierId = 0) : id_(barrierId) {}

    /** Bits to write before first use (participants only). */
    u8 armValue() const { return u8(1u << bitCurrent()); }

    /**
     * Value to write on entering the barrier: clear current, set next.
     * Call consumeRelease() after the spin observes release.
     */
    u8
    enterValue(u8 oldReg) const
    {
        u8 value = oldReg;
        value &= ~u8(1u << bitCurrent());
        value |= u8(1u << bitNext());
        return value;
    }

    /** True once the OR shows every participant entered. */
    bool
    released(u8 orValue) const
    {
        return (orValue & (1u << bitCurrent())) == 0;
    }

    /** Swap current/next roles for the next use of the barrier. */
    void consumeRelease() { phase_ ^= 1; }

    u32 barrierId() const { return id_; }

  private:
    u32 bitCurrent() const { return 2 * id_ + phase_; }
    u32 bitNext() const { return 2 * id_ + (phase_ ^ 1); }

    u32 id_;
    u32 phase_ = 0;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_BARRIER_SPR_H
