/**
 * @file
 * The execution-unit interface driven by the chip's cycle engine.
 *
 * A Unit models what occupies one hardware thread unit. Two frontends
 * implement it: the ISA interpreter (arch/thread_unit.h) and the
 * execution-driven coroutine adapter (exec/guest_unit.h). Both share
 * run/stall-cycle accounting, which Figure 7 of the paper reports.
 */

#ifndef CYCLOPS_ARCH_UNIT_H
#define CYCLOPS_ARCH_UNIT_H

#include <algorithm>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace cyclops::arch
{

/**
 * Where one thread-unit cycle went — the Figure 7 total/run/stall
 * split, generalized to the paper's individual stall causes. Every
 * cycle between a unit's first and last activity is charged to exactly
 * one category; cycles outside that window (before spawn, after halt,
 * or parked between kernel dispatches) are "sleep".
 */
enum class CycleCat : u8 {
    Run = 0,            ///< issuing/executing instructions
    IcacheMiss = 1,     ///< waiting on a PIB refill through the I-cache
    DcacheMiss = 2,     ///< waiting on data-memory results (service time)
    BankContention = 3, ///< queueing share of memory waits (ports/banks)
    FpuArb = 4,         ///< FPU/long-latency functional-unit waits
    BarrierWait = 5,    ///< barrier entry and spin waits
    RemoteWait = 6,     ///< fabric round trips and injection backpressure
};

inline constexpr u32 kNumCycleCats = 7;

/** Display names; index kNumCycleCats is the derived "sleep" bucket. */
inline constexpr const char *kCycleCatNames[kNumCycleCats + 1] = {
    "run",  "icacheMiss",  "dcacheMiss",
    "bankContention", "fpuArb", "barrierWait", "remoteWait", "sleep"};

/** Per-category cycle totals for one TU, one quad, or the whole chip. */
struct CycleBreakdown {
    u64 cat[kNumCycleCats] = {};
    u64 sleep = 0;

    u64 &operator[](CycleCat c) { return cat[static_cast<u8>(c)]; }
    u64 operator[](CycleCat c) const { return cat[static_cast<u8>(c)]; }

    /** Cycles charged to an explicit category (excludes sleep). */
    u64
    charged() const
    {
        u64 sum = 0;
        for (u64 v : cat)
            sum += v;
        return sum;
    }

    /** All cycles including sleep. */
    u64 total() const { return charged() + sleep; }

    /** Indexed access; index kNumCycleCats is the sleep bucket. */
    u64 value(u32 i) const { return i < kNumCycleCats ? cat[i] : sleep; }

    void
    add(const CycleBreakdown &other)
    {
        for (u32 i = 0; i < kNumCycleCats; ++i)
            cat[i] += other.cat[i];
        sleep += other.sleep;
    }
};

/** One schedulable hardware thread context. */
class Unit
{
  public:
    explicit Unit(ThreadId tid) : tid_(tid) {}
    virtual ~Unit() = default;

    Unit(const Unit &) = delete;
    Unit &operator=(const Unit &) = delete;

    /**
     * Advance this unit at cycle @p now (it is only called when due).
     *
     * @return the next cycle the unit wants to run, or kCycleNever if
     *         it halted. Must be > @p now unless halted.
     */
    virtual Cycle tick(Cycle now) = 0;

    /**
     * tickLocal() returns this when the tick would touch shared chip
     * state and must instead run as a full tick() in canonical order.
     */
    static constexpr Cycle kTickDeferred = kCycleNever - 1;

    /**
     * Domain-local attempt at tick(), for the sharded engine's phase A
     * (see DESIGN.md section 14). Either perform *exactly* what
     * tick(now) would — touching only this unit and its quad-local
     * resources — and return the same wake cycle, or return
     * kTickDeferred having made no observable state change (pruning
     * completed entries from the outstanding-memory set is allowed: it
     * is idempotent and unobservable). The default defers everything,
     * which is always correct.
     *
     * @p fpuOk false means a canonically-earlier quad-mate deferred
     * this cycle and may still dispatch the shared FPU in phase B, so
     * a tick that would dispatch the FPU must defer to preserve the
     * serial arbitration order; everything else may proceed.
     */
    virtual Cycle tickLocal(Cycle now, bool fpuOk)
    {
        (void)now;
        (void)fpuOk;
        return kTickDeferred;
    }

    /** True once the unit has executed its halt. */
    bool halted() const { return halted_; }

    ThreadId tid() const { return tid_; }

    /** Cycles spent issuing/executing instructions. */
    u64 runCycles() const { return cat_[static_cast<u8>(CycleCat::Run)]; }

    /** Cycles spent stalled on operands or shared resources. */
    u64 stallCycles() const { return chargedCycles() - runCycles(); }

    /** Cycles charged to @p c. */
    u64 catCycles(CycleCat c) const { return cat_[static_cast<u8>(c)]; }

    /** All cycles charged to any category (= run + stall). */
    u64
    chargedCycles() const
    {
        u64 sum = 0;
        for (u64 v : cat_)
            sum += v;
        return sum;
    }

    /**
     * First cycle any charge begins / one past the last cycle charged.
     * The accounting invariant — every cycle between them charged to
     * exactly one category — is lastChargeEnd() - firstChargeAt() ==
     * chargedCycles(), which tests assert per TU.
     */
    Cycle firstChargeAt() const { return firstChargeAt_; }
    Cycle lastChargeEnd() const { return lastChargeEnd_; }

    /** Instructions issued. */
    u64 instructions() const { return instructions_; }

    /** Per-TU cache event counts (guest-visible via counter SPRs). */
    u64 dcacheHits() const { return dcacheHits_; }
    u64 dcacheMisses() const { return dcacheMisses_; }
    u64 icacheMisses() const { return icacheMisses_; }

    /**
     * Current architectural PC for the PC-sampling profiler. Frontends
     * without a program counter (the coroutine adapter) return false and
     * are sampled as unmapped.
     */
    virtual bool samplePc(PhysAddr *pc) const
    {
        (void)pc;
        return false;
    }

    /**
     * Forward-progress events observed so far — food for the chip-wide
     * deadlock watchdog. Retired instructions do *not* count: a TU
     * spinning on a barrier retires load/compare/branch forever. Both
     * frontends instead report an event when they do something a spin
     * loop cannot: write a new value, store, or poll a location whose
     * value changed since the last poll at the same site.
     */
    u64 progressEvents() const { return progressEvents_; }

    /** Last location polled (notePoll) — watchdog diagnostics. */
    PhysAddr pollPc() const { return pollPc_; }
    u64 pollLoc() const { return pollLoc_; }
    u64 pollValue() const { return pollValue_; }

  protected:
    /** Count one data-side cache access against this TU. */
    void
    noteDmem(bool hit)
    {
        if (hit)
            ++dcacheHits_;
        else
            ++dcacheMisses_;
    }

    /** Count @p misses I-cache line misses against this TU. */
    void noteImiss(u64 misses) { icacheMisses_ += misses; }
    /**
     * Record the issue at @p now of one instruction occupying @p exec
     * cycles: charges [now, now+exec) as Run.
     */
    void
    accountIssue(Cycle now, u32 exec)
    {
        cat_[static_cast<u8>(CycleCat::Run)] += exec;
        ++instructions_;
        touch(now, now + exec);
    }

    /** Charge the blocked interval [now, wake) to @p cat. */
    void
    accountWait(Cycle now, Cycle wake, CycleCat cat)
    {
        if (wake <= now)
            return;
        cat_[static_cast<u8>(cat)] += wake - now;
        touch(now, wake);
    }

    /**
     * Charge a memory wait [now, wake): up to @p queueing cycles of it
     * are contention (time the request spent queued at a cache port,
     * MSHR or bank) and go to BankContention; the rest — the intrinsic
     * service time — goes to @p cat. RemoteWait is the exception: its
     * queueing share is fabric injection backpressure, not bank
     * contention, so the whole span stays in the remote bucket.
     */
    void
    accountMemWait(Cycle now, Cycle wake, CycleCat cat, u64 queueing)
    {
        if (wake <= now)
            return;
        const u64 span = wake - now;
        const u64 queued = cat == CycleCat::RemoteWait
                               ? 0
                               : std::min(span, queueing);
        cat_[static_cast<u8>(CycleCat::BankContention)] += queued;
        cat_[static_cast<u8>(cat)] += span - queued;
        touch(now, wake);
    }

    void markHalted() { halted_ = true; ++progressEvents_; }

    /** Report an unconditional forward-progress event. */
    void noteProgress() { ++progressEvents_; }

    /**
     * Report a poll: a read of @p loc at site @p pc that produced
     * @p value. Progress only if the (site, location, value) tuple
     * differs from the previous poll — a spin loop re-reading an
     * unchanged barrier SPR or lock word generates none, while a
     * consumer seeing a producer's write does.
     */
    void
    notePoll(PhysAddr pc, u64 loc, u64 value)
    {
        if (pc != pollPc_ || loc != pollLoc_ || value != pollValue_) {
            pollPc_ = pc;
            pollLoc_ = loc;
            pollValue_ = value;
            ++progressEvents_;
        }
    }

    /** Extend the charged window to cover [start, end). */
    void
    touch(Cycle start, Cycle end)
    {
        if (start < firstChargeAt_)
            firstChargeAt_ = start;
        if (end > lastChargeEnd_)
            lastChargeEnd_ = end;
    }

    ThreadId tid_;
    bool halted_ = false;
    u64 cat_[kNumCycleCats] = {};
    Cycle firstChargeAt_ = kCycleNever;
    Cycle lastChargeEnd_ = 0;
    u64 instructions_ = 0;
    u64 dcacheHits_ = 0;
    u64 dcacheMisses_ = 0;
    u64 icacheMisses_ = 0;
    u64 progressEvents_ = 0;
    PhysAddr pollPc_ = ~PhysAddr(0);
    u64 pollLoc_ = ~u64(0);
    u64 pollValue_ = 0;
};

/**
 * Bounded set of in-flight memory operation completion times — the
 * per-thread limit on outstanding memory references. Each entry also
 * remembers whether it crossed the fabric, so a wait gated on a remote
 * operation is charged to RemoteWait instead of the d-cache bucket.
 */
class OutstandingMem
{
  public:
    void
    init(u32 limit)
    {
        limit_ = limit;
        entries_.clear();
        entries_.reserve(limit);
    }

    /** Drop completed operations. */
    void
    prune(Cycle now)
    {
        std::erase_if(entries_,
                      [&](const Entry &e) { return e.done <= now; });
    }

    bool full() const { return entries_.size() >= limit_; }
    bool empty() const { return entries_.empty(); }

    /** Completion time that frees the first slot. */
    Cycle earliest() const { return minEntry().done; }

    /** Completion time of the last operation to finish. */
    Cycle latest() const { return maxEntry().done; }

    /** Whether the operation freeing the first slot is remote. */
    bool earliestFabric() const { return minEntry().fabric; }

    /** Whether the operation finishing last is remote. */
    bool latestFabric() const { return maxEntry().fabric; }

    void add(Cycle done, bool fabric = false)
    {
        entries_.push_back({done, fabric});
    }

  private:
    struct Entry
    {
        Cycle done;
        bool fabric;
    };

    // First-min / first-max: a deterministic tie-break so attribution
    // is identical across engines when completion times collide.
    const Entry &
    minEntry() const
    {
        return *std::min_element(
            entries_.begin(), entries_.end(),
            [](const Entry &a, const Entry &b) { return a.done < b.done; });
    }

    const Entry &
    maxEntry() const
    {
        return *std::max_element(
            entries_.begin(), entries_.end(),
            [](const Entry &a, const Entry &b) { return a.done < b.done; });
    }

    u32 limit_ = 4;
    std::vector<Entry> entries_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_UNIT_H
