/**
 * @file
 * The execution-unit interface driven by the chip's cycle engine.
 *
 * A Unit models what occupies one hardware thread unit. Two frontends
 * implement it: the ISA interpreter (arch/thread_unit.h) and the
 * execution-driven coroutine adapter (exec/guest_unit.h). Both share
 * run/stall-cycle accounting, which Figure 7 of the paper reports.
 */

#ifndef CYCLOPS_ARCH_UNIT_H
#define CYCLOPS_ARCH_UNIT_H

#include <algorithm>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace cyclops::arch
{

/** One schedulable hardware thread context. */
class Unit
{
  public:
    explicit Unit(ThreadId tid) : tid_(tid) {}
    virtual ~Unit() = default;

    Unit(const Unit &) = delete;
    Unit &operator=(const Unit &) = delete;

    /**
     * Advance this unit at cycle @p now (it is only called when due).
     *
     * @return the next cycle the unit wants to run, or kCycleNever if
     *         it halted. Must be > @p now unless halted.
     */
    virtual Cycle tick(Cycle now) = 0;

    /** True once the unit has executed its halt. */
    bool halted() const { return halted_; }

    ThreadId tid() const { return tid_; }

    /** Cycles spent issuing/executing instructions. */
    u64 runCycles() const { return runCycles_; }

    /** Cycles spent stalled on operands or shared resources. */
    u64 stallCycles() const { return stallCycles_; }

    /** Instructions issued. */
    u64 instructions() const { return instructions_; }

  protected:
    /** Record the issue of one instruction occupying @p exec cycles. */
    void
    accountIssue(u32 exec)
    {
        runCycles_ += exec;
        ++instructions_;
    }

    /** Record a blocked interval [now, wake). */
    void
    accountStall(Cycle now, Cycle wake)
    {
        if (wake > now)
            stallCycles_ += wake - now;
    }

    void markHalted() { halted_ = true; }

    ThreadId tid_;
    bool halted_ = false;
    u64 runCycles_ = 0;
    u64 stallCycles_ = 0;
    u64 instructions_ = 0;
};

/**
 * Bounded set of in-flight memory operation completion times — the
 * per-thread limit on outstanding memory references.
 */
class OutstandingMem
{
  public:
    void
    init(u32 limit)
    {
        limit_ = limit;
        times_.clear();
        times_.reserve(limit);
    }

    /** Drop completed operations. */
    void
    prune(Cycle now)
    {
        std::erase_if(times_, [&](Cycle t) { return t <= now; });
    }

    bool full() const { return times_.size() >= limit_; }
    bool empty() const { return times_.empty(); }

    /** Completion time that frees the first slot. */
    Cycle
    earliest() const
    {
        return *std::min_element(times_.begin(), times_.end());
    }

    /** Completion time of the last operation to finish. */
    Cycle
    latest() const
    {
        return *std::max_element(times_.begin(), times_.end());
    }

    void add(Cycle done) { times_.push_back(done); }

  private:
    u32 limit_ = 4;
    std::vector<Cycle> times_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_UNIT_H
