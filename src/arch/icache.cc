#include "arch/icache.h"

#include <algorithm>

#include "arch/memsys.h"
#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

void
ICache::init(u32 id, const ChipConfig &cfg, StatGroup *stats)
{
    cfg_ = &cfg;
    numSets_ = cfg.icacheBytes / (cfg.icacheLineBytes * cfg.icacheAssoc);
    if (!isPow2(numSets_))
        fatal("icache geometry yields %u sets (not a power of two)",
              numSets_);
    ways_.assign(size_t(numSets_) * cfg.icacheAssoc, Way{});
    if (stats) {
        const std::string prefix = strprintf("icache%u.", id);
        stats->addCounter(prefix + "hits", &hits_);
        stats->addCounter(prefix + "misses", &misses_);
        stats->addCounter(prefix + "portWaitCycles", &portWaitCycles_);
    }
}

bool
ICache::lookupInsert(PhysAddr lineAddr, Cycle now)
{
    const u32 line = lineAddr / cfg_->icacheLineBytes;
    const u32 set = line & (numSets_ - 1);
    const u32 tag = line / numSets_;
    Way *base = &ways_[size_t(set) * cfg_->icacheAssoc];
    Way *lru = base;
    for (u32 i = 0; i < cfg_->icacheAssoc; ++i) {
        if (base[i].valid && base[i].tag == tag) {
            base[i].lastUse = now;
            return true;
        }
        if (!base[i].valid || base[i].lastUse < lru->lastUse)
            lru = &base[i];
    }
    lru->valid = true;
    lru->tag = tag;
    lru->lastUse = now;
    return false;
}

Cycle
ICache::refill(Cycle now, PhysAddr addr, MemSystem &fabric, u32 quad,
               u32 *missesOut)
{
    const Cycle grant = std::max(now, portFree_);
    portWaitCycles_ += grant - now;
    portFree_ = grant + 1;

    // The PIB window may span several I-cache lines; the slowest line
    // determines readiness (interleaved banks serve them in parallel).
    const u32 windowBytes = cfg_->pibEntries * 4;
    Cycle ready = grant + cfg_->lat.icacheHitRefill;
    u32 lineMisses = 0;
    for (PhysAddr lineAddr = PhysAddr(roundDown(addr, cfg_->icacheLineBytes));
         lineAddr < addr + windowBytes;
         lineAddr += cfg_->icacheLineBytes) {
        if (lookupInsert(lineAddr, grant)) {
            ++hits_;
            continue;
        }
        ++misses_;
        ++lineMisses;
        const Cycle bankReq = grant + cfg_->lat.missToBank;
        BankGrant bg = fabric.fetchLine(
            bankReq, lineAddr,
            cfg_->icacheLineBytes / cfg_->memBlockBytes, quad);
        ready = std::max(ready, bg.start + bg.transferCycles +
                                    cfg_->lat.bankToCache);
    }
    if (missesOut)
        *missesOut = lineMisses;
    return ready;
}

Cycle
ICache::refillSampled(Cycle now, PhysAddr addr, u32 *missesOut)
{
    const u32 windowBytes = cfg_->pibEntries * 4;
    const u32 blocks = cfg_->icacheLineBytes / cfg_->memBlockBytes;
    Cycle ready = now + cfg_->lat.icacheHitRefill;
    u32 lineMisses = 0;
    for (PhysAddr lineAddr = PhysAddr(roundDown(addr, cfg_->icacheLineBytes));
         lineAddr < addr + windowBytes;
         lineAddr += cfg_->icacheLineBytes) {
        if (lookupInsert(lineAddr, now)) {
            ++hits_;
            continue;
        }
        ++misses_;
        ++lineMisses;
        ready = std::max(ready, now + cfg_->lat.missToBank +
                                    blocks * cfg_->lat.bankBlockCycles +
                                    cfg_->lat.bankToCache);
    }
    if (missesOut)
        *missesOut = lineMisses;
    return ready;
}

} // namespace cyclops::arch
