/**
 * @file
 * Instruction cache (one per two quads) and the per-thread Prefetch
 * Instruction Buffer (PIB).
 *
 * Each thread fetches straight-line code out of its 16-instruction PIB
 * for free; leaving the buffer (a taken branch, or running off the
 * end) triggers a refill through the I-cache's single shared port. A
 * refill that misses the I-cache fetches the 32-byte line from the
 * memory banks.
 */

#ifndef CYCLOPS_ARCH_ICACHE_H
#define CYCLOPS_ARCH_ICACHE_H

#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace cyclops::arch
{

class MemSystem;

/** Timing model of one shared instruction cache. */
class ICache
{
  public:
    void init(u32 id, const ChipConfig &cfg, StatGroup *stats);

    /**
     * Refill a thread's PIB window starting at @p addr (the aligned
     * base of the window) for a thread of quad @p quad. Returns the
     * cycle the PIB is usable; if @p missesOut is non-null it receives
     * the number of I-cache line misses this refill took.
     */
    Cycle refill(Cycle now, PhysAddr addr, MemSystem &fabric, u32 quad,
                 u32 *missesOut = nullptr);

    /**
     * Sampled-mode refill: warms the tag array like refill() but leaves
     * the port and banks untouched and charges uncontended latencies
     * (see MemSystem::accessSampled).
     */
    Cycle refillSampled(Cycle now, PhysAddr addr, u32 *missesOut = nullptr);

    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }

  private:
    /** Look up one line; inserts on miss. Returns true on hit. */
    bool lookupInsert(PhysAddr lineAddr, Cycle now);

    const ChipConfig *cfg_ = nullptr;
    u32 numSets_ = 0;

    struct Way
    {
        u32 tag = 0;
        bool valid = false;
        Cycle lastUse = 0;
    };
    std::vector<Way> ways_; ///< sets x assoc

    Cycle portFree_ = 0;

    Counter hits_;
    Counter misses_;
    Counter portWaitCycles_;
};

/** Per-thread prefetch instruction buffer state. */
class Pib
{
  public:
    void
    init(const ChipConfig &cfg)
    {
        windowBytes_ = cfg.pibEntries * 4;
        base_ = ~PhysAddr(0);
        enabled_ = cfg.pibEnabled;
    }

    /** True if @p pc can issue straight from the buffer. */
    bool
    contains(PhysAddr pc) const
    {
        return !enabled_ || (pc >= base_ && pc < base_ + windowBytes_);
    }

    /** Aligned window base for a refill at @p pc. */
    PhysAddr
    windowBase(PhysAddr pc) const
    {
        return pc & ~(windowBytes_ - 1);
    }

    /** Install the window holding @p pc. */
    void load(PhysAddr pc) { base_ = windowBase(pc); }

    void invalidate() { base_ = ~PhysAddr(0); }

  private:
    PhysAddr base_ = ~PhysAddr(0);
    u32 windowBytes_ = 64;
    bool enabled_ = true;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_ICACHE_H
