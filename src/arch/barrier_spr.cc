#include "arch/barrier_spr.h"

#include "common/log.h"

namespace cyclops::arch
{

void
BarrierSpr::init(u32 numThreads, StatGroup *stats)
{
    regs_.assign(numThreads, 0);
    bitCounts_.assign(8, 0);
    orValue_ = 0;
    if (stats) {
        stats->addCounter("barrier.sprWrites", &writes_);
        stats->addCounter("barrier.releases", &releases_);
    }
}

void
BarrierSpr::setAlive(const std::vector<u8> &alive)
{
    alive_ = alive;
    if (alive_.empty())
        return;
    // Zero dead threads' registers via write() so the incremental
    // per-bit counts stay consistent, then drop them from the OR.
    for (ThreadId tid = 0; tid < regs_.size(); ++tid)
        if (!alive_[tid] && regs_[tid] != 0)
            write(tid, 0);
}

void
BarrierSpr::write(ThreadId tid, u8 value)
{
    if (tid >= regs_.size())
        panic("BarrierSpr::write from unknown thread %u", tid);
    if (guard_ && *guard_)
        panic("BarrierSpr::write(tid=%u) during a sharded phase-A "
              "window — barrier writes must defer to phase B",
              tid);
    if (!alive_.empty() && !alive_[tid] && value != 0)
        return;
    const u8 old = regs_[tid];
    if (old == value)
        return;
    regs_[tid] = value;
    ++writes_;
    // Incrementally maintain per-bit population counts so reads are O(1).
    for (u32 bit = 0; bit < 8; ++bit) {
        const u8 mask = u8(1u << bit);
        if ((old & mask) && !(value & mask)) {
            if (--bitCounts_[bit] == 0) {
                orValue_ &= ~mask;
                // The last participant left this bit: the barrier
                // using it as its current bit just released.
                ++releases_;
            }
        } else if (!(old & mask) && (value & mask)) {
            if (bitCounts_[bit]++ == 0)
                orValue_ |= mask;
        }
    }
}

void
BarrierSpr::recomputeOr()
{
    orValue_ = 0;
    for (u8 reg : regs_)
        orValue_ |= reg;
}

} // namespace cyclops::arch
