#include "arch/barrier_spr.h"

#include "common/log.h"

namespace cyclops::arch
{

void
BarrierSpr::init(u32 numThreads, StatGroup *stats)
{
    regs_.assign(numThreads, 0);
    bitCounts_.assign(8, 0);
    orValue_ = 0;
    if (stats) {
        stats->addCounter("barrier.sprWrites", &writes_);
        stats->addCounter("barrier.releases", &releases_);
    }
}

void
BarrierSpr::write(ThreadId tid, u8 value)
{
    if (tid >= regs_.size())
        panic("BarrierSpr::write from unknown thread %u", tid);
    const u8 old = regs_[tid];
    if (old == value)
        return;
    regs_[tid] = value;
    ++writes_;
    // Incrementally maintain per-bit population counts so reads are O(1).
    for (u32 bit = 0; bit < 8; ++bit) {
        const u8 mask = u8(1u << bit);
        if ((old & mask) && !(value & mask)) {
            if (--bitCounts_[bit] == 0) {
                orValue_ &= ~mask;
                // The last participant left this bit: the barrier
                // using it as its current bit just released.
                ++releases_;
            }
        } else if (!(old & mask) && (value & mask)) {
            if (bitCounts_[bit]++ == 0)
                orValue_ |= mask;
        }
    }
}

void
BarrierSpr::recomputeOr()
{
    orValue_ = 0;
    for (u8 reg : regs_)
        orValue_ |= reg;
}

} // namespace cyclops::arch
