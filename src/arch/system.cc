#include "arch/system.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::arch
{

std::string
SystemConfig::check() const
{
    const std::string chipErr = chip.check();
    if (!chipErr.empty())
        return chipErr;
    if (numChips() == 0)
        return "system has no chips";
    if (numChips() > kRemoteMaxChips)
        return strprintf("%u chips exceed the %u-chip remote-window "
                         "limit (6 chip-id bits)",
                         numChips(), kRemoteMaxChips);
    if (fabric.reqHeaderBytes == 0 || fabric.respHeaderBytes == 0)
        return "fabric protocol headers must be nonzero";
    const PhysAddr base = windowBaseOf();
    if (base % kRemoteWindowBytes != 0)
        return strprintf("windowBase 0x%06x is not %u KB aligned", base,
                         kRemoteWindowBytes / 1024);
    if (base + kRemoteWindowBytes > chip.memBytes())
        return strprintf("remote window [0x%06x, 0x%06x) exceeds the "
                         "%u KB embedded memory",
                         base, base + kRemoteWindowBytes,
                         chip.memBytes() / 1024);
    // Chips address their own window with plain local EAs, so the
    // window must sit below the remote-window bit.
    if (base + kRemoteWindowBytes > kRemoteWindowBit)
        return strprintf("remote window [0x%06x, 0x%06x) overlaps the "
                         "remote-window address bit 0x%06x; set "
                         "windowBase explicitly",
                         base, base + kRemoteWindowBytes,
                         kRemoteWindowBit);
    return "";
}

void
SystemConfig::validate() const
{
    const std::string err = check();
    if (!err.empty())
        fatal("bad system configuration: %s", err.c_str());
}

namespace
{

/**
 * Per-chip variant of an observability output path: paths containing
 * "%t" stay as-is (the per-chip tag disambiguates them); plain paths
 * get a ".chipN" suffix so concurrent chips never share a file.
 */
std::string
perChipPath(const std::string &path, u32 id)
{
    if (path.empty() || path.find("%t") != std::string::npos)
        return path;
    return path + strprintf(".chip%u", id);
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg), obsOrig_(cfg.chip.obs), fabric_(cfg.fabric),
      windowBase_(cfg.windowBaseOf())
{
    cfg_.validate();
    const u32 n = cfg_.numChips();
    chips_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        ChipConfig cc = cfg_.chip;
        // The System writes the one merged multi-process trace itself;
        // per-chip tracers keep recording (traceCats untouched) but
        // must not each export a file. Stats/series/profile outputs
        // stay per chip under a disambiguated path and tag.
        cc.obs.traceOut.clear();
        cc.obs.tag = obsOrig_.tag.empty()
                         ? strprintf("chip%u", i)
                         : obsOrig_.tag + strprintf("-chip%u", i);
        cc.obs.statsJson = perChipPath(obsOrig_.statsJson, i);
        cc.obs.statsCsv = perChipPath(obsOrig_.statsCsv, i);
        cc.obs.profOut = perChipPath(obsOrig_.profOut, i);
        chips_.push_back(std::make_unique<Chip>(cc));
        chips_.back()->attachRemote(this, i, n);
    }
    staged_.resize(size_t(n) * cfg_.chip.numThreads);
}

void
System::loadProgramAll(const isa::Program &program)
{
    for (auto &chip : chips_)
        chip->loadProgram(program);
}

u32
System::liveUnits() const
{
    u32 live = 0;
    for (const auto &chip : chips_)
        live += chip->liveUnits();
    return live;
}

u64
System::totalInstructions() const
{
    u64 sum = 0;
    for (const auto &chip : chips_)
        sum += chip->totalInstructions();
    return sum;
}

u32
System::checkRemoteEa(u32 srcChip, ThreadId tid, Addr ea, u8 bytes) const
{
    const u32 dst = remoteChipOf(ea);
    if (dst >= numChips())
        guestCheck("remote window addresses chip %u of a %u-chip "
                   "system (chip %u thread %u, ea 0x%08x)",
                   dst, numChips(), srcChip, tid, ea);
    if (dst == srcChip)
        guestCheck("remote window targets the local chip %u "
                   "(thread %u, ea 0x%08x)", srcChip, tid, ea);
    if (remoteOffsetOf(ea) % bytes != 0)
        guestCheck("misaligned %u-byte remote access at 0x%08x "
                   "(chip %u thread %u)", bytes, ea, srcChip, tid);
    return dst;
}

u64
System::remoteRead(u32 srcChip, ThreadId tid, Addr ea, u8 bytes)
{
    const u32 dst = checkRemoteEa(srcChip, tid, ea, bytes);
    u64 value = 0;
    chips_[dst]->readPhys(windowBase_ + remoteOffsetOf(ea), &value,
                          bytes);
    return value;
}

void
System::remoteWrite(u32 srcChip, ThreadId tid, Addr ea, u8 bytes,
                    u64 value)
{
    checkRemoteEa(srcChip, tid, ea, bytes);
    StagedStore &s = staged_[size_t(srcChip) * cfg_.chip.numThreads + tid];
    if (s.valid)
        panic("chip %u thread %u staged a second remote store "
              "(ea 0x%08x) before the first was committed", srcChip,
              tid, ea);
    s = {true, ea, bytes, value};
}

MemTiming
System::remoteAccess(u32 srcChip, ThreadId tid, Cycle now, Addr ea,
                     u8 bytes, MemKind kind)
{
    if (kind == MemKind::Atomic)
        guestCheck("remote atomics are not supported (chip %u "
                   "thread %u, ea 0x%08x)", srcChip, tid, ea);
    const u32 dst = checkRemoteEa(srcChip, tid, ea, bytes);
    const net::Topology &topo = fabric_.topology();

    MemTiming t;
    t.remote = true;
    t.hit = false;
    if (kind == MemKind::Store) {
        StagedStore &s =
            staged_[size_t(srcChip) * cfg_.chip.numThreads + tid];
        if (!s.valid || s.ea != ea)
            panic("remote store timing with no staged value "
                  "(chip %u thread %u, ea 0x%08x)", srcChip, tid, ea);
        const u32 msg = cfg_.fabric.reqHeaderBytes + bytes;
        const net::Delivery d = fabric_.inject(now, srcChip, dst, msg);
        pending_.push({d.delivered, seq_++, dst,
                       windowBase_ + remoteOffsetOf(ea), s.bytes,
                       s.value});
        s.valid = false;
        // Posted store: the thread resumes when the injection port
        // drains, so sustained stores are paced to the link bandwidth
        // (the 12 GB/s I/O budget).
        t.ready = d.accepted;
        const u32 lbpc = cfg_.fabric.net.linkBytesPerCycle;
        const Cycle serialization = (msg + lbpc - 1) / lbpc;
        t.queueWait = d.accepted - now - serialization;
    } else {
        // Load/Prefetch: a header-only request, then the response with
        // the payload injected when the request arrives. The value
        // itself was snapshot by remoteRead at issue time.
        const u32 req = cfg_.fabric.reqHeaderBytes;
        const u32 resp = cfg_.fabric.respHeaderBytes + bytes;
        const net::Delivery d1 = fabric_.inject(now, srcChip, dst, req);
        const net::Delivery d2 =
            fabric_.inject(d1.delivered, dst, srcChip, resp);
        t.ready = d2.delivered;
        const Cycle uncontended =
            topo.uncontendedLatency(srcChip, dst, req) +
            topo.uncontendedLatency(dst, srcChip, resp);
        t.queueWait = (d2.delivered - now) - uncontended;
    }
    return t;
}

void
System::applyDeliveries(Cycle upTo)
{
    // Total (delivered, seq) order: a flag stored after its payload on
    // the same path has a later delivery cycle (per-link FIFO), so it
    // is applied after — the cross-chip ordering guests rely on.
    while (!pending_.empty() && pending_.top().delivered <= upTo) {
        const PendingStore &p = pending_.top();
        chips_[p.dstChip]->writePhys(p.pa, &p.value, p.bytes);
        pending_.pop();
    }
    fabric_.advance(upTo);
}

RunExit
System::run(Cycle maxCycles)
{
    const Cycle limit = maxCycles >= kCycleNever - now_
                            ? kCycleNever
                            : now_ + maxCycles;
    const Cycle epoch = cfg_.fabric.epoch();

    while (true) {
        Cycle minLive = kCycleNever;
        Cycle maxNow = now_;
        for (const auto &chip : chips_) {
            maxNow = std::max(maxNow, chip->now());
            if (chip->liveUnits())
                minLive = std::min(minLive, chip->now());
        }
        if (minLive == kCycleNever) {
            // Everything halted: flush the fabric so conservation
            // closes (flitsInFlight() == 0) and late stores land.
            now_ = std::max(now_, maxNow);
            applyDeliveries(kCycleNever);
            fabric_.drain();
            return {RunExitReason::AllHalted, now_};
        }
        if (now_ >= limit)
            return {RunExitReason::CycleLimit, now_};

        // One epoch, or a jump to where the laggard chip already is
        // (chips overshoot boundaries via their idle fast-forward; an
        // epoch no chip executes in needs no barrier of its own).
        Cycle target = now_ + epoch;
        if (minLive > target)
            target = minLive;
        target = std::min(target, limit);

        for (u32 i = 0; i < numChips(); ++i) {
            Chip &c = *chips_[i];
            if (c.liveUnits() == 0 || c.now() >= target)
                continue;
            RunExit e = c.run(target - c.now());
            if (e == RunExitReason::Watchdog) {
                e.diagnostic = strprintf("chip %u\n", i) + e.diagnostic;
                return e;
            }
            if (e == RunExitReason::Signal)
                return e;
        }
        now_ = target;
        applyDeliveries(now_);
    }
}

void
System::writeObservability()
{
    for (auto &chip : chips_)
        chip->writeObservability();
    if (obsOrig_.traceOut.empty())
        return;

    // One merged Chrome trace: chip N rides pid 10+N as process
    // "cyclops-chipN" (pids 1 and 2 stay reserved for the standalone
    // guest and host processes; tools/check_trace.py validates the
    // scheme).
    const std::string path = obsOrig_.expandPath(obsOrig_.traceOut);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace output '%s'", path.c_str());
    std::fputs("{\n  \"displayTimeUnit\": \"ns\",\n"
               "  \"traceEvents\": [\n",
               f);
    u64 dropped = 0;
    for (u32 i = 0; i < numChips(); ++i) {
        const std::string name = strprintf("cyclops-chip%u", i);
        chips_[i]->tracer().writeChromeEvents(f, 10 + i, name.c_str(),
                                              cfg_.chip.numThreads,
                                              i > 0);
        dropped += chips_[i]->tracer().dropped();
    }
    std::fprintf(f,
                 "\n  ],\n  \"otherData\": {\"droppedEvents\": %llu}\n}\n",
                 static_cast<unsigned long long>(dropped));
    std::fclose(f);
}

} // namespace cyclops::arch
