#include "arch/system.h"

#include <algorithm>

#include "common/log.h"

namespace cyclops::arch
{

std::string
SystemConfig::check() const
{
    const std::string chipErr = chip.check();
    if (!chipErr.empty())
        return chipErr;
    if (numChips() == 0)
        return "system has no chips";
    if (numChips() > kRemoteMaxChips)
        return strprintf("%u chips exceed the %u-chip remote-window "
                         "limit (6 chip-id bits)",
                         numChips(), kRemoteMaxChips);
    if (fabric.reqHeaderBytes == 0 || fabric.respHeaderBytes == 0)
        return "fabric protocol headers must be nonzero";
    if (!fabric.faults.empty()) {
        const std::string faultErr =
            net::checkFaultMap(fabric.net, fabric.faults);
        if (!faultErr.empty())
            return faultErr;
    }
    if (fabric.retryBackoff == 0 || fabric.retryTimeout == 0)
        return "fabric retry backoff/timeout must be nonzero";
    const PhysAddr base = windowBaseOf();
    if (base % kRemoteWindowBytes != 0)
        return strprintf("windowBase 0x%06x is not %u KB aligned", base,
                         kRemoteWindowBytes / 1024);
    if (base + kRemoteWindowBytes > chip.memBytes())
        return strprintf("remote window [0x%06x, 0x%06x) exceeds the "
                         "%u KB embedded memory",
                         base, base + kRemoteWindowBytes,
                         chip.memBytes() / 1024);
    // Chips address their own window with plain local EAs, so the
    // window must sit below the remote-window bit.
    if (base + kRemoteWindowBytes > kRemoteWindowBit)
        return strprintf("remote window [0x%06x, 0x%06x) overlaps the "
                         "remote-window address bit 0x%06x; set "
                         "windowBase explicitly",
                         base, base + kRemoteWindowBytes,
                         kRemoteWindowBit);
    return "";
}

void
SystemConfig::validate() const
{
    const std::string err = check();
    if (!err.empty())
        fatal("bad system configuration: %s", err.c_str());
}

namespace
{

/**
 * Per-chip variant of an observability output path: paths containing
 * "%t" stay as-is (the per-chip tag disambiguates them); plain paths
 * get a ".chipN" suffix so concurrent chips never share a file.
 */
std::string
perChipPath(const std::string &path, u32 id)
{
    if (path.empty() || path.find("%t") != std::string::npos)
        return path;
    return path + strprintf(".chip%u", id);
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg), obsOrig_(cfg.chip.obs), fabric_(cfg.fabric),
      windowBase_(cfg.windowBaseOf())
{
    cfg_.validate();
    // Fabric-level observability mirrors the chip-level layer: an
    // epoch sampler over the fabric's StatGroup (same interval as the
    // chips) and a dedicated tracer for the "net" category. Neither
    // can change simulated timing (determinism tests compare on/off).
    fabricSampler_.configure(&fabric_.stats(), obsOrig_.statsInterval);
    fabricTracer_.configure(obsOrig_.traceCats, obsOrig_.traceCapacity);
    fabric_.setTracer(&fabricTracer_);
    const u32 n = cfg_.numChips();
    chips_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        ChipConfig cc = cfg_.chip;
        // The System writes the one merged multi-process trace itself;
        // per-chip tracers keep recording (traceCats untouched) but
        // must not each export a file. Stats/series/profile outputs
        // stay per chip under a disambiguated path and tag.
        cc.obs.traceOut.clear();
        cc.obs.tag = obsOrig_.tag.empty()
                         ? strprintf("chip%u", i)
                         : obsOrig_.tag + strprintf("-chip%u", i);
        cc.obs.statsJson = perChipPath(obsOrig_.statsJson, i);
        cc.obs.statsCsv = perChipPath(obsOrig_.statsCsv, i);
        cc.obs.profOut = perChipPath(obsOrig_.profOut, i);
        chips_.push_back(std::make_unique<Chip>(cc));
        chips_.back()->attachRemote(this, i, n);
    }
    staged_.resize(size_t(n) * cfg_.chip.numThreads);
}

void
System::loadProgramAll(const isa::Program &program)
{
    for (auto &chip : chips_)
        chip->loadProgram(program);
}

u32
System::liveUnits() const
{
    u32 live = 0;
    for (const auto &chip : chips_)
        live += chip->liveUnits();
    return live;
}

u64
System::totalInstructions() const
{
    u64 sum = 0;
    for (const auto &chip : chips_)
        sum += chip->totalInstructions();
    return sum;
}

u32
System::checkRemoteEa(u32 srcChip, ThreadId tid, Addr ea, u8 bytes) const
{
    const u32 dst = remoteChipOf(ea);
    if (dst >= numChips())
        guestCheck("remote window addresses chip %u of a %u-chip "
                   "system (chip %u thread %u, ea 0x%08x)",
                   dst, numChips(), srcChip, tid, ea);
    if (dst == srcChip)
        guestCheck("remote window targets the local chip %u "
                   "(thread %u, ea 0x%08x)", srcChip, tid, ea);
    if (remoteOffsetOf(ea) % bytes != 0)
        guestCheck("misaligned %u-byte remote access at 0x%08x "
                   "(chip %u thread %u)", bytes, ea, srcChip, tid);
    return dst;
}

u64
System::remoteRead(u32 srcChip, ThreadId tid, Addr ea, u8 bytes)
{
    const u32 dst = checkRemoteEa(srcChip, tid, ea, bytes);
    u64 value = 0;
    chips_[dst]->readPhys(windowBase_ + remoteOffsetOf(ea), &value,
                          bytes);
    return value;
}

void
System::remoteWrite(u32 srcChip, ThreadId tid, Addr ea, u8 bytes,
                    u64 value)
{
    checkRemoteEa(srcChip, tid, ea, bytes);
    StagedStore &s = staged_[size_t(srcChip) * cfg_.chip.numThreads + tid];
    if (s.valid)
        panic("chip %u thread %u staged a second remote store "
              "(ea 0x%08x) before the first was committed", srcChip,
              tid, ea);
    s = {true, ea, bytes, value};
}

MemTiming
System::remoteAccess(u32 srcChip, ThreadId tid, Cycle now, Addr ea,
                     u8 bytes, MemKind kind)
{
    if (kind == MemKind::Atomic)
        guestCheck("remote atomics are not supported (chip %u "
                   "thread %u, ea 0x%08x)", srcChip, tid, ea);
    const u32 dst = checkRemoteEa(srcChip, tid, ea, bytes);
    const net::Topology &topo = fabric_.topology();

    MemTiming t;
    t.remote = true;
    t.hit = false;
    t.fabric = true; // waits on this timing charge to RemoteWait
    if (kind == MemKind::Store) {
        StagedStore &s =
            staged_[size_t(srcChip) * cfg_.chip.numThreads + tid];
        if (!s.valid || s.ea != ea)
            panic("remote store timing with no staged value "
                  "(chip %u thread %u, ea 0x%08x)", srcChip, tid, ea);
        const u32 msg = cfg_.fabric.reqHeaderBytes + bytes;
        const net::Delivery d = fabric_.inject(now, srcChip, dst, msg);
        if (!d.ok) {
            // Retries exhausted: the store is abandoned, never lands,
            // and the run ends with a structured FabricFailure at the
            // next epoch boundary — the thread stalls until the
            // sender's give-up cycle, not forever.
            s.valid = false;
            noteFabricFailure(strprintf(
                "chip %u thread %u: remote store to chip %u "
                "(ea 0x%08x) abandoned after %u fabric retries: "
                "destination unreachable or retry storm",
                srcChip, tid, dst, ea, d.retries));
            t.ready = d.delivered;
            t.queueWait = 0;
            return t;
        }
        u64 value = s.value;
        if (d.corrupted) {
            // The corruption escaped the end-to-end checksum: flip
            // one deterministic payload bit — silent data corruption
            // the fault campaigns classify as SDC.
            value ^= u64(1) << (seq_ % (u64(s.bytes) * 8));
        }
        pending_.push({d.delivered, seq_++, dst,
                       windowBase_ + remoteOffsetOf(ea), s.bytes,
                       value});
        s.valid = false;
        // Posted store: the thread resumes when the injection port
        // drains, so sustained stores are paced to the link bandwidth
        // (the 12 GB/s I/O budget).
        t.ready = d.accepted;
        const u32 lbpc = cfg_.fabric.net.linkBytesPerCycle;
        const Cycle serialization = (msg + lbpc - 1) / lbpc;
        t.queueWait = d.accepted - now - serialization;
    } else {
        // Load/Prefetch: a header-only request, then the response with
        // the payload injected when the request arrives. The value
        // itself was snapshot by remoteRead at issue time.
        const u32 req = cfg_.fabric.reqHeaderBytes;
        const u32 resp = cfg_.fabric.respHeaderBytes + bytes;
        const net::Delivery d1 = fabric_.inject(now, srcChip, dst, req);
        if (!d1.ok) {
            noteFabricFailure(strprintf(
                "chip %u thread %u: remote load request to chip %u "
                "(ea 0x%08x) abandoned after %u fabric retries: "
                "destination unreachable or retry storm",
                srcChip, tid, dst, ea, d1.retries));
            t.ready = d1.delivered;
            t.queueWait = 0;
            return t;
        }
        const net::Delivery d2 =
            fabric_.inject(d1.delivered, dst, srcChip, resp);
        if (!d2.ok) {
            noteFabricFailure(strprintf(
                "chip %u thread %u: remote load response from chip %u "
                "(ea 0x%08x) abandoned after %u fabric retries: "
                "destination unreachable or retry storm",
                srcChip, tid, dst, ea, d2.retries));
            t.ready = d2.delivered;
            t.queueWait = 0;
            return t;
        }
        // A response corruption that escapes the checksum is caught
        // by a higher-level re-request in real hardware; the model
        // keeps loads exact (the value was snapshot by remoteRead).
        t.ready = d2.delivered;
        const Cycle uncontended =
            topo.uncontendedLatency(srcChip, dst, req) +
            topo.uncontendedLatency(dst, srcChip, resp);
        t.queueWait = (d2.delivered - now) - uncontended;
    }
    return t;
}

void
System::noteFabricFailure(std::string diag)
{
    if (fabricFailed_)
        return; // first failure wins: deterministic diagnostic
    fabricFailed_ = true;
    failDiag_ = std::move(diag);
}

void
System::noteEpochRetransmits()
{
    const Cycle window = 2 * Cycle(cfg_.chip.fault.watchdogCycles);
    if (window == 0)
        return; // watchdog off: no attribution needed
    const u64 cur = fabric_.retransmits();
    if (retransHist_.empty())
        retransHist_.emplace_back(0, 0); // baseline: nothing resent yet
    if (retransHist_.back().second != cur)
        retransHist_.emplace_back(now_, cur);
    // Keep the latest sample at or before (now - window) as the
    // baseline, so recentRetransmits() counts exactly the window.
    const Cycle cutoff = now_ > window ? now_ - window : 0;
    while (retransHist_.size() > 1 && retransHist_[1].first <= cutoff)
        retransHist_.pop_front();
}

u64
System::recentRetransmits() const
{
    const u64 cur = fabric_.retransmits();
    return retransHist_.empty() ? cur
                                : cur - retransHist_.front().second;
}

void
System::applyDeliveries(Cycle upTo)
{
    // Total (delivered, seq) order: a flag stored after its payload on
    // the same path has a later delivery cycle (per-link FIFO), so it
    // is applied after — the cross-chip ordering guests rely on.
    while (!pending_.empty() && pending_.top().delivered <= upTo) {
        const PendingStore &p = pending_.top();
        chips_[p.dstChip]->writePhys(p.pa, &p.value, p.bytes);
        pending_.pop();
    }
    fabric_.advance(upTo);
}

RunExit
System::run(Cycle maxCycles)
{
    const Cycle limit = maxCycles >= kCycleNever - now_
                            ? kCycleNever
                            : now_ + maxCycles;
    const Cycle epoch = cfg_.fabric.epoch();

    while (true) {
        if (fabricFailed_) {
            // A remote access exhausted its fabric retries during the
            // last epoch: structured exit, never a hang or a fatal.
            RunExit e(RunExitReason::FabricFailure, now_);
            e.diagnostic = failDiag_;
            return e;
        }
        Cycle minLive = kCycleNever;
        Cycle maxNow = now_;
        for (const auto &chip : chips_) {
            maxNow = std::max(maxNow, chip->now());
            if (chip->liveUnits())
                minLive = std::min(minLive, chip->now());
        }
        if (minLive == kCycleNever) {
            // Everything halted: flush the fabric so conservation
            // closes (flitsInFlight() == 0) and late stores land.
            now_ = std::max(now_, maxNow);
            applyDeliveries(kCycleNever);
            fabric_.drain();
            fabricSampler_.maybeSample(now_);
            return {RunExitReason::AllHalted, now_};
        }
        if (now_ >= limit)
            return {RunExitReason::CycleLimit, now_};

        // One epoch, or a jump to where the laggard chip already is
        // (chips overshoot boundaries via their idle fast-forward; an
        // epoch no chip executes in needs no barrier of its own).
        Cycle target = now_ + epoch;
        if (minLive > target)
            target = minLive;
        target = std::min(target, limit);

        for (u32 i = 0; i < numChips(); ++i) {
            Chip &c = *chips_[i];
            if (c.liveUnits() == 0 || c.now() >= target)
                continue;
            RunExit e = c.run(target - c.now());
            if (e == RunExitReason::Watchdog) {
                // Attribute the hang: retransmissions climbing inside
                // the trailing watchdog window point at fabric-level
                // livelock (a retry storm), not chip-level deadlock.
                const u64 storm = recentRetransmits();
                std::string attribution;
                if (storm > 0)
                    attribution = strprintf(
                        "fabric livelock suspected: %llu "
                        "retransmissions in the trailing watchdog "
                        "window (retry storm)\n",
                        static_cast<unsigned long long>(storm));
                e.diagnostic = attribution +
                               strprintf("chip %u\n", i) + e.diagnostic;
                return e;
            }
            if (e == RunExitReason::Signal)
                return e;
        }
        now_ = target;
        applyDeliveries(now_);
        fabricSampler_.maybeSample(now_);
        noteEpochRetransmits();
    }
}

void
System::writeObservability()
{
    for (auto &chip : chips_)
        chip->writeObservability();
    writeFabricStats();
    writeFabricHeatmap();
    if (obsOrig_.traceOut.empty())
        return;

    // One merged Chrome trace: chip N rides pid 10+N as process
    // "cyclops-chipN" (pids 1 and 2 stay reserved for the standalone
    // guest and host processes), and with the "net" category enabled
    // the fabric rides pid 3 as "cyclops-fabric" with one track per
    // directed link (tools/check_trace.py validates the scheme).
    const std::string path = obsOrig_.expandPath(obsOrig_.traceOut);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace output '%s'", path.c_str());
    std::fputs("{\n  \"displayTimeUnit\": \"ns\",\n"
               "  \"traceEvents\": [\n",
               f);
    u64 dropped = 0;
    for (u32 i = 0; i < numChips(); ++i) {
        const std::string name = strprintf("cyclops-chip%u", i);
        chips_[i]->tracer().writeChromeEvents(f, 10 + i, name.c_str(),
                                              cfg_.chip.numThreads,
                                              i > 0);
        dropped += chips_[i]->tracer().dropped();
    }
    if (fabricTracer_.on(TraceCat::Net)) {
        fabricTracer_.writeChromeEvents(f, 3, "cyclops-fabric",
                                        fabric_.numLinks(), true,
                                        &fabric_.linkTrackNames());
        dropped += fabricTracer_.dropped();
    }
    std::fprintf(f,
                 "\n  ],\n  \"otherData\": {\"droppedEvents\": %llu}\n}\n",
                 static_cast<unsigned long long>(dropped));
    std::fclose(f);
}

void
System::writeFabricStats()
{
    if (obsOrig_.fabricStats.empty())
        return;
    fabricSampler_.finalize(now_);
    const std::string path = obsOrig_.expandPath(obsOrig_.fabricStats);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open fabric stats output '%s'", path.c_str());
    const net::NetConfig &nc = cfg_.fabric.net;
    std::fprintf(f,
                 "{\n  \"schema\": \"cyclops-fabric-v1\",\n"
                 "  \"cycles\": %llu,\n"
                 "  \"topology\": {\"dimX\": %u, \"dimY\": %u, "
                 "\"dimZ\": %u, \"torus\": %s, \"chips\": %u, "
                 "\"links\": %u},\n",
                 static_cast<unsigned long long>(now_), nc.dimX,
                 nc.dimY, nc.dimZ, nc.torus ? "true" : "false",
                 nc.numChips(), fabric_.numLinks());
    // Link-fault map: validators relax the healthy-fabric identities
    // (flits x hops, busy == flits, histogram n == messages) exactly
    // when "active" is true.
    const net::FabricFaultMap &fm = fabric_.faultMap();
    std::fprintf(f,
                 "  \"faults\": {\"active\": %s, \"seed\": %llu, "
                 "\"atCycle\": %llu, \"links\": [",
                 fabric_.faultsActive() ? "true" : "false",
                 static_cast<unsigned long long>(fm.seed),
                 static_cast<unsigned long long>(fm.atCycle));
    bool first = true;
    for (const net::LinkFault &lf : fm.links) {
        std::fprintf(f,
                     "%s\n    {\"src\": %u, \"dst\": %u, "
                     "\"kind\": \"%s\", \"flakyPpm\": %u, "
                     "\"escapePpm\": %u, \"derate\": %u}",
                     first ? "" : ",", lf.src, lf.dst,
                     net::linkFaultKindName(lf.kind), lf.flakyPpm,
                     lf.escapePpm, lf.derate);
        first = false;
    }
    std::fputs(first ? "]},\n  \"counters\": {"
                     : "\n  ]},\n  \"counters\": {",
               f);
    first = true;
    for (const auto &[name, value] : fabric_.stats().counters()) {
        std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",",
                     name.c_str(),
                     static_cast<unsigned long long>(value));
        first = false;
    }
    std::fputs("\n  },\n  \"histograms\": {", f);
    first = true;
    for (const auto &[name, h] : fabric_.stats().histograms()) {
        std::fprintf(f,
                     "%s\n    \"%s\": {\"n\": %llu, \"sum\": %llu, "
                     "\"max\": %llu, \"buckets\": [",
                     first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(h->samples()),
                     static_cast<unsigned long long>(h->sum()),
                     static_cast<unsigned long long>(h->max()));
        for (unsigned b = 0; b < Histogram::kBuckets; ++b)
            std::fprintf(f, "%s%llu", b ? ", " : "",
                         static_cast<unsigned long long>(h->bucket(b)));
        std::fputs("]}", f);
        first = false;
    }
    // Chip-pair traffic matrix (pairs with traffic only). "hops" is
    // the analytic DOR hop count; "linkFlits" is the pair's actual
    // link crossings (per transmission attempt, so detours and
    // retransmits are included): sum over links of flits == sum over
    // pairs of linkFlits always, and linkFlits == flits * hops only
    // while the fault map is empty (tools/check_fabric.py).
    std::fputs("\n  },\n  \"pairs\": [", f);
    first = true;
    const u32 chips = nc.numChips();
    for (u32 s = 0; s < chips; ++s) {
        for (u32 d = 0; d < chips; ++d) {
            if (s == d || fabric_.pairMessages(s, d) == 0)
                continue;
            std::fprintf(
                f,
                "%s\n    {\"src\": %u, \"dst\": %u, \"messages\": %llu, "
                "\"bytes\": %llu, \"flits\": %llu, \"hops\": %u, "
                "\"linkFlits\": %llu}",
                first ? "" : ",", s, d,
                static_cast<unsigned long long>(fabric_.pairMessages(s, d)),
                static_cast<unsigned long long>(fabric_.pairBytes(s, d)),
                static_cast<unsigned long long>(fabric_.pairFlits(s, d)),
                fabric_.topology().hops(s, d),
                static_cast<unsigned long long>(
                    fabric_.pairLinkFlits(s, d)));
            first = false;
        }
    }
    std::fputs("\n  ],\n  \"links\": [", f);
    first = true;
    for (const net::Fabric::Link &link : fabric_.links()) {
        if (!link.exists)
            continue;
        std::fprintf(
            f,
            "%s\n    {\"src\": %u, \"dst\": %u, \"dir\": %u, "
            "\"flits\": %llu, \"busyCycles\": %llu, "
            "\"stallCycles\": %llu, \"occFlitCycles\": %llu, "
            "\"occPeak\": %llu}",
            first ? "" : ",", link.src, link.dst, u32(link.dir),
            static_cast<unsigned long long>(link.flits.value()),
            static_cast<unsigned long long>(link.busyCycles.value()),
            static_cast<unsigned long long>(link.stallCycles.value()),
            static_cast<unsigned long long>(link.occFlitCycles.value()),
            static_cast<unsigned long long>(link.occPeak));
        first = false;
    }
    std::fputs("\n  ]", f);
    if (fabricSampler_.enabled()) {
        std::fputs(",\n  \"series\": ", f);
        writeSeriesJson(f, fabricSampler_);
    }
    std::fputs("\n}\n", f);
    std::fclose(f);
}

void
System::writeFabricHeatmap()
{
    if (obsOrig_.fabricHeatmap.empty())
        return;
    const std::string path = obsOrig_.expandPath(obsOrig_.fabricHeatmap);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open fabric heatmap output '%s'", path.c_str());
    // Two row kinds share one schema: "pair" rows are the (src, dst)
    // traffic matrix (dir = -1, link-only columns zero), "link" rows
    // are per-directed-link congestion (pair-only columns zero).
    std::fputs("# cyclops-fabric-heatmap-v1\n"
               "kind,src,dst,dir,messages,bytes,flits,busyCycles,"
               "stallCycles,occFlitCycles,occPeak\n",
               f);
    const u32 chips = cfg_.fabric.net.numChips();
    for (u32 s = 0; s < chips; ++s) {
        for (u32 d = 0; d < chips; ++d) {
            if (s == d || fabric_.pairMessages(s, d) == 0)
                continue;
            std::fprintf(
                f, "pair,%u,%u,-1,%llu,%llu,%llu,0,0,0,0\n", s, d,
                static_cast<unsigned long long>(fabric_.pairMessages(s, d)),
                static_cast<unsigned long long>(fabric_.pairBytes(s, d)),
                static_cast<unsigned long long>(fabric_.pairFlits(s, d)));
        }
    }
    for (const net::Fabric::Link &link : fabric_.links()) {
        if (!link.exists)
            continue;
        std::fprintf(
            f, "link,%u,%u,%u,0,0,%llu,%llu,%llu,%llu,%llu\n", link.src,
            link.dst, u32(link.dir),
            static_cast<unsigned long long>(link.flits.value()),
            static_cast<unsigned long long>(link.busyCycles.value()),
            static_cast<unsigned long long>(link.stallCycles.value()),
            static_cast<unsigned long long>(link.occFlitCycles.value()),
            static_cast<unsigned long long>(link.occPeak));
    }
    std::fclose(f);
}

} // namespace cyclops::arch
