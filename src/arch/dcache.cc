#include "arch/dcache.h"

#include <algorithm>

#include "arch/memsys.h"
#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

void
DCache::init(CacheId id, const ChipConfig &cfg, StatGroup *stats)
{
    id_ = id;
    cfg_ = &cfg;
    numSets_ = cfg.dcacheSets();
    waysBegin_ = cfg.dcacheScratchWays;
    // Reduced-way degradation: fault.cacheWays live ways per set (the
    // remaining ways' SRAM is fused off). Geometry (set indexing) is
    // unchanged; validate() guarantees at least one live way.
    waysEnd_ = cfg.fault.cacheWays != 0
                   ? waysBegin_ + cfg.fault.cacheWays
                   : cfg.dcacheAssoc;
    scratchBytes_ = cfg.dcacheScratchWays *
                    (cfg.dcacheBytes / cfg.dcacheAssoc);
    fullMask_ = cfg.dcacheLineBytes >= 64
                    ? ~u64(0)
                    : (u64(1) << cfg.dcacheLineBytes) - 1;
    lines_.assign(size_t(numSets_) * cfg.dcacheAssoc, Line{});

    if (stats) {
        const std::string prefix = strprintf("dcache%u.", id);
        stats->addCounter(prefix + "hits", &hits_);
        stats->addCounter(prefix + "misses", &misses_);
        stats->addCounter(prefix + "storeAllocs", &storeAllocs_);
        stats->addCounter(prefix + "loadMerges", &loadMerges_);
        stats->addCounter(prefix + "writebacks", &writebacks_);
        stats->addCounter(prefix + "wbBlocks", &wbBlocks_);
        stats->addCounter(prefix + "portWaitCycles", &portWaitCycles_);
        stats->addCounter(prefix + "mshrFullWaits", &mshrFullWaits_);
        stats->addCounter(prefix + "scratchAccesses", &scratchAccesses_);
    }
}

Cycle
DCache::grantPort(Cycle arrive)
{
    Cycle grant = std::max(arrive, portFree_);
    portWaitCycles_ += grant - arrive;
    portFree_ = grant + 1;
    return grant;
}

DCache::Line *
DCache::lookup(PhysAddr addr)
{
    const u32 line = addr / cfg_->dcacheLineBytes;
    const u32 set = line & (numSets_ - 1);
    const u32 tag = line / numSets_;
    Line *base = &lines_[size_t(set) * cfg_->dcacheAssoc];
    for (u32 way = waysBegin_; way < waysEnd_; ++way)
        if (base[way].valid && base[way].tag == tag)
            return &base[way];
    return nullptr;
}

const DCache::Line *
DCache::lookup(PhysAddr addr) const
{
    return const_cast<DCache *>(this)->lookup(addr);
}

DCache::Line &
DCache::victim(u32 set, Cycle now)
{
    Line *base = &lines_[size_t(set) * cfg_->dcacheAssoc];
    Line *best = nullptr;
    for (u32 way = waysBegin_; way < waysEnd_; ++way) {
        Line &line = base[way];
        if (!line.valid)
            return line;
        // Never evict a line whose fill is still in flight.
        if (line.fillDone > now)
            continue;
        if (!best || line.lastUse < best->lastUse)
            best = &line;
    }
    if (!best) {
        // Every way is mid-fill; fall back to the LRU regardless (its
        // fill will simply be wasted). Extremely rare by construction.
        for (u32 way = waysBegin_; way < waysEnd_; ++way) {
            Line &line = base[way];
            if (!best || line.lastUse < best->lastUse)
                best = &line;
        }
    }
    return *best;
}

PhysAddr
DCache::lineAddrOf(const Line &line, u32 set) const
{
    return (line.tag * numSets_ + set) * cfg_->dcacheLineBytes;
}

void
DCache::writeback(Line &line, u32 set, Cycle when, MemSystem &fabric)
{
    if (!line.dirtyMask)
        return;
    // Only the 32-byte blocks containing dirty bytes travel to memory.
    const u32 blockBytes = cfg_->memBlockBytes;
    const u32 blocksPerLine = cfg_->dcacheLineBytes / blockBytes;
    u32 dirtyBlocks = 0;
    for (u32 block = 0; block < blocksPerLine; ++block) {
        const u64 blockMask = ((u64(1) << blockBytes) - 1)
                              << (block * blockBytes);
        if (line.dirtyMask & blockMask)
            ++dirtyBlocks;
    }
    fabric.postWrite(when, lineAddrOf(line, set), dirtyBlocks, id_);
    ++writebacks_;
    wbBlocks_ += dirtyBlocks;
    line.dirtyMask = 0;
}

CacheResult
DCache::access(const CacheAccess &req, MemSystem &fabric)
{
    const LatencyConfig &lat = cfg_->lat;
    const Cycle grant = grantPort(req.arrive);
    // Queueing (contention) share of the final latency, reported so the
    // requesting TU can split its wait into service vs contention.
    const u64 portWait = grant - req.arrive;

    if (req.scratch) {
        if (scratchBytes_ == 0)
            guestCheck("scratchpad access to cache %u, but no ways are "
                       "partitioned (set dcacheScratchWays)", id_);
        ++scratchAccesses_;
        return CacheResult{grant + lat.memLocalHit, true, portWait};
    }

    const u32 line = req.addr / cfg_->dcacheLineBytes;
    const u32 set = line & (numSets_ - 1);
    const u32 byteOff = req.addr & (cfg_->dcacheLineBytes - 1);
    const u64 reqMask = req.bytes >= 64
                            ? ~u64(0)
                            : ((u64(1) << req.bytes) - 1) << byteOff;

    Line *hitLine = lookup(req.addr);
    if (hitLine) {
        hitLine->lastUse = grant;
        const bool filling = hitLine->fillDone > grant;
        const bool bytesThere = (hitLine->validMask & reqMask) == reqMask;
        if (req.store && !req.atomic) {
            // Stores only need the tag; bytes become valid and dirty.
            hitLine->validMask |= reqMask;
            hitLine->dirtyMask |= reqMask;
            ++hits_;
            if (filling)
                ++loadMerges_;
            return CacheResult{std::max(grant + lat.memLocalHit,
                                        hitLine->fillDone),
                               true, portWait};
        }
        if (bytesThere || filling) {
            // Plain hit, or merge with the fill in flight.
            ++hits_;
            if (filling)
                ++loadMerges_;
            Cycle ready = std::max(grant + lat.memLocalHit,
                                   hitLine->fillDone);
            if (req.atomic) {
                hitLine->validMask |= reqMask;
                hitLine->dirtyMask |= reqMask;
            }
            return CacheResult{ready, true, portWait};
        }
        // Line present but the requested bytes were never fetched
        // (allocate-no-fetch residue): fetch and merge the line.
        ++misses_;
        const Cycle bankReq = grant + lat.missToBank;
        BankGrant bg = fabric.fetchLine(
            bankReq, line * cfg_->dcacheLineBytes,
            cfg_->dcacheLineBytes / cfg_->memBlockBytes, id_);
        const Cycle fillDone = bg.start + bg.transferCycles;
        hitLine->validMask = fullMask_;
        hitLine->fillDone = std::max(hitLine->fillDone, fillDone);
        if (req.atomic)
            hitLine->dirtyMask |= reqMask;
        fills_.push_back(fillDone);
        return CacheResult{fillDone + lat.bankToCache, false,
                           portWait + (bg.start - bankReq)};
    }

    // ---- Miss path ----
    // MSHR occupancy: distinct line fills in flight are bounded.
    std::erase_if(fills_, [&](Cycle done) { return done <= grant; });
    Cycle start = grant;
    if (fills_.size() >= cfg_->dcacheMshrs) {
        Cycle earliest = *std::min_element(fills_.begin(), fills_.end());
        start = std::max(start, earliest);
        ++mshrFullWaits_;
    }

    Line &way = victim(set, start);
    if (way.valid)
        writeback(way, set, start, fabric);
    way.valid = true;
    way.tag = line / numSets_;
    way.lastUse = start;

    if (req.store && !req.atomic && cfg_->storeAllocNoFetch) {
        // Allocate without fetching: the store provides the only valid
        // bytes. Streaming full-line writes never touch the banks here.
        way.validMask = reqMask;
        way.dirtyMask = reqMask;
        way.fillDone = start;
        ++misses_;
        ++storeAllocs_;
        return CacheResult{start + lat.memLocalHit, false,
                           portWait + (start - grant)};
    }

    const Cycle bankReq = start + lat.missToBank;
    BankGrant bg =
        fabric.fetchLine(bankReq, line * cfg_->dcacheLineBytes,
                         cfg_->dcacheLineBytes / cfg_->memBlockBytes, id_);
    const Cycle fillDone = bg.start + bg.transferCycles;
    way.validMask = fullMask_;
    way.dirtyMask = req.store ? reqMask : 0;
    way.fillDone = fillDone;
    fills_.push_back(fillDone);
    ++misses_;
    return CacheResult{fillDone + lat.bankToCache, false,
                       portWait + (start - grant) + (bg.start - bankReq)};
}

bool
DCache::warmAccess(PhysAddr addr, u8 bytes, bool store, bool atomic,
                   Cycle now, u32 *fillBlocksOut, u32 *wbBlocksOut,
                   PhysAddr *wbLineOut, Cycle *fillWaitOut)
{
    const u32 blockBytes = cfg_->memBlockBytes;
    const u32 blocksPerLine = cfg_->dcacheLineBytes / blockBytes;
    const u32 line = addr / cfg_->dcacheLineBytes;
    const u32 set = line & (numSets_ - 1);
    const u32 byteOff = addr & (cfg_->dcacheLineBytes - 1);
    const u64 reqMask = bytes >= 64 ? ~u64(0)
                                    : ((u64(1) << bytes) - 1) << byteOff;
    *fillBlocksOut = 0;
    *wbBlocksOut = 0;
    *fillWaitOut = 0;

    if (Line *hitLine = lookup(addr)) {
        hitLine->lastUse = now;
        const bool filling = hitLine->fillDone > now;
        const bool bytesThere = (hitLine->validMask & reqMask) == reqMask;
        if (filling) {
            *fillWaitOut = hitLine->fillDone;
            ++loadMerges_;
        }
        if (store && !atomic) {
            // Stores only need the tag; bytes become valid and dirty.
            hitLine->validMask |= reqMask;
            hitLine->dirtyMask |= reqMask;
            ++hits_;
            return true;
        }
        if (bytesThere || filling) {
            // Plain hit, or merge with the fill in flight.
            if (atomic) {
                hitLine->validMask |= reqMask;
                hitLine->dirtyMask |= reqMask;
            }
            ++hits_;
            return true;
        }
        // Allocate-no-fetch residue: the fetch-and-merge miss.
        hitLine->validMask = fullMask_;
        if (atomic)
            hitLine->dirtyMask |= reqMask;
        hitLine->fillDone = now;
        ++misses_;
        *fillBlocksOut = blocksPerLine;
        return false;
    }

    // Miss: install the line. The victim's dirty blocks still count as
    // bank traffic (for the regulator) even though no write is posted.
    Line &way = victim(set, now);
    if (way.valid && way.dirtyMask) {
        u32 dirtyBlocks = 0;
        for (u32 block = 0; block < blocksPerLine; ++block) {
            const u64 blockMask = ((u64(1) << blockBytes) - 1)
                                  << (block * blockBytes);
            if (way.dirtyMask & blockMask)
                ++dirtyBlocks;
        }
        *wbBlocksOut = dirtyBlocks;
        *wbLineOut = lineAddrOf(way, set);
        ++writebacks_;
        wbBlocks_ += dirtyBlocks;
        way.dirtyMask = 0;
    }
    way.valid = true;
    way.tag = line / numSets_;
    way.lastUse = now;
    way.fillDone = now;
    if (store && !atomic && cfg_->storeAllocNoFetch) {
        way.validMask = reqMask;
        way.dirtyMask = reqMask;
        ++misses_;
        ++storeAllocs_;
        return false;
    }
    way.validMask = fullMask_;
    way.dirtyMask = store ? reqMask : 0;
    *fillBlocksOut = blocksPerLine;
    ++misses_;
    return false;
}

void
DCache::setWarmFillDone(PhysAddr addr, Cycle done)
{
    if (Line *line = lookup(addr))
        line->fillDone = std::max(line->fillDone, done);
}

Cycle
DCache::flushLine(PhysAddr addr, Cycle arrive, MemSystem &fabric)
{
    const Cycle grant = grantPort(arrive);
    Line *line = lookup(addr);
    if (line) {
        const u32 set = (addr / cfg_->dcacheLineBytes) & (numSets_ - 1);
        writeback(*line, set, grant, fabric);
        line->valid = false;
        line->validMask = line->dirtyMask = 0;
    }
    return grant + cfg_->lat.memLocalHit;
}

Cycle
DCache::invalidateLine(PhysAddr addr, Cycle arrive)
{
    const Cycle grant = grantPort(arrive);
    Line *line = lookup(addr);
    if (line) {
        line->valid = false;
        line->validMask = line->dirtyMask = 0;
    }
    return grant + cfg_->lat.memLocalHit;
}

bool
DCache::probe(PhysAddr addr) const
{
    return lookup(addr) != nullptr;
}

bool
DCache::faultLine(u32 idx)
{
    Line &line = lines_[idx % lines_.size()];
    const bool wasValid = line.valid;
    line.valid = false;
    line.validMask = line.dirtyMask = 0;
    return wasValid;
}

} // namespace cyclops::arch
