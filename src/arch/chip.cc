#include "arch/chip.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

namespace
{
// Signal number of a pending stop request, 0 for none. A plain atomic
// store, so POSIX signal handlers may call requestRunStop() directly.
std::atomic<int> gStopSignal{0};
} // namespace

void
requestRunStop(int sig)
{
    gStopSignal.store(sig, std::memory_order_relaxed);
}

void
clearRunStop()
{
    gStopSignal.store(0, std::memory_order_relaxed);
}

bool
runStopRequested()
{
    return gStopSignal.load(std::memory_order_relaxed) != 0;
}

const char *
runExitName(RunExitReason reason)
{
    switch (reason) {
      case RunExitReason::AllHalted:
        return "allHalted";
      case RunExitReason::CycleLimit:
        return "cycleLimit";
      case RunExitReason::Watchdog:
        return "watchdog";
      case RunExitReason::Signal:
        return "signal";
      case RunExitReason::FabricFailure:
        return "fabricFailure";
    }
    return "?";
}

Chip::Chip(const ChipConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();

    dram_.assign(cfg_.memBytes(), 0);
    const u32 scratchBytes =
        cfg_.dcacheScratchWays * (cfg_.dcacheBytes / cfg_.dcacheAssoc);
    scratch_.assign(cfg_.numCaches(), std::vector<u8>(scratchBytes, 0));

    tracer_.configure(cfg_.obs.traceCats, cfg_.obs.traceCapacity);
    memsys_.init(cfg_, &stats_, &tracer_);
    fpus_.resize(cfg_.numFpus());
    for (u32 id = 0; id < cfg_.numFpus(); ++id)
        fpus_[id].init(id, cfg_, &stats_);
    icaches_.resize(cfg_.numICaches());
    for (u32 id = 0; id < cfg_.numICaches(); ++id)
        icaches_[id].init(id, cfg_, &stats_);
    barrier_.init(cfg_.numThreads, &stats_);
    offchip_.init(cfg_, &stats_);

    units_.resize(cfg_.numThreads);
    quadEnabled_.assign(cfg_.numQuads(), true);
    tuEnabled_.assign(cfg_.numThreads, true);
    fpuEnabled_.assign(cfg_.numQuads(), true);
    icEnabled_.assign(cfg_.numICaches(), true);
    applyFaultMap();

    wheel_.assign(kWheelSize, {});
    due_.reserve(cfg_.numThreads);

    stats_.addCounter("chip.cycles", &cycles_);
    stats_.addCounter("chip.traps", &trapsServed_);

    // Cycle-attribution gauges: chip-wide and per-quad, one per
    // category plus the derived sleep bucket. Gauges are evaluated
    // lazily, so registering them costs nothing during simulation.
    auto catOf = [](const CycleBreakdown &b, u32 i) {
        return i < kNumCycleCats ? b.cat[i] : b.sleep;
    };
    for (u32 c = 0; c <= kNumCycleCats; ++c) {
        stats_.addGauge(std::string("attr.") + kCycleCatNames[c],
                        [this, catOf, c] {
                            return catOf(chipAttribution(), c);
                        });
    }
    for (u32 q = 0; q < cfg_.numQuads(); ++q) {
        for (u32 c = 0; c <= kNumCycleCats; ++c) {
            stats_.addGauge(
                strprintf("quad%u.attr.%s", q, kCycleCatNames[c]),
                [this, catOf, q, c] {
                    return catOf(quadAttribution(q), c);
                });
        }
    }

    sampler_.configure(&stats_, cfg_.obs.statsInterval);
    sampling_ = sampler_.enabled();

    profiler_.configure(cfg_.obs.profInterval, cfg_.numThreads);
    profiling_ = profiler_.enabled();
    active_.assign(cfg_.numThreads, 0);
    if (profiling_)
        profNext_ = profiler_.interval();
    // The bank heatmap rides along with any profiling: it must cover
    // the whole run for its row sums to match the bank access totals.
    if (profiling_ || !cfg_.obs.profOut.empty())
        memsys_.enableHeatmap();

    sampledOn_ = cfg_.engine.sampled;
    if (cfg_.engine.kind == EngineKind::Sharded)
        setupShardEngine();

    // Host telemetry attaches last: it observes whatever engine was
    // just built. Its counters live in hostObs_.stats() (not stats_),
    // so guest statistics output is byte-identical with it on or off.
    hostObsOn_ = cfg_.obs.hostObs;
    if (hostObsOn_) {
        hostObs_.configure(true, shardWorkers_,
                           tracer_.on(TraceCat::Host));
        if (crew_) {
            crewTelem_ = std::make_unique<CrewTelemetry>();
            crew_->setTelemetry(crewTelem_.get());
            hostObs_.setCrewTelemetry(crewTelem_.get());
        }
    }
}

void
Chip::setupShardEngine()
{
    u32 w = cfg_.engine.workers ? cfg_.engine.workers
                                : SimPool::resolveJobs(0);
    w = std::max(1u, std::min(w, cfg_.numQuads()));
    shardWorkers_ = w;
    domainBegin_.resize(w + 1);
    for (u32 i = 0; i <= w; ++i)
        domainBegin_[i] = ThreadId(u64(cfg_.numQuads()) * i / w *
                                   cfg_.threadsPerQuad);
    domainProgress_.assign(w, 0);
    canon_.reserve(cfg_.numThreads);
    wakes_.reserve(cfg_.numThreads);
    quadDeferAt_.assign(cfg_.numQuads(), kCycleNever);
    // Debug tripwire: barrier SPR writes are global wired-OR state and
    // must only happen in phase B. The guard turns a missed defer point
    // (silent nondeterminism) into an immediate panic.
    barrier_.setMutationGuard(&inShardPhaseA_);
    if (w > 1)
        crew_ = std::make_unique<ShardCrew>(w);
}

u32
Chip::shardDomainOf(ThreadId tid) const
{
    u32 d = 0;
    while (d + 1 < shardWorkers_ && tid >= domainBegin_[d + 1])
        ++d;
    return d;
}

// --- Functional memory ------------------------------------------------------

u8 *
Chip::memPtr(Addr ea, u8 bytes, ThreadId tid)
{
    // The functional path shares the timing path's precomputed decode
    // of the interest-group field (one LUT lookup, no re-decoding).
    const MemSystem::RouteEntry &ig = memsys_.routeEntry(igField(ea));
    const PhysAddr pa = igPhys(ea);
    if (ig.cls == IgClass::Scratch) {
        const CacheId cache = ig.index & (cfg_.numCaches() - 1);
        if (!memsys_.cacheEnabled(cache))
            guestCheck("scratchpad access to disabled cache %u "
                       "(thread %u)", cache, tid);
        auto &mem = scratch_[cache];
        if (mem.empty())
            guestCheck("scratchpad access to cache %u with no "
                       "partitioned ways (thread %u)", cache, tid);
        // The partitioned scratch size is ways * 2 KB and need not be a
        // power of two (e.g. 3 ways = 6 KB), so the window wrap must be
        // a real modulo; pow2 sizes keep the single-cycle mask.
        const u32 size = u32(mem.size());
        const u32 offset =
            isPow2(size) ? (pa & (size - 1)) : (pa % size);
        if (offset % bytes != 0)
            guestCheck("misaligned scratch access at 0x%08x", ea);
        return &mem[offset];
    }
    if (pa % bytes != 0)
        guestCheck("misaligned %u-byte access at 0x%08x (thread %u)",
                   bytes, ea, tid);
    if (pa + bytes > memsys_.availableMemBytes())
        guestCrash("access at 0x%06x beyond available memory (%u KB) "
                   "(thread %u)", pa,
                   memsys_.availableMemBytes() / 1024, tid);
    return &dram_[pa];
}

u64
Chip::memRead(Addr ea, u8 bytes, ThreadId tid)
{
    if (remote_ && isRemoteEa(ea)) [[unlikely]]
        return remote_->remoteRead(chipId_, tid, ea, bytes);
    const u8 *ptr = memPtr(ea, bytes, tid);
    u64 value = 0;
    std::memcpy(&value, ptr, bytes);
    return value;
}

void
Chip::memWrite(Addr ea, u8 bytes, u64 value, ThreadId tid)
{
    if (remote_ && isRemoteEa(ea)) [[unlikely]] {
        remote_->remoteWrite(chipId_, tid, ea, bytes, value);
        return;
    }
    u8 *ptr = memPtr(ea, bytes, tid);
    std::memcpy(ptr, &value, bytes);
}

MemTiming
Chip::remoteDmem(Cycle now, ThreadId tid, Addr ea, u8 bytes, MemKind kind)
{
    // Remote accesses mutate fabric state shared between chips, so
    // they must only run from the serial commit path. Both frontends
    // defer every memory op out of sharded phase A, making this a
    // tripwire for missed defer points, not a reachable path.
    if (inShardPhaseA_)
        fatal("remote access from shard phase A (thread %u, ea 0x%08x)",
              tid, ea);
    return remote_->remoteAccess(chipId_, tid, now, ea, bytes, kind);
}

void
Chip::writePhys(PhysAddr addr, const void *data, u32 bytes)
{
    if (addr + bytes > dram_.size())
        fatal("writePhys beyond memory: 0x%06x + %u", addr, bytes);
    std::memcpy(&dram_[addr], data, bytes);
}

void
Chip::readPhys(PhysAddr addr, void *data, u32 bytes) const
{
    if (addr + bytes > dram_.size())
        fatal("readPhys beyond memory: 0x%06x + %u", addr, bytes);
    std::memcpy(data, &dram_[addr], bytes);
}

// --- Program loading -----------------------------------------------------------

void
Chip::loadProgram(const isa::Program &program)
{
    if (programLoaded_)
        fatal("a program is already resident (single-program kernel)");
    programLoaded_ = true;
    program_ = program;

    if (!program.text.empty())
        writePhys(program.textBase, program.text.data(),
                  program.textBytes());
    if (!program.data.empty())
        writePhys(program.dataBase, program.data.data(),
                  u32(program.data.size()));

    profiler_.setTextRange(program.textBase, program.textBytes());

    decoded_.resize(program.text.size());
    for (size_t i = 0; i < program.text.size(); ++i) {
        if (!isa::decode(program.text[i], &decoded_[i]))
            fatal("undecodable instruction word 0x%08x at 0x%06x",
                  program.text[i],
                  program.textBase + u32(i) * 4);
    }
}

const isa::Instr &
Chip::decodedAt(PhysAddr pc) const
{
    const PhysAddr base = program_.textBase;
    if (pc < base || pc >= base + program_.textBytes() || pc % 4 != 0)
        guestCrash("PC 0x%06x outside program text [0x%06x, 0x%06x)", pc,
                   base, base + program_.textBytes());
    return decoded_[(pc - base) / 4];
}

// --- Units and the cycle engine -------------------------------------------------

void
Chip::setUnit(ThreadId tid, std::unique_ptr<Unit> unit)
{
    if (tid >= cfg_.numThreads)
        fatal("setUnit: no hardware thread %u", tid);
    if (units_[tid] && !units_[tid]->halted())
        fatal("setUnit: thread %u is still running", tid);
    units_[tid] = std::move(unit);
}

void
Chip::activate(ThreadId tid, Cycle when)
{
    if (tid >= cfg_.numThreads || !units_[tid])
        fatal("activate: no unit installed on thread %u", tid);
    if (!tuAlive_[tid])
        fatal("activate: thread %u is not operational (dead TU, quad "
              "or I-cache)", tid);
    // New work disarms any accumulated progress-free interval.
    lastProgressCycle_ = std::max(now_, when);
    ++liveUnits_;
    active_[tid] = 1;
    if (tracer_.on(TraceCat::Sched))
        tracer_.instant(TraceCat::Sched, tid, "activate",
                        std::max(when, now_));
    schedule(tid, std::max(when, now_));
}

void
Chip::schedule(ThreadId tid, Cycle when)
{
    if (when <= now_)
        when = now_ + 1;
    if (when - now_ < kWheelSize) {
        const u32 slot = u32(when) & (kWheelSize - 1);
        wheel_[slot].push_back(tid);
        wheelBits_[slot >> 6] |= 1ull << (slot & 63);
        ++inWheel_;
    } else {
        far_.emplace(when, tid);
    }
}

Cycle
Chip::nextWheelEvent() const
{
    // First occupied slot at a cycle in (now_, now_ + kWheelSize),
    // scanning the occupancy bitmap circularly from the slot after
    // now_. The current slot was drained before this is called, so a
    // set bit below the start index can only mean a wrapped (later)
    // cycle.
    const u32 start = u32(now_ + 1) & (kWheelSize - 1);
    u32 word = start >> 6;
    u64 bitsValue = wheelBits_[word] & (~0ull << (start & 63));
    for (u32 scanned = 0;; ++scanned) {
        if (bitsValue != 0) {
            const u32 slot =
                (word << 6) + u32(std::countr_zero(bitsValue));
            const u32 delta = (slot - start) & (kWheelSize - 1);
            return now_ + 1 + delta;
        }
        if (scanned == kWheelWords)
            return kCycleNever;
        word = (word + 1) & (kWheelWords - 1);
        bitsValue = wheelBits_[word];
    }
}

RunExit
Chip::run(Cycle maxCycles)
{
    // A large finite budget near the top of the cycle space must clamp
    // rather than wrap: now_ + maxCycles can overflow after repeated
    // run() calls even when the caller's budget is constant.
    const Cycle limit = maxCycles >= kCycleNever - now_
                            ? kCycleNever
                            : now_ + maxCycles;
    const bool sharded = crew_ != nullptr;
    const u32 shardGrain = cfg_.engine.shardGrain;
    HostRunTimer hostTimer(hostObsOn_ ? &hostObs_ : nullptr);

    while (liveUnits_ > 0) {
        // Sampled mode: the window is a function of absolute chip time,
        // so where the detailed windows fall never depends on how run()
        // calls are sliced. The run starts inside a detailed window
        // (now_ = 0) to warm the averages before the first fast window.
        if (sampledOn_)
            detail_ = now_ % cfg_.engine.samplePeriod <
                      cfg_.engine.sampleDetail;
        if (sampling_)
            sampler_.maybeSample(now_);
        if (profiling_ && now_ >= profNext_)
            samplePcs();
        if (now_ >= svcNext_) {
            // Low-frequency service point: host stop requests and the
            // deadlock watchdog. Both are cycle-domain so results stay
            // deterministic — only the *reaction* to a host signal
            // depends on wall-clock time.
            svcNext_ = now_ + kServiceInterval;
            const int sig = gStopSignal.load(std::memory_order_relaxed);
            if (sig != 0) {
                RunExit e(RunExitReason::Signal, now_);
                e.signal = sig;
                return e;
            }
            const u64 sum = progressSumEngine();
            if (sum != lastProgressSum_) {
                lastProgressSum_ = sum;
                lastProgressCycle_ = now_;
            } else if (cfg_.fault.watchdogCycles != 0 &&
                       now_ - lastProgressCycle_ >=
                           cfg_.fault.watchdogCycles) {
                RunExit e(RunExitReason::Watchdog, now_);
                e.diagnostic = watchdogDump();
                return e;
            }
            // Host telemetry rides the same low-frequency service
            // point: it reads wall clocks only, so the flush cadence
            // cannot perturb simulated timing.
            if (hostObsOn_)
                hostObs_.serviceFlush();
        }
        if (now_ >= limit)
            return {RunExitReason::CycleLimit, now_};

        // Gather the units due this cycle. The due buffer and the slot
        // vector both keep their capacity across cycles (a swap would
        // strip the slot's buffer and force it to reallocate on every
        // future schedule).
        due_.clear();
        const u32 slotIdx = u32(now_) & (kWheelSize - 1);
        auto &slot = wheel_[slotIdx];
        if (!slot.empty()) {
            due_.assign(slot.begin(), slot.end());
            slot.clear();
            wheelBits_[slotIdx >> 6] &= ~(1ull << (slotIdx & 63));
            inWheel_ -= u32(due_.size());
        }
        while (!far_.empty() && far_.top().first <= now_) {
            due_.push_back(far_.top().second);
            far_.pop();
        }

        if (due_.empty()) {
            // Fast-forward to the next scheduled wake-up. Sampled mode
            // must not skip a window boundary: the detail_ flag is
            // recomputed at the loop top from the new absolute time.
            Cycle next = inWheel_ > 0 ? nextWheelEvent() : kCycleNever;
            if (!far_.empty())
                next = std::min(next, far_.top().first);
            if (next == kCycleNever)
                panic("cycle engine: %u live units but nothing scheduled",
                      liveUnits_);
            if (hostObsOn_ && sampledOn_)
                hostObs_.addSampledSkip(now_, next,
                                        cfg_.engine.samplePeriod,
                                        cfg_.engine.sampleDetail);
            cycles_ += next - now_;
            now_ = next;
            continue;
        }

        // Rotate service order every cycle: round-robin arbitration of
        // shared resources among same-cycle requesters.
        const size_t n = due_.size();
        const size_t start = n > 1 ? size_t(now_ % n) : 0;
        const bool fanOut = sharded && detail_ && n >= shardGrain;
        if (fanOut) {
            tickSharded(n, start);
        } else {
            // Serial path: processing the canonical order inline is
            // the reference semantics the sharded path reproduces.
            for (size_t i = 0; i < n; ++i) {
                const ThreadId tid = due_[(start + i) % n];
                Unit *u = units_[tid].get();
                finishTick(tid, u, u->tick(now_));
            }
        }
        if (hostObsOn_) {
            if (sampledOn_)
                hostObs_.addSampledCycles(detail_, 1);
            if (sharded && !fanOut)
                hostObs_.addSerialFallbackCycles(1);
        }
        ++cycles_;
        ++now_;
    }
    return {RunExitReason::AllHalted, now_};
}

/**
 * Post-tick bookkeeping for one unit at its canonical position: halt
 * retirement (with the Sched trace event) or rescheduling. Factored
 * out so the serial loop and the sharded phase B share it exactly.
 */
void
Chip::finishTick(ThreadId tid, Unit *u, Cycle wake)
{
    if (wake == kCycleNever) {
        if (!u->halted())
            panic("unit %u returned never but is not halted", tid);
        --liveUnits_;
        active_[tid] = 0;
        if (tracer_.on(TraceCat::Sched))
            tracer_.instant(TraceCat::Sched, tid, "halt", now_);
    } else {
        if (wake <= now_)
            panic("unit %u rescheduled into the past", tid);
        schedule(tid, wake);
    }
}

/**
 * One sharded cycle (see DESIGN.md section 14). Phase A fans the due
 * units out to the crew: every worker walks the full canonical order,
 * filters to its own tid domain (preserving relative order, which is
 * all quad-local arbitration can observe), and runs the domain-local
 * part of each tick. Ticks needing shared chip state defer without
 * side effects; a defer poisons its quad so later quad-mates keep the
 * serial FPU arbitration order. Phase B then commits, in canonical
 * order on this thread: deferred units run their full tick against the
 * shared fabric, and every unit's halt/reschedule is retired. All
 * shared-state mutation is therefore serial and canonically ordered —
 * results are bit-identical to the serial engine at any worker count.
 */
void
Chip::tickSharded(size_t n, size_t start)
{
    canon_.resize(n);
    wakes_.resize(n);
    for (size_t i = 0; i < n; ++i)
        canon_[i] = due_[(start + i) % n];

    // Host telemetry brackets whole phases, never individual ticks:
    // two clock reads around a worker's entire domain walk and two on
    // the coordinator per cycle. Workers write only their own
    // cache-line-separated slot; the crew's done-counter acquire gives
    // the coordinator visibility before any read.
    const bool ho = hostObsOn_;
    const u64 t0 = ho ? hostNowNs() : 0;
    inShardPhaseA_ = true;
    crew_->run([this, n, ho](u32 w) {
        const ThreadId lo = domainBegin_[w];
        const ThreadId hi = domainBegin_[w + 1];
        const u32 tpq = cfg_.threadsPerQuad;
        const u64 w0 = ho ? hostNowNs() : 0;
        u64 ticks = 0, defers = 0, poisons = 0;
        for (size_t i = 0; i < n; ++i) {
            const ThreadId tid = canon_[i];
            if (tid < lo || tid >= hi)
                continue;
            const u32 quad = tid / tpq;
            const bool fpuOk = quadDeferAt_[quad] != now_;
            const Cycle wake = units_[tid]->tickLocal(now_, fpuOk);
            wakes_[i] = wake;
            ++ticks;
            if (wake == Unit::kTickDeferred) {
                ++defers;
                if (fpuOk)
                    ++poisons;
                quadDeferAt_[quad] = now_;
            }
        }
        if (ho) {
            HostObs::WorkerSlot &slot = hostObs_.slot(w);
            slot.busyNanos += hostNowNs() - w0;
            slot.ticks += ticks;
            slot.defers += defers;
            slot.quadPoisons += poisons;
        }
    });
    inShardPhaseA_ = false;
    const u64 t1 = ho ? hostNowNs() : 0;

    u64 deferredCommits = 0;
    for (size_t i = 0; i < n; ++i) {
        const ThreadId tid = canon_[i];
        Unit *u = units_[tid].get();
        Cycle wake = wakes_[i];
        if (wake == Unit::kTickDeferred) {
            wake = u->tick(now_);
            ++deferredCommits;
        }
        finishTick(tid, u, wake);
    }
    if (ho)
        hostObs_.addShardedCycle(t1 - t0, hostNowNs() - t1, n,
                                 deferredCommits);
}

// Take the PC samples due at or before now_. The cycle engine only
// fast-forwards across event-free gaps, so every thread's PC is
// unchanged since the skipped boundaries: one weighted record per unit
// stands for all of them.
void
Chip::samplePcs()
{
    const u64 interval = profiler_.interval();
    const u64 weight = (now_ - profNext_) / interval + 1;
    for (ThreadId tid = 0; tid < cfg_.numThreads; ++tid) {
        if (!active_[tid])
            continue;
        PhysAddr pc = 0;
        const bool mapped = units_[tid]->samplePc(&pc);
        profiler_.record(tid, mapped, pc, weight);
    }
    profNext_ += weight * interval;
}

// --- SPRs and traps -----------------------------------------------------------

u32
Chip::readSpr(ThreadId tid, u32 spr)
{
    switch (spr) {
      case isa::kSprTid:
        return tid;
      case isa::kSprNThreads:
        return cfg_.numThreads;
      case isa::kSprCycleLo:
        return u32(now_);
      case isa::kSprCycleHi:
        return u32(now_ >> 32);
      case isa::kSprBarrier:
        return barrier_.read();
      case isa::kSprMemSize:
        return memsys_.availableMemBytes() / 1024;
      case isa::kSprChipId:
        return chipId_;
      case isa::kSprNumChips:
        return numChips_;
      default:
        break;
    }
    if (spr >= isa::kSprCntBase && spr < isa::kSprCntEnd) {
        // The performance counter file: low 32 bits of the per-TU
        // counts. Reads on a thread with no unit installed return 0.
        const Unit *u = units_[tid].get();
        if (!u)
            return 0;
        switch (spr) {
          case isa::kSprCntCycles:
            return u32(u->chargedCycles());
          case isa::kSprCntInstret:
            return u32(u->instructions());
          case isa::kSprCntDcacheHit:
            return u32(u->dcacheHits());
          case isa::kSprCntDcacheMiss:
            return u32(u->dcacheMisses());
          case isa::kSprCntIcacheMiss:
            return u32(u->icacheMisses());
          case isa::kSprCntBankStall:
            return u32(u->catCycles(CycleCat::BankContention));
          case isa::kSprCntFpuStall:
            return u32(u->catCycles(CycleCat::FpuArb));
          case isa::kSprCntBarrier:
            return u32(u->catCycles(CycleCat::BarrierWait));
        }
    }
    // Reads of reserved/unimplemented SPR numbers are architecturally
    // defined to return 0 (documented in isa.h and DESIGN.md section 12).
    return 0;
}

void
Chip::writeSpr(ThreadId tid, u32 spr, u32 value)
{
    if (spr == isa::kSprBarrier) {
        barrier_.write(tid, u8(value));
        return;
    }
    guestCheck("mtspr to read-only or unknown SPR %u (thread %u)", spr,
               tid);
}

void
Chip::trap(ThreadId tid, u32 code, u32 arg)
{
    ++trapsServed_;
    if (tracer_.on(TraceCat::Kernel))
        tracer_.instant(TraceCat::Kernel, tid, "trap", now_, code);
    switch (code) {
      case isa::kTrapPutChar:
        console_ += char(arg);
        break;
      case isa::kTrapPutInt:
        console_ += strprintf("%d", s32(arg));
        break;
      case isa::kTrapPutHex:
        console_ += strprintf("0x%x", arg);
        break;
      default:
        guestCheck("unknown trap %u from thread %u", code, tid);
    }
}

// --- Fault model ------------------------------------------------------------

void
Chip::failBank(BankId id)
{
    memsys_.failBank(id);
    inform("bank %u failed: %u KB remain addressable", id,
           memsys_.availableMemBytes() / 1024);
}

void
Chip::disableQuad(u32 quad)
{
    if (quad >= cfg_.numQuads())
        fatal("disableQuad: no quad %u", quad);
    quadEnabled_[quad] = false;
    fpuEnabled_[quad] = false;
    memsys_.disableCache(quad);
    recomputeAlive();
    inform("quad %u disabled (threads %u-%u, cache %u)", quad,
           quad * cfg_.threadsPerQuad,
           (quad + 1) * cfg_.threadsPerQuad - 1, quad);
}

// Fuse off the components named in ChipConfig::fault before boot.
// validate() already bounds every index; duplicates are harmless
// after deduplication here.
void
Chip::applyFaultMap()
{
    const FaultConfig &f = cfg_.fault;
    auto unique = [](std::vector<u32> ids) {
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        return ids;
    };
    for (u32 b : unique(f.disabledBanks))
        memsys_.failBank(b);
    for (u32 q : unique(f.disabledQuads)) {
        quadEnabled_[q] = false;
        fpuEnabled_[q] = false;
        memsys_.disableCache(q);
    }
    for (u32 c : unique(f.disabledDcaches)) {
        // The quad's TUs keep running; their Own-class references are
        // remapped by the fabric (see MemSystem::rebuildRouteLut).
        if (memsys_.cacheEnabled(c))
            memsys_.disableCache(c);
    }
    for (u32 q : f.disabledFpus)
        fpuEnabled_[q] = false;
    for (u32 ic : f.disabledIcaches)
        icEnabled_[ic] = false;
    for (u32 t : f.disabledTus)
        tuEnabled_[t] = false;
    recomputeAlive();
    if (f.anyDegraded()) {
        u32 usable = 0;
        for (ThreadId t = 0; t < cfg_.numThreads; ++t)
            usable += tuSchedulable_[t];
        inform("degraded chip: %u of %u TUs schedulable, %u banks, "
               "cache mask 0x%08x", usable, cfg_.numThreads,
               memsys_.availableBanks(), memsys_.enabledCacheMask());
    }
}

void
Chip::recomputeAlive()
{
    tuAlive_.assign(cfg_.numThreads, false);
    tuSchedulable_.assign(cfg_.numThreads, false);
    std::vector<u8> alive(cfg_.numThreads, 0);
    for (ThreadId t = 0; t < cfg_.numThreads; ++t) {
        const u32 quad = t / cfg_.threadsPerQuad;
        const u32 ic = quad / cfg_.quadsPerICache;
        const bool a =
            tuEnabled_[t] && quadEnabled_[quad] && icEnabled_[ic];
        tuAlive_[t] = a;
        tuSchedulable_[t] = a && fpuEnabled_[quad];
        alive[t] = a;
    }
    barrier_.setAlive(alive);
}

// --- Deadlock watchdog ------------------------------------------------------

u64
Chip::progressSum() const
{
    u64 sum = 0;
    for (const auto &u : units_)
        if (u)
            sum += u->progressEvents();
    return sum;
}

/**
 * Engine-aware progressSum(): under the sharded engine each domain's
 * worker aggregates its own units' progress counters and publishes one
 * per-domain total at the epoch boundary; the coordinator sums only
 * those aggregates. Unit counters are thus only ever read by the host
 * thread that also writes them — no cross-thread counter reads — and
 * the total is exactly progressSum() because the domains partition the
 * tid space.
 */
u64
Chip::progressSumEngine()
{
    if (!crew_)
        return progressSum();
    crew_->run([this](u32 w) {
        u64 sum = 0;
        for (ThreadId t = domainBegin_[w]; t < domainBegin_[w + 1]; ++t)
            if (units_[t])
                sum += units_[t]->progressEvents();
        domainProgress_[w] = sum;
    });
    u64 total = 0;
    for (const u64 v : domainProgress_)
        total += v;
    return total;
}

std::string
Chip::watchdogDump() const
{
    std::string s = strprintf(
        "deadlock watchdog: no forward progress for %llu cycles "
        "(cycle %llu, %u live units)\n",
        static_cast<unsigned long long>(cfg_.fault.watchdogCycles),
        static_cast<unsigned long long>(now_), liveUnits_);
    s += strprintf("  barrier wired-OR: 0x%02x\n", barrier_.read());
    for (ThreadId tid = 0; tid < cfg_.numThreads; ++tid) {
        if (!active_[tid] || !units_[tid])
            continue;
        const Unit *u = units_[tid].get();
        PhysAddr pc = 0;
        const bool mapped = u->samplePc(&pc);
        s += strprintf(
            "  tu %3u: pc=%s instret=%llu progress=%llu "
            "barrier=0x%02x lastPoll(pc=0x%06llx loc=0x%08llx "
            "value=0x%llx)\n",
            tid,
            mapped ? strprintf("0x%06x", pc).c_str() : "<unmapped>",
            static_cast<unsigned long long>(u->instructions()),
            static_cast<unsigned long long>(u->progressEvents()),
            barrier_.threadValue(tid),
            static_cast<unsigned long long>(u->pollPc()),
            static_cast<unsigned long long>(u->pollLoc()),
            static_cast<unsigned long long>(u->pollValue()));
    }
    return s;
}

// --- Aggregates ------------------------------------------------------------------

u64
Chip::totalRunCycles() const
{
    u64 total = 0;
    for (const auto &u : units_)
        if (u)
            total += u->runCycles();
    return total;
}

u64
Chip::totalStallCycles() const
{
    u64 total = 0;
    for (const auto &u : units_)
        if (u)
            total += u->stallCycles();
    return total;
}

u64
Chip::totalInstructions() const
{
    u64 total = 0;
    for (const auto &u : units_)
        if (u)
            total += u->instructions();
    return total;
}

// --- Observability ----------------------------------------------------------

CycleBreakdown
Chip::attribution(ThreadId tid) const
{
    CycleBreakdown b;
    const Unit *u = units_[tid].get();
    if (!u) {
        b.sleep = now_;
        return b;
    }
    for (u32 i = 0; i < kNumCycleCats; ++i)
        b.cat[i] = u->catCycles(static_cast<CycleCat>(i));
    // Everything outside the charged window is sleep. Under a cycle
    // limit a unit's last charge may extend past now_, in which case
    // the unit simply has no sleep this run.
    const u64 charged = b.charged();
    b.sleep = now_ > charged ? now_ - charged : 0;
    return b;
}

CycleBreakdown
Chip::quadAttribution(u32 quad) const
{
    CycleBreakdown b;
    for (u32 t = 0; t < cfg_.threadsPerQuad; ++t)
        b.add(attribution(quad * cfg_.threadsPerQuad + t));
    return b;
}

CycleBreakdown
Chip::chipAttribution() const
{
    CycleBreakdown b;
    for (ThreadId tid = 0; tid < cfg_.numThreads; ++tid)
        b.add(attribution(tid));
    return b;
}

void
Chip::writeObservability()
{
    sampler_.finalize(now_);
    const ObsConfig &obs = cfg_.obs;
    if (!obs.traceOut.empty())
        tracer_.writeChromeJson(obs.expandPath(obs.traceOut),
                                cfg_.numThreads,
                                hostObsOn_ ? hostObs_.traceExport()
                                           : nullptr);
    if (!obs.statsJson.empty()) {
        const std::string path = obs.expandPath(obs.statsJson);
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            fatal("cannot open stats output '%s'", path.c_str());
        writeStatsJson(f, stats_, now_, &sampler_,
                       hostObsOn_ ? &hostObs_.stats() : nullptr);
        std::fclose(f);
    }
    if (!obs.statsCsv.empty()) {
        const std::string path = obs.expandPath(obs.statsCsv);
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            fatal("cannot open stats CSV output '%s'", path.c_str());
        sampler_.writeCsv(f);
        std::fclose(f);
    }
    if (!obs.profOut.empty())
        profiler_.writeOutputs(obs.expandPath(obs.profOut), program_,
                               memsys_, cfg_, now_);
}

} // namespace cyclops::arch
