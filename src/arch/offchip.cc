#include "arch/offchip.h"

#include <algorithm>
#include <cstring>

#include "arch/chip.h"
#include "common/log.h"

namespace cyclops::arch
{

void
OffChipMemory::init(const ChipConfig &cfg, StatGroup *stats)
{
    cfg_ = &cfg;
    capacity_ = cfg.offChipBytes;
    if (stats) {
        stats->addCounter("offchip.dmas", &dmas_);
        stats->addCounter("offchip.dmaBytes", &dmaBytes_);
        stats->addCounter("offchip.channelBusyCycles", &channelBusyCycles_);
    }
}

u8 *
OffChipMemory::blockFor(u64 extOff, bool create)
{
    const u64 block = extOff / kBlockBytes;
    auto it = blocks_.find(block);
    if (it != blocks_.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto storage = std::make_unique<u8[]>(kBlockBytes);
    std::memset(storage.get(), 0, kBlockBytes);
    u8 *ptr = storage.get();
    blocks_.emplace(block, std::move(storage));
    return ptr;
}

Cycle
OffChipMemory::startDma(Cycle now, DmaDir dir, u64 extOff,
                        PhysAddr physAddr, u32 bytes, Chip &chip)
{
    if (capacity_ == 0)
        fatal("off-chip DMA on a chip configured without external memory");
    if (bytes == 0 || bytes % kBlockBytes != 0)
        fatal("off-chip DMA must move whole 1 KB blocks (%u bytes)",
              bytes);
    if (extOff % kBlockBytes != 0 || extOff + bytes > capacity_)
        fatal("off-chip DMA outside external memory: off=%llu bytes=%u",
              static_cast<unsigned long long>(extOff), bytes);

    // Functional copy now; timing below.
    std::vector<u8> buffer(bytes);
    if (dir == DmaDir::ToChip) {
        peek(extOff, buffer.data(), bytes);
        chip.writePhys(physAddr, buffer.data(), bytes);
    } else {
        chip.readPhys(physAddr, buffer.data(), bytes);
        poke(extOff, buffer.data(), bytes);
    }

    const u32 blocks = bytes / kBlockBytes;
    const Cycle start = std::max(now, channelFree_);
    const Cycle duration =
        Cycle(blocks) * cfg_->lat.offChipBlockCycles;
    channelFree_ = start + duration;
    ++dmas_;
    dmaBytes_ += bytes;
    channelBusyCycles_ += duration;
    return channelFree_;
}

void
OffChipMemory::poke(u64 extOff, const void *data, u32 bytes)
{
    const u8 *src = static_cast<const u8 *>(data);
    while (bytes > 0) {
        u8 *block = blockFor(extOff, true);
        const u32 inBlock = u32(extOff % kBlockBytes);
        const u32 chunk = std::min(bytes, kBlockBytes - inBlock);
        std::memcpy(block + inBlock, src, chunk);
        src += chunk;
        extOff += chunk;
        bytes -= chunk;
    }
}

void
OffChipMemory::peek(u64 extOff, void *data, u32 bytes) const
{
    u8 *dst = static_cast<u8 *>(data);
    while (bytes > 0) {
        const u64 block = extOff / kBlockBytes;
        const u32 inBlock = u32(extOff % kBlockBytes);
        const u32 chunk = std::min(bytes, kBlockBytes - inBlock);
        auto it = blocks_.find(block);
        if (it != blocks_.end())
            std::memcpy(dst, it->second.get() + inBlock, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        extOff += chunk;
        bytes -= chunk;
    }
}

} // namespace cyclops::arch
