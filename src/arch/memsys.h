/**
 * @file
 * The chip memory fabric: interest-group routing, the cache switch, 32
 * data caches, the memory switch and 16 embedded-DRAM banks.
 *
 * This is the timing backbone shared by both execution frontends. A
 * thread unit calls access() and receives the cycle at which the data
 * is available; all queueing (cache ports, banks) is accounted inside.
 *
 * Fault tolerance (paper section 5): failBank() removes a bank and
 * re-interleaves the remaining, contiguous address space (the hardware
 * MEMSZ remap); disableCache() removes a quad's cache from interest-
 * group scrambling.
 */

#ifndef CYCLOPS_ARCH_MEMSYS_H
#define CYCLOPS_ARCH_MEMSYS_H

#include <array>
#include <utility>
#include <vector>

#include "arch/dcache.h"
#include "arch/interest_group.h"
#include "arch/membank.h"
#include "common/config.h"
#include "common/stats.h"
#include "common/trace.h"

namespace cyclops::arch
{

/** What a memory operation does, for routing and statistics. */
enum class MemKind : u8 { Load, Store, Atomic, Prefetch };

/** Timing outcome of one data-memory operation. */
struct MemTiming
{
    Cycle ready = 0;    ///< cycle the result is available to the thread
    CacheId cache = 0;  ///< cache that serviced the request
    bool remote = false;
    bool hit = false;
    u64 queueWait = 0;  ///< contention share of the latency (queueing)
    bool fabric = false; ///< crossed the inter-chip fabric (RemoteWait)
};

/** The data-memory fabric of one chip. */
class MemSystem
{
  public:
    MemSystem() = default;

    /**
     * Build caches and banks from the configuration. @p tracer (may be
     * null) receives mem/cache events for every access.
     */
    void init(const ChipConfig &cfg, StatGroup *stats,
              Tracer *tracer = nullptr);

    /**
     * One data access from thread @p tid at cycle @p now.
     *
     * @param ea  32-bit effective address (interest group in bits 31:24)
     * @param bytes access size, naturally aligned (1, 2, 4 or 8)
     *
     * Throws GuestError on misaligned or out-of-range guest addresses
     * (guestCheck/guestCrash — the host process survives).
     */
    MemTiming access(Cycle now, ThreadId tid, Addr ea, u8 bytes,
                     MemKind kind);

    /**
     * Sampled-mode counterpart of access() for the engine's functional
     * fast-forward windows (see DESIGN.md section 14): identical
     * routing, validation, counters and trace events, but instead of
     * the detailed port/MSHR/bank machinery it warms the target
     * cache's tags functionally and regulates timing with virtual
     * shadows of the cache port (one access per cycle) and of each
     * bank's service clock (bankBlockCycles per 32-byte block), so
     * hot-spot layouts and the aggregate bandwidth ceiling both bind
     * as in detailed mode. The real port/MSHR/bank state is left
     * untouched for the next detailed window.
     */
    MemTiming accessSampled(Cycle now, ThreadId tid, Addr ea, u8 bytes,
                            MemKind kind);

    /** dcbf: flush the addressed line from its interest-group cache. */
    Cycle flush(Cycle now, ThreadId tid, Addr ea);

    /** dcbi: invalidate the addressed line. */
    Cycle invalidate(Cycle now, ThreadId tid, Addr ea);

    // --- Bank services used by the caches and the I-path ---------------

    /**
     * Fetch @p blocks 32-byte blocks starting at @p lineAddr on behalf
     * of requester quad @p requester (feeds the bank heatmap).
     */
    BankGrant fetchLine(Cycle req, PhysAddr lineAddr, u32 blocks,
                        CacheId requester);

    /** Posted write of @p blocks blocks (evictions); timing only. */
    void postWrite(Cycle when, PhysAddr lineAddr, u32 blocks,
                   CacheId requester);

    // --- Topology -------------------------------------------------------

    /** The local data cache of a hardware thread. */
    CacheId
    localCacheOf(ThreadId tid) const
    {
        return tid / cfg_->threadsPerQuad;
    }

    DCache &dcache(CacheId id) { return caches_[id]; }
    const DCache &dcache(CacheId id) const { return caches_[id]; }
    MemBank &bank(BankId id) { return banks_[id]; }
    const MemBank &bank(BankId id) const { return banks_[id]; }

    /** Resolve the target cache of an effective address for @p tid. */
    CacheId routeCache(Addr ea, ThreadId tid) const;

    /**
     * Precomputed routing facts for one 8-bit interest-group field:
     * the decode plus the enabled member set of the group, so the hot
     * access path neither re-decodes the field nor re-derives the
     * group scaling per reference. Rebuilt when a cache is disabled.
     */
    struct RouteEntry
    {
        IgClass cls = IgClass::All;
        u8 index = 0;       ///< group index within the size class
        u8 memberCount = 0; ///< 0 for Own/Scratch (caller-resolved)
        u8 members[32] = {}; ///< enabled member cache ids, ascending
    };

    /** Routing entry of an interest-group field (shared decode). */
    const RouteEntry &
    routeEntry(u8 field) const
    {
        return routeLut_[field];
    }

    /** Bank id + bank-local address an embedded address maps to. */
    std::pair<BankId, PhysAddr> routeInfo(PhysAddr addr) const;

    // --- Fault model ------------------------------------------------------

    /** Remove a failed bank; the address space contracts contiguously. */
    void failBank(BankId id);

    /** Remove a cache from interest-group scrambling (quad disabled). */
    void disableCache(CacheId id);

    /** Bitmask of operational caches. */
    u32 enabledCacheMask() const { return cacheMask_; }

    /** True if cache @p id is operational. */
    bool cacheEnabled(CacheId id) const { return (cacheMask_ >> id) & 1u; }

    /** Bytes of embedded memory currently addressable (MEMSZ SPR). */
    u32 availableMemBytes() const;

    /** Number of operational banks. */
    u32 availableBanks() const { return u32(availBanks_.size()); }

    // --- Memory-system heatmaps (profiling) -----------------------------

    /**
     * Start accumulating the (quad x bank) access/conflict matrices and
     * the per-interest-group-class hit/miss breakdown. Off by default;
     * the hot paths test one flag when disabled. Accumulation never
     * affects timing.
     */
    void enableHeatmap();

    bool heatmapEnabled() const { return heatOn_; }

    /** Bank accesses by requester quad: row-major numCaches x numBanks. */
    const std::vector<u64> &heatAccess() const { return heatAccess_; }

    /** Accesses that found their bank busy (grant.start > request). */
    const std::vector<u64> &heatConflict() const { return heatConflict_; }

    /** Per-IgClass access/hit/miss counts, indexed by IgClass value. */
    static constexpr u32 kNumIgClasses = 8;
    const u64 *igAccesses() const { return igAccess_; }
    const u64 *igHits() const { return igHit_; }
    const u64 *igMisses() const { return igMiss_; }

  private:
    struct BankRoute
    {
        MemBank *bank;
        PhysAddr bankAddr; ///< bank-local address
    };

    BankRoute route(PhysAddr addr);
    void noteBank(CacheId requester, const BankRoute &r, Cycle req,
                  const BankGrant &grant);

    // --- Sampled-mode latency model -------------------------------------
    Cycle uncontendedLat(MemKind kind, bool remote, bool hit) const;

    /** MemBank::reserve against the virtual bank shadow (see below). */
    BankGrant sampReserve(Cycle req, u32 blocks, PhysAddr lineAddr,
                          CacheId requester);


    CacheId routeCacheEntry(const RouteEntry &entry, Addr ea,
                            ThreadId tid) const;
    void rebuildRouteLut();
    void updateBankGeometry();

    const ChipConfig *cfg_ = nullptr;
    Tracer *tracer_ = nullptr;
    std::vector<DCache> caches_;
    std::vector<MemBank> banks_;
    std::vector<BankId> availBanks_;
    u32 cacheMask_ = 0;

    // Strength-reduction state for route(): line size is always a
    // power of two; the bank count is one until a bank fails, so the
    // common case routes with shift/mask instead of div/mod.
    u32 lineShift_ = 6;
    bool banksPow2_ = true;
    u32 bankShift_ = 4;
    u32 bankMask_ = 15;

    std::array<RouteEntry, 256> routeLut_;
    std::vector<CacheId> ownRemap_; ///< Own-class target per local cache

    // Heatmap accumulators (see enableHeatmap()).
    bool heatOn_ = false;
    std::vector<u64> heatAccess_;
    std::vector<u64> heatConflict_;
    u64 igAccess_[kNumIgClasses] = {};
    u64 igHit_[kNumIgClasses] = {};
    u64 igMiss_[kNumIgClasses] = {};

    // Sampled-mode regulators: virtual shadows of the per-cache port
    // (one access per cycle) and of each bank's queue and open-row
    // burst state, advanced by fast-window traffic without touching
    // the real port/bank state the next detailed window resumes from.
    struct SampBank
    {
        Cycle free = 0;
        PhysAddr lastRow = ~PhysAddr(0);
        PhysAddr nextBlockAddr = ~PhysAddr(0);
    };
    std::vector<Cycle> sampPort_;
    std::vector<SampBank> sampBank_;

    Counter loads_;
    Counter stores_;
    Counter atomics_;
    Counter localHits_;
    Counter localMisses_;
    Counter remoteHits_;
    Counter remoteMisses_;
    Counter scratchOps_;
    Histogram loadLatency_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_MEMSYS_H
