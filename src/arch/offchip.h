/**
 * @file
 * Optional off-chip memory (128 MB - 2 GB).
 *
 * Not directly addressable: 1 KB blocks are transferred between the
 * external DRAM and the embedded memory much like disk operations
 * (paper section 2.1). The single channel has far lower bandwidth than
 * the embedded banks; transfers are asynchronous DMA operations that
 * the kernel starts and polls.
 *
 * Storage is allocated lazily per 1 KB block so a 2 GB configuration
 * does not consume host RAM until touched.
 */

#ifndef CYCLOPS_ARCH_OFFCHIP_H
#define CYCLOPS_ARCH_OFFCHIP_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace cyclops::arch
{

class Chip;

/** Direction of an off-chip DMA transfer. */
enum class DmaDir : u8 { ToChip, FromChip };

/** The external DRAM and its DMA channel. */
class OffChipMemory
{
  public:
    static constexpr u32 kBlockBytes = 1024;

    void init(const ChipConfig &cfg, StatGroup *stats);

    /**
     * Start a DMA of @p bytes (a multiple of 1 KB) between external
     * offset @p extOff and embedded physical address @p physAddr.
     * The data moves functionally right away; the returned cycle is
     * when the transfer completes on the channel.
     */
    Cycle startDma(Cycle now, DmaDir dir, u64 extOff, PhysAddr physAddr,
                   u32 bytes, Chip &chip);

    /** Cycle the channel becomes idle. */
    Cycle channelFree() const { return channelFree_; }

    u64 capacityBytes() const { return capacity_; }

    /** Direct host-side access for tests and workload setup. */
    void poke(u64 extOff, const void *data, u32 bytes);
    void peek(u64 extOff, void *data, u32 bytes) const;

  private:
    u8 *blockFor(u64 extOff, bool create);

    const ChipConfig *cfg_ = nullptr;
    u64 capacity_ = 0;
    Cycle channelFree_ = 0;
    mutable std::unordered_map<u64, std::unique_ptr<u8[]>> blocks_;

    Counter dmas_;
    Counter dmaBytes_;
    Counter channelBusyCycles_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_OFFCHIP_H
