/**
 * @file
 * PC-sampling profiler: every profInterval cycles the chip records the
 * program counter of every active thread unit into a per-TU histogram.
 * At the end of the run the histograms are symbolized against the
 * assembler symbol table and exported as a hot-PC/hot-symbol JSON
 * report, flamegraph-compatible folded-stacks text, and a (quad x
 * bank) memory heatmap CSV.
 *
 * Sampling never changes simulated timing (the determinism tests cover
 * a profiled run), and the chip skips the sampling hook entirely when
 * profInterval is 0.
 */

#ifndef CYCLOPS_ARCH_PROFILER_H
#define CYCLOPS_ARCH_PROFILER_H

#include <string>
#include <vector>

#include "common/config.h"
#include "common/types.h"

namespace cyclops::isa
{
class Program;
}

namespace cyclops::arch
{

class MemSystem;

/** Per-TU PC-sample histograms and their export. */
class Profiler
{
  public:
    /** Size per-TU state; @p interval 0 disables sampling. */
    void configure(u32 interval, u32 numThreads);

    bool enabled() const { return interval_ > 0; }
    u32 interval() const { return interval_; }

    /**
     * Tell the profiler where program text lives, so samples can be
     * binned densely by word. Samples taken with no text range (the
     * execution-driven frontend) count as unmapped.
     */
    void setTextRange(PhysAddr base, u32 bytes);

    /**
     * Record @p weight samples of thread @p tid at @p pc. @p mapped is
     * false when the unit has no architectural PC.
     */
    void record(ThreadId tid, bool mapped, PhysAddr pc, u64 weight);

    /** Total samples recorded (mapped + unmapped). */
    u64 totalSamples() const;

    /**
     * Write the profile report to @p base (JSON), @p base.folded
     * (flamegraph folded stacks) and @p base.heatmap.csv (the memory
     * system's (quad x bank) access/conflict matrices).
     */
    void writeOutputs(const std::string &base, const isa::Program &prog,
                      const MemSystem &memsys, const ChipConfig &cfg,
                      Cycle now) const;

  private:
    struct PcCount
    {
        PhysAddr pc;
        u64 samples;
    };

    /** Sorted (addr, name) view of the text symbols of @p prog. */
    std::vector<std::pair<PhysAddr, std::string>>
    textSymbols(const isa::Program &prog) const;

    void writeJson(const std::string &path, const isa::Program &prog,
                   const MemSystem &memsys, const ChipConfig &cfg,
                   Cycle now) const;
    void writeFolded(const std::string &path,
                     const isa::Program &prog) const;
    void writeHeatmapCsv(const std::string &path, const MemSystem &memsys,
                         const ChipConfig &cfg) const;

    u32 interval_ = 0;
    PhysAddr textBase_ = 0;
    u32 textWords_ = 0;
    std::vector<std::vector<u64>> bins_; ///< per-TU, lazily sized
    std::vector<u64> unmapped_;          ///< per-TU out-of-text samples
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_PROFILER_H
