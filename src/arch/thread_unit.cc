#include "arch/thread_unit.h"

#include <cmath>
#include <cstring>

#include "arch/chip.h"
#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

using isa::Instr;
using isa::InstrMeta;
using isa::Opcode;
using isa::UnitClass;

ThreadUnit::ThreadUnit(ThreadId tid, Chip &chip, PhysAddr entry)
    : Unit(tid), chip_(chip), pc_(entry)
{
    mem_.init(chip.config().maxOutstandingMem);
    pib_.init(chip.config());
}

void
ThreadUnit::setReg(unsigned index, u32 value)
{
    if (index != 0)
        regs_[index] = value;
}

void
ThreadUnit::setRegReady(unsigned index, Cycle at, CycleCat producer,
                        u64 queueing)
{
    if (index != 0) {
        ready_[index] = at;
        prodCat_[index] = static_cast<u8>(producer);
        prodQueue_[index] = queueing;
    }
}

double
ThreadUnit::regPair(unsigned even) const
{
    u64 raw = (u64(regs_[even + 1]) << 32) | regs_[even];
    double value;
    std::memcpy(&value, &raw, 8);
    return value;
}

void
ThreadUnit::setRegPair(unsigned even, double value)
{
    u64 raw;
    std::memcpy(&raw, &value, 8);
    setReg(even, u32(raw));
    setReg(even + 1, u32(raw >> 32));
}

ThreadUnit::Hazard
ThreadUnit::hazardsClearAt(const Instr &instr) const
{
    const InstrMeta &m = isa::meta(instr.op);
    Hazard h;
    auto consider = [&](unsigned reg, bool pair) {
        if (ready_[reg] > h.at)
            h = {ready_[reg], reg};
        if (pair && ready_[reg + 1] > h.at)
            h = {ready_[reg + 1], reg + 1};
    };
    if (m.readsRa)
        consider(instr.ra, m.fpPairRa);
    if (m.readsRb)
        consider(instr.rb, m.fpPairRb);
    if (m.readsRd || m.writesRd)
        consider(instr.rd, m.fpPairRd);
    return h;
}

Cycle
ThreadUnit::tickImpl(Cycle now, bool localOnly, bool fpuOk)
{
    if (halted_)
        return kCycleNever;

    // Instruction supply: the PIB must hold the current PC. Refills go
    // through the shared I-cache (two quads) and the memory fabric.
    if (!pib_.contains(pc_)) {
        if (localOnly)
            return kTickDeferred;
        u32 lineMisses = 0;
        const Cycle ready = chip_.icacheRefill(
            now, tid_, pib_.windowBase(pc_), &lineMisses);
        noteImiss(lineMisses);
        pib_.load(pc_);
        const Cycle wake = std::max(ready, now + 1);
        accountWait(now, wake, CycleCat::IcacheMiss);
        Tracer &tr = chip_.tracer();
        if (tr.on(TraceCat::Cache))
            tr.complete(TraceCat::Cache, tid_, "pibRefill", now,
                        wake - now, pc_);
        return wake;
    }

    // A wild PC raises GuestError from decodedAt(); defer so the throw
    // happens serially at this unit's canonical position.
    if (localOnly && !chip_.pcDecodable(pc_))
        return kTickDeferred;

    const Instr &instr = chip_.decodedAt(pc_);

    // Register dependences (sources, and WAW on the destination):
    // charge the wait to whatever the producing instruction was
    // waiting on (its stall category and queueing share).
    const Hazard hazard = hazardsClearAt(instr);
    if (hazard.at > now) {
        accountMemWait(now, hazard.at,
                       static_cast<CycleCat>(prodCat_[hazard.reg]),
                       prodQueue_[hazard.reg]);
        // The queueing share is charged once, not per retry.
        prodQueue_[hazard.reg] = 0;
        return hazard.at;
    }

    return issue(now, instr, localOnly, fpuOk);
}

Cycle
ThreadUnit::issue(Cycle now, const Instr &instr, bool localOnly,
                  bool fpuOk)
{
    const ChipConfig &cfg = chip_.config();
    const LatencyConfig &lat = cfg.lat;
    const InstrMeta &m = isa::meta(instr.op);
    const u8 rd = instr.rd, ra = instr.ra, rb = instr.rb;
    const s32 imm = instr.imm;
    PhysAddr nextPc = pc_ + 4;

    switch (m.unit) {
      case UnitClass::IntAlu: {
        u32 a = regs_[ra];
        u32 result = 0;
        switch (instr.op) {
          case Opcode::Add: result = a + regs_[rb]; break;
          case Opcode::Sub: result = a - regs_[rb]; break;
          case Opcode::And: result = a & regs_[rb]; break;
          case Opcode::Or: result = a | regs_[rb]; break;
          case Opcode::Xor: result = a ^ regs_[rb]; break;
          case Opcode::Nor: result = ~(a | regs_[rb]); break;
          case Opcode::Sll: result = a << (regs_[rb] & 31); break;
          case Opcode::Srl: result = a >> (regs_[rb] & 31); break;
          case Opcode::Sra:
            result = u32(s32(a) >> (regs_[rb] & 31));
            break;
          case Opcode::Slt: result = s32(a) < s32(regs_[rb]); break;
          case Opcode::Sltu: result = a < regs_[rb]; break;
          case Opcode::Addi: result = a + u32(imm); break;
          case Opcode::Andi: result = a & u32(imm & 0x1FFF); break;
          case Opcode::Ori: result = a | u32(imm & 0x1FFF); break;
          case Opcode::Xori: result = a ^ u32(imm & 0x1FFF); break;
          case Opcode::Slli: result = a << (imm & 31); break;
          case Opcode::Srli: result = a >> (imm & 31); break;
          case Opcode::Srai: result = u32(s32(a) >> (imm & 31)); break;
          case Opcode::Slti: result = s32(a) < imm; break;
          case Opcode::Sltiu: result = a < u32(imm); break;
          case Opcode::Lui: result = u32(imm) << 13; break;
          default: panic("bad IntAlu opcode");
        }
        // Watchdog food: producing a *new* value is forward progress; a
        // spin loop recomputing the same mask/compare result is not.
        if (rd != 0 && regs_[rd] != result)
            noteProgress();
        setReg(rd, result);
        setRegReady(rd, now + 1);
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }

      case UnitClass::IntMul: {
        noteProgress();
        const u64 product = u64(regs_[ra]) * u64(regs_[rb]);
        setReg(rd, instr.op == Opcode::Mul ? u32(product)
                                           : u32(product >> 32));
        setRegReady(rd, now + lat.intMulExec + lat.intMulLat,
                    CycleCat::FpuArb);
        accountIssue(now, lat.intMulExec);
        pc_ = nextPc;
        return now + lat.intMulExec;
      }

      case UnitClass::IntDiv: {
        noteProgress();
        u32 result;
        const u32 a = regs_[ra], b = regs_[rb];
        if (b == 0) {
            result = ~0u; // division by zero yields all ones
        } else if (instr.op == Opcode::Div) {
            if (a == 0x8000'0000u && b == ~0u)
                result = a; // overflow wraps
            else
                result = u32(s32(a) / s32(b));
        } else {
            result = a / b;
        }
        setReg(rd, result);
        setRegReady(rd, now + lat.intDivExec);
        accountIssue(now, lat.intDivExec);
        pc_ = nextPc;
        return now + lat.intDivExec;
      }

      case UnitClass::Branch: {
        bool taken = false;
        switch (instr.op) {
          case Opcode::Beq: taken = regs_[ra] == regs_[rb]; break;
          case Opcode::Bne: taken = regs_[ra] != regs_[rb]; break;
          case Opcode::Blt:
            taken = s32(regs_[ra]) < s32(regs_[rb]);
            break;
          case Opcode::Bge:
            taken = s32(regs_[ra]) >= s32(regs_[rb]);
            break;
          case Opcode::Bltu: taken = regs_[ra] < regs_[rb]; break;
          case Opcode::Bgeu: taken = regs_[ra] >= regs_[rb]; break;
          case Opcode::Jal:
            setReg(rd, pc_ + 4);
            setRegReady(rd, now + lat.branchExec);
            taken = true;
            break;
          case Opcode::Jalr: {
            const u32 target = (regs_[ra] + u32(imm)) & ~3u;
            setReg(rd, pc_ + 4);
            setRegReady(rd, now + lat.branchExec);
            pc_ = target;
            accountIssue(now, lat.branchExec);
            return now + lat.branchExec;
          }
          default: panic("bad branch opcode");
        }
        pc_ = taken ? pc_ + 4 + u32(imm) * 4 : nextPc;
        accountIssue(now, lat.branchExec);
        return now + lat.branchExec;
      }

      case UnitClass::Load:
      case UnitClass::Store:
      case UnitClass::Atomic: {
        mem_.prune(now);
        if (mem_.full()) {
            const Cycle wake = std::max(mem_.earliest(), now + 1);
            accountWait(now, wake,
                        mem_.earliestFabric() ? CycleCat::RemoteWait
                                              : CycleCat::DcacheMiss);
            return wake;
        }
        if (localOnly)
            return kTickDeferred; // fabric access commits in phase B
        // Atomics address through ra alone (rb is the operand); the
        // indexed loads/stores (lwx/ldx/...) add ra + rb.
        const bool indexed =
            m.format == isa::Format::R && m.unit != UnitClass::Atomic;
        const Addr ea = indexed ? regs_[ra] + regs_[rb]
                                : m.unit == UnitClass::Atomic
                                      ? regs_[ra]
                                      : regs_[ra] + u32(imm);

        if (m.unit == UnitClass::Atomic) {
            const u32 old = u32(chip_.memRead(ea, 4, tid_));
            // Polling semantics: amotas/amocas re-reading a held lock
            // makes no progress; a changing value (amoadd tickets,
            // released locks) does.
            notePoll(pc_, ea, old);
            u32 fresh = old;
            bool doWrite = true;
            switch (instr.op) {
              case Opcode::Amoadd: fresh = old + regs_[rb]; break;
              case Opcode::Amoswap: fresh = regs_[rb]; break;
              case Opcode::Amocas:
                doWrite = old == regs_[rd];
                fresh = regs_[rb];
                break;
              case Opcode::Amotas: fresh = 1; break;
              default: panic("bad atomic opcode");
            }
            if (doWrite)
                chip_.memWrite(ea, 4, fresh, tid_);
            MemTiming t = chip_.dmem(now, tid_, ea, 4, MemKind::Atomic);
            noteDmem(t.hit);
            setReg(rd, old);
            setRegReady(rd, t.ready,
                        t.fabric ? CycleCat::RemoteWait
                                 : CycleCat::DcacheMiss,
                        t.queueWait);
            mem_.add(t.ready, t.fabric);
        } else if (m.unit == UnitClass::Load) {
            u64 raw = chip_.memRead(ea, m.memBytes, tid_);
            switch (instr.op) {
              case Opcode::Lb: raw = u32(s32(s8(raw))); break;
              case Opcode::Lh: raw = u32(s32(s16(raw))); break;
              default: break;
            }
            notePoll(pc_, ea, raw);
            MemTiming t =
                chip_.dmem(now, tid_, ea, m.memBytes, MemKind::Load);
            noteDmem(t.hit);
            const CycleCat prod = t.fabric ? CycleCat::RemoteWait
                                           : CycleCat::DcacheMiss;
            if (m.memBytes == 8) {
                setReg(rd, u32(raw));
                setReg(rd + 1, u32(raw >> 32));
                setRegReady(rd, t.ready, prod, t.queueWait);
                setRegReady(rd + 1, t.ready, prod, t.queueWait);
            } else {
                setReg(rd, u32(raw));
                setRegReady(rd, t.ready, prod, t.queueWait);
            }
            mem_.add(t.ready, t.fabric);
        } else {
            noteProgress();
            u64 value = regs_[rd];
            if (m.memBytes == 8)
                value |= u64(regs_[rd + 1]) << 32;
            chip_.memWrite(ea, m.memBytes, value, tid_);
            MemTiming t =
                chip_.dmem(now, tid_, ea, m.memBytes, MemKind::Store);
            noteDmem(t.hit);
            mem_.add(t.ready, t.fabric);
        }
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }

      case UnitClass::FpAdd:
      case UnitClass::FpMul:
      case UnitClass::FpDiv:
      case UnitClass::FpSqrt:
      case UnitClass::Fma: {
        if (localOnly && !fpuOk)
            return kTickDeferred; // quad FPU order pinned to phase B
        FpuOp port;
        switch (m.unit) {
          case UnitClass::FpAdd: port = FpuOp::Add; break;
          case UnitClass::FpMul: port = FpuOp::Mul; break;
          case UnitClass::FpDiv: port = FpuOp::Div; break;
          case UnitClass::FpSqrt: port = FpuOp::Sqrt; break;
          default: port = FpuOp::Fma; break;
        }
        Cycle resultAt = 0;
        if (!chip_.fpuOf(tid_).dispatch(now, port, &resultAt)) {
            accountWait(now, now + 1, CycleCat::FpuArb);
            return now + 1; // shared FPU busy: retry (round-robin)
        }
        switch (instr.op) {
          case Opcode::Faddd:
            setRegPair(rd, regPair(ra) + regPair(rb));
            break;
          case Opcode::Fsubd:
            setRegPair(rd, regPair(ra) - regPair(rb));
            break;
          case Opcode::Fmuld:
            setRegPair(rd, regPair(ra) * regPair(rb));
            break;
          case Opcode::Fdivd:
            setRegPair(rd, regPair(ra) / regPair(rb));
            break;
          case Opcode::Fsqrtd:
            setRegPair(rd, std::sqrt(regPair(ra)));
            break;
          case Opcode::Fmadd:
            setRegPair(rd, regPair(ra) * regPair(rb) + regPair(rd));
            break;
          case Opcode::Fmsub:
            setRegPair(rd, regPair(ra) * regPair(rb) - regPair(rd));
            break;
          case Opcode::Fnegd: setRegPair(rd, -regPair(ra)); break;
          case Opcode::Fabsd:
            setRegPair(rd, std::fabs(regPair(ra)));
            break;
          case Opcode::Fmovd: setRegPair(rd, regPair(ra)); break;
          case Opcode::Fadds:
          case Opcode::Fsubs:
          case Opcode::Fmuls: {
            float a, b;
            std::memcpy(&a, &regs_[ra], 4);
            std::memcpy(&b, &regs_[rb], 4);
            float result = instr.op == Opcode::Fadds   ? a + b
                           : instr.op == Opcode::Fsubs ? a - b
                                                       : a * b;
            u32 raw;
            std::memcpy(&raw, &result, 4);
            setReg(rd, raw);
            break;
          }
          case Opcode::Fcvtdw:
            setRegPair(rd, double(s32(regs_[ra])));
            break;
          case Opcode::Fcvtwd:
            setReg(rd, u32(f64ToS32(regPair(ra))));
            break;
          case Opcode::Fclt:
            setReg(rd, regPair(ra) < regPair(rb));
            break;
          case Opcode::Fcle:
            setReg(rd, regPair(ra) <= regPair(rb));
            break;
          case Opcode::Fceq:
            setReg(rd, regPair(ra) == regPair(rb));
            break;
          default: panic("bad FP opcode");
        }
        noteProgress();
        if (m.fpPairRd) {
            setRegReady(rd, resultAt, CycleCat::FpuArb);
            setRegReady(rd + 1, resultAt, CycleCat::FpuArb);
        } else {
            setRegReady(rd, resultAt, CycleCat::FpuArb);
        }
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }

      case UnitClass::Spr: {
        if (instr.op == Opcode::Mfspr) {
            // The barrier SPR is the wired-OR: reads must be ordered
            // against same-cycle writes from other domains. Everything
            // else readSpr() serves is frozen for the cycle (clock,
            // geometry) or owned by this unit (its counter SPRs).
            if (localOnly && u32(imm) == isa::kSprBarrier)
                return kTickDeferred;
            const u32 sprValue = chip_.readSpr(tid_, u32(imm));
            // SPRs live in their own poll namespace, above the 32-bit
            // effective-address space. Barrier spins re-read the same
            // OR value (no progress); cycle-counter reads change.
            notePoll(pc_, (u64(1) << 40) | u32(imm), sprValue);
            setReg(rd, sprValue);
            // Waiting on a barrier-SPR read is barrier time; other
            // SPRs charge like any long-latency functional unit.
            setRegReady(rd, now + lat.sprLat,
                        u32(imm) == isa::kSprBarrier ? CycleCat::BarrierWait
                                                     : CycleCat::FpuArb);
        } else {
            if (localOnly)
                return kTickDeferred; // SPR writes hit shared chip state
            noteProgress();
            chip_.writeSpr(tid_, u32(imm), regs_[ra]);
            if (u32(imm) == isa::kSprBarrier) {
                Tracer &tr = chip_.tracer();
                if (tr.on(TraceCat::Barrier))
                    tr.instant(TraceCat::Barrier, tid_, "mtspr.barrier",
                               now, regs_[ra]);
            }
        }
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }

      case UnitClass::Sync: {
        mem_.prune(now);
        if (!mem_.empty()) {
            const Cycle wake = std::max(mem_.latest(), now + 1);
            accountWait(now, wake,
                        mem_.latestFabric() ? CycleCat::RemoteWait
                                            : CycleCat::DcacheMiss);
            return wake;
        }
        noteProgress();
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }

      case UnitClass::CacheOp: {
        mem_.prune(now);
        if (mem_.full()) {
            const Cycle wake = std::max(mem_.earliest(), now + 1);
            accountWait(now, wake,
                        mem_.earliestFabric() ? CycleCat::RemoteWait
                                              : CycleCat::DcacheMiss);
            return wake;
        }
        if (localOnly)
            return kTickDeferred; // fabric access commits in phase B
        const Addr ea = regs_[ra] + u32(imm);
        Cycle done;
        switch (instr.op) {
          case Opcode::Pref: {
            MemTiming t =
                chip_.dmem(now, tid_, ea, 4, MemKind::Prefetch);
            noteDmem(t.hit);
            done = t.ready;
            break;
          }
          case Opcode::Dcbf:
            done = chip_.memsys().flush(now, tid_, ea);
            break;
          case Opcode::Dcbi:
            done = chip_.memsys().invalidate(now, tid_, ea);
            break;
          default: panic("bad cache op");
        }
        noteProgress();
        mem_.add(done);
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }

      case UnitClass::Misc: {
        if (instr.op == Opcode::Halt) {
            markHalted();
            accountIssue(now, 1);
            return kCycleNever;
        }
        if (instr.op == Opcode::Trap) {
            if (u32(imm) == isa::kTrapExit) {
                markHalted();
                accountIssue(now, 1);
                return kCycleNever;
            }
            if (localOnly)
                return kTickDeferred; // traps write the shared console
            chip_.trap(tid_, u32(imm), regs_[4]);
        }
        noteProgress();
        accountIssue(now, 1);
        pc_ = nextPc;
        return now + 1;
      }
    }
    panic("unhandled unit class");
}

} // namespace cyclops::arch
