/**
 * @file
 * The quad-shared floating point unit.
 *
 * Three functional units per FPU: an adder, a multiplier, and a divide
 * and square-root unit. The adder and multiplier are fully pipelined
 * (one dispatch per cycle each); a fused multiply-add occupies both and
 * completes one FMA per cycle (1 GFlops per FPU at 500 MHz). Divide and
 * square root are unpipelined on the shared divide unit.
 *
 * Arbitration between the four threads of the quad is resolved by the
 * engine's rotating tick order (round-robin, as the paper specifies);
 * the FPU itself just tracks port occupancy.
 */

#ifndef CYCLOPS_ARCH_FPU_H
#define CYCLOPS_ARCH_FPU_H

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace cyclops::arch
{

/** Operation classes dispatched to an FPU. */
enum class FpuOp : u8 { Add, Mul, Fma, Div, Sqrt };

/** Timing model of one quad FPU. */
class Fpu
{
  public:
    void init(u32 id, const ChipConfig &cfg, StatGroup *stats);

    /**
     * Try to dispatch @p op at cycle @p now.
     *
     * @param[out] resultAt cycle the result becomes available
     * @return true on dispatch; false if the unit is busy this cycle
     *         (caller retries next cycle — a resource stall).
     */
    bool dispatch(Cycle now, FpuOp op, Cycle *resultAt);

    u64 ops() const { return ops_.value(); }

  private:
    const ChipConfig *cfg_ = nullptr;
    Cycle addFree_ = 0;
    Cycle mulFree_ = 0;
    Cycle divFree_ = 0;

    Counter ops_;
    Counter addOps_;
    Counter mulOps_;
    Counter fmaOps_;
    Counter divOps_;
    Counter sqrtOps_;
    Counter conflicts_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_FPU_H
