#include "arch/profiler.h"

#include <algorithm>
#include <cstdio>

#include "arch/memsys.h"
#include "common/log.h"
#include "isa/program.h"

namespace cyclops::arch
{

namespace
{

const char *const kIgClassNames[MemSystem::kNumIgClasses] = {
    "Own", "All", "Sixteen", "Eight", "Four", "Pair", "One", "Scratch"};

constexpr const char *kUnmappedName = "<unmapped>";
constexpr const char *kUnknownName = "<unknown>";

std::FILE *
openOut(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open profile output '%s'", path.c_str());
    return f;
}

} // namespace

void
Profiler::configure(u32 interval, u32 numThreads)
{
    interval_ = interval;
    bins_.clear();
    bins_.resize(numThreads);
    unmapped_.assign(numThreads, 0);
}

void
Profiler::setTextRange(PhysAddr base, u32 bytes)
{
    textBase_ = base;
    textWords_ = bytes / 4;
}

void
Profiler::record(ThreadId tid, bool mapped, PhysAddr pc, u64 weight)
{
    if (mapped && textWords_ > 0 && pc >= textBase_ &&
        pc < textBase_ + textWords_ * 4) {
        auto &bins = bins_[tid];
        if (bins.empty())
            bins.assign(textWords_, 0);
        bins[(pc - textBase_) / 4] += weight;
    } else {
        unmapped_[tid] += weight;
    }
}

u64
Profiler::totalSamples() const
{
    u64 total = 0;
    for (const auto &bins : bins_)
        for (u64 v : bins)
            total += v;
    for (u64 v : unmapped_)
        total += v;
    return total;
}

std::vector<std::pair<PhysAddr, std::string>>
Profiler::textSymbols(const isa::Program &prog) const
{
    std::vector<std::pair<PhysAddr, std::string>> out;
    const PhysAddr end = textBase_ + textWords_ * 4;
    for (const auto &[name, addr] : prog.symbols)
        if (addr >= textBase_ && addr < end)
            out.emplace_back(addr, name);
    // prog.symbols is an ordered map keyed by name; sort by address,
    // name-ascending within an address, so symbolization and reports
    // are deterministic.
    std::sort(out.begin(), out.end());
    return out;
}

namespace
{

/** Name of the symbol covering @p pc in the sorted symbol list. */
const char *
symbolize(const std::vector<std::pair<PhysAddr, std::string>> &syms,
          PhysAddr pc)
{
    auto it = std::upper_bound(
        syms.begin(), syms.end(), pc,
        [](PhysAddr p, const auto &sym) { return p < sym.first; });
    if (it == syms.begin())
        return kUnknownName;
    return std::prev(it)->second.c_str();
}

} // namespace

void
Profiler::writeOutputs(const std::string &base, const isa::Program &prog,
                       const MemSystem &memsys, const ChipConfig &cfg,
                       Cycle now) const
{
    writeJson(base, prog, memsys, cfg, now);
    writeFolded(base + ".folded", prog);
    writeHeatmapCsv(base + ".heatmap.csv", memsys, cfg);
}

void
Profiler::writeJson(const std::string &path, const isa::Program &prog,
                    const MemSystem &memsys, const ChipConfig &cfg,
                    Cycle now) const
{
    const auto syms = textSymbols(prog);

    // Aggregate the per-TU bins across threads, per PC and per symbol.
    std::vector<u64> perPc(textWords_, 0);
    for (const auto &bins : bins_)
        for (size_t i = 0; i < bins.size(); ++i)
            perPc[i] += bins[i];
    u64 unmapped = 0;
    for (u64 v : unmapped_)
        unmapped += v;

    struct SymCount
    {
        const char *name;
        PhysAddr addr;
        u64 samples;
    };
    std::vector<SymCount> bySym;
    {
        size_t symIdx = 0; // current symbol while walking PCs ascending
        for (u32 w = 0; w < textWords_; ++w) {
            if (perPc[w] == 0)
                continue;
            const PhysAddr pc = textBase_ + w * 4;
            while (symIdx < syms.size() && syms[symIdx].first <= pc)
                ++symIdx;
            const char *name = symIdx == 0 ? kUnknownName
                                           : syms[symIdx - 1].second.c_str();
            const PhysAddr addr =
                symIdx == 0 ? textBase_ : syms[symIdx - 1].first;
            if (!bySym.empty() && bySym.back().addr == addr &&
                bySym.back().name == name) {
                bySym.back().samples += perPc[w];
            } else {
                bySym.push_back({name, addr, perPc[w]});
            }
        }
    }
    if (unmapped > 0)
        bySym.push_back({kUnmappedName, 0, unmapped});
    std::stable_sort(bySym.begin(), bySym.end(),
                     [](const SymCount &a, const SymCount &b) {
                         return a.samples > b.samples;
                     });

    std::vector<PcCount> hot;
    for (u32 w = 0; w < textWords_; ++w)
        if (perPc[w] > 0)
            hot.push_back({textBase_ + w * 4, perPc[w]});
    std::stable_sort(hot.begin(), hot.end(),
                     [](const PcCount &a, const PcCount &b) {
                         return a.samples > b.samples;
                     });
    if (hot.size() > 32)
        hot.resize(32);

    const u64 total = totalSamples();
    std::FILE *f = openOut(path);
    std::fprintf(f, "{\n  \"profInterval\": %u,\n", interval_);
    std::fprintf(f, "  \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(now));
    std::fprintf(f, "  \"samples\": %llu,\n",
                 static_cast<unsigned long long>(total));
    std::fprintf(f, "  \"unmappedSamples\": %llu,\n",
                 static_cast<unsigned long long>(unmapped));

    std::fputs("  \"symbols\": [", f);
    for (size_t i = 0; i < bySym.size(); ++i) {
        const double pct =
            total > 0 ? 100.0 * double(bySym[i].samples) / double(total)
                      : 0.0;
        std::fprintf(f,
                     "%s\n    {\"symbol\": \"%s\", \"addr\": %u, "
                     "\"samples\": %llu, \"pct\": %.3f}",
                     i ? "," : "", bySym[i].name, bySym[i].addr,
                     static_cast<unsigned long long>(bySym[i].samples),
                     pct);
    }
    std::fputs("\n  ],\n", f);

    std::fputs("  \"hotPcs\": [", f);
    for (size_t i = 0; i < hot.size(); ++i) {
        std::fprintf(f,
                     "%s\n    {\"pc\": %u, \"symbol\": \"%s\", "
                     "\"samples\": %llu}",
                     i ? "," : "", hot[i].pc, symbolize(syms, hot[i].pc),
                     static_cast<unsigned long long>(hot[i].samples));
    }
    std::fputs("\n  ],\n", f);

    std::fputs("  \"threads\": [", f);
    bool first = true;
    for (ThreadId tid = 0; tid < ThreadId(bins_.size()); ++tid) {
        u64 n = unmapped_[tid];
        for (u64 v : bins_[tid])
            n += v;
        if (n == 0)
            continue;
        std::fprintf(f, "%s\n    {\"tid\": %u, \"samples\": %llu}",
                     first ? "" : ",", tid,
                     static_cast<unsigned long long>(n));
        first = false;
    }
    std::fputs("\n  ],\n", f);

    std::fputs("  \"igClasses\": [", f);
    for (u32 c = 0; c < MemSystem::kNumIgClasses; ++c) {
        std::fprintf(f,
                     "%s\n    {\"class\": \"%s\", \"accesses\": %llu, "
                     "\"hits\": %llu, \"misses\": %llu}",
                     c ? "," : "", kIgClassNames[c],
                     static_cast<unsigned long long>(memsys.igAccesses()[c]),
                     static_cast<unsigned long long>(memsys.igHits()[c]),
                     static_cast<unsigned long long>(memsys.igMisses()[c]));
    }
    std::fputs("\n  ],\n", f);

    std::fputs("  \"banks\": [", f);
    for (BankId b = 0; b < cfg.numBanks; ++b) {
        const MemBank &bank = memsys.bank(b);
        std::fprintf(f,
                     "%s\n    {\"bank\": %u, \"accesses\": %llu, "
                     "\"busyCycles\": %llu, \"queueCycles\": %llu}",
                     b ? "," : "", b,
                     static_cast<unsigned long long>(bank.accesses()),
                     static_cast<unsigned long long>(bank.busyCycles()),
                     static_cast<unsigned long long>(bank.queueCycles()));
    }
    std::fputs("\n  ]\n}\n", f);
    std::fclose(f);
}

void
Profiler::writeFolded(const std::string &path,
                      const isa::Program &prog) const
{
    const auto syms = textSymbols(prog);
    std::FILE *f = openOut(path);
    for (ThreadId tid = 0; tid < ThreadId(bins_.size()); ++tid) {
        // Aggregate this TU's bins per symbol; bins ascend by PC, so
        // one pass with a running symbol index suffices.
        const auto &bins = bins_[tid];
        size_t symIdx = 0;
        const char *curName = nullptr;
        u64 curCount = 0;
        auto flush = [&] {
            if (curName && curCount > 0)
                std::fprintf(f, "tu%u;%s %llu\n", tid, curName,
                             static_cast<unsigned long long>(curCount));
            curCount = 0;
        };
        for (size_t w = 0; w < bins.size(); ++w) {
            if (bins[w] == 0)
                continue;
            const PhysAddr pc = textBase_ + u32(w) * 4;
            while (symIdx < syms.size() && syms[symIdx].first <= pc)
                ++symIdx;
            const char *name = symIdx == 0 ? kUnknownName
                                           : syms[symIdx - 1].second.c_str();
            if (name != curName) {
                flush();
                curName = name;
            }
            curCount += bins[w];
        }
        flush();
        if (unmapped_[tid] > 0)
            std::fprintf(f, "tu%u;%s %llu\n", tid, kUnmappedName,
                         static_cast<unsigned long long>(unmapped_[tid]));
    }
    std::fclose(f);
}

void
Profiler::writeHeatmapCsv(const std::string &path, const MemSystem &memsys,
                          const ChipConfig &cfg) const
{
    if (!memsys.heatmapEnabled())
        fatal("profile output requested but the heatmap is disabled");
    std::FILE *f = openOut(path);
    std::fputs("row,quad", f);
    for (BankId b = 0; b < cfg.numBanks; ++b)
        std::fprintf(f, ",bank%u", b);
    std::fputc('\n', f);

    const auto &access = memsys.heatAccess();
    const auto &conflict = memsys.heatConflict();
    for (u32 q = 0; q < cfg.numCaches(); ++q) {
        std::fprintf(f, "access,%u", q);
        for (BankId b = 0; b < cfg.numBanks; ++b)
            std::fprintf(f, ",%llu",
                         static_cast<unsigned long long>(
                             access[size_t(q) * cfg.numBanks + b]));
        std::fputc('\n', f);
    }
    for (u32 q = 0; q < cfg.numCaches(); ++q) {
        std::fprintf(f, "conflict,%u", q);
        for (BankId b = 0; b < cfg.numBanks; ++b)
            std::fprintf(f, ",%llu",
                         static_cast<unsigned long long>(
                             conflict[size_t(q) * cfg.numBanks + b]));
        std::fputc('\n', f);
    }
    // Per-bank totals from the banks themselves: every column of the
    // access matrix must sum to the matching entry of this row (the
    // heatmap is enabled for the whole run), which check_prof.py and
    // the unit tests assert.
    std::fputs("bankAccesses,-", f);
    for (BankId b = 0; b < cfg.numBanks; ++b)
        std::fprintf(
            f, ",%llu",
            static_cast<unsigned long long>(memsys.bank(b).accesses()));
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace cyclops::arch
