/**
 * @file
 * One bank of embedded DRAM (timing only; functional data lives in the
 * chip's flat memory image).
 *
 * The unit of access is a 32-byte block served in 6 cycles, so each
 * bank sustains 64 bytes every 12 cycles — with 16 banks that is the
 * paper's 42 GB/s peak at 500 MHz. A request that hits the bank's open
 * row back-to-back ("two consecutive blocks in the same bank") sees a
 * lower *latency* in burst transfer mode; occupancy (bandwidth) is
 * unchanged.
 */

#ifndef CYCLOPS_ARCH_MEMBANK_H
#define CYCLOPS_ARCH_MEMBANK_H

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace cyclops::arch
{

/** Result of reserving bank service. */
struct BankGrant
{
    Cycle start = 0;          ///< cycle service begins
    u32 transferCycles = 0;   ///< cycles until the data is delivered
};

/** Timing model of one embedded-DRAM bank. */
class MemBank
{
  public:
    MemBank() = default;

    /** Configure from the chip configuration; registers statistics. */
    void init(BankId id, const ChipConfig &cfg, StatGroup *stats);

    /**
     * Reserve service for @p blocks consecutive 32-byte blocks starting
     * at bank-local address @p bankAddr, requested at @p reqTime.
     *
     * Occupancy is blocks * bankBlockCycles; the returned transfer time
     * is shortened by the burst discount when the open row is hit
     * back-to-back.
     */
    BankGrant reserve(Cycle reqTime, u32 blocks, PhysAddr bankAddr);

    /** Cycle at which the bank next becomes idle. */
    Cycle busyUntil() const { return busyUntil_; }

    /** Total cycles of service performed (for utilization). */
    u64 busyCycles() const { return busyCycles_.value(); }

    /** Number of reserve() calls. */
    u64 accesses() const { return accesses_.value(); }

    /** Requester cycles spent queued behind a busy bank. */
    u64 queueCycles() const { return queueCycles_.value(); }

    // Open-row geometry, shared with the sampled-mode bank shadow
    // (MemSystem::sampReserve) so both models burst identically.
    static constexpr PhysAddr kRowBytes = 1024; ///< open-row granularity
    static constexpr Cycle kRowOpenWindow = 8;  ///< idle cycles row stays open

  private:

    const ChipConfig *cfg_ = nullptr;
    Cycle busyUntil_ = 0;
    PhysAddr lastRow_ = ~PhysAddr(0);
    PhysAddr nextBlockAddr_ = ~PhysAddr(0);

    Counter accesses_;
    Counter busyCycles_;
    Counter bursts_;
    Counter queueCycles_; ///< requester cycles spent waiting for the bank
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_MEMBANK_H
