#include "arch/memsys.h"

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

void
MemSystem::init(const ChipConfig &cfg, StatGroup *stats)
{
    cfg_ = &cfg;
    caches_.resize(cfg.numCaches());
    banks_.resize(cfg.numBanks);
    availBanks_.clear();
    for (CacheId id = 0; id < cfg.numCaches(); ++id)
        caches_[id].init(id, cfg, stats);
    for (BankId id = 0; id < cfg.numBanks; ++id) {
        banks_[id].init(id, cfg, stats);
        availBanks_.push_back(id);
    }
    cacheMask_ = cfg.numCaches() >= 32 ? ~0u
                                       : (1u << cfg.numCaches()) - 1;
    if (stats) {
        stats->addCounter("mem.loads", &loads_);
        stats->addCounter("mem.stores", &stores_);
        stats->addCounter("mem.atomics", &atomics_);
        stats->addCounter("mem.localHits", &localHits_);
        stats->addCounter("mem.localMisses", &localMisses_);
        stats->addCounter("mem.remoteHits", &remoteHits_);
        stats->addCounter("mem.remoteMisses", &remoteMisses_);
        stats->addCounter("mem.scratchOps", &scratchOps_);
        stats->addHistogram("mem.loadLatency", &loadLatency_);
    }
}

u32
MemSystem::availableMemBytes() const
{
    return u32(availBanks_.size()) * cfg_->bankBytes;
}

MemSystem::BankRoute
MemSystem::route(PhysAddr addr)
{
    // Line-granularity interleave over the operational banks; the fault
    // remap keeps the visible address space contiguous.
    const u32 lineBytes = cfg_->dcacheLineBytes;
    const u32 numAvail = u32(availBanks_.size());
    const u32 lineIdx = addr / lineBytes;
    const BankId bank = availBanks_[lineIdx % numAvail];
    const PhysAddr bankAddr =
        (lineIdx / numAvail) * lineBytes + (addr & (lineBytes - 1));
    return BankRoute{&banks_[bank], bankAddr};
}

BankGrant
MemSystem::fetchLine(Cycle req, PhysAddr lineAddr, u32 blocks)
{
    BankRoute r = route(lineAddr);
    return r.bank->reserve(req, blocks, r.bankAddr);
}

void
MemSystem::postWrite(Cycle when, PhysAddr lineAddr, u32 blocks)
{
    if (blocks == 0)
        return;
    BankRoute r = route(lineAddr);
    r.bank->reserve(when, blocks, r.bankAddr);
}

CacheId
MemSystem::routeCache(Addr ea, ThreadId tid) const
{
    const InterestGroup ig = igDecode(igField(ea));
    switch (ig.cls) {
      case IgClass::Own:
        return localCacheOf(tid);
      case IgClass::Scratch:
        return ig.index & (cfg_->numCaches() - 1);
      default: {
        const PhysAddr lineAddr =
            igPhys(ea) / cfg_->dcacheLineBytes * cfg_->dcacheLineBytes;
        return igSelectCache(ig, lineAddr, cfg_->numCaches(), cacheMask_);
      }
    }
}

MemTiming
MemSystem::access(Cycle now, ThreadId tid, Addr ea, u8 bytes, MemKind kind)
{
    const InterestGroup ig = igDecode(igField(ea));
    const PhysAddr pa = igPhys(ea);
    const bool scratch = ig.cls == IgClass::Scratch;

    if (bytes == 0 || bytes > 8 || !isPow2(bytes))
        panic("memory access of %u bytes", bytes);
    if (pa % bytes != 0)
        fatal("misaligned %u-byte access at 0x%08x by thread %u", bytes,
              ea, tid);
    if (!scratch && pa + bytes > availableMemBytes())
        fatal("physical address 0x%06x beyond available memory (%u KB) "
              "— thread %u", pa, availableMemBytes() / 1024, tid);

    const CacheId target = routeCache(ea, tid);
    const CacheId local = localCacheOf(tid);
    const bool remote = target != local;

    CacheAccess req;
    req.addr = pa;
    req.bytes = bytes;
    req.store = kind == MemKind::Store || kind == MemKind::Atomic;
    req.atomic = kind == MemKind::Atomic;
    req.scratch = scratch;
    req.arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);

    CacheResult res = caches_[target].access(req, *this);

    Cycle ready = res.ready;
    if (remote) {
        ready += cfg_->lat.remoteRespHop;
        if (!res.hit)
            ready += cfg_->lat.remoteMissExtra;
    }
    if (kind == MemKind::Atomic)
        ready += cfg_->lat.atomicExtra;

    switch (kind) {
      case MemKind::Load:
      case MemKind::Prefetch:
        ++loads_;
        loadLatency_.sample(ready - now);
        break;
      case MemKind::Store:
        ++stores_;
        break;
      case MemKind::Atomic:
        ++atomics_;
        break;
    }
    if (scratch) {
        ++scratchOps_;
    } else if (res.hit) {
        remote ? ++remoteHits_ : ++localHits_;
    } else {
        remote ? ++remoteMisses_ : ++localMisses_;
    }

    return MemTiming{ready, target, remote, res.hit};
}

Cycle
MemSystem::flush(Cycle now, ThreadId tid, Addr ea)
{
    const CacheId target = routeCache(ea, tid);
    const bool remote = target != localCacheOf(tid);
    const Cycle arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);
    Cycle done = caches_[target].flushLine(igPhys(ea), arrive, *this);
    return done + (remote ? cfg_->lat.remoteRespHop : 0);
}

Cycle
MemSystem::invalidate(Cycle now, ThreadId tid, Addr ea)
{
    const CacheId target = routeCache(ea, tid);
    const bool remote = target != localCacheOf(tid);
    const Cycle arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);
    Cycle done = caches_[target].invalidateLine(igPhys(ea), arrive);
    return done + (remote ? cfg_->lat.remoteRespHop : 0);
}

void
MemSystem::failBank(BankId id)
{
    if (id >= cfg_->numBanks)
        fatal("failBank: no bank %u", id);
    std::erase(availBanks_, id);
    if (availBanks_.empty())
        fatal("failBank: all banks failed");
}

void
MemSystem::disableCache(CacheId id)
{
    if (id >= cfg_->numCaches())
        fatal("disableCache: no cache %u", id);
    cacheMask_ &= ~(1u << id);
    if (cacheMask_ == 0)
        fatal("disableCache: all caches disabled");
}

} // namespace cyclops::arch
