#include "arch/memsys.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

void
MemSystem::init(const ChipConfig &cfg, StatGroup *stats, Tracer *tracer)
{
    cfg_ = &cfg;
    tracer_ = tracer;
    caches_.resize(cfg.numCaches());
    banks_.resize(cfg.numBanks);
    availBanks_.clear();
    for (CacheId id = 0; id < cfg.numCaches(); ++id)
        caches_[id].init(id, cfg, stats);
    for (BankId id = 0; id < cfg.numBanks; ++id) {
        banks_[id].init(id, cfg, stats);
        availBanks_.push_back(id);
    }
    cacheMask_ = cfg.numCaches() >= 32 ? ~0u
                                       : (1u << cfg.numCaches()) - 1;
    sampPort_.assign(cfg.numCaches(), 0);
    sampBank_.assign(cfg.numBanks, SampBank{});
    lineShift_ = log2i(cfg.dcacheLineBytes);
    updateBankGeometry();
    rebuildRouteLut();
    if (stats) {
        stats->addCounter("mem.loads", &loads_);
        stats->addCounter("mem.stores", &stores_);
        stats->addCounter("mem.atomics", &atomics_);
        stats->addCounter("mem.localHits", &localHits_);
        stats->addCounter("mem.localMisses", &localMisses_);
        stats->addCounter("mem.remoteHits", &remoteHits_);
        stats->addCounter("mem.remoteMisses", &remoteMisses_);
        stats->addCounter("mem.scratchOps", &scratchOps_);
        stats->addHistogram("mem.loadLatency", &loadLatency_);
    }
}

void
MemSystem::rebuildRouteLut()
{
    for (u32 field = 0; field < 256; ++field) {
        RouteEntry &entry = routeLut_[field];
        const InterestGroup ig = igDecode(u8(field));
        entry.cls = ig.cls;
        entry.index = ig.index;
        if (ig.cls == IgClass::Own || ig.cls == IgClass::Scratch) {
            entry.memberCount = 0;
            continue;
        }
        entry.memberCount = u8(igGroupMembers(ig, cfg_->numCaches(),
                                              cacheMask_, entry.members));
    }

    // Own-class references of a TU whose local cache is dead are served
    // by the next alive cache (scanning upward with wrap-around):
    // locality is lost, but the address space stays fully usable on a
    // degraded chip.
    ownRemap_.assign(cfg_->numCaches(), 0);
    for (CacheId c = 0; c < cfg_->numCaches(); ++c) {
        CacheId target = c;
        for (u32 i = 0; i < cfg_->numCaches(); ++i) {
            const CacheId cand = (c + i) % cfg_->numCaches();
            if (cacheEnabled(cand)) {
                target = cand;
                break;
            }
        }
        ownRemap_[c] = target;
    }
}

void
MemSystem::updateBankGeometry()
{
    const u32 numAvail = u32(availBanks_.size());
    banksPow2_ = isPow2(numAvail);
    if (banksPow2_) {
        bankShift_ = log2i(numAvail);
        bankMask_ = numAvail - 1;
    }
}

u32
MemSystem::availableMemBytes() const
{
    return u32(availBanks_.size()) * cfg_->bankBytes;
}

MemSystem::BankRoute
MemSystem::route(PhysAddr addr)
{
    // Line-granularity interleave over the operational banks; the fault
    // remap keeps the visible address space contiguous. With all banks
    // (or any power-of-two subset) operational the div/mod reduces to
    // shift/mask.
    const u32 lineIdx = addr >> lineShift_;
    const u32 lineOff = addr & (cfg_->dcacheLineBytes - 1);
    u32 slot, turn;
    if (banksPow2_) {
        slot = lineIdx & bankMask_;
        turn = lineIdx >> bankShift_;
    } else {
        const u32 numAvail = u32(availBanks_.size());
        slot = lineIdx % numAvail;
        turn = lineIdx / numAvail;
    }
    const BankId bank = availBanks_[slot];
    const PhysAddr bankAddr = (turn << lineShift_) + lineOff;
    return BankRoute{&banks_[bank], bankAddr};
}

std::pair<BankId, PhysAddr>
MemSystem::routeInfo(PhysAddr addr) const
{
    BankRoute r = const_cast<MemSystem *>(this)->route(addr);
    return {BankId(r.bank - banks_.data()), r.bankAddr};
}

void
MemSystem::enableHeatmap()
{
    heatOn_ = true;
    heatAccess_.assign(size_t(cfg_->numCaches()) * cfg_->numBanks, 0);
    heatConflict_.assign(size_t(cfg_->numCaches()) * cfg_->numBanks, 0);
}

void
MemSystem::noteBank(CacheId requester, const BankRoute &r, Cycle req,
                    const BankGrant &grant)
{
    const BankId bank = BankId(r.bank - banks_.data());
    const size_t idx = size_t(requester) * cfg_->numBanks + bank;
    ++heatAccess_[idx];
    if (grant.start > req)
        ++heatConflict_[idx];
}

BankGrant
MemSystem::fetchLine(Cycle req, PhysAddr lineAddr, u32 blocks,
                     CacheId requester)
{
    BankRoute r = route(lineAddr);
    BankGrant grant = r.bank->reserve(req, blocks, r.bankAddr);
    if (heatOn_)
        noteBank(requester, r, req, grant);
    return grant;
}

void
MemSystem::postWrite(Cycle when, PhysAddr lineAddr, u32 blocks,
                     CacheId requester)
{
    if (blocks == 0)
        return;
    BankRoute r = route(lineAddr);
    BankGrant grant = r.bank->reserve(when, blocks, r.bankAddr);
    if (heatOn_)
        noteBank(requester, r, when, grant);
}

CacheId
MemSystem::routeCacheEntry(const RouteEntry &entry, Addr ea,
                           ThreadId tid) const
{
    switch (entry.cls) {
      case IgClass::Own:
        return ownRemap_[localCacheOf(tid)];
      case IgClass::Scratch:
        return entry.index & (cfg_->numCaches() - 1);
      default: {
        if (entry.memberCount == 1)
            return entry.members[0];
        // Deterministic address scrambling over the precomputed member
        // set — identical to igSelectCache() on the same mask.
        const PhysAddr lineAddr = igPhys(ea) & ~PhysAddr(
            cfg_->dcacheLineBytes - 1);
        return entry.members[scramble32(lineAddr) % entry.memberCount];
      }
    }
}

CacheId
MemSystem::routeCache(Addr ea, ThreadId tid) const
{
    return routeCacheEntry(routeLut_[igField(ea)], ea, tid);
}

MemTiming
MemSystem::access(Cycle now, ThreadId tid, Addr ea, u8 bytes, MemKind kind)
{
    // One LUT lookup replaces the per-access field decode here and the
    // second decode that routeCache() used to repeat.
    const RouteEntry &entry = routeLut_[igField(ea)];
    const PhysAddr pa = igPhys(ea);
    const bool scratch = entry.cls == IgClass::Scratch;

    if (bytes == 0 || bytes > 8 || !isPow2(bytes))
        panic("memory access of %u bytes", bytes);
    if (pa % bytes != 0)
        guestCheck("misaligned %u-byte access at 0x%08x by thread %u",
                   bytes, ea, tid);
    if (!scratch && pa + bytes > availableMemBytes())
        guestCrash("physical address 0x%06x beyond available memory "
                   "(%u KB) — thread %u", pa,
                   availableMemBytes() / 1024, tid);
    if (scratch) {
        const CacheId sc = entry.index & (cfg_->numCaches() - 1);
        if (!cacheEnabled(sc))
            guestCheck("scratchpad access to disabled cache %u "
                       "(thread %u)", sc, tid);
    }

    const CacheId target = routeCacheEntry(entry, ea, tid);
    const CacheId local = localCacheOf(tid);
    const bool remote = target != local;

    CacheAccess req;
    req.addr = pa;
    req.bytes = bytes;
    req.store = kind == MemKind::Store || kind == MemKind::Atomic;
    req.atomic = kind == MemKind::Atomic;
    req.scratch = scratch;
    req.arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);

    CacheResult res = caches_[target].access(req, *this);

    Cycle ready = res.ready;
    if (remote) {
        ready += cfg_->lat.remoteRespHop;
        if (!res.hit)
            ready += cfg_->lat.remoteMissExtra;
    }
    if (kind == MemKind::Atomic)
        ready += cfg_->lat.atomicExtra;

    switch (kind) {
      case MemKind::Load:
      case MemKind::Prefetch:
        ++loads_;
        loadLatency_.sample(ready - now);
        break;
      case MemKind::Store:
        ++stores_;
        break;
      case MemKind::Atomic:
        ++atomics_;
        break;
    }
    if (scratch) {
        ++scratchOps_;
    } else if (res.hit) {
        remote ? ++remoteHits_ : ++localHits_;
    } else {
        remote ? ++remoteMisses_ : ++localMisses_;
    }
    if (heatOn_) {
        const u32 cls = static_cast<u8>(entry.cls);
        ++igAccess_[cls];
        if (!scratch)
            res.hit ? ++igHit_[cls] : ++igMiss_[cls];
    }
    if (tracer_ && tracer_->enabled()) {
        static const char *const kKindNames[] = {"load", "store", "atomic",
                                                 "prefetch"};
        tracer_->complete(TraceCat::Mem, tid,
                          kKindNames[static_cast<u8>(kind)], now,
                          ready - now, ea);
        if (!res.hit && !scratch)
            tracer_->complete(TraceCat::Cache, tid,
                              remote ? "remoteMiss" : "localMiss", now,
                              ready - now, ea);
    }

    return MemTiming{ready, target, remote, res.hit, res.queueWait};
}

BankGrant
MemSystem::sampReserve(Cycle req, u32 blocks, PhysAddr lineAddr,
                       CacheId requester)
{
    // MemBank::reserve, replayed against the virtual shadow: same
    // queueing, occupancy and open-row burst rules, but the real bank
    // keeps its own state for the next detailed window.
    const auto [bankId, bankAddr] = routeInfo(lineAddr);
    SampBank &bank = sampBank_[bankId];

    const Cycle start = std::max(req, bank.free);
    const PhysAddr row = bankAddr & ~(MemBank::kRowBytes - 1);
    const bool rowHit = cfg_->burstEnabled && row == bank.lastRow &&
                        bankAddr == bank.nextBlockAddr &&
                        start <= bank.free + MemBank::kRowOpenWindow;

    const u32 occupancy = blocks * cfg_->lat.bankBlockCycles;
    const u32 transfer =
        rowHit ? blocks * cfg_->lat.bankBurstBlockCycles : occupancy;

    bank.free = start + occupancy;
    bank.lastRow = row;
    bank.nextBlockAddr = bankAddr + blocks * cfg_->memBlockBytes;

    if (heatOn_) {
        const size_t idx = size_t(requester) * cfg_->numBanks + bankId;
        ++heatAccess_[idx];
        if (start > req)
            ++heatConflict_[idx];
    }
    return BankGrant{start, transfer};
}

Cycle
MemSystem::uncontendedLat(MemKind kind, bool remote, bool hit) const
{
    const LatencyConfig &lat = cfg_->lat;
    // Allocate-no-fetch store misses complete at hit latency.
    if (kind == MemKind::Store && !hit && cfg_->storeAllocNoFetch)
        hit = true;
    Cycle base;
    if (remote)
        base = hit ? lat.memRemoteHit : lat.memRemoteMiss;
    else
        base = hit ? lat.memLocalHit : lat.memLocalMiss;
    if (kind == MemKind::Atomic)
        base += lat.atomicExtra;
    return base;
}

MemTiming
MemSystem::accessSampled(Cycle now, ThreadId tid, Addr ea, u8 bytes,
                         MemKind kind)
{
    // Routing, validation, counters and trace events mirror access();
    // only the timing model differs (virtual port and bank clocks
    // instead of the real port/MSHR/bank state — see the header).
    const RouteEntry &entry = routeLut_[igField(ea)];
    const PhysAddr pa = igPhys(ea);
    const bool scratch = entry.cls == IgClass::Scratch;

    if (bytes == 0 || bytes > 8 || !isPow2(bytes))
        panic("memory access of %u bytes", bytes);
    if (pa % bytes != 0)
        guestCheck("misaligned %u-byte access at 0x%08x by thread %u",
                   bytes, ea, tid);
    if (!scratch && pa + bytes > availableMemBytes())
        guestCrash("physical address 0x%06x beyond available memory "
                   "(%u KB) — thread %u", pa,
                   availableMemBytes() / 1024, tid);
    if (scratch) {
        const CacheId sc = entry.index & (cfg_->numCaches() - 1);
        if (!cacheEnabled(sc))
            guestCheck("scratchpad access to disabled cache %u "
                       "(thread %u)", sc, tid);
    }

    const CacheId target = routeCacheEntry(entry, ea, tid);
    const CacheId local = localCacheOf(tid);
    const bool remote = target != local;

    bool hit = true;
    u32 fillBlocks = 0;
    u32 wbBlocks = 0;
    PhysAddr wbLine = 0;
    Cycle fillWait = 0;
    if (!scratch)
        hit = caches_[target].warmAccess(
            pa, bytes, kind == MemKind::Store || kind == MemKind::Atomic,
            kind == MemKind::Atomic, now, &fillBlocks, &wbBlocks,
            &wbLine, &fillWait);

    // Port regulator: the target cache still moves one access per
    // cycle, so hot-spot layouts (Own/One-group traffic focused on a
    // few caches) stay port-limited exactly as in detailed mode.
    const Cycle arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);
    Cycle &port = sampPort_[target];
    const Cycle grant = std::max(arrive, port);
    port = grant + 1;

    if (wbBlocks != 0) {
        // The victim's writeback is posted before the fill request, as
        // in detailed mode — victim and fill share a set and therefore
        // usually a bank, so the fill queues behind it.
        sampReserve(grant, wbBlocks, wbLine, target);
    }
    Cycle ready;
    if (fillBlocks == 0) {
        // Hit, scratch window, or allocate-no-fetch store; a hit on a
        // line mid-fill merges with the fill (detailed MSHR merge).
        ready = std::max(grant + cfg_->lat.memLocalHit, fillWait);
    } else {
        // Bank regulator: the fill queues on the virtual shadow of the
        // bank the line actually lives in, so per-bank hot spots, the
        // aggregate bandwidth ceiling and streaming bursts all bind as
        // in detailed mode.
        const PhysAddr lineAddr =
            pa & ~PhysAddr(cfg_->dcacheLineBytes - 1);
        const Cycle bankReq = grant + cfg_->lat.missToBank;
        const BankGrant bg =
            sampReserve(bankReq, fillBlocks, lineAddr, target);
        const Cycle fillDone = bg.start + bg.transferCycles;
        ready = fillDone + cfg_->lat.bankToCache;
        // Later accesses to this line merge against the fill.
        caches_[target].setWarmFillDone(pa, fillDone);
    }
    if (remote) {
        ready += cfg_->lat.remoteRespHop;
        if (!hit)
            ready += cfg_->lat.remoteMissExtra;
    }
    if (kind == MemKind::Atomic)
        ready += cfg_->lat.atomicExtra;

    const Cycle span = ready - now;
    const Cycle uncont = uncontendedLat(kind, remote, hit);
    const u64 queueWait = span > uncont ? span - uncont : 0;

    switch (kind) {
      case MemKind::Load:
      case MemKind::Prefetch:
        ++loads_;
        loadLatency_.sample(span);
        break;
      case MemKind::Store:
        ++stores_;
        break;
      case MemKind::Atomic:
        ++atomics_;
        break;
    }
    if (scratch) {
        ++scratchOps_;
    } else if (hit) {
        remote ? ++remoteHits_ : ++localHits_;
    } else {
        remote ? ++remoteMisses_ : ++localMisses_;
    }
    if (heatOn_) {
        const u32 cls = static_cast<u8>(entry.cls);
        ++igAccess_[cls];
        if (!scratch)
            hit ? ++igHit_[cls] : ++igMiss_[cls];
    }

    if (tracer_ && tracer_->enabled()) {
        static const char *const kKindNames[] = {"load", "store", "atomic",
                                                 "prefetch"};
        tracer_->complete(TraceCat::Mem, tid,
                          kKindNames[static_cast<u8>(kind)], now, span, ea);
        if (!hit && !scratch)
            tracer_->complete(TraceCat::Cache, tid,
                              remote ? "remoteMiss" : "localMiss", now,
                              span, ea);
    }

    return MemTiming{ready, target, remote, hit, queueWait};
}

Cycle
MemSystem::flush(Cycle now, ThreadId tid, Addr ea)
{
    const CacheId target = routeCache(ea, tid);
    const bool remote = target != localCacheOf(tid);
    const Cycle arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);
    Cycle done = caches_[target].flushLine(igPhys(ea), arrive, *this);
    return done + (remote ? cfg_->lat.remoteRespHop : 0);
}

Cycle
MemSystem::invalidate(Cycle now, ThreadId tid, Addr ea)
{
    const CacheId target = routeCache(ea, tid);
    const bool remote = target != localCacheOf(tid);
    const Cycle arrive = now + (remote ? cfg_->lat.remoteReqHop : 0);
    Cycle done = caches_[target].invalidateLine(igPhys(ea), arrive);
    return done + (remote ? cfg_->lat.remoteRespHop : 0);
}

void
MemSystem::failBank(BankId id)
{
    if (id >= cfg_->numBanks)
        fatal("failBank: no bank %u", id);
    std::erase(availBanks_, id);
    if (availBanks_.empty())
        fatal("failBank: all banks failed");
    updateBankGeometry();
}

void
MemSystem::disableCache(CacheId id)
{
    if (id >= cfg_->numCaches())
        fatal("disableCache: no cache %u", id);
    cacheMask_ &= ~(1u << id);
    if (cacheMask_ == 0)
        fatal("disableCache: all caches disabled");
    rebuildRouteLut();
}

} // namespace cyclops::arch
