/**
 * @file
 * One 16 KB quad data cache.
 *
 * Timing-directory design: the cache tracks tags, per-byte valid/dirty
 * masks and timing; functional data lives in the chip's flat memory
 * image (see DESIGN.md on the non-coherence substitution).
 *
 * Features from the paper:
 *  - up to 8-way associativity (configurable), 64-byte lines, LRU;
 *  - a single port moving up to 8 bytes per cycle (32 caches => 128 GB/s
 *    peak aggregate);
 *  - way-partitioning at 2 KB granularity: `scratchWays` ways act as
 *    directly addressable fast memory (interest-group class Scratch);
 *  - MSHR-style merging of requests to a line whose fill is in flight;
 *  - write-allocate-no-fetch store misses with per-byte valid masks
 *    (see DESIGN.md), which lets streaming stores run at bank bandwidth.
 */

#ifndef CYCLOPS_ARCH_DCACHE_H
#define CYCLOPS_ARCH_DCACHE_H

#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace cyclops::arch
{

class MemSystem;

/** One data-cache access request, already routed to this cache. */
struct CacheAccess
{
    PhysAddr addr = 0;   ///< physical byte address
    u8 bytes = 0;        ///< naturally aligned size (1..8)
    bool store = false;
    bool atomic = false;
    bool scratch = false; ///< scratchpad-window access (no tags)
    Cycle arrive = 0;    ///< cycle the request reaches this cache
};

/** Completion information at the cache (before response hops). */
struct CacheResult
{
    Cycle ready = 0;  ///< data available at this cache
    bool hit = false; ///< tag hit (scratch accesses always hit)
    u64 queueWait = 0; ///< queueing cycles: port + MSHR + bank queue
};

/** Timing model of one quad data cache. */
class DCache
{
  public:
    DCache() = default;

    /** Configure geometry and register statistics. */
    void init(CacheId id, const ChipConfig &cfg, StatGroup *stats);

    /** Perform one access; @p fabric provides bank service for fills. */
    CacheResult access(const CacheAccess &req, MemSystem &fabric);

    /**
     * Functional warming for sampled fast-forward windows: updates
     * tags, LRU and per-byte masks exactly like access() would, but
     * touches no timing state (port, MSHRs, banks) and posts no
     * writebacks. Returns the hit outcome; @p fillBlocksOut and
     * @p wbBlocksOut (never null) receive the 32-byte blocks of bank
     * traffic the access implies — the line fill of a fetching miss,
     * and the dirty blocks of the displaced victim, whose line address
     * lands in @p wbLineOut — for the fabric's bank regulators.
     * @p fillWaitOut receives the in-flight fill completion a hit must
     * wait for (0 otherwise), mirroring the detailed MSHR merge; on a
     * fetching miss the caller computes the fill time and posts it
     * back via setWarmFillDone(), so later accesses to the line merge
     * against it exactly as in detailed mode.
     */
    bool warmAccess(PhysAddr addr, u8 bytes, bool store, bool atomic,
                    Cycle now, u32 *fillBlocksOut, u32 *wbBlocksOut,
                    PhysAddr *wbLineOut, Cycle *fillWaitOut);

    /** Record the virtual fill time of the line warmAccess installed. */
    void setWarmFillDone(PhysAddr addr, Cycle done);

    /** dcbf: write back (if dirty) and invalidate the line, if present. */
    Cycle flushLine(PhysAddr addr, Cycle arrive, MemSystem &fabric);

    /** dcbi: invalidate the line without writing it back, if present. */
    Cycle invalidateLine(PhysAddr addr, Cycle arrive);

    /** True if the line holding @p addr is resident (tests/statistics). */
    bool probe(PhysAddr addr) const;

    /** Number of resident lines whose tag matches @p addr's line. */
    u32 scratchBytes() const { return scratchBytes_; }

    /** Total line slots (sets x ways), for fault-injection targeting. */
    u32 numLines() const { return u32(lines_.size()); }

    /**
     * Transient fault in line slot @p idx: drop it from the directory
     * (valid/dirty cleared) as if its tag array glitched. Returns true
     * if the slot held a valid line. Timing-directory design means
     * functional data is unaffected — this perturbs timing only, which
     * fault campaigns must classify as masked.
     */
    bool faultLine(u32 idx);

    /** First and one-past-last way usable as cache (fault model). */
    u32 waysBegin() const { return waysBegin_; }
    u32 waysEnd() const { return waysEnd_; }

  private:
    struct Line
    {
        u32 tag = 0;
        bool valid = false;
        u64 validMask = 0; ///< bit per byte: contents present
        u64 dirtyMask = 0; ///< bit per byte: needs writeback
        Cycle fillDone = 0;
        Cycle lastUse = 0;
    };

    Line *lookup(PhysAddr addr);
    const Line *lookup(PhysAddr addr) const;
    Line &victim(u32 set, Cycle now);
    void writeback(Line &line, u32 set, Cycle when, MemSystem &fabric);
    PhysAddr lineAddrOf(const Line &line, u32 set) const;

    /** Reserve the single cache port; returns the grant cycle. */
    Cycle grantPort(Cycle arrive);

    CacheId id_ = 0;
    const ChipConfig *cfg_ = nullptr;
    u32 numSets_ = 0;
    u32 waysBegin_ = 0; ///< first way usable as cache (after scratch ways)
    u32 waysEnd_ = 0;   ///< one past the last live way (reduced-way faults)
    u32 scratchBytes_ = 0;
    u64 fullMask_ = 0;  ///< valid mask covering the whole line
    std::vector<Line> lines_; ///< sets * assoc, way-major within a set

    Cycle portFree_ = 0;
    std::vector<Cycle> fills_; ///< MSHR: completion times of live fills

    Counter hits_;
    Counter misses_;
    Counter storeAllocs_;   ///< allocate-no-fetch store misses
    Counter loadMerges_;    ///< accesses satisfied by an in-flight fill
    Counter writebacks_;
    Counter wbBlocks_;      ///< 32-byte blocks written back
    Counter portWaitCycles_;
    Counter mshrFullWaits_;
    Counter scratchAccesses_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_DCACHE_H
