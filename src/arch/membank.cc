#include "arch/membank.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

void
MemBank::init(BankId id, const ChipConfig &cfg, StatGroup *stats)
{
    cfg_ = &cfg;
    if (stats) {
        const std::string prefix = strprintf("bank%u.", id);
        stats->addCounter(prefix + "accesses", &accesses_);
        stats->addCounter(prefix + "busyCycles", &busyCycles_);
        stats->addCounter(prefix + "bursts", &bursts_);
        stats->addCounter(prefix + "queueCycles", &queueCycles_);
    }
}

BankGrant
MemBank::reserve(Cycle reqTime, u32 blocks, PhysAddr bankAddr)
{
    if (!cfg_)
        panic("MemBank used before init()");
    if (blocks == 0)
        panic("MemBank::reserve of zero blocks");

    const Cycle start = std::max(reqTime, busyUntil_);
    queueCycles_ += start - reqTime;

    const PhysAddr row = PhysAddr(roundDown(bankAddr, kRowBytes));
    const bool rowHit = cfg_->burstEnabled && row == lastRow_ &&
                        bankAddr == nextBlockAddr_ &&
                        start <= busyUntil_ + kRowOpenWindow;

    const u32 occupancy = blocks * cfg_->lat.bankBlockCycles;
    u32 transfer = occupancy;
    if (rowHit) {
        // Burst transfer mode: the row is already open and the access
        // continues sequentially, so the data streams out earlier. The
        // bank is still occupied for the full service time.
        transfer = blocks * cfg_->lat.bankBurstBlockCycles;
        ++bursts_;
    }

    busyUntil_ = start + occupancy;
    busyCycles_ += occupancy;
    ++accesses_;
    lastRow_ = row;
    nextBlockAddr_ = bankAddr + blocks * cfg_->memBlockBytes;

    return BankGrant{start, transfer};
}

} // namespace cyclops::arch
