/**
 * @file
 * The Cyclops chip: the top-level simulation object.
 *
 * Owns the flat functional memory image, the timing fabric (caches,
 * banks, FPUs, I-caches, barrier network), the off-chip DMA memory,
 * and the cycle engine that drives up to 128 execution units. The two
 * frontends (ISA thread units and execution-driven guest units) plug
 * in through the Unit interface.
 */

#ifndef CYCLOPS_ARCH_CHIP_H
#define CYCLOPS_ARCH_CHIP_H

#include <array>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "arch/barrier_spr.h"
#include "arch/fpu.h"
#include "arch/icache.h"
#include "arch/interest_group.h"
#include "arch/memsys.h"
#include "arch/offchip.h"
#include "arch/profiler.h"
#include "arch/unit.h"
#include "common/config.h"
#include "common/hostobs.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/trace.h"
#include "isa/encoding.h"
#include "isa/isa.h"
#include "isa/program.h"

namespace cyclops::arch
{

/** Why Chip::run returned. */
enum class RunExitReason : u8 {
    AllHalted,  ///< every activated unit executed its halt
    CycleLimit, ///< maxCycles elapsed
    Watchdog,   ///< no unit made forward progress for watchdogCycles
    Signal,     ///< requestRunStop() was called (SIGINT/SIGTERM/alarm)
    FabricFailure, ///< remote access abandoned: fabric retries exhausted
};

/** Display name of @p reason ("allHalted", "watchdog", ...). */
const char *runExitName(RunExitReason reason);

/**
 * Result of Chip::run. Implicitly comparable against RunExitReason so
 * the historical `run() == RunExit::AllHalted` idiom still compiles:
 * RunExit::AllHalted and friends are static constants of the reason
 * enum, and operator== compares the reason field.
 */
struct RunExit
{
    static constexpr RunExitReason AllHalted = RunExitReason::AllHalted;
    static constexpr RunExitReason CycleLimit = RunExitReason::CycleLimit;
    static constexpr RunExitReason Watchdog = RunExitReason::Watchdog;
    static constexpr RunExitReason Signal = RunExitReason::Signal;
    static constexpr RunExitReason FabricFailure =
        RunExitReason::FabricFailure;

    RunExitReason reason = RunExitReason::AllHalted;
    Cycle at = 0;        ///< chip time when run() returned
    int signal = 0;      ///< host signal number for Reason::Signal
    std::string diagnostic; ///< per-TU state dump for Reason::Watchdog

    RunExit() = default;
    RunExit(RunExitReason r, Cycle when) : reason(r), at(when) {}

    friend bool
    operator==(const RunExit &e, RunExitReason r)
    {
        return e.reason == r;
    }
    friend bool
    operator==(RunExitReason r, const RunExit &e)
    {
        return e.reason == r;
    }
    friend bool
    operator!=(const RunExit &e, RunExitReason r)
    {
        return e.reason != r;
    }
    friend bool
    operator!=(RunExitReason r, const RunExit &e)
    {
        return e.reason != r;
    }
};

/**
 * Ask every running Chip on this host to stop at its next service
 * point (~1 K cycles); run() then returns RunExit::Signal carrying
 * @p sig. Async-signal-safe — call it from SIGINT/SIGTERM handlers.
 */
void requestRunStop(int sig);

/** Clear a pending stop request (call before reusing the process). */
void clearRunStop();

/** True if a stop has been requested and not yet cleared. */
bool runStopRequested();

/**
 * Hook a multi-chip System (arch/system.h) installs on every member
 * Chip to service remote-window accesses. The split mirrors the local
 * path exactly: the functional value moves through remoteRead/
 * remoteWrite (called from Chip::memRead/memWrite), and the timing
 * query that follows goes through remoteAccess (called from
 * Chip::dmem). A store is staged by remoteWrite and committed by the
 * matching remoteAccess, which injects it into the fabric.
 */
class RemotePort
{
  public:
    virtual ~RemotePort() = default;

    /** Functional read: snapshot of the target window at issue time. */
    virtual u64 remoteRead(u32 srcChip, ThreadId tid, Addr ea,
                           u8 bytes) = 0;

    /** Stage a remote store (delivered at a fabric epoch boundary). */
    virtual void remoteWrite(u32 srcChip, ThreadId tid, Addr ea,
                             u8 bytes, u64 value) = 0;

    /** Fabric timing of the access; commits a staged store. */
    virtual MemTiming remoteAccess(u32 srcChip, ThreadId tid, Cycle now,
                                   Addr ea, u8 bytes, MemKind kind) = 0;
};

/** One Cyclops chip. */
class Chip
{
  public:
    explicit Chip(const ChipConfig &cfg = ChipConfig{});

    const ChipConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }
    Cycle now() const { return now_; }

    // --- Observability --------------------------------------------------------

    /** Per-chip event tracer (configured from ChipConfig::obs). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** Epoch sampler of all registered scalar statistics. */
    const EpochSampler &sampler() const { return sampler_; }

    /** PC-sampling profiler (enabled by ChipConfig::obs.profInterval). */
    const Profiler &profiler() const { return profiler_; }

    /** Host-simulator telemetry (enabled by ChipConfig::obs.hostObs). */
    const HostObs &hostObs() const { return hostObs_; }

    /** Value snapshot of the host telemetry (crew waits folded in). */
    HostObsSnapshot hostObsSnapshot() const { return hostObs_.snapshot(); }

    /**
     * Record per-domain guest placement (called by the exec engine
     * after spawning) so host telemetry can relate shard imbalance to
     * how many software threads each worker domain hosts. No-op when
     * host observability is off.
     */
    void
    noteShardOccupancy(const std::vector<u64> &counts)
    {
        hostObs_.setDomainGuests(counts);
    }

    /**
     * Cycle attribution of one TU: every cycle between the unit's
     * first and last activity is charged to exactly one category;
     * the remainder of chip time (before spawn, after halt) is sleep.
     */
    CycleBreakdown attribution(ThreadId tid) const;

    /** Summed attribution over the TUs of quad @p quad. */
    CycleBreakdown quadAttribution(u32 quad) const;

    /** Summed attribution over every TU on the chip. */
    CycleBreakdown chipAttribution() const;

    /**
     * Write the configured observability outputs (trace JSON, stats
     * JSON, series CSV) to ChipConfig::obs paths; no-op when none are
     * set. Call after run().
     */
    void writeObservability();

    // --- Functional memory --------------------------------------------------

    /**
     * Read @p bytes (1..8, naturally aligned) at effective address
     * @p ea on behalf of thread @p tid. Handles scratchpad windows.
     */
    u64 memRead(Addr ea, u8 bytes, ThreadId tid);

    /** Write counterpart of memRead(). */
    void memWrite(Addr ea, u8 bytes, u64 value, ThreadId tid);

    /** Raw access to the physical memory image (loader, tests). */
    void writePhys(PhysAddr addr, const void *data, u32 bytes);
    void readPhys(PhysAddr addr, void *data, u32 bytes) const;

    // --- Multi-chip (arch/system.h) -------------------------------------------

    /**
     * Attach the remote port that services remote-window accesses and
     * assign this chip's identity (the CHIPID/NCHIPS SPRs). Installed
     * by arch::System; standalone chips keep id 0 of 1 and route the
     * whole 24-bit space locally.
     */
    void
    attachRemote(RemotePort *port, u32 chipId, u32 numChips)
    {
        remote_ = port;
        chipId_ = chipId;
        numChips_ = numChips;
    }

    u32 chipId() const { return chipId_; }
    u32 numChips() const { return numChips_; }

    // --- Program loading (ISA frontend) ---------------------------------------

    /**
     * Copy a program image into memory and predecode its text. Only
     * one program may be resident (the paper's kernel is single-user,
     * single-program).
     */
    void loadProgram(const isa::Program &program);

    /** Decoded instruction at @p pc; panics outside the text section. */
    const isa::Instr &decodedAt(PhysAddr pc) const;

    const isa::Program &program() const { return program_; }

    // --- Units and the cycle engine ----------------------------------------

    /** Install the execution unit for hardware thread @p tid. */
    void setUnit(ThreadId tid, std::unique_ptr<Unit> unit);

    Unit *unit(ThreadId tid) { return units_[tid].get(); }
    const Unit *unit(ThreadId tid) const { return units_[tid].get(); }

    /** Begin executing @p tid at cycle max(now, when). */
    void activate(ThreadId tid, Cycle when = 0);

    /**
     * Run until every activated unit halts or @p maxCycles elapse.
     * May be called repeatedly (time continues monotonically).
     */
    RunExit run(Cycle maxCycles = kCycleNever);

    /** Number of activated, not-yet-halted units. */
    u32 liveUnits() const { return liveUnits_; }

    /** Resolved sharded-engine worker count (0 with the serial engine). */
    u32 shardWorkers() const { return shardWorkers_; }

    /**
     * Worker domain owning @p tid under the sharded engine. Domains are
     * contiguous quad-aligned tid ranges, so this is a plain division
     * of the quad split; only meaningful when shardWorkers() > 0.
     */
    u32 shardDomainOf(ThreadId tid) const;

    // --- Shared hardware reachable from units ---------------------------------

    MemSystem &memsys() { return memsys_; }
    BarrierSpr &barrier() { return barrier_; }
    OffChipMemory &offchip() { return offchip_; }
    Fpu &fpuOf(ThreadId tid) { return fpus_[tid / cfg_.threadsPerQuad]; }
    ICache &
    icacheOf(ThreadId tid)
    {
        return icaches_[tid / (cfg_.threadsPerQuad * cfg_.quadsPerICache)];
    }

    /**
     * True while the engine simulates timing in full detail. Always
     * true unless EngineConfig::sampled put the chip in a functional
     * fast-forward window (see DESIGN.md section 14).
     */
    bool timingDetail() const { return detail_; }

    /**
     * One data-memory timing access, routed to the detailed fabric or
     * the sampled fast path depending on the current engine window.
     * Units call this instead of memsys().access() directly.
     */
    MemTiming
    dmem(Cycle now, ThreadId tid, Addr ea, u8 bytes, MemKind kind)
    {
        if (remote_ && isRemoteEa(ea)) [[unlikely]]
            return remoteDmem(now, tid, ea, bytes, kind);
        if (detail_)
            return memsys_.access(now, tid, ea, bytes, kind);
        if (hostObsOn_)
            hostObs_.countWarmAccess();
        return memsys_.accessSampled(now, tid, ea, bytes, kind);
    }

    /** PIB refill counterpart of dmem(): detailed or sampled I-cache. */
    Cycle
    icacheRefill(Cycle now, ThreadId tid, PhysAddr base, u32 *missesOut)
    {
        ICache &ic = icacheOf(tid);
        if (detail_)
            return ic.refill(now, base, memsys_,
                             tid / cfg_.threadsPerQuad, missesOut);
        return ic.refillSampled(now, base, missesOut);
    }

    /** True if decodedAt(pc) would succeed (no-throw probe). */
    bool
    pcDecodable(PhysAddr pc) const
    {
        return pc >= program_.textBase &&
               pc < program_.textBase + program_.textBytes() &&
               pc % 4 == 0;
    }

    /** Value of special purpose register @p spr as read by @p tid. */
    u32 readSpr(ThreadId tid, u32 spr);

    /** Write @p spr; only the barrier SPR is software-writable. */
    void writeSpr(ThreadId tid, u32 spr, u32 value);

    /** Kernel trap entry (console output, thread exit). */
    void trap(ThreadId tid, u32 code, u32 arg);

    /** Console output accumulated by traps. */
    const std::string &console() const { return console_; }
    void clearConsole() { console_.clear(); }

    // --- Fault model (paper section 5) ----------------------------------------

    /** Fail a memory bank: contiguous remap, MEMSZ shrinks. */
    void failBank(BankId id);

    /**
     * Disable a quad (e.g. its FPU broke): its threads must not be
     * used and its cache leaves the interest-group scrambling.
     */
    void disableQuad(u32 quad);

    /** True if the quad is operational. */
    bool quadEnabled(u32 quad) const { return quadEnabled_[quad]; }

    /**
     * True if TU @p tid can execute at all: the TU itself, its quad
     * and its I-cache are alive. A TU with a dead FPU or D-cache is
     * still alive (FP issue or scratch access faults the guest).
     */
    bool tuAlive(ThreadId tid) const { return tuAlive_[tid]; }

    /**
     * True if the kernel should schedule work on @p tid: alive and
     * its quad's FPU works, so any workload runs unmodified.
     */
    bool tuSchedulable(ThreadId tid) const { return tuSchedulable_[tid]; }

    /** True if quad @p quad's FPU is operational. */
    bool fpuEnabled(u32 quad) const { return fpuEnabled_[quad]; }

    // --- Aggregate statistics ----------------------------------------------------

    /** Sum of run cycles over all units. */
    u64 totalRunCycles() const;

    /** Sum of stall cycles over all units. */
    u64 totalStallCycles() const;

    /** Sum of instructions over all units. */
    u64 totalInstructions() const;

  private:
    static constexpr u32 kWheelBits = 10;
    static constexpr u32 kWheelSize = 1u << kWheelBits;
    static constexpr u32 kWheelWords = kWheelSize / 64;

    void schedule(ThreadId tid, Cycle when);
    Cycle nextWheelEvent() const;
    u8 *memPtr(Addr ea, u8 bytes, ThreadId tid);
    MemTiming remoteDmem(Cycle now, ThreadId tid, Addr ea, u8 bytes,
                         MemKind kind);

    void samplePcs();
    void applyFaultMap();
    void recomputeAlive();
    u64 progressSum() const;
    u64 progressSumEngine();
    std::string watchdogDump() const;

    // Sharded engine (see DESIGN.md section 14).
    void setupShardEngine();
    void finishTick(ThreadId tid, Unit *u, Cycle wake);
    void tickSharded(size_t n, size_t start);

    ChipConfig cfg_;
    StatGroup stats_;
    Tracer tracer_;
    EpochSampler sampler_;
    bool sampling_ = false;
    Profiler profiler_;
    bool profiling_ = false;
    Cycle profNext_ = kCycleNever;
    std::vector<u8> active_; ///< activated and not yet halted, per TU

    std::vector<u8> dram_;
    std::vector<std::vector<u8>> scratch_; ///< per-cache scratch storage

    MemSystem memsys_;
    std::vector<Fpu> fpus_;
    std::vector<ICache> icaches_;
    BarrierSpr barrier_;
    OffChipMemory offchip_;

    isa::Program program_;
    std::vector<isa::Instr> decoded_;
    bool programLoaded_ = false;

    std::vector<std::unique_ptr<Unit>> units_;
    std::vector<bool> quadEnabled_;
    std::vector<bool> tuEnabled_;
    std::vector<bool> fpuEnabled_;
    std::vector<bool> icEnabled_;
    std::vector<bool> tuAlive_;
    std::vector<bool> tuSchedulable_;

    // Deadlock watchdog (serviced every kServiceInterval cycles; state
    // persists across run() calls so single-stepping drivers still arm
    // it). lastProgressCycle_ tracks the last service point at which
    // the chip-wide progress-event sum advanced.
    static constexpr Cycle kServiceInterval = 1024;
    Cycle svcNext_ = kServiceInterval;
    u64 lastProgressSum_ = 0;
    Cycle lastProgressCycle_ = 0;

    // Cycle engine: timing wheel + far-future heap. A one-bit-per-slot
    // occupancy bitmap makes the idle fast-forward a countr_zero scan
    // over 16 words instead of a linear walk of up to 1024 slots.
    Cycle now_ = 0;
    u32 liveUnits_ = 0;
    std::vector<std::vector<ThreadId>> wheel_;
    std::array<u64, kWheelWords> wheelBits_{}; ///< slot-occupancy bitmap
    using FarEntry = std::pair<Cycle, ThreadId>;
    std::priority_queue<FarEntry, std::vector<FarEntry>,
                        std::greater<FarEntry>>
        far_;
    u32 inWheel_ = 0;
    std::vector<ThreadId> due_; ///< reusable due-this-cycle buffer

    std::string console_;

    // Host-simulator telemetry (ChipConfig::obs.hostObs). crewTelem_
    // collects spin-wait times inside ShardCrew, so it must be
    // declared before crew_: the crew's worker threads read it until
    // the ShardCrew destructor joins them.
    HostObs hostObs_;
    bool hostObsOn_ = false;
    std::unique_ptr<CrewTelemetry> crewTelem_;

    // Sharded engine state (empty/idle for the serial engine). Domains
    // are contiguous quad-aligned tid ranges; worker w owns tids in
    // [domainBegin_[w], domainBegin_[w+1]).
    std::unique_ptr<ShardCrew> crew_;
    u32 shardWorkers_ = 0;
    std::vector<ThreadId> domainBegin_;
    std::vector<u64> domainProgress_; ///< per-domain watchdog aggregate
    std::vector<ThreadId> canon_;     ///< canonical service order, per cycle
    std::vector<Cycle> wakes_;        ///< phase-A results per canon_ slot
    std::vector<Cycle> quadDeferAt_;  ///< cycle a quad last saw a defer
    bool inShardPhaseA_ = false;      ///< BarrierSpr mutation-guard flag

    // Sampled fast-forward mode (EngineConfig::sampled).
    bool sampledOn_ = false;
    bool detail_ = true;

    // Multi-chip remote-window port (null on standalone chips).
    RemotePort *remote_ = nullptr;
    u32 chipId_ = 0;
    u32 numChips_ = 1;

    Counter cycles_;
    Counter trapsServed_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_CHIP_H
