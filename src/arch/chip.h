/**
 * @file
 * The Cyclops chip: the top-level simulation object.
 *
 * Owns the flat functional memory image, the timing fabric (caches,
 * banks, FPUs, I-caches, barrier network), the off-chip DMA memory,
 * and the cycle engine that drives up to 128 execution units. The two
 * frontends (ISA thread units and execution-driven guest units) plug
 * in through the Unit interface.
 */

#ifndef CYCLOPS_ARCH_CHIP_H
#define CYCLOPS_ARCH_CHIP_H

#include <array>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "arch/barrier_spr.h"
#include "arch/fpu.h"
#include "arch/icache.h"
#include "arch/memsys.h"
#include "arch/offchip.h"
#include "arch/profiler.h"
#include "arch/unit.h"
#include "common/config.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace.h"
#include "isa/encoding.h"
#include "isa/isa.h"
#include "isa/program.h"

namespace cyclops::arch
{

/** Why Chip::run returned. */
enum class RunExit { AllHalted, CycleLimit };

/** One Cyclops chip. */
class Chip
{
  public:
    explicit Chip(const ChipConfig &cfg = ChipConfig{});

    const ChipConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }
    Cycle now() const { return now_; }

    // --- Observability --------------------------------------------------------

    /** Per-chip event tracer (configured from ChipConfig::obs). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** Epoch sampler of all registered scalar statistics. */
    const EpochSampler &sampler() const { return sampler_; }

    /** PC-sampling profiler (enabled by ChipConfig::obs.profInterval). */
    const Profiler &profiler() const { return profiler_; }

    /**
     * Cycle attribution of one TU: every cycle between the unit's
     * first and last activity is charged to exactly one category;
     * the remainder of chip time (before spawn, after halt) is sleep.
     */
    CycleBreakdown attribution(ThreadId tid) const;

    /** Summed attribution over the TUs of quad @p quad. */
    CycleBreakdown quadAttribution(u32 quad) const;

    /** Summed attribution over every TU on the chip. */
    CycleBreakdown chipAttribution() const;

    /**
     * Write the configured observability outputs (trace JSON, stats
     * JSON, series CSV) to ChipConfig::obs paths; no-op when none are
     * set. Call after run().
     */
    void writeObservability();

    // --- Functional memory --------------------------------------------------

    /**
     * Read @p bytes (1..8, naturally aligned) at effective address
     * @p ea on behalf of thread @p tid. Handles scratchpad windows.
     */
    u64 memRead(Addr ea, u8 bytes, ThreadId tid);

    /** Write counterpart of memRead(). */
    void memWrite(Addr ea, u8 bytes, u64 value, ThreadId tid);

    /** Raw access to the physical memory image (loader, tests). */
    void writePhys(PhysAddr addr, const void *data, u32 bytes);
    void readPhys(PhysAddr addr, void *data, u32 bytes) const;

    // --- Program loading (ISA frontend) ---------------------------------------

    /**
     * Copy a program image into memory and predecode its text. Only
     * one program may be resident (the paper's kernel is single-user,
     * single-program).
     */
    void loadProgram(const isa::Program &program);

    /** Decoded instruction at @p pc; panics outside the text section. */
    const isa::Instr &decodedAt(PhysAddr pc) const;

    const isa::Program &program() const { return program_; }

    // --- Units and the cycle engine ----------------------------------------

    /** Install the execution unit for hardware thread @p tid. */
    void setUnit(ThreadId tid, std::unique_ptr<Unit> unit);

    Unit *unit(ThreadId tid) { return units_[tid].get(); }
    const Unit *unit(ThreadId tid) const { return units_[tid].get(); }

    /** Begin executing @p tid at cycle max(now, when). */
    void activate(ThreadId tid, Cycle when = 0);

    /**
     * Run until every activated unit halts or @p maxCycles elapse.
     * May be called repeatedly (time continues monotonically).
     */
    RunExit run(Cycle maxCycles = kCycleNever);

    /** Number of activated, not-yet-halted units. */
    u32 liveUnits() const { return liveUnits_; }

    // --- Shared hardware reachable from units ---------------------------------

    MemSystem &memsys() { return memsys_; }
    BarrierSpr &barrier() { return barrier_; }
    OffChipMemory &offchip() { return offchip_; }
    Fpu &fpuOf(ThreadId tid) { return fpus_[tid / cfg_.threadsPerQuad]; }
    ICache &
    icacheOf(ThreadId tid)
    {
        return icaches_[tid / (cfg_.threadsPerQuad * cfg_.quadsPerICache)];
    }

    /** Value of special purpose register @p spr as read by @p tid. */
    u32 readSpr(ThreadId tid, u32 spr);

    /** Write @p spr; only the barrier SPR is software-writable. */
    void writeSpr(ThreadId tid, u32 spr, u32 value);

    /** Kernel trap entry (console output, thread exit). */
    void trap(ThreadId tid, u32 code, u32 arg);

    /** Console output accumulated by traps. */
    const std::string &console() const { return console_; }
    void clearConsole() { console_.clear(); }

    // --- Fault model (paper section 5) ----------------------------------------

    /** Fail a memory bank: contiguous remap, MEMSZ shrinks. */
    void failBank(BankId id);

    /**
     * Disable a quad (e.g. its FPU broke): its threads must not be
     * used and its cache leaves the interest-group scrambling.
     */
    void disableQuad(u32 quad);

    /** True if the quad is operational. */
    bool quadEnabled(u32 quad) const { return quadEnabled_[quad]; }

    // --- Aggregate statistics ----------------------------------------------------

    /** Sum of run cycles over all units. */
    u64 totalRunCycles() const;

    /** Sum of stall cycles over all units. */
    u64 totalStallCycles() const;

    /** Sum of instructions over all units. */
    u64 totalInstructions() const;

  private:
    static constexpr u32 kWheelBits = 10;
    static constexpr u32 kWheelSize = 1u << kWheelBits;
    static constexpr u32 kWheelWords = kWheelSize / 64;

    void schedule(ThreadId tid, Cycle when);
    Cycle nextWheelEvent() const;
    u8 *memPtr(Addr ea, u8 bytes, ThreadId tid);

    void samplePcs();

    ChipConfig cfg_;
    StatGroup stats_;
    Tracer tracer_;
    EpochSampler sampler_;
    bool sampling_ = false;
    Profiler profiler_;
    bool profiling_ = false;
    Cycle profNext_ = kCycleNever;
    std::vector<u8> active_; ///< activated and not yet halted, per TU

    std::vector<u8> dram_;
    std::vector<std::vector<u8>> scratch_; ///< per-cache scratch storage

    MemSystem memsys_;
    std::vector<Fpu> fpus_;
    std::vector<ICache> icaches_;
    BarrierSpr barrier_;
    OffChipMemory offchip_;

    isa::Program program_;
    std::vector<isa::Instr> decoded_;
    bool programLoaded_ = false;

    std::vector<std::unique_ptr<Unit>> units_;
    std::vector<bool> quadEnabled_;

    // Cycle engine: timing wheel + far-future heap. A one-bit-per-slot
    // occupancy bitmap makes the idle fast-forward a countr_zero scan
    // over 16 words instead of a linear walk of up to 1024 slots.
    Cycle now_ = 0;
    u32 liveUnits_ = 0;
    std::vector<std::vector<ThreadId>> wheel_;
    std::array<u64, kWheelWords> wheelBits_{}; ///< slot-occupancy bitmap
    using FarEntry = std::pair<Cycle, ThreadId>;
    std::priority_queue<FarEntry, std::vector<FarEntry>,
                        std::greater<FarEntry>>
        far_;
    u32 inWheel_ = 0;
    std::vector<ThreadId> due_; ///< reusable due-this-cycle buffer

    std::string console_;

    Counter cycles_;
    Counter trapsServed_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_CHIP_H
