#include "arch/fpu.h"

#include "common/log.h"

namespace cyclops::arch
{

void
Fpu::init(u32 id, const ChipConfig &cfg, StatGroup *stats)
{
    cfg_ = &cfg;
    if (stats) {
        const std::string prefix = strprintf("fpu%u.", id);
        stats->addCounter(prefix + "ops", &ops_);
        stats->addCounter(prefix + "addOps", &addOps_);
        stats->addCounter(prefix + "mulOps", &mulOps_);
        stats->addCounter(prefix + "fmaOps", &fmaOps_);
        stats->addCounter(prefix + "divOps", &divOps_);
        stats->addCounter(prefix + "sqrtOps", &sqrtOps_);
        stats->addCounter(prefix + "conflicts", &conflicts_);
    }
}

bool
Fpu::dispatch(Cycle now, FpuOp op, Cycle *resultAt)
{
    const LatencyConfig &lat = cfg_->lat;
    switch (op) {
      case FpuOp::Add:
        if (addFree_ > now) {
            ++conflicts_;
            return false;
        }
        addFree_ = now + lat.fpAddExec;
        *resultAt = now + lat.fpAddExec + lat.fpAddLat;
        ++addOps_;
        break;
      case FpuOp::Mul:
        if (mulFree_ > now) {
            ++conflicts_;
            return false;
        }
        mulFree_ = now + lat.fpAddExec;
        *resultAt = now + lat.fpAddExec + lat.fpAddLat;
        ++mulOps_;
        break;
      case FpuOp::Fma:
        if (addFree_ > now || mulFree_ > now) {
            ++conflicts_;
            return false;
        }
        addFree_ = mulFree_ = now + lat.fmaExec;
        *resultAt = now + lat.fmaExec + lat.fmaLat;
        ++fmaOps_;
        break;
      case FpuOp::Div:
        if (divFree_ > now) {
            ++conflicts_;
            return false;
        }
        divFree_ = now + lat.fpDivExec;
        *resultAt = now + lat.fpDivExec;
        ++divOps_;
        break;
      case FpuOp::Sqrt:
        if (divFree_ > now) {
            ++conflicts_;
            return false;
        }
        divFree_ = now + lat.fpSqrtExec;
        *resultAt = now + lat.fpSqrtExec;
        ++sqrtOps_;
        break;
    }
    ++ops_;
    return true;
}

} // namespace cyclops::arch
