/**
 * @file
 * The ISA-interpreting thread unit: a simple, single-issue, in-order
 * processor with a register file (64 x 32-bit, pairable for doubles),
 * a program counter, a fixed point ALU and a sequencer.
 *
 * Each thread can issue one instruction per cycle if resources are
 * available and there are no dependences with previous instructions;
 * completion may be out of order (per-register scoreboard). A thread
 * that cannot issue stalls until the blocking resource or operand
 * becomes available; those cycles are accounted as stall cycles.
 */

#ifndef CYCLOPS_ARCH_THREAD_UNIT_H
#define CYCLOPS_ARCH_THREAD_UNIT_H

#include <array>

#include "arch/icache.h"
#include "arch/unit.h"
#include "isa/isa.h"

namespace cyclops::arch
{

class Chip;

/** One hardware thread executing Cyclops machine code. */
class ThreadUnit : public Unit
{
  public:
    /**
     * @param tid   hardware thread id
     * @param chip  owning chip (provides memory, FPU, SPRs, traps)
     * @param entry initial program counter
     */
    ThreadUnit(ThreadId tid, Chip &chip, PhysAddr entry);

    Cycle tick(Cycle now) override { return tickImpl(now, false, true); }

    Cycle
    tickLocal(Cycle now, bool fpuOk) override
    {
        return tickImpl(now, true, fpuOk);
    }

    /** Architectural register read (r0 is always zero). */
    u32 reg(unsigned index) const { return regs_[index]; }

    /** Architectural register write (writes to r0 are ignored). */
    void setReg(unsigned index, u32 value);

    /** Read an even/odd pair as a double. */
    double regPair(unsigned even) const;

    /** Write a double into an even/odd pair. */
    void setRegPair(unsigned even, double value);

    PhysAddr pc() const { return pc_; }
    void setPc(PhysAddr pc) { pc_ = pc; }

    bool
    samplePc(PhysAddr *pc) const override
    {
        *pc = pc_;
        return true;
    }

  private:
    /** The register (and its ready time) that delays an issue longest. */
    struct Hazard {
        Cycle at = 0;
        unsigned reg = 0;
    };

    /**
     * tick() body shared with tickLocal(). With @p localOnly set, any
     * path that would touch shared chip state (memory fabric, I-cache,
     * barrier SPRs, traps) — or the quad FPU when @p fpuOk is false —
     * returns kTickDeferred with no observable state change instead of
     * executing.
     */
    Cycle tickImpl(Cycle now, bool localOnly, bool fpuOk);

    /** Issue one instruction; returns the next cycle to run. */
    Cycle issue(Cycle now, const isa::Instr &instr, bool localOnly,
                bool fpuOk);

    /** Latest-clearing register hazard of @p instr (sources + WAW). */
    Hazard hazardsClearAt(const isa::Instr &instr) const;

    Cycle regReadyAt(unsigned index) const { return ready_[index]; }

    /**
     * Mark @p index ready at @p at, remembering which stall category a
     * dependent instruction waiting on it should charge, and how many
     * of the wait cycles were memory-path queueing (contention).
     */
    void setRegReady(unsigned index, Cycle at,
                     CycleCat producer = CycleCat::Run, u64 queueing = 0);

    Chip &chip_;
    PhysAddr pc_;
    std::array<u32, isa::kNumRegs> regs_{};
    std::array<Cycle, isa::kNumRegs> ready_{};
    std::array<u8, isa::kNumRegs> prodCat_{};  ///< CycleCat per register
    std::array<u64, isa::kNumRegs> prodQueue_{};
    OutstandingMem mem_;
    Pib pib_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_THREAD_UNIT_H
