#include "arch/interest_group.h"

#include <bit>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

CacheId
igSelectCache(InterestGroup ig, PhysAddr lineAddr, u32 numCaches,
              u32 enabledMask)
{
    if (ig.cls == IgClass::Own || ig.cls == IgClass::Scratch)
        panic("igSelectCache: class %u is resolved by the caller",
              static_cast<unsigned>(ig.cls));
    if (numCaches == 0 || !isPow2(numCaches))
        panic("igSelectCache: bad cache count %u", numCaches);

    // Scale the canonical 32-cache group size to this configuration.
    u32 groupSize = igGroupSize(ig.cls);
    if (numCaches < 32)
        groupSize = std::max(1u, groupSize * numCaches / 32);
    if (groupSize > numCaches)
        groupSize = numCaches;

    const u32 numGroups = numCaches / groupSize;
    const u32 group = ig.index & (numGroups - 1);
    const u32 base = group * groupSize;

    // Enabled members of the group.
    u32 members = 0;
    u32 memberIds[32];
    for (u32 i = 0; i < groupSize; ++i) {
        CacheId cache = base + i;
        if (enabledMask & (1u << cache))
            memberIds[members++] = cache;
    }
    if (members == 0) {
        // Fault fallback: the whole group is broken; rescatter over every
        // enabled cache on the chip so the address remains usable.
        for (u32 cache = 0; cache < numCaches; ++cache)
            if (enabledMask & (1u << cache))
                memberIds[members++] = cache;
        if (members == 0)
            fatal("igSelectCache: no data cache is enabled");
    }
    if (members == 1)
        return memberIds[0];

    // Deterministic, address-only scrambling so all members are used
    // uniformly and a given address always maps to the same cache.
    const u32 hash = scramble32(lineAddr);
    return memberIds[hash % members];
}

} // namespace cyclops::arch
