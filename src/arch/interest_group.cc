#include "arch/interest_group.h"

#include <bit>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::arch
{

u32
igGroupMembers(InterestGroup ig, u32 numCaches, u32 enabledMask,
               u8 *members)
{
    if (ig.cls == IgClass::Own || ig.cls == IgClass::Scratch)
        panic("igGroupMembers: class %u is resolved by the caller",
              static_cast<unsigned>(ig.cls));
    if (numCaches == 0 || !isPow2(numCaches))
        panic("igGroupMembers: bad cache count %u", numCaches);

    // Scale the canonical 32-cache group size to this configuration.
    u32 groupSize = igGroupSize(ig.cls);
    if (numCaches < 32)
        groupSize = std::max(1u, groupSize * numCaches / 32);
    if (groupSize > numCaches)
        groupSize = numCaches;

    const u32 numGroups = numCaches / groupSize;
    const u32 group = ig.index & (numGroups - 1);
    const u32 base = group * groupSize;

    // Enabled members of the group.
    u32 count = 0;
    for (u32 i = 0; i < groupSize; ++i) {
        const CacheId cache = base + i;
        if (enabledMask & (1u << cache))
            members[count++] = u8(cache);
    }
    if (count == 0) {
        // Fault fallback: the whole group is broken; rescatter over every
        // enabled cache on the chip so the address remains usable.
        for (u32 cache = 0; cache < numCaches; ++cache)
            if (enabledMask & (1u << cache))
                members[count++] = u8(cache);
        if (count == 0)
            fatal("igGroupMembers: no data cache is enabled");
    }
    return count;
}

CacheId
igSelectCache(InterestGroup ig, PhysAddr lineAddr, u32 numCaches,
              u32 enabledMask)
{
    u8 members[32];
    const u32 count = igGroupMembers(ig, numCaches, enabledMask, members);
    if (count == 1)
        return members[0];

    // Deterministic, address-only scrambling so all members are used
    // uniformly and a given address always maps to the same cache.
    const u32 hash = scramble32(lineAddr);
    return members[hash % count];
}

} // namespace cyclops::arch
