/**
 * @file
 * A multi-chip Cyclops system: N real Chips on a 3-D mesh/torus,
 * coupled through the cycle-driven net::Fabric (DESIGN.md section 16).
 *
 * The System owns the chips and the fabric and advances everything in
 * conservative epoch lockstep: each chip runs one epoch (default one
 * hop time: routerLatency + linkLatency — the minimum time any
 * message needs to cross a chip boundary), then fabric deliveries
 * whose time has come are applied to the destination chips' memory,
 * in (delivery cycle, injection sequence) order, before the next
 * epoch starts. Chips advance in chip-id order within an epoch, so
 * the injection sequence — and with it every fabric timing — is a
 * pure function of the program, independent of host parallelism.
 *
 * Remote accesses use the address window of arch/interest_group.h: a
 * non-Scratch EA with physical bit 23 set names (chip, offset), and
 * the offset maps into the target's 128 KB window at windowBase. A
 * remote store is posted: the thread resumes when the injection port
 * drains (backpressure — the paper's 12 GB/s I/O budget binds), and
 * the value lands at the first epoch boundary after its delivery
 * cycle. A remote load charges the full request/response round trip
 * but reads the target window at issue time (the conservative-epoch
 * snapshot). Messages sharing a source and destination follow the
 * same DOR path FIFO, so a flag stored after its payload is never
 * applied before it — the ordering workloads synchronize with.
 *
 * Fault tolerance (DESIGN.md section 18): when the fabric's fault map
 * abandons a remote access (retries exhausted against a partitioned
 * or storming destination) the System latches the first failure and
 * run() returns RunExit::FabricFailure at the next epoch boundary —
 * a structured exit, never a hang or a host fatal(). A corruption
 * that escapes the end-to-end checksum is materialized here as
 * silent data corruption: one deterministic bit of the posted store
 * flips. Watchdog exits are attributed: if retransmissions climbed
 * within the trailing watchdog window the diagnostic leads with a
 * fabric-livelock (retry storm) note instead of reading as a
 * chip-level deadlock.
 */

#ifndef CYCLOPS_ARCH_SYSTEM_H
#define CYCLOPS_ARCH_SYSTEM_H

#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "arch/chip.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "net/fabric.h"

namespace cyclops::arch
{

/** Configuration of a multi-chip system. */
struct SystemConfig
{
    ChipConfig chip;           ///< every chip is identical (cellular)
    net::FabricConfig fabric;  ///< interconnect + protocol parameters

    /**
     * Physical base of the 128 KB window each chip exports to its
     * peers; 0 resolves to half the embedded memory.
     */
    PhysAddr windowBase = 0;

    u32 numChips() const { return fabric.net.numChips(); }

    /** Resolved window base (explicit or the memBytes()/2 default). */
    PhysAddr
    windowBaseOf() const
    {
        return windowBase ? windowBase : chip.memBytes() / 2;
    }

    /** First violated invariant as a message, or "" if well-formed. */
    std::string check() const;

    /** check(), escalated: fatal() on a malformed configuration. */
    void validate() const;
};

/** N Cyclops chips on the cycle-driven fabric. */
class System : private RemotePort
{
  public:
    explicit System(const SystemConfig &cfg);

    const SystemConfig &config() const { return cfg_; }
    u32 numChips() const { return u32(chips_.size()); }
    Chip &chip(u32 id) { return *chips_[id]; }
    const Chip &chip(u32 id) const { return *chips_[id]; }
    net::Fabric &fabric() { return fabric_; }
    const net::Fabric &fabric() const { return fabric_; }
    PhysAddr windowBase() const { return windowBase_; }

    /** Lockstep frontier: every chip has simulated at least this far. */
    Cycle now() const { return now_; }

    /** Load the same program image into every chip (SPMD). */
    void loadProgramAll(const isa::Program &program);

    /** Sum of liveUnits() over the chips. */
    u32 liveUnits() const;

    /**
     * Advance the system until every chip halts or @p maxCycles
     * elapse (relative, like Chip::run). A Watchdog or Signal exit
     * from any chip stops the whole system and is returned as-is
     * (the watchdog diagnostic is prefixed with the chip id). On
     * AllHalted all remaining fabric deliveries are applied and the
     * fabric is drained, so flitsInFlight() == 0 afterwards.
     */
    RunExit run(Cycle maxCycles = kCycleNever);

    /** Fabric stores accepted but not yet applied to their target. */
    size_t pendingStores() const { return pending_.size(); }

    /** Sum of totalInstructions() over the chips. */
    u64 totalInstructions() const;

    /**
     * Write the configured observability outputs. Stats/CSV/profile
     * files are written per chip (paths get a ".chipN" suffix unless
     * they contain "%t", which expands to "<tag>-chipN"); the trace is
     * one merged Chrome JSON with each chip as its own process (pid
     * 10+N, "cyclops-chipN") so Perfetto shows the chips side by side,
     * plus — when the "net" category is traced — the fabric as pid 3
     * ("cyclops-fabric") with one track per directed link. The fabric
     * stats JSON (obs.fabricStats, schema cyclops-fabric-v1) and the
     * link/pair congestion heatmap CSV (obs.fabricHeatmap) are
     * system-level files written here too (see DESIGN.md section 17).
     */
    void writeObservability();

  private:
    // RemotePort (installed on every chip).
    u64 remoteRead(u32 srcChip, ThreadId tid, Addr ea, u8 bytes) override;
    void remoteWrite(u32 srcChip, ThreadId tid, Addr ea, u8 bytes,
                     u64 value) override;
    MemTiming remoteAccess(u32 srcChip, ThreadId tid, Cycle now, Addr ea,
                           u8 bytes, MemKind kind) override;

    /** Validate a remote EA; returns the destination chip id. */
    u32 checkRemoteEa(u32 srcChip, ThreadId tid, Addr ea, u8 bytes) const;

    /** Apply pending stores delivered at or before @p upTo. */
    void applyDeliveries(Cycle upTo);

    /** Latch the first abandoned remote access (run() returns
     *  FabricFailure at the next epoch boundary). */
    void noteFabricFailure(std::string diag);

    /** Record the epoch's retransmit count for watchdog attribution
     *  and prune samples outside the trailing window. */
    void noteEpochRetransmits();

    /** Retransmissions within the trailing watchdog window. */
    u64 recentRetransmits() const;

    /** Write the fabric stats JSON (obs.fabricStats). */
    void writeFabricStats();

    /** Write the link/pair congestion heatmap CSV (obs.fabricHeatmap). */
    void writeFabricHeatmap();

    /** A store accepted by the fabric, awaiting its delivery cycle. */
    struct PendingStore
    {
        Cycle delivered = 0;
        u64 seq = 0; ///< injection sequence: total order tie-breaker
        u32 dstChip = 0;
        PhysAddr pa = 0;
        u8 bytes = 0;
        u64 value = 0;

        bool
        operator>(const PendingStore &o) const
        {
            if (delivered != o.delivered)
                return delivered > o.delivered;
            return seq > o.seq;
        }
    };

    /** Store staged by remoteWrite, consumed by the remoteAccess. */
    struct StagedStore
    {
        bool valid = false;
        Addr ea = 0;
        u8 bytes = 0;
        u64 value = 0;
    };

    SystemConfig cfg_;
    ObsConfig obsOrig_; ///< pre-rewrite observability (merged trace)
    net::Fabric fabric_;
    EpochSampler fabricSampler_; ///< epoch series over fabric_.stats()
    Tracer fabricTracer_;        ///< "net" category: per-link tracks
    std::vector<std::unique_ptr<Chip>> chips_;
    PhysAddr windowBase_ = 0;
    Cycle now_ = 0;
    u64 seq_ = 0;
    std::vector<StagedStore> staged_; ///< one slot per (chip, thread)
    std::priority_queue<PendingStore, std::vector<PendingStore>,
                        std::greater<PendingStore>>
        pending_;

    // First abandoned remote access: run() turns this into a
    // structured RunExit::FabricFailure at the next epoch boundary.
    bool fabricFailed_ = false;
    std::string failDiag_;

    // (cycle, fabric.retransmits) samples, pushed on change at epoch
    // boundaries and pruned to twice the watchdog window: lets a
    // Watchdog exit distinguish fabric-level livelock (retry storm)
    // from chip-level deadlock.
    std::deque<std::pair<Cycle, u64>> retransHist_;
};

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_SYSTEM_H
