/**
 * @file
 * Interest-group cache-placement encoding (paper Table 1).
 *
 * The upper 8 bits of every 32-bit effective address select the set of
 * data caches that may hold the addressed line; the lower 24 bits are
 * the physical address. The encoding (reconstructed, see DESIGN.md) is
 *
 *      bits [7:5]  size class           selected caches
 *      ----------  -------------------  -------------------------------
 *      0  (Own)    thread's own cache   the local cache of the accessor
 *      1  (All)    one of all           {0 .. 31}           (kernel default)
 *      2  (Sixteen) one of sixteen      {0..15}, {16..31}
 *      3  (Eight)  one of eight         {0..7}, ... {24..31}
 *      4  (Four)   one of four          {0..3}, ... {28..31}
 *      5  (Pair)   one of a pair        {0,1}, {2,3}, ... {30,31}
 *      6  (One)    exactly one          {0}, {1}, ... {31}
 *      7  (Scratch) scratchpad window   direct access to cache index's
 *                                       way-partitioned fast memory
 *
 * bits [4:0] give the group index within the size class. When the set
 * has more than one member, a deterministic scrambling function of the
 * physical line address picks the member, so references to the same
 * address always map to the same cache and all caches of the set are
 * utilized uniformly.
 *
 * Class Own maps the line to the accessing thread's local cache: the
 * same physical address may be replicated in several caches, and the
 * hardware provides no coherence for it — software must guarantee the
 * replication is correct (e.g. read-only constants, per-thread stacks).
 */

#ifndef CYCLOPS_ARCH_INTEREST_GROUP_H
#define CYCLOPS_ARCH_INTEREST_GROUP_H

#include "common/types.h"

namespace cyclops::arch
{

/** Size classes of the interest-group encoding. */
enum class IgClass : u8
{
    Own = 0,
    All = 1,
    Sixteen = 2,
    Eight = 3,
    Four = 4,
    Pair = 5,
    One = 6,
    Scratch = 7,
};

/** A decoded interest-group field. */
struct InterestGroup
{
    IgClass cls = IgClass::All;
    u8 index = 0; ///< group index within the size class

    bool operator==(const InterestGroup &other) const = default;
};

/** Number of caches in a group of size class @p cls (on 32 caches). */
constexpr u32
igGroupSize(IgClass cls)
{
    switch (cls) {
      case IgClass::Own:
      case IgClass::One:
      case IgClass::Scratch:
        return 1;
      case IgClass::Pair: return 2;
      case IgClass::Four: return 4;
      case IgClass::Eight: return 8;
      case IgClass::Sixteen: return 16;
      case IgClass::All: return 32;
    }
    return 1;
}

/** Decode an 8-bit interest-group field. */
constexpr InterestGroup
igDecode(u8 field)
{
    return InterestGroup{static_cast<IgClass>(field >> 5),
                         static_cast<u8>(field & 0x1F)};
}

/** Encode a size class and group index into the 8-bit field. */
constexpr u8
igEncode(IgClass cls, u8 index = 0)
{
    return static_cast<u8>((static_cast<u8>(cls) << 5) | (index & 0x1F));
}

/** The kernel-default encoding: one chip-wide coherent 512 KB cache. */
inline constexpr u8 kIgDefault = igEncode(IgClass::All); // 0b00100000

/** The own-cache (replicating, software-coherent) encoding. */
inline constexpr u8 kIgOwn = igEncode(IgClass::Own); // 0b00000000

/** Pin data to exactly one cache. */
constexpr u8
igExactly(CacheId cache)
{
    return igEncode(IgClass::One, static_cast<u8>(cache));
}

/** Scratchpad window of one cache's partitioned ways. */
constexpr u8
igScratch(CacheId cache)
{
    return igEncode(IgClass::Scratch, static_cast<u8>(cache));
}

/** Compose a 32-bit effective address from group field + physical. */
constexpr Addr
igAddr(u8 field, PhysAddr pa)
{
    return (static_cast<Addr>(field) << 24) | (pa & 0x00FF'FFFF);
}

/** Interest-group field of an effective address. */
constexpr u8
igField(Addr ea)
{
    return static_cast<u8>(ea >> 24);
}

/** Physical part of an effective address. */
constexpr PhysAddr
igPhys(Addr ea)
{
    return ea & 0x00FF'FFFF;
}

// --- Remote-access window (multi-chip systems, DESIGN.md section 16) --------
//
// When a RemotePort is attached to a chip, a non-Scratch effective
// address with physical bit 23 set addresses another chip's memory
// window instead of local DRAM: offset bits [22:17] select the
// destination chip (up to 64) and bits [16:0] the byte offset within
// its 128 KB exported window. Standalone chips (no port) treat the bit
// as ordinary physical address space, so the encoding is backward
// compatible.

inline constexpr Addr kRemoteWindowBit = 0x0080'0000;
inline constexpr u32 kRemoteChipShift = 17;
inline constexpr u32 kRemoteMaxChips = 64;
inline constexpr PhysAddr kRemoteWindowBytes = 1u << kRemoteChipShift;

/** True if @p ea falls in the remote window (ports attached only). */
constexpr bool
isRemoteEa(Addr ea)
{
    return (ea & kRemoteWindowBit) != 0 &&
           static_cast<IgClass>(ea >> 29) != IgClass::Scratch;
}

/** Destination chip id of a remote-window effective address. */
constexpr u32
remoteChipOf(Addr ea)
{
    return (ea >> kRemoteChipShift) & (kRemoteMaxChips - 1);
}

/** Window-relative byte offset of a remote-window effective address. */
constexpr PhysAddr
remoteOffsetOf(Addr ea)
{
    return ea & (kRemoteWindowBytes - 1);
}

/** Compose the remote-window EA for @p chip / @p offset (field @p field). */
constexpr Addr
remoteEa(u8 field, u32 chip, PhysAddr offset)
{
    return igAddr(field, kRemoteWindowBit |
                             (chip << kRemoteChipShift) | offset);
}

/**
 * Pick the cache holding @p lineAddr under group @p ig.
 *
 * @param ig          decoded interest group (not Scratch/Own)
 * @param lineAddr    physical address of the cache line
 * @param numCaches   caches on the chip (power of two)
 * @param enabledMask bit i set if cache i is operational (fault model);
 *                    a group whose members are all disabled falls back
 *                    to the enabled caches of the whole chip
 */
CacheId igSelectCache(InterestGroup ig, PhysAddr lineAddr, u32 numCaches,
                      u32 enabledMask);

/**
 * Enabled member caches of group @p ig, in ascending id order — the
 * candidate set igSelectCache() scrambles over. Applies the same
 * group-size scaling and whole-group-disabled fallback. Writes the
 * member ids to @p members (room for @p numCaches entries) and returns
 * the count. Used to precompute per-field routing tables.
 */
u32 igGroupMembers(InterestGroup ig, u32 numCaches, u32 enabledMask,
                   u8 *members);

} // namespace cyclops::arch

#endif // CYCLOPS_ARCH_INTEREST_GROUP_H
