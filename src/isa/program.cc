#include "isa/program.h"

#include "common/log.h"

namespace cyclops::isa
{

u32
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol: %s", name.c_str());
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols.count(name) != 0;
}

} // namespace cyclops::isa
