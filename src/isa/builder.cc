#include "isa/builder.h"

#include <cstring>

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::isa
{

ProgramBuilder::Label
ProgramBuilder::newLabel()
{
    Label label{static_cast<u32>(labelAddr_.size())};
    labelAddr_.push_back(~0u);
    return label;
}

void
ProgramBuilder::bind(Label label)
{
    if (label.id >= labelAddr_.size())
        panic("bind of an unknown label");
    if (labelAddr_[label.id] != ~0u)
        panic("label bound twice");
    labelAddr_[label.id] = here();
}

void
ProgramBuilder::emitR(Opcode op, u8 rd, u8 ra, u8 rb)
{
    instrs_.push_back({op, rd, ra, rb, 0});
}

void
ProgramBuilder::emitI(Opcode op, u8 rd, u8 ra, s32 imm)
{
    instrs_.push_back({op, rd, ra, 0, imm});
}

void
ProgramBuilder::emitBranch(Opcode op, u8 ra, u8 rb, Label target)
{
    if (target.id >= labelAddr_.size())
        panic("branch to an unknown label");
    fixups_.push_back({static_cast<u32>(instrs_.size()), target.id});
    instrs_.push_back({op, 0, ra, rb, 0});
}

void
ProgramBuilder::emitJal(u8 rd, Label target)
{
    if (target.id >= labelAddr_.size())
        panic("jump to an unknown label");
    fixups_.push_back({static_cast<u32>(instrs_.size()), target.id});
    instrs_.push_back({Opcode::Jal, rd, 0, 0, 0});
}

void
ProgramBuilder::li(u8 rd, u32 value)
{
    s32 sval = static_cast<s32>(value);
    if (sval >= immMin(kImmBitsI) && sval <= immMax(kImmBitsI)) {
        addi(rd, 0, sval);
        return;
    }
    emitI(Opcode::Lui, rd, 0, static_cast<s32>((value >> 13) & 0x7FFFF));
    u32 low = value & 0x1FFF;
    s32 field = low >= 4096 ? static_cast<s32>(low) - 8192
                            : static_cast<s32>(low);
    emitI(Opcode::Ori, rd, rd, field);
}

u32
ProgramBuilder::allocData(u32 bytes, u32 align)
{
    if (!isPow2(align))
        panic("allocData alignment must be a power of two");
    u32 offset = static_cast<u32>(roundUp(data_.size(), align));
    data_.resize(offset + bytes, 0);
    return dataBase_ + offset;
}

void
ProgramBuilder::pokeWord(u32 addr, u32 value)
{
    if (addr < dataBase_ || addr + 4 > dataBase_ + data_.size())
        panic("pokeWord outside allocated data: 0x%x", addr);
    std::memcpy(&data_[addr - dataBase_], &value, 4);
}

void
ProgramBuilder::pokeDouble(u32 addr, double value)
{
    if (addr < dataBase_ || addr + 8 > dataBase_ + data_.size())
        panic("pokeDouble outside allocated data: 0x%x", addr);
    std::memcpy(&data_[addr - dataBase_], &value, 8);
}

void
ProgramBuilder::defineSymbol(const std::string &name, u32 addr)
{
    symbols_.emplace_back(name, addr);
}

Program
ProgramBuilder::finish()
{
    if (finished_)
        panic("ProgramBuilder::finish called twice");
    finished_ = true;

    for (const Fixup &fixup : fixups_) {
        u32 target = labelAddr_[fixup.labelId];
        if (target == ~0u)
            panic("unbound label %u referenced at instruction %u",
                  fixup.labelId, fixup.textIndex);
        Instr &instr = instrs_[fixup.textIndex];
        s64 pc = static_cast<s64>(textBase_) + s64(fixup.textIndex) * 4;
        s64 offsetWords = (static_cast<s64>(target) - (pc + 4)) / 4;
        const unsigned width =
            meta(instr.op).format == Format::J ? kImmBitsJ : kImmBitsI;
        if (offsetWords < immMin(width) || offsetWords > immMax(width))
            panic("label fixup out of range (%lld words)",
                  static_cast<long long>(offsetWords));
        instr.imm = static_cast<s32>(offsetWords);
    }

    Program prog;
    prog.textBase = textBase_;
    prog.dataBase = dataBase_;
    prog.text.reserve(instrs_.size());
    for (const Instr &instr : instrs_)
        prog.text.push_back(encodeOrDie(instr));
    if (textBase_ + prog.textBytes() > dataBase_ && !data_.empty())
        panic("text section (%u bytes) overflows into data base 0x%x",
              prog.textBytes(), dataBase_);
    prog.data = std::move(data_);
    prog.entry = textBase_;
    for (auto &[name, addr] : symbols_)
        prog.symbols[name] = addr;
    return prog;
}

} // namespace cyclops::isa
