/**
 * @file
 * Two-pass text assembler for the Cyclops ISA.
 *
 * Syntax (one statement per line; ';' or '#' starts a comment):
 *
 *   .text / .data          switch section
 *   label:                 define a label (may share a line with a stmt)
 *   .align N               align to N bytes (power of two)
 *   .space N               reserve N zero bytes (data only)
 *   .byte / .half / .word  emit initialized integers (comma separated)
 *   .double 1.5, ...       emit IEEE-754 doubles
 *   .asciz "text"          emit a NUL-terminated string
 *   add r1, r2, r3         R-format
 *   addi r1, r2, -12       I-format (hex 0x.., char 'c' accepted)
 *   lw r1, 8(r2)           memory displacement form
 *   beq r1, r2, label      branch to label (or numeric offset)
 *   jal r63, func          jump and link
 *
 * Pseudo-instructions: li rd,imm32; la rd,label; mv; not; neg; b; beqz;
 * bnez; call; ret; subi.
 *
 * Labels may be referenced with a constant offset: `la r4, vec+16`.
 * Execution starts at the `start` label if defined, else at textBase.
 */

#ifndef CYCLOPS_ISA_ASSEMBLER_H
#define CYCLOPS_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace cyclops::isa
{

/** Result of an assembly run. */
struct AsmResult
{
    bool ok = false;
    std::string error;   ///< first error, with a line number
    Program program;
};

/**
 * Assemble @p source into a program image.
 *
 * @param source   full assembly text
 * @param textBase load address of the first instruction
 */
AsmResult assemble(const std::string &source,
                   u32 textBase = Program::kDefaultTextBase);

/** Assemble, calling fatal() with the error message on failure. */
Program assembleOrDie(const std::string &source,
                      u32 textBase = Program::kDefaultTextBase);

} // namespace cyclops::isa

#endif // CYCLOPS_ISA_ASSEMBLER_H
