/**
 * @file
 * Binary encoding and decoding of Cyclops instruction words.
 */

#ifndef CYCLOPS_ISA_ENCODING_H
#define CYCLOPS_ISA_ENCODING_H

#include "common/types.h"
#include "isa/isa.h"

namespace cyclops::isa
{

/** Immediate field widths per format. */
inline constexpr unsigned kImmBitsI = 13; ///< I and B formats (signed)
inline constexpr unsigned kImmBitsJ = 19; ///< J format (signed, words)
inline constexpr unsigned kImmBitsU = 19; ///< U format (unsigned, << 13)

/** Inclusive range of a signed immediate of @p bits width. */
constexpr s32 immMin(unsigned bitCount) { return -(1 << (bitCount - 1)); }
constexpr s32 immMax(unsigned bitCount) { return (1 << (bitCount - 1)) - 1; }

/**
 * Encode @p instr into a 32-bit machine word.
 *
 * Returns false (leaving @p word untouched) if a field is out of range
 * — register >= 64, immediate not representable, or an odd register
 * where the opcode requires an even FP pair.
 */
bool encode(const Instr &instr, u32 *word);

/** Encode or panic; for code generators whose fields are pre-validated. */
u32 encodeOrDie(const Instr &instr);

/**
 * Decode a 32-bit machine word. Returns false if the opcode field does
 * not name a valid instruction.
 */
bool decode(u32 word, Instr *out);

/** Validate the operand constraints of a decoded instruction. */
bool validOperands(const Instr &instr);

} // namespace cyclops::isa

#endif // CYCLOPS_ISA_ENCODING_H
