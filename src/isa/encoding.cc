#include "isa/encoding.h"

#include "common/bitops.h"
#include "common/log.h"

namespace cyclops::isa
{

namespace
{

bool
regOk(u8 reg)
{
    return reg < kNumRegs;
}

bool
pairOk(u8 reg)
{
    return reg < kNumRegs && (reg & 1) == 0;
}

} // namespace

bool
validOperands(const Instr &instr)
{
    const InstrMeta &m = meta(instr.op);
    if (!regOk(instr.rd) || !regOk(instr.ra) || !regOk(instr.rb))
        return false;
    if (m.fpPairRd && (m.writesRd || m.readsRd) && !pairOk(instr.rd))
        return false;
    if (m.fpPairRa && m.readsRa && !pairOk(instr.ra))
        return false;
    if (m.fpPairRb && m.readsRb && !pairOk(instr.rb))
        return false;
    // Canonical encoding: operand fields the instruction neither reads
    // nor writes must be zero. The disassembler omits such fields, so
    // allowing junk there would break disasm -> asm round-trips (and
    // make two encodings of the same instruction compare unequal).
    const bool usesRd = m.readsRd || m.writesRd;
    if (!usesRd && instr.rd != 0)
        return false;
    if (!m.readsRa && instr.ra != 0)
        return false;
    if (!m.readsRb && instr.rb != 0)
        return false;
    switch (m.format) {
      case Format::R:
        return instr.imm == 0;
      case Format::I:
        if (instr.op == Opcode::Halt)
            return instr.imm == 0; // imm field is ignored and not printed
        [[fallthrough]];
      case Format::B:
        return instr.imm >= immMin(kImmBitsI) &&
               instr.imm <= immMax(kImmBitsI);
      case Format::J:
        return instr.imm >= immMin(kImmBitsJ) &&
               instr.imm <= immMax(kImmBitsJ);
      case Format::U:
        return instr.imm >= 0 && instr.imm < (1 << kImmBitsU);
    }
    return false;
}

bool
encode(const Instr &instr, u32 *word)
{
    if (static_cast<unsigned>(instr.op) >= kNumOpcodes)
        return false;
    if (!validOperands(instr))
        return false;

    const InstrMeta &m = meta(instr.op);
    u32 w = insertBits<u32>(static_cast<u32>(instr.op), 31, 25);
    switch (m.format) {
      case Format::R:
        w |= insertBits<u32>(instr.rd, 24, 19);
        w |= insertBits<u32>(instr.ra, 18, 13);
        w |= insertBits<u32>(instr.rb, 12, 7);
        break;
      case Format::I:
        w |= insertBits<u32>(instr.rd, 24, 19);
        w |= insertBits<u32>(instr.ra, 18, 13);
        w |= insertBits<u32>(static_cast<u32>(instr.imm), 12, 0);
        break;
      case Format::B:
        w |= insertBits<u32>(instr.ra, 24, 19);
        w |= insertBits<u32>(instr.rb, 18, 13);
        w |= insertBits<u32>(static_cast<u32>(instr.imm), 12, 0);
        break;
      case Format::J:
        w |= insertBits<u32>(instr.rd, 24, 19);
        w |= insertBits<u32>(static_cast<u32>(instr.imm), 18, 0);
        break;
      case Format::U:
        w |= insertBits<u32>(instr.rd, 24, 19);
        w |= insertBits<u32>(static_cast<u32>(instr.imm), 18, 0);
        break;
    }
    *word = w;
    return true;
}

u32
encodeOrDie(const Instr &instr)
{
    u32 word = 0;
    if (!encode(instr, &word))
        panic("cannot encode %s rd=%u ra=%u rb=%u imm=%d",
              mnemonic(instr.op), instr.rd, instr.ra, instr.rb, instr.imm);
    return word;
}

bool
decode(u32 word, Instr *out)
{
    const u32 opField = bits(word, 31u, 25u);
    if (opField >= kNumOpcodes)
        return false;
    Instr instr;
    instr.op = static_cast<Opcode>(opField);
    const InstrMeta &m = meta(instr.op);
    switch (m.format) {
      case Format::R:
        instr.rd = static_cast<u8>(bits(word, 24u, 19u));
        instr.ra = static_cast<u8>(bits(word, 18u, 13u));
        instr.rb = static_cast<u8>(bits(word, 12u, 7u));
        break;
      case Format::I:
        instr.rd = static_cast<u8>(bits(word, 24u, 19u));
        instr.ra = static_cast<u8>(bits(word, 18u, 13u));
        instr.imm = static_cast<s32>(sext(bits(word, 12u, 0u), kImmBitsI));
        break;
      case Format::B:
        instr.ra = static_cast<u8>(bits(word, 24u, 19u));
        instr.rb = static_cast<u8>(bits(word, 18u, 13u));
        instr.imm = static_cast<s32>(sext(bits(word, 12u, 0u), kImmBitsI));
        break;
      case Format::J:
        instr.rd = static_cast<u8>(bits(word, 24u, 19u));
        instr.imm = static_cast<s32>(sext(bits(word, 18u, 0u), kImmBitsJ));
        break;
      case Format::U:
        instr.rd = static_cast<u8>(bits(word, 24u, 19u));
        instr.imm = static_cast<s32>(bits(word, 18u, 0u));
        break;
    }
    *out = instr;
    return true;
}

} // namespace cyclops::isa
