#include "isa/assembler.h"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "common/bitops.h"
#include "common/log.h"
#include "isa/encoding.h"

namespace cyclops::isa
{

namespace
{

/** One source statement after lexing. */
struct ParsedLine
{
    int lineNo = 0;
    std::string mnem;                   ///< mnemonic or ".directive"
    std::vector<std::string> operands;  ///< comma-separated fields
};

struct Symbol
{
    int section = 0; ///< 0 = text, 1 = data
    u32 offset = 0;  ///< byte offset inside the section
};

std::string
trim(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

/** The assembler proper: two passes over the lexed statements. */
class Assembler
{
  public:
    explicit Assembler(u32 textBase) { prog_.textBase = textBase; }

    AsmResult
    run(const std::string &source)
    {
        AsmResult result;
        if (!lex(source) || !pass1() || !pass2()) {
            result.ok = false;
            result.error = error_;
            return result;
        }
        result.ok = true;
        result.program = std::move(prog_);
        return result;
    }

  private:
    // --- Error handling -------------------------------------------------

    bool
    err(int lineNo, const std::string &message)
    {
        if (error_.empty())
            error_ = strprintf("line %d: %s", lineNo, message.c_str());
        return false;
    }

    // --- Lexing ----------------------------------------------------------

    bool
    lex(const std::string &source)
    {
        int lineNo = 0;
        size_t pos = 0;
        while (pos <= source.size()) {
            size_t eol = source.find('\n', pos);
            std::string line = source.substr(
                pos, eol == std::string::npos ? std::string::npos
                                              : eol - pos);
            pos = eol == std::string::npos ? source.size() + 1 : eol + 1;
            ++lineNo;

            // Strip comments, but not inside string literals.
            bool inStr = false;
            for (size_t i = 0; i < line.size(); ++i) {
                char c = line[i];
                if (c == '"' && (i == 0 || line[i - 1] != '\\'))
                    inStr = !inStr;
                else if (!inStr && (c == ';' || c == '#')) {
                    line.resize(i);
                    break;
                }
            }
            line = trim(line);
            if (line.empty())
                continue;

            // Peel off leading labels ("name:").
            while (true) {
                size_t colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                std::string head = trim(line.substr(0, colon));
                bool isLabel = !head.empty();
                for (char c : head)
                    if (!isIdentChar(c))
                        isLabel = false;
                if (!isLabel)
                    break;
                ParsedLine label;
                label.lineNo = lineNo;
                label.mnem = ":label";
                label.operands.push_back(head);
                lines_.push_back(std::move(label));
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;

            ParsedLine parsed;
            parsed.lineNo = lineNo;
            size_t space = line.find_first_of(" \t");
            parsed.mnem = line.substr(0, space);
            for (auto &c : parsed.mnem)
                c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            if (space != std::string::npos) {
                std::string rest = trim(line.substr(space));
                // Split on top-level commas (strings may contain commas).
                std::string field;
                bool fieldInStr = false;
                for (char c : rest) {
                    if (c == '"')
                        fieldInStr = !fieldInStr;
                    if (c == ',' && !fieldInStr) {
                        parsed.operands.push_back(trim(field));
                        field.clear();
                    } else {
                        field += c;
                    }
                }
                if (!trim(field).empty() || !parsed.operands.empty())
                    parsed.operands.push_back(trim(field));
            }
            lines_.push_back(std::move(parsed));
        }
        return true;
    }

    // --- Operand parsing --------------------------------------------------

    static std::optional<u8>
    parseReg(const std::string &token)
    {
        std::string t = token;
        for (auto &c : t)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (t == "zero")
            return 0;
        if (t == "sp")
            return kStackReg;
        if (t == "lr")
            return kLinkReg;
        if (t.size() < 2 || t[0] != 'r')
            return std::nullopt;
        u32 value = 0;
        for (size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                return std::nullopt;
            value = value * 10 + static_cast<u32>(t[i] - '0');
        }
        if (value >= kNumRegs)
            return std::nullopt;
        return static_cast<u8>(value);
    }

    static std::optional<s64>
    parseInt(const std::string &token)
    {
        if (token.empty())
            return std::nullopt;
        if (token.size() >= 3 && token.front() == '\'' &&
            token.back() == '\'') {
            if (token.size() == 3)
                return static_cast<s64>(token[1]);
            if (token.size() == 4 && token[1] == '\\') {
                switch (token[2]) {
                  case 'n': return '\n';
                  case 't': return '\t';
                  case '0': return 0;
                  case '\\': return '\\';
                  default: return std::nullopt;
                }
            }
            return std::nullopt;
        }
        size_t index = 0;
        bool negative = false;
        if (token[index] == '-' || token[index] == '+') {
            negative = token[index] == '-';
            ++index;
        }
        if (index >= token.size())
            return std::nullopt;
        int base = 10;
        if (token.size() > index + 1 && token[index] == '0' &&
            (token[index + 1] == 'x' || token[index + 1] == 'X')) {
            base = 16;
            index += 2;
        } else if (token.size() > index + 1 && token[index] == '0' &&
                   (token[index + 1] == 'b' || token[index + 1] == 'B')) {
            base = 2;
            index += 2;
        }
        if (index >= token.size())
            return std::nullopt;
        s64 value = 0;
        for (; index < token.size(); ++index) {
            char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(token[index])));
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = 10 + (c - 'a');
            else
                return std::nullopt;
            if (digit >= base)
                return std::nullopt;
            value = value * base + digit;
        }
        return negative ? -value : value;
    }

    /** Resolve "sym", "sym+4", "sym-8" or a plain integer. */
    bool
    resolveValue(int lineNo, const std::string &token, s64 *out)
    {
        if (auto literal = parseInt(token)) {
            *out = *literal;
            return true;
        }
        size_t split = token.find_first_of("+-", 1);
        std::string name = trim(token.substr(0, split));
        s64 offset = 0;
        if (split != std::string::npos) {
            auto parsed = parseInt(trim(token.substr(split)));
            if (!parsed)
                return err(lineNo, "bad offset in '" + token + "'");
            offset = *parsed;
        }
        // "." is the address of the instruction being assembled, so
        // ".+8" / ".-12" express pc-relative targets (the form the
        // disassembler emits for branches).
        if (name == ".") {
            *out = static_cast<s64>(pc()) + offset;
            return true;
        }
        auto it = symbols_.find(name);
        if (it == symbols_.end())
            return err(lineNo, "undefined symbol '" + name + "'");
        const Symbol &sym = it->second;
        u32 base = sym.section == 0 ? prog_.textBase + sym.offset
                                    : dataBase_ + sym.offset;
        *out = static_cast<s64>(base) + offset;
        return true;
    }

    /** Parse "imm(rN)", "(rN)" or "sym(rN)" into displacement + base. */
    bool
    parseMemOperand(int lineNo, const std::string &token, s64 *disp, u8 *base)
    {
        size_t open = token.find('(');
        size_t close = token.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            return err(lineNo, "expected disp(reg), got '" + token + "'");
        std::string dispText = trim(token.substr(0, open));
        std::string regText = trim(token.substr(open + 1, close - open - 1));
        auto reg = parseReg(regText);
        if (!reg)
            return err(lineNo, "bad base register '" + regText + "'");
        *base = *reg;
        if (dispText.empty()) {
            *disp = 0;
            return true;
        }
        return resolveValue(lineNo, dispText, disp);
    }

    // --- Pass 1: sizes and symbols ---------------------------------------

    /** Number of machine words a (pseudo-)instruction expands to. */
    bool
    instrWords(const ParsedLine &line, u32 *words)
    {
        const std::string &m = line.mnem;
        if (m == "li") {
            if (line.operands.size() != 2)
                return err(line.lineNo, "li needs 2 operands");
            auto value = parseInt(line.operands[1]);
            if (!value)
                return err(line.lineNo,
                           "li requires a literal constant, got '" +
                               line.operands[1] + "'");
            *words = (*value >= immMin(kImmBitsI) &&
                      *value <= immMax(kImmBitsI))
                         ? 1
                         : 2;
            return true;
        }
        if (m == "la") {
            *words = 2;
            return true;
        }
        *words = 1;
        return true;
    }

    bool
    pass1()
    {
        int section = 0;
        u32 offset[2] = {0, 0};
        for (const auto &line : lines_) {
            const std::string &m = line.mnem;
            if (m == ":label") {
                const std::string &name = line.operands[0];
                if (symbols_.count(name))
                    return err(line.lineNo,
                               "duplicate label '" + name + "'");
                symbols_[name] = Symbol{section, offset[section]};
            } else if (m == ".text") {
                section = 0;
            } else if (m == ".data") {
                section = 1;
            } else if (m == ".align") {
                s64 alignment = 0;
                if (line.operands.size() != 1 ||
                    !(parseInt(line.operands[0]) &&
                      (alignment = *parseInt(line.operands[0])) > 0) ||
                    !isPow2(static_cast<u64>(alignment)))
                    return err(line.lineNo, ".align needs a power of two");
                offset[section] = static_cast<u32>(roundUp(
                    offset[section], static_cast<u64>(alignment)));
            } else if (m == ".space") {
                auto count = line.operands.size() == 1
                                 ? parseInt(line.operands[0])
                                 : std::nullopt;
                if (!count || *count < 0)
                    return err(line.lineNo, ".space needs a byte count");
                if (section != 1)
                    return err(line.lineNo, ".space only valid in .data");
                offset[1] += static_cast<u32>(*count);
            } else if (m == ".byte" || m == ".half" || m == ".word" ||
                       m == ".double") {
                if (section != 1)
                    return err(line.lineNo,
                               m + " only valid in .data");
                u32 unit = m == ".byte" ? 1 : m == ".half" ? 2
                           : m == ".word" ? 4 : 8;
                offset[1] = static_cast<u32>(roundUp(offset[1], unit));
                offset[1] += unit * static_cast<u32>(line.operands.size());
            } else if (m == ".asciz") {
                if (section != 1)
                    return err(line.lineNo, ".asciz only valid in .data");
                std::string text;
                if (!parseString(line, &text))
                    return false;
                offset[1] += static_cast<u32>(text.size()) + 1;
            } else {
                if (section != 0)
                    return err(line.lineNo,
                               "instruction outside .text: " + m);
                u32 words = 0;
                if (!instrWords(line, &words))
                    return false;
                offset[0] += words * 4;
            }
        }
        textBytes_ = offset[0];
        dataBase_ = static_cast<u32>(
            roundUp(prog_.textBase + textBytes_, 64));
        return true;
    }

    bool
    parseString(const ParsedLine &line, std::string *out)
    {
        if (line.operands.size() != 1)
            return err(line.lineNo, ".asciz needs one string");
        const std::string &raw = line.operands[0];
        if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"')
            return err(line.lineNo, "expected a quoted string");
        out->clear();
        for (size_t i = 1; i + 1 < raw.size(); ++i) {
            char c = raw[i];
            if (c == '\\' && i + 2 < raw.size()) {
                ++i;
                switch (raw[i]) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case '0': c = '\0'; break;
                  case '\\': c = '\\'; break;
                  case '"': c = '"'; break;
                  default:
                    return err(line.lineNo, "bad escape in string");
                }
            }
            *out += c;
        }
        return true;
    }

    // --- Pass 2: emission -------------------------------------------------

    void
    emit(const Instr &instr)
    {
        prog_.text.push_back(encodeOrDie(instr));
    }

    bool
    emitChecked(int lineNo, const Instr &instr)
    {
        u32 word = 0;
        if (!encode(instr, &word))
            return err(lineNo,
                       strprintf("operand out of range for %s "
                                 "(rd=%u ra=%u rb=%u imm=%d)",
                                 mnemonic(instr.op), instr.rd, instr.ra,
                                 instr.rb, instr.imm));
        prog_.text.push_back(word);
        return true;
    }

    /** Convert a 13-bit logical immediate (0..8191) to its signed field. */
    static s32
    logicalField(u32 low13)
    {
        return low13 >= 4096 ? static_cast<s32>(low13) - 8192
                             : static_cast<s32>(low13);
    }

    u32 pc() const { return prog_.textBase + prog_.textBytes(); }

    bool
    emitLoadImm(int lineNo, u8 rd, s64 value)
    {
        if (value >= immMin(kImmBitsI) && value <= immMax(kImmBitsI)) {
            emit({Opcode::Addi, rd, 0, 0, static_cast<s32>(value)});
            return true;
        }
        u32 uvalue = static_cast<u32>(value);
        emit({Opcode::Lui, rd, 0, 0,
              static_cast<s32>((uvalue >> 13) & 0x7FFFF)});
        emit({Opcode::Ori, rd, rd, 0, logicalField(uvalue & 0x1FFF)});
        return true;
    }

    bool
    branchOffset(int lineNo, const std::string &token, unsigned bits,
                 s32 *out)
    {
        s64 target = 0;
        if (!resolveValue(lineNo, token, &target))
            return false;
        s64 delta = target - (static_cast<s64>(pc()) + 4);
        if (delta % 4 != 0)
            return err(lineNo, "misaligned branch target");
        s64 offsetWords = delta / 4;
        if (offsetWords < immMin(bits) || offsetWords > immMax(bits))
            return err(lineNo, "branch target out of range");
        *out = static_cast<s32>(offsetWords);
        return true;
    }

    bool
    pass2()
    {
        int section = 0;
        // Re-derive data emission with alignment mirrored from pass 1.
        for (const auto &line : lines_) {
            const std::string &m = line.mnem;
            if (m == ":label" || m == ".text" || m == ".data") {
                if (m == ".text")
                    section = 0;
                if (m == ".data")
                    section = 1;
                continue;
            }
            if (m == ".align") {
                u32 alignment =
                    static_cast<u32>(*parseInt(line.operands[0]));
                if (section == 0) {
                    while (prog_.textBytes() % alignment != 0)
                        emit({Opcode::Nop, 0, 0, 0, 0});
                } else {
                    while (prog_.data.size() % alignment != 0)
                        prog_.data.push_back(0);
                }
                continue;
            }
            if (m == ".space") {
                prog_.data.insert(prog_.data.end(),
                                  static_cast<size_t>(
                                      *parseInt(line.operands[0])),
                                  0);
                continue;
            }
            if (m == ".byte" || m == ".half" || m == ".word") {
                u32 unit = m == ".byte" ? 1 : m == ".half" ? 2 : 4;
                while (prog_.data.size() % unit != 0)
                    prog_.data.push_back(0);
                for (const auto &operand : line.operands) {
                    s64 value = 0;
                    if (!resolveValue(line.lineNo, operand, &value))
                        return false;
                    for (u32 i = 0; i < unit; ++i)
                        prog_.data.push_back(
                            static_cast<u8>(value >> (8 * i)));
                }
                continue;
            }
            if (m == ".double") {
                while (prog_.data.size() % 8 != 0)
                    prog_.data.push_back(0);
                for (const auto &operand : line.operands) {
                    char *end = nullptr;
                    double value = std::strtod(operand.c_str(), &end);
                    if (end == operand.c_str() || *end != '\0')
                        return err(line.lineNo,
                                   "bad double literal '" + operand + "'");
                    u64 raw;
                    std::memcpy(&raw, &value, 8);
                    for (u32 i = 0; i < 8; ++i)
                        prog_.data.push_back(
                            static_cast<u8>(raw >> (8 * i)));
                }
                continue;
            }
            if (m == ".asciz") {
                std::string text;
                if (!parseString(line, &text))
                    return false;
                for (char c : text)
                    prog_.data.push_back(static_cast<u8>(c));
                prog_.data.push_back(0);
                continue;
            }
            if (!emitInstruction(line))
                return false;
        }
        if (prog_.textBytes() != textBytes_)
            panic("pass size mismatch: pass1 %u bytes, pass2 %u bytes",
                  textBytes_, prog_.textBytes());
        prog_.dataBase = dataBase_;
        for (const auto &[name, sym] : symbols_)
            prog_.symbols[name] = sym.section == 0
                                      ? prog_.textBase + sym.offset
                                      : dataBase_ + sym.offset;
        prog_.entry = prog_.hasSymbol("start") ? prog_.symbol("start")
                                               : prog_.textBase;
        return true;
    }

    bool
    needOperands(const ParsedLine &line, size_t count)
    {
        if (line.operands.size() != count)
            return err(line.lineNo,
                       strprintf("%s expects %zu operands, got %zu",
                                 line.mnem.c_str(), count,
                                 line.operands.size()));
        return true;
    }

    bool
    getReg(const ParsedLine &line, size_t index, u8 *out)
    {
        auto reg = parseReg(line.operands[index]);
        if (!reg)
            return err(line.lineNo, "bad register '" +
                                        line.operands[index] + "'");
        *out = *reg;
        return true;
    }

    bool
    emitInstruction(const ParsedLine &line)
    {
        const std::string &m = line.mnem;
        const int ln = line.lineNo;

        // ---- Pseudo-instructions ----
        if (m == "li") {
            u8 rd;
            if (!needOperands(line, 2) || !getReg(line, 0, &rd))
                return false;
            auto value = parseInt(line.operands[1]);
            return emitLoadImm(ln, rd, *value);
        }
        if (m == "la") {
            u8 rd;
            if (!needOperands(line, 2) || !getReg(line, 0, &rd))
                return false;
            s64 addr = 0;
            if (!resolveValue(ln, line.operands[1], &addr))
                return false;
            u32 uaddr = static_cast<u32>(addr);
            emit({Opcode::Lui, rd, 0, 0,
                  static_cast<s32>((uaddr >> 13) & 0x7FFFF)});
            emit({Opcode::Ori, rd, rd, 0, logicalField(uaddr & 0x1FFF)});
            return true;
        }
        if (m == "mv") {
            u8 rd, ra;
            if (!needOperands(line, 2) || !getReg(line, 0, &rd) ||
                !getReg(line, 1, &ra))
                return false;
            emit({Opcode::Addi, rd, ra, 0, 0});
            return true;
        }
        if (m == "not") {
            u8 rd, ra;
            if (!needOperands(line, 2) || !getReg(line, 0, &rd) ||
                !getReg(line, 1, &ra))
                return false;
            emit({Opcode::Nor, rd, ra, 0, 0});
            return true;
        }
        if (m == "neg") {
            u8 rd, ra;
            if (!needOperands(line, 2) || !getReg(line, 0, &rd) ||
                !getReg(line, 1, &ra))
                return false;
            emit({Opcode::Sub, rd, 0, ra, 0});
            return true;
        }
        if (m == "subi") {
            u8 rd, ra;
            if (!needOperands(line, 3) || !getReg(line, 0, &rd) ||
                !getReg(line, 1, &ra))
                return false;
            auto value = parseInt(line.operands[2]);
            if (!value)
                return err(ln, "subi needs a literal");
            return emitChecked(ln, {Opcode::Addi, rd, ra, 0,
                                    static_cast<s32>(-*value)});
        }
        if (m == "b") {
            if (!needOperands(line, 1))
                return false;
            s32 offsetWords = 0;
            if (!branchOffset(ln, line.operands[0], kImmBitsJ,
                              &offsetWords))
                return false;
            emit({Opcode::Jal, 0, 0, 0, offsetWords});
            return true;
        }
        if (m == "beqz" || m == "bnez") {
            u8 ra;
            if (!needOperands(line, 2) || !getReg(line, 0, &ra))
                return false;
            s32 offsetWords = 0;
            if (!branchOffset(ln, line.operands[1], kImmBitsI,
                              &offsetWords))
                return false;
            emit({m == "beqz" ? Opcode::Beq : Opcode::Bne, 0, ra, 0,
                  offsetWords});
            return true;
        }
        if (m == "call") {
            if (!needOperands(line, 1))
                return false;
            s32 offsetWords = 0;
            if (!branchOffset(ln, line.operands[0], kImmBitsJ,
                              &offsetWords))
                return false;
            emit({Opcode::Jal, kLinkReg, 0, 0, offsetWords});
            return true;
        }
        if (m == "ret") {
            emit({Opcode::Jalr, 0, kLinkReg, 0, 0});
            return true;
        }
        if (m == "rdcounter") {
            // rdcounter rd, <name|index>: read a performance counter
            // SPR. The operand is a counter name (cycles, instret,
            // dhit, dmiss, imiss, bankstall, fpustall, barrier) or a
            // counter index 0..7.
            u8 rd;
            if (!needOperands(line, 2) || !getReg(line, 0, &rd))
                return false;
            unsigned spr;
            if (!counterFromName(line.operands[1], &spr)) {
                auto index = parseInt(line.operands[1]);
                if (!index || *index < 0 || *index >= kNumCounterSprs)
                    return err(ln, "unknown counter '" +
                                       line.operands[1] + "'");
                spr = kSprCntBase + unsigned(*index);
            }
            emit({Opcode::Mfspr, rd, 0, 0, static_cast<s32>(spr)});
            return true;
        }

        // ---- Real instructions ----
        Opcode op;
        if (!opcodeFromMnemonic(m, &op))
            return err(ln, "unknown mnemonic '" + m + "'");
        const InstrMeta &md = meta(op);
        Instr instr;
        instr.op = op;

        switch (md.format) {
          case Format::R: {
            if (md.unit == UnitClass::Misc || md.unit == UnitClass::Sync) {
                if (!needOperands(line, 0))
                    return false;
                return emitChecked(ln, instr);
            }
            size_t count = 1 + (md.readsRa ? 1 : 0) + (md.readsRb ? 1 : 0);
            if (!needOperands(line, count))
                return false;
            size_t index = 0;
            if (!getReg(line, index++, &instr.rd))
                return false;
            if (md.readsRa && !getReg(line, index++, &instr.ra))
                return false;
            if (md.readsRb && !getReg(line, index++, &instr.rb))
                return false;
            return emitChecked(ln, instr);
          }
          case Format::I: {
            if (op == Opcode::Halt) {
                return emitChecked(ln, instr);
            }
            if (op == Opcode::Trap) {
                if (!needOperands(line, 1))
                    return false;
                auto code = parseInt(line.operands[0]);
                if (!code)
                    return err(ln, "trap needs a literal code");
                instr.imm = static_cast<s32>(*code);
                return emitChecked(ln, instr);
            }
            if (op == Opcode::Mfspr) {
                if (!needOperands(line, 2) || !getReg(line, 0, &instr.rd))
                    return false;
                auto spr = parseInt(line.operands[1]);
                if (!spr)
                    return err(ln, "mfspr needs an SPR number");
                instr.imm = static_cast<s32>(*spr);
                return emitChecked(ln, instr);
            }
            if (op == Opcode::Mtspr) {
                if (!needOperands(line, 2))
                    return false;
                auto spr = parseInt(line.operands[0]);
                if (!spr)
                    return err(ln, "mtspr needs an SPR number");
                if (!getReg(line, 1, &instr.ra))
                    return false;
                instr.imm = static_cast<s32>(*spr);
                return emitChecked(ln, instr);
            }
            if (md.memBytes != 0 || md.unit == UnitClass::CacheOp) {
                // lw rd, disp(ra) / sw rd, disp(ra) / dcbf disp(ra)
                size_t memIndex = 0;
                if (md.unit != UnitClass::CacheOp) {
                    if (!needOperands(line, 2) ||
                        !getReg(line, 0, &instr.rd))
                        return false;
                    memIndex = 1;
                } else if (!needOperands(line, 1)) {
                    return false;
                }
                s64 disp = 0;
                if (!parseMemOperand(ln, line.operands[memIndex], &disp,
                                     &instr.ra))
                    return false;
                if (disp < immMin(kImmBitsI) || disp > immMax(kImmBitsI))
                    return err(ln, "displacement out of range");
                instr.imm = static_cast<s32>(disp);
                return emitChecked(ln, instr);
            }
            if (op == Opcode::Jalr) {
                if (!needOperands(line, 3) ||
                    !getReg(line, 0, &instr.rd) ||
                    !getReg(line, 1, &instr.ra))
                    return false;
                auto disp = parseInt(line.operands[2]);
                if (!disp)
                    return err(ln, "jalr needs a literal displacement");
                instr.imm = static_cast<s32>(*disp);
                return emitChecked(ln, instr);
            }
            // ALU immediate.
            if (!needOperands(line, 3) || !getReg(line, 0, &instr.rd) ||
                !getReg(line, 1, &instr.ra))
                return false;
            auto value = parseInt(line.operands[2]);
            if (!value)
                return err(ln, "expected an integer literal");
            s64 field = *value;
            if ((op == Opcode::Andi || op == Opcode::Ori ||
                 op == Opcode::Xori) &&
                field >= 4096 && field <= 8191)
                field -= 8192;
            if (field < immMin(kImmBitsI) || field > immMax(kImmBitsI))
                return err(ln, "immediate out of range");
            instr.imm = static_cast<s32>(field);
            return emitChecked(ln, instr);
          }
          case Format::B: {
            if (!needOperands(line, 3) || !getReg(line, 0, &instr.ra) ||
                !getReg(line, 1, &instr.rb))
                return false;
            s32 offsetWords = 0;
            if (!branchOffset(ln, line.operands[2], kImmBitsI,
                              &offsetWords))
                return false;
            instr.imm = offsetWords;
            return emitChecked(ln, instr);
          }
          case Format::J: {
            if (!needOperands(line, 2) || !getReg(line, 0, &instr.rd))
                return false;
            s32 offsetWords = 0;
            if (!branchOffset(ln, line.operands[1], kImmBitsJ,
                              &offsetWords))
                return false;
            instr.imm = offsetWords;
            return emitChecked(ln, instr);
          }
          case Format::U: {
            if (!needOperands(line, 2) || !getReg(line, 0, &instr.rd))
                return false;
            auto value = parseInt(line.operands[1]);
            if (!value || *value < 0 || *value >= (1 << kImmBitsU))
                return err(ln, "lui immediate must be in [0, 2^19)");
            instr.imm = static_cast<s32>(*value);
            return emitChecked(ln, instr);
          }
        }
        return err(ln, "unhandled format");
    }

    std::vector<ParsedLine> lines_;
    std::map<std::string, Symbol> symbols_;
    std::string error_;
    Program prog_;
    u32 textBytes_ = 0;
    u32 dataBase_ = 0;
};

} // namespace

AsmResult
assemble(const std::string &source, u32 textBase)
{
    Assembler assembler(textBase);
    return assembler.run(source);
}

Program
assembleOrDie(const std::string &source, u32 textBase)
{
    AsmResult result = assemble(source, textBase);
    if (!result.ok)
        fatal("assembly failed: %s", result.error.c_str());
    return std::move(result.program);
}

} // namespace cyclops::isa
