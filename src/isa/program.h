/**
 * @file
 * A loadable Cyclops program image: text, data, symbols, entry point.
 */

#ifndef CYCLOPS_ISA_PROGRAM_H
#define CYCLOPS_ISA_PROGRAM_H

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace cyclops::isa
{

/**
 * An assembled program.
 *
 * Text is placed at @ref textBase (word-addressable machine code); data
 * follows at @ref dataBase. Addresses in the image are plain physical
 * addresses (no interest-group bits); the loader and running code apply
 * cache-placement encodings as needed.
 */
class Program
{
  public:
    static constexpr u32 kDefaultTextBase = 0x0000'0000;

    std::vector<u32> text;   ///< machine words
    std::vector<u8> data;    ///< initialized data image
    u32 textBase = kDefaultTextBase;
    u32 dataBase = 0;        ///< assigned by the assembler/builder
    u32 entry = kDefaultTextBase;
    std::map<std::string, u32> symbols;

    /** Total bytes of the text section. */
    u32 textBytes() const { return static_cast<u32>(text.size()) * 4; }

    /** Address of a named symbol; fatal() if missing. */
    u32 symbol(const std::string &name) const;

    /** True if the symbol exists. */
    bool hasSymbol(const std::string &name) const;
};

} // namespace cyclops::isa

#endif // CYCLOPS_ISA_PROGRAM_H
