/**
 * @file
 * ProgramBuilder: a C++ macro-assembler for generating Cyclops programs
 * programmatically (the role the paper's GNU cross-compiler plays).
 *
 * Workload generators use it to emit hand-scheduled kernels — e.g. the
 * hand-unrolled STREAM loops of Section 3.2 — with labels resolved at
 * finish() time and data buffers allocated in the image.
 *
 * The data section base is fixed at construction so that allocData()
 * returns final physical addresses immediately; generated code can
 * therefore embed buffer addresses as li constants.
 */

#ifndef CYCLOPS_ISA_BUILDER_H
#define CYCLOPS_ISA_BUILDER_H

#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/program.h"

namespace cyclops::isa
{

/** Builds one program image instruction by instruction. */
class ProgramBuilder
{
  public:
    /** Opaque forward-referenceable code label. */
    struct Label
    {
        u32 id = ~0u;
    };

    static constexpr u32 kDefaultDataBase = 0x0001'0000; ///< 64 KB of text

    explicit ProgramBuilder(u32 textBase = Program::kDefaultTextBase,
                            u32 dataBase = kDefaultDataBase)
        : textBase_(textBase), dataBase_(dataBase)
    {}

    // --- Labels -----------------------------------------------------------

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current emission point. */
    void bind(Label label);

    /** Address of the next instruction to be emitted. */
    u32 here() const { return textBase_ + u32(instrs_.size()) * 4; }

    // --- Generic emitters ---------------------------------------------------

    void emitR(Opcode op, u8 rd, u8 ra, u8 rb);
    void emitI(Opcode op, u8 rd, u8 ra, s32 imm);
    void emitBranch(Opcode op, u8 ra, u8 rb, Label target);
    void emitJal(u8 rd, Label target);

    // --- Common instruction helpers ------------------------------------------

    void add(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Add, rd, ra, rb); }
    void sub(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Sub, rd, ra, rb); }
    void mul(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Mul, rd, ra, rb); }
    void divu(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Divu, rd, ra, rb); }
    void and_(u8 rd, u8 ra, u8 rb) { emitR(Opcode::And, rd, ra, rb); }
    void or_(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Or, rd, ra, rb); }
    void xor_(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Xor, rd, ra, rb); }
    void sll(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Sll, rd, ra, rb); }
    void srl(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Srl, rd, ra, rb); }
    void slt(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Slt, rd, ra, rb); }
    void sltu(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Sltu, rd, ra, rb); }

    void addi(u8 rd, u8 ra, s32 imm) { emitI(Opcode::Addi, rd, ra, imm); }
    void slli(u8 rd, u8 ra, s32 sh) { emitI(Opcode::Slli, rd, ra, sh); }
    void srli(u8 rd, u8 ra, s32 sh) { emitI(Opcode::Srli, rd, ra, sh); }
    void andi(u8 rd, u8 ra, s32 imm) { emitI(Opcode::Andi, rd, ra, imm); }
    void ori(u8 rd, u8 ra, s32 imm) { emitI(Opcode::Ori, rd, ra, imm); }
    void mv(u8 rd, u8 ra) { addi(rd, ra, 0); }

    void lw(u8 rd, s32 disp, u8 base) { emitI(Opcode::Lw, rd, base, disp); }
    void sw(u8 rd, s32 disp, u8 base) { emitI(Opcode::Sw, rd, base, disp); }
    void ld(u8 rd, s32 disp, u8 base) { emitI(Opcode::Ld, rd, base, disp); }
    void sd(u8 rd, s32 disp, u8 base) { emitI(Opcode::Sd, rd, base, disp); }
    void ldx(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Ldx, rd, ra, rb); }
    void sdx(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Sdx, rd, ra, rb); }

    void faddd(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Faddd, rd, ra, rb); }
    void fsubd(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Fsubd, rd, ra, rb); }
    void fmuld(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Fmuld, rd, ra, rb); }
    void fdivd(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Fdivd, rd, ra, rb); }
    void fmadd(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Fmadd, rd, ra, rb); }
    void fmovd(u8 rd, u8 ra) { emitR(Opcode::Fmovd, rd, ra, 0); }

    void beq(u8 ra, u8 rb, Label t) { emitBranch(Opcode::Beq, ra, rb, t); }
    void bne(u8 ra, u8 rb, Label t) { emitBranch(Opcode::Bne, ra, rb, t); }
    void blt(u8 ra, u8 rb, Label t) { emitBranch(Opcode::Blt, ra, rb, t); }
    void bge(u8 ra, u8 rb, Label t) { emitBranch(Opcode::Bge, ra, rb, t); }
    void bltu(u8 ra, u8 rb, Label t) { emitBranch(Opcode::Bltu, ra, rb, t); }
    void jump(Label t) { emitJal(0, t); }
    void jalr(u8 rd, u8 ra, s32 imm) { emitI(Opcode::Jalr, rd, ra, imm); }

    void amoadd(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Amoadd, rd, ra, rb); }
    void amocas(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Amocas, rd, ra, rb); }
    void amoswap(u8 rd, u8 ra, u8 rb) { emitR(Opcode::Amoswap, rd, ra, rb); }
    void sync() { emitR(Opcode::Sync, 0, 0, 0); }
    void nop() { emitR(Opcode::Nop, 0, 0, 0); }
    void halt() { emitI(Opcode::Halt, 0, 0, 0); }
    void trap(u32 code) { emitI(Opcode::Trap, 0, 0, s32(code)); }
    void mfspr(u8 rd, u8 spr) { emitI(Opcode::Mfspr, rd, 0, spr); }
    void mtspr(u8 spr, u8 ra) { emitI(Opcode::Mtspr, 0, ra, spr); }

    /** rdcounter rd, idx: read performance counter @p idx (0..7). */
    void rdcounter(u8 rd, u8 idx) { mfspr(rd, u8(kSprCntBase + idx)); }

    /** Load an arbitrary 32-bit constant (1 or 2 instructions). */
    void li(u8 rd, u32 value);

    // --- Data section ---------------------------------------------------------

    /**
     * Reserve @p bytes of zeroed data with the given alignment; returns
     * the physical address of the block.
     */
    u32 allocData(u32 bytes, u32 align = 8);

    /** Write an initialized 32-bit word into previously allocated data. */
    void pokeWord(u32 addr, u32 value);

    /** Write an initialized double into previously allocated data. */
    void pokeDouble(u32 addr, double value);

    /** Export @p name = @p addr in the program's symbol table. */
    void defineSymbol(const std::string &name, u32 addr);

    // --- Finalization ------------------------------------------------------------

    /**
     * Resolve all label fixups and produce the program image. The
     * builder must not be reused afterwards. Panics if text overflows
     * into the data base or a label is unbound.
     */
    Program finish();

  private:
    struct Fixup
    {
        u32 textIndex;
        u32 labelId;
    };

    u32 textBase_;
    u32 dataBase_;
    std::vector<Instr> instrs_;
    std::vector<u32> labelAddr_; ///< ~0u while unbound
    std::vector<Fixup> fixups_;
    std::vector<u8> data_;
    std::vector<std::pair<std::string, u32>> symbols_;
    bool finished_ = false;
};

} // namespace cyclops::isa

#endif // CYCLOPS_ISA_BUILDER_H
