/**
 * @file
 * Disassembler: machine words back to assembly text.
 */

#ifndef CYCLOPS_ISA_DISASSEMBLER_H
#define CYCLOPS_ISA_DISASSEMBLER_H

#include <string>

#include "isa/isa.h"

namespace cyclops::isa
{

/** Render one decoded instruction in canonical assembler syntax. */
std::string disassemble(const Instr &instr);

/** Decode and render a machine word; ".word 0x..." if undecodable. */
std::string disassembleWord(u32 word);

} // namespace cyclops::isa

#endif // CYCLOPS_ISA_DISASSEMBLER_H
