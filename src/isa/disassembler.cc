#include "isa/disassembler.h"

#include "common/log.h"
#include "isa/encoding.h"

namespace cyclops::isa
{

std::string
disassemble(const Instr &instr)
{
    const InstrMeta &m = meta(instr.op);
    const char *name = m.mnemonic;
    switch (m.format) {
      case Format::R:
        if (m.unit == UnitClass::Misc || m.unit == UnitClass::Sync)
            return name;
        if (m.readsRa && m.readsRb)
            return strprintf("%s r%u, r%u, r%u", name, instr.rd, instr.ra,
                             instr.rb);
        if (m.readsRa)
            return strprintf("%s r%u, r%u", name, instr.rd, instr.ra);
        return strprintf("%s r%u", name, instr.rd);
      case Format::I:
        if (instr.op == Opcode::Halt)
            return name;
        if (instr.op == Opcode::Trap)
            return strprintf("%s %d", name, instr.imm);
        if (instr.op == Opcode::Mfspr) {
            // Counter-file reads print as the rdcounter pseudo-op (the
            // named form reassembles to the identical encoding).
            if (instr.imm >= s32(kSprCntBase) && instr.imm < s32(kSprCntEnd))
                return strprintf("rdcounter r%u, %s", instr.rd,
                                 counterName(unsigned(instr.imm)));
            return strprintf("%s r%u, %d", name, instr.rd, instr.imm);
        }
        if (instr.op == Opcode::Mtspr)
            return strprintf("%s %d, r%u", name, instr.imm, instr.ra);
        if (m.unit == UnitClass::CacheOp)
            return strprintf("%s %d(r%u)", name, instr.imm, instr.ra);
        if (m.memBytes != 0)
            return strprintf("%s r%u, %d(r%u)", name, instr.rd, instr.imm,
                             instr.ra);
        if (instr.op == Opcode::Jalr)
            return strprintf("%s r%u, r%u, %d", name, instr.rd, instr.ra,
                             instr.imm);
        return strprintf("%s r%u, r%u, %d", name, instr.rd, instr.ra,
                         instr.imm);
      // Branch offsets are encoded in words relative to the next
      // instruction; print them as pc-relative byte targets (".+8",
      // ".-12") so the output reassembles to the identical encoding.
      case Format::B:
        return strprintf("%s r%u, r%u, .%+d", name, instr.ra, instr.rb,
                         4 + instr.imm * 4);
      case Format::J:
        return strprintf("%s r%u, .%+d", name, instr.rd,
                         4 + instr.imm * 4);
      case Format::U:
        return strprintf("%s r%u, %d", name, instr.rd, instr.imm);
    }
    panic("unreachable format");
}

std::string
disassembleWord(u32 word)
{
    Instr instr;
    if (!decode(word, &instr))
        return strprintf(".word 0x%08x", word);
    return disassemble(instr);
}

} // namespace cyclops::isa
