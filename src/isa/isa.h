/**
 * @file
 * The Cyclops instruction set architecture.
 *
 * A 32-bit, 3-operand, load/store RISC ISA of about 70 instruction
 * types, modeled on the paper's description: the most widely used
 * PowerPC-style operations plus instructions for multithreaded
 * operation (atomic memory operations, synchronization, and
 * special-purpose-register access for the hardware barrier).
 *
 * Register file: 64 x 32-bit registers per thread (r0 hardwired to
 * zero). Double-precision values live in an even/odd register pair and
 * FP-double instructions require even register operands.
 *
 * Instruction word formats (opcode always in bits [31:25]):
 *
 *   R   | op7 | rd6 | ra6 | rb6 | pad7 |         3-operand register ops
 *   I   | op7 | rd6 | ra6 | simm13     |         immediates, loads/stores
 *   B   | op7 | ra6 | rb6 | soff13     |         conditional branches
 *   J   | op7 | rd6 | soff19          |          jump-and-link
 *   U   | op7 | rd6 | uimm19          |          lui
 *
 * Branch/jump offsets are in words relative to the *next* instruction.
 */

#ifndef CYCLOPS_ISA_ISA_H
#define CYCLOPS_ISA_ISA_H

#include <string>

#include "common/types.h"

namespace cyclops::isa
{

/** Number of architectural registers per thread. */
inline constexpr unsigned kNumRegs = 64;

/** Link register used by call pseudo-instructions. */
inline constexpr unsigned kLinkReg = 63;

/** Stack pointer register by software convention. */
inline constexpr unsigned kStackReg = 1;

/**
 * Special purpose register numbers.
 *
 * SPRs 8..15 form the per-TU performance counter file (read-only,
 * low 32 bits of each count; see DESIGN.md section 12). Reads of any
 * unimplemented/reserved SPR number return 0; writes to anything but
 * the barrier register are architecturally undefined (the simulator
 * treats them as fatal).
 */
enum Spr : u8
{
    kSprTid = 0,      ///< hardware thread id (read-only)
    kSprNThreads = 1, ///< number of thread units (read-only)
    kSprCycleLo = 2,  ///< low 32 bits of the cycle counter (read-only)
    kSprCycleHi = 3,  ///< high 32 bits of the cycle counter (read-only)
    kSprBarrier = 4,  ///< 8-bit wired-OR barrier register
    kSprMemSize = 5,  ///< available memory in KB (fault remap, read-only)
    kSprChipId = 6,   ///< this chip's id in a multi-chip system (read-only)
    kSprNumChips = 7, ///< chips in the system; 1 standalone (read-only)
    kNumSprs = 8,

    // Performance counter file (rdcounter pseudo-op reads these).
    kSprCntBase = 8,
    kSprCntCycles = 8,     ///< cycles this TU has been charged
    kSprCntInstret = 9,    ///< instructions retired
    kSprCntDcacheHit = 10, ///< D-cache hits (loads/stores/atomics/pref)
    kSprCntDcacheMiss = 11, ///< D-cache misses
    kSprCntIcacheMiss = 12, ///< I-cache line misses on PIB refills
    kSprCntBankStall = 13,  ///< cycles stalled on memory-bank conflicts
    kSprCntFpuStall = 14,   ///< cycles stalled on FPU arbitration
    kSprCntBarrier = 15,    ///< cycles waiting at the hardware barrier
    kSprCntEnd = 16,
};

/** Number of performance counters in the counter file. */
inline constexpr unsigned kNumCounterSprs = kSprCntEnd - kSprCntBase;

/** Mnemonic counter name for SPR @p spr in [kSprCntBase, kSprCntEnd). */
const char *counterName(unsigned spr);

/** Look up a counter SPR by rdcounter operand name; false if unknown. */
bool counterFromName(const std::string &name, unsigned *spr);

/** Trap codes recognized by the resident kernel (I-format imm field). */
enum TrapCode : u32
{
    kTrapExit = 0,    ///< terminate this thread (same as HALT)
    kTrapPutChar = 1, ///< write low byte of r4 to the console
    kTrapPutInt = 2,  ///< write decimal value of r4 to the console
    kTrapPutHex = 3,  ///< write hex value of r4 to the console
};

/** Instruction word layout. */
enum class Format : u8 { R, I, B, J, U };

/** Execution resource an instruction occupies (for timing). */
enum class UnitClass : u8
{
    IntAlu,  ///< single-cycle integer/logic ops
    IntMul,  ///< integer multiply (pipelined in the fixed-point unit)
    IntDiv,  ///< integer divide (unpipelined)
    Branch,  ///< conditional branches and jumps
    Load,    ///< memory read
    Store,   ///< memory write
    Atomic,  ///< atomic read-modify-write
    FpAdd,   ///< FPU adder (also conversions, compares, moves)
    FpMul,   ///< FPU multiplier
    FpDiv,   ///< FPU divide unit
    FpSqrt,  ///< FPU square-root (shares the divide unit)
    Fma,     ///< fused multiply-add (adder + multiplier)
    Spr,     ///< special purpose register access
    Sync,    ///< memory fence
    CacheOp, ///< flush/invalidate/prefetch
    Misc,    ///< nop, trap, halt
};

/** Opcodes. Values are the 7-bit encodings and are ABI-stable. */
enum class Opcode : u8
{
    // Integer register-register.
    Add, Sub, Mul, Mulhu, Div, Divu,
    And, Or, Xor, Nor,
    Sll, Srl, Sra,
    Slt, Sltu,
    // Integer immediates.
    Addi, Andi, Ori, Xori,
    Slli, Srli, Srai,
    Slti, Sltiu, Lui,
    // Control transfer.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Jal, Jalr,
    Halt, Trap,
    // Memory.
    Lb, Lbu, Lh, Lhu, Lw,
    Sb, Sh, Sw,
    Ld, Sd,
    Lwx, Swx, Ldx, Sdx,
    // Atomics and ordering.
    Amoadd, Amoswap, Amocas, Amotas,
    Sync,
    // Floating point, double precision (even register pairs).
    Faddd, Fsubd, Fmuld, Fdivd, Fsqrtd,
    Fmadd, Fmsub,
    Fnegd, Fabsd, Fmovd,
    // Floating point, single precision.
    Fadds, Fsubs, Fmuls,
    // Conversions and compares (int register <-> double pair).
    Fcvtdw, Fcvtwd,
    Fclt, Fcle, Fceq,
    // Special purpose registers and cache control.
    Mfspr, Mtspr,
    Pref, Dcbf, Dcbi,
    Nop,
    kNumOpcodes,
};

inline constexpr unsigned kNumOpcodes =
    static_cast<unsigned>(Opcode::kNumOpcodes);

/** Static properties of one opcode. */
struct InstrMeta
{
    const char *mnemonic;
    Format format;
    UnitClass unit;
    bool readsRa;    ///< ra is a source register
    bool readsRb;    ///< rb is a source register
    bool readsRd;    ///< rd is also a source (stores, fmadd, amocas)
    bool writesRd;   ///< rd is written
    bool fpPairRd;   ///< rd names an even/odd pair
    bool fpPairRa;   ///< ra names an even/odd pair
    bool fpPairRb;   ///< rb names an even/odd pair
    u8 memBytes;     ///< access size for memory ops, else 0
};

/** Metadata for @p op. */
const InstrMeta &meta(Opcode op);

/** Mnemonic for @p op. */
const char *mnemonic(Opcode op);

/** Look up an opcode by mnemonic; returns false if unknown. */
bool opcodeFromMnemonic(const std::string &name, Opcode *out);

/** True for loads, stores and atomics. */
bool isMemOp(Opcode op);

/** True if the opcode is a load (including atomics' read half). */
bool isLoad(Opcode op);

/** True if the opcode writes memory. */
bool isStore(Opcode op);

/** True for conditional branches and jumps. */
bool isControl(Opcode op);

/**
 * A decoded instruction. The simulator predecodes program text into
 * these; the encoder/decoder translates between this form and the
 * 32-bit machine word.
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    u8 rd = 0;
    u8 ra = 0;
    u8 rb = 0;
    s32 imm = 0;

    bool
    operator==(const Instr &other) const
    {
        return op == other.op && rd == other.rd && ra == other.ra &&
               rb == other.rb && imm == other.imm;
    }
};

} // namespace cyclops::isa

#endif // CYCLOPS_ISA_ISA_H
