#include "isa/isa.h"

#include <unordered_map>

#include "common/log.h"

namespace cyclops::isa
{

namespace
{

using F = Format;
using U = UnitClass;

// Compact initializer:         mnem    fmt  unit  rA rB rD wD  pD pA pB  mem
constexpr InstrMeta kMeta[kNumOpcodes] = {
    /* Add    */ {"add",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Sub    */ {"sub",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Mul    */ {"mul",    F::R, U::IntMul, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Mulhu  */ {"mulhu",  F::R, U::IntMul, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Div    */ {"div",    F::R, U::IntDiv, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Divu   */ {"divu",   F::R, U::IntDiv, 1, 1, 0, 1, 0, 0, 0, 0},
    /* And    */ {"and",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Or     */ {"or",     F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Xor    */ {"xor",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Nor    */ {"nor",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Sll    */ {"sll",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Srl    */ {"srl",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Sra    */ {"sra",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Slt    */ {"slt",    F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Sltu   */ {"sltu",   F::R, U::IntAlu, 1, 1, 0, 1, 0, 0, 0, 0},
    /* Addi   */ {"addi",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Andi   */ {"andi",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Ori    */ {"ori",    F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Xori   */ {"xori",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Slli   */ {"slli",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Srli   */ {"srli",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Srai   */ {"srai",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Slti   */ {"slti",   F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Sltiu  */ {"sltiu",  F::I, U::IntAlu, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Lui    */ {"lui",    F::U, U::IntAlu, 0, 0, 0, 1, 0, 0, 0, 0},
    /* Beq    */ {"beq",    F::B, U::Branch, 1, 1, 0, 0, 0, 0, 0, 0},
    /* Bne    */ {"bne",    F::B, U::Branch, 1, 1, 0, 0, 0, 0, 0, 0},
    /* Blt    */ {"blt",    F::B, U::Branch, 1, 1, 0, 0, 0, 0, 0, 0},
    /* Bge    */ {"bge",    F::B, U::Branch, 1, 1, 0, 0, 0, 0, 0, 0},
    /* Bltu   */ {"bltu",   F::B, U::Branch, 1, 1, 0, 0, 0, 0, 0, 0},
    /* Bgeu   */ {"bgeu",   F::B, U::Branch, 1, 1, 0, 0, 0, 0, 0, 0},
    /* Jal    */ {"jal",    F::J, U::Branch, 0, 0, 0, 1, 0, 0, 0, 0},
    /* Jalr   */ {"jalr",   F::I, U::Branch, 1, 0, 0, 1, 0, 0, 0, 0},
    /* Halt   */ {"halt",   F::I, U::Misc,   0, 0, 0, 0, 0, 0, 0, 0},
    /* Trap   */ {"trap",   F::I, U::Misc,   0, 0, 0, 0, 0, 0, 0, 0},
    /* Lb     */ {"lb",     F::I, U::Load,   1, 0, 0, 1, 0, 0, 0, 1},
    /* Lbu    */ {"lbu",    F::I, U::Load,   1, 0, 0, 1, 0, 0, 0, 1},
    /* Lh     */ {"lh",     F::I, U::Load,   1, 0, 0, 1, 0, 0, 0, 2},
    /* Lhu    */ {"lhu",    F::I, U::Load,   1, 0, 0, 1, 0, 0, 0, 2},
    /* Lw     */ {"lw",     F::I, U::Load,   1, 0, 0, 1, 0, 0, 0, 4},
    /* Sb     */ {"sb",     F::I, U::Store,  1, 0, 1, 0, 0, 0, 0, 1},
    /* Sh     */ {"sh",     F::I, U::Store,  1, 0, 1, 0, 0, 0, 0, 2},
    /* Sw     */ {"sw",     F::I, U::Store,  1, 0, 1, 0, 0, 0, 0, 4},
    /* Ld     */ {"ld",     F::I, U::Load,   1, 0, 0, 1, 1, 0, 0, 8},
    /* Sd     */ {"sd",     F::I, U::Store,  1, 0, 1, 0, 1, 0, 0, 8},
    /* Lwx    */ {"lwx",    F::R, U::Load,   1, 1, 0, 1, 0, 0, 0, 4},
    /* Swx    */ {"swx",    F::R, U::Store,  1, 1, 1, 0, 0, 0, 0, 4},
    /* Ldx    */ {"ldx",    F::R, U::Load,   1, 1, 0, 1, 1, 0, 0, 8},
    /* Sdx    */ {"sdx",    F::R, U::Store,  1, 1, 1, 0, 1, 0, 0, 8},
    /* Amoadd */ {"amoadd", F::R, U::Atomic, 1, 1, 0, 1, 0, 0, 0, 4},
    /* Amoswap*/ {"amoswap",F::R, U::Atomic, 1, 1, 0, 1, 0, 0, 0, 4},
    /* Amocas */ {"amocas", F::R, U::Atomic, 1, 1, 1, 1, 0, 0, 0, 4},
    /* Amotas */ {"amotas", F::R, U::Atomic, 1, 0, 0, 1, 0, 0, 0, 4},
    /* Sync   */ {"sync",   F::R, U::Sync,   0, 0, 0, 0, 0, 0, 0, 0},
    /* Faddd  */ {"faddd",  F::R, U::FpAdd,  1, 1, 0, 1, 1, 1, 1, 0},
    /* Fsubd  */ {"fsubd",  F::R, U::FpAdd,  1, 1, 0, 1, 1, 1, 1, 0},
    /* Fmuld  */ {"fmuld",  F::R, U::FpMul,  1, 1, 0, 1, 1, 1, 1, 0},
    /* Fdivd  */ {"fdivd",  F::R, U::FpDiv,  1, 1, 0, 1, 1, 1, 1, 0},
    /* Fsqrtd */ {"fsqrtd", F::R, U::FpSqrt, 1, 0, 0, 1, 1, 1, 0, 0},
    /* Fmadd  */ {"fmadd",  F::R, U::Fma,    1, 1, 1, 1, 1, 1, 1, 0},
    /* Fmsub  */ {"fmsub",  F::R, U::Fma,    1, 1, 1, 1, 1, 1, 1, 0},
    /* Fnegd  */ {"fnegd",  F::R, U::FpAdd,  1, 0, 0, 1, 1, 1, 0, 0},
    /* Fabsd  */ {"fabsd",  F::R, U::FpAdd,  1, 0, 0, 1, 1, 1, 0, 0},
    /* Fmovd  */ {"fmovd",  F::R, U::FpAdd,  1, 0, 0, 1, 1, 1, 0, 0},
    /* Fadds  */ {"fadds",  F::R, U::FpAdd,  1, 1, 0, 1, 0, 0, 0, 0},
    /* Fsubs  */ {"fsubs",  F::R, U::FpAdd,  1, 1, 0, 1, 0, 0, 0, 0},
    /* Fmuls  */ {"fmuls",  F::R, U::FpMul,  1, 1, 0, 1, 0, 0, 0, 0},
    /* Fcvtdw */ {"fcvtdw", F::R, U::FpAdd,  1, 0, 0, 1, 1, 0, 0, 0},
    /* Fcvtwd */ {"fcvtwd", F::R, U::FpAdd,  1, 0, 0, 1, 0, 1, 0, 0},
    /* Fclt   */ {"fclt",   F::R, U::FpAdd,  1, 1, 0, 1, 0, 1, 1, 0},
    /* Fcle   */ {"fcle",   F::R, U::FpAdd,  1, 1, 0, 1, 0, 1, 1, 0},
    /* Fceq   */ {"fceq",   F::R, U::FpAdd,  1, 1, 0, 1, 0, 1, 1, 0},
    /* Mfspr  */ {"mfspr",  F::I, U::Spr,    0, 0, 0, 1, 0, 0, 0, 0},
    /* Mtspr  */ {"mtspr",  F::I, U::Spr,    1, 0, 0, 0, 0, 0, 0, 0},
    /* Pref   */ {"pref",   F::I, U::CacheOp,1, 0, 0, 0, 0, 0, 0, 0},
    /* Dcbf   */ {"dcbf",   F::I, U::CacheOp,1, 0, 0, 0, 0, 0, 0, 0},
    /* Dcbi   */ {"dcbi",   F::I, U::CacheOp,1, 0, 0, 0, 0, 0, 0, 0},
    /* Nop    */ {"nop",    F::R, U::Misc,   0, 0, 0, 0, 0, 0, 0, 0},
};

const std::unordered_map<std::string, Opcode> &
mnemonicMap()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string, Opcode>;
        for (unsigned i = 0; i < kNumOpcodes; ++i)
            (*m)[kMeta[i].mnemonic] = static_cast<Opcode>(i);
        return m;
    }();
    return *map;
}

} // namespace

const InstrMeta &
meta(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    if (idx >= kNumOpcodes)
        panic("invalid opcode %u", idx);
    return kMeta[idx];
}

const char *
mnemonic(Opcode op)
{
    return meta(op).mnemonic;
}

bool
opcodeFromMnemonic(const std::string &name, Opcode *out)
{
    auto it = mnemonicMap().find(name);
    if (it == mnemonicMap().end())
        return false;
    *out = it->second;
    return true;
}

namespace
{

/** Operand names for the rdcounter pseudo-op, indexed from kSprCntBase. */
const char *const kCounterNames[kNumCounterSprs] = {
    "cycles", "instret", "dhit", "dmiss",
    "imiss", "bankstall", "fpustall", "barrier",
};

} // namespace

const char *
counterName(unsigned spr)
{
    if (spr < kSprCntBase || spr >= kSprCntEnd)
        panic("SPR %u is not a performance counter", spr);
    return kCounterNames[spr - kSprCntBase];
}

bool
counterFromName(const std::string &name, unsigned *spr)
{
    for (unsigned i = 0; i < kNumCounterSprs; ++i) {
        if (name == kCounterNames[i]) {
            *spr = kSprCntBase + i;
            return true;
        }
    }
    return false;
}

bool
isMemOp(Opcode op)
{
    auto unit = meta(op).unit;
    return unit == UnitClass::Load || unit == UnitClass::Store ||
           unit == UnitClass::Atomic;
}

bool
isLoad(Opcode op)
{
    auto unit = meta(op).unit;
    return unit == UnitClass::Load || unit == UnitClass::Atomic;
}

bool
isStore(Opcode op)
{
    auto unit = meta(op).unit;
    return unit == UnitClass::Store || unit == UnitClass::Atomic;
}

bool
isControl(Opcode op)
{
    return meta(op).unit == UnitClass::Branch;
}

} // namespace cyclops::isa
