#include "workloads/splash.h"

#include "common/log.h"

namespace cyclops::workloads
{

const char *
splashAppName(SplashApp app)
{
    switch (app) {
      case SplashApp::Barnes: return "Barnes";
      case SplashApp::Fft: return "FFT";
      case SplashApp::Fmm: return "FMM";
      case SplashApp::Lu: return "LU";
      case SplashApp::Ocean: return "Ocean";
      case SplashApp::Radix: return "Radix";
    }
    return "?";
}

u32
splashDefaultSize(SplashApp app)
{
    switch (app) {
      case SplashApp::Barnes: return 2048;   // bodies
      case SplashApp::Fft: return 65536;     // complex points
      case SplashApp::Fmm: return 2048;      // particles
      case SplashApp::Lu: return 384;        // matrix order
      case SplashApp::Ocean: return 130;     // grid edge
      case SplashApp::Radix: return 262144;  // keys
    }
    return 0;
}

SplashResult
runSplash(const SplashConfig &cfg, const ChipConfig &chipCfg)
{
    const u32 size = cfg.size ? cfg.size : splashDefaultSize(cfg.app);
    switch (cfg.app) {
      case SplashApp::Barnes:
        return runBarnes(cfg.threads, size, cfg.barrier, chipCfg);
      case SplashApp::Fft:
        return runFft(cfg.threads, size, cfg.barrier, chipCfg);
      case SplashApp::Fmm:
        return runFmm(cfg.threads, size, cfg.barrier, chipCfg);
      case SplashApp::Lu:
        return runLu(cfg.threads, size, cfg.barrier, chipCfg);
      case SplashApp::Ocean:
        return runOcean(cfg.threads, size, cfg.barrier, chipCfg);
      case SplashApp::Radix:
        return runRadix(cfg.threads, size, cfg.barrier, chipCfg);
    }
    panic("unknown SplashApp");
}

namespace detail
{

void
harvest(arch::Chip &chip, SplashResult *result)
{
    result->cycles = chip.now();
    result->runCycles = chip.totalRunCycles();
    result->stallCycles = chip.totalStallCycles();
    result->instructions = chip.totalInstructions();
    result->attr = chip.chipAttribution();
    chip.writeObservability();

    StatGroup &stats = chip.stats();
    result->loads = stats.counterValue("mem.loads");
    result->stores = stats.counterValue("mem.stores");
    result->localHits = stats.counterValue("mem.localHits");
    result->remoteHits = stats.counterValue("mem.remoteHits");
    result->localMisses = stats.counterValue("mem.localMisses");
    result->remoteMisses = stats.counterValue("mem.remoteMisses");
    const ChipConfig &cfg = chip.config();
    for (u32 b = 0; b < cfg.numBanks; ++b)
        result->bankBusyCycles +=
            stats.counterValue(strprintf("bank%u.busyCycles", b));
    for (u32 c = 0; c < cfg.numCaches(); ++c)
        result->portWaitCycles += stats.counterValue(
            strprintf("dcache%u.portWaitCycles", c));
    if (const Histogram *h = stats.histogram("mem.loadLatency"))
        result->avgLoadLatency = h->mean();
}

exec::GuestTask
barrier(exec::GuestCtx &ctx, SplashSync &sync)
{
    switch (sync.kind) {
      case BarrierKind::Hw:
        co_await ctx.hwBarrier(sync.hwRound[ctx.index()]++ & 1);
        break;
      case BarrierKind::SwTree:
        co_await ctx.swBarrier(sync.tree);
        break;
      case BarrierKind::SwCentral:
        co_await ctx.swBarrier(sync.central);
        break;
    }
}

} // namespace detail

} // namespace cyclops::workloads
