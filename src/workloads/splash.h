/**
 * @file
 * SPLASH-2-style kernels for the execution-driven frontend, used for
 * the paper's Figure 3 (parallel speedups of Barnes, FFT, FMM, LU,
 * Ocean, Radix) and Figure 7 (hardware vs software barriers on FFT).
 *
 * Barnes and FMM are reduced-force-model reimplementations (see
 * DESIGN.md); FFT is the radix-sqrt(N) six-step kernel with the
 * paper's constraints (points per processor >= sqrt(N), power-of-two
 * processors); LU is blocked right-looking without pivoting; Ocean is
 * a red-black SOR solve; Radix is the per-digit histogram sort.
 */

#ifndef CYCLOPS_WORKLOADS_SPLASH_H
#define CYCLOPS_WORKLOADS_SPLASH_H

#include "arch/unit.h"
#include "common/config.h"
#include "exec/barriers.h"
#include "exec/engine.h"
#include "kernel/kernel.h"

namespace cyclops::workloads
{

/** The six kernels of Figure 3. */
enum class SplashApp : u8 { Barnes, Fft, Fmm, Lu, Ocean, Radix };

const char *splashAppName(SplashApp app);

/** Barrier implementation used for inter-phase synchronization. */
enum class BarrierKind : u8 { Hw, SwTree, SwCentral };

/** One kernel run. */
struct SplashConfig
{
    SplashApp app = SplashApp::Fft;
    u32 threads = 1;
    u32 size = 0; ///< app-specific problem size; 0 = Figure 3 default
    BarrierKind barrier = BarrierKind::Hw;
    kernel::AllocPolicy policy = kernel::AllocPolicy::Sequential;
};

/** Timing and accounting outcome (Figure 7 reports all three cycles). */
struct SplashResult
{
    Cycle cycles = 0;       ///< total execution time
    u64 runCycles = 0;      ///< cycles threads were busy computing
    u64 stallCycles = 0;    ///< cycles threads were stalled for resources
    u64 instructions = 0;
    bool verified = false;

    /** Chip-wide cycle attribution (sums the per-TU breakdowns). */
    arch::CycleBreakdown attr;

    // Memory-system aggregates (diagnosis and the ablation benches).
    u64 loads = 0;
    u64 stores = 0;
    u64 localHits = 0;
    u64 remoteHits = 0;
    u64 localMisses = 0;
    u64 remoteMisses = 0;
    u64 bankBusyCycles = 0;   ///< summed over the 16 banks
    u64 portWaitCycles = 0;   ///< summed over the 32 cache ports
    double avgLoadLatency = 0;
};

namespace detail
{
/** Fill SplashResult from a finished chip (shared by all kernels). */
void harvest(arch::Chip &chip, SplashResult *result);
} // namespace detail

/** Figure 3 default problem size of @p app. */
u32 splashDefaultSize(SplashApp app);

/** Run one kernel on a fresh chip. */
SplashResult runSplash(const SplashConfig &config,
                       const ChipConfig &chipCfg = ChipConfig{});

// ---------------------------------------------------------------------------
// Shared helpers for the kernel implementations (internal use).
// ---------------------------------------------------------------------------

namespace detail
{

/**
 * Pluggable barrier: one object shared by all threads of a run.
 *
 * Consecutive global barriers alternate between two of the four
 * hardware barriers: re-using one id back-to-back races a slow spinner
 * against the next entry re-raising the bit it spins on (the reason
 * the chip provides several barriers).
 */
struct SplashSync
{
    BarrierKind kind = BarrierKind::Hw;
    exec::CentralBarrier central;
    exec::TreeBarrier tree;
    std::vector<u32> hwRound; ///< per-thread global barrier counter

    void
    init(kernel::Heap &heap, u32 threads, BarrierKind k)
    {
        kind = k;
        central.init(heap, threads);
        tree.init(heap, threads);
        hwRound.assign(threads, 0);
    }
};

/** Enter the run's barrier (awaitable helper coroutine). */
exec::GuestTask barrier(exec::GuestCtx &ctx, SplashSync &sync);

/** [begin, end) slice of @p total for thread @p index of @p threads. */
struct Range
{
    u32 begin, end;
    u32 size() const { return end - begin; }
};

inline Range
splitRange(u32 total, u32 threads, u32 index)
{
    const u32 base = total / threads;
    const u32 extra = total % threads;
    const u32 begin = index * base + std::min(index, extra);
    return Range{begin, begin + base + (index < extra ? 1 : 0)};
}

} // namespace detail

// Individual kernels (exposed for focused tests/benches).
SplashResult runFft(u32 threads, u32 points, BarrierKind barrier,
                    const ChipConfig &chipCfg);
SplashResult runLu(u32 threads, u32 n, BarrierKind barrier,
                   const ChipConfig &chipCfg);
SplashResult runRadix(u32 threads, u32 keys, BarrierKind barrier,
                      const ChipConfig &chipCfg);
SplashResult runOcean(u32 threads, u32 grid, BarrierKind barrier,
                      const ChipConfig &chipCfg);
SplashResult runBarnes(u32 threads, u32 bodies, BarrierKind barrier,
                       const ChipConfig &chipCfg);
SplashResult runFmm(u32 threads, u32 particles, BarrierKind barrier,
                    const ChipConfig &chipCfg);

} // namespace cyclops::workloads

#endif // CYCLOPS_WORKLOADS_SPLASH_H
