/**
 * @file
 * SPLASH-2-style radix-sqrt(N) six-step FFT on the execution-driven
 * frontend (Figures 3 and 7).
 *
 * The N-point complex transform is computed as a sqrt(N) x sqrt(N)
 * matrix: transpose, FFT the rows, twiddle, transpose, FFT the rows,
 * transpose. Rows are block-distributed over the threads and every
 * step ends in a barrier — the synchronization the paper's hardware
 * barrier accelerates. The paper's constraints are enforced: the
 * number of points per processor must be at least sqrt(N) (threads <=
 * sqrt(N)) and the number of processors must be a power of two.
 */

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"
#include "workloads/splash.h"

namespace cyclops::workloads
{

namespace
{

using arch::igAddr;
using arch::kIgDefault;
using exec::GuestCtx;
using exec::GuestTask;
using exec::MicroOp;
using arch::FpuOp;
using detail::splitRange;
using Complex = std::complex<double>;

/** Shared state of one FFT run. */
struct FftWorld
{
    u32 n = 0;       ///< matrix edge: sqrt(points)
    u32 threads = 0;
    Addr m0 = 0, m1 = 0;     ///< the two n x n complex matrices
    Addr roots = 0;          ///< n/2 complex roots of unity (row FFTs)
    Addr twiddle = 0;        ///< n x n twiddle factors w_N^(r*c)
    detail::SplashSync sync;
    arch::Chip *chip = nullptr;
};

Addr
cplx(Addr base, u32 index)
{
    return base + index * 16;
}

double
bitsToDouble(u64 raw)
{
    double value;
    std::memcpy(&value, &raw, 8);
    return value;
}

u64
doubleToBits(double value)
{
    u64 raw;
    std::memcpy(&raw, &value, 8);
    return raw;
}

/** Transpose rows [rows.begin, rows.end) of dst: dst[r][c] = src[c][r]. */
GuestTask
transposeRows(GuestCtx &ctx, FftWorld &w, Addr src, Addr dst,
              detail::Range rows)
{
    const u32 n = w.n;
    for (u32 r = rows.begin; r < rows.end; ++r) {
        for (u32 c = 0; c < n; c += 4) {
            // Gather four column elements (strided, mostly remote), then
            // write them contiguously into our row.
            std::vector<MicroOp> loads, stores;
            for (u32 k = 0; k < 4; ++k) {
                const Addr from = cplx(src, (c + k) * n + r);
                loads.push_back(MicroOp::load(from, 8, true));
                loads.push_back(MicroOp::load(from + 8, 8, true));
            }
            co_await ctx.batch(loads);
            for (u32 k = 0; k < 4; ++k) {
                const Addr to = cplx(dst, r * n + c + k);
                stores.push_back(MicroOp::store(
                    to, loads[2 * k].result, 8, true));
                stores.push_back(MicroOp::store(
                    to + 8, loads[2 * k + 1].result, 8, true));
            }
            co_await ctx.batch(stores);
            co_await ctx.alu(4, true); // index arithmetic + branch
        }
    }
}

/** In-place radix-2 FFT of the n-point row at @p row. */
GuestTask
rowFft(GuestCtx &ctx, FftWorld &w, Addr row)
{
    const u32 n = w.n;
    const u32 logn = log2i(n);

    // Bit-reversal permutation.
    for (u32 i = 0; i < n; ++i) {
        u32 j = 0;
        for (u32 b = 0; b < logn; ++b)
            j |= ((i >> b) & 1) << (logn - 1 - b);
        if (i < j) {
            std::vector<MicroOp> loads;
            loads.push_back(MicroOp::load(cplx(row, i), 8, true));
            loads.push_back(MicroOp::load(cplx(row, i) + 8, 8, true));
            loads.push_back(MicroOp::load(cplx(row, j), 8, true));
            loads.push_back(MicroOp::load(cplx(row, j) + 8, 8, true));
            co_await ctx.batch(loads);
            std::vector<MicroOp> stores;
            stores.push_back(MicroOp::store(cplx(row, j),
                                            loads[0].result, 8, true));
            stores.push_back(MicroOp::store(cplx(row, j) + 8,
                                            loads[1].result, 8, true));
            stores.push_back(MicroOp::store(cplx(row, i),
                                            loads[2].result, 8, true));
            stores.push_back(MicroOp::store(cplx(row, i) + 8,
                                            loads[3].result, 8, true));
            co_await ctx.batch(stores);
        }
        co_await ctx.alu(2, true);
    }

    // Butterfly stages. The twiddle for a given j is invariant over
    // the k blocks, so it is loaded once per (stage, j) and kept in
    // registers across the inner loop — what scheduled compiled code
    // (or the hand-tuned SPLASH-2 kernel) does.
    for (u32 m = 2; m <= n; m <<= 1) {
        const u32 half = m / 2;
        const u32 step = n / m; // root stride for this stage
        for (u32 j = 0; j < half; ++j) {
            const Addr wAddr = cplx(w.roots, j * step);
            std::vector<MicroOp> wLoads;
            wLoads.push_back(MicroOp::load(wAddr, 8, true));
            wLoads.push_back(MicroOp::load(wAddr + 8, 8, true));
            co_await ctx.batch(wLoads);
            const double wr = bitsToDouble(wLoads[0].result);
            const double wi = bitsToDouble(wLoads[1].result);

            for (u32 k = 0; k < n; k += m) {
                const Addr aAddr = cplx(row, k + j);
                const Addr bAddr = cplx(row, k + j + half);

                std::vector<MicroOp> loads;
                loads.push_back(MicroOp::load(aAddr, 8, true));
                loads.push_back(MicroOp::load(aAddr + 8, 8, true));
                loads.push_back(MicroOp::load(bAddr, 8, true));
                loads.push_back(MicroOp::load(bAddr + 8, 8, true));
                co_await ctx.batch(loads);
                const double ar = bitsToDouble(loads[0].result);
                const double ai = bitsToDouble(loads[1].result);
                const double br = bitsToDouble(loads[2].result);
                const double bi = bitsToDouble(loads[3].result);

                // t = w * b: 4 multiplies and 6 adds/subtracts.
                std::vector<MicroOp> flops;
                flops.insert(flops.end(), 4,
                             MicroOp::fpuOp(FpuOp::Mul, true));
                flops.insert(flops.end(), 6,
                             MicroOp::fpuOp(FpuOp::Add, true));
                co_await ctx.batch(flops);
                const double tr = wr * br - wi * bi;
                const double ti = wr * bi + wi * br;

                std::vector<MicroOp> stores;
                stores.push_back(MicroOp::store(
                    aAddr, doubleToBits(ar + tr), 8, true));
                stores.push_back(MicroOp::store(
                    aAddr + 8, doubleToBits(ai + ti), 8, true));
                stores.push_back(MicroOp::store(
                    bAddr, doubleToBits(ar - tr), 8, true));
                stores.push_back(MicroOp::store(
                    bAddr + 8, doubleToBits(ai - ti), 8, true));
                co_await ctx.batch(stores);
                co_await ctx.alu(3, true);
            }
        }
    }
}

/** Multiply row r of m1 by the twiddle factors w_N^(r*c). */
GuestTask
twiddleRow(GuestCtx &ctx, FftWorld &w, u32 r)
{
    const u32 n = w.n;
    for (u32 c = 0; c < n; ++c) {
        const Addr vAddr = cplx(w.m1, r * n + c);
        const Addr wAddr = cplx(w.twiddle, r * n + c);
        std::vector<MicroOp> loads;
        loads.push_back(MicroOp::load(vAddr, 8, true));
        loads.push_back(MicroOp::load(vAddr + 8, 8, true));
        loads.push_back(MicroOp::load(wAddr, 8, true));
        loads.push_back(MicroOp::load(wAddr + 8, 8, true));
        co_await ctx.batch(loads);
        const double vr = bitsToDouble(loads[0].result);
        const double vi = bitsToDouble(loads[1].result);
        const double wr = bitsToDouble(loads[2].result);
        const double wi = bitsToDouble(loads[3].result);

        std::vector<MicroOp> muls(4, MicroOp::fpuOp(FpuOp::Mul, true));
        co_await ctx.batch(muls);
        std::vector<MicroOp> adds(2, MicroOp::fpuOp(FpuOp::Add, true));
        co_await ctx.batch(adds);

        std::vector<MicroOp> stores;
        stores.push_back(MicroOp::store(
            vAddr, doubleToBits(vr * wr - vi * wi), 8, true));
        stores.push_back(MicroOp::store(
            vAddr + 8, doubleToBits(vr * wi + vi * wr), 8, true));
        co_await ctx.batch(stores);
        co_await ctx.alu(3, true);
    }
}

GuestTask
fftWorker(GuestCtx &ctx, FftWorld &w)
{
    const detail::Range rows = splitRange(w.n, w.threads, ctx.index());

    co_await transposeRows(ctx, w, w.m0, w.m1, rows);
    co_await detail::barrier(ctx, w.sync);

    for (u32 r = rows.begin; r < rows.end; ++r) {
        co_await rowFft(ctx, w, w.m1 + r * w.n * 16);
        co_await twiddleRow(ctx, w, r);
    }
    co_await detail::barrier(ctx, w.sync);

    co_await transposeRows(ctx, w, w.m1, w.m0, rows);
    co_await detail::barrier(ctx, w.sync);

    for (u32 r = rows.begin; r < rows.end; ++r)
        co_await rowFft(ctx, w, w.m0 + r * w.n * 16);
    co_await detail::barrier(ctx, w.sync);

    co_await transposeRows(ctx, w, w.m0, w.m1, rows);
    co_await detail::barrier(ctx, w.sync);
}

/** Host mirror of the full six-step procedure (exact reference). */
std::vector<Complex>
hostSixStep(const std::vector<Complex> &input, u32 n)
{
    auto fftRow = [&](std::vector<Complex> &m, u32 rowBase) {
        const u32 logn = log2i(n);
        for (u32 i = 0; i < n; ++i) {
            u32 j = 0;
            for (u32 b = 0; b < logn; ++b)
                j |= ((i >> b) & 1) << (logn - 1 - b);
            if (i < j)
                std::swap(m[rowBase + i], m[rowBase + j]);
        }
        for (u32 m2 = 2; m2 <= n; m2 <<= 1) {
            const u32 half = m2 / 2;
            for (u32 k = 0; k < n; k += m2) {
                for (u32 j = 0; j < half; ++j) {
                    const double angle =
                        -2.0 * M_PI * double(j) / double(m2);
                    const Complex w(std::cos(angle), std::sin(angle));
                    const Complex a = m[rowBase + k + j];
                    const Complex t = w * m[rowBase + k + j + half];
                    m[rowBase + k + j] = a + t;
                    m[rowBase + k + j + half] = a - t;
                }
            }
        }
    };
    const u64 nn = u64(n) * n;
    std::vector<Complex> m0 = input, m1(nn);
    auto transpose = [&](const std::vector<Complex> &src,
                         std::vector<Complex> &dst) {
        for (u32 r = 0; r < n; ++r)
            for (u32 c = 0; c < n; ++c)
                dst[r * n + c] = src[c * n + r];
    };
    transpose(m0, m1);
    for (u32 r = 0; r < n; ++r) {
        fftRow(m1, r * n);
        for (u32 c = 0; c < n; ++c) {
            const double angle =
                -2.0 * M_PI * double(r) * double(c) / double(nn);
            m1[r * n + c] *= Complex(std::cos(angle), std::sin(angle));
        }
    }
    transpose(m1, m0);
    for (u32 r = 0; r < n; ++r)
        fftRow(m0, r * n);
    transpose(m0, m1);
    return m1;
}

} // namespace

SplashResult
runFft(u32 threads, u32 points, BarrierKind barrier,
       const ChipConfig &chipCfg)
{
    if (!isPow2(points))
        fatal("FFT size must be a power of two (got %u)", points);
    if (!isPow2(threads))
        fatal("FFT requires a power-of-two number of processors");
    const u32 logp = log2i(points);
    if (logp % 2 != 0)
        fatal("the six-step FFT needs a power-of-four size (got %u)",
              points);
    const u32 n = 1u << (logp / 2);
    if (points / threads < n)
        fatal("FFT requires points/processor >= sqrt(points): "
              "%u threads on %u points", threads, points);

    arch::Chip chip(chipCfg);
    exec::GuestEngine engine(chip);
    FftWorld w;
    w.n = n;
    w.threads = threads;
    w.chip = &chip;
    kernel::Heap &heap = engine.heap();
    w.m0 = igAddr(kIgDefault, heap.alloc(points * 16, 64));
    w.m1 = igAddr(kIgDefault, heap.alloc(points * 16, 64));
    w.roots = igAddr(kIgDefault, heap.alloc(n / 2 * 16, 64));
    w.twiddle = igAddr(kIgDefault, heap.alloc(points * 16, 64));
    w.sync.init(heap, threads, barrier);

    // Deterministic pseudo-random input and precomputed tables.
    std::vector<Complex> input(points);
    Rng rng(0xFF7 + points);
    for (u32 i = 0; i < points; ++i) {
        input[i] = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
        chip.memWrite(cplx(w.m0, i), 8, doubleToBits(input[i].real()),
                      0);
        chip.memWrite(cplx(w.m0, i) + 8, 8,
                      doubleToBits(input[i].imag()), 0);
    }
    for (u32 t = 0; t < n / 2; ++t) {
        const double angle = -2.0 * M_PI * double(t) / double(n);
        chip.memWrite(cplx(w.roots, t), 8, doubleToBits(std::cos(angle)),
                      0);
        chip.memWrite(cplx(w.roots, t) + 8, 8,
                      doubleToBits(std::sin(angle)), 0);
    }
    for (u32 r = 0; r < n; ++r) {
        for (u32 c = 0; c < n; ++c) {
            const double angle = -2.0 * M_PI * double(r) * double(c) /
                                 double(points);
            chip.memWrite(cplx(w.twiddle, r * n + c), 8,
                          doubleToBits(std::cos(angle)), 0);
            chip.memWrite(cplx(w.twiddle, r * n + c) + 8, 8,
                          doubleToBits(std::sin(angle)), 0);
        }
    }

    engine.spawn(threads,
                 [&](GuestCtx &ctx) { return fftWorker(ctx, w); });
    if (engine.run(20'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("FFT did not finish within the cycle limit");

    // Verify against the host mirror of the same procedure. The row
    // FFTs in the simulator use table roots w^(j*step) where the host
    // recomputes them per stage; both are the same values to double
    // rounding, so compare with a small tolerance.
    const std::vector<Complex> expect = hostSixStep(input, n);
    bool verified = true;
    double scale = 0;
    for (const Complex &value : expect)
        scale = std::max(scale, std::abs(value));
    for (u32 i = 0; i < points; i += 41) {
        const double re = bitsToDouble(chip.memRead(cplx(w.m1, i), 8, 0));
        const double im =
            bitsToDouble(chip.memRead(cplx(w.m1, i) + 8, 8, 0));
        if (std::abs(re - expect[i].real()) > 1e-6 * scale ||
            std::abs(im - expect[i].imag()) > 1e-6 * scale) {
            warn("FFT verify failed at %u: got (%g, %g) want (%g, %g)",
                 i, re, im, expect[i].real(), expect[i].imag());
            verified = false;
            break;
        }
    }

    SplashResult result;
    detail::harvest(chip, &result);
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
