/**
 * @file
 * The STREAM benchmark (McCalpin) for Cyclops, generated as hand-
 * scheduled ISA code — the paper's Section 3.2 evaluation vehicle.
 *
 * Four vector kernels over double-precision vectors a, b, c:
 *   Copy  c = a          Scale b = s*c
 *   Add   c = a + b      Triad a = b + s*c
 *
 * All the paper's execution modes are supported:
 *  - single-threaded and N independent copies ("out-of-the-box", Fig 4)
 *  - one parallel STREAM with blocked or cyclic loop partitioning
 *    (cyclic combines threads in groups of eight so a group shares the
 *    eight-element cache lines; Fig 5a/b)
 *  - local-cache mode: the interest-group feature forces each thread's
 *    block into its local cache, with line-aligned blocks to avoid
 *    false sharing (Fig 5c)
 *  - 4-way hand-unrolled loops (Fig 5d)
 *  - sequential or balanced thread allocation (Section 3.2.2)
 *
 * Timing follows the paper's convention: bandwidth counts 16 bytes per
 * element for Copy/Scale and 24 for Add/Triad. The steady-state
 * iteration time is obtained by differencing a one-iteration and a
 * two-iteration run of the same deterministic simulation, so the
 * measured iteration runs against warm caches exactly like iterations
 * 2..10 of the real benchmark.
 */

#ifndef CYCLOPS_WORKLOADS_STREAM_H
#define CYCLOPS_WORKLOADS_STREAM_H

#include <array>
#include <string>

#include "arch/unit.h"
#include "common/config.h"
#include "common/hostobs.h"
#include "isa/isa.h"
#include "kernel/kernel.h"

namespace cyclops::workloads
{

/** The four STREAM vector kernels. */
enum class StreamKernel : u8 { Copy, Scale, Add, Triad };

/** Loop partitioning of one parallel STREAM (paper section 3.2.2). */
enum class StreamPartition : u8 { Blocked, Cyclic };

const char *streamKernelName(StreamKernel kernel);

/** Bytes counted per element by the STREAM convention. */
constexpr u32
streamBytesPerElement(StreamKernel kernel)
{
    return (kernel == StreamKernel::Copy ||
            kernel == StreamKernel::Scale)
               ? 16
               : 24;
}

/** One STREAM experiment. */
struct StreamConfig
{
    StreamKernel kernel = StreamKernel::Copy;
    u32 threads = 1;
    u32 elementsPerThread = 1000; ///< rounded to a multiple of 8
    bool independent = false;     ///< Fig 4b: per-thread private vectors
    StreamPartition partition = StreamPartition::Blocked;
    bool localCaches = false;     ///< interest-group own-cache blocks
    u32 unroll = 1;               ///< 1 or 4 (hand-unrolling)
    u32 cyclicGroup = 8;          ///< threads per cyclic group
    kernel::AllocPolicy policy = kernel::AllocPolicy::Sequential;

    /**
     * Instrument the program with guest-side rdcounter snapshots: each
     * thread dumps the counter file before and after its kernel loop
     * into a shared buffer, and the host folds the snapshots into a
     * per-region counter table (StreamResult::counterTable).
     */
    bool counterTable = false;
};

/** Measured result of one STREAM experiment. */
struct StreamResult
{
    Cycle iterationCycles = 0;  ///< steady-state cycles per iteration
    u64 bytesPerIteration = 0;  ///< STREAM-counted bytes
    double totalGBs = 0;        ///< aggregate bandwidth, GB/s
    double perThreadMBs = 0;    ///< average per-thread bandwidth, MB/s
    bool verified = false;      ///< numerical result checked

    // Host-throughput accounting (bench_simperf): totals over both
    // timed runs of the differencing scheme.
    u64 simCycles = 0;          ///< simulated chip cycles executed
    u64 instructions = 0;       ///< guest instructions executed

    /** Host telemetry totals over both timed runs (obs.hostObs). */
    HostObsSnapshot host;

    /** Chip-wide cycle attribution of the long (4-iteration) run. */
    arch::CycleBreakdown attr;

    // Guest-visible counter-file region table (StreamConfig::
    // counterTable): counter sums over all threads, split at the
    // guest's own rdcounter snapshots around the kernel loop.
    std::array<u64, isa::kNumCounterSprs> setupCounters{};
    std::array<u64, isa::kNumCounterSprs> kernelCounters{};
    std::string counterTable; ///< formatted region table ("" when off)
};

/**
 * Run one STREAM experiment on a fresh chip.
 *
 * fatal()s if the requested size does not fit the 8 MB embedded
 * memory (the paper's maximum is ~252,000 elements).
 */
StreamResult runStream(const StreamConfig &config,
                       const ChipConfig &chipCfg = ChipConfig{});

} // namespace cyclops::workloads

#endif // CYCLOPS_WORKLOADS_STREAM_H
