/**
 * @file
 * SPLASH-2-style radix sort on the execution-driven frontend
 * (Figure 3).
 *
 * Least-significant-digit radix sort of 32-bit keys with an 8-bit
 * digit (four passes). Each pass: per-thread local histograms of the
 * key slice; a parallel global prefix (threads own digit slices, with
 * one short serial scan over the 256 digit totals); and the rank-and-
 * permute phase whose scattered stores generate the heavy remote
 * cache traffic radix sort is known for.
 */

#include <algorithm>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"
#include "workloads/splash.h"

namespace cyclops::workloads
{

namespace
{

using arch::igAddr;
using arch::kIgDefault;
using exec::GuestCtx;
using exec::GuestTask;
using exec::MicroOp;

constexpr u32 kDigitBits = 8;
constexpr u32 kRadix = 1u << kDigitBits;
constexpr u32 kPasses = 32 / kDigitBits;

struct RadixWorld
{
    u32 keys = 0;
    u32 threads = 0;
    Addr src = 0, dst = 0;   ///< ping-pong key arrays (u32 each)
    Addr hist = 0;           ///< threads x kRadix u32 counters
    detail::SplashSync sync;
    arch::Chip *chip = nullptr;

    Addr key(Addr arr, u32 i) const { return arr + i * 4; }
    Addr
    counter(u32 thread, u32 digit) const
    {
        return hist + (thread * kRadix + digit) * 4;
    }

    Addr totals = 0; ///< kRadix digit-total words (prefix phase)

    Addr digitTotal(u32 digit) const { return totals + digit * 4; }
};

GuestTask
radixWorker(GuestCtx &ctx, RadixWorld &w)
{
    const u32 me = ctx.index();
    const detail::Range mine = detail::splitRange(w.keys, w.threads, me);
    Addr src = w.src, dst = w.dst;

    for (u32 pass = 0; pass < kPasses; ++pass) {
        const u32 shift = pass * kDigitBits;

        // --- Local histogram ------------------------------------------
        for (u32 d = 0; d < kRadix; ++d)
            co_await ctx.store(w.counter(me, d), 0, 4);
        for (u32 i = mine.begin; i < mine.end; i += 8) {
            const u32 chunk = std::min(8u, mine.end - i);
            std::vector<MicroOp> loads;
            for (u32 k = 0; k < chunk; ++k)
                loads.push_back(MicroOp::load(w.key(src, i + k), 4,
                                              true));
            co_await ctx.batch(loads);
            for (u32 k = 0; k < chunk; ++k) {
                const u32 digit =
                    (u32(loads[k].result) >> shift) & (kRadix - 1);
                const u64 count =
                    co_await ctx.load(w.counter(me, digit), 4);
                co_await ctx.store(w.counter(me, digit), count + 1, 4);
                co_await ctx.alu(2);
            }
        }
        co_await detail::barrier(ctx, w.sync);

        // --- Global prefix (parallel, SPLASH-2 style) -------------------
        // ranks[t][d] = sum of all counts of digits < d, plus the
        // counts of digit d on threads < t. Step 1: each thread sums
        // its slice of digits over all threads. Step 2: thread 0
        // prefixes the 256 digit totals. Step 3: each thread rewrites
        // the counters of its digit slice into rank bases.
        const detail::Range digits =
            detail::splitRange(kRadix, w.threads, me);
        for (u32 d = digits.begin; d < digits.end; ++d) {
            u64 total = 0;
            for (u32 t = 0; t < w.threads; ++t) {
                total += co_await ctx.load(w.counter(t, d), 4);
                co_await ctx.alu(1);
            }
            co_await ctx.store(w.digitTotal(d), total, 4);
        }
        co_await detail::barrier(ctx, w.sync);
        if (me == 0) {
            u32 running = 0;
            for (u32 d = 0; d < kRadix; ++d) {
                const u64 total = co_await ctx.load(w.digitTotal(d), 4);
                co_await ctx.store(w.digitTotal(d), running, 4);
                running += u32(total);
                co_await ctx.alu(2);
            }
        }
        co_await detail::barrier(ctx, w.sync);
        for (u32 d = digits.begin; d < digits.end; ++d) {
            u64 running = co_await ctx.load(w.digitTotal(d), 4);
            for (u32 t = 0; t < w.threads; ++t) {
                const u64 count = co_await ctx.load(w.counter(t, d), 4);
                co_await ctx.store(w.counter(t, d), running, 4);
                running += count;
                co_await ctx.alu(2);
            }
        }
        co_await detail::barrier(ctx, w.sync);

        // --- Permute ------------------------------------------------------
        for (u32 i = mine.begin; i < mine.end; ++i) {
            const u64 key = co_await ctx.load(w.key(src, i), 4);
            const u32 digit = (u32(key) >> shift) & (kRadix - 1);
            co_await ctx.alu(2);
            const u64 rank = co_await ctx.load(w.counter(me, digit), 4);
            co_await ctx.store(w.counter(me, digit), rank + 1, 4);
            co_await ctx.store(w.key(dst, u32(rank)), key, 4);
        }
        co_await detail::barrier(ctx, w.sync);
        std::swap(src, dst);
    }
}

} // namespace

SplashResult
runRadix(u32 threads, u32 keys, BarrierKind barrier,
         const ChipConfig &chipCfg)
{
    if (keys < threads)
        fatal("radix sort needs at least one key per thread");

    arch::Chip chip(chipCfg);
    exec::GuestEngine engine(chip);
    RadixWorld w;
    w.keys = keys;
    w.threads = threads;
    w.chip = &chip;
    w.src = igAddr(kIgDefault, engine.heap().alloc(keys * 4, 64));
    w.dst = igAddr(kIgDefault, engine.heap().alloc(keys * 4, 64));
    w.hist = igAddr(kIgDefault,
                    engine.heap().alloc(threads * kRadix * 4, 64));
    w.totals = igAddr(kIgDefault, engine.heap().alloc(kRadix * 4, 64));
    w.sync.init(engine.heap(), threads, barrier);

    Rng rng(0xD161 + keys);
    std::vector<u32> host(keys);
    for (u32 i = 0; i < keys; ++i) {
        host[i] = u32(rng.next());
        chip.memWrite(w.key(w.src, i), 4, host[i], 0);
    }

    engine.spawn(threads,
                 [&](GuestCtx &ctx) { return radixWorker(ctx, w); });
    if (engine.run(50'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("radix sort did not finish within the cycle limit");

    std::sort(host.begin(), host.end());
    // An even number of passes leaves the result in src.
    bool verified = true;
    for (u32 i = 0; i < keys; i += 523) {
        const u32 got = u32(chip.memRead(w.key(w.src, i), 4, 0));
        if (got != host[i]) {
            warn("radix verify failed at %u: got %u want %u", i, got,
                 host[i]);
            verified = false;
            break;
        }
    }

    SplashResult result;
    detail::harvest(chip, &result);
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
