/**
 * @file
 * SPLASH-2-style blocked dense LU factorization (no pivoting) on the
 * execution-driven frontend (Figure 3).
 *
 * The n x n matrix is divided into B x B blocks assigned to threads in
 * a 2-D block-cyclic scatter. Each step k factors the diagonal block,
 * solves the perimeter blocks against it, and updates the interior
 * with block matrix-multiplies; barriers separate the three phases.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/rng.h"
#include "workloads/splash.h"

namespace cyclops::workloads
{

namespace
{

using arch::FpuOp;
using arch::igAddr;
using arch::kIgDefault;
using exec::GuestCtx;
using exec::GuestTask;
using exec::MicroOp;

constexpr u32 kBlock = 16;

struct LuWorld
{
    u32 n = 0;
    u32 nb = 0; ///< blocks per side
    u32 pr = 0, pc = 0; ///< processor grid
    u32 threads = 0;
    Addr a = 0;
    detail::SplashSync sync;
    arch::Chip *chip = nullptr;

    Addr elem(u32 i, u32 j) const { return a + (i * n + j) * 8; }

    u32
    owner(u32 bi, u32 bj) const
    {
        return (bi % pr) * pc + (bj % pc);
    }
};

double
toD(u64 raw)
{
    double v;
    std::memcpy(&v, &raw, 8);
    return v;
}

u64
toB(double v)
{
    u64 raw;
    std::memcpy(&raw, &v, 8);
    return raw;
}

/** Factor the diagonal block at block coords (k,k), in place. */
GuestTask
factorDiag(GuestCtx &ctx, LuWorld &w, u32 k)
{
    const u32 base = k * kBlock;
    for (u32 j = 0; j < kBlock; ++j) {
        const u64 prow = base + j;
        const u64 diag = co_await ctx.load(w.elem(prow, base + j), 8);
        for (u32 i = j + 1; i < kBlock; ++i) {
            const u32 row = base + i;
            // l = a[i][j] / d; then a[i][jj] -= l * a[j][jj].
            const u64 aij = co_await ctx.load(w.elem(row, base + j), 8);
            co_await ctx.fpu(FpuOp::Div);
            const double l = toD(aij) / toD(diag);
            co_await ctx.store(w.elem(row, base + j), toB(l), 8);

            const u32 rest = kBlock - j - 1;
            if (rest == 0)
                continue;
            std::vector<MicroOp> loads;
            for (u32 jj = j + 1; jj < kBlock; ++jj) {
                loads.push_back(
                    MicroOp::load(w.elem(prow, base + jj), 8, true));
                loads.push_back(
                    MicroOp::load(w.elem(row, base + jj), 8, true));
            }
            co_await ctx.batch(loads);
            std::vector<MicroOp> fmas(rest,
                                      MicroOp::fpuOp(FpuOp::Fma, true));
            co_await ctx.batch(fmas);
            std::vector<MicroOp> stores;
            for (u32 t = 0; t < rest; ++t) {
                const double upper = toD(loads[2 * t].result);
                const double mine = toD(loads[2 * t + 1].result);
                stores.push_back(
                    MicroOp::store(w.elem(row, base + j + 1 + t),
                                   toB(mine - l * upper), 8, true));
            }
            co_await ctx.batch(stores);
            co_await ctx.alu(3);
        }
    }
}

/** A(bi,k) := A(bi,k) * inv(U(k,k)) — column perimeter block. */
GuestTask
solveColBlock(GuestCtx &ctx, LuWorld &w, u32 bi, u32 k)
{
    const u32 rbase = bi * kBlock, cbase = k * kBlock;
    for (u32 r = 0; r < kBlock; ++r) {
        for (u32 j = 0; j < kBlock; ++j) {
            // a[r][j] = (a[r][j] - sum_{t<j} a[r][t]*d[t][j]) / d[j][j]
            std::vector<MicroOp> loads;
            loads.push_back(
                MicroOp::load(w.elem(rbase + r, cbase + j), 8, true));
            loads.push_back(
                MicroOp::load(w.elem(cbase + j, cbase + j), 8, true));
            for (u32 t = 0; t < j; ++t) {
                loads.push_back(
                    MicroOp::load(w.elem(rbase + r, cbase + t), 8,
                                  true));
                loads.push_back(
                    MicroOp::load(w.elem(cbase + t, cbase + j), 8,
                                  true));
            }
            co_await ctx.batch(loads);
            if (j > 0) {
                std::vector<MicroOp> fmas(
                    j, MicroOp::fpuOp(FpuOp::Fma, true));
                co_await ctx.batch(fmas);
            }
            co_await ctx.fpu(FpuOp::Div);
            double acc = toD(loads[0].result);
            const double d = toD(loads[1].result);
            for (u32 t = 0; t < j; ++t)
                acc -= toD(loads[2 + 2 * t].result) *
                       toD(loads[3 + 2 * t].result);
            co_await ctx.store(w.elem(rbase + r, cbase + j),
                               toB(acc / d), 8);
            co_await ctx.alu(3);
        }
    }
}

/** A(k,bj) := inv(L(k,k)) * A(k,bj) — row perimeter block. */
GuestTask
solveRowBlock(GuestCtx &ctx, LuWorld &w, u32 k, u32 bj)
{
    const u32 rbase = k * kBlock, cbase = bj * kBlock;
    for (u32 c = 0; c < kBlock; ++c) {
        for (u32 r = 0; r < kBlock; ++r) {
            // a[r][c] -= sum_{t<r} l[r][t] * a[t][c]   (unit diagonal)
            if (r == 0) {
                co_await ctx.alu(2);
                continue;
            }
            std::vector<MicroOp> loads;
            loads.push_back(
                MicroOp::load(w.elem(rbase + r, cbase + c), 8, true));
            for (u32 t = 0; t < r; ++t) {
                loads.push_back(
                    MicroOp::load(w.elem(rbase + r, rbase + t), 8,
                                  true));
                loads.push_back(
                    MicroOp::load(w.elem(rbase + t, cbase + c), 8,
                                  true));
            }
            co_await ctx.batch(loads);
            std::vector<MicroOp> fmas(r, MicroOp::fpuOp(FpuOp::Fma,
                                                        true));
            co_await ctx.batch(fmas);
            double acc = toD(loads[0].result);
            for (u32 t = 0; t < r; ++t)
                acc -= toD(loads[1 + 2 * t].result) *
                       toD(loads[2 + 2 * t].result);
            co_await ctx.store(w.elem(rbase + r, cbase + c), toB(acc),
                               8);
            co_await ctx.alu(3);
        }
    }
}

/** A(bi,bj) -= A(bi,k) * A(k,bj) — interior block update. */
GuestTask
gemmBlock(GuestCtx &ctx, LuWorld &w, u32 bi, u32 bj, u32 k)
{
    const u32 rbase = bi * kBlock;
    const u32 cbase = bj * kBlock;
    const u32 kbase = k * kBlock;
    for (u32 r = 0; r < kBlock; ++r) {
        // Load this row of A(bi,k) once.
        std::vector<MicroOp> rowLoads;
        for (u32 t = 0; t < kBlock; ++t)
            rowLoads.push_back(
                MicroOp::load(w.elem(rbase + r, kbase + t), 8, true));
        co_await ctx.batch(rowLoads);
        double lrow[kBlock];
        for (u32 t = 0; t < kBlock; ++t)
            lrow[t] = toD(rowLoads[t].result);

        for (u32 c = 0; c < kBlock; ++c) {
            std::vector<MicroOp> colLoads;
            colLoads.push_back(
                MicroOp::load(w.elem(rbase + r, cbase + c), 8, true));
            for (u32 t = 0; t < kBlock; ++t)
                colLoads.push_back(
                    MicroOp::load(w.elem(kbase + t, cbase + c), 8,
                                  true));
            co_await ctx.batch(colLoads);
            std::vector<MicroOp> fmas(kBlock,
                                      MicroOp::fpuOp(FpuOp::Fma, true));
            co_await ctx.batch(fmas);
            double acc = toD(colLoads[0].result);
            for (u32 t = 0; t < kBlock; ++t)
                acc -= lrow[t] * toD(colLoads[1 + t].result);
            co_await ctx.store(w.elem(rbase + r, cbase + c), toB(acc),
                               8);
            co_await ctx.alu(3, true);
        }
    }
}

GuestTask
luWorker(GuestCtx &ctx, LuWorld &w)
{
    const u32 me = ctx.index();
    for (u32 k = 0; k < w.nb; ++k) {
        if (w.owner(k, k) == me)
            co_await factorDiag(ctx, w, k);
        co_await detail::barrier(ctx, w.sync);

        for (u32 bi = k + 1; bi < w.nb; ++bi)
            if (w.owner(bi, k) == me)
                co_await solveColBlock(ctx, w, bi, k);
        for (u32 bj = k + 1; bj < w.nb; ++bj)
            if (w.owner(k, bj) == me)
                co_await solveRowBlock(ctx, w, k, bj);
        co_await detail::barrier(ctx, w.sync);

        for (u32 bi = k + 1; bi < w.nb; ++bi)
            for (u32 bj = k + 1; bj < w.nb; ++bj)
                if (w.owner(bi, bj) == me)
                    co_await gemmBlock(ctx, w, bi, bj, k);
        co_await detail::barrier(ctx, w.sync);
    }
}

} // namespace

SplashResult
runLu(u32 threads, u32 n, BarrierKind barrier, const ChipConfig &chipCfg)
{
    if (n % kBlock != 0)
        fatal("LU matrix order must be a multiple of %u (got %u)",
              kBlock, n);
    if (!isPow2(threads))
        fatal("LU requires a power-of-two number of processors");

    arch::Chip chip(chipCfg);
    exec::GuestEngine engine(chip);
    LuWorld w;
    w.n = n;
    w.nb = n / kBlock;
    w.threads = threads;
    w.chip = &chip;
    const u32 logp = log2i(threads);
    w.pr = 1u << (logp / 2);
    w.pc = threads / w.pr;
    w.a = igAddr(kIgDefault, engine.heap().alloc(n * n * 8, 64));
    w.sync.init(engine.heap(), threads, barrier);

    // Diagonally dominant random matrix: stable without pivoting.
    Rng rng(0x1111 + n);
    std::vector<double> host(size_t(n) * n);
    for (u32 i = 0; i < n; ++i) {
        for (u32 j = 0; j < n; ++j) {
            double v = rng.uniform(-1, 1);
            if (i == j)
                v += double(n);
            host[size_t(i) * n + j] = v;
            chip.memWrite(w.elem(i, j), 8, toB(v), 0);
        }
    }

    engine.spawn(threads,
                 [&](GuestCtx &ctx) { return luWorker(ctx, w); });
    if (engine.run(50'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("LU did not finish within the cycle limit");

    // Host reference factorization (same right-looking algorithm).
    for (u32 k = 0; k < n; ++k) {
        const double d = host[size_t(k) * n + k];
        for (u32 i = k + 1; i < n; ++i) {
            const double l = host[size_t(i) * n + k] / d;
            host[size_t(i) * n + k] = l;
            for (u32 j = k + 1; j < n; ++j)
                host[size_t(i) * n + j] -= l * host[size_t(k) * n + j];
        }
    }
    bool verified = true;
    for (u32 i = 0; i < n && verified; i += 7) {
        for (u32 j = 0; j < n; j += 11) {
            const double got = toD(chip.memRead(w.elem(i, j), 8, 0));
            const double want = host[size_t(i) * n + j];
            if (std::fabs(got - want) >
                1e-6 * std::max(1.0, std::fabs(want))) {
                warn("LU verify failed at (%u,%u): got %g want %g", i,
                     j, got, want);
                verified = false;
                break;
            }
        }
    }

    SplashResult result;
    detail::harvest(chip, &result);
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
