/**
 * @file
 * Ocean-style grid relaxation on the execution-driven frontend
 * (Figure 3): red-black successive over-relaxation of a 5-point
 * Laplacian on a square grid with fixed boundary values, the
 * communication/computation pattern of SPLASH-2 Ocean's solver phase.
 *
 * Rows are block-partitioned over threads; each color sweep ends in a
 * barrier. Red-black ordering makes each phase order-independent, so
 * the host reference reproduces the simulated arithmetic exactly.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/log.h"
#include "common/rng.h"
#include "workloads/splash.h"

namespace cyclops::workloads
{

namespace
{

using arch::FpuOp;
using arch::igAddr;
using arch::kIgDefault;
using exec::GuestCtx;
using exec::GuestTask;
using exec::MicroOp;

constexpr u32 kIterations = 6;
constexpr double kOmega = 1.5;

struct OceanWorld
{
    u32 g = 0; ///< grid edge including boundary
    u32 threads = 0;
    Addr u = 0;
    detail::SplashSync sync;
    arch::Chip *chip = nullptr;

    Addr at(u32 i, u32 j) const { return u + (i * g + j) * 8; }
};

double
toD(u64 raw)
{
    double v;
    std::memcpy(&v, &raw, 8);
    return v;
}

u64
toB(double v)
{
    u64 raw;
    std::memcpy(&raw, &v, 8);
    return raw;
}

GuestTask
sweepColor(GuestCtx &ctx, OceanWorld &w, detail::Range rows, u32 color)
{
    for (u32 i = rows.begin; i < rows.end; ++i) {
        for (u32 j = 1 + ((i + color) & 1); j < w.g - 1; j += 2) {
            std::vector<MicroOp> loads;
            loads.push_back(MicroOp::load(w.at(i, j), 8, true));
            loads.push_back(MicroOp::load(w.at(i - 1, j), 8, true));
            loads.push_back(MicroOp::load(w.at(i + 1, j), 8, true));
            loads.push_back(MicroOp::load(w.at(i, j - 1), 8, true));
            loads.push_back(MicroOp::load(w.at(i, j + 1), 8, true));
            co_await ctx.batch(loads);
            std::vector<MicroOp> flops;
            flops.insert(flops.end(), 4,
                         MicroOp::fpuOp(FpuOp::Add, true));
            flops.insert(flops.end(), 2,
                         MicroOp::fpuOp(FpuOp::Mul, true));
            co_await ctx.batch(flops);
            const double center = toD(loads[0].result);
            const double sum = toD(loads[1].result) +
                               toD(loads[2].result) +
                               toD(loads[3].result) +
                               toD(loads[4].result);
            const double fresh =
                center + kOmega * (0.25 * sum - center);
            co_await ctx.store(w.at(i, j), toB(fresh), 8);
            co_await ctx.alu(3, true);
        }
    }
}

GuestTask
oceanWorker(GuestCtx &ctx, OceanWorld &w)
{
    // Interior rows only; boundaries are fixed.
    detail::Range rows =
        detail::splitRange(w.g - 2, w.threads, ctx.index());
    rows.begin += 1;
    rows.end += 1;
    for (u32 iter = 0; iter < kIterations; ++iter) {
        co_await sweepColor(ctx, w, rows, 0);
        co_await detail::barrier(ctx, w.sync);
        co_await sweepColor(ctx, w, rows, 1);
        co_await detail::barrier(ctx, w.sync);
    }
}

} // namespace

SplashResult
runOcean(u32 threads, u32 grid, BarrierKind barrier,
         const ChipConfig &chipCfg)
{
    if (grid < 4)
        fatal("ocean grid too small (%u)", grid);
    if (threads > grid - 2)
        fatal("ocean needs at least one interior row per thread");

    arch::Chip chip(chipCfg);
    exec::GuestEngine engine(chip);
    OceanWorld w;
    w.g = grid;
    w.threads = threads;
    w.chip = &chip;
    w.u = igAddr(kIgDefault,
                 engine.heap().alloc(grid * grid * 8, 64));
    w.sync.init(engine.heap(), threads, barrier);

    Rng rng(0x0CEA + grid);
    std::vector<double> host(size_t(grid) * grid);
    for (u32 i = 0; i < grid; ++i) {
        for (u32 j = 0; j < grid; ++j) {
            const double v = rng.uniform(0, 1);
            host[size_t(i) * grid + j] = v;
            chip.memWrite(w.at(i, j), 8, toB(v), 0);
        }
    }

    engine.spawn(threads,
                 [&](GuestCtx &ctx) { return oceanWorker(ctx, w); });
    if (engine.run(50'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("ocean did not finish within the cycle limit");

    // Host mirror: red-black phases are order-independent, so this
    // reproduces the simulation exactly.
    for (u32 iter = 0; iter < kIterations; ++iter) {
        for (u32 color = 0; color < 2; ++color) {
            for (u32 i = 1; i < grid - 1; ++i) {
                for (u32 j = 1 + ((i + color) & 1); j < grid - 1;
                     j += 2) {
                    double &center = host[size_t(i) * grid + j];
                    const double sum =
                        host[size_t(i - 1) * grid + j] +
                        host[size_t(i + 1) * grid + j] +
                        host[size_t(i) * grid + j - 1] +
                        host[size_t(i) * grid + j + 1];
                    center = center + kOmega * (0.25 * sum - center);
                }
            }
        }
    }
    bool verified = true;
    for (u32 i = 1; i < grid - 1 && verified; i += 3) {
        for (u32 j = 1; j < grid - 1; j += 5) {
            const double got = toD(chip.memRead(w.at(i, j), 8, 0));
            const double want = host[size_t(i) * grid + j];
            if (std::fabs(got - want) > 1e-12) {
                warn("ocean verify failed at (%u,%u): got %.17g want "
                     "%.17g", i, j, got, want);
                verified = false;
                break;
            }
        }
    }

    SplashResult result;
    detail::harvest(chip, &result);
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
