/**
 * @file
 * 2-D uniform fast multipole method (lite) on the execution-driven
 * frontend (Figure 3).
 *
 * Complex-logarithm potentials with order-P multipole and local
 * expansions on a uniform quadtree: P2M, M2M up the tree, M2L over the
 * well-separated interaction lists, L2L down, then L2P plus direct P2P
 * among neighbor leaves. Cells are partitioned over threads at each
 * level with barriers between phases — the communication skeleton of
 * SPLASH-2 FMM (see DESIGN.md for the "lite" substitutions).
 *
 * Expansion values are computed by a host mirror shared with the
 * verification path; guests replay every coefficient and particle
 * access through the memory system for timing.
 */

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/log.h"
#include "common/rng.h"
#include "workloads/splash.h"

namespace cyclops::workloads
{

namespace
{

using arch::FpuOp;
using arch::igAddr;
using arch::kIgDefault;
using exec::GuestCtx;
using exec::GuestTask;
using exec::MicroOp;
using Complex = std::complex<double>;

constexpr u32 kOrder = 8;   ///< expansion terms beyond the monopole
constexpr u32 kDepth = 4;   ///< quadtree levels 0..kDepth
constexpr u32 kCoeffs = kOrder + 1;

double
binom(u32 n, u32 k)
{
    double result = 1;
    for (u32 i = 0; i < k; ++i)
        result = result * double(n - i) / double(i + 1);
    return result;
}

/** Host-side FMM state: geometry, expansions, results. */
struct HostFmm
{
    u32 particles = 0;
    std::vector<double> px, py; ///< positions in [0,1)
    double q = 0;               ///< uniform charge
    // Per level: edge cells, expansions indexed cell*kCoeffs+k.
    std::vector<std::vector<Complex>> mult, local;
    std::vector<std::vector<u32>> leafOf; ///< particle ids per leaf
    std::vector<double> potential;        ///< result per particle

    static u32 edge(u32 level) { return 1u << level; }
    static u32 cells(u32 level) { return 1u << (2 * level); }

    u32
    leafIndexOf(u32 p) const
    {
        const u32 e = edge(kDepth);
        const u32 ix = std::min(e - 1, u32(px[p] * e));
        const u32 iy = std::min(e - 1, u32(py[p] * e));
        return iy * e + ix;
    }

    static Complex
    center(u32 level, u32 cell)
    {
        const u32 e = edge(level);
        const u32 ix = cell % e, iy = cell / e;
        const double h = 1.0 / e;
        return Complex((ix + 0.5) * h, (iy + 0.5) * h);
    }

    /** Well-separated interaction list of @p cell at @p level. */
    std::vector<u32>
    interactionList(u32 level, u32 cell) const
    {
        std::vector<u32> list;
        if (level < 2)
            return list;
        const u32 e = edge(level);
        const s32 ix = s32(cell % e), iy = s32(cell / e);
        const s32 pxc = ix / 2, pyc = iy / 2;
        for (s32 ny = pyc - 1; ny <= pyc + 1; ++ny) {
            for (s32 nx = pxc - 1; nx <= pxc + 1; ++nx) {
                if (nx < 0 || ny < 0 || nx >= s32(e / 2) ||
                    ny >= s32(e / 2))
                    continue;
                for (u32 cy = 0; cy < 2; ++cy) {
                    for (u32 cx = 0; cx < 2; ++cx) {
                        const s32 jx = nx * 2 + s32(cx);
                        const s32 jy = ny * 2 + s32(cy);
                        if (std::abs(jx - ix) <= 1 &&
                            std::abs(jy - iy) <= 1)
                            continue; // neighbor, handled by P2P/finer
                        list.push_back(u32(jy) * e + u32(jx));
                    }
                }
            }
        }
        return list;
    }

    std::vector<u32>
    neighborLeaves(u32 cell) const
    {
        std::vector<u32> list;
        const u32 e = edge(kDepth);
        const s32 ix = s32(cell % e), iy = s32(cell / e);
        for (s32 ny = iy - 1; ny <= iy + 1; ++ny)
            for (s32 nx = ix - 1; nx <= ix + 1; ++nx)
                if (nx >= 0 && ny >= 0 && nx < s32(e) && ny < s32(e))
                    list.push_back(u32(ny) * e + u32(nx));
        return list;
    }

    void
    init(u32 n, Rng &rng)
    {
        particles = n;
        q = 1.0 / n;
        px.resize(n);
        py.resize(n);
        for (u32 i = 0; i < n; ++i) {
            px[i] = rng.uniform(0.01, 0.99);
            py[i] = rng.uniform(0.01, 0.99);
        }
        mult.resize(kDepth + 1);
        local.resize(kDepth + 1);
        for (u32 l = 0; l <= kDepth; ++l) {
            mult[l].assign(size_t(cells(l)) * kCoeffs, Complex{});
            local[l].assign(size_t(cells(l)) * kCoeffs, Complex{});
        }
        leafOf.assign(cells(kDepth), {});
        for (u32 p = 0; p < n; ++p)
            leafOf[leafIndexOf(p)].push_back(p);
        potential.assign(n, 0.0);
    }

    Complex *m(u32 level, u32 cell) { return &mult[level][size_t(cell) * kCoeffs]; }
    Complex *loc(u32 level, u32 cell) { return &local[level][size_t(cell) * kCoeffs]; }

    void
    p2m(u32 cell)
    {
        Complex *a = m(kDepth, cell);
        const Complex zc = center(kDepth, cell);
        for (u32 p : leafOf[cell]) {
            const Complex dz = Complex(px[p], py[p]) - zc;
            a[0] += q;
            Complex zk = dz;
            for (u32 k = 1; k <= kOrder; ++k) {
                a[k] -= q * zk / double(k);
                zk *= dz;
            }
        }
    }

    void
    m2m(u32 level, u32 cell)
    {
        // Gather the four children of @p cell at @p level+1.
        Complex *b = m(level, cell);
        const Complex zp = center(level, cell);
        const u32 e = edge(level);
        const u32 ix = cell % e, iy = cell / e;
        for (u32 cy = 0; cy < 2; ++cy) {
            for (u32 cx = 0; cx < 2; ++cx) {
                const u32 child =
                    (iy * 2 + cy) * edge(level + 1) + ix * 2 + cx;
                const Complex *a = m(level + 1, child);
                const Complex z0 = center(level + 1, child) - zp;
                b[0] += a[0];
                Complex z0l = z0;
                for (u32 l = 1; l <= kOrder; ++l) {
                    Complex sum = -a[0] * z0l / double(l);
                    Complex zpow(1, 0); // z0^(l-k), built downward
                    for (u32 k = l; k >= 1; --k) {
                        sum += a[k] * zpow * binom(l - 1, k - 1);
                        zpow *= z0;
                    }
                    b[l] += sum;
                    z0l *= z0;
                }
            }
        }
    }

    void
    m2l(u32 level, u32 target, u32 source)
    {
        const Complex z0 = center(level, source) - center(level, target);
        const Complex *a = m(level, source);
        Complex *b = loc(level, target);
        // b0 = a0 log(-z0) + sum a_k (-1)^k / z0^k
        Complex sum0 = a[0] * std::log(-z0);
        Complex zk = z0;
        double sign = -1;
        for (u32 k = 1; k <= kOrder; ++k) {
            sum0 += a[k] * sign / zk;
            zk *= z0;
            sign = -sign;
        }
        b[0] += sum0;
        Complex z0l = z0;
        for (u32 l = 1; l <= kOrder; ++l) {
            Complex sum = -a[0] / (double(l) * z0l);
            Complex zkk = z0;
            double s = -1;
            for (u32 k = 1; k <= kOrder; ++k) {
                sum += a[k] * s * binom(l + k - 1, k - 1) / (z0l * zkk);
                zkk *= z0;
                s = -s;
            }
            b[l] += sum;
            z0l *= z0;
        }
    }

    void
    l2l(u32 level, u32 cell)
    {
        // Push this local expansion to the four children.
        const Complex *b = loc(level, cell);
        const Complex zl = center(level, cell);
        const u32 e = edge(level);
        const u32 ix = cell % e, iy = cell / e;
        for (u32 cy = 0; cy < 2; ++cy) {
            for (u32 cx = 0; cx < 2; ++cx) {
                const u32 child =
                    (iy * 2 + cy) * edge(level + 1) + ix * 2 + cx;
                Complex *bc = loc(level + 1, child);
                const Complex z0 = center(level + 1, child) - zl;
                for (u32 l = 0; l <= kOrder; ++l) {
                    Complex sum = 0;
                    for (u32 k = l; k <= kOrder; ++k)
                        sum += b[k] * binom(k, l) *
                               std::pow(z0, double(k - l));
                    bc[l] += sum;
                }
            }
        }
    }

    void
    l2pAndP2p(u32 cell)
    {
        const Complex *b = loc(kDepth, cell);
        const Complex zl = center(kDepth, cell);
        const auto neighbors = neighborLeaves(cell);
        for (u32 p : leafOf[cell]) {
            const Complex z = Complex(px[p], py[p]) - zl;
            // Horner evaluation of the local expansion.
            Complex acc = b[kOrder];
            for (s32 k = s32(kOrder) - 1; k >= 0; --k)
                acc = acc * z + b[k];
            double phi = acc.real();
            // Direct interactions with neighbor-leaf particles.
            for (u32 nb : neighbors) {
                for (u32 s : leafOf[nb]) {
                    if (s == p)
                        continue;
                    const double dx = px[p] - px[s];
                    const double dy = py[p] - py[s];
                    phi += q * 0.5 * std::log(dx * dx + dy * dy);
                }
            }
            potential[p] = phi;
        }
    }

    void
    solve()
    {
        for (u32 cell = 0; cell < cells(kDepth); ++cell)
            p2m(cell);
        for (u32 level = kDepth; level-- > 0;)
            for (u32 cell = 0; cell < cells(level); ++cell)
                m2m(level, cell);
        for (u32 level = 2; level <= kDepth; ++level)
            for (u32 cell = 0; cell < cells(level); ++cell)
                for (u32 source : interactionList(level, cell))
                    m2l(level, cell, source);
        for (u32 level = 2; level < kDepth; ++level)
            for (u32 cell = 0; cell < cells(level); ++cell)
                l2l(level, cell);
        for (u32 cell = 0; cell < cells(kDepth); ++cell)
            l2pAndP2p(cell);
    }

    /** Direct O(N^2) potential for accuracy spot checks. */
    double
    direct(u32 p) const
    {
        double phi = 0;
        for (u32 s = 0; s < particles; ++s) {
            if (s == p)
                continue;
            const double dx = px[p] - px[s];
            const double dy = py[p] - py[s];
            phi += q * 0.5 * std::log(dx * dx + dy * dy);
        }
        return phi;
    }
};

/** Simulated-memory layout mirroring HostFmm. */
struct FmmWorld
{
    u32 particles = 0;
    u32 threads = 0;
    Addr pos = 0;                       ///< 2 doubles per particle
    Addr pot = 0;                       ///< 1 double per particle
    std::vector<Addr> mult, local;      ///< per level coefficient arenas
    detail::SplashSync sync;
    HostFmm host;

    Addr
    coeff(const std::vector<Addr> &arena, u32 level, u32 cell,
          u32 k) const
    {
        return arena[level] + (size_t(cell) * kCoeffs + k) * 16;
    }
};

u64
toB(double v)
{
    u64 raw;
    std::memcpy(&raw, &v, 8);
    return raw;
}

/** Charge a batch of @p n coefficient loads at @p base. */
GuestTask
chargeCoeffLoads(GuestCtx &ctx, Addr base, u32 n)
{
    std::vector<MicroOp> loads;
    for (u32 k = 0; k < n; ++k) {
        loads.push_back(MicroOp::load(base + k * 16, 8, true));
        loads.push_back(MicroOp::load(base + k * 16 + 8, 8, true));
    }
    co_await ctx.batch(loads);
}

GuestTask
chargeCoeffStores(GuestCtx &ctx, FmmWorld &w,
                  const std::vector<Addr> &arena, u32 level, u32 cell)
{
    std::vector<MicroOp> stores;
    const Complex *values = &arena == &w.mult
                                ? w.host.m(level, cell)
                                : w.host.loc(level, cell);
    for (u32 k = 0; k < kCoeffs; ++k) {
        const Addr at = w.coeff(arena, level, cell, k);
        stores.push_back(
            MicroOp::store(at, toB(values[k].real()), 8, true));
        stores.push_back(
            MicroOp::store(at + 8, toB(values[k].imag()), 8, true));
    }
    co_await ctx.batch(stores);
}

GuestTask
chargeFlops(GuestCtx &ctx, u32 muls, u32 adds)
{
    while (muls || adds) {
        std::vector<MicroOp> flops;
        const u32 m = std::min(muls, 16u);
        const u32 a = std::min(adds, 16u);
        flops.insert(flops.end(), m, MicroOp::fpuOp(FpuOp::Mul, true));
        flops.insert(flops.end(), a, MicroOp::fpuOp(FpuOp::Add, true));
        co_await ctx.batch(flops);
        muls -= m;
        adds -= a;
    }
}

GuestTask
fmmWorker(GuestCtx &ctx, FmmWorld &w)
{
    HostFmm &h = w.host;
    const u32 me = ctx.index();

    // --- P2M over my leaves ------------------------------------------------
    {
        const auto mine = detail::splitRange(
            HostFmm::cells(kDepth), w.threads, me);
        for (u32 cell = mine.begin; cell < mine.end; ++cell) {
            for (u32 p : h.leafOf[cell]) {
                std::vector<MicroOp> loads;
                loads.push_back(MicroOp::load(w.pos + p * 16, 8, true));
                loads.push_back(
                    MicroOp::load(w.pos + p * 16 + 8, 8, true));
                co_await ctx.batch(loads);
                co_await chargeFlops(ctx, 2 * kOrder, 2 * kOrder);
                co_await ctx.alu(3);
            }
            co_await chargeCoeffStores(ctx, w, w.mult, kDepth, cell);
        }
    }
    co_await detail::barrier(ctx, w.sync);

    // --- M2M up the tree, one barrier per level -----------------------------
    for (u32 level = kDepth; level-- > 0;) {
        const auto mine =
            detail::splitRange(HostFmm::cells(level), w.threads, me);
        for (u32 cell = mine.begin; cell < mine.end; ++cell) {
            const u32 e = HostFmm::edge(level);
            const u32 ix = cell % e, iy = cell / e;
            for (u32 cy = 0; cy < 2; ++cy) {
                for (u32 cx = 0; cx < 2; ++cx) {
                    const u32 child = (iy * 2 + cy) *
                                          HostFmm::edge(level + 1) +
                                      ix * 2 + cx;
                    co_await chargeCoeffLoads(
                        ctx, w.coeff(w.mult, level + 1, child, 0),
                        kCoeffs);
                    co_await chargeFlops(ctx, kOrder * kOrder / 2,
                                         kOrder * kOrder / 2);
                }
            }
            co_await chargeCoeffStores(ctx, w, w.mult, level, cell);
            co_await ctx.alu(6);
        }
        co_await detail::barrier(ctx, w.sync);
    }

    // --- M2L over the interaction lists --------------------------------------
    for (u32 level = 2; level <= kDepth; ++level) {
        const auto mine =
            detail::splitRange(HostFmm::cells(level), w.threads, me);
        for (u32 cell = mine.begin; cell < mine.end; ++cell) {
            for (u32 source : h.interactionList(level, cell)) {
                // Multipoles are read-only after the upward pass and
                // shared by many targets: replicate them through
                // interest group zero (own cache), the paper's use of
                // the flexible cache organization for read-only data.
                co_await chargeCoeffLoads(
                    ctx,
                    arch::igPhys(w.coeff(w.mult, level, source, 0)),
                    kCoeffs);
                co_await chargeFlops(ctx, kOrder * kOrder,
                                     kOrder * kOrder);
                co_await ctx.alu(4);
            }
            co_await chargeCoeffStores(ctx, w, w.local, level, cell);
        }
        co_await detail::barrier(ctx, w.sync);
    }

    // --- L2L down, one barrier per level --------------------------------------
    for (u32 level = 2; level < kDepth; ++level) {
        const auto mine =
            detail::splitRange(HostFmm::cells(level), w.threads, me);
        for (u32 cell = mine.begin; cell < mine.end; ++cell) {
            co_await chargeCoeffLoads(
                ctx, w.coeff(w.local, level, cell, 0), kCoeffs);
            for (u32 c = 0; c < 4; ++c)
                co_await chargeFlops(ctx, kOrder * kOrder / 2,
                                     kOrder * kOrder / 2);
            co_await ctx.alu(6);
        }
        co_await detail::barrier(ctx, w.sync);
    }

    // --- L2P and P2P over my leaves ---------------------------------------------
    {
        const auto mine = detail::splitRange(
            HostFmm::cells(kDepth), w.threads, me);
        for (u32 cell = mine.begin; cell < mine.end; ++cell) {
            co_await chargeCoeffLoads(
                ctx, w.coeff(w.local, kDepth, cell, 0), kCoeffs);
            const auto neighbors = h.neighborLeaves(cell);
            for (u32 p : h.leafOf[cell]) {
                co_await chargeFlops(ctx, kOrder, kOrder); // Horner
                for (u32 nb : neighbors) {
                    for (u32 s : h.leafOf[nb]) {
                        if (s == p)
                            continue;
                        // Positions are read-only: replicate locally.
                        const Addr spos =
                            arch::igPhys(w.pos + s * 16);
                        std::vector<MicroOp> loads;
                        loads.push_back(MicroOp::load(spos, 8, true));
                        loads.push_back(
                            MicroOp::load(spos + 8, 8, true));
                        co_await ctx.batch(loads);
                        // dx, dy, squares, and log(r2) charged as a
                        // table-plus-polynomial evaluation on the
                        // pipelined units (the shared divide/sqrt unit
                        // would serialize the whole quad).
                        std::vector<MicroOp> flops;
                        flops.insert(flops.end(), 3,
                                     MicroOp::fpuOp(FpuOp::Add, true));
                        flops.insert(flops.end(), 2,
                                     MicroOp::fpuOp(FpuOp::Mul, true));
                        flops.insert(flops.end(), 4,
                                     MicroOp::fpuOp(FpuOp::Fma, true));
                        co_await ctx.batch(flops);
                        co_await ctx.alu(2);
                    }
                }
                co_await ctx.store(w.pot + p * 8,
                                   toB(h.potential[p]), 8);
            }
        }
    }
    co_await detail::barrier(ctx, w.sync);
}

} // namespace

SplashResult
runFmm(u32 threads, u32 particles, BarrierKind barrier,
       const ChipConfig &chipCfg)
{
    if (particles < threads)
        fatal("FMM needs at least one particle per thread");

    arch::Chip chip(chipCfg);
    exec::GuestEngine engine(chip);
    FmmWorld w;
    w.particles = particles;
    w.threads = threads;

    Rng rng(0xF33 + particles);
    w.host.init(particles, rng);
    w.host.solve(); // expansion values shared with the guests

    kernel::Heap &heap = engine.heap();
    w.pos = igAddr(kIgDefault, heap.alloc(particles * 16, 64));
    w.pot = igAddr(kIgDefault, heap.alloc(particles * 8, 64));
    for (u32 l = 0; l <= kDepth; ++l) {
        w.mult.push_back(igAddr(
            kIgDefault,
            heap.alloc(HostFmm::cells(l) * kCoeffs * 16, 64)));
        w.local.push_back(igAddr(
            kIgDefault,
            heap.alloc(HostFmm::cells(l) * kCoeffs * 16, 64)));
    }
    w.sync.init(heap, threads, barrier);
    for (u32 p = 0; p < particles; ++p) {
        chip.memWrite(w.pos + p * 16, 8, toB(w.host.px[p]), 0);
        chip.memWrite(w.pos + p * 16 + 8, 8, toB(w.host.py[p]), 0);
    }

    engine.spawn(threads,
                 [&](GuestCtx &ctx) { return fmmWorker(ctx, w); });
    if (engine.run(50'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("FMM did not finish within the cycle limit");

    // Accuracy against the direct sum (multipole truncation error),
    // and agreement of the stored results with the host values.
    bool verified = true;
    for (u32 p = 0; p < particles && verified; p += 131) {
        double stored;
        const u64 raw = chip.memRead(w.pot + p * 8, 8, 0);
        std::memcpy(&stored, &raw, 8);
        if (stored != w.host.potential[p]) {
            warn("FMM stored potential mismatch at %u", p);
            verified = false;
        }
        const double exact = w.host.direct(p);
        if (std::fabs(stored - exact) >
            1e-3 * std::max(1.0, std::fabs(exact))) {
            warn("FMM accuracy failed at %u: fmm %.8g direct %.8g", p,
                 stored, exact);
            verified = false;
        }
    }

    SplashResult result;
    detail::harvest(chip, &result);
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
