/**
 * @file
 * Barnes-Hut N-body (lite) on the execution-driven frontend
 * (Figure 3).
 *
 * A 3-D octree is rebuilt each step; the force phase distributes
 * bodies over threads, each traversing the shared tree in simulated
 * memory with the theta opening criterion — the irregular, read-mostly
 * sharing pattern of SPLASH-2 Barnes. Tree build is charged to thread
 * 0 (the serial fraction); see DESIGN.md for the "lite" substitutions.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include "arch/chip.h"
#include "arch/interest_group.h"
#include "common/log.h"
#include "common/rng.h"
#include "workloads/splash.h"

namespace cyclops::workloads
{

namespace
{

using arch::FpuOp;
using arch::igAddr;
using arch::kIgDefault;
using exec::GuestCtx;
using exec::GuestTask;
using exec::MicroOp;

constexpr double kTheta = 0.6;
constexpr double kSoftening = 1e-3;
constexpr double kDt = 0.005;
constexpr u32 kSteps = 2;
constexpr u32 kNodeBytes = 128;
constexpr u32 kHotNodes = 64; ///< top-of-tree nodes replicated locally

/** Host-side octree over the current body positions. */
struct HostTree
{
    struct Node
    {
        double mass = 0;
        double cx = 0, cy = 0, cz = 0; ///< center of mass
        double x0 = 0, y0 = 0, z0 = 0; ///< cell corner
        double size = 0;
        s32 body = -1;        ///< body index for leaves
        u32 children[8] = {}; ///< child index + 1; 0 = none
        bool leaf = true;
    };

    std::vector<Node> nodes;

    void
    build(const std::vector<double> &px, const std::vector<double> &py,
          const std::vector<double> &pz)
    {
        nodes.clear();
        nodes.push_back(Node{});
        nodes[0].size = 1.0;
        nodes[0].leaf = true;
        nodes[0].body = -1;
        for (u32 b = 0; b < px.size(); ++b)
            insert(0, b, px, py, pz);
        computeMass(0, px, py, pz);
    }

    void
    insert(u32 node, u32 body, const std::vector<double> &px,
           const std::vector<double> &py, const std::vector<double> &pz)
    {
        Node &n = nodes[node];
        if (n.leaf && n.body < 0) {
            n.body = s32(body);
            return;
        }
        if (n.leaf) {
            const s32 old = n.body;
            n.leaf = false;
            n.body = -1;
            insert(node, u32(old), px, py, pz);
            insert(node, body, px, py, pz);
            return;
        }
        const double half = n.size / 2;
        const u32 ox = px[body] >= n.x0 + half;
        const u32 oy = py[body] >= n.y0 + half;
        const u32 oz = pz[body] >= n.z0 + half;
        const u32 octant = ox | (oy << 1) | (oz << 2);
        if (nodes[node].children[octant] == 0) {
            Node child;
            child.size = half;
            child.x0 = nodes[node].x0 + (ox ? half : 0);
            child.y0 = nodes[node].y0 + (oy ? half : 0);
            child.z0 = nodes[node].z0 + (oz ? half : 0);
            nodes.push_back(child);
            nodes[node].children[octant] = u32(nodes.size());
        }
        insert(nodes[node].children[octant] - 1, body, px, py, pz);
    }

    void
    computeMass(u32 node, const std::vector<double> &px,
                const std::vector<double> &py,
                const std::vector<double> &pz)
    {
        Node &n = nodes[node];
        if (n.leaf) {
            if (n.body >= 0) {
                n.mass = 1.0 / double(px.size());
                n.cx = px[n.body];
                n.cy = py[n.body];
                n.cz = pz[n.body];
            }
            return;
        }
        n.mass = n.cx = n.cy = n.cz = 0;
        for (u32 children : n.children) {
            if (!children)
                continue;
            computeMass(children - 1, px, py, pz);
            const Node &c = nodes[children - 1];
            n.mass += c.mass;
            n.cx += c.mass * c.cx;
            n.cy += c.mass * c.cy;
            n.cz += c.mass * c.cz;
        }
        if (n.mass > 0) {
            n.cx /= n.mass;
            n.cy /= n.mass;
            n.cz /= n.mass;
        }
    }

    /**
     * Theta-criterion traversal: accumulates the acceleration on body
     * @p b and appends (nodeIndex, accepted) for the timing replay.
     */
    void
    accel(u32 b, const std::vector<double> &px,
          const std::vector<double> &py, const std::vector<double> &pz,
          double *ax, double *ay, double *az,
          std::vector<std::pair<u32, bool>> *visits) const
    {
        *ax = *ay = *az = 0;
        walk(0, b, px, py, pz, ax, ay, az, visits);
    }

    void
    walk(u32 node, u32 b, const std::vector<double> &px,
         const std::vector<double> &py, const std::vector<double> &pz,
         double *ax, double *ay, double *az,
         std::vector<std::pair<u32, bool>> *visits) const
    {
        const Node &n = nodes[node];
        if (n.mass == 0)
            return;
        const double dx = n.cx - px[b];
        const double dy = n.cy - py[b];
        const double dz = n.cz - pz[b];
        const double dist2 =
            dx * dx + dy * dy + dz * dz + kSoftening * kSoftening;
        const bool isSelf = n.leaf && n.body == s32(b);
        const bool accept =
            n.leaf || n.size * n.size < kTheta * kTheta * dist2;
        if (visits)
            visits->emplace_back(node, accept);
        if (accept) {
            if (isSelf)
                return;
            const double dist = std::sqrt(dist2);
            const double inv3 = n.mass / (dist2 * dist);
            *ax += inv3 * dx;
            *ay += inv3 * dy;
            *az += inv3 * dz;
            return;
        }
        for (u32 children : n.children)
            if (children)
                walk(children - 1, b, px, py, pz, ax, ay, az, visits);
    }
};

struct BarnesWorld
{
    u32 bodies = 0;
    u32 threads = 0;
    Addr pos = 0;   ///< 3 doubles per body
    Addr vel = 0;   ///< 3 doubles per body
    Addr acc = 0;   ///< 3 doubles per body
    Addr tree = 0;  ///< node records, kNodeBytes each
    u32 treeCap = 0;
    detail::SplashSync sync;
    arch::Chip *chip = nullptr;
    HostTree host;
    std::vector<double> px, py, pz, vx, vy, vz;

    Addr body3(Addr base, u32 b) const { return base + b * 24; }
    Addr node(u32 i) const { return tree + i * kNodeBytes; }
};

u64
toB(double v)
{
    u64 raw;
    std::memcpy(&raw, &v, 8);
    return raw;
}

/** Thread 0 rebuilds the tree; the build cost is charged to it. */
GuestTask
buildTree(GuestCtx &ctx, BarnesWorld &w)
{
    w.host.build(w.px, w.py, w.pz);
    if (w.host.nodes.size() * kNodeBytes > w.treeCap)
        fatal("Barnes tree outgrew its arena (%zu nodes)",
              w.host.nodes.size());
    // Write each node record into simulated memory: mass, center of
    // mass, size, and the eight child links.
    for (u32 i = 0; i < w.host.nodes.size(); ++i) {
        const HostTree::Node &n = w.host.nodes[i];
        const Addr at = w.node(i);
        std::vector<MicroOp> stores;
        stores.push_back(MicroOp::store(at, toB(n.mass), 8, true));
        stores.push_back(MicroOp::store(at + 8, toB(n.cx), 8, true));
        stores.push_back(MicroOp::store(at + 16, toB(n.cy), 8, true));
        stores.push_back(MicroOp::store(at + 24, toB(n.cz), 8, true));
        stores.push_back(MicroOp::store(at + 32, toB(n.size), 8, true));
        for (u32 c = 0; c < 8; ++c)
            stores.push_back(MicroOp::store(at + 40 + c * 4,
                                            n.children[c], 4, true));
        co_await ctx.batch(stores);
        co_await ctx.alu(12); // insertion and bookkeeping work
    }
}

GuestTask
forcePhase(GuestCtx &ctx, BarnesWorld &w, u32 me)
{
    // Interleaved body assignment: per-body traversal cost varies with
    // local tree density, so a blocked split load-imbalances badly
    // (SPLASH-2 uses costzones; interleaving is the cheap equivalent).
    std::vector<std::pair<u32, bool>> visits;
    for (u32 b = me; b < w.bodies; b += w.threads) {
        double ax, ay, az;
        visits.clear();
        w.host.accel(b, w.px, w.py, w.pz, &ax, &ay, &az, &visits);

        // Body position loads.
        std::vector<MicroOp> loads;
        loads.push_back(MicroOp::load(w.body3(w.pos, b), 8, true));
        loads.push_back(MicroOp::load(w.body3(w.pos, b) + 8, 8, true));
        loads.push_back(MicroOp::load(w.body3(w.pos, b) + 16, 8, true));
        co_await ctx.batch(loads);

        // Replay the traversal against the shared tree records. The
        // tree is read-only during the force phase. The hot top of the
        // tree — visited by every body — is accessed through interest
        // group zero so each thread replicates it in its local cache
        // (the paper's prescribed use of the flexible cache
        // organization for shared read-only data; real code would
        // flush the build's dirty lines first). Deep nodes stay in the
        // chip-wide shared cache: the whole tree exceeds one 16 KB
        // cache, and replicating it would thrash every local cache
        // and saturate the banks with refills.
        for (const auto &[nodeIdx, accepted] : visits) {
            const Addr shared = w.node(nodeIdx);
            const Addr at = nodeIdx < kHotNodes ? arch::igPhys(shared)
                                                : shared;
            std::vector<MicroOp> nodeLoads;
            for (u32 f = 0; f < 5; ++f)
                nodeLoads.push_back(MicroOp::load(at + f * 8, 8, true));
            co_await ctx.batch(nodeLoads);
            // Opening test: 3 subtracts, 3 multiplies, compares.
            std::vector<MicroOp> flops;
            flops.insert(flops.end(), 3,
                         MicroOp::fpuOp(FpuOp::Add, true));
            flops.insert(flops.end(), 4,
                         MicroOp::fpuOp(FpuOp::Mul, true));
            co_await ctx.batch(flops);
            co_await ctx.alu(3);
            if (accepted) {
                // Force kernel. The shared divide/sqrt unit is
                // unpipelined (30 + 56 cycles) and one per quad, so a
                // naive 1/(r2*sqrt(r2)) would throttle all four
                // threads of a quad; like production N-body codes on
                // divide-weak machines, the kernel uses a Newton-
                // Raphson reciprocal square root on the pipelined
                // multiply/add datapath instead.
                std::vector<MicroOp> rsqrt(
                    4, MicroOp::fpuOp(FpuOp::Mul, true));
                co_await ctx.batch(rsqrt);
                std::vector<MicroOp> fmas(
                    8, MicroOp::fpuOp(FpuOp::Fma, true));
                co_await ctx.batch(fmas);
            } else {
                std::vector<MicroOp> kids;
                for (u32 c = 0; c < 8; ++c)
                    kids.push_back(
                        MicroOp::load(at + 40 + c * 4, 4, true));
                co_await ctx.batch(kids);
            }
        }

        std::vector<MicroOp> stores;
        stores.push_back(
            MicroOp::store(w.body3(w.acc, b), toB(ax), 8, true));
        stores.push_back(
            MicroOp::store(w.body3(w.acc, b) + 8, toB(ay), 8, true));
        stores.push_back(
            MicroOp::store(w.body3(w.acc, b) + 16, toB(az), 8, true));
        co_await ctx.batch(stores);
    }
}

GuestTask
updatePhase(GuestCtx &ctx, BarnesWorld &w, detail::Range mine)
{
    for (u32 b = mine.begin; b < mine.end; ++b) {
        std::vector<MicroOp> loads;
        for (u32 f = 0; f < 3; ++f) {
            loads.push_back(
                MicroOp::load(w.body3(w.vel, b) + f * 8, 8, true));
            loads.push_back(
                MicroOp::load(w.body3(w.acc, b) + f * 8, 8, true));
            loads.push_back(
                MicroOp::load(w.body3(w.pos, b) + f * 8, 8, true));
        }
        co_await ctx.batch(loads);
        std::vector<MicroOp> fmas(6, MicroOp::fpuOp(FpuOp::Fma, true));
        co_await ctx.batch(fmas);

        double *vs[3] = {&w.vx[b], &w.vy[b], &w.vz[b]};
        double *ps[3] = {&w.px[b], &w.py[b], &w.pz[b]};
        std::vector<MicroOp> stores;
        for (u32 f = 0; f < 3; ++f) {
            double a;
            std::memcpy(&a, &loads[3 * f + 1].result, 8);
            *vs[f] += kDt * a;
            *ps[f] += kDt * *vs[f];
            // Keep bodies inside the unit cube (reflecting walls).
            if (*ps[f] < 0) {
                *ps[f] = -*ps[f];
                *vs[f] = -*vs[f];
            }
            if (*ps[f] >= 1) {
                *ps[f] = 2.0 - *ps[f];
                *vs[f] = -*vs[f];
            }
            stores.push_back(MicroOp::store(w.body3(w.vel, b) + f * 8,
                                            toB(*vs[f]), 8, true));
            stores.push_back(MicroOp::store(w.body3(w.pos, b) + f * 8,
                                            toB(*ps[f]), 8, true));
        }
        co_await ctx.batch(stores);
        co_await ctx.alu(4);
    }
}

GuestTask
barnesWorker(GuestCtx &ctx, BarnesWorld &w)
{
    const detail::Range mine =
        detail::splitRange(w.bodies, w.threads, ctx.index());
    for (u32 step = 0; step < kSteps; ++step) {
        if (ctx.index() == 0)
            co_await buildTree(ctx, w);
        co_await detail::barrier(ctx, w.sync);
        co_await forcePhase(ctx, w, ctx.index());
        co_await detail::barrier(ctx, w.sync);
        co_await updatePhase(ctx, w, mine);
        co_await detail::barrier(ctx, w.sync);
    }
}

} // namespace

SplashResult
runBarnes(u32 threads, u32 bodies, BarrierKind barrier,
          const ChipConfig &chipCfg)
{
    if (bodies < threads)
        fatal("Barnes needs at least one body per thread");

    arch::Chip chip(chipCfg);
    exec::GuestEngine engine(chip);
    BarnesWorld w;
    w.bodies = bodies;
    w.threads = threads;
    w.chip = &chip;
    w.treeCap = bodies * 3 * kNodeBytes;
    w.pos = igAddr(kIgDefault, engine.heap().alloc(bodies * 24, 64));
    w.vel = igAddr(kIgDefault, engine.heap().alloc(bodies * 24, 64));
    w.acc = igAddr(kIgDefault, engine.heap().alloc(bodies * 24, 64));
    w.tree = igAddr(kIgDefault, engine.heap().alloc(w.treeCap, 64));
    w.sync.init(engine.heap(), threads, barrier);

    Rng rng(0xBA12 + bodies);
    w.px.resize(bodies);
    w.py.resize(bodies);
    w.pz.resize(bodies);
    w.vx.assign(bodies, 0);
    w.vy.assign(bodies, 0);
    w.vz.assign(bodies, 0);
    for (u32 b = 0; b < bodies; ++b) {
        w.px[b] = rng.uniform(0.05, 0.95);
        w.py[b] = rng.uniform(0.05, 0.95);
        w.pz[b] = rng.uniform(0.05, 0.95);
        chip.memWrite(w.body3(w.pos, b), 8, toB(w.px[b]), 0);
        chip.memWrite(w.body3(w.pos, b) + 8, 8, toB(w.py[b]), 0);
        chip.memWrite(w.body3(w.pos, b) + 16, 8, toB(w.pz[b]), 0);
    }

    // Host mirror state for verification (same arithmetic as guests).
    std::vector<double> mpx = w.px, mpy = w.py, mpz = w.pz;
    std::vector<double> mvx = w.vx, mvy = w.vy, mvz = w.vz;

    engine.spawn(threads,
                 [&](GuestCtx &ctx) { return barnesWorker(ctx, w); });
    if (engine.run(50'000'000'000ull) != arch::RunExit::AllHalted)
        fatal("Barnes did not finish within the cycle limit");

    // Mirror the kSteps steps on the host.
    HostTree mirror;
    for (u32 step = 0; step < kSteps; ++step) {
        mirror.build(mpx, mpy, mpz);
        std::vector<double> ax(bodies), ay(bodies), az(bodies);
        for (u32 b = 0; b < bodies; ++b)
            mirror.accel(b, mpx, mpy, mpz, &ax[b], &ay[b], &az[b],
                         nullptr);
        for (u32 b = 0; b < bodies; ++b) {
            double *vs[3] = {&mvx[b], &mvy[b], &mvz[b]};
            double *ps[3] = {&mpx[b], &mpy[b], &mpz[b]};
            const double as[3] = {ax[b], ay[b], az[b]};
            for (u32 f = 0; f < 3; ++f) {
                *vs[f] += kDt * as[f];
                *ps[f] += kDt * *vs[f];
                if (*ps[f] < 0) {
                    *ps[f] = -*ps[f];
                    *vs[f] = -*vs[f];
                }
                if (*ps[f] >= 1) {
                    *ps[f] = 2.0 - *ps[f];
                    *vs[f] = -*vs[f];
                }
            }
        }
    }
    bool verified = true;
    for (u32 b = 0; b < bodies; b += 53) {
        double got;
        const u64 raw = chip.memRead(w.body3(w.pos, b), 8, 0);
        std::memcpy(&got, &raw, 8);
        if (std::fabs(got - mpx[b]) > 1e-9) {
            warn("Barnes verify failed at body %u: got %.17g want "
                 "%.17g", b, got, mpx[b]);
            verified = false;
            break;
        }
    }

    SplashResult result;
    detail::harvest(chip, &result);
    result.verified = verified;
    return result;
}

} // namespace cyclops::workloads
