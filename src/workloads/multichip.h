/**
 * @file
 * Multi-chip workloads on the cycle-driven fabric (DESIGN.md
 * section 16): a nearest-neighbor halo exchange and a distributed
 * STREAM scale kernel, both execution-driven guests on an
 * arch::System of shrunken chips.
 *
 * Both workloads are bit-deterministic: every remote payload is a
 * pure function of (chip, direction, element, iteration), the host
 * verifies the landed bytes after the run, and a fingerprint over the
 * window memory plus the fabric counters lets the determinism tests
 * compare whole runs across engines and job counts with one u64.
 */

#ifndef CYCLOPS_WORKLOADS_MULTICHIP_H
#define CYCLOPS_WORKLOADS_MULTICHIP_H

#include "arch/system.h"
#include "arch/unit.h"
#include "common/config.h"

namespace cyclops::workloads
{

/** One multi-chip run (halo exchange or distributed STREAM). */
struct MultiChipConfig
{
    u32 dimX = 2, dimY = 2, dimZ = 1;
    bool torus = true;
    u32 threads = 8; ///< guest threads per chip (<= the shrunken 8 TUs)
    u32 words = 64;  ///< 8-byte words per halo face / STREAM elements
    u32 iters = 2;   ///< halo exchange iterations
    EngineConfig engine;
    ObsConfig obs;

    /** Link degradation applied to the fabric (dead / flaky /
     *  derated links); empty leaves the fabric healthy. */
    net::FabricFaultMap faults;

    /** Degraded-chip map applied to every chip (disabled TUs, failed
     *  banks, ...), composing chip faults with fabric faults. */
    FaultConfig chipFault;

    // Fabric reliability overrides (0 = FabricConfig default), used
    // by the fault campaigns and the retry-storm tests.
    u32 fabricMaxRetries = 0;
    Cycle fabricRetryBackoff = 0;

    /** Run budget for the system (0 = unbounded). */
    u64 maxCycles = 0;

    /**
     * The system the workloads run on: a shrunken chip (8 TUs in two
     * quads, 16 x 64 KB banks, no reserved kernel TUs) so multi-chip
     * sweeps stay fast, with the remote window at the default half of
     * the 1 MB embedded memory.
     */
    arch::SystemConfig systemConfig() const;
};

/** Outcome of one multi-chip run. */
struct MultiChipResult
{
    Cycle cycles = 0;
    u64 instructions = 0;
    bool verified = false;

    /** How the system run ended (FabricFailure on a partition). */
    arch::RunExitReason exitReason = arch::RunExitReason::AllHalted;
    std::string exitDiagnostic;

    // Fabric aggregates (net.Fabric counters after the drain).
    u64 messages = 0;
    u64 bytesMoved = 0;
    u64 queueCycles = 0;
    u64 flitsInjected = 0;
    u64 flitsDelivered = 0;
    u64 flitsInFlight = 0; ///< 0 after a completed run (conservation)
    u64 flitsDropped = 0;  ///< corrupted attempts (flaky links)
    u64 rerouted = 0;      ///< messages that detoured around dead links
    u64 retransmits = 0;   ///< end-to-end retransmissions
    u64 crcErrors = 0;     ///< corruptions the checksum caught
    u64 unroutable = 0;    ///< messages abandoned without a live path

    /**
     * FNV-1a over every chip's window + result memory and the
     * cycle/instruction/fabric counters: two runs are equivalent iff
     * their fingerprints match.
     */
    u64 fingerprint = 0;

    /** Cycle attribution summed over all chips' thread units. */
    arch::CycleBreakdown attr;
};

/**
 * Iterative 6-direction halo exchange: every chip remote-stores a
 * face of @c words payload words to each mesh/torus neighbor, posts a
 * flag word after a chip-wide barrier (per-path FIFO makes the flag
 * arrive after its payload), and spins on its own inbound flags
 * before the next iteration. After the last iteration every thread
 * reads its share of the received faces and stores a checksum.
 */
MultiChipResult runHaloExchange(const MultiChipConfig &cfg);

/**
 * Distributed STREAM scale: chip i remote-loads its b[] slice from
 * the +x neighbor's window, multiplies by a scalar, and stores a[]
 * locally. Chips without a +x neighbor (1-wide or mesh edge) scale
 * their own slice, so the kernel also covers the degenerate shapes.
 */
MultiChipResult runDistributedStream(const MultiChipConfig &cfg);

} // namespace cyclops::workloads

#endif // CYCLOPS_WORKLOADS_MULTICHIP_H
