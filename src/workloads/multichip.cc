#include "workloads/multichip.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "arch/interest_group.h"
#include "common/log.h"
#include "exec/engine.h"
#include "net/topology.h"

namespace cyclops::workloads
{

using arch::igAddr;
using arch::kIgDefault;
using arch::remoteEa;
using arch::RunExit;

namespace
{

// Fixed per-chip physical layout. Guests never use the heap; the
// buffers live at fixed offsets so the host can initialize and verify
// them with readPhys/writePhys and hash them for the fingerprint.
constexpr PhysAddr kResultBase = 0x10000; ///< per-thread checksum slots
constexpr PhysAddr kABase = 0x20000;      ///< STREAM destination a[]
constexpr PhysAddr kStreamOff = 0x8000;   ///< b[] offset inside the window

/** The six mesh/torus neighbors of @p chip, -1 where none exists. */
std::array<int, 6>
neighborsOf(const net::Topology &topo, const net::NetConfig &net, u32 chip)
{
    const net::Coord c = topo.coordOf(chip);
    const u32 ext[3] = {net.dimX, net.dimY, net.dimZ};
    const u32 at[3] = {c.x, c.y, c.z};
    std::array<int, 6> nbr{};
    for (u32 axis = 0; axis < 3; ++axis) {
        for (u32 minus = 0; minus < 2; ++minus) {
            const u32 d = axis * 2 + minus; // net::Dir order: X+,X-,Y+,...
            if (ext[axis] == 1) {
                nbr[d] = -1;
                continue;
            }
            int v = int(at[axis]) + (minus ? -1 : 1);
            if (net.torus)
                v = (v + int(ext[axis])) % int(ext[axis]);
            else if (v < 0 || v >= int(ext[axis])) {
                nbr[d] = -1;
                continue;
            }
            net::Coord nc = c;
            (axis == 0 ? nc.x : axis == 1 ? nc.y : nc.z) = u32(v);
            nbr[d] = int(topo.chipAt(nc));
        }
    }
    return nbr;
}

/** Deterministic halo payload for (sender, direction, word, iteration). */
constexpr u64
haloWord(u32 chip, u32 dir, u32 j, u32 it)
{
    u64 x = (u64(chip) << 40) ^ (u64(dir) << 32) ^ (u64(j) << 8) ^ it;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 29;
    return x;
}

/** [begin, end) slice of @p total for thread @p t of @p n. */
struct Slice
{
    u32 begin, end;
};

Slice
sliceOf(u32 total, u32 t, u32 n)
{
    return {u32(u64(total) * t / n), u32(u64(total) * (t + 1) / n)};
}

u64
fnv1a(u64 h, const void *data, size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

u64
fnv1aU64(u64 h, u64 v)
{
    return fnv1a(h, &v, sizeof v);
}

/**
 * Fill the counters, attribution and fingerprint shared by both
 * workloads. The fingerprint hashes every chip's remote window and
 * the local result region, then the timing counters, so two runs are
 * byte-equivalent iff the fingerprints match.
 */
void
harvest(arch::System &sys, PhysAddr localBase, u32 localBytes,
        MultiChipResult *r)
{
    r->cycles = sys.now();
    r->instructions = sys.totalInstructions();
    const net::Fabric &f = sys.fabric();
    r->messages = f.messages();
    r->bytesMoved = f.bytesMoved();
    r->queueCycles = f.queueCycles();
    r->flitsInjected = f.flitsInjected();
    r->flitsDelivered = f.flitsDelivered();
    r->flitsInFlight = f.flitsInFlight();
    r->flitsDropped = f.flitsDropped();
    r->rerouted = f.rerouted();
    r->retransmits = f.retransmits();
    r->crcErrors = f.crcErrors();
    r->unroutable = f.unroutable();

    u64 h = 0xCBF29CE484222325ull;
    std::vector<u8> buf(arch::kRemoteWindowBytes);
    for (u32 c = 0; c < sys.numChips(); ++c) {
        const arch::Chip &chip = sys.chip(c);
        r->attr.add(chip.chipAttribution());
        chip.readPhys(sys.windowBase(), buf.data(),
                      arch::kRemoteWindowBytes);
        h = fnv1a(h, buf.data(), buf.size());
        if (localBytes) {
            chip.readPhys(localBase, buf.data(), localBytes);
            h = fnv1a(h, buf.data(), localBytes);
        }
    }
    h = fnv1aU64(h, r->cycles);
    h = fnv1aU64(h, r->instructions);
    h = fnv1aU64(h, r->messages);
    h = fnv1aU64(h, r->bytesMoved);
    h = fnv1aU64(h, r->queueCycles);
    h = fnv1aU64(h, r->flitsInjected);
    h = fnv1aU64(h, r->flitsDelivered);
    h = fnv1aU64(h, r->flitsDropped);
    h = fnv1aU64(h, r->rerouted);
    h = fnv1aU64(h, r->retransmits);
    r->fingerprint = h;
}

// --- Halo exchange ----------------------------------------------------------

struct HaloWorld
{
    u32 chip = 0;
    std::array<int, 6> nbr{};
    u32 words = 0;
    u32 iters = 0;
    PhysAddr windowBase = 0;
};

exec::GuestTask
haloThread(exec::GuestCtx &ctx, const HaloWorld &w)
{
    const u32 t = ctx.index();
    const u32 n = ctx.threads();
    const u32 slotBytes = w.words * 8;
    const u32 flagBase = 6 * slotBytes;
    const Slice s = sliceOf(w.words, t, n);
    u32 bar = 0;

    for (u32 it = 1; it <= w.iters; ++it) {
        // Send this thread's share of every outgoing face. Direction d
        // lands in the neighbor's opposite slot (d ^ 1), so the
        // receiver indexes its inbound faces by its own direction.
        for (u32 d = 0; d < 6; ++d) {
            if (w.nbr[d] < 0)
                continue;
            const u32 dst = u32(w.nbr[d]);
            const u32 off = (d ^ 1) * slotBytes;
            for (u32 j = s.begin; j < s.end; ++j) {
                co_await ctx.store(remoteEa(kIgDefault, dst, off + j * 8),
                                   haloWord(w.chip, d, j, it));
                co_await ctx.alu(2, true); // index + loop overhead
            }
            co_await ctx.branch();
        }
        co_await ctx.sync();
        // Barrier: every payload of this iteration is injected before
        // thread 0 posts the flags (per-path FIFO then guarantees the
        // flag lands after the payload at the receiver).
        co_await ctx.hwBarrier(bar++ & 1);
        if (t == 0) {
            for (u32 d = 0; d < 6; ++d) {
                if (w.nbr[d] < 0)
                    continue;
                co_await ctx.store(remoteEa(kIgDefault, u32(w.nbr[d]),
                                            flagBase + (d ^ 1) * 8),
                                   it);
            }
            co_await ctx.sync();
        }
        // Spin on the inbound flags, one direction per thread. A flag
        // is this chip's own window, so the load is local.
        for (u32 d = t; d < 6; d += n) {
            if (w.nbr[d] < 0)
                continue;
            const Addr flag =
                igAddr(kIgDefault, w.windowBase + flagBase + d * 8);
            while (co_await ctx.load(flag) < it)
                co_await ctx.branch();
        }
        co_await ctx.hwBarrier(bar++ & 1);
    }

    // Consume: checksum this thread's word-share of every inbound face
    // (only the final iteration's data is live in the slots).
    u64 sum = 0;
    for (u32 d = 0; d < 6; ++d) {
        if (w.nbr[d] < 0)
            continue;
        for (u32 j = s.begin; j < s.end; ++j) {
            sum += co_await ctx.load(
                igAddr(kIgDefault, w.windowBase + d * slotBytes + j * 8));
            co_await ctx.alu(2, true);
        }
    }
    co_await ctx.store(igAddr(kIgDefault, kResultBase + t * 8), sum);
    co_await ctx.sync();
}

// --- Distributed STREAM -----------------------------------------------------

struct StreamWorld
{
    u32 chip = 0;
    int src = -1; ///< +x neighbor holding our b[] slice (-1 = local)
    u32 words = 0;
    PhysAddr windowBase = 0;
    double scale = 3.0;
};

/** b[j] on chip @p c: small integers, exact in double. */
constexpr double
streamB(u32 c, u32 j)
{
    return double(c * 1024 + j + 1);
}

exec::GuestTask
streamThread(exec::GuestCtx &ctx, const StreamWorld &w)
{
    constexpr u32 kBatch = 4; // matches maxOutstandingMem
    const Slice s = sliceOf(w.words, ctx.index(), ctx.threads());
    const bool remote = w.src >= 0;

    for (u32 j = s.begin; j < s.end; j += kBatch) {
        const u32 m = std::min(kBatch, s.end - j);
        std::array<exec::MicroOp, kBatch> ops;
        for (u32 k = 0; k < m; ++k) {
            const u32 off = kStreamOff + (j + k) * 8;
            const Addr ea =
                remote ? remoteEa(kIgDefault, u32(w.src), off)
                       : igAddr(kIgDefault, w.windowBase + off);
            ops[k] = exec::MicroOp::load(ea, 8, true);
        }
        co_await ctx.batch(std::span<exec::MicroOp>(ops.data(), m));
        for (u32 k = 0; k < m; ++k) {
            co_await ctx.fpu(arch::FpuOp::Mul);
            const double b = std::bit_cast<double>(ops[k].result);
            co_await ctx.store(igAddr(kIgDefault, kABase + (j + k) * 8),
                               std::bit_cast<u64>(w.scale * b));
        }
        co_await ctx.alu(2, true); // index update
        co_await ctx.branch();
    }
    co_await ctx.sync();
}

// --- Shared runner ----------------------------------------------------------

void
checkConfig(const MultiChipConfig &cfg, const arch::SystemConfig &sc)
{
    if (cfg.threads == 0 || cfg.threads > sc.chip.usableThreads())
        fatal("multichip: %u guest threads on a %u-thread chip",
              cfg.threads, sc.chip.usableThreads());
    if (cfg.words == 0)
        fatal("multichip: words must be nonzero");
    if (cfg.iters == 0)
        fatal("multichip: iters must be nonzero");
    // Halo faces + flags live below the STREAM b[] slice; both must
    // fit in the 128 KB window.
    if (6 * cfg.words * 8 + 6 * 8 > kStreamOff)
        fatal("multichip: %u halo words overflow the window layout "
              "(max %u)",
              cfg.words, u32((kStreamOff - 48) / 48));
    if (kStreamOff + cfg.words * 8 > arch::kRemoteWindowBytes)
        fatal("multichip: %u STREAM words overflow the remote window",
              cfg.words);
}

RunExit
runGuests(arch::System &sys, u32 threads, u64 maxCycles,
          const std::function<exec::GuestFactory(u32)> &factoryFor)
{
    std::vector<std::unique_ptr<exec::GuestEngine>> engines;
    engines.reserve(sys.numChips());
    for (u32 c = 0; c < sys.numChips(); ++c) {
        engines.push_back(
            std::make_unique<exec::GuestEngine>(sys.chip(c)));
        engines.back()->spawn(threads, factoryFor(c));
    }
    const RunExit exit = sys.run(maxCycles ? maxCycles : kCycleNever);
    if (!(exit == RunExit::AllHalted))
        inform("multichip: run ended early (%s)",
               exit.diagnostic.empty() ? "cycle limit or signal"
                                       : exit.diagnostic.c_str());
    return exit;
}

} // namespace

arch::SystemConfig
MultiChipConfig::systemConfig() const
{
    arch::SystemConfig sc;
    ChipConfig &cc = sc.chip;
    cc.numThreads = 8;
    cc.threadsPerQuad = 4;
    cc.quadsPerICache = 2;
    cc.reservedThreads = 0;
    cc.numBanks = 16;
    cc.bankBytes = 64 * 1024;
    cc.engine = engine;
    cc.obs = obs;
    cc.fault = chipFault;
    sc.fabric.net.dimX = dimX;
    sc.fabric.net.dimY = dimY;
    sc.fabric.net.dimZ = dimZ;
    sc.fabric.net.torus = torus;
    sc.fabric.faults = faults;
    if (fabricMaxRetries)
        sc.fabric.maxRetries = fabricMaxRetries;
    if (fabricRetryBackoff)
        sc.fabric.retryBackoff = fabricRetryBackoff;
    return sc;
}

MultiChipResult
runHaloExchange(const MultiChipConfig &cfg)
{
    const arch::SystemConfig sc = cfg.systemConfig();
    checkConfig(cfg, sc);
    arch::System sys(sc);
    const net::Topology topo(sc.fabric.net);
    const u32 n = sys.numChips();

    std::vector<HaloWorld> worlds(n);
    for (u32 c = 0; c < n; ++c)
        worlds[c] = {c, neighborsOf(topo, sc.fabric.net, c), cfg.words,
                     cfg.iters, sys.windowBase()};

    const RunExit exit = runGuests(
        sys, cfg.threads, cfg.maxCycles,
        [&worlds](u32 c) -> exec::GuestFactory {
            return [&w = worlds[c]](exec::GuestCtx &ctx) {
                return haloThread(ctx, w);
            };
        });

    MultiChipResult r;
    r.exitReason = exit.reason;
    r.exitDiagnostic = exit.diagnostic;
    harvest(sys, kResultBase, cfg.threads * 8, &r);

    // Host-side verification: the slots hold the last iteration's
    // payloads, the flags count iterations, and the per-thread
    // checksums sum to the expected total.
    bool ok = exit == RunExit::AllHalted;
    const u32 slotBytes = cfg.words * 8;
    for (u32 c = 0; c < n && ok; ++c) {
        const arch::Chip &chip = sys.chip(c);
        u64 expectSum = 0;
        u64 gotSum = 0;
        for (u32 d = 0; d < 6 && ok; ++d) {
            if (worlds[c].nbr[d] < 0)
                continue;
            const u32 sender = u32(worlds[c].nbr[d]);
            u64 flag = 0;
            chip.readPhys(sys.windowBase() + 6 * slotBytes + d * 8,
                          &flag, 8);
            ok = ok && flag == cfg.iters;
            for (u32 j = 0; j < cfg.words && ok; ++j) {
                u64 got = 0;
                chip.readPhys(sys.windowBase() + d * slotBytes + j * 8,
                              &got, 8);
                const u64 want = haloWord(sender, d ^ 1, j, cfg.iters);
                ok = got == want;
                expectSum += want;
            }
        }
        for (u32 t = 0; t < cfg.threads; ++t) {
            u64 v = 0;
            chip.readPhys(kResultBase + t * 8, &v, 8);
            gotSum += v;
        }
        ok = ok && gotSum == expectSum;
    }
    r.verified = ok;
    if (sc.chip.obs.anyOutput())
        sys.writeObservability();
    return r;
}

MultiChipResult
runDistributedStream(const MultiChipConfig &cfg)
{
    const arch::SystemConfig sc = cfg.systemConfig();
    checkConfig(cfg, sc);
    arch::System sys(sc);
    const net::Topology topo(sc.fabric.net);
    const u32 n = sys.numChips();

    std::vector<StreamWorld> worlds(n);
    for (u32 c = 0; c < n; ++c) {
        const std::array<int, 6> nbr =
            neighborsOf(topo, sc.fabric.net, c);
        worlds[c] = {c, nbr[u32(net::Dir::XPlus)], cfg.words,
                     sys.windowBase(), 3.0};
        for (u32 j = 0; j < cfg.words; ++j) {
            const u64 bits = std::bit_cast<u64>(streamB(c, j));
            sys.chip(c).writePhys(
                sys.windowBase() + kStreamOff + j * 8, &bits, 8);
        }
    }

    const RunExit exit = runGuests(
        sys, cfg.threads, cfg.maxCycles,
        [&worlds](u32 c) -> exec::GuestFactory {
            return [&w = worlds[c]](exec::GuestCtx &ctx) {
                return streamThread(ctx, w);
            };
        });

    MultiChipResult r;
    r.exitReason = exit.reason;
    r.exitDiagnostic = exit.diagnostic;
    harvest(sys, kABase, cfg.words * 8, &r);

    bool ok = exit == RunExit::AllHalted;
    for (u32 c = 0; c < n && ok; ++c) {
        const u32 src = worlds[c].src >= 0 ? u32(worlds[c].src) : c;
        for (u32 j = 0; j < cfg.words && ok; ++j) {
            u64 bits = 0;
            sys.chip(c).readPhys(kABase + j * 8, &bits, 8);
            ok = std::bit_cast<double>(bits) ==
                 worlds[c].scale * streamB(src, j);
        }
    }
    r.verified = ok;
    if (sc.chip.obs.anyOutput())
        sys.writeObservability();
    return r;
}

} // namespace cyclops::workloads
